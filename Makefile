GO ?= go

.PHONY: all build vet test race bench-smoke throughput ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchmark smoke: does the throughput benchmark run at all?
bench-smoke:
	$(GO) test -run xxx -bench Throughput -benchtime 100x .

# Full serial-vs-parallel measurement; writes BENCH_throughput.json.
throughput:
	$(GO) run ./cmd/hp4bench -parallel

ci: vet build race bench-smoke throughput
