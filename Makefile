GO ?= go

.PHONY: all build vet test race lookup-race metrics-smoke api-smoke bench-smoke throughput ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fast-path-vs-linear-scan differential property test, explicitly under
# the race detector (it hammers lookup concurrently-exercised structures).
lookup-race:
	$(GO) test -race -run TestLookupDifferential ./internal/sim/

# Metrics smoke: boot the persona switch with the exporter, drive one vdev,
# and assert both the persona per-table and per-vdev metric families scrape.
metrics-smoke:
	$(GO) build -o /tmp/hp4switch-ci ./cmd/hp4switch
	printf 'load l2 l2_switch\nassign 1 l2 1\nmap l2 2 2\nl2 table_add smac _nop 00:00:00:00:00:01\nl2 table_add dmac forward 00:00:00:00:00:02 => 2\n' > /tmp/hp4switch-ci.cmds
	{ echo "packet 1 0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; sleep 2; echo quit; } | \
		/tmp/hp4switch-ci -persona -commands /tmp/hp4switch-ci.cmds -metrics-addr 127.0.0.1:19390 > /tmp/hp4switch-ci.out & \
	sleep 1; curl -sf http://127.0.0.1:19390/metrics > /tmp/hp4switch-ci.metrics; wait
	grep -q '^hyper4_table_hits_total{table="t1_ed_exact"} 1' /tmp/hp4switch-ci.metrics
	grep -q '^hyper4_vdev_table_hits_total{vdev="l2",table="dmac"} 1' /tmp/hp4switch-ci.metrics
	grep -q '^hyper4_process_latency_seconds_count 1' /tmp/hp4switch-ci.metrics
	@echo metrics smoke ok

# API smoke: boot the switch with the management API, configure a virtual
# device remotely via hp4ctl — the whole setup as ONE atomic batch — then
# query stats and a raw HTTP read, and assert the remotely-configured device
# forwards a packet injected on the switch side.
api-smoke:
	$(GO) build -o /tmp/hp4switch-ci ./cmd/hp4switch
	$(GO) build -o /tmp/hp4ctl-ci ./cmd/hp4ctl
	printf 'load l2 l2_switch\nassign 1 l2 1\nmap l2 2 2\nl2 table_add smac _nop 00:00:00:00:00:01\nl2 table_add dmac forward 00:00:00:00:00:02 => 2\n' > /tmp/hp4ctl-ci.cmds
	{ sleep 2; echo "packet 1 0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; echo quit; } | \
		/tmp/hp4switch-ci -persona -api-addr 127.0.0.1:19191 > /tmp/hp4switch-api.out & \
	sleep 1; \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19191 -batch -f /tmp/hp4ctl-ci.cmds && \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19191 vdevs > /tmp/hp4ctl-ci.vdevs && \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19191 stats l2 > /tmp/hp4ctl-ci.stats && \
	curl -sf 'http://127.0.0.1:19191/v1/read?kind=vdevs' > /tmp/hp4ctl-ci.read; wait
	grep -qx 'l2' /tmp/hp4ctl-ci.vdevs
	grep -q '^passes=' /tmp/hp4ctl-ci.stats
	grep -q '"vdevs":\["l2"\]' /tmp/hp4ctl-ci.read
	grep -q 'port 2 <- ' /tmp/hp4switch-api.out
	@echo api smoke ok

# Quick benchmark smoke: does the throughput benchmark run at all?
bench-smoke:
	$(GO) test -run xxx -bench Throughput -benchtime 100x .

# Full serial-vs-parallel measurement; writes BENCH_throughput.json.
throughput:
	$(GO) run ./cmd/hp4bench -parallel

ci: vet build race lookup-race metrics-smoke api-smoke bench-smoke throughput
