GO ?= go

.PHONY: all build vet test race lookup-race fuse-diff chaos-race chaos-smoke fuzz-smoke metrics-smoke api-smoke io-smoke crash-smoke chaos-io-race bench-smoke throughput analyze lint-smoke prove-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fast-path-vs-linear-scan differential property test, explicitly under
# the race detector (it hammers lookup concurrently-exercised structures).
lookup-race:
	$(GO) test -race -run TestLookupDifferential ./internal/sim/

# The fused-fast-path differential harness, explicitly under the race
# detector: fused vs interpreted runs must agree on every output byte, every
# entry hit and vdev counter, and plan invalidation must stay safe while
# racing live traffic (DESIGN.md §13).
fuse-diff:
	$(GO) test -race -run 'TestFused' ./internal/core/dpmu/

# The end-to-end fault-containment scenario, explicitly under the race
# detector (concurrent traffic, probes, and management ops on one switch).
chaos-race:
	$(GO) test -race -run TestChaosHarness ./internal/core/ctl/

# Chaos smoke: boot the persona switch with seeded fault injection against
# program 1, drive traffic that panics inside the faulty device's actions,
# and watch /v1/health walk quarantined -> probing -> healthy. Each health
# poll advances the time-based breaker transitions, so the polls are part
# of the choreography: trip at ~1s, open interval 2s, probes at ~5s.
chaos-smoke:
	$(GO) build -o /tmp/hp4switch-ci ./cmd/hp4switch
	$(GO) build -o /tmp/hp4ctl-ci ./cmd/hp4ctl
	printf 'load l2 l2_switch\nassign 1 l2 1\nmap l2 2 2\nl2 table_add smac _nop 00:00:00:00:00:01\nl2 table_add dmac forward 00:00:00:00:00:02 => 2\n' > /tmp/hp4chaos-ci.cmds
	{ sleep 1; for i in 1 2 3; do echo "packet 1 0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; done; \
	  sleep 4; for i in 1 2; do echo "packet 1 0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; done; \
	  sleep 2; echo quit; } | \
		/tmp/hp4switch-ci -persona -commands /tmp/hp4chaos-ci.cmds -api-addr 127.0.0.1:19192 \
		-chaos "seed=7,attr=1,panic_every=1,panic_first=3" \
		-health-window 30s -health-trip 3 -health-open 2s -health-probes 2 > /tmp/hp4chaos-ci.out & \
	sleep 2; curl -sf http://127.0.0.1:19192/v1/health > /tmp/hp4chaos-ci.h1; \
	sleep 2; /tmp/hp4ctl-ci -addr http://127.0.0.1:19192 health > /tmp/hp4chaos-ci.h2; \
	sleep 2; /tmp/hp4ctl-ci -addr http://127.0.0.1:19192 health > /tmp/hp4chaos-ci.h3; wait
	grep -q '"state":"quarantined"' /tmp/hp4chaos-ci.h1
	grep -q 'l2: probing' /tmp/hp4chaos-ci.h2
	grep -q 'l2: healthy faults=3 trips=1' /tmp/hp4chaos-ci.h3
	@echo chaos smoke ok

# Short fuzz run over the management-script parser: no panics, and every
# rejection is an ErrUnknown / INVALID_ARGUMENT structured error.
fuzz-smoke:
	$(GO) test -run FuzzParseLine -fuzz FuzzParseLine -fuzztime 10s ./internal/core/ctl/

# Metrics smoke: boot the persona switch with the exporter, drive one vdev,
# and assert both the persona per-table and per-vdev metric families scrape.
metrics-smoke:
	$(GO) build -o /tmp/hp4switch-ci ./cmd/hp4switch
	printf 'load l2 l2_switch\nassign 1 l2 1\nmap l2 2 2\nl2 table_add smac _nop 00:00:00:00:00:01\nl2 table_add dmac forward 00:00:00:00:00:02 => 2\n' > /tmp/hp4switch-ci.cmds
	{ echo "packet 1 0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; sleep 2; echo quit; } | \
		/tmp/hp4switch-ci -persona -commands /tmp/hp4switch-ci.cmds -metrics-addr 127.0.0.1:19390 > /tmp/hp4switch-ci.out & \
	sleep 1; curl -sf http://127.0.0.1:19390/metrics > /tmp/hp4switch-ci.metrics; wait
	grep -q '^hyper4_table_hits_total{table="t1_ed_exact"} 1' /tmp/hp4switch-ci.metrics
	grep -q '^hyper4_vdev_table_hits_total{vdev="l2",table="dmac"} 1' /tmp/hp4switch-ci.metrics
	grep -q '^hyper4_process_latency_seconds_count 1' /tmp/hp4switch-ci.metrics
	@echo metrics smoke ok

# API smoke: boot the switch with the management API, configure a virtual
# device remotely via hp4ctl — the whole setup as ONE atomic batch — then
# query stats and a raw HTTP read, and assert the remotely-configured device
# forwards a packet injected on the switch side.
api-smoke:
	$(GO) build -o /tmp/hp4switch-ci ./cmd/hp4switch
	$(GO) build -o /tmp/hp4ctl-ci ./cmd/hp4ctl
	printf 'load l2 l2_switch\nassign 1 l2 1\nmap l2 2 2\nl2 table_add smac _nop 00:00:00:00:00:01\nl2 table_add dmac forward 00:00:00:00:00:02 => 2\n' > /tmp/hp4ctl-ci.cmds
	{ sleep 2; echo "packet 1 0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; echo quit; } | \
		/tmp/hp4switch-ci -persona -api-addr 127.0.0.1:19191 > /tmp/hp4switch-api.out & \
	sleep 1; \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19191 -batch -f /tmp/hp4ctl-ci.cmds && \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19191 vdevs > /tmp/hp4ctl-ci.vdevs && \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19191 stats l2 > /tmp/hp4ctl-ci.stats && \
	curl -sf 'http://127.0.0.1:19191/v1/read?kind=vdevs' > /tmp/hp4ctl-ci.read; wait
	grep -qx 'l2' /tmp/hp4ctl-ci.vdevs
	grep -q '^passes=' /tmp/hp4ctl-ci.stats
	grep -q '"vdevs":\["l2"\]' /tmp/hp4ctl-ci.read
	grep -q 'port 2 <- ' /tmp/hp4switch-api.out
	@echo api smoke ok

# I/O smoke: boot the persona switch with the packet I/O runtime, configure
# the l2 device AND its UDP wire transports remotely via ctl port ops (the
# switch itself gets no traffic flags), then send a real frame over the wire
# with hp4io and assert it is forwarded out the other port's UDP peer and
# that the ring metric families scrape.
io-smoke:
	$(GO) build -o /tmp/hp4switch-ci ./cmd/hp4switch
	$(GO) build -o /tmp/hp4io-ci ./cmd/hp4io
	printf 'load l2 l2_switch\nassign 1 l2 1\nmap l2 2 2\nl2 table_add smac _nop 00:00:00:00:00:01\nl2 table_add dmac forward 00:00:00:00:00:02 => 2\nport attach 1 udp:127.0.0.1:19501\nport attach 2 udp:127.0.0.1:19503/127.0.0.1:19504\n' > /tmp/hp4io-ci.cmds
	{ sleep 5; echo quit; } | \
		/tmp/hp4switch-ci -persona -commands /tmp/hp4io-ci.cmds -metrics-addr 127.0.0.1:19590 > /tmp/hp4io-ci.out & \
	sleep 1; \
	/tmp/hp4io-ci recv -listen 127.0.0.1:19504 -n 1 -timeout 3s > /tmp/hp4io-ci.recv & \
	sleep 1; \
	/tmp/hp4io-ci send -to 127.0.0.1:19501 -hex "0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; \
	sleep 1; curl -sf http://127.0.0.1:19590/metrics > /tmp/hp4io-ci.metrics; wait
	grep -q '^0000000000020000000000010800' /tmp/hp4io-ci.recv
	grep -q '^hyper4_rx_frames_total{port="1"} 1' /tmp/hp4io-ci.metrics
	grep -q '^hyper4_tx_frames_total{port="2"} 1' /tmp/hp4io-ci.metrics
	grep -q '^hyper4_ring_depth{port="1",worker="0",dir="rx"} 0' /tmp/hp4io-ci.metrics
	grep -q '^hyper4_io_processed_total 1' /tmp/hp4io-ci.metrics
	@echo io smoke ok

# Crash smoke: boot the persona switch with a control-plane journal, wire it
# up remotely (the whole config as ONE acked batch), prove it forwards real
# wire traffic, then SIGKILL it mid-flight. A restart on the same journal
# directory must replay the batch, re-bind both UDP ports, and forward again
# — and its control-state dump must be byte-identical to a twin switch that
# was configured identically but never crashed.
crash-smoke:
	$(GO) build -o /tmp/hp4switch-ci ./cmd/hp4switch
	$(GO) build -o /tmp/hp4ctl-ci ./cmd/hp4ctl
	$(GO) build -o /tmp/hp4io-ci ./cmd/hp4io
	rm -rf /tmp/hp4crash-ci.journal && mkdir -p /tmp/hp4crash-ci.journal
	printf 'load l2 l2_switch\nassign 1 l2 1\nmap l2 2 2\nl2 table_add smac _nop 00:00:00:00:00:01\nl2 table_add dmac forward 00:00:00:00:00:02 => 2\nport attach 1 udp:127.0.0.1:19801\nport attach 2 udp:127.0.0.1:19803/127.0.0.1:19804\n' > /tmp/hp4crash-ci.cmds
	sleep 60 | /tmp/hp4switch-ci -persona -journal /tmp/hp4crash-ci.journal -api-addr 127.0.0.1:19791 > /tmp/hp4crash-ci.out1 2>&1 & \
	KPID=$$!; sleep 1; \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19791 -batch -f /tmp/hp4crash-ci.cmds; \
	/tmp/hp4io-ci recv -listen 127.0.0.1:19804 -n 1 -timeout 5s > /tmp/hp4crash-ci.recv1 & \
	sleep 1; \
	/tmp/hp4io-ci send -to 127.0.0.1:19801 -hex "0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; \
	sleep 1; kill -9 $$KPID
	grep -q '^0000000000020000000000010800' /tmp/hp4crash-ci.recv1
	{ sleep 6; echo quit; } | /tmp/hp4switch-ci -persona -journal /tmp/hp4crash-ci.journal -api-addr 127.0.0.1:19791 > /tmp/hp4crash-ci.out2 2>&1 & \
	sleep 1; \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19791 dump > /tmp/hp4crash-ci.dump-recovered; \
	/tmp/hp4io-ci recv -listen 127.0.0.1:19804 -n 1 -timeout 4s > /tmp/hp4crash-ci.recv2 & \
	sleep 1; \
	/tmp/hp4io-ci send -to 127.0.0.1:19801 -hex "0000000000020000000000010800$$(printf '0%.0s' $$(seq 1 100))"; \
	wait
	grep -q 'replayed 1 batches' /tmp/hp4crash-ci.out2
	grep -q '^0000000000020000000000010800' /tmp/hp4crash-ci.recv2
	{ sleep 4; echo quit; } | /tmp/hp4switch-ci -persona -api-addr 127.0.0.1:19791 > /tmp/hp4crash-ci.out3 2>&1 & \
	sleep 1; \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19791 -batch -f /tmp/hp4crash-ci.cmds; \
	/tmp/hp4ctl-ci -addr http://127.0.0.1:19791 dump > /tmp/hp4crash-ci.dump-twin; \
	wait
	diff /tmp/hp4crash-ci.dump-recovered /tmp/hp4crash-ci.dump-twin
	@echo crash smoke ok

# Transport fault injection and the port breakers, explicitly under the race
# detector: seeded chaos schedules must stay exact (same seed, same faults;
# caps exact under concurrency) and breaker walks deterministic while racing
# live RX/TX loops.
chaos-io-race:
	$(GO) test -race ./internal/chaos/ ./internal/runtime/

# Quick benchmark smoke: does the throughput benchmark run at all?
bench-smoke:
	$(GO) test -run xxx -bench Throughput -benchtime 100x .

# Repo-invariant analyzers (internal/analysis): the dpmu lock hierarchy and
# the sim hot-path allocation rules, enforced over the whole module.
analyze:
	$(GO) run ./cmd/hp4analyze ./...

# Data-plane verifier smoke: every artifact the repo ships must lint clean —
# the four guest functions at the reference persona geometry, the sequential
# composition at its wider pipeline, and the composition example script
# replayed onto a live persona switch.
lint-smoke:
	$(GO) run ./cmd/hp4lint p4src/l2_switch.p4 p4src/firewall.p4 p4src/router.p4 p4src/arp_proxy.p4
	$(GO) run ./cmd/hp4lint -stages 6 p4src/composed.p4
	$(GO) run ./cmd/hp4lint -script examples/scripts/composition.txt
	@echo lint smoke ok

# Equivalence-prover smoke (DESIGN.md §16): every builtin and every shipped
# guest .p4 must prove native = persona under a synthesized entry set, and a
# deliberately planted LPM-priority translation bug must fail the lint (exit
# 1, not a crash) with a replay-confirmed concrete counterexample — the
# prover never cries wolf, so the planted finding must carry a witness packet
# both concrete machines disagree on.
prove-smoke:
	$(GO) run ./cmd/hp4lint -prove -builtin l2_switch
	$(GO) run ./cmd/hp4lint -prove -builtin firewall
	$(GO) run ./cmd/hp4lint -prove -builtin router
	$(GO) run ./cmd/hp4lint -prove -builtin arp_proxy
	$(GO) run ./cmd/hp4lint -prove p4src/l2_switch.p4 p4src/firewall.p4 p4src/router.p4 p4src/arp_proxy.p4
	$(GO) run ./cmd/hp4lint -prove -prove-skew -builtin router > /tmp/hp4prove-ci.out 2>&1; test $$? -eq 1
	grep -q 'confirmed by replay' /tmp/hp4prove-ci.out
	@echo prove smoke ok

# Full serial-vs-parallel measurement; writes BENCH_throughput.json. The
# -faults row measures the armed-but-idle fault-injection hooks, which must
# sit within noise of the plain hp4 row.
throughput:
	$(GO) run ./cmd/hp4bench -parallel -faults

ci: vet build analyze race lookup-race fuse-diff chaos-race chaos-smoke fuzz-smoke lint-smoke prove-smoke metrics-smoke api-smoke io-smoke crash-smoke chaos-io-race bench-smoke throughput
