// Command hp4lint is the offline face of the data-plane verifier: it runs
// the same checks the DPMU applies at load time and the control plane's
// `verify` op applies at admission time, but against artifacts on disk —
// before anything touches a switch.
//
// Three input modes, combinable:
//
//	hp4lint -builtin l2_switch            # verify a built-in function
//	hp4lint foo.p4 bar.p4                 # verify P4_14 sources
//	hp4lint -script setup.txt             # replay a command script on an
//	                                      # in-process persona switch and
//	                                      # verify the resulting state
//
// Program mode compiles each input with hp4c and reports structural
// findings (undeclared actions, bad arities, dangling parse states, parse
// windows beyond the persona's budget). Script mode additionally sees the
// installed entries and topology, so shadowed entries, virtual-network
// cycles, pass-bound overruns and tenancy violations surface too — plus the
// fuser's "unfusable" report: informational findings naming the constructs
// (virtual links, multicast, checksum shapes) that keep each vdev off the
// fused fast path (DESIGN.md §13).
//
// Exit status: 0 when no warning-or-worse finding was reported
// (informational findings, like unfusable, don't fail the lint), 1 when any
// warning or error was, 2 on usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hyper4/internal/core/ctl"
	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/core/verify"
	"hyper4/internal/core/verify/prove"
	"hyper4/internal/functions"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
	"hyper4/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, out, errOut *os.File) int {
	fs := flag.NewFlagSet("hp4lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	stages := fs.Int("stages", persona.Reference.Stages, "persona stages")
	prims := fs.Int("primitives", persona.Reference.Primitives, "persona primitives per action")
	builtin := fs.String("builtin", "", "verify a built-in function: "+strings.Join(functions.Names(), ", "))
	script := fs.String("script", "", "replay a management script and verify the resulting switch state")
	doProve := fs.Bool("prove", false, "symbolically prove native = persona for each program under a synthesized entry set")
	proveSkew := fs.Bool("prove-skew", false, "plant an LPM-priority translation bug before proving (prover self-test; implies a finding)")
	proveSeed := fs.Int64("prove-seed", 7, "seed for the synthesized entry set -prove installs")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: hp4lint [-json] [-builtin <fn>] [-script cmds.txt] [foo.p4 ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *builtin == "" && *script == "" && fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	cfg := persona.Reference
	cfg.Stages = *stages
	cfg.Primitives = *prims

	var findings []verify.Finding

	// Program-mode targets: each compiles standalone and contributes
	// structural findings, labeled by input so a multi-file run stays
	// attributable.
	type target struct {
		label string
		prog  *hlir.Program
	}
	var targets []target
	if *builtin != "" {
		prog, err := functions.Load(*builtin)
		if err != nil {
			fmt.Fprintln(errOut, "hp4lint:", err)
			return 2
		}
		targets = append(targets, target{*builtin, prog})
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(errOut, "hp4lint:", err)
			return 2
		}
		parsed, err := parser.Parse(path, string(src))
		if err != nil {
			fmt.Fprintln(errOut, "hp4lint:", err)
			return 2
		}
		prog, err := hlir.Resolve(parsed)
		if err != nil {
			fmt.Fprintln(errOut, "hp4lint:", err)
			return 2
		}
		targets = append(targets, target{path, prog})
	}
	for _, t := range targets {
		comp, err := compileLenient(t.prog, cfg)
		if err != nil {
			// A compile failure that is not a diagnostic set is an input
			// error, not a finding.
			fmt.Fprintf(errOut, "hp4lint: %s: %v\n", t.label, err)
			return 2
		}
		for _, f := range verify.Program(comp) {
			f.VDev = t.label
			findings = append(findings, f)
		}
		if *doProve {
			fs, err := proveTarget(t.label, comp, cfg, *proveSeed, *proveSkew)
			if err != nil {
				fmt.Fprintf(errOut, "hp4lint: %s: prove: %v\n", t.label, err)
				return 2
			}
			findings = append(findings, fs...)
		}
	}

	if *script != "" {
		fs, err := lintScript(*script, cfg)
		if err != nil {
			fmt.Fprintln(errOut, "hp4lint:", err)
			return 2
		}
		findings = append(findings, fs...)
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []verify.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(errOut, "hp4lint:", err)
			return 2
		}
	} else if len(findings) == 0 {
		fmt.Fprintln(out, "hp4lint: clean")
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f.String())
		}
	}
	for _, f := range findings {
		if f.Severity != verify.SevInfo {
			return 1
		}
	}
	return 0
}

// compileLenient compiles a program but converts compile-time verifier
// diagnostics (hp4c's admission gate) into the error return so the caller
// can distinguish "bad input" from "compiled with findings". Today Compile
// rejects on diagnostics, so any *hp4c.DiagError is re-run through the
// verifier path by reporting its diagnostics directly — this keeps hp4lint
// useful on programs the strict compiler refuses.
func compileLenient(prog *hlir.Program, cfg persona.Config) (*hp4c.Compiled, error) {
	return hp4c.Compile(prog, cfg)
}

// proveTarget runs the symbolic equivalence prover for one compiled program:
// it loads the program into a fresh in-process persona DPMU, installs a
// synthesized entry set plus the identity port window the prover's replay
// harness expects, and proves native = persona over the whole modeled packet
// space. skew plants the LPM-priority translation bug first, so the planted
// run of `make prove-smoke` demonstrates a replay-confirmed counterexample.
func proveTarget(label string, comp *hp4c.Compiled, cfg persona.Config, seed int64, skew bool) ([]verify.Finding, error) {
	pers, err := persona.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sw, err := sim.New("prove", pers.Program)
	if err != nil {
		return nil, err
	}
	d, err := dpmu.New(sw, pers)
	if err != nil {
		return nil, err
	}
	const owner = "hp4lint"
	if _, err := d.Load(label, comp, owner, 0); err != nil {
		return nil, err
	}
	d.SetTranslationSkew(skew)
	for _, r := range prove.Synthesize(comp.Prog, seed) {
		// Rows the DPMU rejects are simply absent on both sides.
		_, _ = d.TableAdd(owner, label, dpmu.EntrySpec{
			Table: r.Table, Action: r.Action, Params: r.Params, Args: r.Args, Priority: r.Priority,
		})
	}
	d.SetTranslationSkew(false)
	for p := 8; p < 16; p++ {
		if err := d.AssignPort(owner, dpmu.Assignment{PhysPort: p, VDev: label, VIngress: p}); err != nil {
			return nil, err
		}
	}
	for vp := 1; vp < 16; vp++ {
		if err := d.MapVPort(owner, label, vp, vp); err != nil {
			return nil, err
		}
	}
	res, err := d.Prove(owner, label, prove.Options{})
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// lintScript replays a management script against a fresh in-process persona
// switch and verifies the resulting state — the full Check surface: entries,
// topology, tenancy, parse rows.
func lintScript(path string, cfg persona.Config) ([]verify.Finding, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pers, err := persona.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sw, err := sim.New("lint", pers.Program)
	if err != nil {
		return nil, err
	}
	d, err := dpmu.New(sw, pers)
	if err != nil {
		return nil, err
	}
	cli := ctl.NewCLI(ctl.New(d), "hp4lint")
	if err := cli.ExecAll(string(src)); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// The fuse report rides along with the state findings: it explains, per
	// vdev, which constructs would keep the configuration off the fused
	// fast path.
	return append(verify.Check(d.VerifySource()), d.FuseReport()...), nil
}
