// Command hp4gen generates the HyPer4 persona's P4 source for a
// configuration — the role of the paper's 900-line Python configuration
// script (§5.1).
//
// Usage:
//
//	hp4gen [-stages N] [-primitives N] [-default N] [-step N] [-max N]
//	       [-o persona.p4] [-base base.txt] [-loc]
//
// With -loc, only the structural summary (LoC, tables, actions) is printed —
// the data behind Figures 7 and 8.
package main

import (
	"flag"
	"fmt"
	"os"

	"hyper4/internal/core/persona"
)

func main() {
	stages := flag.Int("stages", persona.Reference.Stages, "emulated match-action stages")
	prims := flag.Int("primitives", persona.Reference.Primitives, "max primitives per compound action")
	pdef := flag.Int("default", persona.Reference.ParseDefault, "default parse bytes")
	pstep := flag.Int("step", persona.Reference.ParseStep, "parse byte step")
	pmax := flag.Int("max", persona.Reference.ParseMax, "max parse bytes")
	fixed := flag.Bool("fixed", false, "partial virtualization: directly-implemented parser (§7.1)")
	out := flag.String("o", "", "write persona P4 source to this file (default stdout)")
	base := flag.String("base", "", "write the persona base-entry command file here")
	locOnly := flag.Bool("loc", false, "print only the structural summary")
	flag.Parse()

	cfg := persona.Config{
		Stages: *stages, Primitives: *prims,
		ParseDefault: *pdef, ParseStep: *pstep, ParseMax: *pmax,
		FixedParser: *fixed,
	}
	p, err := persona.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hp4gen:", err)
		os.Exit(1)
	}
	if *locOnly {
		fmt.Printf("stages=%d primitives=%d loc=%d tables=%d actions=%d\n",
			cfg.Stages, cfg.Primitives, p.LoC, p.TableCount, p.ActionCount)
		return
	}
	if *base != "" {
		if err := os.WriteFile(*base, []byte(p.BaseCommands), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hp4gen:", err)
			os.Exit(1)
		}
	}
	if *out == "" {
		fmt.Print(p.Source)
		return
	}
	if err := os.WriteFile(*out, []byte(p.Source), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hp4gen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hp4gen: wrote %d LoC, %d tables, %d actions to %s\n",
		p.LoC, p.TableCount, p.ActionCount, *out)
}
