// Command hp4analyze runs the repository's invariant analyzers
// (internal/analysis: lockorder, hotpath, atomics) over Go package
// patterns. It is wired into `make ci` so the lock-hierarchy doctrines,
// the hot-path allocation rules and the atomic-access discipline are
// enforced on every change, not just remembered. A package that fails to
// load (including a broken build-tagged file) aborts the run with exit 2 —
// analyzers must never silently pass on code they did not see.
//
// Usage:
//
//	hp4analyze ./...
//	hp4analyze -run lockorder ./internal/core/dpmu
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyper4/internal/analysis"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hp4analyze [-run name,...] <package patterns>")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := []*analysis.Analyzer{analysis.Lockorder, analysis.Hotpath, analysis.Atomics}
	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	analyzers := all
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "hp4analyze: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hp4analyze:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hp4analyze:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
