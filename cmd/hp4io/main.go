// Command hp4io is a minimal wire-traffic client for exercising a running
// hp4switch over its UDP transports: it sends raw frames as single datagrams
// and prints frames it receives as hex, one per line. It is what the io-smoke
// CI target and the README's "Serving real traffic" walkthrough drive the
// switch with — the role iperf/scapy clients play against a bmv2 deployment.
//
// Usage:
//
//	hp4io send -to 127.0.0.1:9000 -hex 000000000002...      one frame
//	hp4io send -to 127.0.0.1:9000 -hex ... -n 100           repeated
//	hp4io recv -listen 127.0.0.1:9001 [-n 1] [-timeout 5s]  print frames
//
// recv exits 0 once it has printed -n frames; on a missed deadline it
// reports how many frames arrived and exits 1 (-timeout 0 waits forever).
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "send":
		send(os.Args[2:])
	case "recv":
		recv(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hp4io send -to <addr> -hex <bytes> [-n count] | hp4io recv -listen <addr> [-n count] [-timeout d]")
	os.Exit(2)
}

func send(args []string) {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	to := fs.String("to", "", "destination address (host:port)")
	hexStr := fs.String("hex", "", "frame bytes as hex")
	n := fs.Int("n", 1, "number of copies to send")
	gap := fs.Duration("gap", 0, "pause between frames")
	_ = fs.Parse(args)
	if *to == "" || *hexStr == "" {
		usage()
	}
	data, err := hex.DecodeString(*hexStr)
	if err != nil {
		fatal("bad -hex:", err)
	}
	conn, err := net.Dial("udp", *to)
	if err != nil {
		fatal("dial:", err)
	}
	defer conn.Close()
	for i := 0; i < *n; i++ {
		if _, err := conn.Write(data); err != nil {
			fatal("send:", err)
		}
		if *gap > 0 {
			time.Sleep(*gap)
		}
	}
	fmt.Printf("sent %d frame(s) of %d bytes to %s\n", *n, len(data), *to)
}

func recv(args []string) {
	fs := flag.NewFlagSet("recv", flag.ExitOnError)
	listen := fs.String("listen", "", "listen address (host:port)")
	n := fs.Int("n", 1, "frames to receive before exiting")
	timeout := fs.Duration("timeout", 5*time.Second, "overall receive deadline (0 = wait forever)")
	_ = fs.Parse(args)
	if *listen == "" {
		usage()
	}
	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		fatal("bad -listen:", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		fatal("listen:", err)
	}
	defer conn.Close()
	if *timeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(*timeout))
	}
	buf := make([]byte, 65535)
	for got := 0; got < *n; got++ {
		sz, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			// A missed deadline is the expected failure shape in scripts
			// (make io-smoke, crash-smoke): say what was awaited, not just
			// the raw "i/o timeout".
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				fmt.Fprintf(os.Stderr, "hp4io: timed out after %v: received %d of %d frame(s)\n", *timeout, got, *n)
			} else {
				fmt.Fprintf(os.Stderr, "hp4io: received %d of %d frame(s): %v\n", got, *n, err)
			}
			os.Exit(1)
		}
		fmt.Printf("%x\n", buf[:sz])
	}
}

func fatal(msg string, err error) {
	fmt.Fprintln(os.Stderr, "hp4io:", msg, err)
	os.Exit(1)
}
