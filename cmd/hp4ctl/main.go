// Command hp4ctl manages a running hp4switch over its HTTP control-plane
// API (-api-addr). It speaks exactly the same script dialect as the
// hp4switch REPL and -commands files — the lines are parsed with the same
// parser, shipped as typed ops, and answered with the same output shapes —
// so a management script moves between local and remote execution unchanged.
//
// Usage:
//
//	hp4ctl -addr http://127.0.0.1:9191 [-owner operator] load l2 l2_switch
//	hp4ctl -addr ... -f script.txt            # line-at-a-time, stop on error
//	hp4ctl -addr ... -batch -f script.txt     # whole script as ONE atomic batch
//	hp4ctl -addr ... stats l2
//	hp4ctl -addr ... health                   # circuit-breaker health report
//	hp4ctl -addr ... port health              # per-port breaker report
//	hp4ctl -addr ... dump                     # deterministic control-state dump
//	hp4ctl -addr ... reset l2                 # clear a device's quarantine
//	hp4ctl -addr ... -events                  # follow management events
//
// Transport failures are retried with exponential backoff (-retries,
// -timeout); writes carry a request ID, so a retry after a lost response
// applies exactly once. The event follower reconnects with backoff rather
// than dying when the switch restarts.
//
// With -batch, every mutating line is collected into a single WriteBatch:
// either the whole script applies, or the switch is left bit-identical to
// its prior state (queries are not allowed in -batch mode).
//
// The exit code reflects the structured error code of the first failure:
// 0 OK, 2 INVALID_ARGUMENT, 3 NOT_FOUND, 4 PERMISSION_DENIED,
// 5 RESOURCE_EXHAUSTED, 6 ABORTED, 7 ALREADY_EXISTS, 1 otherwise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hyper4/internal/core/ctl"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9191", "management API address of the hp4switch")
	owner := flag.String("owner", "operator", "owner identity stamped on every operation")
	file := flag.String("f", "", "script file to execute (\"-\" or empty with no args: stdin)")
	batch := flag.Bool("batch", false, "apply the whole script as one atomic batch")
	events := flag.Bool("events", false, "follow management events (long poll) until interrupted")
	timeout := flag.Duration("timeout", 10*time.Second, "per-attempt request timeout")
	retries := flag.Int("retries", 3, "transport-failure retries (writes dedup by request ID)")
	flag.Parse()

	client := &ctl.Client{Base: *addr, Owner: *owner, Timeout: *timeout, Retries: *retries}

	if *events {
		follow(client)
		return
	}

	var lines []string
	switch {
	case flag.NArg() > 0:
		lines = []string{strings.Join(flag.Args(), " ")}
	case *file != "" && *file != "-":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		lines = strings.Split(string(data), "\n")
	default:
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if err := sc.Err(); err != nil {
			fail(err)
		}
	}

	if *batch {
		runBatch(client, lines)
		return
	}
	for _, line := range lines {
		if err := runLine(client, line); err != nil {
			fail(err)
		}
	}
}

// runLine parses and executes one script line: ops become a batch of one,
// queries become reads, output matches the REPL.
func runLine(client *ctl.Client, line string) error {
	op, q, err := ctl.ParseLine(line)
	switch {
	case err != nil:
		return fmt.Errorf("%q: %w", strings.TrimSpace(line), err)
	case op != nil:
		results, err := client.Write([]ctl.Op{*op})
		if err != nil {
			return fmt.Errorf("%q: %w", strings.TrimSpace(line), err)
		}
		if len(results) == 1 && results[0].Msg != "" {
			fmt.Println(results[0].Msg)
		}
	case q != nil:
		res, err := client.Read(q)
		if err != nil {
			return fmt.Errorf("%q: %w", strings.TrimSpace(line), err)
		}
		fmt.Println(ctl.FormatRead(q, res))
	}
	return nil
}

// runBatch collects every mutating line into one atomic WriteBatch.
func runBatch(client *ctl.Client, lines []string) {
	var ops []ctl.Op
	var srcs []string
	for _, line := range lines {
		op, q, err := ctl.ParseLine(line)
		switch {
		case err != nil:
			fail(fmt.Errorf("%q: %w", strings.TrimSpace(line), err))
		case q != nil:
			fail(&ctl.Error{Code: ctl.CodeInvalidArgument, Op: -1,
				Msg: fmt.Sprintf("%q: queries are not allowed in -batch mode", strings.TrimSpace(line))})
		case op != nil:
			ops = append(ops, *op)
			srcs = append(srcs, strings.TrimSpace(line))
		}
	}
	results, err := client.Write(ops)
	if err != nil {
		if ce, ok := err.(*ctl.Error); ok && ce.Op >= 0 && ce.Op < len(srcs) {
			fail(fmt.Errorf("%q: %w", srcs[ce.Op], err))
		}
		fail(err)
	}
	for _, r := range results {
		if r.Msg != "" {
			fmt.Println(r.Msg)
		}
	}
}

// follow tails the event stream, printing one line per event. A broken
// connection reconnects with capped exponential backoff, keeping the cursor
// so no buffered events are missed. If the switch restarted (its event seq
// restarts at 0), the server spots the stale cursor and hands back a rewound
// one, so the follower picks up the new instance's events instead of
// waiting for its seq to outgrow the old cursor.
func follow(client *ctl.Client) {
	var since int64
	failures := 0
	for {
		events, next, err := client.Events(since, 30)
		if err != nil {
			delay := time.Duration(1<<min(failures, 5)) * 250 * time.Millisecond
			fmt.Fprintf(os.Stderr, "hp4ctl: events: %v (retrying in %v)\n", err, delay)
			time.Sleep(delay)
			failures++
			continue
		}
		failures = 0
		for _, e := range events {
			line := fmt.Sprintf("%d %s", e.Seq, e.Kind)
			if e.VDev != "" {
				line += " " + e.VDev
			}
			if strings.HasPrefix(e.Kind, "port_") {
				line += fmt.Sprintf(" port=%d", e.Port)
			}
			if e.Name != "" {
				line += " " + e.Name
			}
			if e.Msg != "" {
				line += ": " + e.Msg
			}
			fmt.Println(line)
		}
		since = next
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hp4ctl:", err)
	os.Exit(ctl.CodeOf(err).ExitCode())
}
