package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"hyper4/internal/core/dpmu"
	pktio "hyper4/internal/runtime"
	"hyper4/internal/sim"
)

// This file serves the switch's metrics registry in Prometheus text
// exposition format (version 0.0.4), hand-written — the repo takes no
// dependencies — plus the standard pprof handlers. Families:
//
//	hyper4_packets_{in,out,dropped}_total
//	hyper4_{resubmits,recirculates,clones,table_applies}_total
//	hyper4_table_{hits,misses,default_actions}_total{table="..."}
//	hyper4_table_entries{table="..."}
//	hyper4_action_invocations_total{action="..."}
//	hyper4_pipeline_passes_total{kind="normal"|"resubmit"|...}
//	hyper4_process_latency_seconds{le="..."} (histogram)
//	hyper4_packet_faults_total{kind="panic"|"pass_bound"|...}
//	hyper4_quarantine_drops_total
//	hyper4_vdev_passes_total / hyper4_vdev_bytes_total{vdev="..."}
//	hyper4_vdev_table_{hits,misses}_total{vdev="...",table="..."} (persona mode)
//	hyper4_vdev_health{vdev="..."} (0 healthy, 1 degraded, 2 probing, 3 quarantined)
//	hyper4_vdev_health_trips_total / hyper4_vdev_faults_total{vdev="..."} (persona mode)
//	hyper4_rx_frames_total / hyper4_tx_frames_total{port="..."} (I/O runtime)
//	hyper4_ring_depth{port="...",worker="...",dir="rx"|"tx"}
//	hyper4_ring_drops_total{port="...",dir="rx"|"tx"}
//	hyper4_tx_errors_total{port="..."}
//	hyper4_io_processed_total / hyper4_io_proc_errors_total / hyper4_unrouted_frames_total
//	hyper4_port_health{port="..."} (0 healthy, 1 degraded, 2 probing, 3 quarantined)
//	hyper4_port_health_trips_total / hyper4_port_reattach_total{port="..."}
//	hyper4_port_io_errors_total{port="...",kind="recv"|"send"|"stall"}

// newMetricsMux builds the HTTP handler for -metrics-addr. d is nil outside
// persona mode; iort is nil when the process runs without a packet I/O
// runtime (tests scraping writeMetrics directly).
func newMetricsMux(sw *sim.Switch, d *dpmu.DPMU, iort *pktio.Runtime) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, sw, d)
		if iort != nil {
			writeIOMetrics(w, iort.Metrics())
			// Scraping port health also advances the port breakers, exactly
			// like the vdev-health families above.
			writePortHealthMetrics(w, iort.PortHealth())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func writeMetrics(w io.Writer, sw *sim.Switch, d *dpmu.DPMU) {
	snap := sw.Metrics()
	st := sw.Stats()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("hyper4_packets_in_total", "Packets submitted to the switch.", int64(st.PacketsIn))
	counter("hyper4_packets_out_total", "Packets emitted by the switch.", int64(st.PacketsOut))
	counter("hyper4_packets_dropped_total", "Packets that produced no output.", int64(st.PacketsDropped))
	counter("hyper4_resubmits_total", "Resubmit operations.", int64(st.Resubmits))
	counter("hyper4_recirculates_total", "Recirculate operations.", int64(st.Recirculates))
	counter("hyper4_clones_total", "Clone operations.", int64(st.Clones))
	counter("hyper4_table_applies_total", "Match-action stages executed.", int64(st.TableApplies))

	tables := make([]string, 0, len(snap.Tables))
	for name := range snap.Tables {
		tables = append(tables, name)
	}
	sort.Strings(tables)
	perTable := func(name, help string, get func(sim.TableCounters) int64, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, t := range tables {
			fmt.Fprintf(w, "%s{table=%q} %d\n", name, escapeLabel(t), get(snap.Tables[t]))
		}
	}
	perTable("hyper4_table_hits_total", "Lookups that matched an installed entry.",
		func(c sim.TableCounters) int64 { return c.Hits }, "counter")
	perTable("hyper4_table_misses_total", "Lookups that matched nothing.",
		func(c sim.TableCounters) int64 { return c.Misses }, "counter")
	perTable("hyper4_table_default_actions_total", "Misses on which a configured default action ran.",
		func(c sim.TableCounters) int64 { return c.Defaults }, "counter")
	perTable("hyper4_table_entries", "Currently installed entries.",
		func(c sim.TableCounters) int64 { return int64(c.Entries) }, "gauge")

	actions := make([]string, 0, len(snap.Actions))
	for name := range snap.Actions {
		actions = append(actions, name)
	}
	sort.Strings(actions)
	fmt.Fprintf(w, "# HELP hyper4_action_invocations_total Action executions by name.\n# TYPE hyper4_action_invocations_total counter\n")
	for _, a := range actions {
		fmt.Fprintf(w, "hyper4_action_invocations_total{action=%q} %d\n", escapeLabel(a), snap.Actions[a])
	}

	fmt.Fprintf(w, "# HELP hyper4_pipeline_passes_total Pipeline passes by bmv2 instance type.\n# TYPE hyper4_pipeline_passes_total counter\n")
	for _, kv := range []struct {
		kind string
		v    int64
	}{
		{"normal", snap.Passes.Normal},
		{"resubmit", snap.Passes.Resubmit},
		{"recirculate", snap.Passes.Recirculate},
		{"clone_i2e", snap.Passes.CloneI2E},
		{"clone_e2e", snap.Passes.CloneE2E},
	} {
		fmt.Fprintf(w, "hyper4_pipeline_passes_total{kind=%q} %d\n", kv.kind, kv.v)
	}

	fmt.Fprintf(w, "# HELP hyper4_process_latency_seconds Wall time of Process calls.\n# TYPE hyper4_process_latency_seconds histogram\n")
	var cum int64
	for i, c := range snap.Latency.Counts {
		cum += c
		if i < len(snap.Latency.Bounds) {
			fmt.Fprintf(w, "hyper4_process_latency_seconds_bucket{le=%q} %d\n",
				fmt.Sprintf("%g", snap.Latency.Bounds[i].Seconds()), cum)
		} else {
			fmt.Fprintf(w, "hyper4_process_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
		}
	}
	fmt.Fprintf(w, "hyper4_process_latency_seconds_sum %g\n", float64(snap.Latency.SumNs)/1e9)
	fmt.Fprintf(w, "hyper4_process_latency_seconds_count %d\n", snap.Latency.Count)

	fmt.Fprintf(w, "# HELP hyper4_packet_faults_total Contained packet faults by kind.\n# TYPE hyper4_packet_faults_total counter\n")
	byKind := snap.Faults.ByKind()
	for _, kind := range sim.FaultKinds() {
		fmt.Fprintf(w, "hyper4_packet_faults_total{kind=%q} %d\n", string(kind), byKind[kind])
	}
	counter("hyper4_quarantine_drops_total", "Passes dropped because their device is quarantined.", snap.Faults.QuarantineDrops)

	if d == nil {
		return
	}
	all := d.AllStats()
	fmt.Fprintf(w, "# HELP hyper4_vdev_passes_total Pipeline passes attributed to a virtual device.\n# TYPE hyper4_vdev_passes_total counter\n")
	for _, v := range all {
		fmt.Fprintf(w, "hyper4_vdev_passes_total{vdev=%q} %d\n", escapeLabel(v.VDev), v.Packets)
	}
	fmt.Fprintf(w, "# HELP hyper4_vdev_bytes_total Bytes attributed to a virtual device.\n# TYPE hyper4_vdev_bytes_total counter\n")
	for _, v := range all {
		fmt.Fprintf(w, "hyper4_vdev_bytes_total{vdev=%q} %d\n", escapeLabel(v.VDev), v.Bytes)
	}
	fmt.Fprintf(w, "# HELP hyper4_vdev_table_hits_total Virtual-table hits per virtual device.\n# TYPE hyper4_vdev_table_hits_total counter\n")
	for _, v := range all {
		for _, ts := range v.Tables {
			fmt.Fprintf(w, "hyper4_vdev_table_hits_total{vdev=%q,table=%q} %d\n",
				escapeLabel(v.VDev), escapeLabel(ts.Table), ts.Hits)
		}
	}
	fmt.Fprintf(w, "# HELP hyper4_vdev_table_misses_total Virtual-table misses per virtual device.\n# TYPE hyper4_vdev_table_misses_total counter\n")
	for _, v := range all {
		for _, ts := range v.Tables {
			fmt.Fprintf(w, "hyper4_vdev_table_misses_total{vdev=%q,table=%q} %d\n",
				escapeLabel(v.VDev), escapeLabel(ts.Table), ts.Misses)
		}
	}

	// Scraping health also advances the breaker state machine, so a
	// monitored switch transitions quarantined → probing → healthy without
	// any other management traffic.
	health := d.Health()
	fmt.Fprintf(w, "# HELP hyper4_vdev_health Circuit-breaker state (0 healthy, 1 degraded, 2 probing, 3 quarantined).\n# TYPE hyper4_vdev_health gauge\n")
	for _, v := range health.VDevs {
		fmt.Fprintf(w, "hyper4_vdev_health{vdev=%q} %d\n", escapeLabel(v.VDev), healthValue(v.State))
	}
	fmt.Fprintf(w, "# HELP hyper4_vdev_health_trips_total Circuit-breaker trips per virtual device.\n# TYPE hyper4_vdev_health_trips_total counter\n")
	for _, v := range health.VDevs {
		fmt.Fprintf(w, "hyper4_vdev_health_trips_total{vdev=%q} %d\n", escapeLabel(v.VDev), v.Trips)
	}
	fmt.Fprintf(w, "# HELP hyper4_vdev_faults_total Packet faults attributed to a virtual device.\n# TYPE hyper4_vdev_faults_total counter\n")
	for _, v := range health.VDevs {
		fmt.Fprintf(w, "hyper4_vdev_faults_total{vdev=%q} %d\n", escapeLabel(v.VDev), v.Faults)
	}
	counter("hyper4_unattributed_faults_total", "Packet faults with no owning virtual device.", health.Unattributed)
}

// writeIOMetrics renders the packet I/O runtime families: per-port frame
// and drop counters, per-ring occupancy, and the global processing counters.
func writeIOMetrics(w io.Writer, m pktio.Metrics) {
	fmt.Fprintf(w, "# HELP hyper4_rx_frames_total Frames received on a port's transport.\n# TYPE hyper4_rx_frames_total counter\n")
	for _, p := range m.Ports {
		fmt.Fprintf(w, "hyper4_rx_frames_total{port=\"%d\"} %d\n", p.Port, p.RxFrames)
	}
	fmt.Fprintf(w, "# HELP hyper4_tx_frames_total Frames transmitted out a port's transport.\n# TYPE hyper4_tx_frames_total counter\n")
	for _, p := range m.Ports {
		fmt.Fprintf(w, "hyper4_tx_frames_total{port=\"%d\"} %d\n", p.Port, p.TxFrames)
	}
	fmt.Fprintf(w, "# HELP hyper4_ring_depth Current occupancy of a port-worker ring.\n# TYPE hyper4_ring_depth gauge\n")
	for _, p := range m.Ports {
		for wkr, depth := range p.RxDepth {
			fmt.Fprintf(w, "hyper4_ring_depth{port=\"%d\",worker=\"%d\",dir=\"rx\"} %d\n", p.Port, wkr, depth)
		}
		for wkr, depth := range p.TxDepth {
			fmt.Fprintf(w, "hyper4_ring_depth{port=\"%d\",worker=\"%d\",dir=\"tx\"} %d\n", p.Port, wkr, depth)
		}
	}
	fmt.Fprintf(w, "# HELP hyper4_ring_drops_total Frames dropped because a ring was full.\n# TYPE hyper4_ring_drops_total counter\n")
	for _, p := range m.Ports {
		fmt.Fprintf(w, "hyper4_ring_drops_total{port=\"%d\",dir=\"rx\"} %d\n", p.Port, p.RxDrops)
		fmt.Fprintf(w, "hyper4_ring_drops_total{port=\"%d\",dir=\"tx\"} %d\n", p.Port, p.TxDrops)
	}
	fmt.Fprintf(w, "# HELP hyper4_tx_errors_total Transport send failures.\n# TYPE hyper4_tx_errors_total counter\n")
	for _, p := range m.Ports {
		fmt.Fprintf(w, "hyper4_tx_errors_total{port=\"%d\"} %d\n", p.Port, p.TxErrors)
	}
	fmt.Fprintf(w, "# HELP hyper4_io_processed_total Frames the runtime handed to the switch.\n# TYPE hyper4_io_processed_total counter\nhyper4_io_processed_total %d\n", m.Processed)
	fmt.Fprintf(w, "# HELP hyper4_io_proc_errors_total Frames the switch failed on.\n# TYPE hyper4_io_proc_errors_total counter\nhyper4_io_proc_errors_total %d\n", m.ProcErrs)
	fmt.Fprintf(w, "# HELP hyper4_unrouted_frames_total Frames forwarded to a port with no transport attached.\n# TYPE hyper4_unrouted_frames_total counter\nhyper4_unrouted_frames_total %d\n", m.Unrouted)
}

// writePortHealthMetrics renders the per-port breaker families. Quarantined
// ports stay listed even while their transport is detached — that is the
// alertable state.
func writePortHealthMetrics(w io.Writer, phs []pktio.PortHealth) {
	fmt.Fprintf(w, "# HELP hyper4_port_health Port circuit-breaker state (0 healthy, 1 degraded, 2 probing, 3 quarantined).\n# TYPE hyper4_port_health gauge\n")
	for _, p := range phs {
		fmt.Fprintf(w, "hyper4_port_health{port=\"%d\"} %d\n", p.Port, portHealthValue(p.State))
	}
	fmt.Fprintf(w, "# HELP hyper4_port_health_trips_total Port circuit-breaker trips.\n# TYPE hyper4_port_health_trips_total counter\n")
	for _, p := range phs {
		fmt.Fprintf(w, "hyper4_port_health_trips_total{port=\"%d\"} %d\n", p.Port, p.Trips)
	}
	fmt.Fprintf(w, "# HELP hyper4_port_reattach_total Successful automatic transport reattaches after quarantine.\n# TYPE hyper4_port_reattach_total counter\n")
	for _, p := range phs {
		fmt.Fprintf(w, "hyper4_port_reattach_total{port=\"%d\"} %d\n", p.Port, p.Reattaches)
	}
	fmt.Fprintf(w, "# HELP hyper4_port_io_errors_total Transport faults charged to a port's breaker window, by kind.\n# TYPE hyper4_port_io_errors_total counter\n")
	for _, p := range phs {
		fmt.Fprintf(w, "hyper4_port_io_errors_total{port=\"%d\",kind=\"recv\"} %d\n", p.Port, p.RecvErrors)
		fmt.Fprintf(w, "hyper4_port_io_errors_total{port=\"%d\",kind=\"send\"} %d\n", p.Port, p.SendErrors)
		fmt.Fprintf(w, "hyper4_port_io_errors_total{port=\"%d\",kind=\"stall\"} %d\n", p.Port, p.Stalls)
	}
}

// portHealthValue mirrors healthValue for the port breaker states.
func portHealthValue(s pktio.HealthState) int {
	switch s {
	case pktio.PortDegraded:
		return 1
	case pktio.PortProbing:
		return 2
	case pktio.PortQuarantined:
		return 3
	}
	return 0
}

// healthValue encodes a breaker state for the hyper4_vdev_health gauge,
// ordered by severity so alerts can threshold on it.
func healthValue(s dpmu.HealthState) int {
	switch s {
	case dpmu.Degraded:
		return 1
	case dpmu.Probing:
		return 2
	case dpmu.Quarantined:
		return 3
	}
	return 0
}
