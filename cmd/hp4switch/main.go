// Command hp4switch runs a software P4 switch interactively: load a program
// (a .p4 file, a built-in function, or the generated persona), feed it
// runtime commands and packets, and observe the outputs.
//
// Usage:
//
//	hp4switch -builtin l2_switch [-commands file.txt]
//	hp4switch -persona [-commands file.txt] [-api-addr 127.0.0.1:9191]
//	hp4switch foo.p4
//
// The switch serves real wire traffic through the packet I/O runtime
// (internal/runtime): attach a transport to a physical port with the
// "port attach <port> <spec>" control command (spec e.g. "udp:0.0.0.0:9000"
// or "udp:0.0.0.0:9000/10.0.0.2:9001"), or seed one at startup with
// -listen port=spec (repeatable). Frames arriving on attached transports are
// sharded onto per-worker rings — by vdev program ID in persona mode — and
// forwarded out the egress port's transport.
//
// The interactive prompt accepts every command of internal/sim/runtime plus:
//
//	packet <port> <hex bytes>   inject a packet; outputs are printed
//	trace <port> <hex bytes>    inject and print the full table trace
//	tables                      list tables and entry counts
//	stats                       switch counters, pass kinds, latency percentiles
//	stats table <name>          one table's hit/miss/default counters
//	stats <vdev>                per-virtual-table stats of a device (persona mode)
//	health [vdev]               circuit-breaker health (persona mode)
//	reset <vdev>                force a quarantined device healthy (persona mode)
//	quit
//
// A SIGINT/SIGTERM shuts down gracefully: API writes stop, in-flight work
// drains, event streams are released, and the process exits 0. The -chaos
// flag arms deterministic fault injection (internal/chaos) for resilience
// drills; the -health-* flags tune the per-vdev circuit breakers.
//
// With -metrics-addr the same counters are served continuously in Prometheus
// text format on /metrics, with pprof under /debug/pprof/.
//
// In -persona mode the prompt additionally accepts every control-plane
// management command (load/assign/map/link/snapshot_…, see
// internal/core/ctl) and virtual table operations of the form
// "<vdev> table_add …", so a whole virtualized configuration can be driven
// interactively or from a -commands script. With -api-addr the same
// operations are served remotely as typed, atomically-batched HTTP writes
// (drive them with hp4ctl), and a failing -commands script exits with the
// structured code of its first error.
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	goruntime "runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"errors"

	"hyper4/internal/chaos"
	"hyper4/internal/core/ctl"
	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
	"hyper4/internal/pkt"
	pktio "hyper4/internal/runtime"
	"hyper4/internal/sim"
	"hyper4/internal/sim/runtime"
)

func main() {
	builtin := flag.String("builtin", "", "run a built-in function: "+strings.Join(functions.Names(), ", "))
	usePersona := flag.Bool("persona", false, "run the HyPer4 persona (reference configuration)")
	commands := flag.String("commands", "", "runtime command file to execute at startup")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics and pprof on this address (e.g. 127.0.0.1:9090)")
	apiAddr := flag.String("api-addr", "", "serve the management API on this address (persona mode, e.g. 127.0.0.1:9191)")
	chaosSpec := flag.String("chaos", "", "deterministic fault injection spec, e.g. \"seed=1,attr=2,panic_every=4\" (see internal/chaos)")
	chaosIOSpec := flag.String("chaos-io", "", "deterministic transport fault injection spec, e.g. \"seed=1,io_port=2,recv_err_every=4\" (see internal/chaos)")
	journalDir := flag.String("journal", "", "journal applied control-plane batches to this directory and recover from it at boot (persona mode)")
	healthWindow := flag.Duration("health-window", 10*time.Second, "circuit breaker: sliding fault window (persona mode)")
	healthTrip := flag.Int("health-trip", 5, "circuit breaker: faults within the window that trip quarantine")
	healthOpen := flag.Duration("health-open", 5*time.Second, "circuit breaker: quarantine time before half-open probing")
	healthProbes := flag.Int("health-probes", 10, "circuit breaker: clean probe passes required to restore")
	healthPolicy := flag.String("health-policy", "drop", "quarantine policy: drop | bypass")
	fuse := flag.Bool("fuse", false, "enable the fused fast path: compile per-vdev dispatch plans and bypass the interpreted persona walk (persona mode)")
	// -listen seeds the I/O runtime with transports at startup; everything
	// it does is also reachable at runtime via "port attach".
	type listenSeed struct {
		port int
		spec string
	}
	var listenSeeds []listenSeed
	flag.Func("listen", "attach a wire transport at startup, port=spec (e.g. 1=udp:0.0.0.0:9000; repeatable)", func(s string) error {
		portStr, spec, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want port=spec, got %q", s)
		}
		p, err := strconv.Atoi(portStr)
		if err != nil || p < 0 {
			return fmt.Errorf("bad port %q", portStr)
		}
		listenSeeds = append(listenSeeds, listenSeed{port: p, spec: spec})
		return nil
	})
	flag.Parse()

	quarPolicy, policyErr := dpmu.ParseQuarantinePolicy(*healthPolicy)
	if policyErr != nil {
		fmt.Fprintln(os.Stderr, "hp4switch: -health-policy:", policyErr)
		os.Exit(2)
	}

	var prog *hlir.Program
	var pers *persona.Persona
	var err error
	switch {
	case *usePersona:
		pers, err = persona.Generate(persona.Reference)
		if err == nil {
			prog = pers.Program
		}
	case *builtin != "":
		prog, err = functions.Load(*builtin)
	case flag.NArg() == 1:
		var src []byte
		if src, err = os.ReadFile(flag.Arg(0)); err == nil {
			var parsed, perr = parser.Parse(flag.Arg(0), string(src))
			if perr != nil {
				err = perr
			} else {
				prog, err = hlir.Resolve(parsed)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: hp4switch -builtin <fn> | -persona | foo.p4")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hp4switch:", err)
		os.Exit(1)
	}

	sw, err := sim.New("sw0", prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hp4switch:", err)
		os.Exit(1)
	}
	rt := runtime.New(sw)
	var mgmt *ctl.CLI
	var cp *ctl.Ctl
	var d *dpmu.DPMU
	if pers != nil {
		d, err = dpmu.New(sw, pers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hp4switch:", err)
			os.Exit(1)
		}
		d.SetHealthConfig(dpmu.HealthConfig{
			Window:       *healthWindow,
			TripFaults:   *healthTrip,
			OpenFor:      *healthOpen,
			ProbePackets: *healthProbes,
			Policy:       quarPolicy,
		})
		if *fuse {
			d.SetFusion(true)
			fmt.Println("fused fast path enabled (query with: fuse)")
		}
		cp = ctl.New(d)
		mgmt = ctl.NewCLI(cp, "operator")
		fmt.Println("persona loaded; DPMU management commands available")
	}

	// The packet I/O runtime: dedicated RX/TX loops per attached transport,
	// frames sharded onto per-worker rings. In persona mode the shard key is
	// the ingress port's assigned vdev program ID, so one device's traffic
	// (and its breaker/health accounting) stays on one worker.
	ioCfg := pktio.Config{Workers: goruntime.GOMAXPROCS(0)}
	if d != nil {
		dd := d
		ioCfg.ShardKey = func(port int) int {
			if pid := dd.PIDForPort(port); pid >= 0 {
				return pid
			}
			return port
		}
	}
	if *chaosIOSpec != "" {
		spec, err := chaos.ParseSpec(*chaosIOSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hp4switch: -chaos-io:", err)
			os.Exit(2)
		}
		inj := chaos.New(spec)
		// Every spec-built transport — startup seeds, runtime attaches, and
		// breaker auto-reattaches alike — comes back chaos-wrapped.
		ioCfg.TransportFactory = func(port int, spec string) (pktio.Transport, error) {
			tr, err := pktio.NewTransport(spec)
			if err != nil {
				return nil, err
			}
			return inj.WrapTransport(port, tr), nil
		}
		fmt.Printf("transport chaos armed: %s\n", *chaosIOSpec)
	}
	iort := pktio.New(sw, ioCfg)
	iort.Start()
	if cp != nil {
		cp.IO = iort
		// Bridge port-breaker transitions onto the management event stream.
		ccp := cp
		iort.SetHealthNotify(func(ph pktio.PortHealth) {
			ccp.PublishPortHealth(ph.Port, ph.Spec, string(ph.State))
		})
	}
	var jrnl *ctl.Journal
	if *journalDir != "" {
		if cp == nil {
			fmt.Fprintln(os.Stderr, "hp4switch: -journal requires -persona")
			os.Exit(2)
		}
		j, jerr := ctl.OpenJournal(*journalDir, ctl.DefaultSnapshotEvery)
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "hp4switch: -journal:", jerr)
			os.Exit(1)
		}
		summary, jerr := cp.AttachJournal(j)
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "hp4switch: -journal: recovery:", jerr)
			os.Exit(1)
		}
		jrnl = j
		fmt.Printf("journal at %s: snapshot seq %d, replayed %d batches, %d ports reattached\n",
			*journalDir, summary.SnapshotSeq, summary.Replayed, summary.PortsAttached)
		if summary.Truncated {
			fmt.Println("journal: truncated a torn (unacknowledged) trailing record")
		}
		for _, w := range summary.Warnings {
			fmt.Fprintln(os.Stderr, "hp4switch: journal recovery:", w)
		}
		defer j.Close()
	}
	for _, seed := range listenSeeds {
		if jrnl != nil && portAttachedWithSpec(iort, seed.port, seed.spec) {
			// Journal recovery already restored this port; the seed is the
			// same wiring restated, not a conflict.
			fmt.Printf("port %d listening (%s, restored from journal)\n", seed.port, seed.spec)
			continue
		}
		// Route through the control plane when there is one, so seeds are
		// evented and listed identically to runtime attaches.
		var seedErr error
		if mgmt != nil {
			_, seedErr = mgmt.Exec(fmt.Sprintf("port attach %d %s", seed.port, seed.spec))
		} else {
			seedErr = iort.AttachSpec(seed.port, seed.spec)
		}
		if seedErr != nil {
			fmt.Fprintln(os.Stderr, "hp4switch: -listen:", seedErr)
			os.Exit(ctl.CodeOf(seedErr).ExitCode())
		}
		fmt.Printf("port %d listening (%s)\n", seed.port, seed.spec)
	}
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hp4switch: -chaos:", err)
			os.Exit(2)
		}
		sw.SetInjector(chaos.New(spec))
		fmt.Printf("chaos injection armed: %s\n", *chaosSpec)
	}

	// cmdMu serializes command execution against shutdown: the signal
	// handler takes it so an in-flight command or script line finishes
	// before the process exits.
	var cmdMu sync.Mutex
	var apiSrv, metricsSrv *http.Server

	if *apiAddr != "" {
		if cp == nil {
			fmt.Fprintln(os.Stderr, "hp4switch: -api-addr requires -persona")
			os.Exit(2)
		}
		ln, err := net.Listen("tcp", *apiAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hp4switch: api:", err)
			os.Exit(1)
		}
		fmt.Printf("management API on http://%s/v1/ (drive with hp4ctl -addr http://%s)\n", ln.Addr(), ln.Addr())
		apiSrv = &http.Server{Handler: ctl.NewServeMux(cp)}
		go func() {
			if err := apiSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "hp4switch: api:", err)
			}
		}()
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hp4switch: metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
		metricsSrv = &http.Server{Handler: newMetricsMux(sw, d, iort)}
		go func() {
			if err := metricsSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "hp4switch: metrics:", err)
			}
		}()
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting API writes, let
	// in-flight requests and the current REPL/script command drain, release
	// event-stream long-polls, then exit 0 — fault containment extends to
	// the process boundary.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nhp4switch: %v: draining and shutting down\n", s)
		if cp != nil {
			cp.Close() // long-polls return so Shutdown isn't held hostage
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if apiSrv != nil {
			_ = apiSrv.Shutdown(ctx)
		}
		if metricsSrv != nil {
			_ = metricsSrv.Shutdown(ctx)
		}
		cmdMu.Lock() // wait for the in-flight command, then never release
		// Drain the data plane last: ingestion stops, workers finish the
		// ring backlog, queued egress flushes, transports close.
		iort.Close()
		if jrnl != nil {
			// Acked batches are already fsync'd; this just releases the wal
			// handle so the exit is indistinguishable from a clean close.
			_ = jrnl.Close()
		}
		os.Exit(0)
	}()

	if *commands != "" {
		script, err := os.ReadFile(*commands)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hp4switch:", err)
			os.Exit(1)
		}
		cmdMu.Lock()
		var execErr error
		if mgmt != nil {
			execErr = mgmt.ExecAll(string(script))
		} else {
			execErr = rt.ExecAll(string(script))
		}
		cmdMu.Unlock()
		if execErr != nil {
			fmt.Fprintln(os.Stderr, "hp4switch:", execErr)
			os.Exit(ctl.CodeOf(execErr).ExitCode())
		}
		fmt.Printf("executed %s\n", *commands)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("hp4> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if line == "quit" || line == "exit" {
				return
			}
			cmdMu.Lock()
			handle(sw, rt, mgmt, iort, line)
			cmdMu.Unlock()
		}
		fmt.Print("hp4> ")
	}
	// A scan error (e.g. an input line over the 1 MiB buffer) must not look
	// like a clean quit.
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "hp4switch: reading input:", err)
		os.Exit(1)
	}
}

func handle(sw *sim.Switch, rt *runtime.Runtime, mgmt *ctl.CLI, iort *pktio.Runtime, line string) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "port":
		// One grammar both ways: in persona mode port ops flow through the
		// management CLI (evented, batched, remotable); outside it the same
		// grammar applies directly to the I/O runtime.
		var out string
		var err error
		if mgmt != nil {
			out, err = mgmt.Exec(line)
		} else {
			out, err = portExec(iort, line)
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if out != "" {
			fmt.Println(out)
		}
	case "packet", "trace":
		if len(fields) < 3 {
			fmt.Println("usage: packet <port> <hexbytes>")
			return
		}
		port, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Println("bad port:", fields[1])
			return
		}
		data, err := hex.DecodeString(strings.Join(fields[2:], ""))
		if err != nil {
			fmt.Println("bad hex:", err)
			return
		}
		outs, tr, err := sw.Process(data, port)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if fields[0] == "trace" {
			fmt.Printf("passes=%d resubmits=%d recirculates=%d applies=%d\n",
				tr.Passes, tr.Resubmits, tr.Recirculates, tr.Applies)
			for _, ap := range tr.ApplyLog {
				pipe := "ingress"
				if ap.Egress {
					pipe = "egress"
				}
				result := "miss"
				if ap.Hit {
					result = "hit"
				}
				fmt.Printf("  %-7s %-24s %s\n", pipe, ap.Table, result)
			}
		}
		if len(outs) == 0 {
			fmt.Println("dropped")
		}
		for _, o := range outs {
			fmt.Printf("port %d <- %x\n", o.Port, o.Data)
			fmt.Printf("          %s\n", pkt.Summary(o.Data))
		}
	case "tables":
		for _, name := range sw.TableNames() {
			n, _ := sw.TableEntryCount(name)
			if n > 0 {
				fmt.Printf("%-28s %d entries\n", name, n)
			}
		}
	case "stats":
		switch {
		case len(fields) == 1:
			s := sw.Stats()
			fmt.Printf("in=%d out=%d dropped=%d resubmits=%d recirculates=%d applies=%d\n",
				s.PacketsIn, s.PacketsOut, s.PacketsDropped, s.Resubmits, s.Recirculates, s.TableApplies)
			m := sw.Metrics()
			fmt.Printf("passes: normal=%d resubmit=%d recirculate=%d clone_i2e=%d clone_e2e=%d\n",
				m.Passes.Normal, m.Passes.Resubmit, m.Passes.Recirculate, m.Passes.CloneI2E, m.Passes.CloneE2E)
			if f := m.Faults; f.Total() > 0 || f.QuarantineDrops > 0 {
				fmt.Printf("faults: panic=%d pass_bound=%d parse=%d pipeline=%d deparse=%d quarantine_drops=%d\n",
					f.Panic, f.PassBound, f.Parse, f.Pipeline, f.Deparse, f.QuarantineDrops)
			}
			if m.Latency.Count > 0 {
				fmt.Printf("latency: p50=%v p90=%v p99=%v p999=%v\n",
					m.Latency.Quantile(0.50), m.Latency.Quantile(0.90),
					m.Latency.Quantile(0.99), m.Latency.Quantile(0.999))
			}
		case fields[1] == "table" && len(fields) == 3:
			tc, err := sw.TableMetrics(fields[2])
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("table %s: hits=%d misses=%d default_actions=%d entries=%d\n",
				fields[2], tc.Hits, tc.Misses, tc.Defaults, tc.Entries)
		case len(fields) == 2 && mgmt != nil:
			// stats <vdev>: the DPMU's per-virtual-table view.
			out, err := mgmt.Exec(line)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Println(out)
		default:
			fmt.Println("usage: stats | stats table <name> | stats <vdev>")
		}
	default:
		if mgmt != nil {
			out, err := mgmt.Exec(line)
			if err == nil {
				if out != "" {
					fmt.Println(out)
				}
				return
			}
			// Fall through to raw switch commands for anything outside the
			// control-plane dialect.
			if !errors.Is(err, ctl.ErrUnknown) {
				fmt.Println("error:", err)
				return
			}
		}
		out, err := rt.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if out != "" {
			fmt.Println(out)
		}
	}
}

// portAttachedWithSpec reports whether the port is already attached with
// exactly this spec (journal recovery restores ports before -listen seeds
// run; an identical seed is then a restatement, not a conflict).
func portAttachedWithSpec(iort *pktio.Runtime, port int, spec string) bool {
	for _, p := range iort.Ports() {
		if p.Port == port && p.Spec == spec {
			return true
		}
	}
	return false
}

// portExec applies a port command straight to the I/O runtime, for switches
// running without a control plane. Same grammar, same one-parse-path: the
// line goes through ctl.ParseLine and only port ops are accepted here.
func portExec(iort *pktio.Runtime, line string) (string, error) {
	op, q, err := ctl.ParseLine(line)
	if err != nil {
		return "", err
	}
	switch {
	case op != nil && op.Kind == ctl.OpPortAttach:
		if err := iort.AttachSpec(op.PhysPort, op.Spec); err != nil {
			return "", err
		}
		return fmt.Sprintf("port %d attached (%s)", op.PhysPort, op.Spec), nil
	case op != nil && op.Kind == ctl.OpPortDetach:
		if err := iort.Detach(op.PhysPort); err != nil {
			return "", err
		}
		return fmt.Sprintf("port %d detached", op.PhysPort), nil
	case q != nil && q.Kind == "ports":
		return ctl.FormatRead(q, &ctl.ReadResult{Ports: iort.Ports()}), nil
	}
	return "", fmt.Errorf("not a port command: %q", line)
}
