// Command hp4bench regenerates every table and figure of the paper's
// evaluation (§6), printing measured values next to the published ones.
//
// Usage:
//
//	hp4bench                 # everything except the slow Table 5
//	hp4bench -all            # everything, Table 5 at paper-like sizing
//	hp4bench -only table1    # one experiment: table1 table2 table3 table4
//	                         # table5 figure7 figure8 space passes rmt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hyper4/internal/bench"
)

func main() {
	all := flag.Bool("all", false, "include the slow Table 5 measurement at paper-like sizing")
	only := flag.String("only", "", "run a single experiment")
	runs := flag.Int("runs", 10, "Table 5 repetitions")
	pings := flag.Int("pings", 1000, "Table 5 ping count")
	mbytes := flag.Int64("mbytes", 2, "Table 5 iperf megabytes per run")
	parallel := flag.Bool("parallel", false, "run the batched-throughput experiment (serial vs ProcessBatch pkts/sec)")
	throughputPkts := flag.Int("throughput-pkts", 4096, "packets per throughput measurement")
	throughputJSON := flag.String("throughput-json", "BENCH_throughput.json", "write throughput results to this JSON file (empty = stdout only)")
	faults := flag.Bool("faults", false, "add an hp4-hooks throughput row (armed-but-idle fault injector) and assert it sits within noise of plain hp4")
	modes := flag.String("modes", "", "comma-separated throughput mode filter (native,hp4,hp4-fused,hp4-ctl,hp4-hooks); empty = all")
	flag.Parse()

	experiments := []struct {
		name string
		slow bool
		run  func() error
	}{
		{"table1", false, table1},
		{"table2", false, table2},
		{"table3", false, table3},
		{"table4", false, table4},
		{"space", false, space},
		{"figure7", false, figure7},
		{"figure8", false, figure8},
		{"passes", false, passes},
		{"rmt", false, rmtRun},
		{"ablations", false, ablations},
		{"table5", true, func() error {
			return table5(bench.Table5Opts{
				Runs: *runs, IperfBytes: *mbytes << 20, Pings: *pings,
				MSS: 1400, SwitchOverhead: 100 * time.Microsecond,
			})
		}},
	}
	if *parallel || *only == "throughput" {
		if err := throughput(*throughputPkts, *throughputJSON, *faults, *modes); err != nil {
			fmt.Fprintf(os.Stderr, "hp4bench throughput: %v\n", err)
			os.Exit(1)
		}
		if *only == "throughput" || *parallel {
			return
		}
	}
	ran := false
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		if *only == "" && e.slow && !*all {
			fmt.Printf("== %s skipped (use -all or -only table5) ==\n\n", e.name)
			continue
		}
		ran = true
		fmt.Printf("== %s ==\n", e.name)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "hp4bench %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "hp4bench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

func table1() error {
	rows, err := bench.Table1()
	if err != nil {
		return err
	}
	fmt.Println("Table 1: matches for most complex processing, native vs HyPer4")
	fmt.Printf("%-12s %8s %8s %8s %8s %7s\n", "program", "native", "paper", "hp4", "paper", "ratio")
	for _, r := range rows {
		fmt.Printf("%-12s %8d %8d %8d %8d %6.1fx\n",
			r.Program, r.Native, r.PaperNative, r.HyPer4, r.PaperHyPer4,
			float64(r.HyPer4)/float64(r.Native))
	}
	return nil
}

func table2() error {
	cells, err := bench.Table23()
	if err != nil {
		return err
	}
	fmt.Println("Table 2: persona tables referenced by BOTH programs (diagonal = total)")
	for _, c := range cells {
		if c.A == c.B {
			fmt.Printf("%-12s x %-12s total = %d\n", c.A, c.B, c.TotalA)
		} else {
			fmt.Printf("%-12s x %-12s shared = %d\n", c.A, c.B, c.Shared)
		}
	}
	return nil
}

func table3() error {
	cells, err := bench.Table23()
	if err != nil {
		return err
	}
	fmt.Println("Table 3: persona tables uniquely referenced per pair")
	for _, c := range cells {
		if c.A == c.B {
			continue
		}
		fmt.Printf("%-12s vs %-12s unique: %d / %d\n", c.A, c.B, c.UniqueA, c.UniqueB)
	}
	return nil
}

func table4() error {
	rows, err := bench.Table4()
	if err != nil {
		return err
	}
	fmt.Println("Table 4: ternary match usage (bits per packet, most complex path)")
	fmt.Printf("%-12s %10s %10s %10s %10s %9s %9s\n",
		"program", "total", "paper", "active", "paper", "matches", "paper")
	for _, r := range rows {
		fmt.Printf("%-12s %10d %10d %10d %10d %9d %9d\n",
			r.Program, r.TotalBits, r.PaperTotal, r.ActiveBits, r.PaperActive,
			r.TernaryMatches, r.PaperMatches)
	}
	return nil
}

func table5(opts bench.Table5Opts) error {
	rows, err := bench.Table5(opts)
	if err != nil {
		return err
	}
	fmt.Printf("Table 5: bandwidth (iperf-like, %d MB) and latency (ping flood, %d pings), %d runs\n",
		opts.IperfBytes>>20, opts.Pings, opts.Runs)
	fmt.Printf("%-10s | %21s | %21s | %18s | %18s | penalty (paper) | lat ratio (paper)\n",
		"", "native Mbps ±σ", "hp4 Mbps ±σ", "native ping ±σ", "hp4 ping ±σ")
	for _, r := range rows {
		fmt.Printf("%-10s | %12.1f ± %6.2f | %12.1f ± %6.2f | %10v ± %5v | %10v ± %5v | %6.0f%% (%3.0f%%) | %6.1fx (%.1fx)\n",
			r.Scenario,
			r.NativeMbps, r.NativeMbpsSD, r.HP4Mbps, r.HP4MbpsSD,
			r.NativeLat.Round(time.Microsecond), r.NativeLatSD.Round(time.Microsecond),
			r.HP4Lat.Round(time.Microsecond), r.HP4LatSD.Round(time.Microsecond),
			100*r.BandwidthPenalty, 100*r.PaperPenalty, r.LatencyRatio, r.PaperLatency)
	}
	return nil
}

func figure7() error {
	points, err := bench.FigureSweep()
	if err != nil {
		return err
	}
	fmt.Println("Figure 7: persona LoC by stages and primitives per stage")
	fmt.Printf("%8s %11s %10s %10s %10s\n", "stages", "primitives", "total LoC", "drop LoC", "mod LoC")
	for _, p := range points {
		fmt.Printf("%8d %11d %10d %10d %10d\n", p.Stages, p.Primitives, p.LoC, p.DropLoC, p.ModLoC)
	}
	fmt.Println("(paper: ~6400 LoC at 4 stages x 9 primitives; linear growth in both axes)")
	return nil
}

func figure8() error {
	points, err := bench.FigureSweep()
	if err != nil {
		return err
	}
	fmt.Println("Figure 8: persona tables declared by stages and primitives per stage")
	// Render as a grid: rows = stages, cols = primitives.
	prims := []int{1, 3, 5, 7, 9}
	fmt.Printf("%8s", "stages\\p")
	for _, p := range prims {
		fmt.Printf(" %6d", p)
	}
	fmt.Println()
	grid := map[[2]int]int{}
	for _, pt := range points {
		grid[[2]int{pt.Stages, pt.Primitives}] = pt.Tables
	}
	for s := 1; s <= 5; s++ {
		fmt.Printf("%8d", s)
		for _, p := range prims {
			fmt.Printf(" %6d", grid[[2]int{s, p}])
		}
		fmt.Println()
	}
	fmt.Println("(paper: 346 tables at 4 stages x 9 primitives)")
	return nil
}

func space() error {
	s, err := bench.Space()
	if err != nil {
		return err
	}
	fmt.Println("Space analysis (§6.2):")
	fmt.Printf("  persona tables:          %d (paper: 346)\n", s.Tables)
	fmt.Printf("  persona actions:         %d (paper: 130, of which 80 resize; ours: %d resize)\n", s.Actions, s.ResizeActions)
	fmt.Printf("  persona LoC:             %d (paper: ~6400)\n", s.LoC)
	fmt.Printf("  entry on extracted data: >= %d bits (value+mask over %d bits; paper: 1600)\n", s.EntryBitsED, s.ExtractedWidth)
	fmt.Printf("  entry on emulated meta:  >= %d bits (value+mask over %d bits; paper: 512)\n", s.EntryBitsMeta, s.MetaWidth)
	return nil
}

func passes() error {
	rows, err := bench.PassCounts()
	if err != nil {
		return err
	}
	fmt.Println("§6.4 resubmit/recirculate counts:")
	fmt.Printf("%-30s %10s %8s %10s %8s\n", "case", "resubmits", "paper", "recircs", "paper")
	for _, r := range rows {
		mark := ""
		if r.Resubmits == r.PaperResub && r.Recirculates == r.PaperRecirc {
			mark = "  (exact)"
		}
		fmt.Printf("%-30s %10d %8d %10d %8d%s\n",
			r.Case, r.Resubmits, r.PaperResub, r.Recirculates, r.PaperRecirc, mark)
	}
	return nil
}

func ablations() error {
	grid, err := bench.GridAblation()
	if err != nil {
		return err
	}
	fmt.Println("Ablation: parse-grid step (firewall TCP workload)")
	fmt.Printf("%6s %12s %14s %10s %11s\n", "step", "persona LoC", "parser states", "tcp bytes", "resubmits")
	for _, r := range grid {
		fmt.Printf("%6d %12d %14d %10d %11d\n", r.Step, r.PersonaLoC, r.ParserStates, r.TCPBytes, r.TCPResubmits)
	}
	fmt.Println("\nAblation: co-resident virtual devices (per-packet cost of one slice)")
	dens, err := bench.DeviceDensity([]int{1, 2, 4, 8, 16})
	if err != nil {
		return err
	}
	fmt.Printf("%8s %12s %9s %13s\n", "devices", "ns/packet", "applies", "persona rows")
	for _, r := range dens {
		fmt.Printf("%8d %12.0f %9d %13d\n", r.Devices, r.NsPerPkt, r.Applies, r.TotalRows)
	}
	fmt.Println("\nAblation: partial virtualization (§7.1, fixed parser vs full persona)")
	part, err := bench.PartialVirtualization()
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %22s %22s %9s\n", "program", "full (app/pass/resub)", "partial (app/pass/resub)", "speedup")
	for _, r := range part {
		fmt.Printf("%-10s %10d/%d/%d %.0fns %12d/%d/%d %.0fns %8.1fx\n",
			r.Program, r.FullApplies, r.FullPasses, r.FullResubmits, r.FullNsPerPkt,
			r.PartApplies, r.PartPasses, r.PartResubmits, r.PartNsPerPkt,
			r.FullNsPerPkt/r.PartNsPerPkt)
	}
	return nil
}

func rmtRun() error {
	a, err := bench.RMTAnalysis()
	if err != nil {
		return err
	}
	fmt.Println("§6.5 deploying on RMT (arp_proxy, most complex packet):")
	fmt.Printf("  PHV: %d of %d bits (extracted %d + emeta %d + overhead %d; paper: 3312 of 4096)\n",
		a.PHV.Total, a.Spec.PHVBits, a.PHV.Extracted, a.PHV.Emeta, a.PHV.Overhead)
	fmt.Printf("  ingress: %d HyPer4 stages -> %d physical (paper: 46 -> 51), budget %d\n",
		a.IngressHP4Stages, a.IngressPhys, a.Spec.IngressStages)
	fmt.Printf("  egress:  %d HyPer4 stages -> %d physical (paper: 2)\n", a.EgressHP4Stages, a.EgressPhys)
	verdict := "fits"
	if !a.FitsIngressStages {
		verdict = fmt.Sprintf("exceeds ingress budget by %.0f%% (paper: 60%%)", a.IngressOverPct)
	}
	fmt.Printf("  verdict: %s\n", verdict)
	wide := 0
	for _, t := range a.Tables {
		if t.PhysStages > 1 {
			wide++
		}
	}
	fmt.Printf("  %d of %d applied tables need multiple physical stages\n", wide, len(a.Tables))
	return nil
}
