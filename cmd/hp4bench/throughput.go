package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hyper4/internal/bench"
	"hyper4/internal/functions"
)

// printRow prints one throughput measurement line.
func printRow(res bench.ThroughputResult) {
	fmt.Printf("%-12s %-9s %14.0f %14.0f %8.2fx %12.1f %9v %9v %9v %9v\n",
		res.Function, res.Mode, res.SerialPPS, res.BatchPPS, res.Speedup, res.SerialAlloc,
		time.Duration(res.P50Ns), time.Duration(res.P90Ns),
		time.Duration(res.P99Ns), time.Duration(res.P999Ns))
}

// modeFilter parses the -modes flag into a predicate over mode labels.
// Empty selects everything.
func modeFilter(modes string) (func(bench.Mode) bool, error) {
	if modes == "" {
		return func(bench.Mode) bool { return true }, nil
	}
	known := map[string]bool{}
	for _, m := range []bench.Mode{bench.Native, bench.HyPer4, bench.HyPer4Fused, bench.HyPer4Ctl, bench.HyPer4Hooks} {
		known[m.String()] = true
	}
	want := map[string]bool{}
	for _, tok := range strings.Split(modes, ",") {
		tok = strings.TrimSpace(tok)
		if !known[tok] {
			return nil, fmt.Errorf("unknown mode %q in -modes (known: native, hp4, hp4-fused, hp4-ctl, hp4-hooks)", tok)
		}
		want[tok] = true
	}
	return func(m bench.Mode) bool { return want[m.String()] }, nil
}

// previousAllocs loads the allocs-per-packet column of an earlier run's JSON
// file, keyed by function/mode, so the new run can report deltas. A missing
// or unreadable file simply yields no baseline.
func previousAllocs(jsonPath string) map[string]float64 {
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		return nil
	}
	var prev []bench.ThroughputResult
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil
	}
	out := make(map[string]float64, len(prev))
	for _, r := range prev {
		out[r.Function+"/"+r.Mode] = r.SerialAlloc
	}
	return out
}

// throughput runs the serial-vs-parallel packet throughput experiment and
// optionally writes the measurements to a JSON file. With faults, an extra
// hp4-hooks row measures the armed-but-idle fault-injection hooks. modes
// optionally restricts which rows run ("native,hp4-fused").
func throughput(pkts int, jsonPath string, faults bool, modes string) error {
	sel, err := modeFilter(modes)
	if err != nil {
		return err
	}
	prevAllocs := previousAllocs(jsonPath)

	fmt.Printf("Throughput: serial Process vs ProcessBatch (%d packets, GOMAXPROCS=%d)\n",
		pkts, runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s %-9s %14s %14s %9s %12s %9s %9s %9s %9s\n",
		"program", "mode", "serial pkt/s", "batch pkt/s", "speedup", "allocs/pkt",
		"p50", "p90", "p99", "p99.9")
	var results []bench.ThroughputResult
	byKey := map[string]bench.ThroughputResult{}
	record := func(res bench.ThroughputResult) {
		results = append(results, res)
		byKey[res.Function+"/"+res.Mode] = res
		printRow(res)
		if prev, ok := prevAllocs[res.Function+"/"+res.Mode]; ok {
			fmt.Fprintf(os.Stderr, "allocs/pkt %s/%s: %.1f -> %.1f (%+.1f)\n",
				res.Function, res.Mode, prev, res.SerialAlloc, res.SerialAlloc-prev)
		}
	}
	for _, fn := range bench.ThroughputFunctions() {
		for _, mode := range []bench.Mode{bench.Native, bench.HyPer4, bench.HyPer4Fused} {
			if !sel(mode) {
				continue
			}
			res, err := bench.Throughput(fn, mode, pkts)
			if err != nil {
				return err
			}
			record(res)
		}
	}
	// One extra row: the l2_switch emulation configured through the typed
	// control-plane API (one atomic WriteBatch) instead of direct installer
	// calls. The management path must not change the data path, so its
	// serial cost has to sit within noise of the plain hp4 row; the bound
	// is generous because single-CPU CI runners jitter heavily.
	if sel(bench.HyPer4Ctl) {
		res, err := bench.Throughput(functions.L2Switch, bench.HyPer4Ctl, pkts)
		if err != nil {
			return err
		}
		record(res)
	}
	// With -faults, one more row: the same emulation with a fault injector
	// armed but injecting nothing, measuring the hooks themselves. The
	// default (no injector) costs a single nil check, and even the armed
	// hooks must sit within noise of the plain hp4 row.
	if faults && sel(bench.HyPer4Hooks) {
		res, err := bench.Throughput(functions.L2Switch, bench.HyPer4Hooks, pkts)
		if err != nil {
			return err
		}
		record(res)
	}

	// Cross-row assertions, each active only when both of its rows ran.
	if hp4, ok := byKey[functions.L2Switch+"/hp4"]; ok {
		if ctlRow, ok := byKey[functions.L2Switch+"/hp4-ctl"]; ok {
			ratio := ctlRow.SerialNsOp / hp4.SerialNsOp
			if ratio > 2.5 || ratio < 0.4 {
				return fmt.Errorf("ctl-configured l2_switch serial cost %.0f ns/pkt vs %.0f ns/pkt plain hp4 (ratio %.2f, want within [0.4, 2.5])",
					ctlRow.SerialNsOp, hp4.SerialNsOp, ratio)
			}
			fmt.Printf("ctl-configured l2_switch within noise of hp4 baseline (ratio %.2f)\n", ratio)
		}
		if hooksRow, ok := byKey[functions.L2Switch+"/hp4-hooks"]; ok {
			ratio := hooksRow.SerialNsOp / hp4.SerialNsOp
			if ratio > 2.5 || ratio < 0.4 {
				return fmt.Errorf("fault-hook l2_switch serial cost %.0f ns/pkt vs %.0f ns/pkt plain hp4 (ratio %.2f, want within [0.4, 2.5])",
					hooksRow.SerialNsOp, hp4.SerialNsOp, ratio)
			}
			fmt.Printf("armed fault hooks within noise of hp4 baseline (ratio %.2f)\n", ratio)
		}
	}
	// The fused fast path is the emulation-tax killer (DESIGN.md §13): its
	// serial cost must land within 5x native for single functions and
	// within 8x for the composed chain (the native baseline there is one
	// pipeline doing the work of three), and its steady state must not
	// allocate per match-action stage like the interpreter does.
	for _, fn := range bench.ThroughputFunctions() {
		fused, ok := byKey[fn+"/hp4-fused"]
		if !ok {
			continue
		}
		budget := 5.0
		if fn == functions.Composed {
			budget = 8.0
		}
		if native, ok := byKey[fn+"/native"]; ok {
			ratio := fused.SerialNsOp / native.SerialNsOp
			if ratio > budget {
				return fmt.Errorf("fused %s serial cost %.0f ns/pkt vs %.0f ns/pkt native (ratio %.2f, want <= %.0fx)",
					fn, fused.SerialNsOp, native.SerialNsOp, ratio, budget)
			}
			fmt.Printf("fused %s at %.2fx native serial cost (budget: %.0fx)\n", fn, ratio, budget)
		}
		if (fn == functions.L2Switch || fn == functions.Composed) && fused.SerialAlloc >= 50 {
			return fmt.Errorf("fused %s allocates %.1f/pkt, want < 50", fn, fused.SerialAlloc)
		}
	}
	// Serving-traffic rows: the fused l2_switch measured end-to-end through
	// the packet I/O runtime (RX loop, per-worker rings, worker sweeps, TX
	// loop) over in-process transports, at one worker and at full fan-out.
	// On a single-CPU runner both land on one core, so the pair is a scaling
	// probe for real hardware rather than an assertion here.
	if sel(bench.HyPer4Fused) {
		nWorkers := runtime.GOMAXPROCS(0)
		if nWorkers < 2 {
			nWorkers = 2
		}
		w1, err := bench.RuntimeThroughput(functions.L2Switch, bench.HyPer4Fused, 1, pkts)
		if err != nil {
			return err
		}
		w1.Speedup = 1
		record(w1)
		wn, err := bench.RuntimeThroughput(functions.L2Switch, bench.HyPer4Fused, nWorkers, pkts)
		if err != nil {
			return err
		}
		if w1.SerialPPS > 0 {
			wn.Speedup = wn.SerialPPS / w1.SerialPPS
		}
		record(wn)
		fmt.Printf("io runtime end-to-end: %.0f pkt/s at 1 worker, %.0f pkt/s at %d workers\n",
			w1.SerialPPS, wn.SerialPPS, nWorkers)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("note: single-CPU runner; batched speedup requires multiple cores")
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
