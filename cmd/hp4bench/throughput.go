package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hyper4/internal/bench"
	"hyper4/internal/functions"
)

// printRow prints one throughput measurement line.
func printRow(res bench.ThroughputResult) {
	fmt.Printf("%-12s %-8s %14.0f %14.0f %8.2fx %12.1f %9v %9v %9v %9v\n",
		res.Function, res.Mode, res.SerialPPS, res.BatchPPS, res.Speedup, res.SerialAlloc,
		time.Duration(res.P50Ns), time.Duration(res.P90Ns),
		time.Duration(res.P99Ns), time.Duration(res.P999Ns))
}

// throughput runs the serial-vs-parallel packet throughput experiment and
// optionally writes the measurements to a JSON file. With faults, an extra
// hp4-hooks row measures the armed-but-idle fault-injection hooks.
func throughput(pkts int, jsonPath string, faults bool) error {
	fmt.Printf("Throughput: serial Process vs ProcessBatch (%d packets, GOMAXPROCS=%d)\n",
		pkts, runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s %-8s %14s %14s %9s %12s %9s %9s %9s %9s\n",
		"program", "mode", "serial pkt/s", "batch pkt/s", "speedup", "allocs/pkt",
		"p50", "p90", "p99", "p99.9")
	var results []bench.ThroughputResult
	for _, fn := range bench.ThroughputFunctions() {
		for _, mode := range []bench.Mode{bench.Native, bench.HyPer4} {
			res, err := bench.Throughput(fn, mode, pkts)
			if err != nil {
				return err
			}
			results = append(results, res)
			printRow(res)
		}
	}
	// One extra row: the l2_switch emulation configured through the typed
	// control-plane API (one atomic WriteBatch) instead of direct installer
	// calls. The management path must not change the data path, so its
	// serial cost has to sit within noise of the plain hp4 row; the bound
	// is generous because single-CPU CI runners jitter heavily.
	ctlRow, err := bench.Throughput(functions.L2Switch, bench.HyPer4Ctl, pkts)
	if err != nil {
		return err
	}
	results = append(results, ctlRow)
	printRow(ctlRow)
	// With -faults, one more row: the same emulation with a fault injector
	// armed but injecting nothing, measuring the hooks themselves. The
	// default (no injector) costs a single nil check, and even the armed
	// hooks must sit within noise of the plain hp4 row.
	var hooksRow bench.ThroughputResult
	if faults {
		if hooksRow, err = bench.Throughput(functions.L2Switch, bench.HyPer4Hooks, pkts); err != nil {
			return err
		}
		results = append(results, hooksRow)
		printRow(hooksRow)
	}
	for _, res := range results {
		if res.Function == functions.L2Switch && res.Mode == "hp4" {
			ratio := ctlRow.SerialNsOp / res.SerialNsOp
			if ratio > 2.5 || ratio < 0.4 {
				return fmt.Errorf("ctl-configured l2_switch serial cost %.0f ns/pkt vs %.0f ns/pkt plain hp4 (ratio %.2f, want within [0.4, 2.5])",
					ctlRow.SerialNsOp, res.SerialNsOp, ratio)
			}
			fmt.Printf("ctl-configured l2_switch within noise of hp4 baseline (ratio %.2f)\n", ratio)
			if faults {
				ratio := hooksRow.SerialNsOp / res.SerialNsOp
				if ratio > 2.5 || ratio < 0.4 {
					return fmt.Errorf("fault-hook l2_switch serial cost %.0f ns/pkt vs %.0f ns/pkt plain hp4 (ratio %.2f, want within [0.4, 2.5])",
						hooksRow.SerialNsOp, res.SerialNsOp, ratio)
				}
				fmt.Printf("armed fault hooks within noise of hp4 baseline (ratio %.2f)\n", ratio)
			}
		}
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("note: single-CPU runner; batched speedup requires multiple cores")
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
