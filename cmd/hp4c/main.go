// Command hp4c is the HyPer4 compiler front end: it compiles a target P4_14
// program into the persona artifacts (the paper's "commands file" flow,
// §5.2), emitting the human-readable intermediate form with symbolic tokens
// that the DPMU substitutes at load time.
//
// Usage:
//
//	hp4c [-stages N] [-primitives N] [-o out.txt] foo.p4
//	hp4c -builtin l2_switch            # compile one of the paper's functions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
)

func main() {
	stages := flag.Int("stages", persona.Reference.Stages, "persona stages")
	prims := flag.Int("primitives", persona.Reference.Primitives, "persona primitives per action")
	out := flag.String("o", "", "output file (default stdout)")
	builtin := flag.String("builtin", "", "compile a built-in function: "+strings.Join(functions.Names(), ", "))
	flag.Parse()

	cfg := persona.Reference
	cfg.Stages = *stages
	cfg.Primitives = *prims

	var prog *hlir.Program
	var err error
	switch {
	case *builtin != "":
		prog, err = functions.Load(*builtin)
	case flag.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			var parsed, resolveErr = parseAndResolve(flag.Arg(0), string(src))
			prog, err = parsed, resolveErr
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: hp4c [flags] foo.p4 | hp4c -builtin <name>")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hp4c:", err)
		os.Exit(1)
	}

	comp, err := hp4c.Compile(prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hp4c:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hp4c:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := comp.WriteIntermediate(w); err != nil {
		fmt.Fprintln(os.Stderr, "hp4c:", err)
		os.Exit(1)
	}
}

func parseAndResolve(name, src string) (*hlir.Program, error) {
	parsed, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return hlir.Resolve(parsed)
}
