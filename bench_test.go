// Package hyper4 holds the repository-level benchmark suite: one benchmark
// per table and figure of the paper's evaluation (§6). Run with
//
//	go test -bench=. -benchmem
//
// Custom metrics carry the quantities the paper reports (stages/packet,
// ternary bits, LoC, tables); ns/op carries the raw packet-processing cost
// that Table 5's bandwidth/latency derive from.
package hyper4

import (
	"testing"

	"hyper4/internal/bench"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/sim"
)

// benchSwitch builds a configured switch once per sub-benchmark.
func benchSwitch(b *testing.B, fn string, mode bench.Mode) *sim.Switch {
	b.Helper()
	sw, err := bench.FunctionSwitch(fn, mode)
	if err != nil {
		b.Fatal(err)
	}
	return sw
}

// BenchmarkTable1 processes each function's most complex packet natively
// and under HyPer4, reporting match-action stages per packet — the paper's
// Table 1 quantity — alongside the wall-clock cost.
func BenchmarkTable1(b *testing.B) {
	for _, fn := range functions.Names() {
		for _, mode := range []bench.Mode{bench.Native, bench.HyPer4} {
			b.Run(fn+"/"+mode.String(), func(b *testing.B) {
				sw := benchSwitch(b, fn, mode)
				pkts := bench.WorkloadPackets(fn)
				var applies int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, tr, err := sw.Process(pkts[i%len(pkts)], 1)
					if err != nil {
						b.Fatal(err)
					}
					applies += tr.Applies
				}
				b.ReportMetric(float64(applies)/float64(b.N), "stages/pkt")
			})
		}
	}
}

// BenchmarkTable2And3 measures the compile-time table-reference analysis
// behind Tables 2 and 3 and reports the headline sharing count.
func BenchmarkTable2And3(b *testing.B) {
	var shared int
	for i := 0; i < b.N; i++ {
		cells, err := bench.Table23()
		if err != nil {
			b.Fatal(err)
		}
		shared = 0
		for _, c := range cells {
			if c.A != c.B {
				shared += c.Shared
			}
		}
	}
	b.ReportMetric(float64(shared), "shared-tables")
}

// BenchmarkTable4 reports ternary bits matched per packet under emulation.
func BenchmarkTable4(b *testing.B) {
	for _, fn := range functions.Names() {
		b.Run(fn, func(b *testing.B) {
			sw := benchSwitch(b, fn, bench.HyPer4)
			pkts := bench.WorkloadPackets(fn)
			var total, active int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, tr, err := sw.Process(pkts[i%len(pkts)], 1)
				if err != nil {
					b.Fatal(err)
				}
				total += tr.TernaryBitsTotal
				active += tr.TernaryBitsActive
			}
			b.ReportMetric(float64(total)/float64(b.N), "tcam-bits/pkt")
			b.ReportMetric(float64(active)/float64(b.N), "active-bits/pkt")
		})
	}
}

// BenchmarkTable5Packet is the per-packet cost underlying Table 5: the
// bandwidth and latency penalties are the ratio of these ns/op numbers
// (plus the fixed per-packet environment cost netsim models).
func BenchmarkTable5Packet(b *testing.B) {
	cases := []struct {
		name string
		fn   string
	}{
		{"l2_sw", functions.L2Switch},
		{"firewall", functions.Firewall},
	}
	for _, c := range cases {
		for _, mode := range []bench.Mode{bench.Native, bench.HyPer4} {
			b.Run(c.name+"/"+mode.String(), func(b *testing.B) {
				sw := benchSwitch(b, c.fn, mode)
				p := bench.WorkloadPackets(c.fn)[0]
				b.SetBytes(int64(len(p)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := sw.Process(p, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable5Network measures end-to-end scenario throughput through
// the network simulator (a condensed Table 5 cell per iteration).
func BenchmarkTable5Network(b *testing.B) {
	for _, mode := range []bench.Mode{bench.Native, bench.HyPer4} {
		b.Run("l2_sw/"+mode.String(), func(b *testing.B) {
			const bytesPerIter = 256 * 1024
			b.SetBytes(bytesPerIter)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				n, err := bench.BuildNet(bench.ScenarioL2, mode)
				if err != nil {
					b.Fatal(err)
				}
				n.Start()
				b.StartTimer()
				if _, err := n.Iperf("h1", "h2", bytesPerIter, 1400); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				n.Stop()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkThroughput compares the serial Process path with the batched
// parallel ProcessBatch path, reporting packets per second. On a single-core
// runner the two converge (ProcessBatch degrades to the serial loop); the
// parallel speedup materializes with GOMAXPROCS > 1.
func BenchmarkThroughput(b *testing.B) {
	const batch = 256
	for _, fn := range bench.ThroughputFunctions() {
		for _, mode := range []bench.Mode{bench.Native, bench.HyPer4} {
			sw := benchSwitch(b, fn, mode)
			pkts := bench.WorkloadPackets(fn)
			inputs := make([]sim.Input, batch)
			for i := range inputs {
				inputs[i] = sim.Input{Data: pkts[i%len(pkts)], Port: 1}
			}
			b.Run(fn+"/"+mode.String()+"/serial", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, in := range inputs {
						if _, _, err := sw.Process(in.Data, in.Port); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "pkts/sec")
			})
			b.Run(fn+"/"+mode.String()+"/parallel", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sw.ProcessBatch(inputs); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "pkts/sec")
			})
		}
	}
}

// BenchmarkFigure7 generates personas across the paper's sweep corners and
// reports LoC — Figure 7's y-axis.
func BenchmarkFigure7(b *testing.B) {
	corners := []struct{ stages, prims int }{{1, 1}, {4, 9}, {5, 9}}
	for _, c := range corners {
		name := "stages=" + itoa(c.stages) + "/prims=" + itoa(c.prims)
		b.Run(name, func(b *testing.B) {
			cfg := persona.Reference
			cfg.Stages, cfg.Primitives = c.stages, c.prims
			var loc int
			for i := 0; i < b.N; i++ {
				p, err := persona.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				loc = p.LoC
			}
			b.ReportMetric(float64(loc), "LoC")
		})
	}
}

// BenchmarkFigure8 reports the persona's declared-table count (Figure 8).
func BenchmarkFigure8(b *testing.B) {
	var tables int
	for i := 0; i < b.N; i++ {
		p, err := persona.Generate(persona.Reference)
		if err != nil {
			b.Fatal(err)
		}
		tables = p.TableCount
	}
	b.ReportMetric(float64(tables), "tables")
}

// BenchmarkCompiler measures hp4c compilation of each function.
func BenchmarkCompiler(b *testing.B) {
	for _, fn := range functions.Names() {
		b.Run(fn, func(b *testing.B) {
			prog, err := functions.Load(fn)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := hp4c.Compile(prog, persona.Reference); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRMT measures the §6.5 analysis.
func BenchmarkRMT(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		a, err := bench.RMTAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		over = a.IngressOverPct
	}
	b.ReportMetric(over, "over-budget-%")
}

// BenchmarkPassCounts measures the §6.4 resubmit/recirculate probes.
func BenchmarkPassCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.PassCounts(); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
