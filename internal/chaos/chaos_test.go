package chaos

import (
	"reflect"
	"testing"
	"time"

	"hyper4/internal/sim"
)

// The injector must satisfy the sim hook interface.
var _ sim.Injector = (*Injector)(nil)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("seed=42,attr=2,panic_every=3,panic_first=10,panic_action=a_fwd,miss_every=5,miss_table=dmac,pass_bound=8,delay_every=100,delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 42, Attr: 2,
		PanicEvery: 3, PanicFirst: 10, PanicAction: "a_fwd",
		MissEvery: 5, MissTable: "dmac",
		PassBound: 8, DelayEvery: 100, Delay: time.Millisecond,
	}
	if s != want {
		t.Fatalf("spec = %+v, want %+v", s, want)
	}
	if !s.Enabled() {
		t.Fatal("spec should be enabled")
	}

	if s, err = ParseSpec(""); err != nil || s.Enabled() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"nonsense", "bogus_key=1", "seed=abc", "delay=xyz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

// panicSchedule records which of n sequential matching Action calls panic.
func panicSchedule(in *Injector, n int) []int {
	var fired []int
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired = append(fired, i)
				}
			}()
			in.Action(1, "a")
		}()
	}
	return fired
}

func TestDeterministicSchedule(t *testing.T) {
	spec := Spec{Seed: 7, PanicEvery: 4}
	a := panicSchedule(New(spec), 400)
	b := panicSchedule(New(spec), 400)
	if len(a) == 0 {
		t.Fatal("schedule fired nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := panicSchedule(New(Spec{Seed: 8, PanicEvery: 4}), 400)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Rate sanity: ~1/4 of calls fire; allow wide slack.
	if len(a) < 50 || len(a) > 200 {
		t.Fatalf("rate off: %d/400 fired at every=4", len(a))
	}
}

func TestAttrAndActionFilters(t *testing.T) {
	in := New(Spec{PanicEvery: 1, Attr: 7, PanicAction: "boom"})
	for i := 0; i < 100; i++ {
		in.Action(9, "boom") // wrong attr
		in.Action(7, "fine") // wrong action
	}
	if got := in.Stats().Panics; got != 0 {
		t.Fatalf("filters leaked %d panics", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("matching call should panic")
		}
		if got := in.Stats().Panics; got != 1 {
			t.Fatalf("panics = %d", got)
		}
	}()
	in.Action(7, "boom")
}

func TestPanicFirstCap(t *testing.T) {
	in := New(Spec{PanicEvery: 1, PanicFirst: 3})
	fired := panicSchedule(in, 100)
	if !reflect.DeepEqual(fired, []int{0, 1, 2}) {
		t.Fatalf("fired = %v, want first 3 calls exactly", fired)
	}
	if got := in.Stats().Panics; got != 3 {
		t.Fatalf("panics = %d", got)
	}
}

func TestForceMissFilters(t *testing.T) {
	in := New(Spec{MissEvery: 1, MissTable: "dmac"})
	if in.ForceMiss(1, "smac") {
		t.Fatal("wrong table forced a miss")
	}
	if !in.ForceMiss(1, "dmac") {
		t.Fatal("matching table should miss at every=1")
	}
	if got := in.Stats().Misses; got != 1 {
		t.Fatalf("misses = %d", got)
	}
}

func TestDisabledInjectorDoesNothing(t *testing.T) {
	in := New(Spec{})
	for i := 0; i < 100; i++ {
		in.Action(1, "a")
		if in.ForceMiss(1, "t") {
			t.Fatal("zero spec forced a miss")
		}
		in.Delay()
	}
	if got := in.Stats(); got != (Stats{}) {
		t.Fatalf("stats = %+v", got)
	}
	if in.PassBound() != 0 {
		t.Fatal("zero spec should not bound passes")
	}
}
