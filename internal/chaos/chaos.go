// Package chaos provides deterministic, seeded fault injectors for the sim
// switch. An Injector implements sim.Injector and decides per call site
// whether to misbehave: panic inside an action, force a table-lookup miss,
// tighten the pipeline-pass budget, or sleep. Decisions are derived from a
// seed hashed with a per-site call counter (splitmix64), so a given spec
// replays the same fault schedule on every serial run, and under concurrent
// drivers the *count* of injected faults is still exact — "panic on the
// first K matching calls" means exactly K panics no matter the
// interleaving.
//
// The zero Spec injects nothing; attaching such an injector still exercises
// the hook overhead, which is what hp4bench's -faults flag measures.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Spec configures an Injector. All rates are "every Nth matching call,
// jittered by the seed" (0 disables that fault class); Attr restricts
// injection to passes attributed to one program ID so a single tenant can be
// targeted on a shared switch.
type Spec struct {
	Seed int64  // schedule seed (0 is a valid seed)
	Attr uint64 // only inject when the pass is attributed to this value; 0 = any

	PanicEvery  int    // panic on ~every Nth matching action call
	PanicFirst  int    // cap on total injected panics (0 = unlimited)
	PanicAction string // restrict panics to this action name ("" = any)

	MissEvery int    // force a miss on ~every Nth matching table apply
	MissTable string // restrict forced misses to this table ("" = any)

	PassBound int // pipeline-pass budget override (0 = keep sim.MaxPasses)

	DelayEvery int           // sleep on ~every Nth Process call
	Delay      time.Duration // how long to sleep

	// Transport-level fault classes, consumed by TransportInjector (io.go)
	// wrapped around a runtime.Transport. IOPort restricts injection to one
	// switch port, mirroring Attr's tenant filter (0 = any port; port 0
	// itself cannot be singled out).
	IOPort       int           // target port for I/O faults (0 = any)
	RecvErrEvery int           // fail ~every Nth Recv with an injected error
	RecvErrFirst int           // cap on total injected recv errors (0 = unlimited)
	SendErrEvery int           // fail ~every Nth Send with an injected error
	SendErrFirst int           // cap on total injected send errors (0 = unlimited)
	DropEvery    int           // silently swallow ~every Nth frame (both directions)
	DupEvery     int           // duplicate ~every Nth received frame
	StallEvery   int           // stall ~every Nth Recv for StallFor
	StallFor     time.Duration // how long a stall holds the RX path
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.PanicEvery > 0 || s.MissEvery > 0 || s.PassBound > 0 || s.DelayEvery > 0 || s.IOEnabled()
}

// IOEnabled reports whether any transport-level fault class is configured.
func (s Spec) IOEnabled() bool {
	return s.RecvErrEvery > 0 || s.SendErrEvery > 0 || s.DropEvery > 0 ||
		s.DupEvery > 0 || s.StallEvery > 0
}

// ParseSpec parses the flag syntax "key=value,key=value". Keys: seed, attr,
// panic_every, panic_first, panic_action, miss_every, miss_table,
// pass_bound, delay_every, delay (a Go duration); transport fault classes:
// io_port, recv_err_every, recv_err_first, send_err_every, send_err_first,
// io_drop_every, io_dup_every, stall_every, stall_for (a Go duration). An
// empty string yields the zero (inject-nothing) spec.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	if strings.TrimSpace(text) == "" {
		return s, nil
	}
	for _, kv := range strings.Split(text, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("chaos: bad spec element %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "attr":
			s.Attr, err = strconv.ParseUint(val, 10, 64)
		case "panic_every":
			s.PanicEvery, err = strconv.Atoi(val)
		case "panic_first":
			s.PanicFirst, err = strconv.Atoi(val)
		case "panic_action":
			s.PanicAction = val
		case "miss_every":
			s.MissEvery, err = strconv.Atoi(val)
		case "miss_table":
			s.MissTable = val
		case "pass_bound":
			s.PassBound, err = strconv.Atoi(val)
		case "delay_every":
			s.DelayEvery, err = strconv.Atoi(val)
		case "delay":
			s.Delay, err = time.ParseDuration(val)
		case "io_port":
			s.IOPort, err = strconv.Atoi(val)
		case "recv_err_every":
			s.RecvErrEvery, err = strconv.Atoi(val)
		case "recv_err_first":
			s.RecvErrFirst, err = strconv.Atoi(val)
		case "send_err_every":
			s.SendErrEvery, err = strconv.Atoi(val)
		case "send_err_first":
			s.SendErrFirst, err = strconv.Atoi(val)
		case "io_drop_every":
			s.DropEvery, err = strconv.Atoi(val)
		case "io_dup_every":
			s.DupEvery, err = strconv.Atoi(val)
		case "stall_every":
			s.StallEvery, err = strconv.Atoi(val)
		case "stall_for":
			s.StallFor, err = time.ParseDuration(val)
		default:
			return Spec{}, fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("chaos: bad value for %q: %v", key, err)
		}
	}
	return s, nil
}

// Stats counts what an injector has actually done.
type Stats struct {
	Panics int64 // panics injected
	Misses int64 // lookups forced to miss
	Delays int64 // sleeps injected

	RecvErrs int64 // receive errors injected
	SendErrs int64 // send errors injected
	Drops    int64 // frames silently swallowed
	Dups     int64 // frames duplicated
	Stalls   int64 // RX stalls injected
}

// Injector is a deterministic sim.Injector. Safe for concurrent use: all
// state is atomic counters.
type Injector struct {
	spec Spec

	actionCalls atomic.Uint64 // matching Action calls seen
	missCalls   atomic.Uint64 // matching ForceMiss calls seen
	delayCalls  atomic.Uint64 // Delay calls seen

	// Transport schedule counters, shared across every wrapped transport
	// (io.go) so fault counts stay exact switch-wide.
	recvCalls  atomic.Uint64
	sendCalls  atomic.Uint64
	dropCalls  atomic.Uint64
	dupCalls   atomic.Uint64
	stallCalls atomic.Uint64

	panics atomic.Int64
	misses atomic.Int64
	delays atomic.Int64

	recvErrs atomic.Int64
	sendErrs atomic.Int64
	drops    atomic.Int64
	dups     atomic.Int64
	stalls   atomic.Int64
}

// New builds an injector for the spec.
func New(spec Spec) *Injector { return &Injector{spec: spec} }

// Spec returns the injector's configuration.
func (in *Injector) Spec() Spec { return in.spec }

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Panics:   in.panics.Load(),
		Misses:   in.misses.Load(),
		Delays:   in.delays.Load(),
		RecvErrs: in.recvErrs.Load(),
		SendErrs: in.sendErrs.Load(),
		Drops:    in.drops.Load(),
		Dups:     in.dups.Load(),
		Stalls:   in.stalls.Load(),
	}
}

// Per-site salts so the same call index makes independent decisions at each
// fault class.
const (
	siteAction = 0x61637469 // "acti"
	siteMiss   = 0x6d697373 // "miss"
	siteDelay  = 0x646c6179 // "dlay"
)

// splitmix64 is the standard 64-bit finalizer; one multiply-xor-shift chain
// turns (seed, site, call index) into an effectively random draw without any
// locking or shared rand.Source.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw decides whether call number n at the given site fires for rate
// "every" (≈1/every of calls fire, schedule fixed by the seed).
func (in *Injector) draw(site, n uint64, every int) bool {
	if every <= 0 {
		return false
	}
	return splitmix64(uint64(in.spec.Seed)^site^(n*0x9e3779b97f4a7c15))%uint64(every) == 0
}

// attrMatch applies the tenant filter.
func (in *Injector) attrMatch(attr uint64) bool {
	return in.spec.Attr == 0 || attr == in.spec.Attr
}

// Action implements sim.Injector: panics on scheduled calls to simulate a
// defect inside an action body. The panic is recovered by sim.Process and
// surfaces as a FaultPanic attributed to the current program.
func (in *Injector) Action(attr uint64, action string) {
	s := &in.spec
	if s.PanicEvery == 0 || !in.attrMatch(attr) {
		return
	}
	if s.PanicAction != "" && action != s.PanicAction {
		return
	}
	n := in.actionCalls.Add(1) - 1
	if !in.draw(siteAction, n, s.PanicEvery) {
		return
	}
	c := in.panics.Add(1)
	if s.PanicFirst > 0 && c > int64(s.PanicFirst) {
		in.panics.Add(-1)
		return
	}
	panic(fmt.Sprintf("chaos: injected panic #%d in action %s (attr %d, seed %d)", c, action, attr, s.Seed))
}

// ForceMiss implements sim.Injector: reports whether this table apply should
// behave as a lookup miss.
func (in *Injector) ForceMiss(attr uint64, table string) bool {
	s := &in.spec
	if s.MissEvery == 0 || !in.attrMatch(attr) {
		return false
	}
	if s.MissTable != "" && table != s.MissTable {
		return false
	}
	n := in.missCalls.Add(1) - 1
	if !in.draw(siteMiss, n, s.MissEvery) {
		return false
	}
	in.misses.Add(1)
	return true
}

// PassBound implements sim.Injector: the pipeline-pass budget override.
func (in *Injector) PassBound() int { return in.spec.PassBound }

// Delay implements sim.Injector: sleeps on scheduled Process calls.
func (in *Injector) Delay() {
	s := &in.spec
	if s.DelayEvery == 0 || s.Delay <= 0 {
		return
	}
	n := in.delayCalls.Add(1) - 1
	if !in.draw(siteDelay, n, s.DelayEvery) {
		return
	}
	in.delays.Add(1)
	time.Sleep(s.Delay)
}
