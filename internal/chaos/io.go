package chaos

// Transport-level fault injection: a TransportInjector wraps any
// runtime.Transport and misbehaves on a seeded schedule — injected receive
// errors, injected send errors, silent frame drops, frame duplication, and
// RX stalls. It is how every edge of the runtime's port breakers
// (internal/runtime/health.go) is exercised deterministically under -race:
// the same spec replays the same fault schedule on every serial run, and
// under concurrency the *count* of injected faults stays exact.
//
// All schedule counters live on the parent Injector and are shared across
// every wrapped transport, so Stats() aggregates the whole switch; the
// IOPort filter narrows misbehavior to a single port when a test wants one
// flaky wire among healthy co-tenants.

import (
	"fmt"
	"sync"
	"time"

	pktio "hyper4/internal/runtime"
)

// Per-site salts for the transport fault classes.
const (
	siteRecvErr = 0x72657276 // "rerv"
	siteSendErr = 0x73656e64 // "send"
	siteDrop    = 0x64726f70 // "drop"
	siteDup     = 0x64757065 // "dupe"
	siteStall   = 0x7374616c // "stal"
)

// ErrInjected is the base text of injected I/O errors; the runtime treats
// them exactly like real transport faults (counted, backed off, charged to
// the port's breaker window).
type injectedErr struct {
	site string
	n    int64
}

func (e injectedErr) Error() string {
	return fmt.Sprintf("chaos: injected %s error #%d", e.site, e.n)
}

// WrapTransport wraps a transport for the given port with this injector's
// I/O fault schedule. The runtime's Config.TransportFactory is the intended
// hook:
//
//	inj := chaos.New(spec)
//	cfg.TransportFactory = func(port int, spec string) (pktio.Transport, error) {
//		tr, err := pktio.NewTransport(spec)
//		if err != nil {
//			return nil, err
//		}
//		return inj.WrapTransport(port, tr), nil
//	}
//
// If the spec has no I/O fault classes, or the port filter excludes this
// port, the transport is returned unwrapped (zero overhead).
func (in *Injector) WrapTransport(port int, tr pktio.Transport) pktio.Transport {
	if !in.spec.IOEnabled() || (in.spec.IOPort != 0 && port != in.spec.IOPort) {
		return tr
	}
	ti := &TransportInjector{in: in, inner: tr, port: port}
	if _, ok := tr.(pktio.RecvCloser); ok {
		// Preserve the two-phase shutdown contract only when the inner
		// transport supports it: the runtime type-asserts RecvCloser to
		// decide between CloseRecv and a full Close during drain.
		return &transportInjectorRC{ti}
	}
	return ti
}

// TransportInjector wraps one port's transport with seeded fault injection.
// Like any Transport it tolerates one concurrent Recv'er and one concurrent
// Send'er.
type TransportInjector struct {
	in    *Injector
	inner pktio.Transport
	port  int

	// dup holds a copy of the last duplicated frame, handed out by the next
	// Recv before the wire is consulted again. RX-side only: guarded by mu
	// because CloseRecv may race the RX loop.
	mu  sync.Mutex
	dup []byte
}

// transportInjectorRC is the RecvCloser-preserving variant.
type transportInjectorRC struct{ *TransportInjector }

func (t *transportInjectorRC) CloseRecv() error {
	return t.inner.(pktio.RecvCloser).CloseRecv()
}

// Inner returns the wrapped transport (tests reach through for LocalAddr).
func (t *TransportInjector) Inner() pktio.Transport { return t.inner }

// Recv applies the RX-side schedule: stall, injected error, pending
// duplicate, then the real receive, which may be dropped (swallowed, next
// frame awaited) or marked for duplication.
func (t *TransportInjector) Recv(f *pktio.Frame) error {
	in := t.in
	s := &in.spec
	for {
		if s.StallEvery > 0 && s.StallFor > 0 {
			n := in.stallCalls.Add(1) - 1
			if in.draw(siteStall, n, s.StallEvery) {
				in.stalls.Add(1)
				time.Sleep(s.StallFor)
			}
		}
		if s.RecvErrEvery > 0 {
			n := in.recvCalls.Add(1) - 1
			if in.draw(siteRecvErr, n, s.RecvErrEvery) {
				c := in.recvErrs.Add(1)
				if s.RecvErrFirst > 0 && c > int64(s.RecvErrFirst) {
					in.recvErrs.Add(-1)
				} else {
					return injectedErr{site: "recv", n: c}
				}
			}
		}
		t.mu.Lock()
		if t.dup != nil {
			f.Data = t.dup
			t.dup = nil
			t.mu.Unlock()
			return nil
		}
		t.mu.Unlock()
		if err := t.inner.Recv(f); err != nil {
			return err
		}
		if s.DropEvery > 0 {
			n := in.dropCalls.Add(1) - 1
			if in.draw(siteDrop, n, s.DropEvery) {
				in.drops.Add(1)
				continue // swallowed: wait for the next real frame
			}
		}
		if s.DupEvery > 0 {
			n := in.dupCalls.Add(1) - 1
			if in.draw(siteDup, n, s.DupEvery) {
				in.dups.Add(1)
				cp := append([]byte(nil), f.Data...)
				t.mu.Lock()
				t.dup = cp
				t.mu.Unlock()
			}
		}
		return nil
	}
}

// Send applies the TX-side schedule: injected error, silent drop, then the
// real send.
func (t *TransportInjector) Send(f pktio.Frame) error {
	in := t.in
	s := &in.spec
	if s.SendErrEvery > 0 {
		n := in.sendCalls.Add(1) - 1
		if in.draw(siteSendErr, n, s.SendErrEvery) {
			c := in.sendErrs.Add(1)
			if s.SendErrFirst > 0 && c > int64(s.SendErrFirst) {
				in.sendErrs.Add(-1)
			} else {
				return injectedErr{site: "send", n: c}
			}
		}
	}
	if s.DropEvery > 0 {
		n := in.dropCalls.Add(1) - 1
		if in.draw(siteDrop, n, s.DropEvery) {
			in.drops.Add(1)
			return nil // swallowed on the wire: reported sent, never arrives
		}
	}
	return t.inner.Send(f)
}

// Close releases the wrapped transport.
func (t *TransportInjector) Close() error { return t.inner.Close() }
