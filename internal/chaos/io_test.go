package chaos

import (
	"strings"
	"sync"
	"testing"
	"time"

	pktio "hyper4/internal/runtime"
)

// memTransport is an unbounded in-memory transport: Recv hands out a
// monotonically numbered frame, Send counts. seq is int (not byte) so long
// tests don't wrap.
type memTransport struct {
	mu    sync.Mutex
	seq   int
	sends int
}

func (m *memTransport) Recv(f *pktio.Frame) error {
	m.mu.Lock()
	m.seq++
	f.Data = []byte{byte(m.seq), byte(m.seq >> 8), byte(m.seq >> 16)}
	m.mu.Unlock()
	return nil
}

func (m *memTransport) Send(pktio.Frame) error {
	m.mu.Lock()
	m.sends++
	m.mu.Unlock()
	return nil
}

func (m *memTransport) Close() error { return nil }

func (m *memTransport) counts() (int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq, m.sends
}

// rcTransport adds the two-phase shutdown hook.
type rcTransport struct {
	memTransport
	recvClosed bool
}

func (r *rcTransport) CloseRecv() error { r.recvClosed = true; return nil }

// errSchedule runs n Recvs through a fresh injector with the given seed and
// returns the call indices where injected errors fired.
func errSchedule(t *testing.T, seed int64, n int) []int {
	t.Helper()
	inj := New(Spec{Seed: seed, RecvErrEvery: 3})
	tr := inj.WrapTransport(1, &memTransport{})
	var hits []int
	var f pktio.Frame
	for i := 0; i < n; i++ {
		if err := tr.Recv(&f); err != nil {
			if !strings.Contains(err.Error(), "chaos: injected") {
				t.Fatalf("unexpected real error: %v", err)
			}
			hits = append(hits, i)
		}
	}
	return hits
}

// TestTransportInjectorDeterministicSchedule: the same seed replays the same
// fault positions; a different seed gives a different schedule.
func TestTransportInjectorDeterministicSchedule(t *testing.T) {
	a := errSchedule(t, 42, 200)
	b := errSchedule(t, 42, 200)
	if len(a) == 0 {
		t.Fatal("recv_err_every=3 injected nothing in 200 calls")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := errSchedule(t, 43, 200)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-call schedules")
	}
}

// TestTransportInjectorExactErrorCountsConcurrent: the *First caps are exact
// even with many transports hammering one shared injector — this is the
// property that makes chaos runs reproducible pass/fail under -race.
func TestTransportInjectorExactErrorCountsConcurrent(t *testing.T) {
	inj := New(Spec{Seed: 9, RecvErrEvery: 2, RecvErrFirst: 5, SendErrEvery: 2, SendErrFirst: 3})
	const workers, calls = 8, 500
	var recvErrs, sendErrs [workers]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tr := inj.WrapTransport(w+1, &memTransport{})
		wg.Add(1)
		go func(w int, tr pktio.Transport) {
			defer wg.Done()
			var f pktio.Frame
			for i := 0; i < calls; i++ {
				if err := tr.Recv(&f); err != nil {
					recvErrs[w]++
				}
				if err := tr.Send(pktio.Frame{Data: []byte{1}}); err != nil {
					sendErrs[w]++
				}
			}
		}(w, tr)
	}
	wg.Wait()
	var gotRecv, gotSend int
	for w := 0; w < workers; w++ {
		gotRecv += recvErrs[w]
		gotSend += sendErrs[w]
	}
	if gotRecv != 5 || gotSend != 3 {
		t.Fatalf("observed errors recv=%d send=%d, want exactly 5 and 3", gotRecv, gotSend)
	}
	st := inj.Stats()
	if st.RecvErrs != 5 || st.SendErrs != 3 {
		t.Fatalf("stats recv=%d send=%d, want exactly 5 and 3", st.RecvErrs, st.SendErrs)
	}
}

// TestTransportInjectorDuplicatesFrames: dup_every=1 doubles every frame —
// each wire frame arrives, then arrives again.
func TestTransportInjectorDuplicatesFrames(t *testing.T) {
	inj := New(Spec{Seed: 1, DupEvery: 1})
	inner := &memTransport{}
	tr := inj.WrapTransport(1, inner)
	var f pktio.Frame
	var got []byte
	for i := 0; i < 10; i++ {
		if err := tr.Recv(&f); err != nil {
			t.Fatal(err)
		}
		got = append(got, f.Data[0])
	}
	want := []byte{1, 1, 2, 2, 3, 3, 4, 4, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dup stream = %v, want %v", got, want)
		}
	}
	if st := inj.Stats(); st.Dups != 5 {
		t.Fatalf("Dups = %d, want 5", st.Dups)
	}
}

// TestTransportInjectorDropsSends: drop_every=1 swallows every send — the
// caller sees success, the wire sees nothing.
func TestTransportInjectorDropsSends(t *testing.T) {
	inj := New(Spec{Seed: 1, DropEvery: 1})
	inner := &memTransport{}
	tr := inj.WrapTransport(1, inner)
	for i := 0; i < 10; i++ {
		if err := tr.Send(pktio.Frame{Data: []byte{1}}); err != nil {
			t.Fatalf("dropped send surfaced an error: %v", err)
		}
	}
	if _, sends := inner.counts(); sends != 0 {
		t.Fatalf("%d sends reached the wire, want 0", sends)
	}
	if st := inj.Stats(); st.Drops != 10 {
		t.Fatalf("Drops = %d, want 10", st.Drops)
	}
}

// TestTransportInjectorRecvDropAccounting: a dropped receive is swallowed
// and the next wire frame awaited, so delivered + dropped = pulled.
// (drop_every must be ≥2 on the RX side — 1 would swallow forever.)
func TestTransportInjectorRecvDropAccounting(t *testing.T) {
	inj := New(Spec{Seed: 7, DropEvery: 3})
	inner := &memTransport{}
	tr := inj.WrapTransport(1, inner)
	var f pktio.Frame
	const delivered = 100
	for i := 0; i < delivered; i++ {
		if err := tr.Recv(&f); err != nil {
			t.Fatal(err)
		}
	}
	st := inj.Stats()
	if st.Drops == 0 {
		t.Fatal("drop_every=3 dropped nothing across 100 deliveries")
	}
	pulled, _ := inner.counts()
	if int64(pulled) != delivered+st.Drops {
		t.Fatalf("pulled %d from wire, want delivered(%d) + dropped(%d)", pulled, delivered, st.Drops)
	}
}

// TestTransportInjectorStalls: stall_every=1 holds every Recv for StallFor
// and counts it.
func TestTransportInjectorStalls(t *testing.T) {
	inj := New(Spec{Seed: 1, StallEvery: 1, StallFor: time.Microsecond})
	tr := inj.WrapTransport(1, &memTransport{})
	var f pktio.Frame
	for i := 0; i < 5; i++ {
		if err := tr.Recv(&f); err != nil {
			t.Fatal(err)
		}
	}
	if st := inj.Stats(); st.Stalls != 5 {
		t.Fatalf("Stalls = %d, want 5", st.Stalls)
	}
}

// TestWrapTransportPortFilter: io_port narrows the blast radius to one port;
// everyone else gets the identity transport back.
func TestWrapTransportPortFilter(t *testing.T) {
	inj := New(Spec{Seed: 1, IOPort: 5, RecvErrEvery: 2})
	inner := &memTransport{}
	if got := inj.WrapTransport(4, inner); got != pktio.Transport(inner) {
		t.Fatal("non-target port was wrapped")
	}
	if got := inj.WrapTransport(5, inner); got == pktio.Transport(inner) {
		t.Fatal("target port was not wrapped")
	}
	quiet := New(Spec{Seed: 1}) // no I/O fault classes at all
	if got := quiet.WrapTransport(5, inner); got != pktio.Transport(inner) {
		t.Fatal("spec without I/O faults still wrapped the transport")
	}
}

// TestWrapTransportPreservesRecvCloser: the wrapper is a RecvCloser exactly
// when the inner transport is — the runtime's two-phase drain depends on the
// type assertion.
func TestWrapTransportPreservesRecvCloser(t *testing.T) {
	inj := New(Spec{Seed: 1, RecvErrEvery: 2})
	plain := inj.WrapTransport(1, &memTransport{})
	if _, ok := plain.(pktio.RecvCloser); ok {
		t.Fatal("wrapper claims RecvCloser over a plain inner transport")
	}
	inner := &rcTransport{}
	wrapped := inj.WrapTransport(1, inner)
	rc, ok := wrapped.(pktio.RecvCloser)
	if !ok {
		t.Fatal("wrapper lost the inner transport's RecvCloser")
	}
	if err := rc.CloseRecv(); err != nil {
		t.Fatal(err)
	}
	if !inner.recvClosed {
		t.Fatal("CloseRecv did not reach the inner transport")
	}
}

// TestParseSpecIOKeys: the I/O fault keys round-trip through ParseSpec.
func TestParseSpecIOKeys(t *testing.T) {
	s, err := ParseSpec("seed=9,io_port=2,recv_err_every=4,recv_err_first=5," +
		"send_err_every=6,send_err_first=7,io_drop_every=8,io_dup_every=9," +
		"stall_every=10,stall_for=15ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 9, IOPort: 2, RecvErrEvery: 4, RecvErrFirst: 5,
		SendErrEvery: 6, SendErrFirst: 7, DropEvery: 8, DupEvery: 9,
		StallEvery: 10, StallFor: 15 * time.Millisecond}
	if s != want {
		t.Fatalf("ParseSpec = %+v, want %+v", s, want)
	}
	if !s.IOEnabled() || !s.Enabled() {
		t.Fatal("spec with I/O fault classes reports disabled")
	}
	var zero Spec
	if zero.IOEnabled() {
		t.Fatal("zero spec reports I/O enabled")
	}
}
