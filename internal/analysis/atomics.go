package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomics polices mixed atomic/plain access: a struct field whose address
// is passed to a sync/atomic function anywhere in the package (the legacy
// `atomic.AddUint64(&s.n, 1)` style) must never be read or written plainly
// elsewhere — the plain access races with the atomic one, and the race
// detector only catches it when the schedule cooperates. The production
// tree's hot counters (ring cursors, sim.gen, the fastBox pointer, breaker
// totals) have all migrated to the typed atomic.Uint64/Pointer forms, which
// the type system makes unmixable; this analyzer keeps any future legacy
// site honest. Reviewed exceptions carry `//hp4:allow atomics`.
var Atomics = &Analyzer{
	Name: "atomics",
	Doc:  "flag plain reads/writes of fields that are accessed via sync/atomic elsewhere in the package",
	Run:  runAtomics,
}

func runAtomics(pass *Pass) error {
	// Pass 1: every field whose address is a direct &x.f argument to a
	// sync/atomic call is an atomic field; remember one call site per field
	// for the diagnostic, and exempt those selector nodes from pass 2.
	atomicAt := map[*types.Var]token.Position{}
	exempt := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, _ := stdlibCallee(pass, call); pkg != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := selectedField(pass, sel); f != nil {
					if _, seen := atomicAt[f]; !seen {
						atomicAt[f] = pass.Fset.Position(call.Pos())
					}
					exempt[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: any other selector resolving to an atomic field is a plain
	// access — read or write, both race with the atomic side.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			f := selectedField(pass, sel)
			if f == nil {
				return true
			}
			at, ok := atomicAt[f]
			if !ok {
				return true
			}
			pass.Reportf(sel.Pos(), "non-atomic access to field %s, accessed via sync/atomic at %s:%d",
				f.Name(), at.Filename, at.Line)
			return true
		})
	}
	return nil
}

// selectedField resolves a selector expression to the struct field it
// names, or nil when it is not a field selection.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}
