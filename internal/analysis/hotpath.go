package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotpath polices the per-packet execution path: code reachable from the
// packet-processing roots must not call the wall clock, allocate maps, or
// format strings — each is an order-of-magnitude cost on a path the
// benchmarks measure in nanoseconds, and each has crept in before via an
// innocent-looking helper.
//
// Roots are the sim.Switch methods Process and runPassContained, plus any
// function whose doc comment carries an `//hp4:hotpath` line (which is how
// fixtures and future fast paths opt in). The walk is transitive over
// same-package calls. fmt.Errorf is exempt: error construction happens on
// the fault path, after the fast path has already been abandoned.
// Deliberate exceptions (the latency histogram's own clock reads) carry
// `//hp4:allow hotpath` suppressions.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag wall-clock reads, map allocation and fmt calls reachable from packet-processing roots",
	Run:  runHotpath,
}

// hotpathDirective marks additional roots.
const hotpathDirective = "//hp4:hotpath"

func runHotpath(pass *Pass) error {
	// Index every function's body and same-package callees.
	type fn struct {
		decl *ast.FuncDecl
		name string
	}
	decls := map[*types.Func]fn{}
	var roots []*types.Func
	rootName := map[*types.Func]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				if t := recvTypeName(pass, fd); t != "" {
					name = t + "." + fd.Name.Name
				}
			}
			decls[obj] = fn{fd, name}
			if isHotpathRoot(pass, fd) {
				roots = append(roots, obj)
				rootName[obj] = name
			}
		}
	}

	// Breadth-first closure from the roots, remembering which root made
	// each function hot (first reach wins — enough for the message).
	via := map[*types.Func]string{}
	queue := []*types.Func{}
	for _, r := range roots {
		via[r] = rootName[r]
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		d, ok := decls[f]
		if !ok {
			continue
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := samePackageCallee(pass, call); callee != nil {
				if _, seen := via[callee]; !seen {
					via[callee] = via[f]
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	// Flag the violations inside every hot function.
	for f, root := range via {
		d, ok := decls[f]
		if !ok {
			continue
		}
		checkHotBody(pass, d.decl, d.name, root)
	}
	return nil
}

// isHotpathRoot recognizes the packet-processing entry points.
func isHotpathRoot(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, hotpathDirective) {
				return true
			}
		}
	}
	if fd.Recv == nil {
		return false
	}
	// Any RunFast method is a sim.FastHandler implementation: it runs once
	// per packet under the switch's read lock, so it is a root whether or
	// not its author remembered the //hp4:hotpath directive.
	if fd.Name.Name == "RunFast" {
		return true
	}
	if recvTypeName(pass, fd) != "Switch" {
		return false
	}
	return fd.Name.Name == "Process" || fd.Name.Name == "runPassContained"
}

// checkHotBody reports the forbidden constructs in one hot function.
func checkHotBody(pass *Pass, fd *ast.FuncDecl, name, root string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if pkg, fun := stdlibCallee(pass, e); pkg != "" {
				switch {
				case pkg == "time" && (fun == "Now" || fun == "Since"):
					pass.Reportf(e.Pos(), "time.%s in %s, reachable from hot path root %s", fun, name, root)
				case pkg == "fmt" && fun != "Errorf":
					pass.Reportf(e.Pos(), "fmt.%s in %s, reachable from hot path root %s", fun, name, root)
				}
			}
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
				if t := pass.TypesInfo.Types[e.Args[0]].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(e.Pos(), "map allocation in %s, reachable from hot path root %s", name, root)
					}
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.Types[e].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(e.Pos(), "map literal in %s, reachable from hot path root %s", name, root)
				}
			}
		}
		return true
	})
}

// stdlibCallee resolves pkg.Fun() calls on an imported package, returning
// the package path and function name.
func stdlibCallee(pass *Pass, call *ast.CallExpr) (pkgPath, fun string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
