// Package atomfix is the atomics analyzer's regression fixture: a counter
// bumped through sync/atomic on the hot path and then read plainly on the
// stats path — the planted race the analyzer exists to catch. Lines
// expecting a finding carry a trailing want-comment naming a substring of
// the expected message.
package atomfix

import "sync/atomic"

type counter struct {
	n     uint64
	drops uint64
	// gen uses the typed atomic form: the type system already forbids
	// plain access, so the analyzer has nothing to add.
	gen atomic.Uint64
}

// bump is the hot-path side: both fields are atomic here.
func (c *counter) bump() {
	atomic.AddUint64(&c.n, 1)
	atomic.AddUint64(&c.drops, 1)
}

// read is the correct consumer.
func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.n)
}

// racyRead is the planted bug: a plain load racing with bump.
func (c *counter) racyRead() uint64 {
	return c.n // want: non-atomic access to field n
}

// racyReset is the write-side variant.
func (c *counter) racyReset() {
	c.n = 0 // want: non-atomic access to field n
}

// reviewedSnapshot is a documented exception: called only after the
// goroutines quiesce, so the plain read is safe and suppressed.
func (c *counter) reviewedSnapshot() uint64 {
	return c.drops //hp4:allow atomics
}

// typed exercises the safe form end to end.
func (c *counter) typed() uint64 {
	c.gen.Add(1)
	return c.gen.Load()
}
