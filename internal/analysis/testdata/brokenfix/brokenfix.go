// Package brokenfix deliberately fails to compile: it pins the loader's
// fatal-on-error behavior (a broken target must abort Load with an error,
// not be silently skipped). The go tool ignores testdata directories, so
// the repo's own build stays green.
package brokenfix

func broken() int {
	return undefinedIdentifier
}
