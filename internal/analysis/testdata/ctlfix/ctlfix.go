// Package ctlfix is the lockorder analyzer's regression fixture for the
// ctl doctrine: the event hub's mutex is a broadcast leaf, so journal I/O
// (fsync on append, snapshot rotation) and the write mutex must never run
// under it — a slow disk would stall every long-polling event client.
// Lines expecting a finding carry a trailing want-comment naming a
// substring of the expected message.
package ctlfix

import "sync"

// Journal stands in for ctl.Journal: every method fsyncs.
type Journal struct{ frames int }

func (j *Journal) appendBatch(owner string, ops []string) error {
	j.frames++
	return nil
}

func (j *Journal) snapshot() error { return nil }

// hub stands in for the ctl event hub: a broadcast leaf mutex.
type hub struct {
	mu     sync.Mutex
	events []string
}

// Ctl stands in for the real Ctl: wmu serializes writes, above the hub.
type Ctl struct {
	wmu     sync.Mutex
	events  *hub
	journal *Journal
}

// journalLocked is the helper shape: durable I/O that is only safe outside
// the hub lock.
func (c *Ctl) journalLocked(owner string, ops []string) {
	c.journal.appendBatch(owner, ops)
}

// publishDurable journals while holding the hub lock: every event waiter
// now stalls behind the fsync.
func (c *Ctl) publishDurable(owner string, ops []string) {
	c.events.mu.Lock()
	c.events.events = append(c.events.events, owner)
	c.journalLocked(owner, ops) // want: reaches Journal.appendBatch
	c.events.mu.Unlock()
}

// directAppend performs the journal write inline under a deferred unlock.
func (c *Ctl) directAppend(owner string) {
	c.events.mu.Lock()
	defer c.events.mu.Unlock()
	c.journal.appendBatch(owner, nil) // want: Journal.appendBatch call while hub.mu is held
}

// rotateUnderHub snapshots while publishing.
func (c *Ctl) rotateUnderHub() {
	c.events.mu.Lock()
	c.journal.snapshot() // want: Journal.snapshot call while hub.mu is held
	c.events.mu.Unlock()
}

// inversion acquires the write mutex above the hub leaf — writes publish
// events, so the correct order is wmu then hub.mu.
func (c *Ctl) inversion() {
	c.events.mu.Lock()
	c.wmu.Lock() // want: Ctl.wmu acquisition while hub.mu is held
	c.wmu.Unlock()
	c.events.mu.Unlock()
}

// reenter takes the hub leaf twice.
func (c *Ctl) reenter() {
	c.events.mu.Lock()
	c.events.mu.Lock() // want: hub.mu re-entry
	c.events.mu.Unlock()
	c.events.mu.Unlock()
}

// writeShape is the doctrine followed: journal under wmu, publish after,
// hub lock only inside the publish. No findings expected.
func (c *Ctl) writeShape(owner string, ops []string) {
	c.wmu.Lock()
	c.journal.appendBatch(owner, ops)
	c.wmu.Unlock()
	c.events.mu.Lock()
	c.events.events = append(c.events.events, owner)
	c.events.mu.Unlock()
}
