// Package hotfix is the hotpath analyzer's fixture: a marked hot root, a
// transitively hot helper, a suppressed exception and cold code.
package hotfix

import (
	"errors"
	"fmt"
	"time"
)

// process is the fixture's packet loop.
//
//hp4:hotpath
func process(p []byte) (int, error) {
	start := time.Now() // want: time.Now in process
	scratch := map[int]int{} // want: map literal in process
	scratch[0] = len(p)
	if err := helper(p); err != nil {
		return 0, err
	}
	_ = start
	return scratch[0], nil
}

// helper is hot only because process calls it.
func helper(p []byte) error {
	if len(p) == 0 {
		msg := fmt.Sprintf("empty packet") // want: fmt.Sprintf in helper
		return errors.New(msg)
	}
	if len(p) > 9000 {
		return fmt.Errorf("jumbo: %d bytes", len(p)) // Errorf is exempt
	}
	deadline := time.Now() //hp4:allow hotpath (fixture's sanctioned clock read)
	_ = deadline
	idx := make(map[string]int, len(p)) // want: map allocation in helper
	_ = idx
	return nil
}

// cold is never reached from a hot root; nothing here is flagged.
func cold() string {
	return fmt.Sprintf("booted at %v", time.Now())
}
