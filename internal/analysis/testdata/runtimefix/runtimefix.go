// Package runtimefix is the lockorder analyzer's regression fixture for the
// internal/runtime doctrine. It reproduces, outside the real runtime
// package, the I/O-layer ABBA shape: enforcement (detach/reattach/close)
// performed while the port-health leaf mutex is held, when the RX/TX
// goroutines being joined may themselves be blocked in noteError on that
// same mutex. Lines expecting a finding carry a trailing want-comment
// naming a substring of the expected message.
package runtimefix

import "sync"

// Transport stands in for runtime.Transport: Close blocks on socket
// teardown and must never run under the health leaf.
type Transport interface {
	Recv([]byte) (int, error)
	Close() error
}

// ioHealth stands in for the runtime's port breaker tracker: a leaf mutex.
type ioHealth struct {
	mu       sync.Mutex
	detached map[int]bool
}

// Runtime stands in for the real runtime: coarse mutex above the leaf.
type Runtime struct {
	mu     sync.Mutex
	health ioHealth
	ports  map[int]Transport
}

// Detach needs rt.mu and joins the port's goroutines — forbidden under the
// health leaf.
func (rt *Runtime) Detach(portNum int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.ports, portNum)
	return nil
}

// enforceLocked is the helper shape: a breaker method that calls back into
// the runtime, only safe when no leaf is held.
func (h *ioHealth) enforceLocked(rt *Runtime, portNum int) {
	rt.Detach(portNum)
}

// onTrip reproduces the deadlock: enforcement runs under the leaf while an
// RX goroutine would block in noteError on the same mutex.
func (rt *Runtime) onTrip(portNum int) {
	rt.health.mu.Lock()
	rt.health.detached[portNum] = true
	rt.health.enforceLocked(rt, portNum) // want: reaches Runtime.Detach
	rt.health.mu.Unlock()
}

// directDetach performs the enforcement inline under a deferred unlock.
func (rt *Runtime) directDetach(portNum int) {
	rt.health.mu.Lock()
	defer rt.health.mu.Unlock()
	rt.Detach(portNum) // want: Runtime.Detach call while ioHealth.mu is held
}

// closeUnderLeaf tears down the transport while holding the leaf.
func (rt *Runtime) closeUnderLeaf(tr Transport) {
	rt.health.mu.Lock()
	tr.Close() // want: Transport.Close call while ioHealth.mu is held
	rt.health.mu.Unlock()
}

// inversion acquires the runtime mutex above the leaf — hierarchy reversed.
func (rt *Runtime) inversion() {
	rt.health.mu.Lock()
	rt.mu.Lock() // want: Runtime mutex acquisition while ioHealth.mu is held
	rt.mu.Unlock()
	rt.health.mu.Unlock()
}

// reenter takes the leaf mutex twice.
func (rt *Runtime) reenter() {
	rt.health.mu.Lock()
	rt.health.mu.Lock() // want: ioHealth.mu re-entry
	rt.health.mu.Unlock()
	rt.health.mu.Unlock()
}

// syncShape mirrors SyncPortHealth: collect decisions under the leaf,
// release it, act afterwards. No findings expected.
func (rt *Runtime) syncShape() {
	var toDetach []int
	rt.health.mu.Lock()
	for p, gone := range rt.health.detached {
		if gone {
			toDetach = append(toDetach, p)
		}
	}
	rt.health.mu.Unlock()
	for _, p := range toDetach {
		rt.Detach(p)
	}
}
