// Package lockfix is the lockorder analyzer's regression fixture. It
// reproduces, outside the real dpmu package, the lock shapes the analyzer
// exists to catch — most importantly the PR-4 bypass-rewire deadlock: a
// switch table write performed by a helper while the health leaf mutex is
// held. Lines expecting a finding carry a trailing want-comment naming a
// substring of the expected message.
package lockfix

import "sync"

// Switch stands in for sim.Switch: TableAdd needs the (simulated) switch
// write lock, the quarantine accessors are lock-free.
type Switch struct{ entries int }

func (s *Switch) TableAdd(table, action string) { s.entries++ }

func (s *Switch) SetQuarantine(budgets map[uint64]int64) {}

func (s *Switch) QuarantineRemaining(pid uint64) (int64, bool) { return 0, false }

// healthTracker stands in for the dpmu breaker state: a leaf mutex.
type healthTracker struct {
	mu       sync.Mutex
	bypassed bool
}

// DPMU stands in for the real DPMU: coarse mutex above the health leaf.
type DPMU struct {
	mu     sync.RWMutex
	SW     *Switch
	health healthTracker
}

// enforceBypassLocked is the old PR-4 helper shape: it writes through the
// switch, which is only safe when no health lock is held.
func (d *DPMU) enforceBypassLocked() {
	d.SW.TableAdd("t_virtnet", "a_bypass")
}

// onFault reproduces the deadlock: the helper runs under health.mu while a
// faulting packet would hold the switch read lock and block on health.mu.
func (d *DPMU) onFault() {
	d.health.mu.Lock()
	d.health.bypassed = true
	d.enforceBypassLocked() // want: reaches sim.Switch.TableAdd
	d.health.mu.Unlock()
}

// directWrite performs the write inline under a deferred unlock.
func (d *DPMU) directWrite() {
	d.health.mu.Lock()
	defer d.health.mu.Unlock()
	d.SW.TableAdd("t_virtnet", "a_bypass") // want: sim.Switch.TableAdd call while health.mu is held
}

// inversion acquires the DPMU mutex above the leaf — the hierarchy reversed.
func (d *DPMU) inversion() {
	d.health.mu.Lock()
	d.mu.Lock() // want: DPMU mutex acquisition while health.mu is held
	d.mu.Unlock()
	d.health.mu.Unlock()
}

// reenter takes the leaf mutex twice.
func (d *DPMU) reenter() {
	d.health.mu.Lock()
	d.health.mu.Lock() // want: health.mu re-entry
	d.health.mu.Unlock()
	d.health.mu.Unlock()
}

// clean is the doctrine followed: lock-free quarantine calls under the
// leaf, the table write only after release. No findings expected.
func (d *DPMU) clean() {
	d.health.mu.Lock()
	d.SW.SetQuarantine(map[uint64]int64{1: 0})
	if _, ok := d.SW.QuarantineRemaining(1); ok {
		d.health.bypassed = false
	}
	d.health.mu.Unlock()
	d.SW.TableAdd("t_virtnet", "a_bypass")
}

// syncShape mirrors syncHealthLocked: decide under the leaf, write after.
func (d *DPMU) syncShape() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.health.mu.Lock()
	rewire := d.health.bypassed
	d.health.mu.Unlock()
	if rewire {
		d.enforceBypassLocked()
	}
}
