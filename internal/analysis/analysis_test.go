package analysis

// The analyzer tests run the real loader over the testdata fixtures (go
// list expands no testdata in ./... patterns, but explicit import paths
// load fine) and over the production packages the analyzers guard, so
// "HEAD is clean" is itself a pinned regression test.

import (
	"fmt"
	"go/token"
	"strings"
	"testing"
)

// wantsOf scans a loaded package for `// want: <substring>` comments and
// returns them keyed by "<file>:<line>".
func wantsOf(pkg *Package) map[string]string {
	wants := map[string]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, rest, ok := strings.Cut(c.Text, "// want: "); ok {
					pos := pkg.Fset.Position(c.Pos())
					wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return wants
}

// checkFixture loads one fixture package, runs one analyzer, and matches
// findings against the fixture's want comments exactly: every want must be
// hit, every finding must be wanted.
func checkFixture(t *testing.T, path string, a *Analyzer) {
	t.Helper()
	pkgs, err := Load(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	wants := wantsOf(pkgs[0])
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", path)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	matched := map[string]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		want, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", d)
			continue
		}
		if !strings.Contains(d.Message, want) {
			t.Errorf("finding at %s: got %q, want substring %q", key, d.Message, want)
		}
		matched[key] = true
	}
	for key, want := range wants {
		if !matched[key] {
			t.Errorf("missing finding at %s (want %q)", key, want)
		}
	}
}

// TestLockorderFixture: the analyzer must flag the PR-4 deadlock shape
// (helper table-write under health.mu), the direct write, the hierarchy
// inversion and the re-entry — and stay silent on the doctrine-conforming
// functions.
func TestLockorderFixture(t *testing.T) {
	checkFixture(t, "hyper4/internal/analysis/testdata/lockfix", Lockorder)
}

// TestLockorderRuntimeFixture: the runtime doctrine — enforcement calls,
// transport teardown and the runtime mutex are all flagged under the port
// health leaf; the collect-then-act shape is not.
func TestLockorderRuntimeFixture(t *testing.T) {
	checkFixture(t, "hyper4/internal/analysis/testdata/runtimefix", Lockorder)
}

// TestLockorderCtlFixture: the ctl doctrine — journal I/O and the write
// mutex are flagged under the event hub leaf; journal-then-publish is not.
func TestLockorderCtlFixture(t *testing.T) {
	checkFixture(t, "hyper4/internal/analysis/testdata/ctlfix", Lockorder)
}

// TestHotpathFixture: wall-clock reads, fmt and map allocation are flagged
// in the root and the transitively hot helper; fmt.Errorf, the //hp4:allow
// suppression and cold code are not.
func TestHotpathFixture(t *testing.T) {
	checkFixture(t, "hyper4/internal/analysis/testdata/hotfix", Hotpath)
}

// TestAtomicsFixture: plain reads/writes of a field bumped via sync/atomic
// are flagged; the atomic sites, the typed-atomic field and the reviewed
// suppression are not.
func TestAtomicsFixture(t *testing.T) {
	checkFixture(t, "hyper4/internal/analysis/testdata/atomfix", Atomics)
}

// TestLoadBrokenPackageFails pins the loader's fatal-on-error behavior: a
// target that does not compile must abort Load (so hp4analyze exits
// non-zero) instead of being silently skipped.
func TestLoadBrokenPackageFails(t *testing.T) {
	_, err := Load("hyper4/internal/analysis/testdata/brokenfix")
	if err == nil {
		t.Fatal("Load succeeded on a package that does not compile")
	}
	if !strings.Contains(err.Error(), "brokenfix") {
		t.Fatalf("error does not name the broken package: %v", err)
	}
}

// TestProductionPackagesClean pins the acceptance criterion: the shipped
// dpmu, sim, runtime and ctl packages carry no lockorder, hotpath or
// atomics findings (beyond the reviewed //hp4:allow sites, which the
// framework drops before reporting).
func TestProductionPackagesClean(t *testing.T) {
	pkgs, err := Load("hyper4/internal/core/dpmu", "hyper4/internal/sim",
		"hyper4/internal/runtime", "hyper4/internal/core/ctl")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run(pkgs, []*Analyzer{Lockorder, Hotpath, Atomics})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("production finding: %s", d)
	}
}

// TestSuppressionScope: //hp4:allow only silences its own analyzer name
// (or "all"), on its own line.
func TestSuppressionScope(t *testing.T) {
	pkgs, err := Load("hyper4/internal/analysis/testdata/hotfix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	pkg := pkgs[0]
	allow := buildAllow(pkg.Fset, pkg.Files)
	found := false
	for key, names := range allow {
		if names["hotpath"] {
			found = true
			if names["lockorder"] {
				t.Errorf("%s: suppression leaked to another analyzer", key)
			}
		}
	}
	if !found {
		t.Fatal("fixture's hotpath suppression not indexed")
	}
}

// TestDiagnosticString keeps the rendering stable for CI log grepping.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 2},
		Analyzer: "lockorder",
		Message:  "boom",
	}
	if got := d.String(); got != "x.go:3:2: lockorder: boom" {
		t.Fatalf("rendering drifted: %q", got)
	}
}
