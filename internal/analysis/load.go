package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` we consume.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *listedErr
	DepsErrors []*listedErr
}

// listedErr is go list's JSON error shape.
type listedErr struct {
	Err string
}

// Load builds and type-checks the packages matching the patterns. Target
// packages (the pattern matches, not mere dependencies) are parsed from
// source with comments — the passes need doc text and //hp4: directives —
// while their imports resolve through the compiler's export data, which
// `go list -export` guarantees is present in the build cache. This is the
// stdlib-only equivalent of golang.org/x/tools/go/packages.Load in
// NeedSyntax|NeedTypes mode.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Incomplete,Error,DepsErrors"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			// `go list -e` reports broken packages in the JSON instead of
			// failing; a target that did not build must abort the load, or
			// the analyzers silently pass on code they never saw.
			if p.Error != nil {
				return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
			}
			if len(p.DepsErrors) > 0 {
				return nil, fmt.Errorf("load %s: dependency error: %s", p.ImportPath, p.DepsErrors[0].Err)
			}
			if p.Incomplete {
				return nil, fmt.Errorf("load %s: package did not build (incomplete)", p.ImportPath)
			}
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("go list %v matched no loadable packages", patterns)
	}

	// The gc importer reads dependency export data through this lookup;
	// unsafe is builtin and handled by the importer itself.
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
