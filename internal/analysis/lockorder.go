package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Lockorder enforces the repository's leaf-mutex doctrines. Each concurrent
// subsystem with a breaker/broadcast leaf mutex documents a hierarchy, and
// this analyzer checks the same shape in all of them: while the leaf is
// held, code must not call back up into the subsystem it sits under.
//
// Doctrines (each is vacuous in packages that lack its type names, so one
// analyzer covers dpmu, runtime and ctl without package-specific wiring):
//
//   - dpmu (internal/core/dpmu/health.go): while healthTracker.mu is held,
//     no sim.Switch method calls (a table write needs the switch write lock,
//     and a faulting packet holds the switch read lock while blocking on
//     health.mu — the PR-4 bypass-rewire deadlock) except the lock-free
//     quarantine accessors, no DPMU mutex acquisition, no re-entry.
//
//   - runtime (internal/runtime/health.go): while ioHealth.mu is held, no
//     Runtime method calls (enforcement needs rt.mu and joins RX/TX
//     goroutines that may themselves be blocked in noteError — the same
//     ABBA shape at the I/O layer), no Transport.Close (blocks on socket
//     teardown), no Runtime mutex acquisition, no re-entry.
//
//   - ctl (internal/core/ctl): while the event hub's mu is held, no Journal
//     method calls (appendBatch/snapshot fsync to disk; a slow disk must
//     never stall every event long-poller), no Ctl.wmu acquisition (writes
//     publish events, so wmu sits above hub.mu), no re-entry.
//
// The check is transitive over same-package calls: a helper that performs a
// forbidden operation poisons every caller that invokes it under the leaf.
// Types are matched by name (healthTracker, Switch, DPMU, ioHealth,
// Runtime, Transport, hub, Journal, Ctl) so the regression fixtures can
// reproduce each shape outside the real packages.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag subsystem calls and lock acquisitions while a leaf mutex (dpmu health, runtime port health, ctl event hub) is held",
	Run:  runLockorder,
}

// muRef names one mutex: a field on a named type.
type muRef struct {
	typeName string // named type owning the mutex field
	field    string // the mutex field's name
	label    string // display name in diagnostics, e.g. "health.mu"
}

// recvRule forbids method calls on one named receiver type while the leaf
// is held. With only set, just those methods are forbidden; otherwise every
// method is, minus the allow set.
type recvRule struct {
	typeName string
	label    string // display prefix, e.g. "sim.Switch"
	allow    map[string]bool
	only     map[string]bool
}

func (r recvRule) forbids(method string) bool {
	if r.only != nil {
		return r.only[method]
	}
	return !r.allow[method]
}

// lockDoctrine is one leaf-mutex hierarchy.
type lockDoctrine struct {
	leaf  muRef
	upper []muRef // mutexes that must not be acquired under the leaf
	recvs []recvRule
}

var lockDoctrines = []lockDoctrine{
	{
		leaf:  muRef{"healthTracker", "mu", "health.mu"},
		upper: []muRef{{"DPMU", "mu", "DPMU mutex"}},
		recvs: []recvRule{{
			typeName: "Switch",
			label:    "sim.Switch",
			// Lock-free atomics on the quarantine table, designed to be
			// called under health.mu.
			allow: map[string]bool{"QuarantineRemaining": true, "SetQuarantine": true},
		}},
	},
	{
		leaf:  muRef{"ioHealth", "mu", "ioHealth.mu"},
		upper: []muRef{{"Runtime", "mu", "Runtime mutex"}},
		recvs: []recvRule{
			{typeName: "Runtime", label: "Runtime"},
			{typeName: "Transport", label: "Transport", only: map[string]bool{"Close": true}},
		},
	},
	{
		leaf:  muRef{"hub", "mu", "hub.mu"},
		upper: []muRef{{"Ctl", "wmu", "Ctl.wmu"}},
		recvs: []recvRule{{typeName: "Journal", label: "Journal"}},
	},
}

// lockOp is one forbidden operation, with the position it occurs at and a
// human description.
type lockOp struct {
	pos  ast.Node
	desc string
}

// funcFacts is the per-function summary pass 1 computes for one doctrine.
type funcFacts struct {
	decl *ast.FuncDecl
	name string
	// ops anywhere in the body, regardless of local lock state — what a
	// caller executes if it invokes this function under the leaf.
	ops []lockOp
	// same-package callees anywhere in the body.
	calls []*types.Func
	// ops performed while this function itself holds the leaf.
	heldOps []lockOp
	// same-package calls made while the leaf is held.
	heldCalls []heldCall
}

type heldCall struct {
	pos    ast.Node
	callee *types.Func
}

func runLockorder(pass *Pass) error {
	for _, doc := range lockDoctrines {
		runLockDoctrine(pass, doc)
	}
	return nil
}

func runLockDoctrine(pass *Pass, doc lockDoctrine) {
	facts := map[*types.Func]*funcFacts{}
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[obj] = collectLockFacts(pass, fd, doc)
			order = append(order, obj)
		}
	}

	// Fixpoint: poisoned(f) holds a representative forbidden op reachable
	// from f (its own or via same-package calls), or nil.
	poisoned := map[*types.Func]*lockOp{}
	chain := map[*types.Func]string{}
	for changed := true; changed; {
		changed = false
		for _, f := range order {
			if poisoned[f] != nil {
				continue
			}
			ff := facts[f]
			if len(ff.ops) > 0 {
				poisoned[f] = &ff.ops[0]
				chain[f] = ff.name
				changed = true
				continue
			}
			for _, callee := range ff.calls {
				if op := poisoned[callee]; op != nil {
					poisoned[f] = op
					chain[f] = ff.name + " -> " + chain[callee]
					changed = true
					break
				}
			}
		}
	}

	for _, f := range order {
		ff := facts[f]
		for _, op := range ff.heldOps {
			pass.Reportf(op.pos.Pos(), "%s while %s is held (in %s)", op.desc, doc.leaf.label, ff.name)
		}
		for _, hc := range ff.heldCalls {
			if op := poisoned[hc.callee]; op != nil {
				pass.Reportf(hc.pos.Pos(), "call under %s reaches %s (via %s)", doc.leaf.label, op.desc, chain[hc.callee])
			}
		}
	}
}

// collectLockFacts walks one function body in source order, tracking
// whether the doctrine's leaf mutex is held. The linear approximation is
// deliberate: the doctrines' critical sections are straight-line
// lock...unlock spans (or defer-unlocked whole functions), and a
// conditional lock would itself be a doctrine violation worth noticing by
// other means.
func collectLockFacts(pass *Pass, fd *ast.FuncDecl, doc lockDoctrine) *funcFacts {
	ff := &funcFacts{decl: fd, name: fd.Name.Name}
	if fd.Recv != nil {
		if t := recvTypeName(pass, fd); t != "" {
			ff.name = t + "." + fd.Name.Name
		}
	}

	// Unlock calls syntactically under a defer keep the lock held until
	// function exit, so they must not clear the walker's held state.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	held := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isMuCall(pass, call, doc.leaf, "Lock"):
			if held {
				ff.heldOps = append(ff.heldOps, lockOp{call, doc.leaf.label + " re-entry"})
			}
			if !deferred[call] {
				held = true
			}
			// A leaf lock anywhere poisons callers already holding it.
			ff.ops = append(ff.ops, lockOp{call, doc.leaf.label + " acquisition"})
		case isMuCall(pass, call, doc.leaf, "Unlock"):
			if !deferred[call] {
				held = false
			}
		case isUpperMuCall(pass, call, doc.upper) != nil:
			ref := isUpperMuCall(pass, call, doc.upper)
			op := lockOp{call, ref.label + " acquisition"}
			ff.ops = append(ff.ops, op)
			if held {
				ff.heldOps = append(ff.heldOps, op)
			}
		default:
			if rule, m := forbiddenRecvMethod(pass, call, doc.recvs); rule != nil {
				op := lockOp{call, fmt.Sprintf("%s.%s call", rule.label, m)}
				ff.ops = append(ff.ops, op)
				if held {
					ff.heldOps = append(ff.heldOps, op)
				}
			} else if callee := samePackageCallee(pass, call); callee != nil {
				ff.calls = append(ff.calls, callee)
				if held {
					ff.heldCalls = append(ff.heldCalls, heldCall{call, callee})
				}
			}
		}
		return true
	})
	return ff
}

// isMuCall reports whether call is `<expr>.<field>.<method>()` where
// <expr>'s type is a named type with the reference's name.
func isMuCall(pass *Pass, call *ast.CallExpr, ref muRef, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != ref.field {
		return false
	}
	return namedTypeName(pass.TypesInfo.Types[mu.X].Type) == ref.typeName
}

// isUpperMuCall matches Lock/RLock on any of the doctrine's upper mutexes.
func isUpperMuCall(pass *Pass, call *ast.CallExpr, upper []muRef) *muRef {
	for i := range upper {
		if isMuCall(pass, call, upper[i], "Lock") || isMuCall(pass, call, upper[i], "RLock") {
			return &upper[i]
		}
	}
	return nil
}

// forbiddenRecvMethod returns the matching rule and method name when call
// is a forbidden method call on one of the doctrine's receiver types.
func forbiddenRecvMethod(pass *Pass, call *ast.CallExpr, recvs []recvRule) (*recvRule, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, ""
	}
	recv := namedTypeName(s.Recv())
	for i := range recvs {
		if recvs[i].typeName == recv && recvs[i].forbids(sel.Sel.Name) {
			return &recvs[i], sel.Sel.Name
		}
	}
	return nil, ""
}

// samePackageCallee resolves a direct call to a function or method defined
// in the package under analysis.
func samePackageCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() != pass.Pkg {
		return nil
	}
	return f
}

// namedTypeName returns the name of the (possibly pointered) named type,
// or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// recvTypeName names a method's receiver type for diagnostics.
func recvTypeName(pass *Pass, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	return namedTypeName(pass.TypesInfo.Types[fd.Recv.List[0].Type].Type)
}
