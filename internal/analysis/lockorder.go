package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Lockorder enforces the DPMU's lock hierarchy doctrine (the package
// comment of internal/core/dpmu/health.go): the switch lock and the DPMU
// mutex sit above the health tracker's leaf mutex, so while health.mu is
// held code must not
//
//   - call a sim.Switch method (a table write needs the switch write lock,
//     and a faulting packet holds the switch read lock while blocking on
//     health.mu — the PR-4 bypass-rewire deadlock), except the lock-free
//     quarantine accessors, or
//   - acquire the DPMU mutex (management ops take d.mu before health.mu;
//     the reverse order inverts the hierarchy), or
//   - re-acquire health.mu.
//
// The check is transitive over same-package calls: a helper that performs
// a forbidden operation poisons every caller that invokes it under
// health.mu. Types are matched by name (healthTracker, Switch, DPMU) so
// the regression fixture can reproduce the shape outside the dpmu package.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag switch calls and DPMU lock acquisition while the health leaf mutex is held",
	Run:  runLockorder,
}

// switchAllowlist are the sim.Switch methods designed to be called under
// health.mu: lock-free atomics on the quarantine table.
var switchAllowlist = map[string]bool{
	"QuarantineRemaining": true,
	"SetQuarantine":       true,
}

// lockOp is one forbidden operation, with the position it occurs at and a
// human description.
type lockOp struct {
	pos  ast.Node
	desc string
}

// funcFacts is the per-function summary pass 1 computes.
type funcFacts struct {
	decl *ast.FuncDecl
	name string
	// ops anywhere in the body, regardless of local lock state — what a
	// caller executes if it invokes this function under health.mu.
	ops []lockOp
	// same-package callees anywhere in the body.
	calls []*types.Func
	// ops performed while this function itself holds health.mu.
	heldOps []lockOp
	// same-package calls made while health.mu is held.
	heldCalls []heldCall
}

type heldCall struct {
	pos    ast.Node
	callee *types.Func
}

func runLockorder(pass *Pass) error {
	facts := map[*types.Func]*funcFacts{}
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[obj] = collectLockFacts(pass, fd)
			order = append(order, obj)
		}
	}

	// Fixpoint: poisoned(f) holds a representative forbidden op reachable
	// from f (its own or via same-package calls), or nil.
	poisoned := map[*types.Func]*lockOp{}
	chain := map[*types.Func]string{}
	for changed := true; changed; {
		changed = false
		for _, f := range order {
			if poisoned[f] != nil {
				continue
			}
			ff := facts[f]
			if len(ff.ops) > 0 {
				poisoned[f] = &ff.ops[0]
				chain[f] = ff.name
				changed = true
				continue
			}
			for _, callee := range ff.calls {
				if op := poisoned[callee]; op != nil {
					poisoned[f] = op
					chain[f] = ff.name + " -> " + chain[callee]
					changed = true
					break
				}
			}
		}
	}

	for _, f := range order {
		ff := facts[f]
		for _, op := range ff.heldOps {
			pass.Reportf(op.pos.Pos(), "%s while health.mu is held (in %s)", op.desc, ff.name)
		}
		for _, hc := range ff.heldCalls {
			if op := poisoned[hc.callee]; op != nil {
				pass.Reportf(hc.pos.Pos(), "call under health.mu reaches %s (via %s)", op.desc, chain[hc.callee])
			}
		}
	}
	return nil
}

// collectLockFacts walks one function body in source order, tracking
// whether health.mu is held. The linear approximation is deliberate: the
// doctrine's critical sections are straight-line lock...unlock spans (or
// defer-unlocked whole functions), and a conditional lock would itself be
// a doctrine violation worth noticing by other means.
func collectLockFacts(pass *Pass, fd *ast.FuncDecl) *funcFacts {
	ff := &funcFacts{decl: fd, name: fd.Name.Name}
	if fd.Recv != nil {
		if t := recvTypeName(pass, fd); t != "" {
			ff.name = t + "." + fd.Name.Name
		}
	}

	// Unlock calls syntactically under a defer keep the lock held until
	// function exit, so they must not clear the walker's held state.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	held := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isMuCall(pass, call, "healthTracker", "Lock"):
			if held {
				ff.heldOps = append(ff.heldOps, lockOp{call, "health.mu re-entry"})
			}
			if !deferred[call] {
				held = true
			}
			// A health lock anywhere poisons callers already holding it.
			ff.ops = append(ff.ops, lockOp{call, "health.mu acquisition"})
		case isMuCall(pass, call, "healthTracker", "Unlock"):
			if !deferred[call] {
				held = false
			}
		case isMuCall(pass, call, "DPMU", "Lock"), isMuCall(pass, call, "DPMU", "RLock"):
			ff.ops = append(ff.ops, lockOp{call, "DPMU mutex acquisition"})
			if held {
				ff.heldOps = append(ff.heldOps, lockOp{call, "DPMU mutex acquisition"})
			}
		default:
			if m := switchMethod(pass, call); m != "" && !switchAllowlist[m] {
				op := lockOp{call, fmt.Sprintf("sim.Switch.%s call", m)}
				ff.ops = append(ff.ops, op)
				if held {
					ff.heldOps = append(ff.heldOps, op)
				}
			} else if callee := samePackageCallee(pass, call); callee != nil {
				ff.calls = append(ff.calls, callee)
				if held {
					ff.heldCalls = append(ff.heldCalls, heldCall{call, callee})
				}
			}
		}
		return true
	})
	return ff
}

// isMuCall reports whether call is `<expr>.mu.Lock()` (or the given
// method) where <expr>'s type is a named type with the given name.
func isMuCall(pass *Pass, call *ast.CallExpr, typeName, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return false
	}
	return namedTypeName(pass.TypesInfo.Types[mu.X].Type) == typeName
}

// switchMethod returns the method name when call is a method call on a
// type named Switch, else "".
func switchMethod(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	if namedTypeName(s.Recv()) != "Switch" {
		return ""
	}
	return sel.Sel.Name
}

// samePackageCallee resolves a direct call to a function or method defined
// in the package under analysis.
func samePackageCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() != pass.Pkg {
		return nil
	}
	return f
}

// namedTypeName returns the name of the (possibly pointered) named type,
// or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// recvTypeName names a method's receiver type for diagnostics.
func recvTypeName(pass *Pass, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	return namedTypeName(pass.TypesInfo.Types[fd.Recv.List[0].Type].Type)
}
