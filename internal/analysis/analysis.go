// Package analysis is a small, dependency-free static-analysis framework
// for this repository's own invariants — the shapes of bug the runtime
// tests can only catch probabilistically (lock-order inversions that need
// a precise interleaving, allocations on the per-packet path that only
// show up as throughput loss).
//
// It deliberately mirrors the go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) so the passes could migrate to the real framework if the
// x/tools dependency ever becomes available, but it is implemented
// entirely on the standard library: packages are loaded via
// `go list -deps -export -json` and type-checked from source against the
// build cache's export data (see load.go).
//
// Suppression: a finding whose source line carries a trailing
// `//hp4:allow <analyzer>` comment is dropped. Every suppression is a
// documented, reviewed exception — the comment survives in the diff.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	Name string // short lower-case identifier, used in //hp4:allow
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass is one (analyzer, package) pairing: the loaded syntax and type
// information plus the reporting sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// allow maps "<filename>:<line>" to the analyzer names suppressed on
	// that line, built once per package from //hp4:allow comments.
	allow map[string]map[string]bool

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless the line carries a matching
// //hp4:allow suppression.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	if names, ok := p.allow[key]; ok && (names[p.Analyzer.Name] || names["all"]) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirective is the suppression comment prefix.
const allowDirective = "//hp4:allow "

// buildAllow scans every comment in the package for suppression
// directives. The directive suppresses findings reported on its own line,
// so it is written as a trailing comment on the flagged statement.
func buildAllow(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	allow := map[string]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if allow[key] == nil {
					allow[key] = map[string]bool{}
				}
				for _, name := range strings.Fields(rest) {
					allow[key][name] = true
				}
			}
		}
	}
	return allow
}

// Run applies the analyzers to the loaded packages and returns all
// findings sorted by position. Analyzer errors (not findings) abort.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := buildAllow(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				allow:     allow,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
