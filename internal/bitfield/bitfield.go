// Package bitfield implements arbitrary-width big-endian bit vectors.
//
// HyPer4 represents all of an emulated program's packet data in one very wide
// metadata field (800 bits in the paper's configuration) and all of its
// metadata in another (256 bits). Every persona primitive therefore reduces
// to mask/shift/boolean/arithmetic manipulation of wide bit vectors, which is
// what this package provides.
//
// A Value is a fixed-width vector of Width bits stored big-endian in a byte
// slice, most-significant bit first; bit 0 is the most significant bit. This
// matches network byte order so that bytes extracted from a packet
// concatenate into a Value without reordering.
package bitfield

import (
	"bytes"
	"fmt"
	"math/big"
	"strings"
)

// Value is a fixed-width big-endian bit vector.
type Value struct {
	width int // in bits
	b     []byte
}

// New returns a zero Value of the given width in bits. Width zero is legal
// and yields an empty value.
func New(width int) Value {
	if width < 0 {
		panic("bitfield: negative width")
	}
	return Value{width: width, b: make([]byte, bytesFor(width))}
}

// FromBytes builds a Value of the given bit width from big-endian bytes.
// If data is shorter than the width it is right-aligned (zero-extended on the
// left, i.e. treated as an unsigned integer); if longer, the most significant
// excess bytes are dropped.
func FromBytes(width int, data []byte) Value {
	v := New(width)
	n := len(v.b)
	if len(data) >= n {
		copy(v.b, data[len(data)-n:])
	} else {
		copy(v.b[n-len(data):], data)
	}
	v.clampTop()
	return v
}

// FromUint builds a Value of the given width from an unsigned integer,
// truncating to width bits.
func FromUint(width int, x uint64) Value {
	v := New(width)
	for i := len(v.b) - 1; i >= 0 && x != 0; i-- {
		v.b[i] = byte(x)
		x >>= 8
	}
	v.clampTop()
	return v
}

// FromBig builds a Value of the given width from a non-negative big.Int,
// truncating to width bits.
func FromBig(width int, x *big.Int) Value {
	if x.Sign() < 0 {
		panic("bitfield: negative big.Int")
	}
	return FromBytes(width, x.Bytes())
}

// ParseHex parses strings like "0x0a0b" or "a0b" into a Value of the given
// width. An empty string yields zero.
func ParseHex(width int, s string) (Value, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	if s == "" {
		return New(width), nil
	}
	x, ok := new(big.Int).SetString(s, 16)
	if !ok {
		return Value{}, fmt.Errorf("bitfield: bad hex %q", s)
	}
	return FromBig(width, x), nil
}

// Width returns the width in bits.
func (v Value) Width() int { return v.width }

// Bytes returns the value as big-endian bytes (ceil(width/8) of them).
// The returned slice is a copy.
func (v Value) Bytes() []byte {
	out := make([]byte, len(v.b))
	copy(out, v.b)
	return out
}

// Uint64 returns the low 64 bits of the value.
func (v Value) Uint64() uint64 {
	var x uint64
	start := 0
	if len(v.b) > 8 {
		start = len(v.b) - 8
	}
	for _, c := range v.b[start:] {
		x = x<<8 | uint64(c)
	}
	return x
}

// Big returns the value as a big.Int.
func (v Value) Big() *big.Int { return new(big.Int).SetBytes(v.b) }

// IsZero reports whether every bit is zero.
func (v Value) IsZero() bool {
	for _, c := range v.b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (v Value) Clone() Value {
	out := Value{width: v.width, b: make([]byte, len(v.b))}
	copy(out.b, v.b)
	return out
}

// Resize returns v at the given width. Growing zero-extends on the left;
// shrinking drops the most significant bits. When the width already matches,
// v itself is returned (no copy): treat the result as read-only, or Clone it
// before mutating.
func (v Value) Resize(width int) Value {
	if width == v.width {
		return v
	}
	return FromBytes(width, v.b)
}

// Equal reports whether v and o have the same width and bits.
func (v Value) Equal(o Value) bool {
	if v.width != o.width {
		return false
	}
	for i := range v.b {
		if v.b[i] != o.b[i] {
			return false
		}
	}
	return true
}

// EqualBits reports whether v and o represent the same unsigned integer,
// ignoring width.
func (v Value) EqualBits(o Value) bool { return v.Big().Cmp(o.Big()) == 0 }

// Cmp compares v and o as unsigned integers: -1, 0, or +1. Representations
// are canonical (top pad bits always zero), so byte comparison suffices for
// equal widths; mixed widths fall back to big.Int.
func (v Value) Cmp(o Value) int {
	if v.width == o.width {
		return bytes.Compare(v.b, o.b)
	}
	return v.Big().Cmp(o.Big())
}

// String renders the value as 0x-prefixed hex with the full byte width.
func (v Value) String() string {
	if v.width == 0 {
		return "0x"
	}
	var sb strings.Builder
	sb.WriteString("0x")
	for _, c := range v.b {
		fmt.Fprintf(&sb, "%02x", c)
	}
	return sb.String()
}

// Bit returns bit i (0 = most significant).
func (v Value) Bit(i int) byte {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitfield: bit %d out of range for width %d", i, v.width))
	}
	off := v.padBits() + i
	return (v.b[off/8] >> (7 - off%8)) & 1
}

// SetBit sets bit i (0 = most significant) to b&1, in place.
func (v *Value) SetBit(i int, bit byte) {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitfield: bit %d out of range for width %d", i, v.width))
	}
	off := v.padBits() + i
	mask := byte(1) << (7 - off%8)
	if bit&1 == 1 {
		v.b[off/8] |= mask
	} else {
		v.b[off/8] &^= mask
	}
}

// Slice extracts bits [start, start+width) of v (start 0 = most significant
// bit) as a new Value of the given width.
func (v Value) Slice(start, width int) Value {
	if start < 0 || width < 0 || start+width > v.width {
		panic(fmt.Sprintf("bitfield: slice [%d,%d) out of range for width %d", start, start+width, v.width))
	}
	out := New(width)
	copyBits(out.b, out.padBits(), v.b, v.padBits()+start, width)
	return out
}

// Insert writes src into bits [start, start+src.Width()) of v, in place.
func (v *Value) Insert(start int, src Value) {
	if start < 0 || start+src.width > v.width {
		panic(fmt.Sprintf("bitfield: insert [%d,%d) out of range for width %d", start, start+src.width, v.width))
	}
	copyBits(v.b, v.padBits()+start, src.b, src.padBits(), src.width)
}

// copyBits copies n bits from src starting at absolute bit so into dst
// starting at absolute bit do (bit 0 = MSB of the first byte). It handles
// arbitrary misalignment, with a byte-at-a-time fast path once the
// destination is byte-aligned.
func copyBits(dst []byte, do int, src []byte, so, n int) {
	// Leading bits until the destination is byte-aligned.
	for n > 0 && do%8 != 0 {
		copyBit(dst, do, src, so)
		do++
		so++
		n--
	}
	k := uint(so % 8)
	di, si := do/8, so/8
	for n >= 8 {
		b := src[si] << k
		if k > 0 {
			b |= src[si+1] >> (8 - k)
		}
		dst[di] = b
		di++
		si++
		do += 8
		so += 8
		n -= 8
	}
	for ; n > 0; n-- {
		copyBit(dst, do, src, so)
		do++
		so++
	}
}

func copyBit(dst []byte, do int, src []byte, so int) {
	bit := (src[so/8] >> (7 - so%8)) & 1
	mask := byte(1) << (7 - do%8)
	if bit == 1 {
		dst[do/8] |= mask
	} else {
		dst[do/8] &^= mask
	}
}

// --- in-place variants ---
//
// The fast path through the simulator keeps one long-lived Value per packet
// field and mutates it, rather than allocating a fresh Value per operation.
// These methods are the mutating counterparts of the functional API above.

// Zero clears every bit in place.
func (v *Value) Zero() {
	for i := range v.b {
		v.b[i] = 0
	}
}

// CopyFrom overwrites v with o's bits in place. Widths must match.
func (v *Value) CopyFrom(o Value) {
	v.checkWidth(o)
	copy(v.b, o.b)
}

// SetBytes overwrites v in place from big-endian bytes, with FromBytes
// resize semantics (right-aligned, zero-extended or truncated on the left).
func (v *Value) SetBytes(data []byte) {
	n := len(v.b)
	if len(data) >= n {
		copy(v.b, data[len(data)-n:])
	} else {
		for i := 0; i < n-len(data); i++ {
			v.b[i] = 0
		}
		copy(v.b[n-len(data):], data)
	}
	v.clampTop()
}

// SetFrom overwrites v from another Value of any width, with FromBytes
// resize semantics.
func (v *Value) SetFrom(o Value) { v.SetBytes(o.b) }

// SetPrefixBytes zeroes v and copies data into its leading bytes (bit offset
// 0 onward), without allocating — the left-aligned counterpart of SetBytes,
// used to load packet prefixes into wide extracted-data fields. v's width
// must be byte-aligned and at least 8*len(data).
func (v *Value) SetPrefixBytes(data []byte) {
	if v.padBits() != 0 {
		panic("bitfield: SetPrefixBytes on non-byte-aligned width")
	}
	if len(data) > len(v.b) {
		panic(fmt.Sprintf("bitfield: SetPrefixBytes %d bytes into width %d", len(data), v.width))
	}
	n := copy(v.b, data)
	for i := n; i < len(v.b); i++ {
		v.b[i] = 0
	}
}

// SetUint overwrites v in place from an unsigned integer.
func (v *Value) SetUint(x uint64) {
	for i := len(v.b) - 1; i >= 0; i-- {
		v.b[i] = byte(x)
		x >>= 8
	}
	v.clampTop()
}

// InsertUint writes the low `width` bits of x into bits [start, start+width)
// of v, in place, without allocating. width must be at most 64.
func (v *Value) InsertUint(start, width int, x uint64) {
	if width > 64 {
		panic("bitfield: InsertUint width > 64")
	}
	if start < 0 || start+width > v.width {
		panic(fmt.Sprintf("bitfield: insert [%d,%d) out of range for width %d", start, start+width, v.width))
	}
	var buf [8]byte
	for i := 7; i >= 0; i-- {
		buf[i] = byte(x)
		x >>= 8
	}
	copyBits(v.b, v.padBits()+start, buf[:], 64-width, width)
}

// UintAt reads bits [start, start+width) of v as an unsigned integer without
// allocating. width must be at most 64.
func (v Value) UintAt(start, width int) uint64 {
	if width > 64 {
		panic("bitfield: UintAt width > 64")
	}
	if start < 0 || width < 0 || start+width > v.width {
		panic(fmt.Sprintf("bitfield: slice [%d,%d) out of range for width %d", start, start+width, v.width))
	}
	var x uint64
	off := v.padBits() + start
	for i := 0; i < width; i++ {
		x = x<<1 | uint64((v.b[(off+i)/8]>>(7-(off+i)%8))&1)
	}
	return x
}

// SliceInto extracts bits [start, start+width) of v into dst, reusing dst's
// backing buffer when it is large enough.
func (v Value) SliceInto(dst *Value, start, width int) {
	if start < 0 || width < 0 || start+width > v.width {
		panic(fmt.Sprintf("bitfield: slice [%d,%d) out of range for width %d", start, start+width, v.width))
	}
	n := bytesFor(width)
	if cap(dst.b) < n {
		dst.b = make([]byte, n)
	} else {
		dst.b = dst.b[:n]
		for i := range dst.b {
			dst.b[i] = 0
		}
	}
	dst.width = width
	copyBits(dst.b, dst.padBits(), v.b, v.padBits()+start, width)
}

// InsertBits writes bits [srcStart, srcStart+width) of src into bits
// [start, start+width) of v, in place.
func (v *Value) InsertBits(start int, src Value, srcStart, width int) {
	if start < 0 || start+width > v.width || srcStart < 0 || srcStart+width > src.width {
		panic("bitfield: InsertBits out of range")
	}
	copyBits(v.b, v.padBits()+start, src.b, src.padBits()+srcStart, width)
}

// AppendSliceTo appends the big-endian bytes of bits [start, start+width) to
// dst — exactly the bytes v.Slice(start, width).Bytes() would produce, but
// without allocating a Value.
func (v Value) AppendSliceTo(dst []byte, start, width int) []byte {
	if start < 0 || width < 0 || start+width > v.width {
		panic(fmt.Sprintf("bitfield: slice [%d,%d) out of range for width %d", start, start+width, v.width))
	}
	n := bytesFor(width)
	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	copyBits(dst[base:], n*8-width, v.b, v.padBits()+start, width)
	return dst
}

// AndWith sets v = v & o in place. Operands must share a width.
func (v *Value) AndWith(o Value) {
	v.checkWidth(o)
	for i := range v.b {
		v.b[i] &= o.b[i]
	}
}

// OrWith sets v = v | o in place. Operands must share a width.
func (v *Value) OrWith(o Value) {
	v.checkWidth(o)
	for i := range v.b {
		v.b[i] |= o.b[i]
	}
}

// XorWith sets v = v ^ o in place. Operands must share a width.
func (v *Value) XorWith(o Value) {
	v.checkWidth(o)
	for i := range v.b {
		v.b[i] ^= o.b[i]
	}
}

// NotSelf sets v = ^v in place, within the width.
func (v *Value) NotSelf() {
	for i := range v.b {
		v.b[i] = ^v.b[i]
	}
	v.clampTop()
}

// AddWith sets v = (v + o) mod 2^width in place. Operands must share a width.
func (v *Value) AddWith(o Value) {
	v.checkWidth(o)
	var carry uint16
	for i := len(v.b) - 1; i >= 0; i-- {
		s := uint16(v.b[i]) + uint16(o.b[i]) + carry
		v.b[i] = byte(s)
		carry = s >> 8
	}
	v.clampTop()
}

// SubWith sets v = (v - o) mod 2^width in place. Operands must share a width.
func (v *Value) SubWith(o Value) {
	v.checkWidth(o)
	var borrow int16
	for i := len(v.b) - 1; i >= 0; i-- {
		d := int16(v.b[i]) - int16(o.b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		v.b[i] = byte(d)
	}
	v.clampTop()
}

// And returns v & o. Operands must share a width.
func (v Value) And(o Value) Value { return v.boolop(o, func(a, b byte) byte { return a & b }) }

// Or returns v | o. Operands must share a width.
func (v Value) Or(o Value) Value { return v.boolop(o, func(a, b byte) byte { return a | b }) }

// Xor returns v ^ o. Operands must share a width.
func (v Value) Xor(o Value) Value { return v.boolop(o, func(a, b byte) byte { return a ^ b }) }

// Not returns ^v within the width.
func (v Value) Not() Value {
	out := v.Clone()
	for i := range out.b {
		out.b[i] = ^out.b[i]
	}
	out.clampTop()
	return out
}

// Shl returns v << n within the width (bits shifted past the top are lost).
func (v Value) Shl(n int) Value {
	if n < 0 {
		panic("bitfield: negative shift")
	}
	out := New(v.width)
	if n >= v.width {
		return out
	}
	// Result bits [0, width-n) are v's bits [n, width).
	copyBits(out.b, out.padBits(), v.b, v.padBits()+n, v.width-n)
	return out
}

// Shr returns v >> n (logical).
func (v Value) Shr(n int) Value {
	if n < 0 {
		panic("bitfield: negative shift")
	}
	out := New(v.width)
	if n >= v.width {
		return out
	}
	// Result bits [n, width) are v's bits [0, width-n).
	copyBits(out.b, out.padBits()+n, v.b, v.padBits(), v.width-n)
	return out
}

// Add returns v + o mod 2^width. Operands must share a width.
func (v Value) Add(o Value) Value {
	v.checkWidth(o)
	out := New(v.width)
	var carry uint16
	for i := len(v.b) - 1; i >= 0; i-- {
		s := uint16(v.b[i]) + uint16(o.b[i]) + carry
		out.b[i] = byte(s)
		carry = s >> 8
	}
	out.clampTop()
	return out
}

// Sub returns v - o mod 2^width. Operands must share a width.
func (v Value) Sub(o Value) Value {
	v.checkWidth(o)
	out := New(v.width)
	var borrow int16
	for i := len(v.b) - 1; i >= 0; i-- {
		d := int16(v.b[i]) - int16(o.b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out.b[i] = byte(d)
	}
	out.clampTop()
	return out
}

// MatchTernary reports whether v&mask == want&mask. All three must share a
// width.
func (v Value) MatchTernary(want, mask Value) bool {
	v.checkWidth(want)
	v.checkWidth(mask)
	for i := range v.b {
		if v.b[i]&mask.b[i] != want.b[i]&mask.b[i] {
			return false
		}
	}
	return true
}

// MatchPrefix reports whether the top plen bits of v equal the top plen bits
// of want (an LPM match). plen may be 0 (always true) up to the width.
func (v Value) MatchPrefix(want Value, plen int) bool {
	v.checkWidth(want)
	if plen < 0 || plen > v.width {
		panic(fmt.Sprintf("bitfield: prefix length %d out of range for width %d", plen, v.width))
	}
	for i := 0; i < plen; i++ {
		if v.Bit(i) != want.Bit(i) {
			return false
		}
	}
	return true
}

// InRange reports whether lo <= v <= hi as unsigned integers.
func (v Value) InRange(lo, hi Value) bool {
	return v.Cmp(lo) >= 0 && v.Cmp(hi) <= 0
}

// PopCount returns the number of set bits.
func (v Value) PopCount() int {
	n := 0
	for _, c := range v.b {
		for ; c != 0; c &= c - 1 {
			n++
		}
	}
	return n
}

// Ones returns a Value of the given width with every bit set.
func Ones(width int) Value {
	return New(width).Not()
}

// MaskRange returns a Value of the given width whose bits [start, start+n)
// are set and all others clear. Useful for building ternary masks that
// isolate an emulated field inside the wide extracted-data field.
func MaskRange(width, start, n int) Value {
	v := New(width)
	v.Insert(start, Ones(n))
	return v
}

func (v Value) boolop(o Value, f func(a, b byte) byte) Value {
	v.checkWidth(o)
	out := New(v.width)
	for i := range v.b {
		out.b[i] = f(v.b[i], o.b[i])
	}
	out.clampTop()
	return out
}

func (v Value) checkWidth(o Value) {
	if v.width != o.width {
		panic(fmt.Sprintf("bitfield: width mismatch %d vs %d", v.width, o.width))
	}
}

// padBits is the number of unused bits at the top of the first byte.
func (v Value) padBits() int { return len(v.b)*8 - v.width }

// clampTop zeroes the unused top bits so representations stay canonical.
func (v *Value) clampTop() {
	if pad := v.padBits(); pad > 0 && len(v.b) > 0 {
		v.b[0] &= 0xff >> pad
	}
}

func bytesFor(width int) int { return (width + 7) / 8 }
