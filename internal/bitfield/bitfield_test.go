package bitfield

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	for _, w := range []int{0, 1, 7, 8, 9, 63, 64, 65, 800} {
		v := New(w)
		if v.Width() != w {
			t.Errorf("New(%d).Width() = %d", w, v.Width())
		}
		if !v.IsZero() {
			t.Errorf("New(%d) not zero", w)
		}
	}
}

func TestFromUintRoundTrip(t *testing.T) {
	cases := []struct {
		w int
		x uint64
	}{
		{8, 0xab}, {16, 0xabcd}, {12, 0xabc}, {1, 1}, {64, 0xdeadbeefcafef00d},
		{48, 0x112233445566}, {3, 5},
	}
	for _, c := range cases {
		v := FromUint(c.w, c.x)
		if got := v.Uint64(); got != c.x {
			t.Errorf("FromUint(%d, %#x).Uint64() = %#x", c.w, c.x, got)
		}
	}
}

func TestFromUintTruncates(t *testing.T) {
	v := FromUint(8, 0x1ff)
	if got := v.Uint64(); got != 0xff {
		t.Errorf("FromUint(8, 0x1ff) = %#x, want 0xff", got)
	}
	v = FromUint(4, 0xab)
	if got := v.Uint64(); got != 0xb {
		t.Errorf("FromUint(4, 0xab) = %#x, want 0xb", got)
	}
}

func TestFromBytesAlignment(t *testing.T) {
	// Shorter data is right-aligned (unsigned integer semantics).
	v := FromBytes(32, []byte{0xaa, 0xbb})
	if got := v.Uint64(); got != 0xaabb {
		t.Errorf("FromBytes(32, aabb) = %#x, want 0xaabb", got)
	}
	// Longer data drops the most significant bytes.
	v = FromBytes(16, []byte{0x11, 0x22, 0x33, 0x44})
	if got := v.Uint64(); got != 0x3344 {
		t.Errorf("FromBytes(16, 11223344) = %#x, want 0x3344", got)
	}
}

func TestParseHex(t *testing.T) {
	v, err := ParseHex(16, "0xabcd")
	if err != nil || v.Uint64() != 0xabcd {
		t.Fatalf("ParseHex = %v, %v", v, err)
	}
	v, err = ParseHex(16, "ff")
	if err != nil || v.Uint64() != 0xff {
		t.Fatalf("ParseHex(ff) = %v, %v", v, err)
	}
	if _, err := ParseHex(8, "zz"); err == nil {
		t.Fatal("ParseHex(zz) should fail")
	}
	v, err = ParseHex(8, "")
	if err != nil || !v.IsZero() {
		t.Fatalf("ParseHex empty = %v, %v", v, err)
	}
}

func TestBitAndSetBit(t *testing.T) {
	v := FromUint(12, 0x800) // bit 0 (msb) set
	if v.Bit(0) != 1 {
		t.Error("msb should be 1")
	}
	if v.Bit(11) != 0 {
		t.Error("lsb should be 0")
	}
	v.SetBit(11, 1)
	if got := v.Uint64(); got != 0x801 {
		t.Errorf("after SetBit(11,1): %#x", got)
	}
	v.SetBit(0, 0)
	if got := v.Uint64(); got != 0x001 {
		t.Errorf("after SetBit(0,0): %#x", got)
	}
}

func TestSliceInsert(t *testing.T) {
	v := FromUint(32, 0x11223344)
	s := v.Slice(8, 16)
	if got := s.Uint64(); got != 0x2233 {
		t.Errorf("Slice(8,16) = %#x, want 0x2233", got)
	}
	v.Insert(8, FromUint(16, 0xeeff))
	if got := v.Uint64(); got != 0x11eeff44 {
		t.Errorf("after Insert: %#x", got)
	}
}

func TestSliceEdges(t *testing.T) {
	v := FromUint(16, 0xabcd)
	if got := v.Slice(0, 16).Uint64(); got != 0xabcd {
		t.Errorf("full slice = %#x", got)
	}
	if got := v.Slice(0, 0).Width(); got != 0 {
		t.Errorf("empty slice width = %d", got)
	}
	if got := v.Slice(12, 4).Uint64(); got != 0xd {
		t.Errorf("tail nibble = %#x", got)
	}
}

func TestBoolOps(t *testing.T) {
	a := FromUint(16, 0xff00)
	b := FromUint(16, 0x0ff0)
	if got := a.And(b).Uint64(); got != 0x0f00 {
		t.Errorf("And = %#x", got)
	}
	if got := a.Or(b).Uint64(); got != 0xfff0 {
		t.Errorf("Or = %#x", got)
	}
	if got := a.Xor(b).Uint64(); got != 0xf0f0 {
		t.Errorf("Xor = %#x", got)
	}
	if got := a.Not().Uint64(); got != 0x00ff {
		t.Errorf("Not = %#x", got)
	}
}

func TestNotClampsToWidth(t *testing.T) {
	v := New(12).Not()
	if got := v.Uint64(); got != 0xfff {
		t.Errorf("Not of zero width-12 = %#x, want 0xfff", got)
	}
}

func TestShifts(t *testing.T) {
	v := FromUint(16, 0x00f0)
	if got := v.Shl(4).Uint64(); got != 0x0f00 {
		t.Errorf("Shl = %#x", got)
	}
	if got := v.Shr(4).Uint64(); got != 0x000f {
		t.Errorf("Shr = %#x", got)
	}
	if got := v.Shl(16).Uint64(); got != 0 {
		t.Errorf("Shl overflow = %#x", got)
	}
	if got := v.Shl(9).Uint64(); got != 0xe000 {
		t.Errorf("Shl(9) drops top bits = %#x, want 0xe000", got)
	}
}

func TestAddSub(t *testing.T) {
	a := FromUint(8, 250)
	b := FromUint(8, 10)
	if got := a.Add(b).Uint64(); got != 4 { // wraps mod 256
		t.Errorf("Add wrap = %d", got)
	}
	if got := b.Sub(a).Uint64(); got != 16 { // 10-250 mod 256
		t.Errorf("Sub wrap = %d", got)
	}
	if got := a.Sub(b).Uint64(); got != 240 {
		t.Errorf("Sub = %d", got)
	}
}

func TestMatchTernary(t *testing.T) {
	v := FromUint(16, 0xabcd)
	if !v.MatchTernary(FromUint(16, 0xab00), FromUint(16, 0xff00)) {
		t.Error("should match on high byte")
	}
	if v.MatchTernary(FromUint(16, 0xac00), FromUint(16, 0xff00)) {
		t.Error("should not match different high byte")
	}
	if !v.MatchTernary(FromUint(16, 0), FromUint(16, 0)) {
		t.Error("zero mask matches everything")
	}
}

func TestMatchPrefix(t *testing.T) {
	ip := FromUint(32, 0x0a000102) // 10.0.1.2
	net := FromUint(32, 0x0a000100)
	if !ip.MatchPrefix(net, 24) {
		t.Error("10.0.1.2 should match 10.0.1.0/24")
	}
	if ip.MatchPrefix(FromUint(32, 0x0a000200), 24) {
		t.Error("10.0.1.2 should not match 10.0.2.0/24")
	}
	if !ip.MatchPrefix(FromUint(32, 0), 0) {
		t.Error("/0 matches everything")
	}
	if !ip.MatchPrefix(ip, 32) {
		t.Error("/32 exact")
	}
}

func TestInRange(t *testing.T) {
	v := FromUint(16, 1000)
	if !v.InRange(FromUint(16, 1000), FromUint(16, 2000)) {
		t.Error("inclusive low bound")
	}
	if !v.InRange(FromUint(16, 500), FromUint(16, 1000)) {
		t.Error("inclusive high bound")
	}
	if v.InRange(FromUint(16, 1001), FromUint(16, 2000)) {
		t.Error("below range")
	}
}

func TestMaskRange(t *testing.T) {
	m := MaskRange(16, 4, 8)
	if got := m.Uint64(); got != 0x0ff0 {
		t.Errorf("MaskRange(16,4,8) = %#x, want 0x0ff0", got)
	}
	if got := MaskRange(800, 0, 800).PopCount(); got != 800 {
		t.Errorf("full mask popcount = %d", got)
	}
}

func TestResize(t *testing.T) {
	v := FromUint(16, 0xabcd)
	if got := v.Resize(32).Uint64(); got != 0xabcd {
		t.Errorf("grow = %#x", got)
	}
	if got := v.Resize(8).Uint64(); got != 0xcd {
		t.Errorf("shrink = %#x", got)
	}
}

func TestEqual(t *testing.T) {
	a := FromUint(16, 5)
	if !a.Equal(FromUint(16, 5)) {
		t.Error("equal values")
	}
	if a.Equal(FromUint(8, 5)) {
		t.Error("different widths are not Equal")
	}
	if !a.EqualBits(FromUint(8, 5)) {
		t.Error("EqualBits ignores width")
	}
}

func TestString(t *testing.T) {
	if got := FromUint(16, 0xab).String(); got != "0x00ab" {
		t.Errorf("String = %q", got)
	}
	if got := New(0).String(); got != "0x" {
		t.Errorf("empty String = %q", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	v := FromUint(8, 1)
	mustPanic("width mismatch", func() { v.And(FromUint(16, 1)) })
	mustPanic("slice oob", func() { v.Slice(4, 8) })
	mustPanic("bit oob", func() { v.Bit(8) })
	mustPanic("negative shift", func() { v.Shl(-1) })
	mustPanic("insert oob", func() {
		x := FromUint(8, 0)
		x.Insert(4, FromUint(8, 1))
	})
	mustPanic("negative width", func() { New(-1) })
}

// --- property-based tests ---

func randValue(r *rand.Rand, width int) Value {
	b := make([]byte, (width+7)/8)
	r.Read(b)
	return FromBytes(width, b)
}

func TestPropSliceInsertRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(200)
		v := randValue(r, w)
		start := r.Intn(w)
		n := r.Intn(w - start)
		s := v.Slice(start, n)
		u := v.Clone()
		u.Insert(start, s)
		return u.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropNotNot(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(900)
		v := randValue(r, w)
		return v.Not().Not().Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddSubInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(128)
		a, b := randValue(r, w), randValue(r, w)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropShiftInverse(t *testing.T) {
	// Shifting right then left preserves the bits that survive, i.e.
	// (v >> n) << n == v with the low n bits cleared... we test the dual:
	// for values whose top n bits are clear, (v << n) >> n == v.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 8 + r.Intn(256)
		n := r.Intn(w)
		v := randValue(r, w).Shr(n) // clear top n bits
		return v.Shl(n).Shr(n).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTernaryFullMaskIsEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(800)
		a, b := randValue(r, w), randValue(r, w)
		full := Ones(w)
		return a.MatchTernary(b, full) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropBigRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(800)
		v := randValue(r, w)
		return FromBig(w, v.Big()).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(300)
		a, b := randValue(r, w), randValue(r, w)
		return a.And(b).Not().Equal(a.Not().Or(b.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropPrefixVsTernary(t *testing.T) {
	// An LPM match of length n is the same as a ternary match whose mask is
	// the top n bits.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(64)
		n := r.Intn(w + 1)
		a, b := randValue(r, w), randValue(r, w)
		mask := New(w)
		if n > 0 {
			mask = MaskRange(w, 0, n)
		}
		return a.MatchPrefix(b, n) == a.MatchTernary(b, mask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigZero(t *testing.T) {
	if New(64).Big().Sign() != 0 {
		t.Error("zero value Big should be 0")
	}
	if FromBig(16, big.NewInt(0x1234)).Uint64() != 0x1234 {
		t.Error("FromBig round trip")
	}
}
