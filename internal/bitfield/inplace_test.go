package bitfield

import (
	"bytes"
	"testing"
)

func TestZeroAndCopyFrom(t *testing.T) {
	v := FromUint(16, 0xabcd)
	v.Zero()
	if !v.IsZero() {
		t.Errorf("Zero: %v", v)
	}
	v.CopyFrom(FromUint(16, 0x1234))
	if v.Uint64() != 0x1234 {
		t.Errorf("CopyFrom: %v", v)
	}
}

func TestSetBytesMatchesFromBytes(t *testing.T) {
	data := []byte{0xde, 0xad, 0xbe, 0xef}
	for _, w := range []int{8, 12, 16, 32, 48} {
		want := FromBytes(w, data)
		got := FromUint(w, 0x7f) // non-zero starting contents
		got.SetBytes(data)
		if !got.Equal(want) {
			t.Errorf("width %d: SetBytes %v, FromBytes %v", w, got, want)
		}
		got2 := New(w)
		got2.SetFrom(FromBytes(32, data))
		if !got2.Equal(want) {
			t.Errorf("width %d: SetFrom %v, want %v", w, got2, want)
		}
	}
}

func TestSetUintAndInsertUint(t *testing.T) {
	v := FromUint(12, 0xfff)
	v.SetUint(0xab)
	if v.Uint64() != 0xab {
		t.Errorf("SetUint: %v", v)
	}
	// InsertUint must match Insert of FromUint.
	a := FromUint(20, 0xfffff)
	b := a.Clone()
	a.InsertUint(3, 9, 0x1a5)
	b.Insert(3, FromUint(9, 0x1a5))
	if !a.Equal(b) {
		t.Errorf("InsertUint %v vs Insert %v", a, b)
	}
}

func TestUintAtMatchesSlice(t *testing.T) {
	v := FromUint(40, 0xdeadbeef55)
	for _, c := range []struct{ start, width int }{{0, 8}, {3, 13}, {12, 20}, {39, 1}, {0, 40}} {
		want := v.Slice(c.start, c.width).Uint64()
		if got := v.UintAt(c.start, c.width); got != want {
			t.Errorf("UintAt(%d,%d) = %#x, Slice = %#x", c.start, c.width, got, want)
		}
	}
}

func TestSliceIntoMatchesSlice(t *testing.T) {
	v := FromUint(48, 0x123456789abc)
	var dst Value
	for _, c := range []struct{ start, width int }{{0, 16}, {5, 11}, {20, 28}, {40, 8}} {
		v.SliceInto(&dst, c.start, c.width)
		want := v.Slice(c.start, c.width)
		if !dst.Equal(want) {
			t.Errorf("SliceInto(%d,%d) = %v, Slice = %v", c.start, c.width, dst, want)
		}
	}
	// Shrinking reuse must clear stale upper bits.
	v.SliceInto(&dst, 0, 40)
	v.SliceInto(&dst, 0, 4)
	if !dst.Equal(v.Slice(0, 4)) {
		t.Errorf("reused SliceInto kept stale bits: %v", dst)
	}
}

func TestInsertBitsMatchesSliceInsert(t *testing.T) {
	src := FromUint(32, 0xcafebabe)
	a := FromUint(24, 0xffffff)
	b := a.Clone()
	a.InsertBits(5, src, 9, 13)
	b.Insert(5, src.Slice(9, 13))
	if !a.Equal(b) {
		t.Errorf("InsertBits %v vs Slice+Insert %v", a, b)
	}
}

func TestAppendSliceTo(t *testing.T) {
	v := FromUint(44, 0xabcdef0123)
	for _, c := range []struct{ start, width int }{{0, 44}, {4, 40}, {7, 9}, {12, 16}} {
		got := v.AppendSliceTo([]byte{0x55}, c.start, c.width)
		want := append([]byte{0x55}, v.Slice(c.start, c.width).Bytes()...)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendSliceTo(%d,%d) = %x, want %x", c.start, c.width, got, want)
		}
	}
}

func TestMutatingOpsMatchFunctional(t *testing.T) {
	a := FromUint(20, 0xabcde)
	b := FromUint(20, 0x13579)
	check := func(name string, got, want Value) {
		t.Helper()
		if !got.Equal(want) {
			t.Errorf("%s: %v, want %v", name, got, want)
		}
	}
	v := a.Clone()
	v.AndWith(b)
	check("AndWith", v, a.And(b))
	v = a.Clone()
	v.OrWith(b)
	check("OrWith", v, a.Or(b))
	v = a.Clone()
	v.XorWith(b)
	check("XorWith", v, a.Xor(b))
	v = a.Clone()
	v.NotSelf()
	check("NotSelf", v, a.Not())
	v = a.Clone()
	v.AddWith(b)
	check("AddWith", v, a.Add(b))
	v = a.Clone()
	v.SubWith(b)
	check("SubWith", v, a.Sub(b))
	// Wrap-around still clamps the top pad bits.
	v = FromUint(12, 0xfff)
	v.AddWith(FromUint(12, 1))
	if !v.IsZero() {
		t.Errorf("AddWith wrap: %v", v)
	}
}

// TestResizeSameWidthAliases documents the Resize fast path: a same-width
// Resize returns the receiver itself, so results must be treated read-only.
func TestResizeSameWidthAliases(t *testing.T) {
	v := FromUint(16, 0x1234)
	r := v.Resize(16)
	if !r.Equal(v) {
		t.Fatalf("Resize identity: %v", r)
	}
	r2 := v.Resize(24)
	r2.SetUint(0)
	if v.Uint64() != 0x1234 {
		t.Errorf("growing Resize must copy; receiver mutated to %v", v)
	}
}
