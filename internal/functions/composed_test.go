package functions

import (
	"bytes"
	"testing"

	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

func composedSwitch(t *testing.T) (*ComposedController, *sim.Switch) {
	t.Helper()
	sw, err := NewSwitch("c1", Composed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewComposedController(sw)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddProxiedHost(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	if err := c.BlockTCPDstPort(5201); err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		ip   pkt.IP4
		port int
		mac  pkt.MAC
	}{{ip1, 1, mac1}, {ip2, 2, mac2}} {
		if err := c.AddRoute(r.ip, 32, r.ip, r.port); err != nil {
			t.Fatal(err)
		}
		if err := c.AddNextHop(r.ip, r.mac); err != nil {
			t.Fatal(err)
		}
		if err := c.AddPortMAC(r.port, pkt.MustMAC("aa:aa:aa:aa:aa:09")); err != nil {
			t.Fatal(err)
		}
	}
	return c, sw
}

func TestComposedAnswersARP(t *testing.T) {
	_, sw := composedSwitch(t)
	req := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: mac1, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: mac1, SenderIP: ip1, TargetIP: ip2},
	))
	out, tr, err := sw.Process(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("outputs: %+v", out)
	}
	_, rest, _ := pkt.DecodeEthernet(out[0].Data)
	reply, err := pkt.DecodeARP(rest)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != pkt.ARPReply || reply.SenderHW != mac2 {
		t.Errorf("reply: %+v", reply)
	}
	// ARP-request path: check_arp + arp_resp.
	if tr.Applies != 2 {
		t.Errorf("applies = %d", tr.Applies)
	}
}

func TestComposedFiltersAndRoutes(t *testing.T) {
	_, sw := composedSwitch(t)
	blocked := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ip1, Dst: ip2},
		&pkt.TCP{SrcPort: 999, DstPort: 5201},
	))
	out, _, err := sw.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("blocked TCP should drop: %+v", out)
	}
	allowed := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ip1, Dst: ip2},
		&pkt.TCP{SrcPort: 999, DstPort: 80},
	))
	out, tr, err := sw.Process(allowed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("allowed TCP should route: %+v", out)
	}
	eth, rest, _ := pkt.DecodeEthernet(out[0].Data)
	if eth.Dst != mac2 {
		t.Errorf("dst MAC: %v", eth.Dst)
	}
	ip, _, err := pkt.DecodeIPv4(rest)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d", ip.TTL)
	}
	if pkt.Checksum(rest[:20]) != 0 {
		t.Error("checksum invalid")
	}
	// TCP path: check_arp, ip_filter, tcp_filter, ipv4_lpm, forward, send_frame.
	if tr.Applies != 6 {
		t.Errorf("applies = %d, want 6", tr.Applies)
	}
}

// TestComposedEquivalentToChain verifies the native composed program (the
// §7.2 "composition compiler" output) behaves like the HyPer4 virtual chain
// for representative packets: ICMP and allowed/blocked TCP.
func TestComposedEquivalentToChain(t *testing.T) {
	_, sw := composedSwitch(t)
	ping := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoICMP, Src: ip1, Dst: ip2},
		&pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 5, Seq: 6},
	))
	out, _, err := sw.Process(ping, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("ping should route: %+v", out)
	}
	_, rest, _ := pkt.DecodeEthernet(out[0].Data)
	ip, icmpB, err := pkt.DecodeIPv4(rest)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d", ip.TTL)
	}
	if !bytes.Equal(icmpB[:8], pingICMPHeader(5, 6)) {
		t.Errorf("icmp header changed: %x", icmpB[:8])
	}
}

func pingICMPHeader(id, seq uint16) []byte {
	h := &pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: id, Seq: seq}
	b := h.Serialize(nil)
	// Checksum as Serialize in the frame: computed over header only here.
	full := pkt.Serialize(h)
	copy(b, full)
	return b
}
