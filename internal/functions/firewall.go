package functions

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// FirewallSource is the firewall (§3.1 function 4): it filters traffic by
// IPv4 source/destination and TCP/UDP source/destination ports, and switches
// allowed traffic at layer 2. The most complex path (a TCP or UDP packet)
// applies three tables, matching the native count in Table 1.
const FirewallSource = `
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type ipv4_t {
    fields {
        verIhl : 8;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flagsFrag : 16;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}

header_type tcp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        seqNo : 32;
        ackNo : 32;
        dataOffset : 4;
        res : 4;
        flags : 8;
        window : 16;
        checksum : 16;
        urgentPtr : 16;
    }
}

header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}

header ethernet_t ethernet;
header ipv4_t ipv4;
header tcp_t tcp;
header udp_t udp;

parser start {
    extract(ethernet);
    return select(latest.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}

parser parse_ipv4 {
    extract(ipv4);
    return select(latest.protocol) {
        6 : parse_tcp;
        17 : parse_udp;
        default : ingress;
    }
}

parser parse_tcp {
    extract(tcp);
    return ingress;
}

parser parse_udp {
    extract(udp);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

table ip_filter {
    reads {
        ipv4.srcAddr : ternary;
        ipv4.dstAddr : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table tcp_filter {
    reads {
        tcp.srcPort : ternary;
        tcp.dstPort : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table udp_filter {
    reads {
        udp.srcPort : ternary;
        udp.dstPort : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    size : 512;
}

control ingress {
    if (valid(ipv4)) {
        apply(ip_filter);
    }
    if (valid(tcp)) {
        apply(tcp_filter);
    } else {
        if (valid(udp)) {
            apply(udp_filter);
        }
    }
    apply(dmac);
}
`

// FirewallController populates the firewall's tables.
type FirewallController struct {
	add func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error
}

// NewFirewallController installs entries directly on a native switch.
func NewFirewallController(sw *sim.Switch) *FirewallController {
	return &FirewallController{add: func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error {
		_, err := sw.TableAdd(table, action, params, args, prio)
		return err
	}}
}

// NewFirewallControllerFunc routes entries through an arbitrary installer.
func NewFirewallControllerFunc(add func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error) *FirewallController {
	return &FirewallController{add: add}
}

// BlockTCPDstPort drops TCP traffic to a destination port — the rule the
// paper's examples install ("filter traffic with a certain TCP destination
// port", §3.2).
func (c *FirewallController) BlockTCPDstPort(port uint16) error {
	err := c.add("tcp_filter", "_drop",
		[]sim.MatchParam{
			sim.TernaryUint(16, 0, 0),
			sim.TernaryUint(16, uint64(port), 0xffff),
		}, nil, 1)
	if err != nil {
		return fmt.Errorf("firewall tcp_filter: %w", err)
	}
	return nil
}

// BlockUDPDstPort drops UDP traffic to a destination port.
func (c *FirewallController) BlockUDPDstPort(port uint16) error {
	err := c.add("udp_filter", "_drop",
		[]sim.MatchParam{
			sim.TernaryUint(16, 0, 0),
			sim.TernaryUint(16, uint64(port), 0xffff),
		}, nil, 1)
	if err != nil {
		return fmt.Errorf("firewall udp_filter: %w", err)
	}
	return nil
}

// BlockIPPair drops IPv4 traffic from src to dst (full-address match).
func (c *FirewallController) BlockIPPair(src, dst pkt.IP4) error {
	err := c.add("ip_filter", "_drop",
		[]sim.MatchParam{
			sim.Ternary(bitfield.FromBytes(32, src[:]), bitfield.Ones(32)),
			sim.Ternary(bitfield.FromBytes(32, dst[:]), bitfield.Ones(32)),
		}, nil, 1)
	if err != nil {
		return fmt.Errorf("firewall ip_filter: %w", err)
	}
	return nil
}

// AddHost installs L2 forwarding for allowed traffic.
func (c *FirewallController) AddHost(mac pkt.MAC, port int) error {
	err := c.add("dmac", "forward",
		[]sim.MatchParam{sim.Exact(bitfield.FromBytes(48, mac[:]))},
		sim.Args(9, uint64(port)), 0)
	if err != nil {
		return fmt.Errorf("firewall dmac: %w", err)
	}
	return nil
}
