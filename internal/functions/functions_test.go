package functions

import (
	"bytes"
	"testing"

	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

var (
	mac1 = pkt.MustMAC("00:00:00:00:00:01")
	mac2 = pkt.MustMAC("00:00:00:00:00:02")
	ip1  = pkt.MustIP4("10.0.0.1")
	ip2  = pkt.MustIP4("10.0.0.2")
)

func TestAllFunctionsLoad(t *testing.T) {
	for _, name := range Names() {
		if _, err := Load(name); err != nil {
			t.Errorf("Load(%s): %v", name, err)
		}
	}
	if _, err := Load("nope"); err == nil {
		t.Error("unknown function should error")
	}
}

func TestL2SwitchForwardsAndCounts(t *testing.T) {
	sw, err := NewSwitch("s1", L2Switch)
	if err != nil {
		t.Fatal(err)
	}
	c := NewL2Controller(sw)
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}, pkt.Payload("x"))
	out, tr, err := sw.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("outputs: %+v", out)
	}
	if !bytes.Equal(out[0].Data, frame) {
		t.Error("L2 switch must not modify the frame")
	}
	// Table 1: native L2 switch = 2 matches.
	if tr.Applies != 2 {
		t.Errorf("applies = %d, want 2 (paper Table 1)", tr.Applies)
	}
}

func TestRouterRoutesAndRewrites(t *testing.T) {
	sw, err := NewSwitch("r1", Router)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRouterController(sw)
	if err != nil {
		t.Fatal(err)
	}
	nhop := pkt.MustIP4("192.168.1.1")
	rMAC := pkt.MustMAC("aa:aa:aa:aa:aa:01")
	if err := c.AddRoute(pkt.MustIP4("20.0.0.0"), 8, nhop, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNextHop(nhop, mac2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPortMAC(3, rMAC); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MustMAC("aa:aa:aa:aa:aa:00"), Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: pkt.MustIP4("20.1.2.3")},
		&pkt.UDP{SrcPort: 1000, DstPort: 2000},
		pkt.Payload("data"),
	)
	out, tr, err := sw.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 3 {
		t.Fatalf("outputs: %+v", out)
	}
	eth, rest, _ := pkt.DecodeEthernet(out[0].Data)
	if eth.Dst != mac2 || eth.Src != rMAC {
		t.Errorf("MAC rewrite: %v -> %v", eth.Src, eth.Dst)
	}
	ip, _, err := pkt.DecodeIPv4(rest)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d", ip.TTL)
	}
	if pkt.Checksum(rest[:20]) != 0 {
		t.Error("IPv4 checksum not recomputed")
	}
	// Table 1: native router = 4 matches.
	if tr.Applies != 4 {
		t.Errorf("applies = %d, want 4 (paper Table 1)", tr.Applies)
	}
}

func TestRouterDropsExpiredTTL(t *testing.T) {
	sw, err := NewSwitch("r1", Router)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRouterController(sw)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddRoute(pkt.MustIP4("0.0.0.0"), 0, pkt.MustIP4("192.168.1.1"), 2); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 1, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: ip2},
		&pkt.UDP{SrcPort: 1, DstPort: 2},
	)
	out, _, err := sw.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("ttl=1 should drop: %+v", out)
	}
}

func TestARPProxyAnswersRequests(t *testing.T) {
	sw, err := NewSwitch("a1", ARPProxy)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewARPController(sw)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddProxiedHost(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	req := pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: mac1, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: mac1, SenderIP: ip1, TargetIP: ip2},
	)
	out, tr, err := sw.Process(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("reply should exit the ingress port: %+v", out)
	}
	eth, rest, _ := pkt.DecodeEthernet(out[0].Data)
	if eth.Dst != mac1 || eth.Src != mac2 {
		t.Errorf("reply MACs: %v -> %v", eth.Src, eth.Dst)
	}
	reply, err := pkt.DecodeARP(rest)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != pkt.ARPReply || reply.SenderHW != mac2 || reply.SenderIP != ip2 ||
		reply.TargetHW != mac1 || reply.TargetIP != ip1 {
		t.Errorf("reply: %+v", reply)
	}
	// Table 1: ARP proxy's most complex path = 4 matches... for a proxied
	// request the path is check_arp + arp_resp = 2; the 4-match path is an
	// unproxied request falling through to smac+dmac.
	if tr.Applies != 2 {
		t.Errorf("proxied request applies = %d, want 2", tr.Applies)
	}
}

func TestARPProxyMostComplexPathIsFour(t *testing.T) {
	sw, err := NewSwitch("a1", ARPProxy)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewARPController(sw)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	// Request for an unproxied IP addressed at a known station.
	req := pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: mac1, SenderIP: ip1, TargetIP: pkt.MustIP4("10.0.0.99")},
	)
	out, tr, err := sw.Process(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("unproxied request should be switched: %+v", out)
	}
	if tr.Applies != 4 {
		t.Errorf("applies = %d, want 4 (paper Table 1)", tr.Applies)
	}
}

func TestARPProxySwitchesNonARP(t *testing.T) {
	sw, err := NewSwitch("a1", ARPProxy)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewARPController(sw)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x1234}, pkt.Payload("hi"))
	out, _, err := sw.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 || !bytes.Equal(out[0].Data, frame) {
		t.Fatalf("outputs: %+v", out)
	}
}

func firewallWithHosts(t *testing.T) (*sim.Switch, *FirewallController) {
	t.Helper()
	sw, err := NewSwitch("f1", Firewall)
	if err != nil {
		t.Fatal(err)
	}
	c := NewFirewallController(sw)
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	return sw, c
}

func tcpFrame(dstPort uint16) []byte {
	return pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ip1, Dst: ip2},
		&pkt.TCP{SrcPort: 44444, DstPort: dstPort},
		pkt.Payload("data"),
	)
}

func TestFirewallBlocksTCPPort(t *testing.T) {
	sw, c := firewallWithHosts(t)
	if err := c.BlockTCPDstPort(5201); err != nil {
		t.Fatal(err)
	}
	out, tr, err := sw.Process(tcpFrame(5201), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("blocked port should drop: %+v", out)
	}
	// Table 1: native firewall = 3 matches on the most complex path.
	if tr.Applies != 3 {
		t.Errorf("applies = %d, want 3 (paper Table 1)", tr.Applies)
	}
	out, _, err = sw.Process(tcpFrame(80), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("allowed port should pass: %+v", out)
	}
}

func TestFirewallBlocksUDPAndIPPair(t *testing.T) {
	sw, c := firewallWithHosts(t)
	if err := c.BlockUDPDstPort(53); err != nil {
		t.Fatal(err)
	}
	if err := c.BlockIPPair(ip1, pkt.MustIP4("10.0.0.9")); err != nil {
		t.Fatal(err)
	}
	udp := func(dst pkt.IP4, port uint16) []byte {
		return pkt.Serialize(
			&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: dst},
			&pkt.UDP{SrcPort: 9999, DstPort: port},
		)
	}
	if out, _, _ := sw.Process(udp(ip2, 53), 1); len(out) != 0 {
		t.Error("UDP 53 should drop")
	}
	if out, _, _ := sw.Process(udp(ip2, 54), 1); len(out) != 1 {
		t.Error("UDP 54 should pass")
	}
	if out, _, _ := sw.Process(udp(pkt.MustIP4("10.0.0.9"), 54), 1); len(out) != 0 {
		t.Error("blocked IP pair should drop")
	}
}

func TestFirewallPassesICMP(t *testing.T) {
	sw, c := firewallWithHosts(t)
	if err := c.BlockTCPDstPort(5201); err != nil {
		t.Fatal(err)
	}
	ping := pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoICMP, Src: ip1, Dst: ip2},
		&pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 1, Seq: 1},
	)
	out, tr, err := sw.Process(ping, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("ICMP should pass: %+v", out)
	}
	// ICMP path applies ip_filter + dmac only.
	if tr.Applies != 2 {
		t.Errorf("applies = %d, want 2", tr.Applies)
	}
}
