// Package functions provides the four network functions the HyPer4 paper
// writes in P4 and emulates (§3.1): a layer-2 Ethernet switch, an IPv4
// router, an ARP proxy, and a firewall. Each function is real P4_14 source
// (parsed by our own front end and executed by internal/sim) plus a native
// controller that populates its tables.
//
// The table shapes are chosen so the native match counts on the most complex
// packet path equal Table 1 of the paper: L2 switch 2, firewall 3, router 4,
// ARP proxy 4.
package functions

import (
	"fmt"

	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
	"hyper4/internal/sim"
)

// Names of the four functions.
const (
	L2Switch = "l2_switch"
	Router   = "router"
	ARPProxy = "arp_proxy"
	Firewall = "firewall"
)

// Sources maps function name to its P4_14 source.
var Sources = map[string]string{
	L2Switch: L2SwitchSource,
	Router:   RouterSource,
	ARPProxy: ARPProxySource,
	Firewall: FirewallSource,
	Composed: ComposedSource,
}

// Names returns the four function names in the paper's Table 1 order.
func Names() []string { return []string{L2Switch, Firewall, Router, ARPProxy} }

// Load parses and resolves a function by name.
func Load(name string) (*hlir.Program, error) {
	src, ok := Sources[name]
	if !ok {
		return nil, fmt.Errorf("functions: unknown function %q", name)
	}
	prog, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return hlir.Resolve(prog)
}

// NewSwitch parses, resolves, and loads a function onto a fresh switch.
func NewSwitch(swName, fn string) (*sim.Switch, error) {
	prog, err := Load(fn)
	if err != nil {
		return nil, err
	}
	return sim.New(swName, prog)
}
