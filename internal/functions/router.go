package functions

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// RouterSource is the IPv4 router (§3.1 function 2): TTL validation, LPM
// route lookup, next-hop MAC rewrite, and egress source-MAC rewrite, with
// the IPv4 header checksum recomputed. The most complex path applies four
// tables, matching the native count in Table 1.
const RouterSource = `
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type ipv4_t {
    fields {
        verIhl : 8;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flagsFrag : 16;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}

header_type routing_metadata_t {
    fields {
        nhop_ipv4 : 32;
    }
}

header ethernet_t ethernet;
header ipv4_t ipv4;
metadata routing_metadata_t routing_metadata;

field_list ipv4_checksum_list {
    ipv4.verIhl;
    ipv4.diffserv;
    ipv4.totalLen;
    ipv4.identification;
    ipv4.flagsFrag;
    ipv4.ttl;
    ipv4.protocol;
    ipv4.srcAddr;
    ipv4.dstAddr;
}

field_list_calculation ipv4_checksum {
    input {
        ipv4_checksum_list;
    }
    algorithm : csum16;
    output_width : 16;
}

calculated_field ipv4.hdrChecksum {
    update ipv4_checksum if (valid(ipv4));
}

parser start {
    extract(ethernet);
    return select(latest.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}

parser parse_ipv4 {
    extract(ipv4);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action set_nhop(nhop_ipv4, port) {
    modify_field(routing_metadata.nhop_ipv4, nhop_ipv4);
    modify_field(standard_metadata.egress_spec, port);
    subtract_from_field(ipv4.ttl, 1);
}

action set_dmac(dmac) {
    modify_field(ethernet.dstAddr, dmac);
}

action rewrite_mac(smac) {
    modify_field(ethernet.srcAddr, smac);
}

// TTL validation: entries for ttl 0 and 1 drop; everything else passes.
table validate_ttl {
    reads {
        ipv4.ttl : exact;
    }
    actions {
        _drop;
        _nop;
    }
    default_action : _nop;
    size : 4;
}

table ipv4_lpm {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        _drop;
    }
    size : 1024;
}

table forward {
    reads {
        routing_metadata.nhop_ipv4 : exact;
    }
    actions {
        set_dmac;
        _drop;
    }
    size : 512;
}

table send_frame {
    reads {
        standard_metadata.egress_port : exact;
    }
    actions {
        rewrite_mac;
        _drop;
    }
    size : 256;
}

control ingress {
    if (valid(ipv4)) {
        apply(validate_ttl);
        apply(ipv4_lpm);
        apply(forward);
    }
}

control egress {
    if (valid(ipv4)) {
        apply(send_frame);
    }
}
`

// RouterController populates the router's tables.
type RouterController struct {
	add func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error
}

// NewRouterController installs entries directly on a native switch and sets
// the TTL-expiry drops.
func NewRouterController(sw *sim.Switch) (*RouterController, error) {
	c := &RouterController{add: func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error {
		_, err := sw.TableAdd(table, action, params, args, prio)
		return err
	}}
	if err := c.Init(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewRouterControllerFunc routes entries through an arbitrary installer
// without initializing defaults (the DPMU path calls Init separately).
func NewRouterControllerFunc(add func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error) *RouterController {
	return &RouterController{add: add}
}

// Init installs the TTL-expiry entries.
func (c *RouterController) Init() error {
	for _, ttl := range []uint64{0, 1} {
		if err := c.add("validate_ttl", "_drop", []sim.MatchParam{sim.ExactUint(8, ttl)}, nil, 0); err != nil {
			return fmt.Errorf("router validate_ttl: %w", err)
		}
	}
	return nil
}

// AddRoute installs a prefix route to a next hop reachable out a port.
func (c *RouterController) AddRoute(prefix pkt.IP4, plen int, nhop pkt.IP4, port int) error {
	err := c.add("ipv4_lpm", "set_nhop",
		[]sim.MatchParam{sim.LPM(bitfield.FromBytes(32, prefix[:]), plen)},
		[]bitfield.Value{bitfield.FromBytes(32, nhop[:]), bitfield.FromUint(9, uint64(port))}, 0)
	if err != nil {
		return fmt.Errorf("router ipv4_lpm: %w", err)
	}
	return nil
}

// AddNextHop binds a next-hop IP to its MAC address.
func (c *RouterController) AddNextHop(nhop pkt.IP4, mac pkt.MAC) error {
	err := c.add("forward", "set_dmac",
		[]sim.MatchParam{sim.Exact(bitfield.FromBytes(32, nhop[:]))},
		[]bitfield.Value{bitfield.FromBytes(48, mac[:])}, 0)
	if err != nil {
		return fmt.Errorf("router forward: %w", err)
	}
	return nil
}

// AddPortMAC sets the source MAC used when transmitting out a port.
func (c *RouterController) AddPortMAC(port int, mac pkt.MAC) error {
	err := c.add("send_frame", "rewrite_mac",
		[]sim.MatchParam{sim.ExactUint(9, uint64(port))},
		[]bitfield.Value{bitfield.FromBytes(48, mac[:])}, 0)
	if err != nil {
		return fmt.Errorf("router send_frame: %w", err)
	}
	return nil
}
