package functions

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// ARPProxySource is the ARP proxy (§3.1 function 3): it answers ARP requests
// on behalf of the IPv4 hosts they target, and switches all other traffic at
// layer 2. Its proxy_reply action uses nine primitives to turn the request
// into a reply in place — the paper calls this out as the reason the
// emulated ARP proxy costs 12x (Table 1) and it is the program with the most
// unique persona tables (Table 3).
const ARPProxySource = `
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type arp_t {
    fields {
        htype : 16;
        ptype : 16;
        hlen : 8;
        plen : 8;
        oper : 16;
        sha : 48;
        spa : 32;
        tha : 48;
        tpa : 32;
    }
}

header_type arp_metadata_t {
    fields {
        tmp_ip : 32;
        is_request : 8;
    }
}

header ethernet_t ethernet;
header arp_t arp;
metadata arp_metadata_t arp_meta;

parser start {
    extract(ethernet);
    return select(latest.etherType) {
        0x0806 : parse_arp;
        default : ingress;
    }
}

parser parse_arp {
    extract(arp);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action mark_request() {
    modify_field(arp_meta.is_request, 1);
}

// proxy_reply rewrites the request into a reply for the proxied host:
// nine primitives, as in the paper.
action proxy_reply(mac) {
    modify_field(arp_meta.tmp_ip, arp.tpa);
    modify_field(arp.tpa, arp.spa);
    modify_field(arp.spa, arp_meta.tmp_ip);
    modify_field(arp.tha, arp.sha);
    modify_field(arp.sha, mac);
    modify_field(arp.oper, 2);
    modify_field(ethernet.dstAddr, arp.tha);
    modify_field(ethernet.srcAddr, mac);
    modify_field(standard_metadata.egress_spec, standard_metadata.ingress_port);
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

// check_arp classifies the packet: is it an ARP request?
table check_arp {
    reads {
        valid(arp) : exact;
        arp.oper : exact;
    }
    actions {
        mark_request;
        _nop;
    }
    default_action : _nop;
    size : 2;
}

// arp_resp answers requests whose target IP the proxy serves.
table arp_resp {
    reads {
        arp.tpa : exact;
    }
    actions {
        proxy_reply;
        _nop;
    }
    default_action : _nop;
    size : 256;
}

table smac {
    reads {
        ethernet.srcAddr : exact;
    }
    actions {
        _nop;
        _drop;
    }
    size : 512;
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    size : 512;
}

control ingress {
    apply(check_arp);
    if (arp_meta.is_request == 1) {
        apply(arp_resp) {
            _nop {
                // Request for an IP we do not proxy: switch it onward.
                apply(smac);
                apply(dmac);
            }
        }
    } else {
        apply(smac);
        apply(dmac);
    }
}
`

// ARPController populates the ARP proxy's tables.
type ARPController struct {
	add func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error
}

// NewARPController installs entries directly on a native switch and marks
// ARP requests.
func NewARPController(sw *sim.Switch) (*ARPController, error) {
	c := &ARPController{add: func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error {
		_, err := sw.TableAdd(table, action, params, args, prio)
		return err
	}}
	if err := c.Init(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewARPControllerFunc routes entries through an arbitrary installer.
func NewARPControllerFunc(add func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error) *ARPController {
	return &ARPController{add: add}
}

// Init installs the request-classification entry.
func (c *ARPController) Init() error {
	err := c.add("check_arp", "mark_request",
		[]sim.MatchParam{sim.Valid(true), sim.ExactUint(16, pkt.ARPRequest)}, nil, 0)
	if err != nil {
		return fmt.Errorf("arp check_arp: %w", err)
	}
	return nil
}

// AddProxiedHost answers ARP requests for ip with mac.
func (c *ARPController) AddProxiedHost(ip pkt.IP4, mac pkt.MAC) error {
	err := c.add("arp_resp", "proxy_reply",
		[]sim.MatchParam{sim.Exact(bitfield.FromBytes(32, ip[:]))},
		[]bitfield.Value{bitfield.FromBytes(48, mac[:])}, 0)
	if err != nil {
		return fmt.Errorf("arp arp_resp: %w", err)
	}
	return nil
}

// AddHost installs L2 forwarding for non-ARP traffic.
func (c *ARPController) AddHost(mac pkt.MAC, port int) error {
	macVal := bitfield.FromBytes(48, mac[:])
	if err := c.add("smac", "_nop", []sim.MatchParam{sim.Exact(macVal)}, nil, 0); err != nil {
		return fmt.Errorf("arp smac: %w", err)
	}
	if err := c.add("dmac", "forward", []sim.MatchParam{sim.Exact(macVal)}, sim.Args(9, uint64(port)), 0); err != nil {
		return fmt.Errorf("arp dmac: %w", err)
	}
	return nil
}
