package functions

import (
	"os"
	"path/filepath"
	"testing"
)

// TestP4SourcesInSync keeps the browsable .p4 files under p4src/ identical
// to the embedded sources the library actually runs. Regenerate them with
//
//	HP4_UPDATE_P4=1 go test ./internal/functions -run TestP4SourcesInSync
var updateP4 = os.Getenv("HP4_UPDATE_P4") != ""

func TestP4SourcesInSync(t *testing.T) {
	root := filepath.Join("..", "..", "p4src")
	for name, src := range Sources {
		path := filepath.Join(root, name+".p4")
		if updateP4 {
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (set HP4_UPDATE_P4=1 to regenerate)", path, err)
		}
		if string(got) != src {
			t.Errorf("%s is out of sync with the embedded source (set HP4_UPDATE_P4=1)", path)
		}
	}
}
