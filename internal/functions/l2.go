package functions

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// L2SwitchSource is the layer-2 Ethernet switch (§3.1 function 1). The most
// complex path applies two tables (smac check, dmac forward), matching the
// native count in Table 1.
const L2SwitchSource = `
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header ethernet_t ethernet;

parser start {
    extract(ethernet);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

// Source-MAC check: a hit means the address is known; a miss would be the
// hook for learning (flagged to the controller in a full deployment).
table smac {
    reads {
        ethernet.srcAddr : exact;
    }
    actions {
        _nop;
        _drop;
    }
    size : 512;
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    size : 512;
}

control ingress {
    apply(smac);
    apply(dmac);
}
`

// L2Controller populates the L2 switch's tables.
type L2Controller struct {
	add func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error
}

// NewL2Controller returns a controller that installs entries directly on a
// native switch.
func NewL2Controller(sw *sim.Switch) *L2Controller {
	return &L2Controller{add: func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error {
		_, err := sw.TableAdd(table, action, params, args, prio)
		return err
	}}
}

// NewL2ControllerFunc returns a controller that routes entries through an
// arbitrary installer (used to drive the same population through the DPMU).
func NewL2ControllerFunc(add func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error) *L2Controller {
	return &L2Controller{add: add}
}

// AddHost installs the smac and dmac entries for one station.
func (c *L2Controller) AddHost(mac pkt.MAC, port int) error {
	macVal := bitfield.FromBytes(48, mac[:])
	if err := c.add("smac", "_nop", []sim.MatchParam{sim.Exact(macVal)}, nil, 0); err != nil {
		return fmt.Errorf("l2 smac: %w", err)
	}
	if err := c.add("dmac", "forward", []sim.MatchParam{sim.Exact(macVal)}, sim.Args(9, uint64(port)), 0); err != nil {
		return fmt.Errorf("l2 dmac: %w", err)
	}
	return nil
}

// SetUnknownUnicast sets the default dmac behavior: port < 0 drops, else
// forwards unknown destinations to the given port.
func (c *L2Controller) SetUnknownUnicast(sw *sim.Switch, port int) error {
	if port < 0 {
		return sw.TableSetDefault("dmac", "_drop", nil)
	}
	return sw.TableSetDefault("dmac", "forward", sim.Args(9, uint64(port)))
}
