package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyper4/internal/sim"
)

// Processor is the packet-processing core the runtime drives — satisfied by
// *sim.Switch (whose Process consults the fused fast path before the
// interpreter) and by netsim's overhead-modelling wrapper.
type Processor interface {
	Process(data []byte, port int) ([]sim.Output, *sim.Trace, error)
}

// BatchProcessor is an optional Processor extension: workers that drain a
// burst of frames from their rings hand the whole burst over in one call,
// amortizing per-call overhead. *sim.Switch implements it via ProcessSeq.
type BatchProcessor interface {
	ProcessSeq(pkts []sim.Input, results []sim.Result) error
}

// Config tunes a Runtime.
type Config struct {
	// Workers is the number of worker loops (and the ring fan-out per
	// port). Defaults to 1.
	Workers int
	// RingSize is the per-(port,worker) ring capacity, rounded up to a
	// power of two. Defaults to 512.
	RingSize int
	// Lossless makes full rings backpressure the producer (bounded retry
	// sleep) instead of dropping — the in-process netsim contract, where
	// links are reliable. Wire-facing runtimes leave it false: a full ring
	// drops the frame and counts it, and the switch is never blocked.
	Lossless bool
	// ShardKey maps an ingress port to a sharding key; frames go to worker
	// key%Workers. The default is the port number itself. Persona switches
	// pass the DPMU's port→PID resolution so every frame of one virtual
	// device lands on one worker and its breaker/health/metrics state stays
	// worker-local.
	ShardKey func(port int) int
	// Health tunes the per-port circuit breakers (health.go). Zero fields
	// take defaults.
	Health HealthConfig
	// TransportFactory builds transports from textual specs for AttachSpec
	// and for quarantine auto-reattach (so reattached transports come back
	// through the same wrapping). Defaults to NewTransport; hp4switch points
	// it at a chaos.TransportInjector under -chaos-io, tests at scripted
	// fakes. The port number is passed for per-port fault filters.
	TransportFactory func(port int, spec string) (Transport, error)
}

// burst is how many frames a worker or TX loop moves per ring visit before
// giving the next ring a turn.
const burst = 64

// lossless producers retry a full ring at this interval.
const retrySleep = 20 * time.Microsecond

// port is one attached transport and its ring fan-out.
type port struct {
	num  int
	spec string
	tr   Transport

	rx []*ring // rx[w]: produced by this port's RX loop, consumed by worker w
	tx []*ring // tx[w]: produced by worker w, consumed by this port's TX loop

	txNotify chan struct{}
	txStop   chan struct{}
	// txStopOnce guards close(txStop): Detach and a SIGINT-driven Close can
	// tear the same port down concurrently (Detach moves it to draining and
	// releases the lock before closing txStop; Close snapshots active and
	// draining ports alike).
	txStopOnce sync.Once
	rxStop     atomic.Bool
	rxDone     chan struct{}
	txDone     chan struct{}

	rxFrames atomic.Uint64
	txFrames atomic.Uint64
	rxDrops  atomic.Uint64
	txDrops  atomic.Uint64
	txErrors atomic.Uint64
}

// stopTx signals the port's TX loop to flush its backlog and exit. Safe to
// call from Detach and Close concurrently.
func (p *port) stopTx() {
	p.txStopOnce.Do(func() { close(p.txStop) })
	select {
	case p.txNotify <- struct{}{}:
	default:
	}
}

// portMap is the copy-on-write port table workers and routing read with one
// atomic load. active maps port number → port; draining holds detached
// ports whose rings are still being emptied.
type portMap struct {
	active   map[int]*port
	draining []*port
	// list is every active port in stable order, for worker sweeps.
	list []*port
}

// Runtime owns packet I/O for one switch: RX loops feeding per-worker
// rings, worker loops draining them through the Processor, TX loops writing
// results back out. Ports attach and detach at any time, including under
// live traffic.
type Runtime struct {
	cfg   Config
	proc  Processor
	batch BatchProcessor // non-nil when proc implements it

	ports atomic.Pointer[portMap]

	mu      sync.Mutex // attach/detach/start/close state machine
	started bool
	closed  bool

	stop     chan struct{}
	wake     []chan struct{}
	workerWg sync.WaitGroup

	processed     atomic.Uint64
	procErrs      atomic.Uint64
	unrouted      atomic.Uint64
	drainTimeouts atomic.Uint64

	health ioHealth
}

// New builds a runtime over a processor. Start launches the workers; ports
// may attach before or after.
func New(proc Processor, cfg Config) *Runtime {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.RingSize < 2 {
		cfg.RingSize = 512
	}
	if cfg.ShardKey == nil {
		cfg.ShardKey = func(port int) int { return port }
	}
	if cfg.TransportFactory == nil {
		cfg.TransportFactory = func(_ int, spec string) (Transport, error) { return NewTransport(spec) }
	}
	cfg.Health = cfg.Health.sanitize()
	rt := &Runtime{cfg: cfg, proc: proc, stop: make(chan struct{})}
	rt.health.cfg = cfg.Health
	rt.health.now = time.Now
	rt.health.recs = map[int]*portHealthRec{}
	rt.batch, _ = proc.(BatchProcessor)
	rt.wake = make([]chan struct{}, cfg.Workers)
	for i := range rt.wake {
		rt.wake[i] = make(chan struct{}, 1)
	}
	rt.ports.Store(&portMap{active: map[int]*port{}})
	return rt
}

// Workers returns the configured worker count.
func (rt *Runtime) Workers() int { return rt.cfg.Workers }

// Start launches the worker loops. Idempotent.
func (rt *Runtime) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started || rt.closed {
		return
	}
	rt.started = true
	rt.workerWg.Add(rt.cfg.Workers)
	for w := 0; w < rt.cfg.Workers; w++ {
		go rt.worker(w)
	}
	if rt.cfg.Health.SyncEvery > 0 {
		go rt.healthSyncer(rt.cfg.Health.SyncEvery)
	}
}

// newTransport builds a transport from a spec through the configured
// factory.
func (rt *Runtime) newTransport(portNum int, spec string) (Transport, error) {
	return rt.cfg.TransportFactory(portNum, spec)
}

// attach origins: an operator attach resets the port's breaker (manual
// override); a health-driven reattach leaves the record to tryReattach,
// which moves it to probing.
const (
	attachWire = iota // operator, spec-built (reattachable)
	attachChan        // operator, programmatic transport (never auto-dropped)
	attachReattach
)

// AttachSpec parses a transport spec and attaches it to a port — the
// control plane's "port attach" op. Attaching over a quarantine-parked port
// is a manual override: it resets the breaker.
func (rt *Runtime) AttachSpec(portNum int, spec string) error {
	tr, err := rt.newTransport(portNum, spec)
	if err != nil {
		return err
	}
	if err := rt.attach(portNum, spec, tr, attachWire); err != nil {
		tr.Close()
		return err
	}
	return nil
}

// Attach binds an already-built transport (e.g. a ChanTransport endpoint)
// to a port and starts its RX/TX loops.
func (rt *Runtime) Attach(portNum int, tr Transport) error {
	return rt.attach(portNum, "chan", tr, attachChan)
}

func (rt *Runtime) attach(portNum int, spec string, tr Transport, origin int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	pm := rt.ports.Load()
	if pm.active[portNum] != nil {
		return fmt.Errorf("port %d: %w", portNum, ErrPortBusy)
	}
	p := &port{
		num:      portNum,
		spec:     spec,
		tr:       tr,
		rx:       make([]*ring, rt.cfg.Workers),
		tx:       make([]*ring, rt.cfg.Workers),
		txNotify: make(chan struct{}, 1),
		txStop:   make(chan struct{}),
		rxDone:   make(chan struct{}),
		txDone:   make(chan struct{}),
	}
	for w := range p.rx {
		p.rx[w] = newRing(rt.cfg.RingSize)
		p.tx[w] = newRing(rt.cfg.RingSize)
	}
	rt.ports.Store(pm.withAttached(p))
	if origin != attachReattach {
		rt.health.onAttach(portNum, spec, origin == attachWire)
	}
	go rt.rxLoop(p)
	go rt.txLoop(p)
	return nil
}

// Detach stops a port's ingestion, lets queued work drain (its ingress
// backlog is still processed, its egress backlog still transmitted), closes
// the transport, and removes the port. Safe under live traffic; frames
// routed to the port during the drain window count as unrouted drops.
// Detaching a quarantine-parked port (already off the active list) cancels
// its pending auto-reattach.
func (rt *Runtime) Detach(portNum int) error {
	if err := rt.detachPort(portNum); err != nil {
		if errors.Is(err, ErrNoPort) && rt.health.forgetParked(portNum) {
			return nil
		}
		return err
	}
	rt.health.forget(portNum)
	return nil
}

// detachPort is the drain-ordered teardown machinery shared by operator
// Detach and quarantine enforcement; it does not touch breaker records.
func (rt *Runtime) detachPort(portNum int) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrClosed
	}
	pm := rt.ports.Load()
	p := pm.active[portNum]
	if p == nil {
		rt.mu.Unlock()
		return fmt.Errorf("port %d: %w", portNum, ErrNoPort)
	}
	// Egress routing stops finding the port immediately; its rx rings keep
	// draining via the draining list.
	rt.ports.Store(pm.withDetached(p))
	started := rt.started
	rt.mu.Unlock()

	rt.stopRecv(p)
	<-p.rxDone
	rt.drainPortRx(p, started)
	p.stopTx()
	<-p.txDone
	p.tr.Close()

	rt.mu.Lock()
	rt.ports.Store(rt.ports.Load().withoutDraining(p))
	rt.mu.Unlock()
	return nil
}

// drainPortRx waits until a detached port's ingress rings are empty. With
// workers running they do the draining; before Start the detacher flushes
// the rings itself (no competing consumer exists yet).
//
// If workers make no progress within the deadline (wedged in the processor),
// the backlog is abandoned: whatever is left is counted as rx drops so the
// loss stays attributed, and DrainTimeouts records that it happened. The
// detacher must not pop the rings itself — workers are their sole consumer —
// so it counts depths instead; a worker racing the count can only forward a
// frame that was also counted dropped (overcount), never lose one silently.
func (rt *Runtime) drainPortRx(p *port, started bool) {
	if !started {
		var f Frame
		for w := range p.rx {
			for p.rx[w].pop(&f) {
				p.rxDrops.Add(1)
			}
		}
		return
	}
	rt.wakeAll()
	deadline := time.Now().Add(5 * time.Second)
	for {
		empty := true
		for w := range p.rx {
			if !p.rx[w].empty() {
				empty = false
				break
			}
		}
		if empty {
			return
		}
		if time.Now().After(deadline) {
			var left uint64
			for w := range p.rx {
				left += uint64(p.rx[w].depth())
			}
			p.rxDrops.Add(left)
			rt.drainTimeouts.Add(1)
			return
		}
		rt.wakeAll()
		time.Sleep(200 * time.Microsecond)
	}
}

// stopRecv shuts a port's receive side down, preferring the two-phase
// CloseRecv so egress can still flush through the transport afterwards.
func (rt *Runtime) stopRecv(p *port) {
	p.rxStop.Store(true)
	if rc, ok := p.tr.(RecvCloser); ok {
		rc.CloseRecv()
		return
	}
	p.tr.Close()
}

// Close drains and stops the whole runtime: ingestion stops first, workers
// finish the ring backlog, TX loops flush queued egress, then transports
// close. Idempotent.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	started := rt.started
	pm := rt.ports.Load()
	rt.mu.Unlock()

	all := append(append([]*port{}, pm.list...), pm.draining...)
	for _, p := range all {
		rt.stopRecv(p)
	}
	for _, p := range all {
		<-p.rxDone
	}
	close(rt.stop)
	if started {
		rt.wakeAll()
		rt.workerWg.Wait()
	}
	for _, p := range all {
		p.stopTx()
	}
	for _, p := range all {
		<-p.txDone
		p.tr.Close()
	}
}

func (rt *Runtime) wakeAll() {
	for _, ch := range rt.wake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// shardOf picks the worker for a frame arriving on a port.
func (rt *Runtime) shardOf(portNum int) int {
	key := rt.cfg.ShardKey(portNum)
	if key < 0 {
		key = -key
	}
	return key % rt.cfg.Workers
}

// rxLoop is a port's dedicated ingestion goroutine: Recv, stamp the ingress
// port, shard onto the owning worker's ring.
func (rt *Runtime) rxLoop(p *port) {
	defer close(p.rxDone)
	var f Frame
	var errDelay time.Duration
	for {
		if err := p.tr.Recv(&f); err != nil {
			if p.rxStop.Load() || err == ErrClosed {
				return
			}
			p.rxDrops.Add(1)
			if errors.Is(err, ErrFrameTooBig) {
				// Oversized frame: counted and discarded, but a flood of
				// them must not throttle the port.
				continue
			}
			rt.health.noteError(p.num, errKindRecv, err)
			// Transient receive error: drop and keep listening, with a
			// per-port backoff that doubles while errors persist so a
			// permanently failing socket cannot burn a core, and resets on
			// the first successful receive.
			if errDelay == 0 {
				errDelay = rt.cfg.Health.RecvErrBase
			} else if errDelay < rt.cfg.Health.RecvErrMax {
				errDelay *= 2
				if errDelay > rt.cfg.Health.RecvErrMax {
					errDelay = rt.cfg.Health.RecvErrMax
				}
			}
			time.Sleep(errDelay)
			continue
		}
		errDelay = 0
		f.Port = p.num
		p.rxFrames.Add(1)
		w := rt.shardOf(p.num)
		if !rt.pushRing(p.rx[w], f, &p.rxDrops, &p.rxStop) {
			continue
		}
		select {
		case rt.wake[w] <- struct{}{}:
		default:
		}
	}
}

// pushRing pushes with the configured backpressure policy: drop-and-count
// (default) or bounded-sleep retry (lossless). stop aborts a lossless wait.
func (rt *Runtime) pushRing(r *ring, f Frame, drops *atomic.Uint64, stop *atomic.Bool) bool {
	if r.push(f) {
		return true
	}
	if !rt.cfg.Lossless {
		drops.Add(1)
		return false
	}
	for {
		time.Sleep(retrySleep)
		if r.push(f) {
			return true
		}
		if stop != nil && stop.Load() {
			drops.Add(1)
			return false
		}
		select {
		case <-rt.stop:
			drops.Add(1)
			return false
		default:
		}
	}
}

// worker is one forwarding loop: drain my ring at every port, process, route.
func (rt *Runtime) worker(w int) {
	defer rt.workerWg.Done()
	in := make([]sim.Input, 0, burst)
	results := make([]sim.Result, burst)
	frames := make([]Frame, burst)
	for {
		if rt.sweep(w, &in, results, frames) {
			continue
		}
		select {
		case <-rt.wake[w]:
		case <-rt.stop:
			// Graceful drain: ingestion has stopped, so the rings only
			// shrink; sweep until a full pass moves nothing.
			for rt.sweep(w, &in, results, frames) {
			}
			return
		}
	}
}

// sweep visits every port's ring for worker w once, processing up to burst
// frames per ring. It reports whether any frame moved.
func (rt *Runtime) sweep(w int, in *[]sim.Input, results []sim.Result, frames []Frame) bool {
	pm := rt.ports.Load()
	worked := false
	for _, p := range pm.list {
		n := 0
		for n < burst && p.rx[w].pop(&frames[n]) {
			n++
		}
		if n > 0 {
			worked = true
			rt.processBurst(w, pm, frames[:n], in, results)
		}
	}
	// Draining (detached) ports: their backlog is still forwarded — the
	// frames were accepted while the port was live.
	for _, p := range pm.draining {
		n := 0
		for n < burst && p.rx[w].pop(&frames[n]) {
			n++
		}
		if n > 0 {
			worked = true
			rt.processBurst(w, pm, frames[:n], in, results)
		}
	}
	return worked
}

// processBurst runs a burst through the processor and routes the outputs.
func (rt *Runtime) processBurst(w int, pm *portMap, frames []Frame, in *[]sim.Input, results []sim.Result) {
	*in = (*in)[:0]
	for _, f := range frames {
		*in = append(*in, sim.Input{Data: f.Data, Port: f.Port})
	}
	if rt.batch != nil {
		_ = rt.batch.ProcessSeq(*in, results)
	} else {
		for i, p := range *in {
			results[i].Outputs, results[i].Trace, results[i].Err = rt.proc.Process(p.Data, p.Port)
		}
	}
	for i := range frames {
		rt.processed.Add(1)
		if results[i].Err != nil {
			rt.procErrs.Add(1)
			continue
		}
		for _, o := range results[i].Outputs {
			rt.route(w, pm, o)
		}
		results[i] = sim.Result{}
	}
}

// route hands one output to its egress port's TX ring.
func (rt *Runtime) route(w int, pm *portMap, o sim.Output) {
	p := pm.active[o.Port]
	if p == nil {
		rt.unrouted.Add(1)
		return
	}
	if !rt.pushRing(p.tx[w], Frame{Data: o.Data, Port: o.Port}, &p.txDrops, nil) {
		return
	}
	select {
	case p.txNotify <- struct{}{}:
	default:
	}
}

// txLoop is a port's dedicated egress goroutine: drain the per-worker TX
// rings and write frames out the transport.
func (rt *Runtime) txLoop(p *port) {
	defer close(p.txDone)
	var f Frame
	sweep := func() bool {
		worked := false
		for _, r := range p.tx {
			for i := 0; i < burst && r.pop(&f); i++ {
				worked = true
				if err := p.tr.Send(f); err != nil {
					p.txErrors.Add(1)
					// ErrNoPeer (reply mode before any ingress) is an
					// addressing gap, not a wire fault; closed is teardown.
					if err != ErrClosed && !errors.Is(err, ErrNoPeer) {
						rt.health.noteError(p.num, errKindSend, err)
					}
					continue
				}
				p.txFrames.Add(1)
			}
		}
		return worked
	}
	for {
		if sweep() {
			continue
		}
		select {
		case <-p.txNotify:
		case <-p.txStop:
			for sweep() {
			}
			return
		}
	}
}

// --- port map copy-on-write ---

func (pm *portMap) withAttached(p *port) *portMap {
	n := &portMap{active: make(map[int]*port, len(pm.active)+1), draining: pm.draining}
	for k, v := range pm.active {
		n.active[k] = v
	}
	n.active[p.num] = p
	n.rebuildList()
	return n
}

func (pm *portMap) withDetached(p *port) *portMap {
	n := &portMap{active: make(map[int]*port, len(pm.active))}
	for k, v := range pm.active {
		if v != p {
			n.active[k] = v
		}
	}
	n.draining = append(append([]*port{}, pm.draining...), p)
	n.rebuildList()
	return n
}

func (pm *portMap) withoutDraining(p *port) *portMap {
	n := &portMap{active: pm.active, list: pm.list}
	for _, d := range pm.draining {
		if d != p {
			n.draining = append(n.draining, d)
		}
	}
	return n
}

func (pm *portMap) rebuildList() {
	pm.list = pm.list[:0]
	nums := make([]int, 0, len(pm.active))
	for num := range pm.active {
		nums = append(nums, num)
	}
	sort.Ints(nums)
	pm.list = make([]*port, len(nums))
	for i, num := range nums {
		pm.list[i] = pm.active[num]
	}
}
