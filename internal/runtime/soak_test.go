package runtime

import (
	"fmt"
	"net"
	goruntime "runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestUDPSoak pushes a sustained stream of real datagrams through the wire
// transport at full worker fan-out and holds the runtime to two invariants:
//
//   - zero unattributed faults: every frame the sender's socket accepted is
//     accounted for as delivered, ring-dropped, tx-errored, unrouted, or
//     rejected by the processor — the counters must reconcile exactly;
//   - heap stability: two garbage-collected ReadMemStats readings spaced
//     across the run must not drift, i.e. per-frame buffers are not pinned.
//
// The sender paces against the end-to-end delivered count (window far below
// the 4MB socket buffers), so the kernel never drops and the accounting can
// demand equality rather than a tolerance.
func TestUDPSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	total := 1_000_000
	if raceEnabled {
		total = 100_000 // the race detector slows packet I/O 5-20x
	}
	const window = 512

	workers := goruntime.GOMAXPROCS(0)
	rt := New(crossProc{}, Config{Workers: workers, RingSize: 1024})
	rt.Start()
	defer rt.Close()

	// Egress sink: a plain UDP socket port 2's transport peers with.
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	_ = sink.SetReadBuffer(4 << 20)

	if err := rt.AttachSpec(1, "udp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachSpec(2, fmt.Sprintf("udp:127.0.0.1:0/%s", sink.LocalAddr())); err != nil {
		t.Fatal(err)
	}
	ingress := rt.ports.Load().active[1].tr.(*UDPTransport).LocalAddr()

	var received atomic.Int64
	sinkDone := make(chan struct{})
	go func() {
		defer close(sinkDone)
		buf := make([]byte, maxFrame)
		for {
			if _, _, err := sink.ReadFromUDP(buf); err != nil {
				return
			}
			received.Add(1)
		}
	}()

	conn, err := net.DialUDP("udp", nil, ingress.(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := make([]byte, 60)
	copy(frame, []byte{0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 1, 8, 0})

	var m1, m2 goruntime.MemStats
	sampleAt := total / 10 // first reading after warm-up
	sent := 0
	for sent < total {
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("send %d: %v", sent, err)
		}
		sent++
		for sent-int(received.Load()) > window {
			time.Sleep(50 * time.Microsecond)
		}
		if sent == sampleAt {
			goruntime.GC()
			goruntime.ReadMemStats(&m1)
		}
	}

	// Settle: every accepted frame must show up in exactly one counter.
	deadline := time.Now().Add(10 * time.Second)
	account := func() (int64, string) {
		m := rt.Metrics()
		var drops uint64
		for _, p := range m.Ports {
			drops += p.RxDrops + p.TxDrops + p.TxErrors
		}
		n := received.Load() + int64(drops+m.Unrouted+m.ProcErrs)
		return n, fmt.Sprintf("received=%d drops=%d unrouted=%d procErrs=%d",
			received.Load(), drops, m.Unrouted, m.ProcErrs)
	}
	for {
		if n, _ := account(); n >= int64(total) {
			break
		}
		if time.Now().After(deadline) {
			n, detail := account()
			t.Fatalf("unattributed faults: sent %d, accounted %d (%s)", total, n, detail)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n, detail := account(); n != int64(total) {
		t.Fatalf("over-accounted: sent %d, accounted %d (%s)", total, n, detail)
	}

	goruntime.GC()
	goruntime.ReadMemStats(&m2)
	const heapSlack = 16 << 20
	if m2.HeapAlloc > m1.HeapAlloc+heapSlack {
		t.Fatalf("heap grew %d -> %d bytes across %d packets: per-frame buffers pinned?",
			m1.HeapAlloc, m2.HeapAlloc, total-sampleAt)
	}
	t.Logf("soak: %d packets, workers=%d, received=%d, heap %d -> %d",
		total, workers, received.Load(), m1.HeapAlloc, m2.HeapAlloc)
}

// TestAttachDetachRacingRX churns a port through attach/detach while live
// traffic streams through another port on the same runtime — the COW port
// map must keep workers and routing safe with no lost or phantom frames on
// the stable port. Run under -race via `make race`.
func TestAttachDetachRacingRX(t *testing.T) {
	iters := 400
	if raceEnabled {
		iters = 100
	}

	rt := New(&echoProc{}, Config{Workers: 2, RingSize: 64, Lossless: true})
	rt.Start()
	defer rt.Close()

	near, far := NewChanPair(64)
	if err := rt.Attach(1, near); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var sent, echoed atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if far.Send(Frame{Data: []byte{1, 2, 3}}) != nil {
				return
			}
			sent.Add(1)
		}
	}()
	go func() {
		var f Frame
		for far.Recv(&f) == nil {
			echoed.Add(1)
		}
	}()

	for i := 0; i < iters; i++ {
		a, b := NewChanPair(8)
		if err := rt.Attach(7, a); err != nil {
			t.Fatalf("iter %d attach: %v", i, err)
		}
		// Push a frame into the churning port so detach exercises its
		// drain path, not just the empty-ring fast exit.
		_ = b.Send(Frame{Data: []byte{9}})
		if err := rt.Detach(7); err != nil {
			t.Fatalf("iter %d detach: %v", i, err)
		}
		b.Close()
	}

	close(stop)
	// Echoes for everything sent must still arrive on the untouched port.
	deadline := time.Now().Add(10 * time.Second)
	for echoed.Load() < sent.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("echoed %d of %d frames sent during churn", echoed.Load(), sent.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if n := len(rt.Ports()); n != 1 {
		t.Fatalf("ports after churn = %d, want 1", n)
	}
}
