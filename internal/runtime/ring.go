package runtime

import "sync/atomic"

// ring is a bounded single-producer/single-consumer frame queue. The
// producer role belongs to exactly one goroutine (a port's RX loop for
// ingress rings, one worker for egress rings) and the consumer role to
// exactly one other (a worker, or a port's TX loop); under that discipline
// the head/tail atomics are the only synchronization needed, so neither side
// ever takes a lock or blocks the other.
//
// Capacity is a power of two so index masking replaces modulo. A full ring
// rejects the push — the caller decides whether that is a drop (wire
// transports, counted) or a retry (lossless in-process links).
type ring struct {
	buf  []Frame
	mask uint64
	// head is the consumer cursor, tail the producer cursor; both increase
	// monotonically and are compared by difference, so wraparound is free.
	head atomic.Uint64
	tail atomic.Uint64
}

// newRing builds a ring with capacity rounded up to a power of two.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{buf: make([]Frame, n), mask: uint64(n - 1)}
}

// push appends one frame; false means the ring is full. Producer-side only.
func (r *ring) push(f Frame) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = f
	// The release store publishes the slot write above to the consumer's
	// acquire load of tail.
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest frame into f; false means the ring is empty.
// Consumer-side only.
func (r *ring) pop(f *Frame) bool {
	h := r.head.Load()
	if h == r.tail.Load() {
		return false
	}
	*f = r.buf[h&r.mask]
	// Clear the slot so the ring never pins a drained frame's buffer, then
	// publish the free slot to the producer.
	r.buf[h&r.mask] = Frame{}
	r.head.Store(h + 1)
	return true
}

// depth is the current occupancy (racy snapshot, metrics only).
func (r *ring) depth() int {
	d := r.tail.Load() - r.head.Load()
	if d > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(d)
}

// empty reports whether the ring held nothing at the moment of the call.
func (r *ring) empty() bool { return r.head.Load() == r.tail.Load() }
