package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"hyper4/internal/sim"
)

func TestRingPushPop(t *testing.T) {
	r := newRing(4)
	if !r.empty() {
		t.Fatal("new ring not empty")
	}
	for i := 0; i < 4; i++ {
		if !r.push(Frame{Port: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.push(Frame{Port: 99}) {
		t.Fatal("push into full ring succeeded")
	}
	if r.depth() != 4 {
		t.Fatalf("depth = %d, want 4", r.depth())
	}
	var f Frame
	for i := 0; i < 4; i++ {
		if !r.pop(&f) {
			t.Fatalf("pop %d failed", i)
		}
		if f.Port != i {
			t.Fatalf("pop %d: port = %d (FIFO violated)", i, f.Port)
		}
	}
	if r.pop(&f) {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingRoundsUpToPowerOfTwo(t *testing.T) {
	r := newRing(5)
	if len(r.buf) != 8 {
		t.Fatalf("capacity = %d, want 8", len(r.buf))
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing(4)
	var f Frame
	for i := 0; i < 100; i++ {
		if !r.push(Frame{Port: i}) {
			t.Fatalf("push %d failed", i)
		}
		if !r.pop(&f) || f.Port != i {
			t.Fatalf("pop %d: got port %d", i, f.Port)
		}
	}
}

// echoProc sends every frame back out its ingress port.
type echoProc struct{ n atomic.Int64 }

func (e *echoProc) Process(data []byte, port int) ([]sim.Output, *sim.Trace, error) {
	e.n.Add(1)
	return []sim.Output{{Port: port, Data: data}}, nil, nil
}

// crossProc forwards port 1 → 2 and 2 → 1.
type crossProc struct{}

func (crossProc) Process(data []byte, port int) ([]sim.Output, *sim.Trace, error) {
	out := 1
	if port == 1 {
		out = 2
	}
	return []sim.Output{{Port: out, Data: data}}, nil, nil
}

func TestRuntimeEchoOverChanTransport(t *testing.T) {
	proc := &echoProc{}
	rt := New(proc, Config{Workers: 2, Lossless: true})
	rt.Start()
	near, far := NewChanPair(8)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			near.Send(Frame{Data: []byte{byte(i)}})
		}
	}()
	var f Frame
	for i := 0; i < n; i++ {
		if err := near.Recv(&f); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if f.Data[0] != byte(i) {
			t.Fatalf("recv %d: got payload %d (per-port ordering violated)", i, f.Data[0])
		}
	}
	m := rt.Metrics()
	if m.Processed != n {
		t.Fatalf("processed = %d, want %d", m.Processed, n)
	}
	if d := m.Drops(); d != 0 {
		t.Fatalf("lossless runtime dropped %d frames", d)
	}
}

func TestRuntimeCrossPortForwarding(t *testing.T) {
	rt := New(crossProc{}, Config{Workers: 2, Lossless: true})
	rt.Start()
	n1, f1 := NewChanPair(8)
	n2, f2 := NewChanPair(8)
	if err := rt.Attach(1, f1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Attach(2, f2); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	n1.Send(Frame{Data: []byte("hello")})
	var f Frame
	if err := n2.Recv(&f); err != nil {
		t.Fatal(err)
	}
	if string(f.Data) != "hello" {
		t.Fatalf("got %q through port 2", f.Data)
	}
}

func TestRuntimeUnroutedCounted(t *testing.T) {
	rt := New(crossProc{}, Config{Workers: 1, Lossless: true})
	rt.Start()
	near, far := NewChanPair(8)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	// Port 2 has no transport: forwarded frames are unrouted drops.
	near.Send(Frame{Data: []byte{1}})
	waitFor(t, func() bool { return rt.Metrics().Unrouted == 1 }, "unrouted counter")
	rt.Close()
	if d := rt.Metrics().Drops(); d != 1 {
		t.Fatalf("Drops() = %d, want 1", d)
	}
}

func TestAttachErrors(t *testing.T) {
	rt := New(&echoProc{}, Config{})
	_, far := NewChanPair(1)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	_, far2 := NewChanPair(1)
	if err := rt.Attach(1, far2); err == nil {
		t.Fatal("double attach succeeded")
	}
	if err := rt.Detach(7); err == nil {
		t.Fatal("detach of unattached port succeeded")
	}
	if err := rt.AttachSpec(2, "carrier-pigeon:roof"); err == nil {
		t.Fatal("bad spec accepted")
	}
	rt.Close()
	if err := rt.Attach(3, far2); err != ErrClosed {
		t.Fatalf("attach after close: %v, want ErrClosed", err)
	}
}

func TestDetachDrainsBacklog(t *testing.T) {
	proc := &echoProc{}
	rt := New(proc, Config{Workers: 1, Lossless: true})
	rt.Start()
	near, far := NewChanPair(64)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		near.Send(Frame{Data: []byte{byte(i)}})
	}
	done := make(chan error, 1)
	go func() { done <- rt.Detach(1) }()
	// Echoed frames keep arriving during the drain.
	var f Frame
	got := 0
	for got < n {
		if err := near.Recv(&f); err != nil {
			break
		}
		got++
	}
	if err := <-done; err != nil {
		t.Fatalf("detach: %v", err)
	}
	if int(proc.n.Load()) != n {
		t.Fatalf("processed %d of %d frames accepted before detach", proc.n.Load(), n)
	}
	if len(rt.Ports()) != 0 {
		t.Fatal("port still listed after detach")
	}
	rt.Close()
}

func TestLossyRingDropsCounted(t *testing.T) {
	// One worker that never runs (runtime not started): the rx ring fills
	// and overflow is counted, never blocking the producer.
	rt := New(&echoProc{}, Config{Workers: 1, RingSize: 4})
	near, far := NewChanPair(1)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := near.Send(Frame{Data: []byte{byte(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, func() bool {
		m := rt.Metrics()
		return len(m.Ports) == 1 && m.Ports[0].RxFrames == 20 && m.Ports[0].RxDrops >= 15
	}, "rx drop counter")
	rt.Close()
}

func TestUDPTransportRoundTrip(t *testing.T) {
	rt := New(&echoProc{}, Config{Workers: 1})
	rt.Start()
	defer rt.Close()
	if err := rt.AttachSpec(1, "udp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ports := rt.Ports()
	if len(ports) != 1 || ports[0].Spec != "udp:127.0.0.1:0" {
		t.Fatalf("ports = %+v", ports)
	}
	pm := rt.ports.Load()
	addr := pm.active[1].tr.(*UDPTransport).LocalAddr().String()

	client, err := NewTransport("udp:127.0.0.1:0/" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(Frame{Data: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := client.Recv(&f); err != nil {
		t.Fatal(err)
	}
	if string(f.Data) != "ping" {
		t.Fatalf("echoed %q", f.Data)
	}
}

func TestCloseIdempotentAndMetricsSurvive(t *testing.T) {
	rt := New(&echoProc{}, Config{Workers: 2, Lossless: true})
	rt.Start()
	near, far := NewChanPair(4)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	near.Send(Frame{Data: []byte{1}})
	var f Frame
	if err := near.Recv(&f); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close()
	m := rt.Metrics()
	if m.Processed != 1 || len(m.Ports) != 1 {
		t.Fatalf("post-close metrics: %+v", m)
	}
	if err := near.Send(Frame{Data: []byte{2}}); err != ErrClosed {
		t.Fatalf("send on closed link: %v, want ErrClosed", err)
	}
}

// TestCloseRacesDetach reproduces the SIGINT-vs-port_detach race: Detach
// moves the port to draining and releases the runtime lock before closing
// txStop, so a concurrent Close sees the port in its snapshot too. Both
// tearing it down must not double-close (panic) — stopTx's sync.Once.
func TestCloseRacesDetach(t *testing.T) {
	for i := 0; i < 50; i++ {
		rt := New(&echoProc{}, Config{Workers: 2, Lossless: true})
		rt.Start()
		near, far := NewChanPair(8)
		if err := rt.Attach(1, far); err != nil {
			t.Fatal(err)
		}
		near.Send(Frame{Data: []byte{1}})
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = rt.Detach(1) // ErrClosed is fine when Close wins the lock
		}()
		rt.Close()
		<-done
	}
}

// TestUDPOversizedDatagramDropped sends a datagram over maxFrame and
// verifies it is counted as an rx drop, not forwarded truncated.
func TestUDPOversizedDatagramDropped(t *testing.T) {
	rt := New(&echoProc{}, Config{Workers: 1})
	rt.Start()
	defer rt.Close()
	if err := rt.AttachSpec(1, "udp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := rt.ports.Load().active[1].tr.(*UDPTransport).LocalAddr().String()
	client, err := NewTransport("udp:127.0.0.1:0/" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Send(Frame{Data: make([]byte, maxFrame+100)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		m := rt.Metrics()
		return len(m.Ports) == 1 && m.Ports[0].RxDrops == 1
	}, "oversized-frame rx drop")

	// The port still works, and the giant never reached the processor.
	if err := client.Send(Frame{Data: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := client.Recv(&f); err != nil {
		t.Fatal(err)
	}
	if string(f.Data) != "ping" {
		t.Fatalf("echoed %q", f.Data)
	}
	if m := rt.Metrics(); m.Processed != 1 || m.Ports[0].RxFrames != 1 {
		t.Fatalf("processed=%d rxFrames=%d, want 1/1", m.Processed, m.Ports[0].RxFrames)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// batchCounter verifies the BatchProcessor path is taken when offered.
type batchCounter struct {
	echoProc
	bursts atomic.Int64
}

func (b *batchCounter) ProcessSeq(pkts []sim.Input, results []sim.Result) error {
	b.bursts.Add(1)
	for i := range pkts {
		results[i].Outputs, results[i].Trace, results[i].Err = b.Process(pkts[i].Data, pkts[i].Port)
	}
	return nil
}

func TestBatchProcessorPath(t *testing.T) {
	proc := &batchCounter{}
	rt := New(proc, Config{Workers: 1, Lossless: true})
	rt.Start()
	near, far := NewChanPair(32)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		near.Send(Frame{Data: []byte{byte(i)}})
	}
	var f Frame
	for i := 0; i < 10; i++ {
		if err := near.Recv(&f); err != nil {
			t.Fatal(err)
		}
	}
	rt.Close()
	if proc.bursts.Load() == 0 {
		t.Fatal("ProcessSeq never used")
	}
	if proc.n.Load() != 10 {
		t.Fatalf("processed %d", proc.n.Load())
	}
}
