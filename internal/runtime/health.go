package runtime

// Per-port fault containment: the runtime accounts every transport error
// (receive errors, send errors, ring stalls detected by a watchdog sampling
// ring cursors) in a sliding window per port and runs a circuit breaker
// modeled on the per-vdev one in internal/core/dpmu/health.go:
// healthy → degraded → quarantined → probing → healthy.
//
// Wire ports (attached from a textual spec, i.e. rebuildable) are contained
// for real: quarantine detaches the port — ingestion stops, the backlog
// drains, the socket closes — but the port number and spec are remembered,
// and the runtime auto-reattaches with exponential backoff plus
// deterministic jitter. A reattached port runs in the probing state; a clean
// probe interval closes the breaker, an error during probing re-trips it and
// doubles the backoff. In-process transports (programmatic Attach, e.g.
// netsim's channel links) surface breaker state but are never auto-dropped:
// their quarantine is advisory and recovers by the same timed probe path.
//
// Locking mirrors dpmu's tracker: noteError runs on the RX/TX hot paths and
// takes only the tracker's leaf mutex. Enforcement (detach/reattach) needs
// rt.mu and blocks on the port's RX/TX goroutines — which may themselves be
// in noteError — so SyncPortHealth collects decisions under the leaf mutex,
// releases it, and acts afterwards. Lock order: rt.mu is never acquired with
// health.mu held.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// HealthState is a port breaker state. The states and their meaning match
// dpmu.HealthState; the types are distinct because the packages must not
// depend on each other.
type HealthState string

const (
	// PortHealthy: no I/O errors inside the current window.
	PortHealthy HealthState = "healthy"
	// PortDegraded: erroring, but below the trip threshold.
	PortDegraded HealthState = "degraded"
	// PortQuarantined: breaker tripped; a wire port is detached (or being
	// detached), an in-process port is flagged but left attached.
	PortQuarantined HealthState = "quarantined"
	// PortProbing: half-open; a wire port has been reattached and must stay
	// clean for the probe interval, an in-process port is past its hold-off.
	PortProbing HealthState = "probing"
)

// Error kinds recorded against a port's window.
const (
	errKindRecv  = "recv"
	errKindSend  = "send"
	errKindStall = "stall"
)

// HealthConfig tunes the per-port breaker and the RX error backoff.
type HealthConfig struct {
	// Window is the sliding error-rate window.
	Window time.Duration
	// TripErrors is the error count within Window that trips the breaker.
	TripErrors int
	// OpenFor is the base hold time after a trip: the first reattach attempt
	// (wire) or the transition to probing (in-process) happens OpenFor after
	// the trip, doubling per failed recovery cycle up to BackoffMax.
	OpenFor time.Duration
	// BackoffMax caps the exponential reattach backoff.
	BackoffMax time.Duration
	// ProbeFor is how long a probing port must stay error-free to close the
	// breaker.
	ProbeFor time.Duration
	// StallAfter is the number of consecutive watchdog samples a non-empty
	// ring's consumer cursor must hold still before a stall error is charged.
	StallAfter int
	// RecvErrBase/RecvErrMax bound the RX loop's escalating per-port backoff
	// on transient receive errors (doubling from Base, capped at Max, reset
	// by a successful receive) so a persistently failing socket cannot burn
	// a core.
	RecvErrBase time.Duration
	RecvErrMax  time.Duration
	// SyncEvery is the period of the background goroutine that drives
	// time-based transitions, the ring watchdog, and reattach attempts.
	// Negative disables it (tests drive SyncPortHealth explicitly with a
	// fake clock); zero means the default.
	SyncEvery time.Duration
	// Seed feeds the deterministic reattach jitter.
	Seed uint64
}

// DefaultHealthConfig returns the port breaker defaults.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		Window:      10 * time.Second,
		TripErrors:  8,
		OpenFor:     1 * time.Second,
		BackoffMax:  30 * time.Second,
		ProbeFor:    3 * time.Second,
		StallAfter:  3,
		RecvErrBase: time.Millisecond,
		RecvErrMax:  250 * time.Millisecond,
		SyncEvery:   250 * time.Millisecond,
	}
}

// sanitize fills zero fields with defaults so a partially specified config
// can't trip instantly or divide by zero.
func (c HealthConfig) sanitize() HealthConfig {
	def := DefaultHealthConfig()
	if c.Window <= 0 {
		c.Window = def.Window
	}
	if c.TripErrors <= 0 {
		c.TripErrors = def.TripErrors
	}
	if c.OpenFor <= 0 {
		c.OpenFor = def.OpenFor
	}
	if c.BackoffMax < c.OpenFor {
		c.BackoffMax = def.BackoffMax
		if c.BackoffMax < c.OpenFor {
			c.BackoffMax = c.OpenFor
		}
	}
	if c.ProbeFor <= 0 {
		c.ProbeFor = def.ProbeFor
	}
	if c.StallAfter <= 0 {
		c.StallAfter = def.StallAfter
	}
	if c.RecvErrBase <= 0 {
		c.RecvErrBase = def.RecvErrBase
	}
	if c.RecvErrMax < c.RecvErrBase {
		c.RecvErrMax = def.RecvErrMax
		if c.RecvErrMax < c.RecvErrBase {
			c.RecvErrMax = c.RecvErrBase
		}
	}
	if c.SyncEvery == 0 {
		c.SyncEvery = def.SyncEvery
	}
	return c
}

// PortHealth is one port's breaker snapshot — the control plane's
// "port health" view.
type PortHealth struct {
	Port int
	Spec string
	// Wire reports a spec-built transport: quarantine detaches and
	// auto-reattach applies. In-process ports report state only.
	Wire  bool
	State HealthState
	// Detached reports a wire port currently parked by quarantine (its
	// transport is closed; the port is absent from the active port list).
	Detached bool
	// WindowErrors is the live error count inside the sliding window.
	WindowErrors int
	RecvErrors   uint64
	SendErrors   uint64
	Stalls       uint64
	Trips        uint64
	Reattaches   uint64
	LastError    string
	// RetryIn is the time until the next reattach attempt (or probe
	// transition), zero when none is scheduled.
	RetryIn time.Duration
}

// portHealthRec is one port's mutable breaker record, guarded by
// ioHealth.mu.
type portHealthRec struct {
	port int
	spec string
	wire bool

	state  HealthState
	window []time.Time

	recvErrs uint64
	sendErrs uint64
	stalls   uint64
	trips    uint64
	reatt    uint64

	lastErr   string
	lastErrAt time.Time

	trippedAt   time.Time
	nextAttempt time.Time
	probeStart  time.Time
	// attempts counts failed recovery cycles since the port was last
	// healthy; it exponentiates the backoff.
	attempts int

	// detached: wire port parked by quarantine (transport closed, spec kept).
	detached bool
	// enforcing serializes detach/reattach across concurrent SyncPortHealth
	// callers: set under mu before acting, cleared when the action lands.
	enforcing bool

	// Watchdog state: last observed consumer cursors per worker ring and
	// the consecutive-stuck sample counts.
	rxHeads []uint64
	txHeads []uint64
	rxStuck []int
	txStuck []int
}

// ioHealth is the runtime's port breaker tracker. Leaf mutex: nothing under
// mu calls back into the runtime.
type ioHealth struct {
	mu     sync.Mutex
	cfg    HealthConfig
	now    func() time.Time
	recs   map[int]*portHealthRec
	notify func(PortHealth)
}

// SetHealthClock overrides the tracker's time source (tests).
func (rt *Runtime) SetHealthClock(now func() time.Time) {
	rt.health.mu.Lock()
	rt.health.now = now
	rt.health.mu.Unlock()
}

// SetHealthNotify registers a callback fired after every breaker state
// transition with the port's fresh snapshot. Called outside the tracker
// mutex; under concurrency, notifications for one port may be observed out
// of order — consumers should treat them as hints and read PortHealth() for
// truth.
func (rt *Runtime) SetHealthNotify(fn func(PortHealth)) {
	rt.health.mu.Lock()
	rt.health.notify = fn
	rt.health.mu.Unlock()
}

// onAttach (re)creates a port's record at operator attach time. An operator
// attach is a manual override: it resets a parked or tripped breaker to
// healthy while keeping lifetime totals.
func (h *ioHealth) onAttach(portNum int, spec string, wire bool) {
	h.mu.Lock()
	rec := h.recs[portNum]
	if rec == nil {
		rec = &portHealthRec{port: portNum, state: PortHealthy}
		h.recs[portNum] = rec
	}
	rec.spec = spec
	rec.wire = wire
	rec.state = PortHealthy
	rec.window = rec.window[:0]
	rec.detached = false
	rec.attempts = 0
	rec.nextAttempt = time.Time{}
	rec.rxHeads, rec.txHeads = nil, nil
	rec.rxStuck, rec.txStuck = nil, nil
	h.mu.Unlock()
}

// forget drops a port's record (operator detach).
func (h *ioHealth) forget(portNum int) {
	h.mu.Lock()
	delete(h.recs, portNum)
	h.mu.Unlock()
}

// forgetParked clears a quarantine-parked port, reporting whether one
// existed — the operator's way to cancel a pending auto-reattach.
func (h *ioHealth) forgetParked(portNum int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec := h.recs[portNum]
	if rec == nil || !rec.detached {
		return false
	}
	delete(h.recs, portNum)
	return true
}

// noteError charges one I/O error to a port's window and advances the
// breaker. Hot path (RX/TX loops): leaf mutex only; the detach a trip calls
// for is enforced later by SyncPortHealth.
func (h *ioHealth) noteError(portNum int, kind string, err error) {
	h.mu.Lock()
	rec := h.recs[portNum]
	if rec == nil {
		h.mu.Unlock()
		return
	}
	now := h.now()
	switch kind {
	case errKindRecv:
		rec.recvErrs++
	case errKindSend:
		rec.sendErrs++
	case errKindStall:
		rec.stalls++
	}
	rec.lastErr = fmt.Sprintf("%s: %v", kind, err)
	rec.lastErrAt = now
	rec.pruneWindow(now, h.cfg.Window)
	rec.window = append(rec.window, now)
	var note *PortHealth
	switch rec.state {
	case PortHealthy, PortDegraded, PortProbing:
		if len(rec.window) >= h.cfg.TripErrors || rec.state == PortProbing {
			// Probing is half-open: any error re-trips immediately and
			// escalates the backoff.
			if rec.state == PortProbing {
				rec.attempts++
			}
			rec.trip(now, h)
			note = rec.snapshotLocked(now)
		} else if rec.state == PortHealthy {
			rec.state = PortDegraded
			note = rec.snapshotLocked(now)
		}
	case PortQuarantined:
		// Counted; containment already in force or pending.
	}
	fn := h.notify
	h.mu.Unlock()
	if note != nil && fn != nil {
		fn(*note)
	}
}

// trip opens the breaker. Caller holds h.mu.
func (rec *portHealthRec) trip(now time.Time, h *ioHealth) {
	rec.state = PortQuarantined
	rec.trips++
	rec.trippedAt = now
	rec.probeStart = time.Time{}
	rec.nextAttempt = now.Add(h.backoff(rec.port, rec.attempts))
}

// pruneWindow drops window entries older than the sliding window.
func (rec *portHealthRec) pruneWindow(now time.Time, window time.Duration) {
	cut := now.Add(-window)
	i := 0
	for i < len(rec.window) && !rec.window[i].After(cut) {
		i++
	}
	if i > 0 {
		rec.window = append(rec.window[:0], rec.window[i:]...)
	}
}

// backoff is the hold time before recovery cycle n: OpenFor·2ⁿ capped at
// BackoffMax, plus a deterministic jitter in [0, base/4] derived from the
// seed, port, and cycle so a fleet of tripped ports doesn't reattach in
// lockstep yet every run with one seed replays identically.
func (h *ioHealth) backoff(portNum, attempts int) time.Duration {
	if attempts > 16 {
		attempts = 16
	}
	d := h.cfg.OpenFor << uint(attempts)
	if d <= 0 || d > h.cfg.BackoffMax {
		d = h.cfg.BackoffMax
	}
	span := uint64(d/4) + 1
	j := splitmix64(h.cfg.Seed ^ uint64(portNum)<<32 ^ uint64(attempts)) % span
	return d + time.Duration(j)
}

// splitmix64 is the same avalanche mixer internal/chaos uses for seeded
// schedules (duplicated here: chaos imports runtime, not the reverse).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// snapshotLocked builds a PortHealth view. Caller holds h.mu.
func (rec *portHealthRec) snapshotLocked(now time.Time) *PortHealth {
	ph := &PortHealth{
		Port:         rec.port,
		Spec:         rec.spec,
		Wire:         rec.wire,
		State:        rec.state,
		Detached:     rec.detached,
		WindowErrors: len(rec.window),
		RecvErrors:   rec.recvErrs,
		SendErrors:   rec.sendErrs,
		Stalls:       rec.stalls,
		Trips:        rec.trips,
		Reattaches:   rec.reatt,
		LastError:    rec.lastErr,
	}
	if rec.state == PortQuarantined && rec.nextAttempt.After(now) {
		ph.RetryIn = rec.nextAttempt.Sub(now)
	}
	return ph
}

// PortHealth returns every tracked port's breaker snapshot in port order,
// advancing time-based transitions first (poll-driven, like dpmu.Health).
func (rt *Runtime) PortHealth() []PortHealth {
	rt.SyncPortHealth()
	h := &rt.health
	h.mu.Lock()
	now := h.now()
	out := make([]PortHealth, 0, len(h.recs))
	for _, rec := range h.recs {
		rec.pruneWindow(now, h.cfg.Window)
		out = append(out, *rec.snapshotLocked(now))
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}

// healthAction is one enforcement decision collected under the leaf mutex
// and performed after its release.
type healthAction struct {
	port   int
	spec   string
	detach bool // else: reattach
}

// SyncPortHealth drives everything time-based: the ring-stall watchdog,
// window expiry (degraded → healthy), quarantine hold-off expiry
// (→ probing for in-process ports, → reattach attempt for parked wire
// ports), probe completion (→ healthy), and the detach a freshly tripped
// wire port is owed. Called by the background syncer, every health query,
// and the metrics scrape; safe concurrently.
func (rt *Runtime) SyncPortHealth() {
	h := &rt.health
	pm := rt.ports.Load()

	h.mu.Lock()
	now := h.now()
	var notes []PortHealth
	var acts []healthAction
	for portNum, rec := range h.recs {
		// Watchdog: sample ring consumer cursors of live ports. A ring that
		// holds frames while its consumer cursor sits still across
		// StallAfter consecutive samples is charged as a stall error.
		if p := pm.active[portNum]; p != nil && rec.state != PortQuarantined {
			if stalled := rec.sampleRings(p, h.cfg.StallAfter); stalled != "" {
				rec.stalls++
				rec.lastErr = "stall: " + stalled
				rec.lastErrAt = now
				rec.pruneWindow(now, h.cfg.Window)
				rec.window = append(rec.window, now)
				if rec.state == PortProbing {
					rec.attempts++
					rec.trip(now, h)
					notes = append(notes, *rec.snapshotLocked(now))
				} else if len(rec.window) >= h.cfg.TripErrors {
					rec.trip(now, h)
					notes = append(notes, *rec.snapshotLocked(now))
				} else if rec.state == PortHealthy {
					rec.state = PortDegraded
					notes = append(notes, *rec.snapshotLocked(now))
				}
			}
		}
		switch rec.state {
		case PortDegraded:
			rec.pruneWindow(now, h.cfg.Window)
			if len(rec.window) == 0 {
				rec.state = PortHealthy
				rec.attempts = 0
				notes = append(notes, *rec.snapshotLocked(now))
			}
		case PortQuarantined:
			switch {
			case rec.wire && !rec.detached && !rec.enforcing:
				rec.enforcing = true
				acts = append(acts, healthAction{port: portNum, detach: true})
			case rec.wire && rec.detached && !rec.enforcing && !now.Before(rec.nextAttempt):
				rec.enforcing = true
				acts = append(acts, healthAction{port: portNum, spec: rec.spec})
			case !rec.wire && !now.Before(rec.nextAttempt):
				rec.state = PortProbing
				rec.probeStart = now
				rec.window = rec.window[:0]
				notes = append(notes, *rec.snapshotLocked(now))
			}
		case PortProbing:
			if now.Sub(rec.probeStart) >= h.cfg.ProbeFor {
				rec.state = PortHealthy
				rec.attempts = 0
				rec.window = rec.window[:0]
				notes = append(notes, *rec.snapshotLocked(now))
			}
		}
	}
	fn := h.notify
	h.mu.Unlock()

	if fn != nil {
		for _, n := range notes {
			fn(n)
		}
	}
	for _, a := range acts {
		if a.detach {
			rt.enforceQuarantine(a.port)
		} else {
			rt.tryReattach(a.port, a.spec)
		}
	}
}

// sampleRings updates the watchdog cursors for one live port and returns a
// non-empty description if any ring just crossed the stall threshold.
// Caller holds h.mu.
func (rec *portHealthRec) sampleRings(p *port, stallAfter int) string {
	if len(rec.rxHeads) != len(p.rx) {
		rec.rxHeads = make([]uint64, len(p.rx))
		rec.txHeads = make([]uint64, len(p.tx))
		rec.rxStuck = make([]int, len(p.rx))
		rec.txStuck = make([]int, len(p.tx))
		for w := range p.rx {
			rec.rxHeads[w] = p.rx[w].head.Load()
			rec.txHeads[w] = p.tx[w].head.Load()
		}
		return ""
	}
	stalled := ""
	for w := range p.rx {
		rec.rxStuck[w], rec.rxHeads[w] = stallStep(p.rx[w], rec.rxHeads[w], rec.rxStuck[w])
		if rec.rxStuck[w] >= stallAfter {
			rec.rxStuck[w] = 0
			stalled = fmt.Sprintf("rx ring worker %d wedged", w)
		}
		rec.txStuck[w], rec.txHeads[w] = stallStep(p.tx[w], rec.txHeads[w], rec.txStuck[w])
		if rec.txStuck[w] >= stallAfter {
			rec.txStuck[w] = 0
			stalled = fmt.Sprintf("tx ring worker %d wedged", w)
		}
	}
	return stalled
}

// stallStep advances one ring's watchdog state: the stuck count rises only
// while the ring is non-empty and its consumer cursor has not moved.
func stallStep(r *ring, lastHead uint64, stuck int) (int, uint64) {
	head := r.head.Load()
	if head == lastHead && !r.empty() {
		return stuck + 1, head
	}
	return 0, head
}

// enforceQuarantine parks a tripped wire port: full detach machinery
// (ingestion stops, backlog drains, transport closes) but the breaker
// record keeps the spec for auto-reattach. Runs outside health.mu.
func (rt *Runtime) enforceQuarantine(portNum int) {
	err := rt.detachPort(portNum)
	h := &rt.health
	h.mu.Lock()
	rec := h.recs[portNum]
	if rec != nil {
		rec.enforcing = false
		if err == nil {
			rec.detached = true
		}
		// ErrNoPort: the operator detached first; Detach removed the record
		// already unless it raced — either way leave the record alone, the
		// next sync re-decides. ErrClosed: runtime shutting down.
	}
	fn := h.notify
	var note *PortHealth
	if rec != nil && err == nil {
		note = rec.snapshotLocked(h.now())
	}
	h.mu.Unlock()
	if note != nil && fn != nil {
		fn(*note)
	}
}

// tryReattach rebuilds a parked port's transport from its remembered spec
// and attaches it in the probing state. Failure (bind error, port busy)
// schedules the next attempt one backoff cycle later. Runs outside
// health.mu.
func (rt *Runtime) tryReattach(portNum int, spec string) {
	tr, err := rt.newTransport(portNum, spec)
	if err == nil {
		if aerr := rt.attach(portNum, spec, tr, attachReattach); aerr != nil {
			tr.Close()
			err = aerr
		}
	}
	h := &rt.health
	h.mu.Lock()
	now := h.now()
	rec := h.recs[portNum]
	var note *PortHealth
	if rec == nil && err == nil {
		// The operator detached the parked port while the reattach was in
		// flight; honor the detach by tearing the fresh attach down again.
		h.mu.Unlock()
		_ = rt.detachPort(portNum)
		return
	}
	if rec != nil {
		rec.enforcing = false
		if err == nil {
			rec.detached = false
			rec.reatt++
			rec.state = PortProbing
			rec.probeStart = now
			rec.window = rec.window[:0]
			rec.rxHeads, rec.txHeads = nil, nil
			rec.rxStuck, rec.txStuck = nil, nil
			note = rec.snapshotLocked(now)
		} else if errors.Is(err, ErrPortBusy) || errors.Is(err, ErrClosed) {
			// Operator attached the port themselves (their attach reset the
			// record) or the runtime is closing; nothing to schedule.
		} else {
			rec.attempts++
			rec.lastErr = fmt.Sprintf("reattach: %v", err)
			rec.lastErrAt = now
			rec.nextAttempt = now.Add(h.backoff(portNum, rec.attempts))
		}
	}
	fn := h.notify
	h.mu.Unlock()
	if note != nil && fn != nil {
		fn(*note)
	}
	if err == nil {
		rt.wakeAll()
	}
}

// healthSyncer is the background goroutine driving SyncPortHealth.
func (rt *Runtime) healthSyncer(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			rt.SyncPortHealth()
		case <-rt.stop:
			return
		}
	}
}
