package runtime

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"
)

// maxFrame bounds one received datagram; Ethernet frames with generous
// headroom fit, and anything larger is not a frame this switch models.
const maxFrame = 2048

// UDPTransport carries raw frames as UDP datagrams, one frame per datagram:
// the wire face of a switch port. It listens on a local address; egress goes
// to a fixed peer when the spec names one, otherwise to the source of the
// most recently received datagram (reply mode, convenient for test clients).
type UDPTransport struct {
	conn *net.UDPConn
	peer atomic.Pointer[net.UDPAddr]
	// learn is set in reply mode: each Recv re-learns the peer.
	learn      bool
	closed     atomic.Bool
	recvClosed atomic.Bool
}

// newUDPTransport parses "<listen>" or "<listen>/<peer>" (after the "udp:"
// scheme has been cut) and binds the listening socket.
func newUDPTransport(rest string) (*UDPTransport, error) {
	listenSpec, peerSpec, hasPeer := strings.Cut(rest, "/")
	laddr, err := net.ResolveUDPAddr("udp", listenSpec)
	if err != nil {
		return nil, fmt.Errorf("%w: listen %q: %v", ErrBadSpec, listenSpec, err)
	}
	var paddr *net.UDPAddr
	if hasPeer {
		if paddr, err = net.ResolveUDPAddr("udp", peerSpec); err != nil {
			return nil, fmt.Errorf("%w: peer %q: %v", ErrBadSpec, peerSpec, err)
		}
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: udp listen %s: %w", listenSpec, err)
	}
	// A sustained-load burst must land in the socket buffer, not the floor;
	// the kernel clamps to its limit, so failure here is advisory.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	t := &UDPTransport{conn: conn, learn: !hasPeer}
	if paddr != nil {
		t.peer.Store(paddr)
	}
	return t, nil
}

// LocalAddr returns the bound listen address (useful with port 0 in tests).
func (t *UDPTransport) LocalAddr() net.Addr { return t.conn.LocalAddr() }

// Recv blocks for the next datagram. A datagram over maxFrame returns
// ErrFrameTooBig instead of being silently truncated — ReadFromUDP reports
// no error when the buffer is too small, so the extra byte of headroom is
// what detects the overflow.
func (t *UDPTransport) Recv(f *Frame) error {
	buf := make([]byte, maxFrame+1)
	for {
		n, addr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			if t.closed.Load() || t.recvClosed.Load() {
				return ErrClosed
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // stale deadline from a prior CloseRecv race
			}
			return fmt.Errorf("runtime: udp recv: %w", err)
		}
		if n > maxFrame {
			return fmt.Errorf("%w: udp datagram over %d bytes", ErrFrameTooBig, maxFrame)
		}
		if t.learn {
			t.peer.Store(addr)
		}
		f.Data = buf[:n]
		return nil
	}
}

// Send writes one frame to the peer as a single datagram. Without a peer
// (reply mode before any ingress) the frame cannot be addressed and the
// caller counts it as a TX drop.
func (t *UDPTransport) Send(f Frame) error {
	if t.closed.Load() {
		return ErrClosed
	}
	peer := t.peer.Load()
	if peer == nil {
		return ErrNoPeer
	}
	_, err := t.conn.WriteToUDP(f.Data, peer)
	if err != nil && t.closed.Load() {
		return ErrClosed
	}
	return err
}

// CloseRecv stops ingestion: the pending ReadFromUDP is kicked loose via a
// read deadline in the past, while Send keeps working so queued egress can
// drain.
func (t *UDPTransport) CloseRecv() error {
	t.recvClosed.Store(true)
	return t.conn.SetReadDeadline(time.Unix(1, 0))
}

// Close releases the socket.
func (t *UDPTransport) Close() error {
	t.closed.Store(true)
	return t.conn.Close()
}
