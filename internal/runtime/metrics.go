package runtime

// PortMetrics is one attached port's counters and ring occupancy snapshot.
type PortMetrics struct {
	Port     int
	Spec     string
	RxFrames uint64
	TxFrames uint64
	RxDrops  uint64
	TxDrops  uint64
	TxErrors uint64
	// RxDepth[w]/TxDepth[w] are the racy current occupancy of the rings
	// between this port and worker w.
	RxDepth []int
	TxDepth []int
}

// Metrics is a point-in-time snapshot of the runtime, readable at any time
// including after Close (counters survive; depths read zero once drained).
type Metrics struct {
	Workers   int
	RingSize  int
	Processed uint64
	ProcErrs  uint64
	Unrouted  uint64
	// DrainTimeouts counts detaches whose ingress backlog could not be
	// drained within the deadline; the abandoned frames are in RxDrops.
	DrainTimeouts uint64
	Ports         []PortMetrics
}

// Drops is the total frame loss the runtime itself caused: ring-full drops
// on both directions plus frames routed to a port with no transport.
func (m Metrics) Drops() uint64 {
	total := m.Unrouted
	for _, p := range m.Ports {
		total += p.RxDrops + p.TxDrops
	}
	return total
}

// Metrics snapshots every port (active and draining) plus global counters.
func (rt *Runtime) Metrics() Metrics {
	pm := rt.ports.Load()
	m := Metrics{
		Workers:       rt.cfg.Workers,
		RingSize:      ringCap(rt.cfg.RingSize),
		Processed:     rt.processed.Load(),
		ProcErrs:      rt.procErrs.Load(),
		Unrouted:      rt.unrouted.Load(),
		DrainTimeouts: rt.drainTimeouts.Load(),
	}
	for _, p := range append(append([]*port{}, pm.list...), pm.draining...) {
		m.Ports = append(m.Ports, snapshotPort(p))
	}
	return m
}

// ringCap is the real (power-of-two rounded) ring capacity.
func ringCap(configured int) int {
	n := 1
	for n < configured {
		n <<= 1
	}
	return n
}

func snapshotPort(p *port) PortMetrics {
	pm := PortMetrics{
		Port:     p.num,
		Spec:     p.spec,
		RxFrames: p.rxFrames.Load(),
		TxFrames: p.txFrames.Load(),
		RxDrops:  p.rxDrops.Load(),
		TxDrops:  p.txDrops.Load(),
		TxErrors: p.txErrors.Load(),
		RxDepth:  make([]int, len(p.rx)),
		TxDepth:  make([]int, len(p.tx)),
	}
	for w := range p.rx {
		pm.RxDepth[w] = p.rx[w].depth()
		pm.TxDepth[w] = p.tx[w].depth()
	}
	return pm
}

// PortInfo is the control-plane view of one attached port ("port list").
type PortInfo struct {
	Port     int
	Spec     string
	RxFrames uint64
	TxFrames uint64
	RxDrops  uint64
	TxDrops  uint64
}

// Ports lists attached ports in port-number order.
func (rt *Runtime) Ports() []PortInfo {
	pm := rt.ports.Load()
	out := make([]PortInfo, 0, len(pm.list))
	for _, p := range pm.list {
		out = append(out, PortInfo{
			Port:     p.num,
			Spec:     p.spec,
			RxFrames: p.rxFrames.Load(),
			TxFrames: p.txFrames.Load(),
			RxDrops:  p.rxDrops.Load(),
			TxDrops:  p.txDrops.Load(),
		})
	}
	return out
}
