//go:build race

package runtime

// raceEnabled lets tests scale their workload down under the race detector,
// which slows execution 5-20x; the soak test trades packet count for keeping
// `make race` within CI budget while still exercising the same paths.
const raceEnabled = true
