package runtime

// Port breaker tests. All breaker time is driven by a fake clock and
// explicit SyncPortHealth calls (SyncEvery < 0 disables the background
// syncer), so the walks are deterministic; only the RX/TX goroutines run on
// real time, and the tests wait on their observable effects.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for the breaker tracker.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(10_000, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// fakeWire is a scriptable "wire" transport built by a TransportFactory:
// while fail is set every Recv returns an error; otherwise Recv blocks for
// injected frames. Close unblocks everything.
type fakeWire struct {
	fail   atomic.Bool
	recvs  atomic.Int64
	frames chan []byte
	closed chan struct{}
	once   sync.Once
}

func newFakeWire() *fakeWire {
	return &fakeWire{frames: make(chan []byte, 16), closed: make(chan struct{})}
}

func (w *fakeWire) Recv(f *Frame) error {
	w.recvs.Add(1)
	select {
	case <-w.closed:
		return ErrClosed
	default:
	}
	if w.fail.Load() {
		return errors.New("carrier lost")
	}
	select {
	case d := <-w.frames:
		f.Data = d
		return nil
	case <-w.closed:
		return ErrClosed
	}
}

func (w *fakeWire) Send(Frame) error { return nil }
func (w *fakeWire) Close() error {
	w.once.Do(func() { close(w.closed) })
	return nil
}

// breakerHealthConfig is the shared aggressive-but-deterministic tuning.
func breakerHealthConfig() HealthConfig {
	return HealthConfig{
		Window:      time.Hour,
		TripErrors:  4,
		OpenFor:     time.Second,
		BackoffMax:  time.Minute,
		ProbeFor:    time.Second,
		StallAfter:  1 << 20, // watchdog effectively off unless a test wants it
		RecvErrBase: 50 * time.Microsecond,
		RecvErrMax:  200 * time.Microsecond,
		SyncEvery:   -1, // tests drive SyncPortHealth explicitly
		Seed:        7,
	}
}

// TestPortBreakerWalk drives the full containment cycle on a wire port: a
// failing transport trips the breaker, quarantine detaches the port (but
// remembers it), the backoff expires, the factory rebuilds the transport,
// probing holds, and a clean probe interval closes the breaker.
func TestPortBreakerWalk(t *testing.T) {
	clk := &fakeClock{}
	var mu sync.Mutex
	var wires []*fakeWire
	factory := func(port int, spec string) (Transport, error) {
		w := newFakeWire()
		mu.Lock()
		wires = append(wires, w)
		mu.Unlock()
		return w, nil
	}
	var nmu sync.Mutex
	var states []HealthState
	rt := New(&echoProc{}, Config{Workers: 1, Health: breakerHealthConfig(), TransportFactory: factory})
	rt.SetHealthClock(clk.Now)
	rt.SetHealthNotify(func(ph PortHealth) {
		nmu.Lock()
		states = append(states, ph.State)
		nmu.Unlock()
	})
	rt.Start()
	defer rt.Close()

	if err := rt.AttachSpec(1, "fake:flaky"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	w0 := wires[0]
	mu.Unlock()
	w0.fail.Store(true)

	// The RX loop's errors fill the window; the breaker trips and the next
	// sync (run by PortHealth) detaches the port.
	waitFor(t, func() bool {
		phs := rt.PortHealth()
		return len(phs) == 1 && phs[0].State == PortQuarantined && phs[0].Detached
	}, "quarantine to detach the wire port")
	if got := len(rt.Ports()); got != 0 {
		t.Fatalf("quarantined wire port still on the active list (%d ports)", got)
	}
	phs := rt.PortHealth()
	if !phs[0].Wire || phs[0].Trips != 1 || phs[0].Spec != "fake:flaky" {
		t.Fatalf("parked snapshot: %+v", phs[0])
	}

	// Past the backoff (OpenFor + jitter ≤ OpenFor/4) the factory rebuilds
	// the transport and the port comes back probing.
	clk.Advance(2 * time.Second)
	rt.SyncPortHealth()
	phs = rt.PortHealth()
	if phs[0].State != PortProbing || phs[0].Detached || phs[0].Reattaches != 1 {
		t.Fatalf("after backoff: %+v", phs[0])
	}
	if got := len(rt.Ports()); got != 1 {
		t.Fatalf("reattached port not on the active list (%d ports)", got)
	}
	mu.Lock()
	rebuilt := len(wires)
	mu.Unlock()
	if rebuilt != 2 {
		t.Fatalf("factory calls = %d, want 2 (attach + reattach)", rebuilt)
	}

	// A clean probe interval closes the breaker.
	clk.Advance(time.Second)
	rt.SyncPortHealth()
	phs = rt.PortHealth()
	if phs[0].State != PortHealthy {
		t.Fatalf("after probe interval: %+v", phs[0])
	}

	// The notify stream saw the walk in order.
	nmu.Lock()
	defer nmu.Unlock()
	idx := func(s HealthState) int {
		for i, st := range states {
			if st == s {
				return i
			}
		}
		return -1
	}
	q, p, h := idx(PortQuarantined), idx(PortProbing), idx(PortHealthy)
	if q < 0 || p < 0 || h < 0 || !(q < p && p < h) {
		t.Fatalf("notify order: %v", states)
	}
}

// TestPortBreakerReattachFailureEscalatesBackoff verifies failed reattach
// attempts double the hold time rather than hammering the factory.
func TestPortBreakerReattachFailureEscalatesBackoff(t *testing.T) {
	clk := &fakeClock{}
	var calls atomic.Int64
	factory := func(port int, spec string) (Transport, error) {
		if calls.Add(1) == 1 {
			w := newFakeWire()
			w.fail.Store(true)
			return w, nil
		}
		return nil, fmt.Errorf("bind: address already in use")
	}
	rt := New(&echoProc{}, Config{Workers: 1, Health: breakerHealthConfig(), TransportFactory: factory})
	rt.SetHealthClock(clk.Now)
	rt.Start()
	defer rt.Close()
	if err := rt.AttachSpec(3, "fake:dead"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		phs := rt.PortHealth()
		return len(phs) == 1 && phs[0].State == PortQuarantined && phs[0].Detached
	}, "quarantine to park the port")

	// Cycle 0: OpenFor(1s)+jitter ≤ 1.25s. At t=1.5s the reattach runs and
	// fails, escalating to cycle 1: 2s+jitter ≤ 2.5s from now.
	clk.Advance(1500 * time.Millisecond)
	rt.SyncPortHealth()
	if got := calls.Load(); got != 2 {
		t.Fatalf("factory calls after first backoff = %d, want 2", got)
	}
	phs := rt.PortHealth()
	if phs[0].State != PortQuarantined || !phs[0].Detached || phs[0].RetryIn <= 0 {
		t.Fatalf("after failed reattach: %+v", phs[0])
	}

	// Inside the escalated hold no new attempt fires.
	clk.Advance(1500 * time.Millisecond)
	rt.SyncPortHealth()
	if got := calls.Load(); got != 2 {
		t.Fatalf("retried before the escalated backoff elapsed (calls=%d)", got)
	}

	// Past it, the next attempt fires.
	clk.Advance(1200 * time.Millisecond)
	rt.SyncPortHealth()
	if got := calls.Load(); got != 3 {
		t.Fatalf("factory calls after escalated backoff = %d, want 3", got)
	}
}

// TestChanPortQuarantineIsAdvisory: in-process transports surface breaker
// state but are never auto-detached; they recover via the timed probe path.
func TestChanPortQuarantineIsAdvisory(t *testing.T) {
	clk := &fakeClock{}
	cfg := breakerHealthConfig()
	cfg.TripErrors = 3
	rt := New(&echoProc{}, Config{Workers: 1, Health: cfg})
	rt.SetHealthClock(clk.Now)
	rt.Start()
	defer rt.Close()
	_, far := NewChanPair(8)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rt.health.noteError(1, errKindRecv, errors.New("synthetic"))
	}
	phs := rt.PortHealth()
	if phs[0].State != PortQuarantined || phs[0].Wire || phs[0].Detached {
		t.Fatalf("after trip: %+v", phs[0])
	}
	if got := len(rt.Ports()); got != 1 {
		t.Fatalf("in-process port auto-dropped (%d ports)", got)
	}
	clk.Advance(2 * time.Second) // past OpenFor+jitter
	rt.SyncPortHealth()
	if phs = rt.PortHealth(); phs[0].State != PortProbing {
		t.Fatalf("after hold-off: %+v", phs[0])
	}
	if got := len(rt.Ports()); got != 1 {
		t.Fatalf("port dropped during probing (%d ports)", got)
	}
	clk.Advance(time.Second)
	rt.SyncPortHealth()
	if phs = rt.PortHealth(); phs[0].State != PortHealthy {
		t.Fatalf("after probe interval: %+v", phs[0])
	}
}

// TestStallWatchdogTripsBreaker wedges a worker ring (workers never started)
// and checks the cursor watchdog charges a stall and trips the breaker.
func TestStallWatchdogTripsBreaker(t *testing.T) {
	clk := &fakeClock{}
	cfg := breakerHealthConfig()
	cfg.TripErrors = 1
	cfg.StallAfter = 2
	rt := New(&echoProc{}, Config{Workers: 1, Health: cfg})
	rt.SetHealthClock(clk.Now)
	// Deliberately not Started: no worker drains the rings, so the queued
	// frame sits with the consumer cursor frozen.
	near, far := NewChanPair(8)
	if err := rt.Attach(1, far); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := near.Send(Frame{Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, p := range rt.Ports() {
			if p.Port == 1 && p.RxFrames == 1 {
				return true
			}
		}
		return false
	}, "the frame to reach the worker ring")

	// Sample 1 initializes cursors; 2 and 3 see them frozen over a non-empty
	// ring and cross StallAfter.
	for i := 0; i < 4; i++ {
		rt.SyncPortHealth()
	}
	phs := rt.PortHealth()
	if phs[0].Stalls == 0 {
		t.Fatalf("no stall charged: %+v", phs[0])
	}
	if phs[0].State != PortQuarantined {
		t.Fatalf("stall did not trip the breaker: %+v", phs[0])
	}
}

// TestRecvErrorBackoffBoundsSpin is the regression test for the RX loop's
// escalating per-port backoff: a permanently failing transport must not let
// the loop spin. (The old flat 1 ms sleep would make ~300 Recv calls here.)
func TestRecvErrorBackoffBoundsSpin(t *testing.T) {
	w := newFakeWire()
	w.fail.Store(true)
	cfg := breakerHealthConfig()
	cfg.TripErrors = 1 << 20 // keep the breaker out of the way
	cfg.RecvErrBase = 5 * time.Millisecond
	cfg.RecvErrMax = 40 * time.Millisecond
	rt := New(&echoProc{}, Config{
		Workers:          1,
		Health:           cfg,
		TransportFactory: func(int, string) (Transport, error) { return w, nil },
	})
	rt.Start()
	defer rt.Close()
	if err := rt.AttachSpec(1, "fake:dead"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	n := w.recvs.Load()
	if n < 2 {
		t.Fatalf("rx loop stopped retrying: %d recvs", n)
	}
	// 5+10+20+40+40+... ≈ 9 calls in 300 ms; leave slack for scheduling.
	if n > 40 {
		t.Fatalf("rx loop spinning despite backoff: %d recvs in 300ms", n)
	}
}

// TestOperatorDetachCancelsAutoReattach: detaching a quarantine-parked port
// forgets it — no factory call ever revives it.
func TestOperatorDetachCancelsAutoReattach(t *testing.T) {
	clk := &fakeClock{}
	var calls atomic.Int64
	factory := func(int, string) (Transport, error) {
		calls.Add(1)
		w := newFakeWire()
		w.fail.Store(true)
		return w, nil
	}
	rt := New(&echoProc{}, Config{Workers: 1, Health: breakerHealthConfig(), TransportFactory: factory})
	rt.SetHealthClock(clk.Now)
	rt.Start()
	defer rt.Close()
	if err := rt.AttachSpec(2, "fake:dead"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		phs := rt.PortHealth()
		return len(phs) == 1 && phs[0].Detached
	}, "quarantine to park the port")

	if err := rt.Detach(2); err != nil {
		t.Fatalf("operator detach of parked port: %v", err)
	}
	if phs := rt.PortHealth(); len(phs) != 0 {
		t.Fatalf("breaker record survived operator detach: %+v", phs)
	}
	before := calls.Load()
	clk.Advance(time.Hour)
	rt.SyncPortHealth()
	if calls.Load() != before {
		t.Fatal("auto-reattach fired after operator detach")
	}
}
