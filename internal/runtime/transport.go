// Package runtime is the packet I/O runtime: it owns ingestion end-to-end,
// reading frames from pluggable transports on dedicated RX goroutines,
// sharding them onto per-worker bounded SPSC rings, draining the rings
// through the switch on worker loops, and writing results back out egress
// transports on per-port TX goroutines (the ndn-dpdk input/fwd/output
// architecture, DESIGN.md §14). The netsim substrate and hp4switch's wire
// transports are both consumers of the same Runtime and Transport API.
package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Frame is one packet in flight plus the switch port it belongs to: the
// ingress port after Recv (stamped by the runtime — a transport serves
// exactly one port), the egress port on Send.
type Frame struct {
	Data []byte
	Port int
}

// Transport moves frames between one switch port and the outside world —
// a UDP socket, an in-process channel link, or anything else that can carry
// raw frames. Implementations must be safe for one concurrent Recv'er and
// one concurrent Send'er (the runtime's RX and TX loops for the port).
type Transport interface {
	// Recv blocks until a frame arrives, filling f with a buffer the caller
	// owns from then on, or returns ErrClosed once the transport is closed.
	Recv(f *Frame) error
	// Send writes one frame out. In-process transports may block on a full
	// link; wire transports must not.
	Send(f Frame) error
	// Close releases the transport; pending and future Recv/Send return
	// ErrClosed.
	Close() error
}

// RecvCloser is an optional Transport extension: shut the receive side down
// (unblocking a pending Recv) while Send keeps working, so a draining
// runtime can stop ingestion first and still flush queued egress frames
// before the full Close.
type RecvCloser interface {
	CloseRecv() error
}

// Sentinel errors, mapped onto structured control-plane codes by
// internal/core/ctl.
var (
	// ErrClosed reports an operation on a closed transport or runtime.
	ErrClosed = errors.New("runtime: closed")
	// ErrPortBusy reports an attach to a port that already has a transport.
	ErrPortBusy = errors.New("runtime: port already attached")
	// ErrNoPort reports an operation on a port with no transport attached.
	ErrNoPort = errors.New("runtime: port not attached")
	// ErrBadSpec reports an unparseable transport specification.
	ErrBadSpec = errors.New("runtime: bad transport spec")
	// ErrNoPeer reports a Send on a transport that has not yet learned a
	// destination.
	ErrNoPeer = errors.New("runtime: no peer address")
	// ErrFrameTooBig reports an ingress frame over the transport's size
	// limit; the runtime counts it as an rx drop and keeps receiving.
	ErrFrameTooBig = errors.New("runtime: frame exceeds size limit")
)

// NewTransport builds a transport from a one-token textual spec — the form
// the control plane's "port attach <port> <spec>" op carries:
//
//	udp:<listen-host:port>              reply to the last sender
//	udp:<listen-host:port>/<peer:port>  fixed peer
//
// In-process channel transports have no spec; they are built with
// NewChanPair and attached programmatically.
func NewTransport(spec string) (Transport, error) {
	scheme, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("%w: %q (want scheme:address)", ErrBadSpec, spec)
	}
	switch scheme {
	case "udp":
		return newUDPTransport(rest)
	}
	return nil, fmt.Errorf("%w: unknown scheme %q in %q", ErrBadSpec, scheme, spec)
}

// ChanTransport is the in-process transport: one endpoint of a buffered
// bidirectional channel link. It is what internal/netsim runs switch-switch
// and switch-host links over, and what tests use to drive a Runtime without
// sockets.
//
// The two endpoints of a pair share one close signal: closing either side
// unblocks every pending Recv and Send on both, so a topology can be torn
// down from any end without stranding a peer (netsim closes every link
// before stopping its switch runtimes).
type ChanTransport struct {
	rx <-chan []byte
	tx chan<- []byte

	closed     chan struct{} // shared by the pair
	closeOnce  *sync.Once    // shared by the pair
	recvClosed chan struct{} // this endpoint only
	recvOnce   sync.Once
}

// NewChanPair builds the two cross-connected endpoints of an in-process
// link with the given per-direction buffer.
func NewChanPair(buf int) (*ChanTransport, *ChanTransport) {
	if buf < 1 {
		buf = 1
	}
	ab := make(chan []byte, buf)
	ba := make(chan []byte, buf)
	closed := make(chan struct{})
	once := &sync.Once{}
	a := &ChanTransport{rx: ba, tx: ab, closed: closed, closeOnce: once, recvClosed: make(chan struct{})}
	b := &ChanTransport{rx: ab, tx: ba, closed: closed, closeOnce: once, recvClosed: make(chan struct{})}
	return a, b
}

// Recv blocks for the next frame from the peer. Frames already buffered in
// the link when the receive side closes are still delivered — CloseRecv
// means "stop accepting new traffic", and everything the peer's Send already
// completed counts as accepted. Only then does Recv report ErrClosed.
func (c *ChanTransport) Recv(f *Frame) error {
	select {
	case data := <-c.rx:
		f.Data = data
		return nil
	default:
	}
	select {
	case data := <-c.rx:
		f.Data = data
		return nil
	case <-c.recvClosed:
		return ErrClosed
	case <-c.closed:
		return ErrClosed
	}
}

// Send delivers one frame to the peer, blocking while the link buffer is
// full (in-process links are lossless; bounded loss lives in the rings).
func (c *ChanTransport) Send(f Frame) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	select {
	case c.tx <- f.Data:
		return nil
	case <-c.closed:
		return ErrClosed
	}
}

// Buffered reports how many frames sit in the link's channel buffers, both
// directions. Meaningful once the link and both consumers have stopped —
// netsim's teardown accounting, counting frames torn down in flight.
func (c *ChanTransport) Buffered() int {
	return len(c.rx) + len(c.tx)
}

// CloseRecv stops this endpoint's receive side only.
func (c *ChanTransport) CloseRecv() error {
	c.recvOnce.Do(func() { close(c.recvClosed) })
	return nil
}

// Close tears the whole link down, both endpoints, both directions.
func (c *ChanTransport) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}
