//go:build !race

package runtime

// raceEnabled reports whether the race detector is compiled in; see
// race_on.go.
const raceEnabled = false
