package verify_test

// The corpus tests: every artifact the repo ships must verify clean, and a
// set of deliberately planted defects must each trip exactly the finding
// class built for it. The external test package lets these tests drive the
// full stack (dpmu imports verify, so an internal test package would cycle).

import (
	"os"
	"testing"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/ctl"
	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/core/verify"
	"hyper4/internal/functions"
	"hyper4/internal/p4/ast"
	"hyper4/internal/sim"
)

// newStack builds a persona switch, DPMU and management CLI for script
// replay, failing the test on any setup error.
func newStack(t *testing.T) (*dpmu.DPMU, *ctl.CLI) {
	t.Helper()
	pers, err := persona.Generate(persona.Reference)
	if err != nil {
		t.Fatalf("persona: %v", err)
	}
	sw, err := sim.New("sw0", pers.Program)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	d, err := dpmu.New(sw, pers)
	if err != nil {
		t.Fatalf("dpmu: %v", err)
	}
	return d, ctl.NewCLI(ctl.New(d), "operator")
}

// codes collects the finding codes present, for containment assertions.
func codes(fs []verify.Finding) map[string]bool {
	m := map[string]bool{}
	for _, f := range fs {
		m[f.Code] = true
	}
	return m
}

// TestCleanBuiltins: every built-in function compiles to a program the
// structural verifier accepts without findings.
func TestCleanBuiltins(t *testing.T) {
	names := append(functions.Names(), functions.Composed)
	for _, name := range names {
		cfg := persona.Reference
		if name == functions.Composed {
			// The sequential composition needs the longer pipeline it is
			// benchmarked with; the Reference stage budget is per-function.
			cfg.Stages = 6
		}
		prog, err := functions.Load(name)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		comp, err := hp4c.Compile(prog, cfg)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if fs := verify.Program(comp); len(fs) != 0 {
			t.Errorf("%s: want clean, got %d findings, first: %s", name, len(fs), fs[0])
		}
	}
}

// TestCleanCompositionScript: the shipped composition example replays onto a
// live persona switch and the full verifier (entries, topology, tenancy,
// parse rows) reports nothing.
func TestCleanCompositionScript(t *testing.T) {
	src, err := os.ReadFile("../../../examples/scripts/composition.txt")
	if err != nil {
		t.Fatalf("read script: %v", err)
	}
	d, cli := newStack(t)
	if err := cli.ExecAll(string(src)); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if fs := verify.Check(d.VerifySource()); len(fs) != 0 {
		t.Errorf("want clean, got %d findings, first: %s", len(fs), fs[0])
	}
}

// TestPlantedShadowedEntry: a catch-all ternary entry at better precedence
// makes a later, more specific entry dead — the shadow analysis must name
// the dead entry.
func TestPlantedShadowedEntry(t *testing.T) {
	d, cli := newStack(t)
	lines := []string{
		"load fw firewall",
		// Catch-all (all bits masked out) at priority 1 wins every packet.
		"fw table_add tcp_filter _drop 0&&&0 0&&&0 => 1",
		// Specific dst-port filter at priority 2 can never match.
		"fw table_add tcp_filter _drop 0&&&0 5201&&&0xffff => 2",
	}
	for _, l := range lines {
		if _, err := cli.Exec(l); err != nil {
			t.Fatalf("%q: %v", l, err)
		}
	}
	fs := verify.Check(d.VerifySource())
	if !codes(fs)[verify.CodeShadowed] {
		t.Fatalf("want a %s finding, got %v", verify.CodeShadowed, fs)
	}
	for _, f := range fs {
		if f.Code == verify.CodeShadowed && (f.VDev != "fw" || f.Table != "tcp_filter") {
			t.Errorf("shadow finding misattributed: %s", f)
		}
	}
}

// TestPlantedVNetCycle: linking two devices into a loop must produce a
// vnet-cycle error (and therefore fail the verify admission op).
func TestPlantedVNetCycle(t *testing.T) {
	d, cli := newStack(t)
	lines := []string{
		"load a l2_switch",
		"load b l2_switch",
		"link a 10 b 1",
		"link b 10 a 1",
	}
	for _, l := range lines {
		if _, err := cli.Exec(l); err != nil {
			t.Fatalf("%q: %v", l, err)
		}
	}
	fs := verify.Check(d.VerifySource())
	if !codes(fs)[verify.CodeVNetCycle] {
		t.Fatalf("want a %s finding, got %v", verify.CodeVNetCycle, fs)
	}
	if !verify.HasErrors(fs) {
		t.Fatalf("a cycle must be an error-severity finding")
	}
}

// TestPlantedForeignPID: a persona row stamped with a program ID no loaded
// device owns — the §4.5 isolation property the tenancy check enforces —
// must surface as foreign-pid. The row is planted through the raw switch
// runtime, below the DPMU's bookkeeping, exactly like a misbehaving native
// controller would.
func TestPlantedForeignPID(t *testing.T) {
	d, cli := newStack(t)
	if _, err := cli.Exec("load l2 l2_switch"); err != nil {
		t.Fatalf("load: %v", err)
	}
	params := []sim.MatchParam{
		{Kind: ast.MatchExact, Value: bitfield.FromUint(persona.ProgramWidth, 999)},
		{Kind: ast.MatchExact, Value: bitfield.FromUint(persona.StateWidth, 1)},
	}
	args := []bitfield.Value{
		bitfield.FromUint(16, 1), bitfield.FromUint(16, 0),
		bitfield.FromUint(16, 0), bitfield.FromUint(16, 0),
	}
	tbl := persona.StageTable(1, persona.KindName(persona.NTMatchless))
	if _, err := d.SW.TableAdd(tbl, persona.ActSetMatch, params, args, 0); err != nil {
		t.Fatalf("raw add into %s: %v", tbl, err)
	}
	fs := verify.Check(d.VerifySource())
	if !codes(fs)[verify.CodeForeignPID] {
		t.Fatalf("want a %s finding, got %v", verify.CodeForeignPID, fs)
	}
}

// TestProgramFindingsUndeclared: a compiled artifact whose slot dispatches
// an action the persona does not declare is rejected structurally. The
// defect is planted by mutating a good compile in memory.
func TestProgramFindingsUndeclared(t *testing.T) {
	prog, err := functions.Load(functions.L2Switch)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	comp, err := hp4c.Compile(prog, persona.Reference)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Rekey one slot's successor map to an action the program never
	// declares: the slot now dispatches on a phantom action name.
	planted := false
	for _, slots := range comp.Slots {
		for _, slot := range slots {
			for act, succ := range slot.Next {
				delete(slot.Next, act)
				slot.Next["no_such_action"] = succ
				planted = true
				break
			}
			if planted {
				break
			}
		}
		if planted {
			break
		}
	}
	if !planted {
		t.Fatal("no slot with successors to mutate")
	}
	fs := verify.Program(comp)
	if !codes(fs)[verify.CodeUndeclaredAction] {
		t.Fatalf("want a %s finding, got %v", verify.CodeUndeclaredAction, fs)
	}
}

// TestPassBound: a chain longer than the configured pass budget is flagged
// before any packet pays for the discovery.
func TestPassBound(t *testing.T) {
	d, cli := newStack(t)
	lines := []string{
		"load a l2_switch",
		"load b l2_switch",
		"link a 10 b 1",
	}
	for _, l := range lines {
		if _, err := cli.Exec(l); err != nil {
			t.Fatalf("%q: %v", l, err)
		}
	}
	src := d.VerifySource()
	src.PassBound = 1 // two chained devices cannot fit one pass
	fs := verify.Check(src)
	if !codes(fs)[verify.CodePassBound] {
		t.Fatalf("want a %s finding, got %v", verify.CodePassBound, fs)
	}
}
