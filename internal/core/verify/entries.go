package verify

import (
	"fmt"
	"math/big"
	"sort"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/p4/ast"
	"hyper4/internal/sim"
)

// Entries checks a set of virtual entries against a compiled program:
// declaration checks (table, action, arities — promoted from install-time
// runtime errors to findings), reachability (an entry whose valid()
// constraints exclude every parse-path slot never matches), and shadow
// analysis (an entry wholly covered by a higher-precedence one never wins).
// The set may be a device's installed entries or a proposed batch; shadow
// analysis is pairwise within each table.
func Entries(comp *hp4c.Compiled, entries []Entry) []Finding {
	if comp == nil {
		return nil
	}
	var out []Finding
	byTable := map[string][]Entry{}
	for _, e := range entries {
		f, ok := checkEntry(comp, e)
		if !ok {
			out = append(out, f...)
			continue
		}
		out = append(out, f...)
		byTable[e.Table] = append(byTable[e.Table], e)
	}
	tables := make([]string, 0, len(byTable))
	for t := range byTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		out = append(out, checkShadow(comp, t, byTable[t])...)
	}
	sortFindings(out)
	return out
}

// checkEntry validates one entry's declarations. ok reports whether the
// entry is well-formed enough to participate in shadow analysis.
func checkEntry(comp *hp4c.Compiled, e Entry) (fs []Finding, ok bool) {
	slots := comp.Slots[e.Table]
	if len(slots) == 0 {
		return []Finding{{
			Code: CodeUndeclaredTable, Severity: SevError, Table: e.Table, Handle: e.Handle,
			Detail: fmt.Sprintf("program %s has no (reachable) table %q", comp.Name, e.Table),
		}}, false
	}
	tbl := comp.Prog.Tables[e.Table]
	if len(e.Params) != len(tbl.Reads) {
		return []Finding{{
			Code: CodeArity, Severity: SevError, Table: e.Table, Handle: e.Handle,
			Detail: fmt.Sprintf("table %s wants %d match params, entry has %d", e.Table, len(tbl.Reads), len(e.Params)),
		}}, false
	}
	for i, r := range tbl.Reads {
		if e.Params[i].Kind != r.Match {
			fs = append(fs, Finding{
				Code: CodeArity, Severity: SevError, Table: e.Table, Handle: e.Handle,
				Detail: fmt.Sprintf("match param %d is %s, table read is %s", i, e.Params[i].Kind, r.Match),
			})
		}
	}
	ca, declared := comp.Actions[e.Action]
	if !declared {
		fs = append(fs, Finding{
			Code: CodeUndeclaredAction, Severity: SevError, Table: e.Table, Handle: e.Handle,
			Detail: fmt.Sprintf("program %s has no action %q", comp.Name, e.Action),
		})
	} else if len(e.Args) != len(ca.Params) {
		fs = append(fs, Finding{
			Code: CodeArity, Severity: SevError, Table: e.Table, Handle: e.Handle,
			Detail: fmt.Sprintf("action %s wants %d args, entry has %d", e.Action, len(ca.Params), len(e.Args)),
		})
	}
	if len(fs) > 0 {
		return fs, false
	}
	// Reachability: a valid()-matching entry must land on at least one
	// parse-path slot (mirrors the DPMU's slot filter, which would reject
	// the install at runtime; here it is an admission finding).
	reachable := false
	for _, slot := range slots {
		accepts := true
		for i, r := range tbl.Reads {
			if r.Match != ast.MatchValid {
				continue
			}
			if e.Params[i].ValidWant != slot.Path.Valid[r.Header.Instance] {
				accepts = false
				break
			}
		}
		if accepts {
			reachable = true
			break
		}
	}
	if !reachable {
		return []Finding{{
			Code: CodeUnreachable, Severity: SevError, Table: e.Table, Handle: e.Handle,
			Detail: fmt.Sprintf("entry's valid() constraints match no parse path of table %s", e.Table),
		}}, false
	}
	return nil, true
}

// checkShadow reports entries that can never win a lookup in one table.
// Precedence mirrors the DPMU's translation: effective priority is the
// bmv2 priority (lower wins) plus, per LPM read, width−prefixLen (§5.3's
// ternary-with-managed-priorities scheme). A shadows B when A covers B's
// entire match space and A strictly precedes B — or the two are the same
// match and A was installed first. Equal-priority entries with different
// masks are NOT shadows: the persona tie-breaks on mask specificity, so
// the narrower entry still wins its own traffic.
func checkShadow(comp *hp4c.Compiled, table string, entries []Entry) []Finding {
	if len(entries) < 2 {
		return nil
	}
	tbl := comp.Prog.Tables[table]
	widths := make([]int, len(tbl.Reads))
	for i, r := range tbl.Reads {
		widths[i] = 1
		if r.Field != nil {
			if w, err := comp.Prog.FieldWidth(*r.Field); err == nil {
				widths[i] = w
			}
		}
	}
	eff := func(e Entry) int {
		p := e.Priority
		for i, r := range tbl.Reads {
			if r.Match == ast.MatchLPM {
				p += widths[i] - e.Params[i].PrefixLen
			}
		}
		return p
	}
	var out []Finding
	for bi := range entries {
		b := entries[bi]
		for ai := range entries {
			if ai == bi {
				continue
			}
			a := entries[ai]
			if !coversAll(a.Params, b.Params, widths) {
				continue
			}
			ea, eb := eff(a), eff(b)
			shadowed := ea < eb
			if ea == eb && sameMatch(a.Params, b.Params) {
				// Identical matches: earlier handle (or earlier position in
				// a proposed batch) wins the tie.
				shadowed = a.Handle < b.Handle || (a.Handle == b.Handle && ai < bi)
			}
			if shadowed {
				out = append(out, Finding{
					Code: CodeShadowed, Severity: SevError, Table: table, Handle: b.Handle,
					Detail: fmt.Sprintf("entry is fully covered by higher-precedence entry %d (priority %d vs %d) and can never match", a.Handle, ea, eb),
				})
				break // one shadow finding per entry
			}
		}
	}
	return out
}

// coversAll reports whether entry A's match space contains entry B's: every
// packet matching B also matches A, read by read.
func coversAll(a, b []sim.MatchParam, widths []int) bool {
	for i := range a {
		if !covers(a[i], b[i], widths[i]) {
			return false
		}
	}
	return true
}

// covers reports containment for one read pair of the same match kind.
func covers(a, b sim.MatchParam, width int) bool {
	switch a.Kind {
	case ast.MatchExact:
		return a.Value.EqualBits(b.Value)
	case ast.MatchTernary:
		// A's constrained bits must be a subset of B's, agreeing on value.
		am, bm := a.Mask.Big(), b.Mask.Big()
		if new(big.Int).AndNot(am, bm).Sign() != 0 {
			return false
		}
		av := new(big.Int).And(a.Value.Big(), am)
		bv := new(big.Int).And(b.Value.Big(), am)
		return av.Cmp(bv) == 0
	case ast.MatchLPM:
		if a.PrefixLen > b.PrefixLen {
			return false
		}
		if a.PrefixLen == 0 {
			return true
		}
		m := bitfield.MaskRange(width, 0, a.PrefixLen)
		return a.Value.Resize(width).And(m).EqualBits(b.Value.Resize(width).And(m))
	case ast.MatchRange:
		return a.Value.Cmp(b.Value) <= 0 && b.Hi.Cmp(a.Hi) <= 0
	case ast.MatchValid:
		return a.ValidWant == b.ValidWant
	}
	return false
}

// sameMatch reports whether two entries have bit-identical match params.
func sameMatch(a, b []sim.MatchParam) bool {
	for i := range a {
		p, q := a[i], b[i]
		switch p.Kind {
		case ast.MatchExact:
			if !p.Value.EqualBits(q.Value) {
				return false
			}
		case ast.MatchTernary:
			if !p.Mask.EqualBits(q.Mask) || !p.Value.And(p.Mask).EqualBits(q.Value.And(q.Mask)) {
				return false
			}
		case ast.MatchLPM:
			if p.PrefixLen != q.PrefixLen || !p.Value.EqualBits(q.Value) {
				return false
			}
		case ast.MatchRange:
			if p.Value.Cmp(q.Value) != 0 || p.Hi.Cmp(q.Hi) != 0 {
				return false
			}
		case ast.MatchValid:
			if p.ValidWant != q.ValidWant {
				return false
			}
		}
	}
	return true
}

// sortFindings orders findings deterministically: table, handle, code.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Table != fs[j].Table {
			return fs[i].Table < fs[j].Table
		}
		if fs[i].Handle != fs[j].Handle {
			return fs[i].Handle < fs[j].Handle
		}
		return fs[i].Code < fs[j].Code
	})
}
