// Package verify is the static data-plane verifier: it analyzes a compiled
// entry program (hp4c output) and/or a live DPMU snapshot against the
// persona's declared tables and the virtual-network topology, turning whole
// classes of silent runtime misbehavior — shadowed entries, virtual-network
// cycles that burn the pass bound, rows leaking across tenant boundaries —
// into admission-time findings. HyPer4's premise is that a persona plus
// table entries *is* a program, so a bad entry set is a latent data-plane
// bug; this package is the compiler's "type checker" for that program.
//
// The package deliberately depends only on the artifact layers (hp4c,
// persona, sim, ast) and defines its own snapshot input types (Source,
// Device, Link), so the DPMU can import it for load-time checks without a
// cycle. Three surfaces feed it: cmd/hp4lint (offline), the ctl "verify" op
// (dry-run WriteBatch admission), and DPMU.Load.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/sim"
)

// Severity grades a finding: errors gate admission (the ctl verify op fails
// the batch), warnings are advisory.
type Severity string

const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
	// SevInfo findings are purely informational — they never gate admission
	// and never fail lint runs; they explain operational state (e.g. why a
	// vdev is on the interpreted slow path).
	SevInfo Severity = "info"
)

// Finding codes, stable across releases: scripts and tests branch on these,
// never on detail text.
const (
	// CodeUndeclaredTable: an entry names a table the program doesn't
	// declare (or one compiled away as unreachable).
	CodeUndeclaredTable = "undeclared-table"
	// CodeUndeclaredAction: an entry or compiled artifact names an action
	// the program (or persona) doesn't declare.
	CodeUndeclaredAction = "undeclared-action"
	// CodeArity: match params or action args don't line up with the
	// declaration (count or kind).
	CodeArity = "bad-arity"
	// CodeShadowed: an entry can never win a lookup because an
	// earlier/higher-precedence entry covers its entire match space.
	CodeShadowed = "shadowed-entry"
	// CodeUnreachable: an entry lands on no parse path (valid() constraints
	// exclude every slot), or a compiled slot successor dangles.
	CodeUnreachable = "unreachable-entry"
	// CodeVNetCycle: the virtual-link topology contains a device cycle, so
	// a packet can recirculate until the pass bound kills it.
	CodeVNetCycle = "vnet-cycle"
	// CodePassBound: the worst-case chain depth (parse resubmits plus link
	// recirculations) exceeds the pipeline pass bound.
	CodePassBound = "pass-bound"
	// CodeForeignPID: a persona row in a program-keyed table carries a
	// program ID no loaded device owns, or one its owner doesn't track —
	// the cross-tenant isolation invariant of §4.5.
	CodeForeignPID = "foreign-pid"
	// CodeParseBytes: a parse requirement exceeds the persona's ParseMax
	// or requests a byte count off the ParseStep grid.
	CodeParseBytes = "parse-bytes"
	// CodePersona: the compiled artifact references a persona table/action
	// shape the persona configuration doesn't declare (hp4c.Validate).
	CodePersona = "persona-decl"
	// CodeUnfusable: informational — a vdev (or one of its constructs) is
	// not served by the fused fast path and stays interpreted; the detail
	// says which construct blocks fusion and why.
	CodeUnfusable = "unfusable"
	// CodeProveDiverge: the symbolic equivalence prover found a region of
	// the input space where the native program and its persona emulation
	// disagree (route, drop fate, or final wire image). Error severity
	// means the divergence was confirmed by replaying the witness packet
	// through both concrete paths; warn severity means the witness replay
	// could not confirm it (model imprecision or no replay harness).
	CodeProveDiverge = "prove-diverge"
	// CodeProveInconclusive: the prover could not decide a region — an
	// unmodelable construct, a witness-search budget exhaustion, or a
	// divergent summary whose replay agreed. The equivalence claim
	// excludes these regions.
	CodeProveInconclusive = "prove-inconclusive"
	// CodeFuseChainDepth: informational — a vdev's fused plan was refused
	// at build time because the worst-case pass count of its chained plans
	// (parse resubmissions, link recirculations, multicast clones) would
	// exceed the pipeline pass bound, or its virtual links form a cycle.
	// Such packets stay interpreted so the interpreter's pass-bound fault
	// fires exactly as without fusion.
	CodeFuseChainDepth = "fuse-chain-depth"
)

// Finding is one verification result.
type Finding struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	VDev     string   `json:"vdev,omitempty"`
	Table    string   `json:"table,omitempty"`
	Handle   int      `json:"handle,omitempty"`
	Detail   string   `json:"detail"`
}

func (f Finding) String() string {
	var b strings.Builder
	b.WriteString(string(f.Severity))
	b.WriteString(" [")
	b.WriteString(f.Code)
	b.WriteString("]")
	if f.VDev != "" {
		b.WriteString(" ")
		b.WriteString(f.VDev)
	}
	if f.Table != "" {
		b.WriteString(" ")
		b.WriteString(f.Table)
		if f.Handle != 0 {
			fmt.Fprintf(&b, "#%d", f.Handle)
		}
	}
	b.WriteString(": ")
	b.WriteString(f.Detail)
	return b.String()
}

// HasErrors reports whether any finding is error-severity (the admission
// gate: warnings never fail a batch).
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}

// Entry is one virtual table entry, installed or proposed, in the emulated
// program's own dialect (the same shape as dpmu.EntrySpec plus the handle).
type Entry struct {
	Handle   int
	Table    string
	Action   string
	Params   []sim.MatchParam
	Args     []bitfield.Value
	Priority int
}

// Row identifies one persona row a device owns (for tenant cross-checks
// against a raw switch dump).
type Row struct {
	Table  string
	Handle int
}

// Device is one loaded virtual device as the verifier sees it.
type Device struct {
	Name    string
	PID     int
	Comp    *hp4c.Compiled
	Entries []Entry
	Rows    []Row
}

// Link is one directed virtual link (device A's virtual egress port wired
// into device B's virtual ingress).
type Link struct {
	FromDev  string
	FromPort int
	ToDev    string
	ToPort   int
}

// Source is a verification snapshot: the persona configuration, the loaded
// devices with their virtual entries and tracked persona rows, the
// virtual-link topology, and (optionally) a raw switch dump for tenant
// checks. The DPMU exports one via VerifySource; offline tools build their
// own.
type Source struct {
	Cfg persona.Config
	// PassBound is the pipeline pass budget chains are checked against
	// (0 = sim.MaxPasses).
	PassBound int
	Devices   []Device
	Links     []Link
	Dump      *sim.SwitchDump
}

// Check runs the full verifier over a snapshot: per-device program and
// entry checks, topology analysis, and (when a dump is present) tenant
// isolation. Findings are ordered deterministically.
func Check(src *Source) []Finding {
	var out []Finding
	for i := range src.Devices {
		d := &src.Devices[i]
		for _, f := range Program(d.Comp) {
			f.VDev = d.Name
			out = append(out, f)
		}
		for _, f := range Entries(d.Comp, d.Entries) {
			f.VDev = d.Name
			out = append(out, f)
		}
	}
	out = append(out, checkTopology(src)...)
	if src.Dump != nil {
		out = append(out, checkTenancy(src)...)
		out = append(out, checkParseRows(src)...)
	}
	return out
}

// checkTopology detects virtual-network cycles and bounds the worst-case
// chain depth. Each device costs 1 pipeline pass plus one resubmission per
// parse-more hop on its deepest parse chain; crossing a link recirculates
// into the next device's first pass, so a chain's cost is the sum of its
// devices' costs. A cycle makes the depth unbounded (the pass bound is what
// finally kills the packet), so it is reported as its own finding and depth
// analysis skips the devices on it.
func checkTopology(src *Source) []Finding {
	if len(src.Devices) == 0 {
		return nil
	}
	cost := map[string]int{}
	for i := range src.Devices {
		d := &src.Devices[i]
		cost[d.Name] = 1 + parseDepth(d.Comp)
	}
	adj := map[string][]string{}
	for _, l := range src.Links {
		adj[l.FromDev] = appendUnique(adj[l.FromDev], l.ToDev)
	}
	for _, ds := range adj {
		sort.Strings(ds)
	}

	var out []Finding
	// Cycle detection: iterative DFS with colors, deterministic over sorted
	// device names. Every device on a cycle is remembered so the depth walk
	// below can skip it (its depth is unbounded by definition).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	onCycle := map[string]bool{}
	var stack []string
	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch color[m] {
			case white:
				dfs(m)
			case gray:
				// Back edge: the cycle is the stack suffix from m.
				start := 0
				for i, s := range stack {
					if s == m {
						start = i
						break
					}
				}
				cyc := append(append([]string(nil), stack[start:]...), m)
				already := true
				for _, s := range cyc {
					if !onCycle[s] {
						already = false
					}
					onCycle[s] = true
				}
				if !already {
					out = append(out, Finding{
						Code: CodeVNetCycle, Severity: SevError,
						Detail: fmt.Sprintf("virtual links form a cycle: %s (packets recirculate until the pass bound drops them)", strings.Join(cyc, " -> ")),
					})
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	names := make([]string, 0, len(src.Devices))
	for i := range src.Devices {
		names = append(names, src.Devices[i].Name)
	}
	sort.Strings(names)
	for _, n := range names {
		if color[n] == white {
			dfs(n)
		}
	}

	// Worst-case chain depth over the acyclic remainder: longest path in
	// passes, memoized. depth(n) = cost(n) + max depth(successor).
	bound := src.PassBound
	if bound <= 0 {
		bound = sim.MaxPasses
	}
	depth := map[string]int{}
	tail := map[string]string{}
	var walk func(n string) int
	walk = func(n string) int {
		if d, ok := depth[n]; ok {
			return d
		}
		d := cost[n]
		if d == 0 {
			d = 1 // linked but unloaded device: count its pass conservatively
		}
		depth[n] = d // pre-set: cycles through skipped nodes terminate
		best := 0
		for _, m := range adj[n] {
			if onCycle[m] {
				continue
			}
			if w := walk(m); w > best {
				best = w
				tail[n] = m
			}
		}
		depth[n] = d + best
		return depth[n]
	}
	worst, worstDev := 0, ""
	for _, n := range names {
		if onCycle[n] {
			continue
		}
		if d := walk(n); d > worst {
			worst, worstDev = d, n
		}
	}
	if worst > bound {
		chain := []string{worstDev}
		for n := worstDev; tail[n] != ""; n = tail[n] {
			chain = append(chain, tail[n])
		}
		out = append(out, Finding{
			Code: CodePassBound, Severity: SevError,
			Detail: fmt.Sprintf("worst-case chain %s needs %d pipeline passes, pass bound is %d", strings.Join(chain, " -> "), worst, bound),
		})
	}
	return out
}

// parseDepth returns the deepest chain of parse-more resubmissions in a
// compiled program: each a_parse_more row costs one extra pipeline pass
// before the stage pass runs.
func parseDepth(comp *hp4c.Compiled) int {
	if comp == nil {
		return 0
	}
	more := map[int][]int{}
	for _, pe := range comp.ParseEntries {
		if pe.More {
			more[pe.State] = append(more[pe.State], pe.NextState)
		}
	}
	seen := map[int]bool{}
	var deepest func(state int) int
	deepest = func(state int) int {
		if seen[state] { // defensive: compiler output has no state cycles
			return 0
		}
		seen[state] = true
		best := 0
		for _, next := range more[state] {
			if d := 1 + deepest(next); d > best {
				best = d
			}
		}
		seen[state] = false
		return best
	}
	return deepest(0)
}

// pidKeyedTables returns the persona tables whose first match param is the
// program ID — the tables the tenant-isolation invariant covers. t_assign is
// excluded: its rows are operator-owned (the PID travels in the args).
func pidKeyedTables(cfg persona.Config) map[string]bool {
	tables := map[string]bool{
		persona.TblParseCtrl: true,
		persona.TblVirtnet:   true,
		persona.TblCsum:      true,
	}
	kinds := []int{persona.NTEDExact, persona.NTEDTernary, persona.NTMetaExact, persona.NTMetaTernary, persona.NTStdMeta, persona.NTMatchless}
	for s := 1; s <= cfg.Stages; s++ {
		for _, k := range kinds {
			tables[persona.StageTable(s, persona.KindName(k))] = true
		}
		for p := 1; p <= cfg.Primitives; p++ {
			tables[persona.PrimTable(s, p, "prep")] = true
		}
	}
	return tables
}

// checkTenancy scans the raw persona dump: every row in a program-keyed
// table must carry the PID of a loaded device, and must be tracked by that
// device's bookkeeping — a row neither minted by the DPMU nor owned by its
// PID's device is a cross-tenant write (§4.5's isolation property, checked
// from the outside in).
func checkTenancy(src *Source) []Finding {
	keyed := pidKeyedTables(src.Cfg)
	owner := map[uint64]string{}
	tracked := map[Row]string{}
	for i := range src.Devices {
		d := &src.Devices[i]
		owner[uint64(d.PID)] = d.Name
		for _, r := range d.Rows {
			tracked[r] = d.Name
		}
	}
	var out []Finding
	tables := make([]string, 0, len(src.Dump.Tables))
	for name := range src.Dump.Tables {
		if keyed[name] {
			tables = append(tables, name)
		}
	}
	sort.Strings(tables)
	for _, name := range tables {
		for _, e := range src.Dump.Tables[name].Entries {
			if len(e.Params) == 0 || e.Params[0].Kind != "exact" || e.Params[0].Value.Width() != persona.ProgramWidth {
				continue
			}
			pid := e.Params[0].Value.Uint64()
			dev, known := owner[pid]
			if !known {
				out = append(out, Finding{
					Code: CodeForeignPID, Severity: SevError, Table: name, Handle: e.Handle,
					Detail: fmt.Sprintf("row carries program ID %d, which no loaded device owns", pid),
				})
				continue
			}
			if got := tracked[Row{Table: name, Handle: e.Handle}]; got != dev {
				detail := fmt.Sprintf("row carries device %s's program ID %d but is not tracked by its bookkeeping", dev, pid)
				if got != "" {
					detail = fmt.Sprintf("row carries device %s's program ID %d but is tracked by device %s", dev, pid, got)
				}
				out = append(out, Finding{
					Code: CodeForeignPID, Severity: SevError, VDev: dev, Table: name, Handle: e.Handle,
					Detail: detail,
				})
			}
		}
	}
	return out
}

// checkParseRows validates the live parse-control rows against the parse
// grid: an a_parse_more row requesting more than ParseMax bytes (or a count
// off the ParseStep grid) would loop or over-extract at runtime.
func checkParseRows(src *Source) []Finding {
	td, ok := src.Dump.Tables[persona.TblParseCtrl]
	if !ok {
		return nil
	}
	var out []Finding
	for _, e := range td.Entries {
		if e.Action != persona.ActParseMore || len(e.Args) == 0 {
			continue
		}
		n := int(e.Args[0].Uint64())
		r, fits := src.Cfg.RoundBytes(n)
		if !fits || r != n {
			out = append(out, Finding{
				Code: CodeParseBytes, Severity: SevError, Table: persona.TblParseCtrl, Handle: e.Handle,
				Detail: fmt.Sprintf("parse-more row requests %d bytes; persona supports multiples of %d up to %d (first pass %d)", n, src.Cfg.ParseStep, src.Cfg.ParseMax, src.Cfg.ParseDefault),
			})
		}
	}
	return out
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
