package prove

import (
	"reflect"
	"testing"

	"hyper4/internal/functions"
)

// TestCubeAlgebra pins the cube primitives the whole partition rests on:
// fix contradiction, conjunction, and cover.
func TestCubeAlgebra(t *testing.T) {
	c := trueCube()
	c, ok := c.fix(3, 1)
	if !ok {
		t.Fatal("fixing a free bit contradicted")
	}
	if _, ok := c.fix(3, 0); ok {
		t.Fatal("re-fixing bit 3 to the opposite value should contradict")
	}
	d, _ := trueCube().fix(5, 0)
	cd, ok := c.and(d)
	if !ok || cd.val.Bit(3) != 1 || cd.mask.Bit(5) != 1 || cd.val.Bit(5) != 0 {
		t.Fatalf("conjunction lost a constraint: %v %v", cd.val, cd.mask)
	}
	if !c.covers(cd) {
		t.Fatal("a cube must cover its own refinement")
	}
	if cd.covers(c) {
		t.Fatal("a refinement must not cover its generalization")
	}
}

// TestRegionWitness checks the cube-avoidance search: a region with
// negatives yields a point inside the positive cube and outside every
// negative, and a region whose negatives blanket it is reported empty.
func TestRegionWitness(t *testing.T) {
	const nbits = 8
	r := fullRegion()
	r.pos, _ = r.pos.fix(0, 1) // bit 0 = 1
	// Subtract "bit 1 = 0" and "bit 1 = 1, bit 2 = 0": only points with
	// bits 1 and 2 set survive.
	n1, _ := trueCube().fix(1, 0)
	n2, _ := trueCube().fix(1, 1)
	n2, _ = n2.fix(2, 0)
	r = r.subtract(n1).subtract(n2)
	budget := 10_000
	w, ok, decided := r.witness(nbits, func(int) uint { return 0 }, &budget)
	if !decided || !ok {
		t.Fatalf("witness search failed (ok=%v decided=%v)", ok, decided)
	}
	for _, bit := range []int{0, 1, 2} {
		if w.Bit(bit) != 1 {
			t.Fatalf("witness %b violates the region", w)
		}
	}

	// Blanket the region: subtracting both values of bit 0 empties it.
	e := fullRegion()
	z, _ := trueCube().fix(0, 0)
	o, _ := trueCube().fix(0, 1)
	e = e.subtract(z).subtract(o)
	budget = 10_000
	if _, ok, decided := e.witness(nbits, func(int) uint { return 0 }, &budget); !decided || ok {
		t.Fatalf("blanketed region should be decidedly empty (ok=%v decided=%v)", ok, decided)
	}
}

// TestIdentityPortRegion confirms the proof window: every witness of the
// restricted space decodes to an ingress port in [8, 16).
func TestIdentityPortRegion(t *testing.T) {
	const L = 4
	r := IdentityPortRegion(L)
	// Force each of the 3 free low port bits both ways and check the
	// decoded port stays inside the window.
	for v := 0; v < 8; v++ {
		c := r
		ok := true
		for j := 0; j < 3; j++ {
			c.pos, ok = c.pos.fix(portVar(L)+6+j, uint(v>>(2-j))&1)
			if !ok {
				t.Fatalf("identity window rejected low bits %03b", v)
			}
		}
		budget := 10_000
		w, ok, decided := c.witness(L*8+9, preferPort(L), &budget)
		if !decided || !ok {
			t.Fatalf("no witness for low bits %03b", v)
		}
		if _, port := witnessFrame(w, L); port < 8 || port > 15 {
			t.Fatalf("witness port %d escapes the identity window", port)
		}
	}
	// Port 0 (all port bits zero) must contradict the window.
	c := r
	ok := true
	for j := 0; j < 9 && ok; j++ {
		c.pos, ok = c.pos.fix(portVar(L)+j, 0)
	}
	if ok {
		t.Fatal("port 0 fits the identity window; the by-design native/persona gap would leak into proofs")
	}
}

// TestSynthesizeDeterministic: the synthesized entry program is a pure
// function of (program, seed) — `make prove-smoke` reproducibility and the
// -prove-seed flag depend on it — and never duplicates a match key (the
// native simulator would reject the row the DPMU accepts, manufacturing a
// one-sided divergence).
func TestSynthesizeDeterministic(t *testing.T) {
	prog, err := functions.Load(functions.L2Switch)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Synthesize(prog, 7), Synthesize(prog, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different entry programs")
	}
	if len(a) == 0 {
		t.Fatal("no rows synthesized")
	}
	seen := map[string]bool{}
	for _, r := range a {
		k := r.Table + "|" + paramsKey(r.Params)
		if seen[k] {
			t.Fatalf("duplicate match key synthesized in %s", r.Table)
		}
		seen[k] = true
	}
}
