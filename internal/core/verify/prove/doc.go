// Package prove is a symbolic equivalence prover for the HyPer4 emulation:
// it checks that a target P4 program and its persona emulation compute the
// same packet-in/packet-out relation over the WHOLE input space, not just
// over sampled traffic (the differential tests' job).
//
// A program is modeled as a finite set of leaves. Each leaf pairs a region
// of the symbolic input space (a positive cube plus negative cubes over the
// bits of an L-byte packet and a 9-bit ingress port) with an effect summary:
// dropped or delivered, the egress port, and the final wire image, all as
// vectors of symbolic bits (input bits, constants, or canonical operation
// terms such as field adds and the IPv4-checksum fix-up).
//
// The native frontend builds leaves from the HLIR program plus the live
// native table state (parse-graph walk, control-flow walk, one world per
// (entry, earlier-entries-miss) combination in match-precedence order). The
// persona frontend is deliberately independent of the compiler's bookkeeping:
// it decodes the persona's own installed rows — t_parse_ctrl walks, stage
// a_set_match rows, a_prep_* primitive rows (inverting the double-shift
// geometry), and the te_csum fix-up — so bugs in the hp4c/DPMU translation
// layer change the decoded model and surface as inequivalence.
//
// Comparison intersects leaf regions pairwise and compares effects bit by
// bit. A divergent region is witnessed by a concrete packet (cube-avoidance
// search) and replayed through both concrete switches: only a divergence the
// replay reproduces is reported as an error — the prover never cries wolf —
// while model/replay disagreement and unsupported constructs degrade to
// warning-severity inconclusive findings that name what was not proven.
package prove
