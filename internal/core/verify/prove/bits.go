package prove

import (
	"fmt"
	"math/big"

	"hyper4/internal/bitfield"
)

// Symbolic bit kinds. Effects are vectors of these, MSB first, mirroring the
// bitfield package's bit-0-is-MSB convention.
const (
	b0   = iota // constant 0
	b1          // constant 1
	bIn         // input bit (idx = input-vector index)
	bOp         // bit idx of the canonical operation named by key
	bTop        // unknown (key names the reason)
)

// bitVal is one symbolic bit of an effect summary.
type bitVal struct {
	k   uint8
	idx int
	key string
}

// sameBit reports whether two symbolic bits provably carry the same value.
// Unknown bits never compare equal; the caller treats them as inconclusive.
func sameBit(a, c bitVal) bool {
	if a.k != c.k {
		return false
	}
	switch a.k {
	case b0, b1:
		return true
	case bIn:
		return a.idx == c.idx
	case bOp:
		return a.key == c.key && a.idx == c.idx
	}
	return false
}

// inBits builds w input bits starting at input-vector index off.
func inBits(off, w int) []bitVal {
	out := make([]bitVal, w)
	for i := range out {
		out[i] = bitVal{k: bIn, idx: off + i}
	}
	return out
}

// constBits lowers a bitfield value (resized to w) into constant bits.
func constBits(v bitfield.Value, w int) []bitVal {
	return bigBits(v.Big(), w)
}

// bigBits lowers the low w bits of x (MSB first).
func bigBits(x *big.Int, w int) []bitVal {
	out := make([]bitVal, w)
	for i := 0; i < w; i++ {
		// out[i] is bit w-1-i of x (bit 0 of out is the MSB).
		if x.Bit(w-1-i) == 1 {
			out[i] = bitVal{k: b1}
		} else {
			out[i] = bitVal{k: b0}
		}
	}
	return out
}

// topBits builds w unknown bits tagged with a reason.
func topBits(w int, reason string) []bitVal {
	out := make([]bitVal, w)
	for i := range out {
		out[i] = bitVal{k: bTop, key: reason}
	}
	return out
}

// opBits builds the w bits of the canonical operation named by key.
func opBits(w int, key string) []bitVal {
	out := make([]bitVal, w)
	for i := range out {
		out[i] = bitVal{k: bOp, idx: i, key: key}
	}
	return out
}

// resizeBits low-aligns src to width w (truncate high bits / zero-extend),
// matching bitfield.Resize and the persona's masked-write semantics.
func resizeBits(src []bitVal, w int) []bitVal {
	if len(src) == w {
		return src
	}
	if len(src) > w {
		return src[len(src)-w:]
	}
	out := make([]bitVal, w)
	for i := 0; i < w-len(src); i++ {
		out[i] = bitVal{k: b0}
	}
	copy(out[w-len(src):], src)
	return out
}

// writeBits overwrites dst[off:off+len(src)] with src, copying dst first so
// sibling worlds sharing the slice are unaffected.
func writeBits(dst []bitVal, off int, src []bitVal) []bitVal {
	out := make([]bitVal, len(dst))
	copy(out, dst)
	copy(out[off:off+len(src)], src)
	return out
}

// bitsConst folds an all-constant bit vector to its value.
func bitsConst(bits []bitVal) (*big.Int, bool) {
	out := new(big.Int)
	for i, b := range bits {
		switch b.k {
		case b1:
			out.SetBit(out, len(bits)-1-i, 1)
		case b0:
		default:
			return nil, false
		}
	}
	return out, true
}

// baseKey names a bit vector that is a clean term: a contiguous input-bit
// run, a uniform operation, or a constant. Used to canonicalize arithmetic
// so the native and persona frontends derive identical operation keys.
func baseKey(bits []bitVal) (string, bool) {
	if len(bits) == 0 {
		return "", false
	}
	if v, ok := bitsConst(bits); ok {
		return "k:" + v.Text(16), true
	}
	switch bits[0].k {
	case bIn:
		start := bits[0].idx
		for i, b := range bits {
			if b.k != bIn || b.idx != start+i {
				return "", false
			}
		}
		return fmt.Sprintf("in[%d:%d]", start, len(bits)), true
	case bOp:
		key := bits[0].key
		for i, b := range bits {
			if b.k != bOp || b.key != key || b.idx != i {
				return "", false
			}
		}
		return "(" + key + ")", true
	}
	return "", false
}

// addBits models (cur + c) mod 2^w. Constant bases fold; symbolic bases
// become a canonical add term; anything else degrades to unknown bits with
// the given reason.
func addBits(cur []bitVal, c *big.Int, reason string) []bitVal {
	w := len(cur)
	mod := new(big.Int).Lsh(big.NewInt(1), uint(w))
	cc := new(big.Int).Mod(c, mod)
	if cc.Sign() == 0 {
		return cur
	}
	if v, ok := bitsConst(cur); ok {
		sum := new(big.Int).Add(v, cc)
		sum.Mod(sum, mod)
		return bigBits(sum, w)
	}
	if key, ok := baseKey(cur); ok {
		return opBits(w, fmt.Sprintf("add(%s+%s)%%2^%d", key, cc.Text(16), w))
	}
	return topBits(w, reason)
}

// csumKey is the canonical term for the IPv4 checksum fix-up recomputed over
// the header whose checksum field sits at the given packet bit offset. Both
// frontends derive the key from the field position alone: the checksum's
// inputs are packet bits that are compared in their own right, so position
// identity is what equivalence needs.
func csumKey(pktBitOff int) string {
	return fmt.Sprintf("csum16@%d", pktBitOff)
}

// matchBits conjoins "bits == want under mask" onto a region. It returns
// ok=false when the match is statically impossible, top=true when an unknown
// bit blocks the split. cube is the conjunction for the satisfiable case.
func matchBits(bits []bitVal, want, mask bitfield.Value) (cube Cube, ok, top bool) {
	cube = trueCube()
	w := len(bits)
	for i := 0; i < w; i++ {
		if mask.Bit(i) == 0 {
			continue
		}
		want1 := want.Bit(i) == 1
		switch bits[i].k {
		case b0:
			if want1 {
				return Cube{}, false, false
			}
		case b1:
			if !want1 {
				return Cube{}, false, false
			}
		case bIn:
			var b uint
			if want1 {
				b = 1
			}
			var fits bool
			cube, fits = cube.fix(bits[i].idx, b)
			if !fits {
				return Cube{}, false, false
			}
		default:
			return Cube{}, false, true
		}
	}
	return cube, true, false
}
