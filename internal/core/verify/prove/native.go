package prove

import (
	"fmt"
	"math/big"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// nworld is one in-flight symbolic world of the native walk: a region of the
// input space plus the full machine state along that path. Worlds are values;
// every mutation goes through a copy-on-write helper so sibling worlds stay
// untouched.
type nworld struct {
	region   Region
	inst     map[string][]bitVal // instance name -> full-width symbolic bits
	valid    map[string]bool     // header validity (metadata always readable)
	consumed int                 // packet bytes consumed by the parser
	latest   string              // most recently extracted instance
	dropped  bool                // the drop primitive ran (sticky)
	done     bool                // world finalized mid-walk (dropped/inconclusive)
	trail    []string
	inconcl  []string
}

func (w nworld) setInst(name string, bits []bitVal) nworld {
	m := make(map[string][]bitVal, len(w.inst)+1)
	for k, v := range w.inst {
		m[k] = v
	}
	m[name] = bits
	w.inst = m
	return w
}

func (w nworld) setValid(name string, v bool) nworld {
	m := make(map[string]bool, len(w.valid)+1)
	for k, b := range w.valid {
		m[k] = b
	}
	m[name] = v
	w.valid = m
	return w
}

func (w nworld) note(s string) nworld {
	t := make([]string, len(w.trail), len(w.trail)+1)
	copy(t, w.trail)
	w.trail = append(t, s)
	return w
}

func (w nworld) vague(reason string) nworld {
	t := make([]string, len(w.inconcl), len(w.inconcl)+1)
	copy(t, w.inconcl)
	w.inconcl = append(t, reason)
	return w
}

// nativeBuilder walks the HLIR program plus live native table state into a
// leaf partition.
type nativeBuilder struct {
	prog *hlir.Program
	src  TableSource
	L    int
	m    *Machine
	errs []error
}

// BuildNative models the native program over L-byte packets. The table state
// comes from src (normally the live *sim.Switch).
func BuildNative(prog *hlir.Program, src TableSource, L int) (*Machine, error) {
	b := &nativeBuilder{
		prog: prog,
		src:  src,
		L:    L,
		m:    &Machine{Name: "native", L: L, NBits: L*8 + 9},
	}
	w := nworld{
		region: fullRegion(),
		inst:   map[string][]bitVal{},
		valid:  map[string]bool{},
	}
	// Mirror the simulator's fresh-state init: everything zero except
	// ingress_port (the symbolic port), packet_length (constant L) and
	// egress_spec (the drop value).
	std := make([]bitVal, prog.Instances[hlir.StandardMetadata].Width())
	w = w.setInst(hlir.StandardMetadata, std)
	w = b.writeStd(w, hlir.FieldIngressPort, portInBits(b.L))
	w = b.writeStd(w, hlir.FieldPacketLength, bigBits(big.NewInt(int64(b.L)), 32))
	w = b.writeStd(w, hlir.FieldEgressSpec, bigBits(big.NewInt(hlir.DropSpec), 9))

	worlds := b.parse(w, "start", 0)
	if ing, ok := prog.Controls[ast.ControlIngress]; ok {
		worlds = b.runStmts(worlds, ing.Body)
	}
	worlds = b.gate(worlds)
	if eg, ok := prog.Controls[ast.ControlEgress]; ok {
		worlds = b.runStmts(worlds, eg.Body)
	}
	for _, w := range worlds {
		b.finalize(w)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return b.m, nil
}

func (b *nativeBuilder) fail(err error) { b.errs = append(b.errs, err) }

// halt finalizes a world the model cannot follow further.
func (b *nativeBuilder) halt(w nworld, reason string) {
	w = w.vague(reason)
	b.m.Leaves = append(b.m.Leaves, Leaf{
		Region:  w.region,
		Trail:   joinTrail(w.trail),
		Inconcl: w.inconcl,
	})
}

func (b *nativeBuilder) dropLeaf(w nworld) {
	b.m.Leaves = append(b.m.Leaves, Leaf{
		Region:  w.region,
		Dropped: true,
		Trail:   joinTrail(w.trail),
		Inconcl: w.inconcl,
	})
}

// ---- field access ----

func (b *nativeBuilder) fieldBits(w nworld, ref ast.FieldRef) ([]bitVal, bool) {
	if ref.Index != ast.IndexNone {
		return nil, false
	}
	inst := b.prog.Instances[ref.Instance]
	if inst == nil {
		return nil, false
	}
	off, ok := inst.Type.FieldOffset(ref.Field)
	if !ok {
		return nil, false
	}
	fd := inst.Type.Field(ref.Field)
	bits, have := w.inst[ref.Instance]
	if !have {
		// Never extracted: the simulator's pooled state zeroes buffers per
		// packet, so reads of absent instances are deterministic zeros.
		bits = make([]bitVal, inst.Width())
	}
	return bits[off : off+fd.Width], true
}

func (b *nativeBuilder) writeField(w nworld, ref ast.FieldRef, src []bitVal) (nworld, bool) {
	if ref.Index != ast.IndexNone {
		return w, false
	}
	inst := b.prog.Instances[ref.Instance]
	if inst == nil {
		return w, false
	}
	off, ok := inst.Type.FieldOffset(ref.Field)
	if !ok {
		return w, false
	}
	fd := inst.Type.Field(ref.Field)
	bits, have := w.inst[ref.Instance]
	if !have {
		bits = make([]bitVal, inst.Width())
	}
	return w.setInst(ref.Instance, writeBits(bits, off, resizeBits(src, fd.Width))), true
}

func stdRef(field string) ast.FieldRef {
	return ast.FieldRef{Instance: hlir.StandardMetadata, Index: ast.IndexNone, Field: field}
}

func (b *nativeBuilder) writeStd(w nworld, field string, src []bitVal) nworld {
	w, _ = b.writeField(w, stdRef(field), src)
	return w
}

// ---- parser ----

func (b *nativeBuilder) parse(w nworld, state string, depth int) []nworld {
	if depth > 64 {
		b.halt(w, "parse graph deeper than 64 states")
		return nil
	}
	st := b.prog.States[state]
	if st == nil {
		b.halt(w, fmt.Sprintf("unknown parser state %q", state))
		return nil
	}
	for _, ps := range st.Statements {
		if ps.Extract != nil {
			if ps.Extract.Index != ast.IndexNone {
				b.halt(w, "header stacks are outside the symbolic model")
				return nil
			}
			inst := b.prog.Instances[ps.Extract.Instance]
			if inst == nil || inst.Width()%8 != 0 {
				b.halt(w, fmt.Sprintf("cannot extract %q", ps.Extract.Instance))
				return nil
			}
			nb := inst.Width() / 8
			if w.consumed+nb > b.L {
				b.halt(w, fmt.Sprintf("extraction of %s overruns the %d-byte model", inst.Decl.Name, b.L))
				return nil
			}
			w = w.setInst(inst.Decl.Name, inBits(w.consumed*8, inst.Width()))
			w = w.setValid(inst.Decl.Name, true)
			w.latest = inst.Decl.Name
			w.consumed += nb
			continue
		}
		// set_metadata(field, value)
		fd := b.prog.Instances[ps.SetField.Instance]
		if fd == nil {
			b.halt(w, "set_metadata on unknown instance")
			return nil
		}
		decl := fd.Type.Field(ps.SetField.Field)
		if decl == nil {
			b.halt(w, "set_metadata on unknown field")
			return nil
		}
		src, ok := b.evalExpr(w, ps.SetValue, nil, decl.Width)
		if !ok {
			b.halt(w, "set_metadata value outside the symbolic model")
			return nil
		}
		w, _ = b.writeField(w, ps.SetField, src)
	}
	switch st.Return.Kind {
	case ast.ReturnDirect:
		if st.Return.State == ast.StateIngress {
			return []nworld{w}
		}
		return b.parse(w, st.Return.State, depth+1)
	case ast.ReturnSelect:
		return b.parseSelect(w, st, depth)
	}
	b.halt(w, "unknown parser return")
	return nil
}

func (b *nativeBuilder) parseSelect(w nworld, st *ast.ParserState, depth int) []nworld {
	keys := make([][]bitVal, len(st.Return.SelectKeys))
	for i, k := range st.Return.SelectKeys {
		switch {
		case k.IsCurrent:
			keys[i] = inBits(w.consumed*8+k.CurrentOffset, k.CurrentWidth)
		case k.Latest != "":
			if w.latest == "" {
				b.halt(w, "select latest.* before any extraction")
				return nil
			}
			bits, ok := b.fieldBits(w, ast.FieldRef{Instance: w.latest, Index: ast.IndexNone, Field: k.Latest})
			if !ok {
				b.halt(w, "select latest.* field not found")
				return nil
			}
			keys[i] = bits
		case k.Field != nil:
			bits, ok := b.fieldBits(w, *k.Field)
			if !ok {
				b.halt(w, "select key field not found")
				return nil
			}
			keys[i] = bits
		default:
			b.halt(w, "empty select key")
			return nil
		}
	}
	var out []nworld
	var negs []Cube
	for _, c := range st.Return.Cases {
		target := c.State
		goState := func(ww nworld) {
			if target == ast.StateIngress {
				out = append(out, ww)
			} else {
				out = append(out, b.parse(ww, target, depth+1)...)
			}
		}
		if c.Default {
			ww := w
			ww.region = w.region
			for _, n := range negs {
				ww.region = ww.region.subtract(n)
			}
			goState(ww)
			return out
		}
		cube := trueCube()
		possible := true
		for ki, bits := range keys {
			var mask *big.Int
			if ki < len(c.Masks) {
				mask = c.Masks[ki]
			}
			kc, ok, top := matchBig(bits, c.Values[ki], mask)
			if top {
				b.halt(w, fmt.Sprintf("select in state %s keys on unmodelable bits", st.Name))
				return out
			}
			if !ok {
				possible = false
				break
			}
			cube, ok = cube.and(kc)
			if !ok {
				possible = false
				break
			}
		}
		if !possible {
			continue
		}
		ww := w
		var fits bool
		ww.region, fits = w.region.constrain(cube)
		if fits {
			for _, n := range negs {
				ww.region = ww.region.subtract(n)
			}
			goState(ww.note(fmt.Sprintf("select %s", st.Name)))
		}
		negs = append(negs, cube)
	}
	// No default case and nothing matched: the simulator raises a parser
	// error, which drops the packet.
	ww := w
	for _, n := range negs {
		ww.region = ww.region.subtract(n)
	}
	b.dropLeaf(ww.note(fmt.Sprintf("select %s fell through", st.Name)))
	return out
}

// matchBig is matchBits over big.Int want/mask (mask nil = exact over the
// full width). Bit i of bits (MSB first) corresponds to want bit w-1-i.
func matchBig(bits []bitVal, want, mask *big.Int) (Cube, bool, bool) {
	w := len(bits)
	cube := trueCube()
	for i := 0; i < w; i++ {
		if mask != nil && mask.Bit(w-1-i) == 0 {
			continue
		}
		want1 := want.Bit(w-1-i) == 1
		switch bits[i].k {
		case b0:
			if want1 {
				return Cube{}, false, false
			}
		case b1:
			if !want1 {
				return Cube{}, false, false
			}
		case bIn:
			var v uint
			if want1 {
				v = 1
			}
			var fits bool
			cube, fits = cube.fix(bits[i].idx, v)
			if !fits {
				return Cube{}, false, false
			}
		default:
			return Cube{}, false, true
		}
	}
	// Want bits above the key width must be zero for a match to be possible.
	if want.BitLen() > w && mask == nil {
		return Cube{}, false, false
	}
	return cube, true, false
}

// ---- control flow ----

func (b *nativeBuilder) runStmts(ws []nworld, stmts []ast.Stmt) []nworld {
	for _, s := range stmts {
		var next []nworld
		for _, w := range ws {
			if w.done {
				next = append(next, w)
				continue
			}
			next = append(next, b.runStmt(w, s)...)
		}
		ws = next
	}
	return ws
}

func (b *nativeBuilder) runStmt(w nworld, s ast.Stmt) []nworld {
	switch s.Kind {
	case ast.StmtApply:
		return b.applyTable(w, s)
	case ast.StmtIf:
		t, f := b.condSplit(w, &s.Cond)
		out := b.runStmts(t, s.Then)
		return append(out, b.runStmts(f, s.Else)...)
	case ast.StmtCall:
		if c, ok := b.prog.Controls[s.Control]; ok {
			return b.runStmts([]nworld{w}, c.Body)
		}
		b.halt(w, fmt.Sprintf("call of unknown control %q", s.Control))
		return nil
	}
	b.halt(w, "unknown statement kind")
	return nil
}

// condSplit partitions a world by a boolean condition. Worlds the model
// cannot split are finalized as inconclusive and appear in neither side.
func (b *nativeBuilder) condSplit(w nworld, c *ast.BoolExpr) (t, f []nworld) {
	switch c.Kind {
	case ast.BoolValid:
		if c.Valid.Index != ast.IndexNone {
			b.halt(w, "valid() on a stack element")
			return nil, nil
		}
		if w.valid[c.Valid.Instance] {
			return []nworld{w}, nil
		}
		return nil, []nworld{w}
	case ast.BoolNot:
		t, f = b.condSplit(w, c.A)
		return f, t
	case ast.BoolAnd:
		ta, fa := b.condSplit(w, c.A)
		f = fa
		for _, wa := range ta {
			tb, fb := b.condSplit(wa, c.B)
			t = append(t, tb...)
			f = append(f, fb...)
		}
		return t, f
	case ast.BoolOr:
		ta, fa := b.condSplit(w, c.A)
		t = ta
		for _, wa := range fa {
			tb, fb := b.condSplit(wa, c.B)
			t = append(t, tb...)
			f = append(f, fb...)
		}
		return t, f
	case ast.BoolCmp:
		return b.cmpSplit(w, c)
	}
	b.halt(w, "unknown condition kind")
	return nil, nil
}

func (b *nativeBuilder) cmpSplit(w nworld, c *ast.BoolExpr) (t, f []nworld) {
	lw := b.exprWidth(*c.Left)
	rw := b.exprWidth(*c.Right)
	width := lw
	if rw > width {
		width = rw
	}
	if width == 0 {
		width = 64
	}
	l, okl := b.evalExpr(w, *c.Left, nil, width)
	r, okr := b.evalExpr(w, *c.Right, nil, width)
	if !okl || !okr {
		b.halt(w, "comparison operand outside the symbolic model")
		return nil, nil
	}
	lc, lConst := bitsConst(l)
	rc, rConst := bitsConst(r)
	if lConst && rConst {
		res := compareBig(lc, rc, c.Op)
		if res {
			return []nworld{w}, nil
		}
		return nil, []nworld{w}
	}
	if c.Op != ast.OpEq && c.Op != ast.OpNe {
		b.halt(w, fmt.Sprintf("ordered comparison %q on symbolic operands", c.Op))
		return nil, nil
	}
	// Normalize to symbolic == constant.
	sym, konst := l, rc
	if lConst {
		sym, konst = r, lc
	} else if !rConst {
		b.halt(w, "comparison between two symbolic operands")
		return nil, nil
	}
	cube, ok, top := matchBig(sym, konst, nil)
	if top {
		b.halt(w, "comparison on unmodelable bits")
		return nil, nil
	}
	var eqW, neW []nworld
	if !ok {
		neW = []nworld{w}
	} else {
		we := w
		var fits bool
		we.region, fits = w.region.constrain(cube)
		if fits {
			eqW = []nworld{we}
		}
		wn := w
		wn.region = w.region.subtract(cube)
		neW = []nworld{wn}
	}
	if c.Op == ast.OpEq {
		return eqW, neW
	}
	return neW, eqW
}

func compareBig(a, bb *big.Int, op ast.CmpOp) bool {
	cmp := a.Cmp(bb)
	switch op {
	case ast.OpEq:
		return cmp == 0
	case ast.OpNe:
		return cmp != 0
	case ast.OpLt:
		return cmp < 0
	case ast.OpLe:
		return cmp <= 0
	case ast.OpGt:
		return cmp > 0
	case ast.OpGe:
		return cmp >= 0
	}
	return false
}

func (b *nativeBuilder) exprWidth(e ast.Expr) int {
	if e.Kind == ast.ExprField {
		inst := b.prog.Instances[e.Field.Instance]
		if inst != nil {
			if fd := inst.Type.Field(e.Field.Field); fd != nil {
				return fd.Width
			}
		}
	}
	return 0
}

// ---- tables ----

func (b *nativeBuilder) applyTable(w nworld, s ast.Stmt) []nworld {
	decl := b.prog.Tables[s.Table]
	if decl == nil {
		b.halt(w, fmt.Sprintf("apply of unknown table %q", s.Table))
		return nil
	}
	entries, err := b.src.TableEntriesOrdered(s.Table)
	if err != nil {
		b.fail(fmt.Errorf("native table %s: %w", s.Table, err))
		return nil
	}
	// Evaluate the match key once per world.
	keyBits := make([][]bitVal, len(decl.Reads))
	for i, r := range decl.Reads {
		if r.Field != nil {
			bits, ok := b.fieldBits(w, *r.Field)
			if !ok {
				b.halt(w, fmt.Sprintf("table %s reads unresolvable field", s.Table))
				return nil
			}
			keyBits[i] = bits
		}
	}
	type branch struct {
		w      nworld
		action string
		args   []bitValFrameArg
		hit    bool
	}
	var branches []branch
	var negs []Cube
	for _, e := range entries {
		cube := trueCube()
		possible := true
		blocked := false
		for i, r := range decl.Reads {
			if i >= len(e.Params) {
				possible = false
				break
			}
			p := e.Params[i]
			if r.Match == ast.MatchValid || r.Header != nil {
				hv := false
				if r.Header != nil {
					hv = w.valid[r.Header.Instance]
				} else if r.Field != nil {
					hv = w.valid[r.Field.Instance]
				}
				if hv != p.ValidWant {
					possible = false
					break
				}
				continue
			}
			wd := len(keyBits[i])
			var want, mask *big.Int
			switch p.Kind {
			case ast.MatchExact:
				want = p.Value.Big()
			case ast.MatchTernary:
				want = new(big.Int).And(p.Value.Big(), p.Mask.Big())
				mask = p.Mask.Big()
			case ast.MatchLPM:
				want = p.Value.Big()
				mask = new(big.Int)
				for j := 0; j < p.PrefixLen && j < wd; j++ {
					mask.SetBit(mask, wd-1-j, 1)
				}
				want = new(big.Int).And(want, mask)
			default:
				b.halt(w, fmt.Sprintf("table %s uses %s matching", s.Table, p.Kind))
				return nil
			}
			kc, ok, top := matchBig(keyBits[i], want, mask)
			if top {
				blocked = true
				break
			}
			if !ok {
				possible = false
				break
			}
			cube, ok = cube.and(kc)
			if !ok {
				possible = false
				break
			}
		}
		if blocked {
			b.halt(w, fmt.Sprintf("table %s keys on unmodelable bits", s.Table))
			return nil
		}
		if !possible {
			continue
		}
		we := w
		var fits bool
		we.region, fits = w.region.constrain(cube)
		if fits {
			for _, n := range negs {
				we.region = we.region.subtract(n)
			}
			we = we.note(fmt.Sprintf("%s hit #%d->%s", s.Table, e.Handle, e.Action))
			branches = append(branches, branch{w: we, action: e.Action, args: frameArgs(e.Args), hit: true})
		}
		negs = append(negs, cube)
	}
	defAct, defArgs, err := b.src.TableDefault(s.Table)
	if err != nil {
		b.fail(fmt.Errorf("native table %s default: %w", s.Table, err))
		return nil
	}
	wd := w
	for _, n := range negs {
		wd.region = wd.region.subtract(n)
	}
	wd = wd.note(fmt.Sprintf("%s miss->%s", s.Table, defAct))
	branches = append(branches, branch{w: wd, action: defAct, args: frameArgs(defArgs), hit: false})

	var out []nworld
	for _, br := range branches {
		ws := []nworld{b.runAction(br.w, br.action, br.args)}
		for _, c := range s.ApplyCases {
			run := false
			switch {
			case c.Hit:
				run = br.hit
			case c.Miss:
				run = !br.hit
			default:
				run = c.Action == br.action
			}
			if run {
				ws = b.runStmts(ws, c.Body)
			}
		}
		out = append(out, ws...)
	}
	return out
}

// bitValFrameArg is one action argument lowered to symbolic bits at its own
// declared width.
type bitValFrameArg []bitVal

func frameArgs(args []bitfield.Value) []bitValFrameArg {
	out := make([]bitValFrameArg, len(args))
	for i, a := range args {
		out[i] = constBits(a, a.Width())
	}
	return out
}

// ---- actions and primitives ----

func (b *nativeBuilder) runAction(w nworld, name string, args []bitValFrameArg) nworld {
	if name == "" || w.done {
		return w
	}
	act := b.prog.Actions[name]
	if act == nil {
		b.halt(w, fmt.Sprintf("unknown action %q", name))
		w.done = true
		return w
	}
	frame := map[string][]bitVal{}
	for i, p := range act.Params {
		if i < len(args) {
			frame[p] = args[i]
		}
	}
	for _, call := range act.Body {
		w = b.applyPrim(w, call, frame)
		if w.done {
			return w
		}
	}
	return w
}

func (b *nativeBuilder) applyPrim(w nworld, call ast.PrimitiveCall, frame map[string][]bitVal) nworld {
	unsupported := func(reason string) nworld {
		b.halt(w, reason)
		w.done = true
		return w
	}
	switch call.Name {
	case "no_op":
		return w
	case "drop":
		w.dropped = true
		w = b.writeStd(w, hlir.FieldEgressSpec, bigBits(big.NewInt(hlir.DropSpec), 9))
		// A set dropped flag is sticky in the simulator: the packet is
		// discarded at end of pipeline no matter what runs afterwards, so
		// the world can finalize here.
		b.dropLeaf(w.note("drop"))
		w.done = true
		return w
	case "modify_field":
		if len(call.Args) < 2 || call.Args[0].Kind != ast.ExprField {
			return unsupported("modify_field with non-field destination")
		}
		dst := call.Args[0].Field
		dw := b.refWidth(dst)
		if dw == 0 {
			return unsupported("modify_field destination not found")
		}
		src, ok := b.evalExpr(w, call.Args[1], frame, dw)
		if !ok {
			return unsupported("modify_field source outside the symbolic model")
		}
		if len(call.Args) == 3 {
			mbits, ok := b.evalExpr(w, call.Args[2], frame, dw)
			if !ok {
				return unsupported("modify_field mask outside the symbolic model")
			}
			mc, isConst := bitsConst(mbits)
			if !isConst {
				return unsupported("modify_field with symbolic mask")
			}
			old, _ := b.fieldBits(w, dst)
			merged := make([]bitVal, dw)
			for i := 0; i < dw; i++ {
				if mc.Bit(dw-1-i) == 1 {
					merged[i] = src[i]
				} else {
					merged[i] = old[i]
				}
			}
			src = merged
		}
		w, ok = b.writeField(w, dst, src)
		if !ok {
			return unsupported("modify_field write failed")
		}
		return w
	case "add_to_field", "subtract_from_field":
		if len(call.Args) != 2 || call.Args[0].Kind != ast.ExprField {
			return unsupported(call.Name + " with non-field destination")
		}
		dst := call.Args[0].Field
		dw := b.refWidth(dst)
		if dw == 0 {
			return unsupported(call.Name + " destination not found")
		}
		src, ok := b.evalExpr(w, call.Args[1], frame, dw)
		if !ok {
			return unsupported(call.Name + " addend outside the symbolic model")
		}
		c, isConst := bitsConst(src)
		if !isConst {
			return unsupported(call.Name + " with symbolic addend")
		}
		if call.Name == "subtract_from_field" {
			// Canonicalize subtraction as addition of the two's complement,
			// matching the persona's prep-row encoding.
			mod := new(big.Int).Lsh(big.NewInt(1), uint(dw))
			c = new(big.Int).Mod(new(big.Int).Sub(mod, c), mod)
		}
		cur, _ := b.fieldBits(w, dst)
		w, _ = b.writeField(w, dst, addBits(cur, c, call.Name+" on non-canonical base"))
		return w
	}
	return unsupported(fmt.Sprintf("primitive %q outside the symbolic model", call.Name))
}

func (b *nativeBuilder) refWidth(ref ast.FieldRef) int {
	inst := b.prog.Instances[ref.Instance]
	if inst == nil {
		return 0
	}
	fd := inst.Type.Field(ref.Field)
	if fd == nil {
		return 0
	}
	return fd.Width
}

// evalExpr lowers an expression to symbolic bits at the given width, false
// when the expression kind is outside the model.
func (b *nativeBuilder) evalExpr(w nworld, e ast.Expr, frame map[string][]bitVal, width int) ([]bitVal, bool) {
	switch e.Kind {
	case ast.ExprConst:
		return bigBits(e.Const, width), true
	case ast.ExprField:
		bits, ok := b.fieldBits(w, e.Field)
		if !ok {
			return nil, false
		}
		return resizeBits(bits, width), true
	case ast.ExprParam:
		bits, ok := frame[e.Param]
		if !ok {
			return nil, false
		}
		return resizeBits(bits, width), true
	}
	return nil, false
}

// ---- end of pipeline ----

// gate models the end-of-ingress drop gate: egress_spec == DropSpec drops,
// anything else becomes the egress port.
func (b *nativeBuilder) gate(ws []nworld) []nworld {
	var out []nworld
	for _, w := range ws {
		if w.done {
			continue
		}
		spec, _ := b.fieldBits(w, stdRef(hlir.FieldEgressSpec))
		cube, ok, top := matchBig(spec, big.NewInt(hlir.DropSpec), nil)
		if top {
			b.halt(w, "egress_spec carries unmodelable bits at the drop gate")
			continue
		}
		if ok {
			wd := w
			var fits bool
			wd.region, fits = w.region.constrain(cube)
			if fits {
				b.dropLeaf(wd.note("egress_spec=drop"))
			}
			w.region = w.region.subtract(cube)
		}
		w = b.writeStd(w, hlir.FieldEgressPort, spec)
		out = append(out, w)
	}
	return out
}

// calcCoversHeader reports whether the named field-list calculation's input
// is the full header instance in declaration order, with the target field
// itself optionally omitted. Both forms sum the same bits: the simulator
// zeroes the target field before summing, which is also how the persona's
// fixed checksum action masks the checksum word out of its sum.
func (b *nativeBuilder) calcCoversHeader(calcName, instName, targetField string) bool {
	calc := b.prog.Calcs[calcName]
	if calc == nil {
		return false
	}
	fl := b.prog.FieldLists[calc.Input]
	inst := b.prog.Instances[instName]
	if fl == nil || inst == nil {
		return false
	}
	i := 0
	for _, fd := range inst.Type.Fields {
		if i < len(fl.Entries) {
			en := fl.Entries[i]
			if en.Field != nil && en.Field.Instance == instName && en.Field.Field == fd.Name {
				i++
				continue
			}
		}
		if fd.Name != targetField {
			return false
		}
	}
	return i == len(fl.Entries)
}

// finalize turns a delivered world into a leaf: recompute update checksums,
// lay out the wire image in deparse order, read the route.
func (b *nativeBuilder) finalize(w nworld) {
	if w.done {
		return
	}
	if w.dropped {
		b.dropLeaf(w)
		return
	}
	// Deparse offsets: cumulative bit offset of each valid instance in
	// HeaderOrder.
	emitOff := map[string]int{}
	off := 0
	for _, name := range b.prog.HeaderOrder {
		if !w.valid[name] {
			continue
		}
		emitOff[name] = off
		off += b.prog.Instances[name].Width()
	}
	if off%8 != 0 || off/8 != w.consumed {
		b.halt(w, fmt.Sprintf("deparsed headers (%d bits) differ from parsed bytes (%d)", off, w.consumed))
		return
	}
	// Update-calculated checksum fields, guarded on validity like the
	// simulator's deparse pass.
	for _, cf := range b.prog.AST.CalculatedFields {
		if cf.Update == "" {
			continue
		}
		guard := cf.Field.Instance
		if cf.IfValid != nil {
			guard = cf.IfValid.Instance
		}
		if !w.valid[guard] {
			continue
		}
		base, inEmit := emitOff[cf.Field.Instance]
		if !inEmit {
			b.halt(w, "checksum destination header is not emitted")
			return
		}
		inst := b.prog.Instances[cf.Field.Instance]
		fo, _ := inst.Type.FieldOffset(cf.Field.Field)
		fd := inst.Type.Field(cf.Field.Field)
		if fd.Width != 16 {
			b.halt(w, "non-16-bit calculated field")
			return
		}
		// The canonical checksum term is identified by position alone, which
		// is only sound when the calc input is exactly the enclosing header
		// (the IPv4 shape): anything else must not share a term with the
		// persona's fixed ten-word fix-up.
		if fo != 80 || inst.Width() != 160 || !b.calcCoversHeader(cf.Update, cf.Field.Instance, cf.Field.Field) {
			b.halt(w, "calculated field is not the IPv4 header-checksum shape")
			return
		}
		var ok bool
		w, ok = b.writeField(w, cf.Field, opBits(16, csumKey(base+fo)))
		if !ok {
			b.halt(w, "checksum field write failed")
			return
		}
	}
	pkt := make([]bitVal, 0, b.L*8)
	for _, name := range b.prog.HeaderOrder {
		if !w.valid[name] {
			continue
		}
		bits := w.inst[name]
		if bits == nil {
			bits = make([]bitVal, b.prog.Instances[name].Width())
		}
		pkt = append(pkt, bits...)
	}
	pkt = append(pkt, inBits(w.consumed*8, (b.L-w.consumed)*8)...)
	route, _ := b.fieldBits(w, stdRef(hlir.FieldEgressPort))
	b.m.Leaves = append(b.m.Leaves, Leaf{
		Region:  w.region,
		Route:   resizeBits(route, routeWidth),
		Pkt:     pkt,
		Trail:   joinTrail(w.trail),
		Inconcl: w.inconcl,
	})
}
