package prove

import (
	"hyper4/internal/core/persona"
	"hyper4/internal/p4/hlir"
)

// ModelBytes picks the modeled packet length for a program whose parse
// paths need at most maxBytes: the largest parse window the persona can
// request for it, plus payload slack so every leaf carries payload bits.
// Packets shorter than this are outside the model (the equivalence claim is
// over fixed-length packets; see DESIGN.md §16).
func ModelBytes(cfg persona.Config, maxBytes int) int {
	l := cfg.ParseDefault
	if r, ok := cfg.RoundBytes(maxBytes); ok && r > l {
		l = r
	}
	return l + 8
}

// Equivalence builds both symbolic machines — the native program over its
// live table state, and the persona decoded purely from its installed rows
// for virtual device pid — and compares them over the whole L-byte input
// space.
func Equivalence(prog *hlir.Program, cfg persona.Config, nativeSrc, personaSrc TableSource, pid, L int, opts Options) (*Result, error) {
	nm, err := BuildNative(prog, nativeSrc, L)
	if err != nil {
		return nil, err
	}
	pm, err := BuildPersona(cfg, personaSrc, pid, L)
	if err != nil {
		return nil, err
	}
	return Compare(nm, pm, opts)
}
