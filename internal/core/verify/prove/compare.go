package prove

import (
	"encoding/hex"
	"fmt"
	"sort"

	"hyper4/internal/core/verify"
	"hyper4/internal/sim"
)

// Replay runs a concrete packet through one side and returns its outputs.
type Replay func(frame []byte, port int) ([]sim.Output, error)

// Options configures a comparison run.
type Options struct {
	// VDev attributes findings to a virtual device.
	VDev string
	// ReplayNative / ReplayPersona replay a witness packet concretely.
	// With both set, a divergence is only reported at error severity when
	// the replay reproduces it — the prover never cries wolf. Without
	// them, divergences degrade to warnings.
	ReplayNative  Replay
	ReplayPersona Replay
	// MaxFindings caps reported findings (0 = 16).
	MaxFindings int
	// WitnessBudget bounds the per-region witness search in nodes
	// (0 = 50000).
	WitnessBudget int
	// Restrict, when non-nil, limits the proof to the given subset of the
	// input space (e.g. IdentityPortRegion). Leaf pairs outside it are
	// skipped.
	Restrict *Region
}

// Result is the outcome of one equivalence proof.
type Result struct {
	Findings []verify.Finding
	// Regions counts intersected leaf pairs that were actually compared.
	Regions int
	// Proven reports full equivalence: every region compared equal and
	// nothing was inconclusive.
	Proven bool
}

// Compare proves (or refutes) equivalence of two leaf partitions built over
// the same input space.
func Compare(native, emul *Machine, opts Options) (*Result, error) {
	if native.NBits != emul.NBits || native.L != emul.L {
		return nil, fmt.Errorf("prove: machines model different input spaces (%d vs %d bits)", native.NBits, emul.NBits)
	}
	maxF := opts.MaxFindings
	if maxF == 0 {
		maxF = 16
	}
	budget := opts.WitnessBudget
	if budget == 0 {
		budget = 50000
	}
	res := &Result{Proven: true}
	addFinding := func(f verify.Finding) {
		if len(res.Findings) < maxF {
			f.VDev = opts.VDev
			res.Findings = append(res.Findings, f)
		}
	}
	for _, reason := range append(native.Inconcl, emul.Inconcl...) {
		res.Proven = false
		addFinding(verify.Finding{
			Code: verify.CodeProveInconclusive, Severity: verify.SevWarn,
			Detail: reason,
		})
	}
	L := native.L
	prefer := preferPort(L)
	for _, a := range native.Leaves {
		for _, c := range emul.Leaves {
			r, ok := a.Region.and(c.Region)
			if !ok {
				continue
			}
			if opts.Restrict != nil {
				if r, ok = r.and(*opts.Restrict); !ok {
					continue
				}
			}
			res.Regions++
			if len(a.Inconcl) > 0 || len(c.Inconcl) > 0 {
				bgt := budget
				if _, found, decided := r.witness(native.NBits, prefer, &bgt); found || !decided {
					res.Proven = false
					addFinding(verify.Finding{
						Code: verify.CodeProveInconclusive, Severity: verify.SevWarn,
						Detail: fmt.Sprintf("region not proven (native: %s | persona: %s): %s",
							orDash(a.Trail), orDash(c.Trail), joinTrail(append(append([]string{}, a.Inconcl...), c.Inconcl...))),
					})
				}
				continue
			}
			if a.Dropped && c.Dropped {
				continue
			}
			diverged, forced := diffEffects(a, c)
			if !diverged {
				continue
			}
			f, proven := witnessAndConfirm(r, forced, a, c, native.NBits, L, prefer, budget, opts)
			if f != nil {
				addFinding(*f)
			}
			if !proven {
				res.Proven = false
			}
		}
	}
	return res, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// diffEffects compares two effect summaries bit by bit. It returns whether
// they diverge and, when possible, forcing cubes that pin the divergence to
// a concrete disagreeing bit (so the witness provably separates the sides).
func diffEffects(a, c Leaf) (diverged bool, forced [][]Cube) {
	if a.Dropped != c.Dropped {
		return true, nil
	}
	diff := func(x, y []bitVal) {
		n := len(x)
		if len(y) != n {
			diverged = true
			return
		}
		for i := 0; i < n; i++ {
			if sameBit(x[i], y[i]) {
				continue
			}
			diverged = true
			if cs := forceBit(x[i], y[i]); cs != nil {
				forced = append(forced, cs...)
			}
		}
	}
	diff(a.Route, c.Route)
	diff(a.Pkt, c.Pkt)
	return diverged, forced
}

// forceBit builds cube sets under which two provably-different bit values
// take different concrete values. Each inner slice is one alternative (all
// cubes of the alternative are conjoined). nil means the difference cannot
// be forced through input bits (operation terms or unknowns).
func forceBit(x, y bitVal) [][]Cube {
	constOf := func(b bitVal) (uint, bool) {
		switch b.k {
		case b0:
			return 0, true
		case b1:
			return 1, true
		}
		return 0, false
	}
	fix := func(idx int, v uint) Cube {
		cube, _ := trueCube().fix(idx, v)
		return cube
	}
	xv, xc := constOf(x)
	yv, yc := constOf(y)
	switch {
	case xc && yc:
		if xv != yv {
			return [][]Cube{{}} // divergent everywhere, no forcing needed
		}
		return nil
	case xc && y.k == bIn:
		return [][]Cube{{fix(y.idx, 1-xv)}}
	case yc && x.k == bIn:
		return [][]Cube{{fix(x.idx, 1-yv)}}
	case x.k == bIn && y.k == bIn && x.idx != y.idx:
		return [][]Cube{
			{fix(x.idx, 0), fix(y.idx, 1)},
			{fix(x.idx, 1), fix(y.idx, 0)},
		}
	}
	return nil
}

// witnessAndConfirm searches the divergent region for a concrete packet and
// replays it through both sides. Returns the finding to report (nil for a
// provably empty region) and whether the region still counts as proven.
func witnessAndConfirm(r Region, forced [][]Cube, a, c Leaf, nbits, L int, prefer func(int) uint, budget int, opts Options) (*verify.Finding, bool) {
	attempts := make([]Region, 0, len(forced)+1)
	for _, alt := range forced {
		fr := r
		ok := true
		for _, cube := range alt {
			fr, ok = fr.constrain(cube)
			if !ok {
				break
			}
		}
		if ok {
			attempts = append(attempts, fr)
		}
	}
	attempts = append(attempts, r)

	undecided := false
	for _, att := range attempts {
		bgt := budget
		assign, found, decided := att.witness(nbits, prefer, &bgt)
		if !decided {
			undecided = true
			continue
		}
		if !found {
			continue
		}
		frame, port := witnessFrame(assign, L)
		detail := fmt.Sprintf("native and persona disagree on packet %s port %d (native: %s | persona: %s)",
			hex.EncodeToString(frame), port, orDash(a.Trail), orDash(c.Trail))
		if opts.ReplayNative == nil || opts.ReplayPersona == nil {
			return &verify.Finding{
				Code: verify.CodeProveDiverge, Severity: verify.SevWarn,
				Detail: detail + "; unconfirmed: no replay harness",
			}, false
		}
		nOut, nErr := opts.ReplayNative(frame, port)
		pOut, pErr := opts.ReplayPersona(frame, port)
		if nErr != nil || pErr != nil {
			return &verify.Finding{
				Code: verify.CodeProveInconclusive, Severity: verify.SevWarn,
				Detail: fmt.Sprintf("witness replay failed (native: %v, persona: %v): %s", nErr, pErr, detail),
			}, false
		}
		if !sameOutputs(nOut, pOut) {
			return &verify.Finding{
				Code: verify.CodeProveDiverge, Severity: verify.SevError,
				Detail: detail + fmt.Sprintf("; confirmed by replay: native %s vs persona %s", fmtOutputs(nOut), fmtOutputs(pOut)),
			}, false
		}
		// The replay agrees: the symbolic summaries differ but the concrete
		// machines do not (at least on this witness) — model imprecision,
		// not a proven divergence, but the region is no longer proven equal.
		return &verify.Finding{
			Code: verify.CodeProveInconclusive, Severity: verify.SevWarn,
			Detail: "summaries diverge but replay agrees on the witness; " + detail,
		}, false
	}
	if undecided {
		return &verify.Finding{
			Code: verify.CodeProveInconclusive, Severity: verify.SevWarn,
			Detail: fmt.Sprintf("witness search budget exhausted (native: %s | persona: %s)", orDash(a.Trail), orDash(c.Trail)),
		}, false
	}
	return nil, true // every attempt proved the region empty
}

func sameOutputs(a, b []sim.Output) bool {
	ka, kb := outputKeys(a), outputKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func outputKeys(outs []sim.Output) []string {
	keys := make([]string, len(outs))
	for i, o := range outs {
		keys[i] = fmt.Sprintf("%d:%s", o.Port, hex.EncodeToString(o.Data))
	}
	sort.Strings(keys)
	return keys
}

func fmtOutputs(outs []sim.Output) string {
	if len(outs) == 0 {
		return "drop"
	}
	return joinTrail(outputKeys(outs))
}
