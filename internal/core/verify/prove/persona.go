package prove

import (
	"fmt"
	"math/big"
	"strings"

	"hyper4/internal/core/persona"
	"hyper4/internal/sim"
)

// pworld is one in-flight symbolic world of the persona walk: the persona's
// live state for one region of the input space. The walk is row-driven — it
// decodes the persona's installed table entries rather than trusting the
// compiler's bookkeeping, so translation bugs change the decoded model.
type pworld struct {
	region  Region
	ext     []bitVal // hp4d.extracted (ExtractedWidth bits)
	emeta   []bitVal // hp4d.emeta (MetaWidth bits)
	vport   []bitVal // hp4.vdev_port (VPortWidth bits)
	window  int      // current parse window in bytes
	state   uint64   // hp4.parse_state
	wb      int      // write-back byte count fixed at parse_done
	kind    int      // hp4.next_table code
	slot    uint64   // hp4.next_slot
	csum    bool
	trail   []string
	inconcl []string
}

func (w pworld) note(s string) pworld {
	t := make([]string, len(w.trail), len(w.trail)+1)
	copy(t, w.trail)
	w.trail = append(t, s)
	return w
}

type personaBuilder struct {
	cfg  persona.Config
	src  TableSource
	pid  uint64
	L    int
	ving []bitVal // vdev_ingress: the symbolic ingress port, zero-extended
	m    *Machine
	errs []error
}

// BuildPersona models the persona's emulation of virtual device pid over
// L-byte packets, assuming the identity port assignment (vdev_ingress equals
// the physical ingress port). Everything translation-dependent — the parse
// control walk, stage dispatch, primitive micro-programs and the checksum
// fix-up — is decoded from the installed rows supplied by src.
func BuildPersona(cfg persona.Config, src TableSource, pid int, L int) (*Machine, error) {
	if cfg.FixedParser {
		return nil, fmt.Errorf("prove: fixed-parser personas are not supported")
	}
	b := &personaBuilder{
		cfg:  cfg,
		src:  src,
		pid:  uint64(pid),
		L:    L,
		ving: resizeBits(portInBits(L), persona.VPortWidth),
		m:    &Machine{Name: "persona", L: L, NBits: L*8 + 9},
	}
	if L < cfg.ParseDefault {
		return nil, fmt.Errorf("prove: modeled length %d is below the persona's default parse window %d", L, cfg.ParseDefault)
	}
	w := pworld{
		region: fullRegion(),
		emeta:  make([]bitVal, persona.MetaWidth),
		vport:  make([]bitVal, persona.VPortWidth),
		window: cfg.ParseDefault,
	}
	b.parseStep(w, 0)
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return b.m, nil
}

func (b *personaBuilder) fail(err error) { b.errs = append(b.errs, err) }

func (b *personaBuilder) halt(w pworld, reason string) {
	t := make([]string, len(w.inconcl), len(w.inconcl)+1)
	copy(t, w.inconcl)
	b.m.Leaves = append(b.m.Leaves, Leaf{
		Region:  w.region,
		Trail:   joinTrail(w.trail),
		Inconcl: append(t, reason),
	})
}

func (b *personaBuilder) dropLeaf(w pworld) {
	b.m.Leaves = append(b.m.Leaves, Leaf{
		Region:  w.region,
		Dropped: true,
		Trail:   joinTrail(w.trail),
		Inconcl: w.inconcl,
	})
}

// rows returns a table's entries in match-precedence order, filtered to
// those whose leading exact parameters equal keys.
func (b *personaBuilder) rows(table string, keys ...uint64) ([]*sim.Entry, error) {
	all, err := b.src.TableEntriesOrdered(table)
	if err != nil {
		return nil, err
	}
	var out []*sim.Entry
	for _, e := range all {
		if len(e.Params) < len(keys) {
			continue
		}
		match := true
		for i, k := range keys {
			v, ok := exactParam(e.Params[i])
			if !ok || v.Cmp(new(big.Int).SetUint64(k)) != 0 {
				match = false
				break
			}
		}
		if match {
			out = append(out, e)
		}
	}
	return out, nil
}

func exactParam(p sim.MatchParam) (*big.Int, bool) {
	if p.Kind != "exact" {
		return nil, false
	}
	return p.Value.Big(), true
}

func argU64(e *sim.Entry, i int) (uint64, bool) {
	if i >= len(e.Args) {
		return 0, false
	}
	v := e.Args[i].Big()
	if !v.IsUint64() {
		return 0, false
	}
	return v.Uint64(), true
}

// extWindow is the extracted-data proxy for a parse window: packet bits up
// to window bytes, zeros above (byte 0 anchored at the MSB end).
func (b *personaBuilder) extWindow(window int) []bitVal {
	ew := b.cfg.ExtractedWidth()
	out := make([]bitVal, ew)
	copy(out, inBits(0, window*8))
	return out
}

// gridWindow mirrors the persona parser's start-state select: an exact
// supported byte count extracts that count, anything else falls through to
// the default window.
func (b *personaBuilder) gridWindow(numbytes uint64) int {
	for _, n := range b.cfg.ByteCounts() {
		if uint64(n) == numbytes {
			return n
		}
	}
	return b.cfg.ParseDefault
}

// ---- parse control ----

func (b *personaBuilder) parseStep(w pworld, iter int) {
	if iter > 40 {
		b.halt(w, "parse-control loop exceeded 40 resubmissions")
		return
	}
	if w.window > b.L {
		b.halt(w, fmt.Sprintf("parse window %d bytes overruns the %d-byte model", w.window, b.L))
		return
	}
	ext := b.extWindow(w.window)
	rows, err := b.rows(persona.TblParseCtrl, b.pid, w.state)
	if err != nil {
		b.fail(fmt.Errorf("persona %s: %w", persona.TblParseCtrl, err))
		return
	}
	var negs []Cube
	for _, e := range rows {
		if len(e.Params) != 3 || e.Params[2].Kind != "ternary" {
			b.halt(w, fmt.Sprintf("%s row %d has an unexpected shape", persona.TblParseCtrl, e.Handle))
			return
		}
		want := new(big.Int).And(e.Params[2].Value.Big(), e.Params[2].Mask.Big())
		cube, ok, top := matchBig(ext, want, e.Params[2].Mask.Big())
		if top {
			b.halt(w, fmt.Sprintf("%s row %d keys on unmodelable bits", persona.TblParseCtrl, e.Handle))
			return
		}
		if !ok {
			continue
		}
		we := w
		var fits bool
		we.region, fits = w.region.constrain(cube)
		if fits {
			for _, n := range negs {
				we.region = we.region.subtract(n)
			}
			b.parseRow(we, e, iter)
		}
		negs = append(negs, cube)
	}
	// Parse-control miss: next_table stays Done, the virtual port stays
	// zero, and the virtual network drops the unclaimed packet.
	wm := w
	for _, n := range negs {
		wm.region = wm.region.subtract(n)
	}
	b.dropLeaf(wm.note("parse-ctrl miss"))
}

func (b *personaBuilder) parseRow(w pworld, e *sim.Entry, iter int) {
	switch e.Action {
	case persona.ActParseMore:
		numbytes, ok1 := argU64(e, 0)
		pstate, ok2 := argU64(e, 1)
		if !ok1 || !ok2 {
			b.halt(w, fmt.Sprintf("a_parse_more row %d has malformed args", e.Handle))
			return
		}
		w.window = b.gridWindow(numbytes)
		w.state = pstate
		b.parseStep(w.note(fmt.Sprintf("parse more->%dB state %d", w.window, pstate)), iter+1)
	case persona.ActParseDone:
		kind, ok1 := argU64(e, 0)
		slot, ok2 := argU64(e, 1)
		csum, ok3 := argU64(e, 2)
		if !ok1 || !ok2 || !ok3 {
			b.halt(w, fmt.Sprintf("a_parse_done row %d has malformed args", e.Handle))
			return
		}
		w.ext = b.extWindow(w.window)
		w.wb = w.window
		w.kind = int(kind)
		w.slot = slot
		w.csum = csum != 0
		b.stageWalk(w.note(fmt.Sprintf("parse done %dB", w.window)), 1)
	default:
		b.halt(w, fmt.Sprintf("%s row %d runs unexpected action %q", persona.TblParseCtrl, e.Handle, e.Action))
	}
}

// ---- stage walk ----

func (b *personaBuilder) stageWalk(w pworld, stage int) {
	if w.kind == persona.NTDone || stage > b.cfg.Stages {
		b.finish(w)
		return
	}
	kindName := persona.KindName(w.kind)
	if kindName == "" {
		b.halt(w, fmt.Sprintf("unknown next-table code %d", w.kind))
		return
	}
	table := persona.StageTable(stage, kindName)
	rows, err := b.rows(table, b.pid, w.slot)
	if err != nil {
		b.fail(fmt.Errorf("persona %s: %w", table, err))
		return
	}
	var negs []Cube
	for _, e := range rows {
		cube, ok, top := b.stageMatch(w, kindName, e)
		if top {
			b.halt(w, fmt.Sprintf("%s row %d keys on unmodelable bits", table, e.Handle))
			return
		}
		if !ok {
			continue
		}
		we := w
		var fits bool
		we.region, fits = w.region.constrain(cube)
		if fits {
			for _, n := range negs {
				we.region = we.region.subtract(n)
			}
			b.stageHit(we.note(fmt.Sprintf("%s hit #%d", table, e.Handle)), stage, e)
		}
		negs = append(negs, cube)
	}
	// A stage miss leaves next_table/next_slot untouched: the same virtual
	// table is retried at the next physical stage.
	wm := w
	for _, n := range negs {
		wm.region = wm.region.subtract(n)
	}
	b.stageWalk(wm, stage+1)
}

// stageMatch builds the region constraint for one stage row against the
// world's symbolic state.
func (b *personaBuilder) stageMatch(w pworld, kindName string, e *sim.Entry) (Cube, bool, bool) {
	ternAt := func(i int, bits []bitVal) (Cube, bool, bool) {
		if i >= len(e.Params) || e.Params[i].Kind != "ternary" {
			return Cube{}, false, true
		}
		mask := e.Params[i].Mask.Big()
		want := new(big.Int).And(e.Params[i].Value.Big(), mask)
		return matchBig(bits, want, mask)
	}
	switch kindName {
	case "ed_exact", "ed_ternary":
		return ternAt(2, w.ext)
	case "meta_exact", "meta_ternary":
		return ternAt(2, w.emeta)
	case "stdmeta":
		c1, ok, top := ternAt(2, b.ving)
		if !ok || top {
			return Cube{}, ok, top
		}
		c2, ok, top := ternAt(3, w.vport)
		if !ok || top {
			return Cube{}, ok, top
		}
		cube, fits := c1.and(c2)
		return cube, fits, false
	case "matchless":
		return trueCube(), true, false
	}
	return Cube{}, false, true
}

// stageHit decodes a_set_match and runs the bound primitive micro-program.
func (b *personaBuilder) stageHit(w pworld, stage int, e *sim.Entry) {
	if e.Action != persona.ActSetMatch {
		b.halt(w, fmt.Sprintf("stage row %d runs unexpected action %q", e.Handle, e.Action))
		return
	}
	mid, ok1 := argU64(e, 0)
	nprims, ok2 := argU64(e, 1)
	nkind, ok3 := argU64(e, 2)
	nslot, ok4 := argU64(e, 3)
	if !ok1 || !ok2 || !ok3 || !ok4 || nprims > uint64(b.cfg.Primitives) {
		b.halt(w, fmt.Sprintf("a_set_match row %d has malformed args", e.Handle))
		return
	}
	for p := 1; p <= int(nprims); p++ {
		prep, err := b.rows(persona.PrimTable(stage, p, "prep"), b.pid, mid)
		if err != nil {
			b.fail(fmt.Errorf("persona prep: %w", err))
			return
		}
		if len(prep) != 1 {
			b.halt(w, fmt.Sprintf("match %d expects one prep row in %s, found %d", mid, persona.PrimTable(stage, p, "prep"), len(prep)))
			return
		}
		var dropped bool
		w, dropped = b.applyPrim(w, prep[0])
		if dropped {
			// a_exec_drop is sticky: the packet bypasses the virtual
			// network no matter what runs afterwards.
			b.dropLeaf(w.note("virtual drop"))
			return
		}
		if w.ext == nil {
			return // applyPrim already finalized an inconclusive leaf
		}
	}
	w.kind = int(nkind)
	w.slot = nslot
	b.stageWalk(w, stage+1)
}

// ---- primitive decode ----

// applyPrim inverts one prep row's double-shift geometry back into a field
// effect and applies it. A nil ext in the returned world means the world was
// finalized as inconclusive.
func (b *personaBuilder) applyPrim(w pworld, e *sim.Entry) (pworld, bool) {
	op := strings.TrimPrefix(e.Action, "a_prep_")
	bad := func(reason string) (pworld, bool) {
		b.halt(w, fmt.Sprintf("prep row %d (%s): %s", e.Handle, e.Action, reason))
		w.ext = nil
		return w, false
	}
	ew := b.cfg.ExtractedWidth()
	arg := func(i int) *big.Int {
		if i >= len(e.Args) {
			return nil
		}
		return e.Args[i].Big()
	}
	argInt := func(i int) (int, bool) {
		v, ok := argU64(e, i)
		return int(v), ok
	}
	// store picks the destination/source wide field by op suffix.
	store := func(ed bool) ([]bitVal, int) {
		if ed {
			return w.ext, ew
		}
		return w.emeta, persona.MetaWidth
	}
	writeStore := func(ed bool, bits []bitVal) {
		if ed {
			w.ext = bits
		} else {
			w.emeta = bits
		}
	}
	// decodeDst inverts (dmask, dshift) into a field position within the
	// destination store.
	decodeDst := func(dmask *big.Int, dshift, total int) (off, width int, ok bool) {
		m := new(big.Int).Mod(dmask, new(big.Int).Lsh(big.NewInt(1), uint(total)))
		if m.Sign() == 0 {
			return 0, 0, false
		}
		a := lowestSetBit(m)
		run := new(big.Int).Rsh(m, uint(a))
		width = run.BitLen()
		allOnes := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(width)), big.NewInt(1))
		if run.Cmp(allOnes) != 0 || dshift != a {
			return 0, 0, false
		}
		return total - a - width, width, true
	}

	switch op {
	case "no_op":
		return w, false
	case "drop":
		w.vport = bigBits(big.NewInt(persona.VPortDrop), persona.VPortWidth)
		return w, true
	case "mod_vport_const":
		c := arg(0)
		if c == nil {
			return bad("missing cval")
		}
		w.vport = bigBits(c, persona.VPortWidth)
		return w, false
	case "mod_vport_vingress":
		w.vport = b.ving
		return w, false
	case "mod_ed_const", "mod_meta_const":
		ed := op == "mod_ed_const"
		dmask := arg(0)
		dshift, ok := argInt(1)
		c := arg(2)
		if dmask == nil || !ok || c == nil {
			return bad("missing const-op args")
		}
		dst, total := store(ed)
		off, width, ok := decodeDst(dmask, dshift, total)
		if !ok {
			return bad("destination mask is not a contiguous run at dshift")
		}
		writeStore(ed, writeBits(dst, off, bigBits(c, width)))
		return w, false
	case "mod_ed_ed", "mod_ed_meta", "mod_meta_ed", "mod_meta_meta":
		dstED := op == "mod_ed_ed" || op == "mod_ed_meta"
		srcED := op == "mod_ed_ed" || op == "mod_meta_ed"
		dmask := arg(0)
		dshift, ok1 := argInt(1)
		slshift, ok2 := argInt(2)
		srshift, ok3 := argInt(3)
		if dmask == nil || !ok1 || !ok2 || !ok3 {
			return bad("missing copy-op args")
		}
		dst, dtotal := store(dstED)
		off, width, ok := decodeDst(dmask, dshift, dtotal)
		if !ok {
			return bad("destination mask is not a contiguous run at dshift")
		}
		src, stotal := store(srcED)
		srcW := ew - srshift
		srcOff := slshift - (ew - stotal)
		if srcW <= 0 || srcOff < 0 || srcOff+srcW > stotal {
			return bad("source shifts decode outside the store")
		}
		val := resizeBits(src[srcOff:srcOff+srcW], width)
		writeStore(dstED, writeBits(dst, off, val))
		return w, false
	case "add_ed_const", "add_meta_const":
		ed := op == "add_ed_const"
		dmask := arg(0)
		dshift, ok1 := argInt(1)
		slshift, ok2 := argInt(2)
		srshift, ok3 := argInt(3)
		c := arg(4)
		if dmask == nil || !ok1 || !ok2 || !ok3 || c == nil {
			return bad("missing add-op args")
		}
		dst, total := store(ed)
		off, width, ok := decodeDst(dmask, dshift, total)
		if !ok {
			return bad("destination mask is not a contiguous run at dshift")
		}
		if ew-srshift != width || slshift-(ew-total) != off {
			return bad("add-op source shifts disagree with the destination mask")
		}
		cur := dst[off : off+width]
		writeStore(ed, writeBits(dst, off, addBits(cur, c, "add on non-canonical base")))
		return w, false
	}
	return bad("unknown primitive opcode")
}

// ---- egress and finalization ----

// finish applies the checksum fix-up and splits the world by the virtual
// port's fate: 0 (unclaimed) and VPortDrop drop, anything else delivers.
func (b *personaBuilder) finish(w pworld) {
	if w.wb == 0 {
		// Parsing never completed; unreachable via parseRow, defensive.
		b.dropLeaf(w)
		return
	}
	if w.csum {
		var ok bool
		w, ok = b.applyCsum(w)
		if !ok {
			return
		}
	}
	pkt := make([]bitVal, 0, b.L*8)
	pkt = append(pkt, w.ext[:w.wb*8]...)
	pkt = append(pkt, inBits(w.wb*8, (b.L-w.wb)*8)...)

	vc, isConst := bitsConst(w.vport)
	if isConst {
		if vc.Sign() == 0 || vc.Int64() == persona.VPortDrop {
			b.dropLeaf(w.note("vport drop"))
			return
		}
		b.deliver(w, pkt)
		return
	}
	for _, dropVal := range []int64{0, persona.VPortDrop} {
		cube, ok, top := matchBig(w.vport, big.NewInt(dropVal), nil)
		if top {
			b.halt(w, "virtual port carries unmodelable bits")
			return
		}
		if !ok {
			continue
		}
		wd := w
		var fits bool
		wd.region, fits = w.region.constrain(cube)
		if fits {
			b.dropLeaf(wd.note(fmt.Sprintf("vport=%d drop", dropVal)))
		}
		w.region = w.region.subtract(cube)
	}
	b.deliver(w, pkt)
}

func (b *personaBuilder) deliver(w pworld, pkt []bitVal) {
	b.m.Leaves = append(b.m.Leaves, Leaf{
		Region:  w.region,
		Route:   resizeBits(w.vport, routeWidth),
		Pkt:     pkt,
		Trail:   joinTrail(w.trail),
		Inconcl: w.inconcl,
	})
}

// applyCsum decodes the te_csum row's shift geometry and replaces the
// checksum field with the canonical fix-up term.
func (b *personaBuilder) applyCsum(w pworld) (pworld, bool) {
	rows, err := b.rows(persona.TblCsum, b.pid)
	if err != nil {
		b.fail(fmt.Errorf("persona %s: %w", persona.TblCsum, err))
		w.ext = nil
		return w, false
	}
	if len(rows) == 0 {
		// Flag set but no fix-up row installed: the checksum is simply not
		// recomputed. Row-driven decode keeps that observable.
		return w.note("csum flag set but no te_csum row"), true
	}
	e := rows[0]
	ew := b.cfg.ExtractedWidth()
	ncmask := new(big.Int)
	if len(e.Args) > 0 {
		ncmask = e.Args[0].Big()
	}
	shift0, ok1 := argU64(e, 1)
	cshift, ok2 := argU64(e, 2)
	if !ok1 || !ok2 {
		b.halt(w, fmt.Sprintf("te_csum row %d has malformed args", e.Handle))
		w.ext = nil
		return w, false
	}
	csumBit := ew - 16 - int(cshift)
	hdrBit := ew - 16 - int(shift0)
	// The fix-up hard-codes the IPv4 layout: ten 16-bit words starting at
	// the header, checksum as word five (bit offset 80).
	if csumBit < 0 || csumBit+16 > ew || hdrBit < 0 || csumBit != hdrBit+80 {
		b.halt(w, fmt.Sprintf("te_csum row %d shifts decode to a non-IPv4 geometry", e.Handle))
		w.ext = nil
		return w, false
	}
	wantMask := new(big.Int)
	for i := 0; i < ew; i++ {
		if i < csumBit || i >= csumBit+16 {
			wantMask.SetBit(wantMask, ew-1-i, 1)
		}
	}
	if ncmask.Cmp(wantMask) != 0 {
		b.halt(w, fmt.Sprintf("te_csum row %d mask disagrees with its shifts", e.Handle))
		w.ext = nil
		return w, false
	}
	w.ext = writeBits(w.ext, csumBit, opBits(16, csumKey(csumBit)))
	return w, true
}
