package prove

import (
	"math/big"
	"strings"

	"hyper4/internal/bitfield"
	"hyper4/internal/sim"
)

// routeWidth is the width effects carry the egress decision at: the persona's
// virtual port width, into which the native 9-bit egress spec zero-extends.
const routeWidth = 16

// Leaf is one region of the input space with its effect summary.
type Leaf struct {
	Region  Region
	Dropped bool
	Route   []bitVal // routeWidth bits; meaningful when !Dropped
	Pkt     []bitVal // L*8 bits of final wire image; meaningful when !Dropped
	Trail   string   // human-readable decision trail for findings
	Inconcl []string // reasons this leaf's summary is imprecise
}

// Machine is one side's complete leaf partition.
type Machine struct {
	Name    string
	L       int // packet bytes modeled
	NBits   int // input vector: L*8 packet bits + 9 ingress-port bits
	Leaves  []Leaf
	Inconcl []string // constructs the frontend could not model at all
}

// portVar returns the input-vector index of the ingress port's MSB.
func portVar(L int) int { return L * 8 }

// portInBits is the 9-bit ingress port as input bits, MSB first.
func portInBits(L int) []bitVal { return inBits(portVar(L), 9) }

// TableSource supplies live table state; *sim.Switch satisfies it.
type TableSource interface {
	TableEntriesOrdered(name string) ([]*sim.Entry, error)
	TableDefault(name string) (string, []bitfield.Value, error)
}

// witnessFrame decodes a solved input assignment into a frame and a port.
func witnessFrame(assign *big.Int, L int) ([]byte, int) {
	frame := make([]byte, L)
	for p := 0; p < L*8; p++ {
		if assign.Bit(p) == 1 {
			frame[p/8] |= 1 << (7 - p%8)
		}
	}
	port := 0
	for j := 0; j < 9; j++ {
		port = port<<1 | int(assign.Bit(L*8+j))
	}
	return frame, port
}

// preferPort steers free input bits toward port 1 and zero payload so
// witnesses land on ports a replay harness typically has mapped.
func preferPort(L int) func(int) uint {
	lsb := L*8 + 8
	return func(i int) uint {
		if i == lsb {
			return 1
		}
		return 0
	}
}

// IdentityPortRegion restricts the input space to ingress ports 8..15: the
// window the proof harness maps one-to-one through the persona (vport ==
// physical port). Port 0 is excluded by design — a native program delivers on
// port 0 while the persona reserves vport 0 for "unclaimed" traffic and drops
// it — and ports outside the assignment window would diverge for assignment
// reasons rather than translation bugs.
func IdentityPortRegion(L int) Region {
	r := fullRegion()
	base := portVar(L)
	for j := 0; j < 5; j++ { // port bits 8..4 = 0
		r.pos, _ = r.pos.fix(base+j, 0)
	}
	r.pos, _ = r.pos.fix(base+5, 1) // port bit 3 = 1 → ports 8..15
	return r
}

func joinTrail(parts []string) string { return strings.Join(parts, "; ") }
