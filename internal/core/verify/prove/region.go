package prove

import "math/big"

// Cube is a partial assignment of the symbolic input vector: for every bit i
// with the mask bit set, input bit i must equal the value bit. An empty mask
// is the whole space.
type Cube struct {
	val, mask *big.Int
}

func trueCube() Cube { return Cube{new(big.Int), new(big.Int)} }

func (c Cube) clone() Cube {
	return Cube{new(big.Int).Set(c.val), new(big.Int).Set(c.mask)}
}

// fix constrains input bit i to b, reporting false on contradiction.
func (c Cube) fix(i int, b uint) (Cube, bool) {
	if c.mask.Bit(i) == 1 {
		return c, c.val.Bit(i) == b
	}
	out := c.clone()
	out.mask.SetBit(out.mask, i, 1)
	out.val.SetBit(out.val, i, b)
	return out, true
}

// and conjoins two cubes, reporting false when they contradict.
func (c Cube) and(o Cube) (Cube, bool) {
	if !c.compatible(o) {
		return Cube{}, false
	}
	return Cube{
		new(big.Int).Or(c.val, o.val),
		new(big.Int).Or(c.mask, o.mask),
	}, true
}

// compatible reports whether the cubes agree on their shared fixed bits.
func (c Cube) compatible(o Cube) bool {
	t := new(big.Int).Xor(c.val, o.val)
	t.And(t, c.mask)
	t.And(t, o.mask)
	return t.Sign() == 0
}

// covers reports whether every point of o lies in c (c's fixed bits are a
// subset of o's, with agreeing values).
func (c Cube) covers(o Cube) bool {
	t := new(big.Int).AndNot(c.mask, o.mask)
	if t.Sign() != 0 {
		return false
	}
	return c.compatible(o)
}

// Region is a positive cube minus a union of negative cubes.
type Region struct {
	pos  Cube
	negs []Cube
}

func fullRegion() Region { return Region{pos: trueCube()} }

// and intersects two regions; false means the positive cubes already
// contradict (definitely empty). A true result may still denote an empty set
// once the negative cubes are accounted for — witness decides that.
func (r Region) and(o Region) (Region, bool) {
	pos, ok := r.pos.and(o.pos)
	if !ok {
		return Region{}, false
	}
	negs := make([]Cube, 0, len(r.negs)+len(o.negs))
	negs = append(negs, r.negs...)
	negs = append(negs, o.negs...)
	return Region{pos: pos, negs: negs}, true
}

// constrain conjoins a cube onto the positive side.
func (r Region) constrain(c Cube) (Region, bool) {
	pos, ok := r.pos.and(c)
	if !ok {
		return Region{}, false
	}
	return Region{pos: pos, negs: r.negs}, true
}

// subtract adds a negative cube (the region loses the points matching c).
func (r Region) subtract(c Cube) Region {
	negs := make([]Cube, 0, len(r.negs)+1)
	negs = append(negs, r.negs...)
	negs = append(negs, c)
	return Region{pos: r.pos, negs: negs}
}

// witness searches for a concrete assignment of nbits input bits inside the
// region. prefer supplies the value for bits the region leaves free (the
// caller uses it to steer toward replayable ingress ports). The third result
// is false when the node budget ran out before the search was decided.
func (r Region) witness(nbits int, prefer func(int) uint, budget *int) (*big.Int, bool, bool) {
	return solveCubes(r.pos, r.negs, nbits, prefer, budget)
}

func solveCubes(pos Cube, negs []Cube, nbits int, prefer func(int) uint, budget *int) (*big.Int, bool, bool) {
	*budget--
	if *budget < 0 {
		return nil, false, false
	}
	// Keep only negatives that can still exclude points of pos; a negative
	// covering all of pos empties the region.
	live := negs[:0:0]
	for _, n := range negs {
		if !n.compatible(pos) {
			continue
		}
		if n.covers(pos) {
			return nil, false, true
		}
		live = append(live, n)
	}
	if len(live) == 0 {
		out := new(big.Int).And(pos.val, pos.mask)
		for i := 0; i < nbits; i++ {
			if pos.mask.Bit(i) == 0 && prefer(i) == 1 {
				out.SetBit(out, i, 1)
			}
		}
		return out, true, true
	}
	// Branch on a bit the first live negative fixes but pos leaves free.
	n := live[0]
	free := new(big.Int).AndNot(n.mask, pos.mask)
	b := lowestSetBit(free)
	avoid := 1 - n.val.Bit(b)
	order := []uint{avoid, n.val.Bit(b)}
	if prefer(b) != avoid {
		order[0], order[1] = order[1], order[0]
	}
	for _, v := range order {
		p2, ok := pos.fix(b, v)
		if !ok {
			continue
		}
		if out, found, decided := solveCubes(p2, live, nbits, prefer, budget); found || !decided {
			return out, found, decided
		}
	}
	return nil, false, true
}

func lowestSetBit(x *big.Int) int {
	for i := 0; ; i++ {
		if x.Bit(i) == 1 {
			return i
		}
	}
}
