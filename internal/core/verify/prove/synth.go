package prove

import (
	"fmt"
	"math/rand"
	"strings"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/sim"
)

// Row is one synthesized table entry, in native terms. Callers install it
// into the native switch directly and translate it for the DPMU; prove
// itself never installs anything.
type Row struct {
	Table    string
	Action   string
	Params   []sim.MatchParam
	Args     []bitfield.Value
	Priority int
}

// Synthesize builds a small deterministic entry program for prog: two to
// four entries per declared table, random matches, action arguments drawn
// from the 1..8 port range so synthesized routes stay deliverable under the
// identity port mapping the prover's replay harness installs.
func Synthesize(prog *hlir.Program, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	var out []Row
	for _, name := range prog.TableOrder {
		tbl := prog.Tables[name]
		if len(tbl.Actions) == 0 {
			continue
		}
		// The DPMU folds LPM prefix lengths into the persona's single
		// additive priority, which preserves native precedence only when the
		// caller priority is uniform across the table (the native order is
		// lexicographic: priority first, then prefix length). Synthesized
		// programs stay inside that envelope.
		hasLPM := false
		for _, r := range tbl.Reads {
			if r.Match == ast.MatchLPM {
				hasLPM = true
			}
		}
		// The native simulator rejects duplicate match keys; keep each
		// synthesized key unique so the program installs on both sides.
		used := map[string]bool{}
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			action := tbl.Actions[rng.Intn(len(tbl.Actions))]
			act := prog.Actions[action]
			if act == nil {
				continue
			}
			params := make([]sim.MatchParam, len(tbl.Reads))
			ok := true
			for pi, r := range tbl.Reads {
				if r.Match == ast.MatchValid || r.Header != nil {
					params[pi] = sim.Valid(rng.Intn(2) == 1)
					continue
				}
				w, err := prog.FieldWidth(*r.Field)
				if err != nil {
					ok = false
					break
				}
				v := synthValue(rng, w)
				switch r.Match {
				case ast.MatchExact:
					params[pi] = sim.Exact(v)
				case ast.MatchTernary:
					params[pi] = sim.Ternary(v, synthValue(rng, w))
				case ast.MatchLPM:
					params[pi] = sim.LPM(v, rng.Intn(w+1))
				default:
					ok = false
				}
			}
			if !ok || used[paramsKey(params)] {
				continue
			}
			used[paramsKey(params)] = true
			args := make([]bitfield.Value, len(act.Params))
			for ai := range args {
				args[ai] = bitfield.FromUint(9, uint64(1+rng.Intn(8)))
			}
			prio := 1 + rng.Intn(8)
			if hasLPM {
				prio = 1
			}
			out = append(out, Row{
				Table:    name,
				Action:   action,
				Params:   params,
				Args:     args,
				Priority: prio,
			})
		}
	}
	return out
}

func paramsKey(params []sim.MatchParam) string {
	var b strings.Builder
	for _, p := range params {
		fmt.Fprintf(&b, "%s/%s/%s/%d/%t;", p.Kind, p.Value.Big().Text(16), p.Mask.Big().Text(16), p.PrefixLen, p.ValidWant)
	}
	return b.String()
}

func synthValue(rng *rand.Rand, width int) bitfield.Value {
	b := make([]byte, (width+7)/8)
	rng.Read(b)
	return bitfield.FromBytes(width, b)
}
