package verify

import (
	"fmt"

	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
)

// Program checks a compiled entry program for internal consistency and
// persona-configuration fit, independent of any installed entries:
//
//   - the parse requirement must fit the persona's byte grid,
//   - every slot successor must resolve to a real slot (a dangling
//     successor strands traffic in a stage that matches nothing),
//   - every action a slot dispatches on must be compiled,
//   - every compiled primitive must bind a constant or a real parameter,
//   - the artifact must reference only persona tables/actions the
//     configured persona declares (hp4c.Validate).
//
// hp4c.Compile runs these itself and refuses to emit a failing artifact, so
// on a healthy toolchain Program returns nil; it earns its keep on mutated,
// hand-built, or version-skewed artifacts (and as the DPMU's load gate).
func Program(comp *hp4c.Compiled) []Finding {
	if comp == nil {
		return []Finding{{Code: CodeUndeclaredTable, Severity: SevError, Detail: "no compiled program"}}
	}
	var out []Finding
	cfg := comp.Cfg

	if comp.MaxBytes > cfg.ParseMax {
		out = append(out, Finding{
			Code: CodeParseBytes, Severity: SevError,
			Detail: fmt.Sprintf("program parses %d bytes, persona extracts at most %d", comp.MaxBytes, cfg.ParseMax),
		})
	}
	for i, pe := range comp.ParseEntries {
		if !pe.More {
			continue
		}
		if r, ok := cfg.RoundBytes(pe.NumBytes); !ok || r != pe.NumBytes {
			out = append(out, Finding{
				Code: CodeParseBytes, Severity: SevError,
				Detail: fmt.Sprintf("parse entry %d requests %d bytes, off the persona's %d-byte grid (max %d)", i, pe.NumBytes, cfg.ParseStep, cfg.ParseMax),
			})
		}
	}

	// Slot successors: collect the live (kind, ID) set, then check every
	// edge. Kind == persona.NTDone is the compiler's terminal successor
	// (stage emulation ends there).
	type slotKey struct{ kind, id int }
	live := map[slotKey]bool{}
	for _, s := range comp.SlotList {
		live[slotKey{s.Kind, s.ID}] = true
	}
	resolve := func(s hp4c.Succ) bool {
		if s.Kind == persona.NTDone {
			return true
		}
		return live[slotKey{s.Kind, s.ID}]
	}
	for _, s := range comp.SlotList {
		if s.Stage > cfg.Stages {
			out = append(out, Finding{
				Code: CodePersona, Severity: SevError, Table: s.Table,
				Detail: fmt.Sprintf("slot %d placed at stage %d, persona has %d stages", s.ID, s.Stage, cfg.Stages),
			})
		}
		if !resolve(s.Miss) {
			out = append(out, Finding{
				Code: CodeUnreachable, Severity: SevError, Table: s.Table,
				Detail: fmt.Sprintf("slot %d miss successor (kind %d, slot %d) matches no compiled slot", s.ID, s.Miss.Kind, s.Miss.ID),
			})
		}
		for action, next := range s.Next {
			if _, ok := comp.Actions[action]; !ok {
				out = append(out, Finding{
					Code: CodeUndeclaredAction, Severity: SevError, Table: s.Table,
					Detail: fmt.Sprintf("slot %d dispatches on action %q, which the program does not compile", s.ID, action),
				})
			}
			if !resolve(next) {
				out = append(out, Finding{
					Code: CodeUnreachable, Severity: SevError, Table: s.Table,
					Detail: fmt.Sprintf("slot %d successor for action %q (kind %d, slot %d) matches no compiled slot", s.ID, action, next.Kind, next.ID),
				})
			}
		}
		if s.MissAction != "" {
			if _, ok := comp.Actions[s.MissAction]; !ok {
				out = append(out, Finding{
					Code: CodeUndeclaredAction, Severity: SevError, Table: s.Table,
					Detail: fmt.Sprintf("slot %d default action %q is not compiled", s.ID, s.MissAction),
				})
			}
		}
	}

	for name, ca := range comp.Actions {
		if len(ca.Prims) > cfg.Primitives {
			out = append(out, Finding{
				Code: CodeArity, Severity: SevError,
				Detail: fmt.Sprintf("action %s compiles to %d primitives, persona executes at most %d per stage", name, len(ca.Prims), cfg.Primitives),
			})
		}
		for i, p := range ca.Prims {
			// Only const-operand opcodes bind a constant or a parameter;
			// field copies and operand-less prims carry ArgIndex −1.
			needsOperand := false
			switch p.Op {
			case persona.OpModVPortConst, persona.OpModEDConst, persona.OpModMetaConst, persona.OpAddEDConst, persona.OpAddMetaConst:
				needsOperand = true
			}
			bad := p.ArgIndex >= len(ca.Params) ||
				(needsOperand && p.Const == nil && p.ArgIndex < 0)
			if bad {
				out = append(out, Finding{
					Code: CodeArity, Severity: SevError,
					Detail: fmt.Sprintf("action %s primitive %d binds parameter %d, action has %d", name, i, p.ArgIndex, len(ca.Params)),
				})
			}
		}
	}

	// Persona-declaration fit: the compiled rows must target tables and
	// actions the configured persona actually generates.
	for _, d := range hp4c.Validate(comp) {
		out = append(out, Finding{
			Code: CodePersona, Severity: SevError, Table: d.Entry,
			Detail: d.Msg,
		})
	}
	sortFindings(out)
	return out
}
