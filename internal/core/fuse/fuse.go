// Package fuse compiles a loaded virtual device's installed persona entries
// into a per-vdev dispatch plan that internal/sim's fast-path hook executes
// without interpreting the persona program (DESIGN.md §13).
//
// The persona pays an emulation tax on every packet: a resubmitting parse
// loop, a table lookup per stage×primitive, and wide-bitfield action bodies
// executed one interpreted primitive at a time. All of that is statically
// determined by the installed entries, so the fuser flattens it once per
// control-plane write: parse decisions become a precomputed row scan, each
// virtual table's multi-row persona encoding becomes one fused keyed lookup,
// and each compound action becomes a pre-decoded micro-op sequence run
// against pooled scratch bitfields with no per-pass allocation.
//
// Plans link across vdevs: a walk that reaches an a_virt_fwd route jumps
// straight into the target vdev's plan (a fresh parse loop and stage walk
// on the deparsed bytes, exactly as the interpreter's recirculation would),
// and an a_mcast_start route expands into its precomputed clone sequence,
// one chained walk per leaf. Chain depth is bounded at build time against
// sim.MaxPasses — a chain the interpreter would fault on refuses to fuse,
// so the fault still fires.
//
// Correctness is anchored on conservation: the fused walk records exactly
// the entry hits, meter executions, and counter bumps the interpreted
// pipeline would have produced, and any construct the plan cannot prove
// equivalent (undecodable rows, unfused chain members, quarantine probing,
// stale generations) declines the packet to the interpreter untouched. The
// differential harness (dpmu's TestFused* suite, `make fuse-diff`)
// enforces byte-identical behavior.
package fuse

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/persona"
	"hyper4/internal/core/verify"
	"hyper4/internal/p4/ast"
	"hyper4/internal/sim"
)

// MaxPorts is the physical ingress port space (9-bit, matching t_assign).
const MaxPorts = 512

// meterInstances mirrors the persona's MeterIngress/CounterVDev instance
// count; a PID at or past it would fault in the interpreter's policing
// action, so such a vdev is never fused.
const meterInstances = 256

// VDev names one loaded virtual device the builder should try to fuse.
type VDev struct {
	Name string
	PID  int
}

// Engine is a compiled set of per-vdev plans plus the physical-port
// dispatch derived from t_assign. It implements sim.FastHandler. An engine
// is immutable after Build; staleness is detected by comparing the
// switch generation it was built against (see RunFast).
type Engine struct {
	gen   uint64
	ew    int
	plans map[int]*plan
	ports []portBind
	pool  sync.Pool

	// hits counts packets fully handled by this engine (since Build);
	// declined packets don't count. Operator-visible via the ctl fuse read.
	hits atomic.Uint64
}

// Hits reports how many packets this engine fully processed since it was
// built.
func (eng *Engine) Hits() uint64 { return eng.hits.Load() }

// portBind is the fused t_assign row for one physical ingress port.
type portBind struct {
	plan     *plan
	vingress uint64
	assign   *sim.Entry
}

// plan is one vdev's fused dispatch state.
type plan struct {
	pid          int
	name         string
	defaultBytes int
	counts       map[int]bool // the persona parser's supported byte counts
	// Persona-static rows shared across plans (keyed by byte count).
	normBy   map[int]*sim.Entry
	resizeBy map[int]*sim.Entry
	wbBy     map[int]*sim.Entry
	parse    []parseRow
	vdrop0   *sim.Entry // the (pid, vport=0) drop row, hit on parse misses and parse-more passes
	slots    map[uint32]*fusedSlot
	vnet     map[uint64]*vnetRow
	csum     *csumPlan
	csumBad  bool // a csum row exists but could not be decoded: decline packets that set the csum flag
	// chain is the set of PIDs a packet entering this plan can visit
	// (including this one), across virtual links and multicast steps.
	// RunFast declines when any member is quarantined: containment
	// accounting belongs to the interpreter.
	chain []int
	// retained records, per persona table, the handles of every live row
	// this plan decoded. Prove mode rebuilds the vdev's symbolic machine
	// from exactly these rows and requires it equivalent to the machine
	// built from the full live tables — a plan that silently skipped a row
	// diverges.
	retained map[string]map[int]bool
}

// retain records that a live row was absorbed into the plan.
func (p *plan) retain(table string, handle int) {
	m := p.retained[table]
	if m == nil {
		m = map[int]bool{}
		p.retained[table] = m
	}
	m[handle] = true
}

// parseRow is one decoded t_parse_ctrl entry for this vdev, in match
// precedence order.
type parseRow struct {
	state     uint64
	val, mask bitfield.Value
	entry     *sim.Entry
	more      bool
	numBytes  int // a_parse_more: bytes to request on the resubmit pass
	nextState uint64
	kind, id  int // a_parse_done: first stage slot
	csum      bool
}

// Fused match kinds (collapsed from the persona's six stage-table kinds:
// exact rows are ternary rows with an all-ones mask by install time).
const (
	matchED = iota
	matchMeta
	matchStd
	matchNone
)

// fusedSlot is one virtual table: the rows of its persona stage table that
// belong to this vdev and slot, in match precedence order.
type fusedSlot struct {
	stage int // the persona stage the slot's rows are installed in
	kind  int
	rows  []*frow
}

// frow is one decoded virtual entry: its match key, the micro-op sequence
// of its pre-bound action, its successor, and every persona entry the
// interpreter would have hit applying it (set_match + per-primitive
// prep/exec rows).
type frow struct {
	val, mask                      bitfield.Value // matchED / matchMeta
	vinVal, vinMask, vpVal, vpMask uint64         // matchStd
	ops                            []microOp
	nextKind, nextID               int
	hits                           []*sim.Entry
}

// vnet row kinds.
const (
	vnetDrop = iota
	vnetPhys
	vnetVirt  // virtual link: the walk chains into the target vdev's plan
	vnetMcast // multicast start: the walk expands the precomputed clone sequence
)

type vnetRow struct {
	entry *sim.Entry
	kind  int
	port  int // vnetPhys

	// vnetVirt and vnetMcast: the decoded first target. For multicast this
	// is the device the original (recirculated) copy enters; steps carries
	// the remaining targets in clone order. A route whose target plan is
	// unresolved at link time (target vdev not fused) or whose sequence
	// could not be decoded (bad=true) declines at runtime.
	nextPID int
	nextVIn uint64
	target  *plan
	bad     bool
	orig    *sim.Entry  // vnetMcast: the t_mcast_orig a_mcast_clone row the original pass hits
	steps   []mcastStep // vnetMcast: targets 1..N-1, one per egress-to-egress clone
}

// mcastStep is one decoded t_mcast_clone row: the clone that hits it
// recirculates into (pid, vin) after re-arming the next clone (if any).
type mcastStep struct {
	pid    int
	vin    uint64
	entry  *sim.Entry
	target *plan // linked after all plans are built
}

// csumPlan is the decoded per-vdev a_ipv4_csum row: the bit offset of the
// IPv4 header within the extracted-data field.
type csumPlan struct {
	entry    *sim.Entry
	hoffBits int
}

// Micro-op kinds.
const (
	mopNop = iota
	mopDrop
	mopVPortConst
	mopVPortVIngress
	mopSet  // dst[off,w) = zext(cval)
	mopCopy // dst[off,w) = zext/trunc of src[off,w)
	mopAdd  // dst[off,w) += cval mod 2^w (w <= 64 enforced at build)
)

// microOp is one pre-decoded primitive execution.
type microOp struct {
	kind             int
	dstMeta, srcMeta bool
	dstOff, dstW     int
	srcOff, srcW     int
	cval             uint64
}

// shared holds the persona-static and cross-vdev tables decoded once per
// Build.
type shared struct {
	normBy, resizeBy, wbBy map[int]*sim.Entry
	assign                 []*sim.Entry
	parse                  []*sim.Entry
	virtnet                []*sim.Entry
	csum                   []*sim.Entry
	mcastOrig              map[uint64]*sim.Entry  // t_mcast_orig rows by sequence
	mcastClone             map[uint64]*sim.Entry  // t_mcast_clone rows by sequence
	stageRows              []map[int][]*sim.Entry // 1-based stage → kind code → rows
	preps                  map[uint64]*sim.Entry  // prepKey(stage, prim, pid, mid)
	execs                  map[uint64]*sim.Entry  // execKey(stage, prim, opcode)
	sessionOK              func(int) bool         // mirror-session existence (clone spawn condition)
}

func prepKey(stage, prim int, pid, mid uint64) uint64 {
	return uint64(stage)<<56 | uint64(prim)<<48 | pid<<32 | mid
}

func execKey(stage, prim int, code uint64) uint64 {
	return uint64(stage)<<24 | uint64(prim)<<16 | code
}

func slotKey(kind int, id uint64) uint32 { return uint32(kind)<<16 | uint32(id&0xffff) }

func unfusable(vdev, table string, handle int, format string, args ...any) verify.Finding {
	return verify.Finding{
		Code:     verify.CodeUnfusable,
		Severity: verify.SevInfo,
		VDev:     vdev,
		Table:    table,
		Handle:   handle,
		Detail:   fmt.Sprintf(format, args...),
	}
}

// Build compiles fused plans for the given vdevs against the switch's
// current table state. It returns the engine (nil when nothing could be
// fused) and informational findings explaining, per vdev, what blocks
// fusion or which constructs stay interpreted. Build only reads — it must
// be called from the control plane (the DPMU holds its own lock), never
// from the data path.
func Build(sw *sim.Switch, cfg persona.Config, vdevs []VDev) (*Engine, []verify.Finding) {
	var findings []verify.Finding
	if cfg.FixedParser {
		findings = append(findings, unfusable("", "", 0,
			"fixed-parser persona: the fast path only fuses the programmable byte-stack parser"))
		return nil, findings
	}
	ew := cfg.ExtractedWidth()
	eng := &Engine{
		gen:   sw.Generation(),
		ew:    ew,
		plans: map[int]*plan{},
		ports: make([]portBind, MaxPorts),
	}
	eng.pool.New = func() any { return newExecState(ew) }
	sh, err := loadShared(sw, cfg)
	if err != nil {
		findings = append(findings, unfusable("", "", 0, "persona introspection failed: %v", err))
		return nil, findings
	}
	sh.sessionOK = func(session int) bool {
		_, ok := sw.MirrorPort(session)
		return ok
	}
	for _, vd := range vdevs {
		p, fs := buildPlan(cfg, sh, vd)
		findings = append(findings, fs...)
		if p != nil {
			eng.plans[vd.PID] = p
		}
	}
	// Resolve cross-plan routes and bound every chain's worst-case pass
	// count against the interpreter's budget; plans that would exceed it
	// (or sit on a link cycle) are refused here, before port binding.
	findings = append(findings, linkPlans(eng, sim.MaxPasses)...)
	// Fuse t_assign into a direct port dispatch: for each physical port,
	// the first assign row in precedence order that matches it.
	for port := 0; port < MaxPorts; port++ {
		for _, e := range sh.assign {
			if e.Action != persona.ActSetProgram || len(e.Params) != 1 || len(e.Args) != 2 {
				continue
			}
			val, mask, ok := ternaryUint(e.Params[0])
			if !ok || uint64(port)&mask != val {
				continue
			}
			pid := int(e.Args[0].Uint64())
			eng.ports[port] = portBind{
				plan:     eng.plans[pid],
				vingress: e.Args[1].Uint64(),
				assign:   e,
			}
			break
		}
	}
	if len(eng.plans) == 0 {
		return nil, findings
	}
	// Debug/CI plan validation: prove each plan's retained rows induce the
	// same packet relation as the full live tables (prove.go).
	if proveMode.Load() {
		findings = append(findings, provePlans(sw, cfg, eng)...)
	}
	return eng, findings
}

// Plans reports how many vdevs the engine fused.
func (eng *Engine) Plans() int { return len(eng.plans) }

// Fused reports whether the given PID has a fused plan.
func (eng *Engine) Fused(pid int) bool { return eng.plans[pid] != nil }

// BuiltAgainst returns the switch generation the engine was compiled from.
func (eng *Engine) BuiltAgainst() uint64 { return eng.gen }

func loadShared(sw *sim.Switch, cfg persona.Config) (*shared, error) {
	sh := &shared{
		normBy:   map[int]*sim.Entry{},
		resizeBy: map[int]*sim.Entry{},
		wbBy:     map[int]*sim.Entry{},
		preps:    map[uint64]*sim.Entry{},
		execs:    map[uint64]*sim.Entry{},
	}
	byCount := func(table string, nameFor func(int) string, into map[int]*sim.Entry) error {
		rows, err := sw.TableEntriesOrdered(table)
		if err != nil {
			return err
		}
		for _, e := range rows {
			if len(e.Params) != 1 {
				continue
			}
			n := int(e.Params[0].Value.Uint64())
			if e.Action == nameFor(n) {
				into[n] = e
			}
		}
		return nil
	}
	if err := byCount(persona.TblNorm, persona.NormAction, sh.normBy); err != nil {
		return nil, err
	}
	if err := byCount(persona.TblResize, persona.ResizeAction, sh.resizeBy); err != nil {
		return nil, err
	}
	if err := byCount(persona.TblWriteback, persona.WritebackAction, sh.wbBy); err != nil {
		return nil, err
	}
	var err error
	if sh.assign, err = sw.TableEntriesOrdered(persona.TblAssign); err != nil {
		return nil, err
	}
	if sh.parse, err = sw.TableEntriesOrdered(persona.TblParseCtrl); err != nil {
		return nil, err
	}
	if sh.virtnet, err = sw.TableEntriesOrdered(persona.TblVirtnet); err != nil {
		return nil, err
	}
	if sh.csum, err = sw.TableEntriesOrdered(persona.TblCsum); err != nil {
		return nil, err
	}
	bySeq := func(table string) (map[uint64]*sim.Entry, error) {
		rows, err := sw.TableEntriesOrdered(table)
		if err != nil {
			return nil, err
		}
		out := make(map[uint64]*sim.Entry, len(rows))
		for _, e := range rows {
			if len(e.Params) != 1 {
				continue
			}
			seq := e.Params[0].Value.Uint64()
			if _, dup := out[seq]; !dup { // first row wins, like exact lookup
				out[seq] = e
			}
		}
		return out, nil
	}
	if sh.mcastOrig, err = bySeq(persona.TblMcastOrig); err != nil {
		return nil, err
	}
	if sh.mcastClone, err = bySeq(persona.TblMcastClone); err != nil {
		return nil, err
	}
	sh.stageRows = make([]map[int][]*sim.Entry, cfg.Stages+1)
	for i := 1; i <= cfg.Stages; i++ {
		sh.stageRows[i] = map[int][]*sim.Entry{}
		for _, k := range persona.StageKinds {
			rows, err := sw.TableEntriesOrdered(persona.StageTable(i, k.Name))
			if err != nil {
				return nil, err
			}
			sh.stageRows[i][k.Code] = rows
		}
		for prim := 1; prim <= cfg.Primitives; prim++ {
			preps, err := sw.TableEntriesOrdered(persona.PrimTable(i, prim, "prep"))
			if err != nil {
				return nil, err
			}
			for _, e := range preps {
				if len(e.Params) != 2 {
					continue
				}
				pid := e.Params[0].Value.Uint64()
				mid := e.Params[1].Value.Uint64()
				k := prepKey(i, prim, pid, mid)
				if _, dup := sh.preps[k]; !dup {
					sh.preps[k] = e
				}
			}
			execs, err := sw.TableEntriesOrdered(persona.PrimTable(i, prim, "exec"))
			if err != nil {
				return nil, err
			}
			for _, e := range execs {
				if len(e.Params) != 1 {
					continue
				}
				code := e.Params[0].Value.Uint64()
				if e.Action == execName(code) {
					sh.execs[execKey(i, prim, code)] = e
				}
			}
		}
	}
	return sh, nil
}

func execName(code uint64) string {
	for _, op := range persona.Opcodes {
		if uint64(op.Code) == code {
			return "a_exec_" + op.Name
		}
	}
	return ""
}

// buildPlan fuses one vdev. A nil plan means the vdev stays fully
// interpreted; the findings say why. A non-nil plan may still carry
// per-construct runtime fallbacks (virtual links, multicast), reported as
// findings too.
func buildPlan(cfg persona.Config, sh *shared, vd VDev) (*plan, []verify.Finding) {
	var findings []verify.Finding
	fail := func(table string, handle int, format string, args ...any) (*plan, []verify.Finding) {
		return nil, append(findings, unfusable(vd.Name, table, handle, format, args...))
	}
	if vd.PID <= 0 || vd.PID >= meterInstances {
		return fail("", 0, "pid %d outside the policing meter instance range", vd.PID)
	}
	ew := cfg.ExtractedWidth()
	pid := uint64(vd.PID)
	p := &plan{
		pid:          vd.PID,
		name:         vd.Name,
		defaultBytes: cfg.ParseDefault,
		counts:       map[int]bool{},
		normBy:       sh.normBy,
		resizeBy:     sh.resizeBy,
		wbBy:         sh.wbBy,
		slots:        map[uint32]*fusedSlot{},
		vnet:         map[uint64]*vnetRow{},
		retained:     map[string]map[int]bool{},
	}
	for _, n := range cfg.ByteCounts() {
		p.counts[n] = true
	}

	for _, e := range sh.parse {
		if len(e.Params) != 3 || e.Params[0].Value.Uint64() != pid {
			continue
		}
		val, mask, ok := ternaryValue(e.Params[2], ew)
		if !ok {
			return fail(persona.TblParseCtrl, e.Handle, "parse row match is not an %d-bit exact/ternary key", ew)
		}
		pr := parseRow{state: e.Params[1].Value.Uint64(), val: val, mask: mask, entry: e}
		switch e.Action {
		case persona.ActParseMore:
			if len(e.Args) != 2 {
				return fail(persona.TblParseCtrl, e.Handle, "a_parse_more arity")
			}
			pr.more = true
			pr.numBytes = int(e.Args[0].Uint64())
			pr.nextState = e.Args[1].Uint64()
		case persona.ActParseDone:
			if len(e.Args) != 3 {
				return fail(persona.TblParseCtrl, e.Handle, "a_parse_done arity")
			}
			pr.kind = int(e.Args[0].Uint64())
			pr.id = int(e.Args[1].Uint64())
			pr.csum = e.Args[2].Uint64() == 1
		default:
			return fail(persona.TblParseCtrl, e.Handle, "unexpected parse action %q", e.Action)
		}
		p.parse = append(p.parse, pr)
		p.retain(persona.TblParseCtrl, e.Handle)
	}

	for _, e := range sh.virtnet {
		if len(e.Params) != 2 || e.Params[0].Value.Uint64() != pid {
			continue
		}
		vp := e.Params[1].Value.Uint64()
		vr := &vnetRow{entry: e}
		switch e.Action {
		case persona.ActVDrop:
			vr.kind = vnetDrop
		case persona.ActPhysFwd:
			if len(e.Args) != 1 {
				return fail(persona.TblVirtnet, e.Handle, "a_phys_fwd arity")
			}
			vr.kind = vnetPhys
			vr.port = int(e.Args[0].Uint64())
		case persona.ActVirtFwd:
			if len(e.Args) != 3 {
				return fail(persona.TblVirtnet, e.Handle, "a_virt_fwd arity")
			}
			vr.kind = vnetVirt
			vr.nextPID = int(e.Args[0].Uint64())
			vr.nextVIn = e.Args[1].Uint64()
		case persona.ActMcastStart:
			if len(e.Args) != 4 {
				return fail(persona.TblVirtnet, e.Handle, "a_mcast_start arity")
			}
			vr.kind = vnetMcast
			vr.nextPID = int(e.Args[0].Uint64())
			vr.nextVIn = e.Args[1].Uint64()
			orig, steps, err := decodeMcast(sh, e.Args[2].Uint64())
			if err != nil {
				vr.bad = true
				findings = append(findings, unfusable(vd.Name, persona.TblVirtnet, e.Handle,
					"vport %d multicast sequence stays interpreted: %v", vp, err))
			} else {
				vr.orig, vr.steps = orig, steps
			}
		default:
			return fail(persona.TblVirtnet, e.Handle, "unexpected virtnet action %q", e.Action)
		}
		if _, dup := p.vnet[vp]; !dup {
			p.vnet[vp] = vr
		}
		if vp == 0 && vr.kind == vnetDrop && p.vdrop0 == nil {
			p.vdrop0 = e
		}
	}
	if p.vdrop0 == nil {
		return fail(persona.TblVirtnet, 0, "no (pid, vport=0) drop row: vdev not fully assigned")
	}

	for _, e := range sh.csum {
		if len(e.Params) != 1 || e.Params[0].Value.Uint64() != pid {
			continue
		}
		p.retain(persona.TblCsum, e.Handle)
		cp, err := decodeCsum(e, ew)
		if err != nil {
			p.csumBad = true
			findings = append(findings, unfusable(vd.Name, persona.TblCsum, e.Handle,
				"checksum row stays interpreted: %v", err))
			continue
		}
		if p.csum == nil && !p.csumBad {
			p.csum = cp
		}
	}

	for i := 1; i <= cfg.Stages; i++ {
		for kind, rows := range sh.stageRows[i] {
			for _, e := range rows {
				if len(e.Params) < 2 || e.Params[0].Value.Uint64() != pid {
					continue
				}
				id := e.Params[1].Value.Uint64()
				key := slotKey(kind, id)
				fs := p.slots[key]
				if fs == nil {
					fs = &fusedSlot{stage: i, kind: fusedKind(kind)}
					p.slots[key] = fs
				} else if fs.stage != i {
					return fail(persona.StageTable(i, persona.KindName(kind)), e.Handle,
						"slot %d installed in stages %d and %d", id, fs.stage, i)
				}
				fr, err := decodeStageRow(cfg, sh, e, kind, i, pid, ew, p.retain)
				if err != nil {
					return fail(persona.StageTable(i, persona.KindName(kind)), e.Handle, "%v", err)
				}
				p.retain(persona.StageTable(i, persona.KindName(kind)), e.Handle)
				fs.rows = append(fs.rows, fr)
			}
		}
	}
	return p, findings
}

// decodeMcast expands an a_mcast_start row's clone sequence by walking the
// t_mcast_orig and t_mcast_clone rows the interpreter's egress would hit:
// the original pass hits the orig row (raising clone 1), clone k hits the
// step row keyed by its inherited sequence (raising clone k+1 until the
// last step). Every clone session must have a mirror mapping — without one
// the interpreter counts the clone but never spawns it, a shape the fused
// expansion does not model.
func decodeMcast(sh *shared, seq uint64) (*sim.Entry, []mcastStep, error) {
	orig := sh.mcastOrig[seq]
	if orig == nil || orig.Action != persona.ActMcastClone || len(orig.Args) != 1 {
		return nil, nil, fmt.Errorf("no decodable %s row for sequence %d", persona.ActMcastClone, seq)
	}
	if !sh.sessionOK(int(orig.Args[0].Uint64())) {
		return nil, nil, fmt.Errorf("clone session %d has no mirror mapping", orig.Args[0].Uint64())
	}
	var steps []mcastStep
	seen := map[uint64]bool{seq: true}
	cur := seq
	for {
		e := sh.mcastClone[cur]
		if e == nil {
			return nil, nil, fmt.Errorf("no step row for sequence %d", cur)
		}
		switch e.Action {
		case persona.ActMcastStep:
			if len(e.Args) != 4 {
				return nil, nil, fmt.Errorf("%s arity %d", persona.ActMcastStep, len(e.Args))
			}
			if !sh.sessionOK(int(e.Args[3].Uint64())) {
				return nil, nil, fmt.Errorf("clone session %d has no mirror mapping", e.Args[3].Uint64())
			}
			steps = append(steps, mcastStep{pid: int(e.Args[0].Uint64()), vin: e.Args[1].Uint64(), entry: e})
			next := e.Args[2].Uint64()
			if seen[next] {
				return nil, nil, fmt.Errorf("multicast sequence cycles at %d", next)
			}
			seen[next] = true
			cur = next
		case persona.ActMcastLast:
			if len(e.Args) != 2 {
				return nil, nil, fmt.Errorf("%s arity %d", persona.ActMcastLast, len(e.Args))
			}
			steps = append(steps, mcastStep{pid: int(e.Args[0].Uint64()), vin: e.Args[1].Uint64(), entry: e})
			return orig, steps, nil
		default:
			return nil, nil, fmt.Errorf("unexpected step action %q", e.Action)
		}
	}
}

// costUnbounded marks a plan on a virtual-link cycle: its worst-case pass
// count has no static bound (the interpreter's pass-bound fault is what
// stops such packets).
const costUnbounded = int(^uint(0) >> 1)

// linkPlans resolves every cross-plan route against the built plan set,
// bounds each plan's worst-case total pass count (parse resubmissions plus
// chained walks plus multicast clones) against the interpreter's budget,
// and precomputes the reachable-PID chain used for quarantine checks. Plans
// whose bound is exceeded — or which sit on a link cycle — are refused with
// an informational chain-depth finding: their packets stay interpreted, so
// the interpreter's pass-bound fault fires exactly as without fusion.
func linkPlans(eng *Engine, maxPasses int) []verify.Finding {
	for _, p := range eng.plans {
		for _, vr := range p.vnet {
			switch vr.kind {
			case vnetVirt:
				vr.target = eng.plans[vr.nextPID]
			case vnetMcast:
				if vr.bad {
					continue
				}
				vr.target = eng.plans[vr.nextPID]
				for i := range vr.steps {
					vr.steps[i].target = eng.plans[vr.steps[i].pid]
				}
			}
		}
	}

	// Worst-case total passes, memoized over the link graph. An in-progress
	// revisit is a cycle: the cost saturates. Unresolved targets contribute
	// nothing — their packets decline at runtime before any side effect.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	memo := map[*plan]int{}
	state := map[*plan]int{}
	// add saturates just past the bound so finite-but-too-deep chains stay
	// distinguishable from cycles.
	add := func(a, b int) int {
		if a == costUnbounded || b == costUnbounded {
			return costUnbounded
		}
		if s := a + b; s <= maxPasses+1 {
			return s
		}
		return maxPasses + 1
	}
	var cost func(p *plan) int
	cost = func(p *plan) int {
		switch state[p] {
		case visiting:
			return costUnbounded
		case done:
			return memo[p]
		}
		state[p] = visiting
		c := walkPasses(p)
		extra := 0
		for _, vr := range p.vnet {
			rc := 0
			switch {
			case vr.kind == vnetVirt && vr.target != nil:
				rc = cost(vr.target)
			case vr.kind == vnetMcast && !vr.bad && vr.target != nil:
				rc = add(len(vr.steps), cost(vr.target)) // one pass per clone
				for i := range vr.steps {
					if t := vr.steps[i].target; t != nil {
						rc = add(rc, cost(t))
					}
				}
			}
			if rc > extra {
				extra = rc
			}
		}
		state[p] = done
		memo[p] = add(c, extra)
		return memo[p]
	}

	var findings []verify.Finding
	pids := make([]int, 0, len(eng.plans))
	for pid := range eng.plans {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p := eng.plans[pid]
		c := cost(p)
		if c <= maxPasses {
			continue
		}
		if c == costUnbounded {
			findings = append(findings, verify.Finding{
				Code: verify.CodeFuseChainDepth, Severity: verify.SevInfo, VDev: p.name,
				Detail: fmt.Sprintf("virtual links reachable from %s form a cycle; packets stay interpreted so the %d-pass bound faults them exactly as without fusion", p.name, maxPasses),
			})
		} else {
			findings = append(findings, verify.Finding{
				Code: verify.CodeFuseChainDepth, Severity: verify.SevInfo, VDev: p.name,
				Detail: fmt.Sprintf("worst-case chain needs at least %d pipeline passes, pass bound is %d; packets stay interpreted", c, maxPasses),
			})
		}
		delete(eng.plans, pid)
	}
	// Clear links into refused plans. Cost is monotone along links, so any
	// plan that could reach a refused plan was refused too — this is a
	// belt-and-suspenders pass that also covers future non-monotone edits.
	for _, p := range eng.plans {
		for _, vr := range p.vnet {
			if vr.target != nil && eng.plans[vr.target.pid] != vr.target {
				vr.target = nil
			}
			for i := range vr.steps {
				if t := vr.steps[i].target; t != nil && eng.plans[t.pid] != t {
					vr.steps[i].target = nil
				}
			}
		}
	}
	// Reachable-PID chains for the quarantine check.
	for _, p := range eng.plans {
		seen := map[int]bool{}
		var visit func(q *plan)
		visit = func(q *plan) {
			if q == nil || seen[q.pid] {
				return
			}
			seen[q.pid] = true
			p.chain = append(p.chain, q.pid)
			for _, vr := range q.vnet {
				visit(vr.target)
				for i := range vr.steps {
					visit(vr.steps[i].target)
				}
			}
		}
		p.chain = p.chain[:0]
		visit(p)
		sort.Ints(p.chain)
	}
	return findings
}

// walkPasses bounds the pipeline passes of one walk through the plan: the
// first pass plus the deepest chain of a_parse_more resubmissions from
// parse state 0, mirroring verify's parseDepth (seen-guarded against state
// cycles; the runtime segment cap still protects adversarial inputs).
func walkPasses(p *plan) int {
	more := map[uint64][]uint64{}
	for i := range p.parse {
		r := &p.parse[i]
		if r.more {
			more[r.state] = append(more[r.state], r.nextState)
		}
	}
	seen := map[uint64]bool{}
	var deepest func(state uint64) int
	deepest = func(state uint64) int {
		if seen[state] {
			return 0
		}
		seen[state] = true
		best := 0
		for _, next := range more[state] {
			if d := 1 + deepest(next); d > best {
				best = d
			}
		}
		seen[state] = false
		return best
	}
	return 1 + deepest(0)
}

func fusedKind(code int) int {
	switch code {
	case persona.NTEDExact, persona.NTEDTernary:
		return matchED
	case persona.NTMetaExact, persona.NTMetaTernary:
		return matchMeta
	case persona.NTStdMeta:
		return matchStd
	default:
		return matchNone
	}
}

// decodeStageRow inverts one installed a_set_match row back into a fused
// row: match key, successor, and per-primitive micro-ops with the prep and
// exec entries the interpreter would hit.
func decodeStageRow(cfg persona.Config, sh *shared, e *sim.Entry, kind, stage int, pid uint64, ew int, retain func(table string, handle int)) (*frow, error) {
	if e.Action != persona.ActSetMatch {
		return nil, fmt.Errorf("unexpected stage action %q", e.Action)
	}
	if len(e.Args) != 4 {
		return nil, fmt.Errorf("a_set_match arity %d", len(e.Args))
	}
	fr := &frow{
		nextKind: int(e.Args[2].Uint64()),
		nextID:   int(e.Args[3].Uint64()),
		hits:     []*sim.Entry{e},
	}
	var ok bool
	switch kind {
	case persona.NTEDExact, persona.NTEDTernary:
		if len(e.Params) != 3 {
			return nil, fmt.Errorf("ed row arity")
		}
		if fr.val, fr.mask, ok = ternaryValue(e.Params[2], ew); !ok {
			return nil, fmt.Errorf("ed match key is not a %d-bit exact/ternary", ew)
		}
	case persona.NTMetaExact, persona.NTMetaTernary:
		if len(e.Params) != 3 {
			return nil, fmt.Errorf("meta row arity")
		}
		if fr.val, fr.mask, ok = ternaryValue(e.Params[2], persona.MetaWidth); !ok {
			return nil, fmt.Errorf("meta match key is not a %d-bit exact/ternary", persona.MetaWidth)
		}
	case persona.NTStdMeta:
		if len(e.Params) != 4 {
			return nil, fmt.Errorf("stdmeta row arity")
		}
		if fr.vinVal, fr.vinMask, ok = ternaryUint(e.Params[2]); !ok {
			return nil, fmt.Errorf("stdmeta vingress key kind")
		}
		if fr.vpVal, fr.vpMask, ok = ternaryUint(e.Params[3]); !ok {
			return nil, fmt.Errorf("stdmeta vport key kind")
		}
	case persona.NTMatchless:
		if len(e.Params) != 2 {
			return nil, fmt.Errorf("matchless row arity")
		}
	default:
		return nil, fmt.Errorf("unknown stage kind %d", kind)
	}
	mid := e.Args[0].Uint64()
	nprims := int(e.Args[1].Uint64())
	if nprims > cfg.Primitives {
		return nil, fmt.Errorf("row wants %d primitives, persona has %d", nprims, cfg.Primitives)
	}
	for prim := 1; prim <= nprims; prim++ {
		prep := sh.preps[prepKey(stage, prim, pid, mid)]
		if prep == nil {
			return nil, fmt.Errorf("missing prep row for match_id %d primitive %d", mid, prim)
		}
		code, mop, err := decodePrep(prep, ew)
		if err != nil {
			return nil, fmt.Errorf("prep %q: %w", prep.Action, err)
		}
		exec := sh.execs[execKey(stage, prim, code)]
		if exec == nil {
			return nil, fmt.Errorf("missing exec row for opcode %d", code)
		}
		retain(persona.PrimTable(stage, prim, "prep"), prep.Handle)
		fr.hits = append(fr.hits, prep, exec)
		fr.ops = append(fr.ops, mop)
	}
	return fr, nil
}

// decodePrep inverts one installed a_prep_* row into a micro-op, verifying
// every derived shift against the encoding hp4c's prepFor produced. Any
// mismatch means the row wasn't produced by the compiler we understand, so
// the vdev stays interpreted rather than risking divergence.
func decodePrep(e *sim.Entry, ew int) (uint64, microOp, error) {
	var code int
	found := false
	for _, op := range persona.Opcodes {
		if e.Action == "a_prep_"+op.Name {
			code = op.Code
			found = true
			break
		}
	}
	if !found {
		return 0, microOp{}, fmt.Errorf("unknown prep action")
	}
	arity := func(n int) error {
		if len(e.Args) != n {
			return fmt.Errorf("arity %d, want %d", len(e.Args), n)
		}
		return nil
	}
	mop := microOp{}
	switch code {
	case persona.OpNoOp:
		mop.kind = mopNop
		return uint64(code), mop, arity(0)
	case persona.OpDrop:
		mop.kind = mopDrop
		return uint64(code), mop, arity(0)
	case persona.OpModVPortVIngress:
		mop.kind = mopVPortVIngress
		return uint64(code), mop, arity(0)
	case persona.OpModVPortConst:
		if err := arity(1); err != nil {
			return 0, mop, err
		}
		mop.kind = mopVPortConst
		mop.cval = e.Args[0].Uint64()
		return uint64(code), mop, nil
	}

	dstMeta := code == persona.OpModMetaConst || code == persona.OpModMetaED ||
		code == persona.OpModMetaMeta || code == persona.OpAddMetaConst
	srcMeta := code == persona.OpModEDMeta || code == persona.OpModMetaMeta
	dstTotal, srcTotal := ew, ew
	if dstMeta {
		dstTotal = persona.MetaWidth
	}
	if srcMeta {
		srcTotal = persona.MetaWidth
	}
	if len(e.Args) < 2 {
		return 0, mop, fmt.Errorf("missing dmask/dshift")
	}
	off, w, err := decodeDstMask(e.Args[0], e.Args[1].Uint64(), dstTotal, ew)
	if err != nil {
		return 0, mop, err
	}
	mop.dstMeta, mop.srcMeta = dstMeta, srcMeta
	mop.dstOff, mop.dstW = off, w

	switch code {
	case persona.OpModEDConst, persona.OpModMetaConst:
		if err := arity(3); err != nil {
			return 0, mop, err
		}
		mop.kind = mopSet
		mop.cval = e.Args[2].Uint64()
	case persona.OpModEDED, persona.OpModEDMeta, persona.OpModMetaED, persona.OpModMetaMeta:
		if err := arity(4); err != nil {
			return 0, mop, err
		}
		mop.kind = mopCopy
		mop.srcOff = int(e.Args[2].Uint64()) - ew + srcTotal
		mop.srcW = ew - int(e.Args[3].Uint64())
		if mop.srcOff < 0 || mop.srcW <= 0 || mop.srcOff+mop.srcW > srcTotal {
			return 0, mop, fmt.Errorf("source slice [%d,%d) outside %d-bit field", mop.srcOff, mop.srcOff+mop.srcW, srcTotal)
		}
	case persona.OpAddEDConst, persona.OpAddMetaConst:
		if err := arity(5); err != nil {
			return 0, mop, err
		}
		if w > 64 {
			return 0, mop, fmt.Errorf("add over %d-bit destination exceeds the 64-bit fused adder", w)
		}
		if int(e.Args[2].Uint64()) != ew-dstTotal+off || int(e.Args[3].Uint64()) != ew-w {
			return 0, mop, fmt.Errorf("add shift encoding mismatch")
		}
		mop.kind = mopAdd
		mop.cval = e.Args[4].Uint64()
	default:
		return 0, mop, fmt.Errorf("opcode %d not fusable", code)
	}
	return uint64(code), mop, nil
}

// decodeDstMask inverts prepFor's destination encoding: dmask is
// MaskRange(dstTotal, off, w) resized (right-aligned) to ew, dshift is
// dstTotal-off-w. It recovers (off, w) and verifies both encodings agree
// and the mask is one contiguous run.
func decodeDstMask(dmask bitfield.Value, dshift uint64, dstTotal, ew int) (int, int, error) {
	if dmask.Width() != ew {
		return 0, 0, fmt.Errorf("dmask width %d, want %d", dmask.Width(), ew)
	}
	w := dmask.PopCount()
	if w == 0 {
		return 0, 0, fmt.Errorf("empty dmask")
	}
	f := -1
	b := dmask.Bytes()
	for i, by := range b {
		if by != 0 {
			for j := 0; j < 8; j++ {
				if by&(0x80>>j) != 0 {
					f = i*8 + j
					break
				}
			}
			break
		}
	}
	off := f - (ew - dstTotal)
	if off < 0 || off+w > dstTotal {
		return 0, 0, fmt.Errorf("dmask run [%d,%d) outside %d-bit field", off, off+w, dstTotal)
	}
	if !dmask.Equal(bitfield.MaskRange(dstTotal, off, w).Resize(ew)) {
		return 0, 0, fmt.Errorf("dmask is not one contiguous run")
	}
	if int(dshift) != dstTotal-off-w {
		return 0, 0, fmt.Errorf("dshift %d disagrees with dmask run [%d,%d)", dshift, off, off+w)
	}
	return off, w, nil
}

// decodeCsum inverts an a_ipv4_csum row into the header's bit offset,
// verifying all three argument encodings agree.
func decodeCsum(e *sim.Entry, ew int) (*csumPlan, error) {
	if e.Action != "a_ipv4_csum" {
		return nil, fmt.Errorf("unexpected csum action %q", e.Action)
	}
	if len(e.Args) != 3 {
		return nil, fmt.Errorf("a_ipv4_csum arity %d", len(e.Args))
	}
	shift0 := int(e.Args[1].Uint64())
	hoffBits := ew - 16 - shift0
	if hoffBits < 0 || hoffBits%8 != 0 || hoffBits+160 > ew {
		return nil, fmt.Errorf("header offset %d bits out of range", hoffBits)
	}
	if int(e.Args[2].Uint64()) != ew-(hoffBits+80)-16 {
		return nil, fmt.Errorf("cshift disagrees with shift0")
	}
	want := bitfield.MaskRange(ew, hoffBits+80, 16).Not()
	if e.Args[0].Width() != ew || !e.Args[0].Equal(want) {
		return nil, fmt.Errorf("ncmask disagrees with shift0")
	}
	return &csumPlan{entry: e, hoffBits: hoffBits}, nil
}

// ternaryValue normalizes an exact or ternary match param of the given
// width into a premasked (value, mask) pair.
func ternaryValue(p sim.MatchParam, width int) (val, mask bitfield.Value, ok bool) {
	if p.Value.Width() != width {
		return val, mask, false
	}
	switch p.Kind {
	case ast.MatchExact:
		return p.Value, bitfield.Ones(width), true
	case ast.MatchTernary:
		if p.Mask.Width() != width {
			return val, mask, false
		}
		return p.Value.And(p.Mask), p.Mask, true
	}
	return val, mask, false
}

// ternaryUint is ternaryValue for narrow (<=64 bit) keys.
func ternaryUint(p sim.MatchParam) (val, mask uint64, ok bool) {
	w := p.Value.Width()
	if w > 64 {
		return 0, 0, false
	}
	all := uint64(1)<<uint(w) - 1
	switch p.Kind {
	case ast.MatchExact:
		return p.Value.Uint64(), all, true
	case ast.MatchTernary:
		m := p.Mask.Uint64()
		return p.Value.Uint64() & m, m, true
	}
	return 0, 0, false
}
