package fuse

import (
	"testing"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/persona"
	"hyper4/internal/sim"
)

const testExtWidth = 512

func testState() *execState {
	return newExecState(testExtWidth)
}

// edRow builds a matchED/matchMeta row whose key requires the given byte
// at the given byte offset (all other bits wildcarded).
func edRow(width, byteOff int, want byte) *frow {
	val := bitfield.New(width)
	mask := bitfield.New(width)
	val.InsertUint(byteOff*8, 8, uint64(want))
	mask.InsertUint(byteOff*8, 8, 0xff)
	return &frow{val: val, mask: mask}
}

func TestFusedSlotLookupPrecedence(t *testing.T) {
	st := testState()
	st.ext.SetPrefixBytes([]byte{0xaa, 0xbb})
	st.meta.InsertUint(0, 8, 0x42)

	t.Run("ed", func(t *testing.T) {
		miss := edRow(testExtWidth, 0, 0x01)
		hit1 := edRow(testExtWidth, 0, 0xaa)
		hit2 := edRow(testExtWidth, 1, 0xbb)
		fs := &fusedSlot{kind: matchED, rows: []*frow{miss, hit1, hit2}}
		if got := fs.lookup(st, 0, 0); got != hit1 {
			t.Errorf("ed lookup = %p, want first matching row %p", got, hit1)
		}
		fs.rows = []*frow{miss, hit2, hit1}
		if got := fs.lookup(st, 0, 0); got != hit2 {
			t.Error("ed lookup did not respect row order")
		}
		fs.rows = []*frow{miss}
		if got := fs.lookup(st, 0, 0); got != nil {
			t.Errorf("ed lookup on all-miss rows = %p, want nil", got)
		}
	})

	t.Run("meta", func(t *testing.T) {
		miss := edRow(persona.MetaWidth, 0, 0x41)
		hit := edRow(persona.MetaWidth, 0, 0x42)
		fs := &fusedSlot{kind: matchMeta, rows: []*frow{miss, hit}}
		if got := fs.lookup(st, 0, 0); got != hit {
			t.Error("meta lookup skipped the matching row")
		}
	})

	t.Run("std", func(t *testing.T) {
		// Exact-on-vingress row before a wildcard row: the exact row wins
		// only when vingress matches.
		exact := &frow{vinVal: 7, vinMask: ^uint64(0)}
		wild := &frow{}
		fs := &fusedSlot{kind: matchStd, rows: []*frow{exact, wild}}
		if got := fs.lookup(st, 7, 0); got != exact {
			t.Error("std lookup missed the exact vingress row")
		}
		if got := fs.lookup(st, 8, 0); got != wild {
			t.Error("std lookup did not fall through to the wildcard row")
		}
		vp := &frow{vpVal: 3, vpMask: ^uint64(0)}
		fs = &fusedSlot{kind: matchStd, rows: []*frow{vp}}
		if got := fs.lookup(st, 0, 3); got != vp {
			t.Error("std lookup missed the vport row")
		}
		if got := fs.lookup(st, 0, 4); got != nil {
			t.Error("std lookup matched the wrong vport")
		}
	})

	t.Run("none", func(t *testing.T) {
		only := &frow{}
		fs := &fusedSlot{kind: matchNone, rows: []*frow{only}}
		if got := fs.lookup(st, 0, 0); got != only {
			t.Error("no-match lookup did not return the single row")
		}
		fs.rows = nil
		if got := fs.lookup(st, 0, 0); got != nil {
			t.Error("no-match lookup on empty slot should miss")
		}
	})
}

// TestCopyFieldOverlap checks the wide-copy staging buffer: an ed←ed move
// whose source and destination ranges overlap must behave as if the source
// were read in full before the destination is written.
func TestCopyFieldOverlap(t *testing.T) {
	st := testState()
	src := make([]byte, 32)
	for i := range src {
		src[i] = byte(i + 1)
	}
	st.ext.SetPrefixBytes(src)

	// Shift a 128-bit field right by 64 bits: dst [64,192) ← src [0,128),
	// overlapping on [64,128).
	st.copyField(&microOp{kind: mopCopy, dstOff: 64, dstW: 128, srcOff: 0, srcW: 128})
	got := st.ext.Bytes()[:24]
	want := append(append([]byte{}, src[:8]...), src[:16]...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overlapping copy corrupted byte %d: got % x, want % x", i, got, want)
		}
	}

	// Widening copy zero-extends: dst is 80 bits, src 16 bits.
	st.ext.SetPrefixBytes(src)
	st.copyField(&microOp{kind: mopCopy, dstOff: 256, dstW: 80, srcOff: 0, srcW: 16})
	if hi := st.ext.UintAt(256, 64); hi != 0 {
		t.Errorf("widening copy high bits = %#x, want 0", hi)
	}
	if lo := st.ext.UintAt(256+64, 16); lo != 0x0102 {
		t.Errorf("widening copy low bits = %#x, want 0x0102", lo)
	}

	// Narrowing copy truncates to the low source bits.
	st.ext.SetPrefixBytes(src)
	st.copyField(&microOp{kind: mopCopy, dstOff: 256, dstW: 16, srcOff: 0, srcW: 128})
	if got := st.ext.UintAt(256, 16); got != 0x0f10 {
		t.Errorf("narrowing copy = %#x, want 0x0f10 (low 16 of the 128-bit source)", got)
	}
}

func TestSetConstWide(t *testing.T) {
	st := testState()
	// Prefill with ones so the zero-extension is observable.
	for i := 0; i < testExtWidth; i += 64 {
		st.ext.InsertUint(i, 64, ^uint64(0))
	}
	st.setConst(&microOp{kind: mopSet, dstOff: 8, dstW: 96, cval: 0xdeadbeefcafe})
	if hi := st.ext.UintAt(8, 32); hi != 0 {
		t.Errorf("wide set high bits = %#x, want 0", hi)
	}
	if lo := st.ext.UintAt(8+32, 64); lo != 0xdeadbeefcafe {
		t.Errorf("wide set low bits = %#x, want 0xdeadbeefcafe", lo)
	}
	// Neighbours untouched.
	if b := st.ext.UintAt(0, 8); b != 0xff {
		t.Errorf("byte before the field clobbered: %#x", b)
	}
	if b := st.ext.UintAt(8+96, 8); b != 0xff {
		t.Errorf("byte after the field clobbered: %#x", b)
	}
}

// TestFixCsum builds a real IPv4 header in the extracted-data field and
// checks the recomputed checksum against an independently computed one.
func TestFixCsum(t *testing.T) {
	hdr := []byte{
		0x45, 0x00, 0x00, 0x54, // ver/ihl, tos, total length
		0x12, 0x34, 0x40, 0x00, // id, flags/frag
		0x40, 0x01, 0xff, 0xff, // ttl, proto=icmp, checksum (stale)
		10, 0, 0, 1, // src
		10, 0, 0, 2, // dst
	}
	var sum uint32
	for i := 0; i < 20; i += 2 {
		if i == 10 {
			continue
		}
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	want := ^uint16(sum)

	const hoff = 14 * 8 // header at the usual post-Ethernet offset
	st := testState()
	frame := append(make([]byte, 14), hdr...)
	st.ext.SetPrefixBytes(frame)
	st.fixCsum(&csumPlan{hoffBits: hoff})
	if got := uint16(st.ext.UintAt(hoff+80, 16)); got != want {
		t.Errorf("checksum = %#04x, want %#04x", got, want)
	}
	// Idempotent: recomputing over the corrected header yields the same
	// value (the checksum word is excluded from the sum).
	st.fixCsum(&csumPlan{hoffBits: hoff})
	if got := uint16(st.ext.UintAt(hoff+80, 16)); got != want {
		t.Errorf("recomputed checksum = %#04x, want %#04x", got, want)
	}
}

// TestCommitRedMeterTruncation drives the commit phase against a real
// persona switch with the ingress meter forced red: the policed pass must
// record its t_norm hit and counter usage but none of its journaled entry
// hits, outputs, or follow-on passes — mirroring the interpreter's
// policing guard.
func TestCommitRedMeterTruncation(t *testing.T) {
	p, err := persona.Generate(persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("hp4", p.Program)
	if err != nil {
		t.Fatal(err)
	}

	build := func() (*execState, []*sim.Entry) {
		st := newExecState(64)
		norm0, norm1 := &sim.Entry{}, &sim.Entry{}
		stage0, stage1 := &sim.Entry{}, &sim.Entry{}
		st.jr = []*sim.Entry{stage0, stage1}
		st.segs = []segment{
			{pid: 1, inst: segNormal, parser: true, dataLen: 64, norm: norm0,
				lo: 0, hi: 1, outPort: 5, outData: []byte{1}, child: [2]int{1, -1}},
			{pid: 1, inst: segRecirc, parser: true, dataLen: 64, norm: norm1,
				lo: 1, hi: 2, outPort: 6, outData: []byte{2}, child: [2]int{-1, -1}},
		}
		return st, []*sim.Entry{norm0, norm1, stage0, stage1}
	}
	eng := &Engine{}

	// Red at the first pass: the whole tree below it is pruned.
	if err := sw.MeterSetRates(persona.MeterIngress, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	st, entries := build()
	res, ok := eng.commit(st, sw)
	if !ok {
		t.Fatal("commit declined")
	}
	if len(res.Outputs) != 0 || res.Recirculates != 0 {
		t.Fatalf("red pass leaked effects: %+v", res)
	}
	if entries[0].Hits() != 1 {
		t.Errorf("t_norm hit on the red pass = %d, want 1 (the pass ran before policing)", entries[0].Hits())
	}
	for i, e := range entries[1:] {
		if e.Hits() != 0 {
			t.Errorf("entry %d hit %d times under a red verdict, want 0", i+1, e.Hits())
		}
	}
	pkts, bytes, err := sw.CounterRead(persona.CounterVDev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pkts != 1 || bytes != 64 {
		t.Errorf("vdev counter = (%d, %d), want (1, 64): red packets still count", pkts, bytes)
	}

	// Green: the full tree replays.
	if err := sw.MeterSetRates(persona.MeterIngress, 1, 1<<40, 1<<40); err != nil {
		t.Fatal(err)
	}
	st, entries = build()
	res, ok = eng.commit(st, sw)
	if !ok {
		t.Fatal("commit declined")
	}
	if len(res.Outputs) != 2 || res.Recirculates != 1 {
		t.Fatalf("green commit: %+v, want 2 outputs and 1 recirculation", res)
	}
	if res.Outputs[0].Port != 5 || res.Outputs[1].Port != 6 {
		t.Errorf("outputs out of BFS order: %+v", res.Outputs)
	}
	for i, e := range entries {
		if e.Hits() != 1 {
			t.Errorf("entry %d hits = %d, want 1", i, e.Hits())
		}
	}
}
