// Fuse plan validation (debug/CI): after Build compiles its plans, prove
// mode rebuilds each fused vdev's symbolic persona machine twice — once from
// the full live tables, once from only the rows the plan retained — and
// requires the two machines equivalent over the whole modeled packet space.
// A plan that silently skipped, reordered, or misattributed a row produces a
// divergent region; the finding names it. The check costs a symbolic proof
// per plan, so it is off by default and enabled by `make prove-smoke` / the
// fused differential suite via SetProveMode.
package fuse

import (
	"fmt"
	"sort"
	"sync/atomic"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/persona"
	"hyper4/internal/core/verify"
	"hyper4/internal/core/verify/prove"
	"hyper4/internal/sim"
)

var proveMode atomic.Bool

// SetProveMode toggles plan proving inside Build.
func SetProveMode(on bool) { proveMode.Store(on) }

// ProveMode reports whether plan proving is enabled.
func ProveMode() bool { return proveMode.Load() }

// filteredSource restricts the named tables of a TableSource to retained
// handles; unfiltered tables pass through.
type filteredSource struct {
	src  prove.TableSource
	keep map[string]map[int]bool
}

func (f filteredSource) TableEntriesOrdered(name string) ([]*sim.Entry, error) {
	rows, err := f.src.TableEntriesOrdered(name)
	if err != nil || f.keep[name] == nil {
		return rows, err
	}
	out := make([]*sim.Entry, 0, len(rows))
	for _, e := range rows {
		if f.keep[name][e.Handle] {
			out = append(out, e)
		}
	}
	return out, nil
}

func (f filteredSource) TableDefault(name string) (string, []bitfield.Value, error) {
	return f.src.TableDefault(name)
}

// provePlans proves every built plan against the live tables. Divergences
// surface as prove-diverge warnings (there is no second concrete machine to
// replay against, so they never reach error severity here); inconclusive
// regions surface as prove-inconclusive.
func provePlans(sw *sim.Switch, cfg persona.Config, eng *Engine) []verify.Finding {
	var out []verify.Finding
	pids := make([]int, 0, len(eng.plans))
	for pid := range eng.plans {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p := eng.plans[pid]
		L := p.defaultBytes
		for _, pr := range p.parse {
			if pr.more && pr.numBytes > L {
				L = pr.numBytes
			}
		}
		L += 8
		warn := func(format string, args ...any) {
			out = append(out, verify.Finding{
				Code: verify.CodeProveInconclusive, Severity: verify.SevWarn,
				VDev: p.name, Detail: fmt.Sprintf(format, args...),
			})
		}
		live, err := prove.BuildPersona(cfg, sw, pid, L)
		if err != nil {
			warn("plan proof: live persona model failed: %v", err)
			continue
		}
		fused, err := prove.BuildPersona(cfg, filteredSource{src: sw, keep: p.retained}, pid, L)
		if err != nil {
			warn("plan proof: fused-plan model failed: %v", err)
			continue
		}
		res, err := prove.Compare(live, fused, prove.Options{VDev: p.name, MaxFindings: 8})
		if err != nil {
			warn("plan proof: %v", err)
			continue
		}
		for _, f := range res.Findings {
			f.Detail = "fused plan vs live tables: " + f.Detail
			out = append(out, f)
		}
	}
	return out
}
