package fuse

import (
	"hyper4/internal/bitfield"
	"hyper4/internal/core/persona"
	"hyper4/internal/sim"
)

// execState is the pooled per-packet scratch: the extracted-data and
// emulated-metadata wide fields, a staging buffer for overlapping copies,
// and the entry-hit journal the commit phase replays. Nothing here escapes
// the packet, so steady state allocates only the output buffer.
type execState struct {
	ext  bitfield.Value
	meta bitfield.Value
	tmp  bitfield.Value

	// Hit journal. norms holds the t_norm hit of each pass (its length is
	// the pass count); post holds the remaining hits grouped per pass by
	// postEnd, so the commit phase can truncate at a red meter verdict
	// exactly where the interpreter's policing guard would have.
	norms   []*sim.Entry
	post    []*sim.Entry
	postEnd []int
}

func newExecState(ew int) *execState {
	return &execState{
		ext:  bitfield.New(ew),
		meta: bitfield.New(persona.MetaWidth),
		tmp:  bitfield.New(ew),
	}
}

// RunFast implements sim.FastHandler: it either fully processes the packet
// through the fused plan (recording exactly the hits, meter executions and
// counter bumps the interpreter would) or declines, leaving no trace.
//
//hp4:hotpath
func (eng *Engine) RunFast(sw *sim.Switch, data []byte, port int) (sim.FastResult, bool) {
	if sw.Generation() != eng.gen {
		return sim.FastResult{}, false
	}
	if port < 0 || port >= len(eng.ports) {
		return sim.FastResult{}, false
	}
	pb := &eng.ports[port]
	if pb.plan == nil {
		return sim.FastResult{}, false
	}
	// Quarantined, probing, and bypassed vdevs all sit in the quarantine
	// table; their packets need the interpreter's containment accounting.
	if _, contained := sw.QuarantineRemaining(uint64(pb.plan.pid)); contained {
		return sim.FastResult{}, false
	}
	st := eng.pool.Get().(*execState)
	res, ok := eng.run(pb.plan, pb, st, sw, data)
	eng.pool.Put(st)
	if ok {
		eng.hits.Add(1)
	}
	return res, ok
}

// run is the pure phase: it simulates every pass of the packet against the
// plan without touching shared state, journaling the entry hits each pass
// would record. Only when the packet's fate is fully decided does commit
// apply the journal. Declining at any point before commit is therefore
// free of side effects.
func (eng *Engine) run(p *plan, pb *portBind, st *execState, sw *sim.Switch, data []byte) (sim.FastResult, bool) {
	st.norms = st.norms[:0]
	st.post = st.post[:0]
	st.postEnd = st.postEnd[:0]

	// Parse loop: each iteration is one pipeline pass. numBytes carries the
	// a_parse_more request across the (virtual) resubmission.
	numBytes := 0
	state := uint64(0)
	var fin *parseRow
	parsed, consumed := 0, 0
	for {
		if len(st.norms) >= sim.MaxPasses {
			// The interpreter faults at the pass bound; let it.
			return sim.FastResult{}, false
		}
		n := p.defaultBytes
		if numBytes > 0 {
			if _, supported := p.normBy[numBytes]; supported {
				n = numBytes
			}
		}
		ne := p.normBy[n]
		if ne == nil {
			return sim.FastResult{}, false
		}
		st.norms = append(st.norms, ne)
		take := len(data)
		if take > n {
			take = n
		}
		st.ext.SetPrefixBytes(data[:take])
		var row *parseRow
		for i := range p.parse {
			r := &p.parse[i]
			if r.state == state && st.ext.MatchTernary(r.val, r.mask) {
				row = r
				break
			}
		}
		if row == nil {
			// Parse miss: no stage walk, t_virtnet applied with vport=0.
			st.post = append(st.post, p.vdrop0)
			st.postEnd = append(st.postEnd, len(st.post))
			return eng.commit(p, pb, st, sw, len(data), nil)
		}
		st.post = append(st.post, row.entry)
		if row.more {
			// a_parse_more resubmits; this pass still traverses t_virtnet
			// with vport=0 before the resubmission takes effect.
			st.post = append(st.post, p.vdrop0)
			st.postEnd = append(st.postEnd, len(st.post))
			numBytes = row.numBytes
			state = row.nextState
			continue
		}
		fin = row
		parsed, consumed = n, take
		break
	}

	// Stage walk on the final pass.
	st.meta.Zero()
	ving := pb.vingress
	vport := uint64(0)
	dropped := false
	kind, id := fin.kind, fin.id
	curStage := 0
	for kind != persona.NTDone {
		fs := p.slots[slotKey(kind, uint64(id))]
		// A successor at or before the current stage can never be applied:
		// the interpreter's remaining stage tables don't hold its rows.
		if fs == nil || fs.stage <= curStage {
			break
		}
		curStage = fs.stage
		r := fs.lookup(st, ving, vport)
		if r == nil {
			break
		}
		st.post = append(st.post, r.hits...)
		for i := range r.ops {
			op := &r.ops[i]
			switch op.kind {
			case mopNop:
			case mopDrop:
				dropped = true
				vport = persona.VPortDrop
			case mopVPortConst:
				vport = op.cval & (1<<persona.VPortWidth - 1)
			case mopVPortVIngress:
				vport = ving
			case mopSet:
				st.setConst(op)
			case mopCopy:
				st.copyField(op)
			case mopAdd:
				dst := st.dst(op.dstMeta)
				x := dst.UintAt(op.dstOff, op.dstW) + op.cval
				dst.InsertUint(op.dstOff, op.dstW, x)
			}
		}
		kind, id = r.nextKind, r.nextID
	}

	// Virtual networking + egress.
	var outs []sim.Output
	if !dropped {
		vr := p.vnet[vport]
		if vr != nil {
			st.post = append(st.post, vr.entry)
			switch vr.kind {
			case vnetDrop:
			case vnetPhys:
				if fin.csum {
					if p.csumBad {
						return sim.FastResult{}, false
					}
					if p.csum != nil {
						st.fixCsum(p.csum)
						st.post = append(st.post, p.csum.entry)
					}
				}
				re, wb := p.resizeBy[parsed], p.wbBy[parsed]
				if re == nil || wb == nil {
					return sim.FastResult{}, false
				}
				st.post = append(st.post, re, wb)
				buf := make([]byte, 0, parsed+len(data)-consumed)
				buf = st.ext.AppendSliceTo(buf, 0, parsed*8)
				buf = append(buf, data[consumed:]...)
				outs = []sim.Output{{Port: vr.port, Data: buf}}
			default:
				// Virtual link or multicast: recirculation and cloning stay
				// interpreted.
				return sim.FastResult{}, false
			}
		}
		// A vnet miss applies the table default (a_vdrop, no entry hit).
	}
	st.postEnd = append(st.postEnd, len(st.post))
	return eng.commit(p, pb, st, sw, len(data), outs)
}

// commit replays the hit journal pass by pass, interleaved with the
// policing meter exactly as the interpreter's ingress order runs it:
// t_norm (and, on the first pass, t_assign) hit first, then a_police's
// meter + counter, then — only if the verdict isn't red — the rest of the
// pass. A red verdict truncates the packet at that pass: earlier passes'
// effects stand, later ones never happened.
func (eng *Engine) commit(p *plan, pb *portBind, st *execState, sw *sim.Switch, pktLen int, outs []sim.Output) (sim.FastResult, bool) {
	passes := len(st.norms)
	for i := 0; i < passes; i++ {
		st.norms[i].RecordHit()
		if i == 0 {
			pb.assign.RecordHit()
		}
		color, err := sw.FastMeterExecute(persona.MeterIngress, p.pid, pktLen)
		_ = sw.FastCounterInc(persona.CounterVDev, p.pid, pktLen)
		if err == nil && color == 2 {
			return sim.FastResult{Resubmits: i}, true
		}
		lo := 0
		if i > 0 {
			lo = st.postEnd[i-1]
		}
		for _, e := range st.post[lo:st.postEnd[i]] {
			e.RecordHit()
		}
	}
	return sim.FastResult{Outputs: outs, Resubmits: passes - 1}, true
}

// lookup scans the slot's rows in match precedence order and returns the
// first match — by construction the same row the interpreter's lookup
// would pick.
func (fs *fusedSlot) lookup(st *execState, ving, vport uint64) *frow {
	switch fs.kind {
	case matchED:
		for _, r := range fs.rows {
			if st.ext.MatchTernary(r.val, r.mask) {
				return r
			}
		}
	case matchMeta:
		for _, r := range fs.rows {
			if st.meta.MatchTernary(r.val, r.mask) {
				return r
			}
		}
	case matchStd:
		for _, r := range fs.rows {
			if ving&r.vinMask == r.vinVal && vport&r.vpMask == r.vpVal {
				return r
			}
		}
	case matchNone:
		if len(fs.rows) > 0 {
			return fs.rows[0]
		}
	}
	return nil
}

func (st *execState) dst(meta bool) *bitfield.Value {
	if meta {
		return &st.meta
	}
	return &st.ext
}

// zeroRange clears [off, off+w) in 64-bit chunks without allocating.
func zeroRange(v *bitfield.Value, off, w int) {
	for w > 0 {
		n := w
		if n > 64 {
			n = 64
		}
		v.InsertUint(off, n, 0)
		off += n
		w -= n
	}
}

// setConst writes zext(cval) into dst[off, off+w).
func (st *execState) setConst(op *microOp) {
	dst := st.dst(op.dstMeta)
	if op.dstW <= 64 {
		dst.InsertUint(op.dstOff, op.dstW, op.cval)
		return
	}
	zeroRange(dst, op.dstOff, op.dstW-64)
	dst.InsertUint(op.dstOff+op.dstW-64, 64, op.cval)
}

// copyField writes zext/truncate of src[srcOff, srcOff+srcW) into
// dst[dstOff, dstOff+dstW), staging wide copies through tmp so an
// overlapping ed←ed move cannot corrupt itself.
func (st *execState) copyField(op *microOp) {
	if op.dstW <= 64 && op.srcW <= 64 {
		x := st.dst(op.srcMeta).UintAt(op.srcOff, op.srcW)
		st.dst(op.dstMeta).InsertUint(op.dstOff, op.dstW, x)
		return
	}
	st.dst(op.srcMeta).SliceInto(&st.tmp, op.srcOff, op.srcW)
	dst := st.dst(op.dstMeta)
	if op.dstW <= op.srcW {
		dst.InsertBits(op.dstOff, st.tmp, op.srcW-op.dstW, op.dstW)
		return
	}
	zeroRange(dst, op.dstOff, op.dstW-op.srcW)
	dst.InsertBits(op.dstOff+op.dstW-op.srcW, st.tmp, 0, op.srcW)
}

// fixCsum recomputes the IPv4 header checksum over ten 16-bit words,
// mirroring a_ipv4_csum: zero the checksum word, sum, fold three times,
// complement, write back.
func (st *execState) fixCsum(c *csumPlan) {
	base := c.hoffBits
	var sum uint64
	for k := 0; k < 10; k++ {
		if k == 5 {
			continue // the checksum word itself, zeroed before summing
		}
		sum += st.ext.UintAt(base+16*k, 16)
	}
	for i := 0; i < 3; i++ {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	st.ext.InsertUint(base+80, 16, ^sum&0xffff)
}
