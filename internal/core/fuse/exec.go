package fuse

import (
	"hyper4/internal/bitfield"
	"hyper4/internal/core/persona"
	"hyper4/internal/sim"
)

// Segment instance kinds, mirroring the interpreter's pass types for
// metrics and stats conservation.
const (
	segNormal = iota
	segResubmit
	segRecirc
	segClone
)

// segment is one journaled pipeline pass. The run phase builds a tree of
// segments shaped exactly like the interpreter's pass graph — parser passes
// chain through child[0] (resubmission), a final pass's child[0] is its
// egress-to-egress clone and child[1] its recirculation into the next
// plan — and the commit phase replays it in the interpreter's BFS order so
// meter executions, entry hits, and emitted outputs interleave identically.
type segment struct {
	pid     int  // owning vdev: meter/counter index for parser passes
	inst    int  // segNormal/segResubmit/segRecirc/segClone
	parser  bool // parser passes hit t_norm and run the policing meter
	dataLen int  // this pass's packet byte count (the meter/counter amount)
	norm    *sim.Entry
	assign  *sim.Entry // t_assign hit, root pass only
	lo, hi  int        // post-police hit range into execState.jr
	outPort int
	outData []byte // non-nil: this pass emits an output (unless policed red)
	child   [2]int // follow-on segments in queue-push order, -1 when absent
}

// walkJob is one pending walk: a packet entering a plan, either from a
// physical port (the root) or recirculated across a virtual link.
type walkJob struct {
	p      *plan
	ving   uint64
	data   []byte
	inst   int        // instance kind of the walk's first pass
	assign *sim.Entry // root walk only
	parent int        // segment whose child[slot] this walk's first pass becomes
	slot   int
}

// execState is the pooled per-packet scratch: the extracted-data and
// emulated-metadata wide fields, a staging buffer for overlapping copies,
// and the segment/journal/job storage the run phase fills and the commit
// phase replays. Only output buffers escape the packet.
type execState struct {
	ext  bitfield.Value
	meta bitfield.Value
	tmp  bitfield.Value

	segs  []segment
	jr    []*sim.Entry // hit journal; segments hold [lo,hi) ranges into it
	jobs  []walkJob
	queue []int // commit-phase BFS queue
}

func newExecState(ew int) *execState {
	return &execState{
		ext:  bitfield.New(ew),
		meta: bitfield.New(persona.MetaWidth),
		tmp:  bitfield.New(ew),
	}
}

// release drops every pointer the packet accumulated — journaled *sim.Entry
// hits, segment entries, output and job buffers — so pooled state cannot
// retain deleted entries or packet data across packets.
func (st *execState) release() {
	for i := range st.jr {
		st.jr[i] = nil
	}
	st.jr = st.jr[:0]
	for i := range st.segs {
		st.segs[i] = segment{}
	}
	st.segs = st.segs[:0]
	for i := range st.jobs {
		st.jobs[i] = walkJob{}
	}
	st.jobs = st.jobs[:0]
	st.queue = st.queue[:0]
}

// RunFast implements sim.FastHandler: it either fully processes the packet
// through the fused plans (recording exactly the hits, meter executions and
// counter bumps the interpreter would) or declines, leaving no trace.
//
//hp4:hotpath
func (eng *Engine) RunFast(sw *sim.Switch, data []byte, port int) (res sim.FastResult, ok bool) {
	if sw.Generation() != eng.gen {
		return sim.FastResult{}, false
	}
	if port < 0 || port >= len(eng.ports) {
		return sim.FastResult{}, false
	}
	pb := &eng.ports[port]
	if pb.plan == nil {
		return sim.FastResult{}, false
	}
	// Quarantined, probing, and bypassed vdevs all sit in the quarantine
	// table; their packets need the interpreter's containment accounting.
	// The whole reachable chain is checked: a fused walk may cross into any
	// of these plans.
	for _, pid := range pb.plan.chain {
		if _, contained := sw.QuarantineRemaining(uint64(pid)); contained {
			return sim.FastResult{}, false
		}
	}
	st := eng.pool.Get().(*execState)
	// Deferred so a panic inside run (swallowed as a decline by sim.runFast)
	// cannot leak the scratch state, and so pooled state never retains
	// journal pointers.
	defer func() {
		st.release()
		eng.pool.Put(st)
	}()
	res, ok = eng.run(pb, st, sw, data)
	if ok {
		eng.hits.Add(1)
	}
	return res, ok
}

// run is the pure phase: it simulates every pass of the packet — including
// walks chained across virtual links and multicast clone expansions —
// without touching shared state, journaling the entry hits each pass would
// record. Only when the packet's whole fate is decided does commit apply
// the journal, so declining at any point before commit is free of side
// effects.
func (eng *Engine) run(pb *portBind, st *execState, sw *sim.Switch, data []byte) (sim.FastResult, bool) {
	st.jobs = append(st.jobs, walkJob{
		p: pb.plan, ving: pb.vingress, data: data,
		inst: segNormal, assign: pb.assign, parent: -1,
	})
	for j := 0; j < len(st.jobs); j++ {
		job := st.jobs[j] // copy: walk may append and reallocate st.jobs
		if !eng.walk(st, job) {
			return sim.FastResult{}, false
		}
	}
	return eng.commit(st, sw)
}

// walk simulates one plan traversal: the parse loop, the stage walk, and
// the virtual-network dispatch. Crossing a virtual link enqueues a new walk
// against the target plan; a multicast route additionally synthesizes the
// clone-pass segments. Returns false to decline the whole packet.
func (eng *Engine) walk(st *execState, job walkJob) bool {
	p := job.p

	// Parse loop: each iteration is one pipeline pass. numBytes carries the
	// a_parse_more request across the (virtual) resubmission.
	numBytes := 0
	state := uint64(0)
	var fin *parseRow
	parsed, consumed := 0, 0
	inst := job.inst
	prev, finIdx := -1, -1
	for {
		if len(st.segs) >= sim.MaxPasses {
			// The interpreter faults at the pass bound; let it.
			return false
		}
		idx := len(st.segs)
		st.segs = append(st.segs, segment{
			pid: p.pid, inst: inst, parser: true, dataLen: len(job.data),
			lo: len(st.jr), child: [2]int{-1, -1},
		})
		if prev < 0 {
			st.segs[idx].assign = job.assign
			if job.parent >= 0 {
				st.segs[job.parent].child[job.slot] = idx
			}
		} else {
			st.segs[prev].child[0] = idx
		}
		inst = segResubmit

		// The parser lands in the requested state only when the byte count
		// is one it supports; anything else falls into the default state.
		// A supported count whose t_norm row is missing would MISS in the
		// interpreter (t_norm reads hp4.parsed exact) — decline rather than
		// silently normalize at the default width.
		n := p.defaultBytes
		if numBytes > 0 && p.counts[numBytes] {
			n = numBytes
		}
		ne := p.normBy[n]
		if ne == nil {
			return false
		}
		st.segs[idx].norm = ne
		take := len(job.data)
		if take > n {
			take = n
		}
		st.ext.SetPrefixBytes(job.data[:take])
		var row *parseRow
		for i := range p.parse {
			r := &p.parse[i]
			if r.state == state && st.ext.MatchTernary(r.val, r.mask) {
				row = r
				break
			}
		}
		if row == nil {
			// Parse miss: no stage walk, t_virtnet applied with vport=0.
			st.jr = append(st.jr, p.vdrop0)
			st.segs[idx].hi = len(st.jr)
			return true
		}
		st.jr = append(st.jr, row.entry)
		if row.more {
			// a_parse_more resubmits; this pass still traverses t_virtnet
			// with vport=0 before the resubmission takes effect.
			st.jr = append(st.jr, p.vdrop0)
			st.segs[idx].hi = len(st.jr)
			numBytes = row.numBytes
			state = row.nextState
			prev = idx
			continue
		}
		fin = row
		parsed, consumed = n, take
		finIdx = idx
		break
	}

	// Stage walk on the final pass.
	st.meta.Zero()
	ving := job.ving
	vport := uint64(0)
	dropped := false
	kind, id := fin.kind, fin.id
	curStage := 0
	for kind != persona.NTDone {
		fs := p.slots[slotKey(kind, uint64(id))]
		// A successor at or before the current stage can never be applied:
		// the interpreter's remaining stage tables don't hold its rows.
		if fs == nil || fs.stage <= curStage {
			break
		}
		curStage = fs.stage
		r := fs.lookup(st, ving, vport)
		if r == nil {
			break
		}
		st.jr = append(st.jr, r.hits...)
		for i := range r.ops {
			op := &r.ops[i]
			switch op.kind {
			case mopNop:
			case mopDrop:
				dropped = true
				vport = persona.VPortDrop
			case mopVPortConst:
				vport = op.cval & (1<<persona.VPortWidth - 1)
			case mopVPortVIngress:
				vport = ving
			case mopSet:
				st.setConst(op)
			case mopCopy:
				st.copyField(op)
			case mopAdd:
				dst := st.dst(op.dstMeta)
				x := dst.UintAt(op.dstOff, op.dstW) + op.cval
				dst.InsertUint(op.dstOff, op.dstW, x)
			}
		}
		kind, id = r.nextKind, r.nextID
	}

	// Virtual networking + egress. A vnet miss applies the table default
	// (a_vdrop, no entry hit).
	if dropped {
		st.segs[finIdx].hi = len(st.jr)
		return true
	}
	vr := p.vnet[vport]
	if vr == nil {
		st.segs[finIdx].hi = len(st.jr)
		return true
	}
	st.jr = append(st.jr, vr.entry)
	switch vr.kind {
	case vnetDrop:
		st.segs[finIdx].hi = len(st.jr)
		return true
	case vnetPhys:
		buf, ok := eng.egress(st, p, fin, job.data, parsed, consumed)
		if !ok {
			return false
		}
		st.segs[finIdx].outPort = vr.port
		st.segs[finIdx].outData = buf
		st.segs[finIdx].hi = len(st.jr)
		return true
	case vnetVirt:
		// Cross-plan call: the packet traverses egress (checksum, resize,
		// writeback), then recirculates into the target plan with the
		// deparsed bytes and a fresh parse loop — the link-time analysis
		// already bounded the chain. An unresolved target (vdev not fused)
		// declines before any side effect.
		if vr.target == nil {
			return false
		}
		buf, ok := eng.egress(st, p, fin, job.data, parsed, consumed)
		if !ok {
			return false
		}
		st.segs[finIdx].hi = len(st.jr)
		st.jobs = append(st.jobs, walkJob{
			p: vr.target, ving: vr.nextVIn, data: buf,
			inst: segRecirc, parent: finIdx, slot: 1,
		})
		return true
	case vnetMcast:
		// Multicast fan-out: the original pass hits the orig row and
		// recirculates into the first target; each egress-to-egress clone
		// re-runs egress on identical bytes (checksum recompute is
		// idempotent), hits its step row, and recirculates into its own
		// target. One chained walk per leaf.
		if vr.bad || vr.target == nil {
			return false
		}
		for i := range vr.steps {
			if vr.steps[i].target == nil {
				return false
			}
		}
		buf, ok := eng.egress(st, p, fin, job.data, parsed, consumed)
		if !ok {
			return false
		}
		st.jr = append(st.jr, vr.orig)
		st.segs[finIdx].hi = len(st.jr)
		st.jobs = append(st.jobs, walkJob{
			p: vr.target, ving: vr.nextVIn, data: buf,
			inst: segRecirc, parent: finIdx, slot: 1,
		})
		prevSeg := finIdx
		for i := range vr.steps {
			stp := &vr.steps[i]
			if len(st.segs) >= sim.MaxPasses {
				return false
			}
			cidx := len(st.segs)
			st.segs = append(st.segs, segment{
				pid: p.pid, inst: segClone,
				lo: len(st.jr), child: [2]int{-1, -1},
			})
			st.segs[prevSeg].child[0] = cidx
			if fin.csum && p.csum != nil {
				st.jr = append(st.jr, p.csum.entry)
			}
			st.jr = append(st.jr, p.resizeBy[parsed], p.wbBy[parsed], stp.entry)
			st.segs[cidx].hi = len(st.jr)
			st.jobs = append(st.jobs, walkJob{
				p: stp.target, ving: stp.vin, data: buf,
				inst: segRecirc, parent: cidx, slot: 1,
			})
			prevSeg = cidx
		}
		return true
	}
	return false
}

// egress journals the egress-side hits of a walk's final pass — checksum
// (when the parse row armed it), resize, writeback — and returns the
// deparsed bytes, declining when a required row is missing or the checksum
// row is undecodable.
func (eng *Engine) egress(st *execState, p *plan, fin *parseRow, data []byte, parsed, consumed int) ([]byte, bool) {
	if fin.csum {
		if p.csumBad {
			return nil, false
		}
		if p.csum != nil {
			st.fixCsum(p.csum)
			st.jr = append(st.jr, p.csum.entry)
		}
	}
	re, wb := p.resizeBy[parsed], p.wbBy[parsed]
	if re == nil || wb == nil {
		return nil, false
	}
	st.jr = append(st.jr, re, wb)
	buf := make([]byte, 0, parsed+len(data)-consumed)
	buf = st.ext.AppendSliceTo(buf, 0, parsed*8)
	buf = append(buf, data[consumed:]...)
	return buf, true
}

// commit replays the segment tree in the interpreter's BFS pass order,
// interleaved with the policing meter exactly as the interpreted ingress
// runs it: t_norm (and, on the root pass, t_assign) hit first, then
// a_police's meter + counter, then — only if the verdict isn't red — the
// rest of the pass. A red verdict prunes that pass's entry hits, output,
// and every follow-on pass, exactly where the interpreter's policing guard
// would have; sibling passes already queued continue unaffected.
func (eng *Engine) commit(st *execState, sw *sim.Switch) (sim.FastResult, bool) {
	var res sim.FastResult
	st.queue = append(st.queue[:0], 0)
	for head := 0; head < len(st.queue); head++ {
		s := &st.segs[st.queue[head]]
		switch s.inst {
		case segResubmit:
			res.Resubmits++
		case segRecirc:
			res.Recirculates++
		case segClone:
			res.Clones++
		}
		if s.parser {
			s.norm.RecordHit()
			if s.assign != nil {
				s.assign.RecordHit()
			}
			color, err := sw.FastMeterExecute(persona.MeterIngress, s.pid, s.dataLen)
			_ = sw.FastCounterInc(persona.CounterVDev, s.pid, s.dataLen)
			if err == nil && color == 2 {
				continue
			}
		}
		for _, e := range st.jr[s.lo:s.hi] {
			e.RecordHit()
		}
		if s.outData != nil {
			res.Outputs = append(res.Outputs, sim.Output{Port: s.outPort, Data: s.outData})
		}
		if s.child[0] >= 0 {
			st.queue = append(st.queue, s.child[0])
		}
		if s.child[1] >= 0 {
			st.queue = append(st.queue, s.child[1])
		}
	}
	return res, true
}

// lookup scans the slot's rows in match precedence order and returns the
// first match — by construction the same row the interpreter's lookup
// would pick.
func (fs *fusedSlot) lookup(st *execState, ving, vport uint64) *frow {
	switch fs.kind {
	case matchED:
		for _, r := range fs.rows {
			if st.ext.MatchTernary(r.val, r.mask) {
				return r
			}
		}
	case matchMeta:
		for _, r := range fs.rows {
			if st.meta.MatchTernary(r.val, r.mask) {
				return r
			}
		}
	case matchStd:
		for _, r := range fs.rows {
			if ving&r.vinMask == r.vinVal && vport&r.vpMask == r.vpVal {
				return r
			}
		}
	case matchNone:
		if len(fs.rows) > 0 {
			return fs.rows[0]
		}
	}
	return nil
}

func (st *execState) dst(meta bool) *bitfield.Value {
	if meta {
		return &st.meta
	}
	return &st.ext
}

// zeroRange clears [off, off+w) in 64-bit chunks without allocating.
func zeroRange(v *bitfield.Value, off, w int) {
	for w > 0 {
		n := w
		if n > 64 {
			n = 64
		}
		v.InsertUint(off, n, 0)
		off += n
		w -= n
	}
}

// setConst writes zext(cval) into dst[off, off+w).
func (st *execState) setConst(op *microOp) {
	dst := st.dst(op.dstMeta)
	if op.dstW <= 64 {
		dst.InsertUint(op.dstOff, op.dstW, op.cval)
		return
	}
	zeroRange(dst, op.dstOff, op.dstW-64)
	dst.InsertUint(op.dstOff+op.dstW-64, 64, op.cval)
}

// copyField writes zext/truncate of src[srcOff, srcOff+srcW) into
// dst[dstOff, dstOff+dstW), staging wide copies through tmp so an
// overlapping ed←ed move cannot corrupt itself.
func (st *execState) copyField(op *microOp) {
	if op.dstW <= 64 && op.srcW <= 64 {
		x := st.dst(op.srcMeta).UintAt(op.srcOff, op.srcW)
		st.dst(op.dstMeta).InsertUint(op.dstOff, op.dstW, x)
		return
	}
	st.dst(op.srcMeta).SliceInto(&st.tmp, op.srcOff, op.srcW)
	dst := st.dst(op.dstMeta)
	if op.dstW <= op.srcW {
		dst.InsertBits(op.dstOff, st.tmp, op.srcW-op.dstW, op.dstW)
		return
	}
	zeroRange(dst, op.dstOff, op.dstW-op.srcW)
	dst.InsertBits(op.dstOff+op.dstW-op.srcW, st.tmp, 0, op.srcW)
}

// fixCsum recomputes the IPv4 header checksum over ten 16-bit words,
// mirroring a_ipv4_csum: zero the checksum word, sum, fold three times,
// complement, write back.
func (st *execState) fixCsum(c *csumPlan) {
	base := c.hoffBits
	var sum uint64
	for k := 0; k < 10; k++ {
		if k == 5 {
			continue // the checksum word itself, zeroed before summing
		}
		sum += st.ext.UintAt(base+16*k, 16)
	}
	for i := 0; i < 3; i++ {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	st.ext.InsertUint(base+80, 16, ^sum&0xffff)
}
