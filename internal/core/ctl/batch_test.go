package ctl

import (
	"reflect"
	"sync"
	"testing"
)

// mustBatch applies a batch that is expected to succeed.
func mustBatch(t *testing.T, c *Ctl, owner string, ops []Op) []Result {
	t.Helper()
	results, err := c.WriteBatch(owner, ops)
	if err != nil {
		t.Fatalf("batch failed: %v", err)
	}
	return results
}

// configuredCtl is a control plane with one populated l2 device — the
// pre-batch state the atomicity tests snapshot.
func configuredCtl(t *testing.T, quota int) *Ctl {
	t.Helper()
	c := newPersonaCtl(t)
	ops := []Op{
		{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch", Quota: quota},
		{Kind: OpTableAdd, VDev: "l2", Table: "smac", Action: "_nop", Match: []string{"00:00:00:00:00:01"}},
		{Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "forward", Match: []string{"00:00:00:00:00:02"}, Args: []string{"2"}},
		{Kind: OpAssign, VDev: "l2", PhysPort: 1, VIngress: 1},
		{Kind: OpMapVPort, VDev: "l2", VPort: 2, PhysPort: 2},
	}
	mustBatch(t, c, "op", ops)
	return c
}

// TestWriteBatchApplies checks the happy path: one batch configures a whole
// forwarding function, results line up with ops, and traffic flows.
func TestWriteBatchApplies(t *testing.T) {
	c := configuredCtl(t, 0)
	outs, _, err := c.D.SW.Process(tcpFrame(80), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("batch-configured forwarding: %+v", outs)
	}
}

// failingBatches enumerates the required failure classes: a structurally
// fine batch whose k-th op fails at apply for semantic reasons.
func failingBatches(owner string) map[string]struct {
	owner string
	ops   []Op
	k     int
	code  Code
} {
	good1 := Op{Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "forward", Match: []string{"00:00:00:00:00:0a"}, Args: []string{"2"}}
	good2 := Op{Kind: OpTableAdd, VDev: "l2", Table: "smac", Action: "_nop", Match: []string{"00:00:00:00:00:0b"}}
	return map[string]struct {
		owner string
		ops   []Op
		k     int
		code  Code
	}{
		"bad action at k=1": {
			owner: owner,
			ops:   []Op{good1, {Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "ghost", Match: []string{"00:00:00:00:00:0c"}}, good2},
			k:     1, code: CodeNotFound,
		},
		"quota exhausted at k=2": {
			// The configured device has quota 4 and already holds 2 entries:
			// the first two adds fit, the third trips the quota.
			owner: owner,
			ops:   []Op{good1, good2, {Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "forward", Match: []string{"00:00:00:00:00:0d"}, Args: []string{"2"}}},
			k:     2, code: CodeExhausted,
		},
		"wrong owner at k=1": {
			owner: "mallory",
			ops: []Op{
				{Kind: OpLoadVDev, VDev: "intruder", Function: "l2_switch"},
				{Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "forward", Match: []string{"00:00:00:00:00:0e"}, Args: []string{"2"}},
			},
			k: 1, code: CodePermissionDenied,
		},
	}
}

// TestWriteBatchAtomicity proves the rollback protocol: a batch whose k-th
// op fails (bad action, quota exhaustion, foreign owner) leaves the entire
// switch dump — table contents with handles, hit counters and precedence
// order, virtual-network links, defaults, mirrors — bit-identical, along
// with the DPMU-level views (device list, per-device stats).
func TestWriteBatchAtomicity(t *testing.T) {
	for name, tc := range failingBatches("op") {
		t.Run(name, func(t *testing.T) {
			quota := 0
			if tc.code == CodeExhausted {
				quota = 4
			}
			c := configuredCtl(t, quota)

			// Run traffic first so hit counters are non-zero: rollback must
			// preserve them, not zero them.
			if _, _, err := c.D.SW.Process(tcpFrame(80), 1); err != nil {
				t.Fatal(err)
			}
			before := c.D.SW.Dump()
			vdevsBefore := c.D.VDevs()
			statsBefore := c.Stats()

			_, err := c.WriteBatch(tc.owner, tc.ops)
			if err == nil {
				t.Fatal("batch should fail")
			}
			ce, ok := err.(*Error)
			if !ok {
				t.Fatalf("error type %T, want *Error", err)
			}
			if ce.Op != tc.k {
				t.Errorf("failing op index = %d, want %d (%v)", ce.Op, tc.k, ce)
			}
			if ce.Code != tc.code {
				t.Errorf("code = %s, want %s (%v)", ce.Code, tc.code, ce)
			}

			after := c.D.SW.Dump()
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("switch state not bit-identical after rollback:\nbefore %+v\nafter  %+v", before, after)
			}
			if got := c.D.VDevs(); !reflect.DeepEqual(got, vdevsBefore) {
				t.Errorf("vdevs changed: %v -> %v", vdevsBefore, got)
			}
			if got := c.Stats(); !reflect.DeepEqual(got, statsBefore) {
				t.Errorf("stats changed:\nbefore %+v\nafter  %+v", statsBefore, got)
			}

			// The rolled-back switch still forwards.
			outs, _, err := c.D.SW.Process(tcpFrame(80), 1)
			if err != nil || len(outs) != 1 || outs[0].Port != 2 {
				t.Fatalf("post-rollback forwarding: %+v %v", outs, err)
			}
		})
	}
}

// TestWriteBatchRollsBackLoads covers rollback across device lifecycle ops:
// a batch that loads a new device, rewires assignments and then fails must
// also unwind the load and the assignment churn.
func TestWriteBatchRollsBackLoads(t *testing.T) {
	c := configuredCtl(t, 0)
	before := c.D.SW.Dump()
	_, err := c.WriteBatch("op", []Op{
		{Kind: OpLoadVDev, VDev: "fw", Function: "firewall"},
		{Kind: OpClearAssignments},
		{Kind: OpAssign, VDev: "fw", PhysPort: 1, VIngress: 1},
		{Kind: OpTableAdd, VDev: "fw", Table: "tcp_filter", Action: "ghost", Match: []string{"0&&&0", "0&&&0"}},
	})
	if err == nil {
		t.Fatal("batch should fail")
	}
	if !reflect.DeepEqual(before, c.D.SW.Dump()) {
		t.Fatal("load/assign churn not rolled back")
	}
	if got := c.D.VDevs(); len(got) != 1 || got[0] != "l2" {
		t.Fatalf("vdevs after rollback: %v", got)
	}
	// The original assignment is restored: traffic still forwards.
	outs, _, err := c.D.SW.Process(tcpFrame(80), 1)
	if err != nil || len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("post-rollback forwarding: %+v %v", outs, err)
	}
	// A fresh (valid) load still works after a rolled-back one.
	if _, err := c.WriteBatch("op", []Op{{Kind: OpLoadVDev, VDev: "fw", Function: "firewall"}}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteBatchAtomicityUnderConcurrentReads runs failing batches while a
// reader hammers the data plane and the stats path; meant for -race. The
// final state must still diff clean.
func TestWriteBatchAtomicityUnderConcurrentReads(t *testing.T) {
	c := configuredCtl(t, 0)
	before := c.D.SW.Dump()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _, _ = c.D.SW.Process(tcpFrame(80), 1)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Stats()
			_, _ = c.D.StatsForVDev("op", "l2")
		}
	}()

	bad := []Op{
		{Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "forward", Match: []string{"00:00:00:00:00:33"}, Args: []string{"2"}},
		{Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "ghost", Match: []string{"00:00:00:00:00:34"}},
	}
	for i := 0; i < 20; i++ {
		if _, err := c.WriteBatch("op", bad); err == nil {
			t.Fatal("batch should fail")
		}
	}
	close(stop)
	wg.Wait()

	after := c.D.SW.Dump()
	// The reader goroutine keeps incrementing hit counters between batches,
	// so mask them out; everything else must be identical.
	for name, td := range before.Tables {
		for i := range td.Entries {
			td.Entries[i].Hits = 0
		}
		before.Tables[name] = td
	}
	for name, td := range after.Tables {
		for i := range td.Entries {
			td.Entries[i].Hits = 0
		}
		after.Tables[name] = td
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("state (minus hit counters) not identical after concurrent failing batches:\nbefore %+v\nafter  %+v", before, after)
	}
}
