package ctl

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// The HTTP surface, stdlib-only JSON over five routes:
//
//	POST /v1/write   {"owner": "...", "ops": [Op...]}         -> WriteResponse
//	GET  /v1/read    ?kind=vdevs|snapshots|stats|health|lint|prove|fuse|ports|port_health|dump&vdev=&owner= -> ReadResult
//	GET  /v1/stats                                            -> {"vdevs": [VDevStats...]}
//	GET  /v1/health  [?vdev=]                                 -> ReadResponse (health only)
//	GET  /v1/lint    [?vdev=]                                 -> ReadResponse (verifier findings)
//	GET  /v1/events  ?since=N [&wait=seconds]                 -> EventsResponse (long poll)
//
// Every write is a WriteBatch — one op is a batch of one — so remote writes
// get the same atomicity as local ones.

// WriteRequest is the body of POST /v1/write. A non-empty RequestID makes
// the write idempotent: a retry carrying the same ID replays the original
// outcome instead of applying the ops again.
type WriteRequest struct {
	Owner     string `json:"owner"`
	RequestID string `json:"request_id,omitempty"`
	Ops       []Op   `json:"ops"`
}

// WriteResponse carries per-op results, or the structured error that rolled
// the batch back.
type WriteResponse struct {
	Results []Result `json:"results,omitempty"`
	Error   *Error   `json:"error,omitempty"`
}

// ReadResponse is the body of GET /v1/read.
type ReadResponse struct {
	Result *ReadResult `json:"result,omitempty"`
	Error  *Error      `json:"error,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	VDevs []statsEntry `json:"vdevs"`
}

// statsEntry mirrors dpmu.VDevStats with JSON tags.
type statsEntry struct {
	VDev    string       `json:"vdev"`
	Owner   string       `json:"owner,omitempty"`
	Packets uint64       `json:"packets"`
	Bytes   uint64       `json:"bytes"`
	Tables  []tableEntry `json:"tables,omitempty"`
}

type tableEntry struct {
	Table   string `json:"table"`
	Hits    int64  `json:"hits"`
	Misses  int64  `json:"misses"`
	Entries int    `json:"entries"`
}

// EventsResponse is the body of GET /v1/events. Next is the cursor to pass
// as ?since= on the next poll (unchanged when the poll timed out empty).
// Head is the seq of the newest event this server instance has published; a
// Head below the ?since= the client sent means the server restarted (seq
// restarts at 0) and the cursor is from the previous incarnation — Next is
// then reset to 0 so the follower replays the new instance's buffer instead
// of silently waiting for the new seq to catch up with the stale cursor.
type EventsResponse struct {
	Events []Event `json:"events"`
	Next   int64   `json:"next"`
	Head   int64   `json:"head"`
}

// maxWait bounds the /v1/events long poll.
const maxWait = 30 * time.Second

// NewServeMux returns the management API handler for a control plane.
func NewServeMux(c *Ctl) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/write", c.handleWrite)
	mux.HandleFunc("/v1/read", c.handleRead)
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/v1/health", c.handleHealth)
	mux.HandleFunc("/v1/lint", c.handleLint)
	mux.HandleFunc("/v1/events", c.handleEvents)
	return mux
}

// httpStatus maps error codes onto HTTP statuses.
func httpStatus(code Code) int {
	switch code {
	case CodeNotFound:
		return http.StatusNotFound
	case CodePermissionDenied:
		return http.StatusForbidden
	case CodeExhausted:
		return http.StatusTooManyRequests
	case CodeAlreadyExists:
		return http.StatusConflict
	case CodeInternal:
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (c *Ctl) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req WriteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		e := invalidf("bad request body: %v", err)
		writeJSON(w, httpStatus(e.Code), WriteResponse{Error: e})
		return
	}
	results, err := c.WriteBatchID(req.Owner, req.RequestID, req.Ops)
	if err != nil {
		ce := asError(err)
		writeJSON(w, httpStatus(ce.Code), WriteResponse{Error: ce})
		return
	}
	writeJSON(w, http.StatusOK, WriteResponse{Results: results})
}

func (c *Ctl) handleRead(w http.ResponseWriter, r *http.Request) {
	q := &Query{Kind: r.URL.Query().Get("kind"), VDev: r.URL.Query().Get("vdev")}
	res, err := c.Read(r.URL.Query().Get("owner"), q)
	if err != nil {
		ce := wrap(err, -1)
		writeJSON(w, httpStatus(ce.Code), ReadResponse{Error: ce})
		return
	}
	writeJSON(w, http.StatusOK, ReadResponse{Result: res})
}

// handleHealth is the dedicated health route: the same payload as
// /v1/read?kind=health, as its own endpoint so monitors need no query
// grammar. Hitting it advances the breaker state machine.
func (c *Ctl) handleHealth(w http.ResponseWriter, r *http.Request) {
	q := &Query{Kind: "health", VDev: r.URL.Query().Get("vdev")}
	res, err := c.Read("", q)
	if err != nil {
		ce := wrap(err, -1)
		writeJSON(w, httpStatus(ce.Code), ReadResponse{Error: ce})
		return
	}
	writeJSON(w, http.StatusOK, ReadResponse{Result: res})
}

// handleLint is the dedicated verifier route: the same payload as
// /v1/read?kind=lint, as its own endpoint so CI gates can curl it directly.
func (c *Ctl) handleLint(w http.ResponseWriter, r *http.Request) {
	q := &Query{Kind: "lint", VDev: r.URL.Query().Get("vdev")}
	res, err := c.Read("", q)
	if err != nil {
		ce := wrap(err, -1)
		writeJSON(w, httpStatus(ce.Code), ReadResponse{Error: ce})
		return
	}
	writeJSON(w, http.StatusOK, ReadResponse{Result: res})
}

func (c *Ctl) handleStats(w http.ResponseWriter, r *http.Request) {
	all := c.Stats()
	resp := StatsResponse{VDevs: make([]statsEntry, len(all))}
	for i, st := range all {
		e := statsEntry{VDev: st.VDev, Owner: st.Owner, Packets: st.Packets, Bytes: st.Bytes}
		for _, ts := range st.Tables {
			e.Tables = append(e.Tables, tableEntry{Table: ts.Table, Hits: ts.Hits, Misses: ts.Misses, Entries: ts.Entries})
		}
		resp.VDevs[i] = e
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Ctl) handleEvents(w http.ResponseWriter, r *http.Request) {
	since, _ := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
	wait := maxWait
	if s := r.URL.Query().Get("wait"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs < 0 {
			writeJSON(w, http.StatusBadRequest, ReadResponse{Error: invalidf("bad wait %q", s)})
			return
		}
		if d := time.Duration(secs) * time.Second; d < wait {
			wait = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	events, head := c.Events(ctx, since)
	next := since
	if head < next {
		// Cursor from a previous server incarnation: rewind to the start of
		// this instance's buffer so its events replay (waitSince returned
		// immediately, so the client learns without burning a full poll).
		next = 0
	}
	for _, e := range events {
		if e.Seq > next {
			next = e.Seq
		}
	}
	writeJSON(w, http.StatusOK, EventsResponse{Events: events, Next: next, Head: head})
}
