package ctl

import (
	"context"
	"strings"
	"testing"
	"time"

	pktio "hyper4/internal/runtime"
)

// newIOCtl is newPersonaCtl plus a live packet I/O runtime driven by the
// persona switch, the wiring hp4switch performs.
func newIOCtl(t *testing.T) (*Ctl, *pktio.Runtime) {
	t.Helper()
	c := newPersonaCtl(t)
	rt := pktio.New(c.D.SW, pktio.Config{Workers: 1})
	rt.Start()
	t.Cleanup(rt.Close)
	c.IO = rt
	return c, rt
}

func TestPortOpsParse(t *testing.T) {
	op, _, err := ParseLine("port attach 3 udp:127.0.0.1:9000")
	if err != nil || op == nil || op.Kind != OpPortAttach || op.PhysPort != 3 || op.Spec != "udp:127.0.0.1:9000" {
		t.Fatalf("attach parse: %+v, %v", op, err)
	}
	op, _, err = ParseLine("port detach 3")
	if err != nil || op == nil || op.Kind != OpPortDetach || op.PhysPort != 3 {
		t.Fatalf("detach parse: %+v, %v", op, err)
	}
	_, q, err := ParseLine("port list")
	if err != nil || q == nil || q.Kind != "ports" {
		t.Fatalf("list parse: %+v, %v", q, err)
	}
	for _, bad := range []string{"port", "port attach 1", "port attach x udp:a:1", "port detach", "port list extra", "port frobnicate"} {
		if _, _, err := ParseLine(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		} else if CodeOf(err) != CodeInvalidArgument {
			t.Errorf("%q: code %v", bad, CodeOf(err))
		}
	}
}

func TestPortLifecycleThroughCLI(t *testing.T) {
	c, _ := newIOCtl(t)
	cli := NewCLI(c, "op")

	out, err := cli.Exec("port attach 1 udp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "port 1 attached") {
		t.Fatalf("attach output: %q", out)
	}
	out, err = cli.Exec("port list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "port 1: udp:127.0.0.1:0 rx=0 tx=0") {
		t.Fatalf("list output: %q", out)
	}

	// Structured error codes: double attach, detach of the wrong port.
	_, err = cli.Exec("port attach 1 udp:127.0.0.1:0")
	if CodeOf(err) != CodeAlreadyExists {
		t.Fatalf("double attach: %v (code %v)", err, CodeOf(err))
	}
	_, err = cli.Exec("port detach 9")
	if CodeOf(err) != CodeNotFound {
		t.Fatalf("detach missing: %v (code %v)", err, CodeOf(err))
	}
	_, err = cli.Exec("port attach 2 carrier-pigeon:roof")
	if CodeOf(err) != CodeInvalidArgument {
		t.Fatalf("bad spec: %v (code %v)", err, CodeOf(err))
	}

	if _, err := cli.Exec("port detach 1"); err != nil {
		t.Fatal(err)
	}
	out, _ = cli.Exec("port list")
	if out != "no ports attached" {
		t.Fatalf("list after detach: %q", out)
	}
}

func TestPortOpsWithoutRuntimeRejected(t *testing.T) {
	c := newPersonaCtl(t) // no IO wired
	cli := NewCLI(c, "op")
	_, err := cli.Exec("port attach 1 udp:127.0.0.1:0")
	if CodeOf(err) != CodeInvalidArgument {
		t.Fatalf("attach with nil IO: %v (code %v)", err, CodeOf(err))
	}
	out, err := cli.Exec("port list")
	if err != nil || out != "no ports attached" {
		t.Fatalf("list with nil IO: %q, %v", out, err)
	}
}

// TestBatchRollbackDetachesPorts verifies the compensation path: a failing
// batch must not leave the ports it attached behind, or a retry of the
// corrected batch would hit ALREADY_EXISTS.
func TestBatchRollbackDetachesPorts(t *testing.T) {
	c, rt := newIOCtl(t)
	_, err := c.WriteBatch("op", []Op{
		{Kind: OpPortAttach, PhysPort: 1, Spec: "udp:127.0.0.1:0"},
		{Kind: OpLoadVDev, VDev: "ghost", Function: "no_such_function"},
	})
	if err == nil {
		t.Fatal("batch with bad load succeeded")
	}
	if n := len(rt.Ports()); n != 0 {
		t.Fatalf("%d ports still attached after rolled-back batch", n)
	}
	// The corrected batch succeeds on retry.
	if _, err := c.WriteBatch("op", []Op{
		{Kind: OpPortAttach, PhysPort: 1, Spec: "udp:127.0.0.1:0"},
		{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"},
	}); err != nil {
		t.Fatal(err)
	}
	if n := len(rt.Ports()); n != 1 {
		t.Fatalf("ports after corrected batch = %d", n)
	}
}

func TestPortEventsPublished(t *testing.T) {
	c, _ := newIOCtl(t)
	cli := NewCLI(c, "op")
	if _, err := cli.Exec("port attach 1 udp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("port detach 1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	evs, _ := c.events.waitSince(ctx, 0)
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "port_attach") || !strings.Contains(joined, "port_detach") {
		t.Fatalf("events: %v", kinds)
	}
}
