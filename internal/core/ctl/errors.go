// Package ctl is the typed control plane over the DPMU: a P4Runtime-inspired
// operation model (one Op union type covering device lifecycle, virtual
// networking and table writes), structured error codes, atomic batched
// writes with checkpoint/rollback, and a remote management surface (an HTTP
// service plus a client speaking the same script dialect as the REPL). The
// dpmu package stays the mechanism — translation, authorization, quotas —
// while ctl is the policy-free protocol layer every management path
// (hp4switch REPL, -commands scripts, hp4ctl, raw HTTP) funnels through.
package ctl

import (
	"errors"
	"fmt"

	"hyper4/internal/core/dpmu"
	pktio "hyper4/internal/runtime"
)

// Code classifies a control-plane failure, mirroring the gRPC/P4Runtime
// canonical codes the paper's ecosystem uses.
type Code string

const (
	CodeOK               Code = "OK"
	CodeInvalidArgument  Code = "INVALID_ARGUMENT"
	CodeNotFound         Code = "NOT_FOUND"
	CodeAlreadyExists    Code = "ALREADY_EXISTS"
	CodePermissionDenied Code = "PERMISSION_DENIED"
	CodeExhausted        Code = "RESOURCE_EXHAUSTED"
	CodeAborted          Code = "ABORTED"
	CodeInternal         Code = "INTERNAL"
)

// ExitCode maps a Code onto a stable process exit code, so scripts driving
// hp4ctl (or hp4switch -commands) can distinguish a typo from an
// authorization failure without parsing error text.
func (c Code) ExitCode() int {
	switch c {
	case CodeOK:
		return 0
	case CodeInvalidArgument:
		return 2
	case CodeNotFound:
		return 3
	case CodePermissionDenied:
		return 4
	case CodeExhausted:
		return 5
	case CodeAborted:
		return 6
	case CodeAlreadyExists:
		return 7
	}
	return 1
}

// Error is a structured control-plane failure: the code, the index of the
// failing op within its batch (-1 for single ops and parse errors), and a
// human-readable message. It serializes as the error half of every API
// response.
type Error struct {
	Code Code   `json:"code"`
	Op   int    `json:"op"`
	Msg  string `json:"msg"`
}

func (e *Error) Error() string {
	if e.Op >= 0 {
		return fmt.Sprintf("%s (op %d): %s", e.Code, e.Op, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Msg)
}

// ErrUnknown marks a line that is not a control-plane command at all; the
// hp4switch REPL uses it to fall through to raw switch-runtime commands.
var ErrUnknown = errors.New("unknown control command")

// CodeOf classifies any error: a *Error keeps its code, dpmu sentinel errors
// map to their canonical codes, parse failures are INVALID_ARGUMENT, and
// anything unclassified is INTERNAL.
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Code
	}
	switch {
	case errors.Is(err, dpmu.ErrNotFound):
		return CodeNotFound
	case errors.Is(err, dpmu.ErrPermission):
		return CodePermissionDenied
	case errors.Is(err, dpmu.ErrExhausted):
		return CodeExhausted
	case errors.Is(err, dpmu.ErrExists):
		return CodeAlreadyExists
	case errors.Is(err, dpmu.ErrInvalid), errors.Is(err, ErrUnknown):
		return CodeInvalidArgument
	// Packet I/O runtime sentinels (port ops).
	case errors.Is(err, pktio.ErrPortBusy):
		return CodeAlreadyExists
	case errors.Is(err, pktio.ErrNoPort):
		return CodeNotFound
	case errors.Is(err, pktio.ErrBadSpec):
		return CodeInvalidArgument
	case errors.Is(err, pktio.ErrClosed):
		return CodeAborted
	}
	return CodeInternal
}

// invalidf builds an INVALID_ARGUMENT error (the parse layer's currency).
func invalidf(format string, a ...any) *Error {
	return &Error{Code: CodeInvalidArgument, Op: -1, Msg: fmt.Sprintf(format, a...)}
}

// wrap converts any error into a *Error positioned at batch index op.
func wrap(err error, op int) *Error {
	if err == nil {
		return nil
	}
	var ce *Error
	if errors.As(err, &ce) {
		return &Error{Code: ce.Code, Op: op, Msg: ce.Msg}
	}
	return &Error{Code: CodeOf(err), Op: op, Msg: err.Error()}
}

// asError surfaces an error's *Error form, preserving its batch position.
func asError(err error) *Error {
	var ce *Error
	if errors.As(err, &ce) {
		return ce
	}
	return wrap(err, -1)
}
