package ctl

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyper4/internal/chaos"
	"hyper4/internal/core/dpmu"
	"hyper4/internal/pkt"
)

// tenantSpec describes one tenant's emulated L2 switch for the chaos
// harness: two hosts on two physical ports, isolated from the other tenant.
type tenantSpec struct {
	owner string
	vdev  string
	macs  [2]pkt.MAC
	ports [2]int
}

// ops returns the management batch that loads and wires the tenant.
func (ts tenantSpec) ops() []Op {
	return []Op{
		{Kind: OpLoadVDev, VDev: ts.vdev, Function: "l2_switch"},
		{Kind: OpTableAdd, VDev: ts.vdev, Table: "smac", Action: "_nop", Match: []string{ts.macs[0].String()}},
		{Kind: OpTableAdd, VDev: ts.vdev, Table: "dmac", Action: "forward", Match: []string{ts.macs[1].String()}, Args: []string{fmt.Sprint(ts.ports[1])}},
		{Kind: OpAssign, VDev: ts.vdev, PhysPort: ts.ports[0], VIngress: ts.ports[0]},
		{Kind: OpMapVPort, VDev: ts.vdev, VPort: ts.ports[1], PhysPort: ts.ports[1]},
	}
}

// frame builds the tenant's i-th traffic frame; the payload varies so the
// byte-identity check compares real content, not one repeated packet.
func (ts tenantSpec) frame(i int) []byte {
	return pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: ts.macs[1], Src: ts.macs[0], EtherType: 0x0800},
		pkt.Payload(fmt.Sprintf("%s-%04d", ts.owner, i)),
	))
}

// healthOf polls one device's health through the management API. Every poll
// is a real management read, so it advances the time-based breaker
// transitions (quarantined -> probing -> healthy) like a metrics scrape.
func healthOf(t *testing.T, client *Client, vdev string) dpmu.VDevHealth {
	t.Helper()
	res, err := client.Health(vdev)
	if err != nil {
		t.Fatalf("health %s: %v", vdev, err)
	}
	return res.Health.VDevs[0]
}

// TestChaosHarness is the end-to-end fault-containment scenario: two
// tenants share one persona switch, a seeded injector panics inside one
// tenant's actions while both tenants' traffic and concurrent management
// operations keep flowing. The harness asserts the switch never dies, the
// faulty device walks healthy -> degraded -> quarantined -> probing ->
// healthy (read back from the event stream, which records every breaker
// transition), and the healthy tenant's outputs are byte-identical to a
// no-fault run. Run it under -race: the traffic, probe, and management
// paths all cross.
func TestChaosHarness(t *testing.T) {
	alice := tenantSpec{owner: "alice", vdev: "al2", ports: [2]int{1, 2},
		macs: [2]pkt.MAC{pkt.MustMAC("00:00:00:00:00:01"), pkt.MustMAC("00:00:00:00:00:02")}}
	bob := tenantSpec{owner: "bob", vdev: "bl2", ports: [2]int{3, 4},
		macs: [2]pkt.MAC{pkt.MustMAC("00:00:00:00:00:03"), pkt.MustMAC("00:00:00:00:00:04")}}

	// The faulted switch, managed remotely; breakers trip after 3 faults
	// and probe with 2 clean packets after a 50ms open interval.
	c := newPersonaCtl(t)
	c.D.SetHealthConfig(dpmu.HealthConfig{
		Window:       5 * time.Second,
		TripFaults:   3,
		OpenFor:      50 * time.Millisecond,
		ProbePackets: 2,
		Policy:       dpmu.PolicyDrop,
	})
	srv := httptest.NewServer(NewServeMux(c))
	defer srv.Close()
	aliceClient := &Client{Base: srv.URL, Owner: alice.owner, Timeout: 5 * time.Second, Retries: 3}
	bobClient := &Client{Base: srv.URL, Owner: bob.owner, Timeout: 5 * time.Second, Retries: 3}

	// The reference switch: identical tenants, no injector, no faults.
	ref := newPersonaCtl(t)

	alicePID := 0
	for _, load := range []struct {
		client *Client
		ts     tenantSpec
	}{{aliceClient, alice}, {bobClient, bob}} {
		results, err := load.client.Write(load.ts.ops())
		if err != nil {
			t.Fatalf("load %s: %v", load.ts.vdev, err)
		}
		if load.ts.owner == "alice" {
			alicePID = results[0].PID
		}
		if _, err := ref.WriteBatch(load.ts.owner, load.ts.ops()); err != nil {
			t.Fatalf("load %s on reference: %v", load.ts.vdev, err)
		}
	}
	if alicePID == 0 {
		t.Fatal("no PID for alice's device")
	}
	if got := healthOf(t, aliceClient, alice.vdev); got.State != dpmu.Healthy {
		t.Fatalf("initial health: %+v", got)
	}

	// Seeded chaos: every action attributed to alice's program panics,
	// capped at 3 injected panics — exactly one breaker trip, then the
	// defect "clears" and probes find the device healthy again.
	c.D.SW.SetInjector(chaos.New(chaos.Spec{Seed: 7, Attr: uint64(alicePID), PanicEvery: 1, PanicFirst: 3}))

	const bobPackets = 300
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Alice's traffic: faults, then quarantine drops, then probes. Errors
	// are the point — the only assertion is that the switch survives them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _, _ = c.D.SW.Process(alice.frame(i), alice.ports[0])
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Bob's traffic: a fixed sequence whose outputs must match the no-fault
	// reference byte for byte.
	bobOuts := make([][]byte, 0, bobPackets)
	bobPorts := make([]int, 0, bobPackets)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < bobPackets; i++ {
			outs, _, err := c.D.SW.Process(bob.frame(i), bob.ports[0])
			if err != nil || len(outs) != 1 {
				t.Errorf("bob packet %d: outs=%v err=%v", i, outs, err)
				return
			}
			bobOuts = append(bobOuts, bytes.Clone(outs[0].Data))
			bobPorts = append(bobPorts, outs[0].Port)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Concurrent management: reads and retried writes against the API while
	// the data plane is faulting, at a controller-like cadence (every batch
	// write checkpoints the switch for atomic rollback, so a hot write loop
	// would measure the checkpoint path, not fault containment). The
	// table_add touches a host bob's traffic never sends to, so it cannot
	// perturb the byte-identity check.
	var mgmtWrites atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := bobClient.Read(&Query{Kind: "stats", VDev: bob.vdev}); err != nil {
				t.Errorf("stats during chaos: %v", err)
				return
			}
			op := Op{Kind: OpTableAdd, VDev: bob.vdev, Table: "dmac", Action: "forward",
				Match: []string{fmt.Sprintf("00:00:00:00:10:%02x", i%256)}, Args: []string{fmt.Sprint(bob.ports[1])}}
			if _, err := bobClient.Write([]Op{op}); err != nil {
				t.Errorf("write during chaos: %v", err)
				return
			}
			mgmtWrites.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Poll until the device has tripped once and recovered. The polls
	// themselves drive the time-based transitions; the exact state walk is
	// asserted from the event stream below, so a poll needn't land inside
	// the 50ms quarantine window to observe it.
	deadline := time.Now().Add(15 * time.Second)
	for {
		got := healthOf(t, aliceClient, alice.vdev)
		if got.State == dpmu.Healthy && got.Trips == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("device %s never tripped and recovered: %+v", alice.vdev, got)
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if mgmtWrites.Load() == 0 {
		t.Error("management loop never completed a write")
	}

	// The event stream recorded every breaker transition, in order.
	events, _, err := aliceClient.Events(0, 0)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	var walk []string
	for _, e := range events {
		if e.Kind != "health" {
			continue
		}
		if e.VDev != alice.vdev {
			t.Errorf("health event for co-tenant device: %+v", e)
			continue
		}
		walk = append(walk, e.Msg)
	}
	want := []string{"degraded", "quarantined", "probing", "healthy"}
	if fmt.Sprint(walk) != fmt.Sprint(want) {
		t.Errorf("breaker walk = %v, want %v", walk, want)
	}

	// Bob never saw a fault and never left Healthy.
	if got := healthOf(t, bobClient, bob.vdev); got.State != dpmu.Healthy || got.Faults != 0 {
		t.Errorf("co-tenant health: %+v", got)
	}

	// Byte-identity: replay bob's exact sequence on the no-fault reference
	// switch and compare every output frame and egress port.
	for i := 0; i < bobPackets; i++ {
		outs, _, err := ref.D.SW.Process(bob.frame(i), bob.ports[0])
		if err != nil || len(outs) != 1 {
			t.Fatalf("reference bob packet %d: outs=%v err=%v", i, outs, err)
		}
		if outs[0].Port != bobPorts[i] || !bytes.Equal(outs[0].Data, bobOuts[i]) {
			t.Fatalf("bob packet %d diverged from no-fault run:\n got port %d data %x\nwant port %d data %x",
				i, bobPorts[i], bobOuts[i], outs[0].Port, outs[0].Data)
		}
	}

	// Alice is fully restored: her traffic forwards unmodified again.
	frame := alice.frame(9999)
	outs, _, err := c.D.SW.Process(frame, alice.ports[0])
	if err != nil || len(outs) != 1 || outs[0].Port != alice.ports[1] || !bytes.Equal(outs[0].Data, frame) {
		t.Fatalf("restored alice traffic: outs=%v err=%v", outs, err)
	}

	// The faulted run counted exactly the 3 injected panics against alice.
	snap := c.D.SW.Metrics()
	if snap.Faults.Panic != 3 {
		t.Errorf("panic faults = %d, want 3", snap.Faults.Panic)
	}
	if snap.Faults.QuarantineDrops == 0 {
		t.Error("no quarantine drops recorded")
	}
}
