package ctl

import (
	"fmt"
	"strings"

	"hyper4/internal/core/verify"
)

// The control plane's verification surface:
//
//	verify [vdev]   — an Op: runs the static verifier over the CURRENT
//	                  state, mid-batch. Error findings fail the op, which
//	                  rolls the whole batch back — so appending "verify" to
//	                  an hp4ctl -batch script turns the batch into a
//	                  dry-run-admission write: either the resulting
//	                  configuration verifies clean, or none of it applies.
//	lint [vdev]     — a Query: the same findings, read-only, never gating.
//
// Both run on a snapshot (DPMU.VerifySource copies state out under a read
// lock), so neither touches the packet path: the hot-path cost of admission
// verification is zero.

// applyVerify executes the verify op against the DPMU's current state.
func (c *Ctl) applyVerify(op *Op) (Result, error) {
	findings := filterFindings(verify.Check(c.D.VerifySource()), op.VDev)
	errs, warns := 0, 0
	for _, f := range findings {
		if f.Severity == verify.SevError {
			errs++
		} else {
			warns++
		}
	}
	if errs > 0 {
		return Result{}, &Error{Code: CodeAborted, Op: -1, Msg: findingsMsg(findings, errs)}
	}
	msg := "verify: clean"
	if warns > 0 {
		msg = fmt.Sprintf("verify: %d warning(s)", warns)
	}
	return Result{Msg: msg}, nil
}

// filterFindings scopes findings to one device. Global findings (topology,
// untraceable rows — no VDev) always stay: a vnet cycle concerns every
// device on it.
func filterFindings(fs []verify.Finding, vdev string) []verify.Finding {
	if vdev == "" {
		return fs
	}
	out := fs[:0:0]
	for _, f := range fs {
		if f.VDev == "" || f.VDev == vdev {
			out = append(out, f)
		}
	}
	return out
}

// findingsMsg renders a bounded, deterministic failure message.
func findingsMsg(fs []verify.Finding, errs int) string {
	const maxShown = 8
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d error finding(s)", errs)
	shown := 0
	for _, f := range fs {
		if shown == maxShown {
			fmt.Fprintf(&b, "; and %d more", len(fs)-shown)
			break
		}
		b.WriteString("; ")
		b.WriteString(f.String())
		shown++
	}
	return b.String()
}
