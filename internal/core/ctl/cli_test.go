package ctl

import (
	"errors"
	"strings"
	"testing"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/persona"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

var (
	mac1 = pkt.MustMAC("00:00:00:00:00:01")
	mac2 = pkt.MustMAC("00:00:00:00:00:02")
	ip1  = pkt.MustIP4("10.0.0.1")
	ip2  = pkt.MustIP4("10.0.0.2")
)

// newPersonaCtl builds a control plane over a reference persona switch.
func newPersonaCtl(t *testing.T) *Ctl {
	t.Helper()
	p, err := persona.Generate(persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("hp4", p.Program)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpmu.New(sw, p)
	if err != nil {
		t.Fatal(err)
	}
	return New(d)
}

func tcpFrame(dstPort uint16) []byte {
	return pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ip1, Dst: ip2},
		&pkt.TCP{SrcPort: 44444, DstPort: dstPort},
		pkt.Payload("data"),
	))
}

// TestCLIFullScenario drives the whole Figure 2(c) flow through text
// commands: load two devices, populate them in their native dialect, wire
// the virtual network, snapshot, and verify traffic at each step.
func TestCLIFullScenario(t *testing.T) {
	c := newPersonaCtl(t)
	cli := NewCLI(c, "op")

	script := `
# two virtual devices
load l2 l2_switch
load fw firewall

# native-dialect population, prefixed by the device name
l2 table_add smac _nop 00:00:00:00:00:01 =>
l2 table_add dmac forward 00:00:00:00:00:01 => 1
l2 table_add smac _nop 00:00:00:00:00:02 =>
l2 table_add dmac forward 00:00:00:00:00:02 => 2
fw table_add dmac forward 00:00:00:00:00:02 => 2
fw table_add tcp_filter _drop 0&&&0 5201&&&0xffff => 1

# wiring
map l2 1 1
map l2 2 2
map fw 2 2
snapshot_save A 1:l2:1 2:l2:2
snapshot_save B 1:fw:1 2:fw:2
snapshot_activate A
`
	if err := cli.ExecAll(script); err != nil {
		t.Fatal(err)
	}
	out, err := cli.Exec("vdevs")
	if err != nil || out != "fw l2" {
		t.Errorf("vdevs = %q, %v", out, err)
	}

	blocked := tcpFrame(5201)
	outs, _, err := c.D.SW.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("under A (l2) the frame passes: %+v", outs)
	}
	if _, err := cli.Exec("snapshot_activate B"); err != nil {
		t.Fatal(err)
	}
	outs, _, err = c.D.SW.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("under B (fw) the frame drops: %+v", outs)
	}

	// Traffic stats via CLI.
	statsOut, err := cli.Exec("stats fw")
	if err != nil || !strings.HasPrefix(statsOut, "passes=") {
		t.Errorf("stats = %q, %v", statsOut, err)
	}

	// Virtual delete via handle.
	h, err := cli.Exec("l2 table_add dmac forward 00:00:00:00:00:09 => 1")
	if err != nil || !strings.HasPrefix(h, "handle ") {
		t.Fatalf("add = %q, %v", h, err)
	}
	if _, err := cli.Exec("l2 table_delete dmac " + strings.TrimPrefix(h, "handle ")); err != nil {
		t.Fatal(err)
	}

	// Modify through the CLI.
	h2cmd, err := cli.Exec("l2 table_add dmac forward 00:00:00:00:00:0a => 1")
	if err != nil {
		t.Fatal(err)
	}
	handle := strings.TrimPrefix(h2cmd, "handle ")
	if _, err := cli.Exec("l2 table_modify dmac " + handle + " _drop 00:00:00:00:00:0a"); err != nil {
		t.Fatal(err)
	}

	// Unload through the CLI.
	if _, err := cli.Exec("unload fw"); err != nil {
		t.Fatal(err)
	}
	if out, _ := cli.Exec("vdevs"); out != "l2" {
		t.Errorf("after unload: %q", out)
	}
}

func TestCLILinkAndMcast(t *testing.T) {
	c := newPersonaCtl(t)
	cli := NewCLI(c, "op")
	script := `
load src l2_switch
load a l2_switch
load b l2_switch
src table_add dmac forward 00:00:00:00:00:02 => 10
a table_add dmac forward 00:00:00:00:00:02 => 5
b table_add dmac forward 00:00:00:00:00:02 => 6
assign 1 src 1
map a 5 5
map b 6 6
mcast src 10 a:1 b:1
`
	if err := cli.ExecAll(script); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	outs, _, err := c.D.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("multicast copies: %+v", outs)
	}
}

// TestCLIErrorCodes asserts not just that bad commands fail, but that each
// failure carries the right structured code — the property hp4switch and
// hp4ctl exit codes are built on.
func TestCLIErrorCodes(t *testing.T) {
	c := newPersonaCtl(t)
	cli := NewCLI(c, "op")
	if _, err := cli.Exec("load l2 l2_switch"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		cmd  string
		code Code
	}{
		{"load x", CodeInvalidArgument},           // arity
		{"load x nosuchfn", CodeNotFound},         // unknown builtin
		{"load l2 l2_switch", CodeAlreadyExists},  // duplicate device
		{"assign one l2 1", CodeInvalidArgument},  // bad port token
		{"map l2 x 1", CodeInvalidArgument},       // bad vport token
		{"link l2 x l2 1", CodeInvalidArgument},   // bad port token
		{"mcast l2 10 junk", CodeInvalidArgument}, // bad target spec
		{"ratelimit l2 x y", CodeInvalidArgument}, // bad thresholds
		{"stats ghost", CodeNotFound},             // unknown device
		{"snapshot_save", CodeInvalidArgument},    // arity
		{"snapshot_save A port-vdev", CodeInvalidArgument},
		{"snapshot_activate ghost", CodeNotFound},
		{"l2 table_add ghost _nop =>", CodeNotFound},          // unknown table
		{"l2 table_add dmac ghost 1 =>", CodeNotFound},        // unknown action
		{"l2 table_add dmac forward =>", CodeInvalidArgument}, // missing match
		{"l2 table_delete dmac x", CodeInvalidArgument},       // bad handle token
		{"l2 table_delete dmac 999", CodeNotFound},            // unknown handle
		{"l2 bogus_op", CodeInvalidArgument},                  // unknown table op
	}
	for _, tc := range cases {
		_, err := cli.Exec(tc.cmd)
		if err == nil {
			t.Errorf("command %q should fail", tc.cmd)
			continue
		}
		if got := CodeOf(err); got != tc.code {
			t.Errorf("command %q: code = %s, want %s (%v)", tc.cmd, got, tc.code, err)
		}
	}

	// A line outside the dialect entirely is distinguishable from a typo
	// inside it: the REPL falls through on ErrUnknown.
	if _, err := cli.Exec("bogus"); !errors.Is(err, ErrUnknown) {
		t.Errorf("non-dialect line: got %v, want ErrUnknown", err)
	}

	// Ownership enforcement: a foreign owner gets PERMISSION_DENIED, never
	// INVALID_ARGUMENT — scripts must be able to tell a typo from an
	// authorization failure.
	mallory := NewCLI(c, "mallory")
	for _, cmd := range []string{
		"unload l2",
		"l2 table_add dmac forward 00:00:00:00:00:02 => 1",
		"stats l2",
	} {
		_, err := mallory.Exec(cmd)
		if err == nil {
			t.Errorf("foreign %q should fail", cmd)
			continue
		}
		if got := CodeOf(err); got != CodePermissionDenied {
			t.Errorf("foreign %q: code = %s, want PERMISSION_DENIED (%v)", cmd, got, err)
		}
	}
}

// TestExitCodes pins the Code -> exit-code mapping scripts depend on.
func TestExitCodes(t *testing.T) {
	cases := map[Code]int{
		CodeOK:               0,
		CodeInternal:         1,
		CodeInvalidArgument:  2,
		CodeNotFound:         3,
		CodePermissionDenied: 4,
		CodeExhausted:        5,
		CodeAborted:          6,
		CodeAlreadyExists:    7,
	}
	for code, want := range cases {
		if got := code.ExitCode(); got != want {
			t.Errorf("%s.ExitCode() = %d, want %d", code, got, want)
		}
	}
}
