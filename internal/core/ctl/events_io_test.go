package ctl

import (
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	pktio "hyper4/internal/runtime"
)

// flakyWire is a factory-built transport whose Recv fails while fail is set
// — enough to walk the port breaker from a ctl-level test.
type flakyWire struct {
	fail   atomic.Bool
	closed chan struct{}
	once   sync.Once
}

func (w *flakyWire) Recv(f *pktio.Frame) error {
	select {
	case <-w.closed:
		return pktio.ErrClosed
	default:
	}
	if w.fail.Load() {
		return errors.New("carrier lost")
	}
	<-w.closed
	return pktio.ErrClosed
}

func (w *flakyWire) Send(pktio.Frame) error { return nil }
func (w *flakyWire) Close() error {
	w.once.Do(func() { close(w.closed) })
	return nil
}

// breakerInstance is one "switch process": a persona ctl, an I/O runtime
// whose first wire is flaky, the health-notify bridge hp4switch wires, and
// the HTTP API. Time is a fake clock; the breaker only moves when the test
// syncs it.
type breakerInstance struct {
	c     *Ctl
	rt    *pktio.Runtime
	wires []*flakyWire
	mu    sync.Mutex
	clk   atomic.Int64
}

func (bi *breakerInstance) now() time.Time { return time.Unix(20_000, bi.clk.Load()) }

func newBreakerInstance(t *testing.T) (*breakerInstance, *Client) {
	t.Helper()
	bi := &breakerInstance{c: newPersonaCtl(t)}
	factory := func(port int, spec string) (pktio.Transport, error) {
		w := &flakyWire{closed: make(chan struct{})}
		bi.mu.Lock()
		if len(bi.wires) == 0 {
			w.fail.Store(true) // only the first wire is bad; reattach gets a clean one
		}
		bi.wires = append(bi.wires, w)
		bi.mu.Unlock()
		return w, nil
	}
	bi.rt = pktio.New(bi.c.D.SW, pktio.Config{
		Workers: 1,
		Health: pktio.HealthConfig{
			Window: time.Hour, TripErrors: 2, OpenFor: time.Second,
			BackoffMax: time.Minute, ProbeFor: time.Second, StallAfter: 1 << 20,
			RecvErrBase: 50 * time.Microsecond, RecvErrMax: 200 * time.Microsecond,
			SyncEvery: -1, Seed: 11,
		},
		TransportFactory: factory,
	})
	bi.rt.SetHealthClock(bi.now)
	// The bridge hp4switch installs: breaker transitions become events.
	bi.rt.SetHealthNotify(func(ph pktio.PortHealth) {
		bi.c.PublishPortHealth(ph.Port, ph.Spec, string(ph.State))
	})
	bi.rt.Start()
	t.Cleanup(bi.rt.Close)
	bi.c.IO = bi.rt
	srv := httptest.NewServer(NewServeMux(bi.c))
	t.Cleanup(srv.Close)
	return bi, &Client{Base: srv.URL, Owner: "op"}
}

// drain long-polls the event stream like the hp4ctl follower, collecting
// until the buffer is empty.
func drain(t *testing.T, client *Client, since int64) ([]Event, int64) {
	t.Helper()
	var all []Event
	for {
		// waitSecs must be >0: 0 means "server default" (a 30s long poll),
		// which would stall every empty drain.
		events, next, err := client.Events(since, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 {
			return all, next
		}
		all = append(all, events...)
		since = next
	}
}

func findEvent(events []Event, kind, msg string) *Event {
	for i := range events {
		if events[i].Kind == kind && (msg == "" || events[i].Msg == msg) {
			return &events[i]
		}
	}
	return nil
}

// TestEventsPortLifecycleAcrossRestart follows port attach/detach and
// port-health breaker transitions over the HTTP event stream, then restarts
// the switch and keeps following with the stale cursor — the follower must
// see the new instance's port events without manual cursor surgery.
func TestEventsPortLifecycleAcrossRestart(t *testing.T) {
	bi, client := newBreakerInstance(t)

	// Attach over the API: a port_attach event with the port number.
	if _, err := client.Write([]Op{{Kind: OpPortAttach, PhysPort: 7, Spec: "fake:wan"}}); err != nil {
		t.Fatal(err)
	}
	events, cursor := drain(t, client, 0)
	at := findEvent(events, "port_attach", "")
	if at == nil || at.Port != 7 || at.Name != "fake:wan" {
		t.Fatalf("no port_attach for port 7 in %+v", events)
	}

	// The flaky wire's errors trip the breaker; PortHealth() syncs it.
	waitForCond(t, func() bool {
		phs := bi.rt.PortHealth()
		return len(phs) == 1 && phs[0].State == pktio.PortQuarantined && phs[0].Detached
	}, "breaker to quarantine the port")
	events, cursor = drain(t, client, cursor)
	if e := findEvent(events, "port_health", "quarantined"); e == nil || e.Port != 7 || e.Name != "fake:wan" {
		t.Fatalf("no quarantined port_health event in %+v", events)
	}

	// Past the backoff the port reattaches (clean wire) and probes healthy.
	bi.clk.Add(int64(2 * time.Second))
	bi.rt.SyncPortHealth()
	bi.clk.Add(int64(time.Second))
	bi.rt.SyncPortHealth()
	events, cursor = drain(t, client, cursor)
	if findEvent(events, "port_health", "probing") == nil {
		t.Fatalf("no probing transition in %+v", events)
	}
	if findEvent(events, "port_health", "healthy") == nil {
		t.Fatalf("no healthy transition in %+v", events)
	}

	// Operator detach closes the story for this instance.
	if _, err := client.Write([]Op{{Kind: OpPortDetach, PhysPort: 7}}); err != nil {
		t.Fatal(err)
	}
	events, cursor = drain(t, client, cursor)
	if e := findEvent(events, "port_detach", ""); e == nil || e.Port != 7 {
		t.Fatalf("no port_detach for port 7 in %+v", events)
	}

	// "Restart": a fresh process with seq starting over. The follower keeps
	// its stale cursor; the server spots head < since and rewinds it.
	_, client2 := newBreakerInstance(t)
	if _, err := client2.Write([]Op{{Kind: OpPortAttach, PhysPort: 3, Spec: "fake:lan"}}); err != nil {
		t.Fatal(err)
	}
	events, next, err := client2.Events(cursor, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 && next == cursor {
		t.Fatalf("stale cursor %d not rewound after restart", cursor)
	}
	events, _ = drain(t, client2, next)
	if e := findEvent(events, "port_attach", ""); e == nil || e.Port != 3 || e.Name != "fake:lan" {
		t.Fatalf("follower missed the new instance's port_attach: %+v", events)
	}
}

// waitForCond polls until cond holds or the deadline passes.
func waitForCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
