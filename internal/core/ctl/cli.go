package ctl

import (
	"fmt"
	"strings"
	"time"

	pktio "hyper4/internal/runtime"
)

// CLI is the textual management interface — the command path of Figure 2(c):
// a controller keeps speaking its program's native bmv2-style dialect,
// prefixed with the virtual device name, and the DPMU translates each
// virtual operation into persona operations. It is a thin shell: ParseLine
// builds an Op or Query, Apply/Read executes it, and Format renders the
// result — the same three steps hp4ctl performs over HTTP.
type CLI struct {
	C *Ctl
	// Owner is stamped on every operation; the DPMU's authorization checks
	// apply (§4.5).
	Owner string
}

// NewCLI builds a command interface acting as owner.
func NewCLI(c *Ctl, owner string) *CLI { return &CLI{C: c, Owner: owner} }

// Exec runs one command line and returns its textual result. Errors are
// *Error (or wrap ErrUnknown for lines outside the dialect), so callers can
// branch on CodeOf.
func (c *CLI) Exec(line string) (string, error) {
	op, q, err := ParseLine(line)
	switch {
	case err != nil:
		return "", err
	case op != nil:
		res, err := c.C.Apply(c.Owner, op)
		if err != nil {
			return "", err
		}
		return res.Msg, nil
	case q != nil:
		res, err := c.C.Read(c.Owner, q)
		if err != nil {
			return "", err
		}
		return FormatRead(q, res), nil
	}
	return "", nil // blank or comment line
}

// ExecAll runs a script of commands, reporting the first failing line.
func (c *CLI) ExecAll(script string) error {
	for i, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := c.Exec(line); err != nil {
			return fmt.Errorf("line %d (%q): %w", i+1, line, err)
		}
	}
	return nil
}

// FormatRead renders a query result in the REPL's traditional shapes.
func FormatRead(q *Query, res *ReadResult) string {
	switch q.Kind {
	case "vdevs":
		return strings.Join(res.VDevs, " ")
	case "snapshots":
		out := strings.Join(res.Snapshots, " ")
		if res.Active != "" {
			out += " (active: " + res.Active + ")"
		}
		return out
	case "stats":
		st := res.Stats
		var b strings.Builder
		fmt.Fprintf(&b, "passes=%d bytes=%d", st.Packets, st.Bytes)
		for _, ts := range st.Tables {
			fmt.Fprintf(&b, "\ntable %s: hits=%d misses=%d entries=%d", ts.Table, ts.Hits, ts.Misses, ts.Entries)
		}
		return b.String()
	case "lint":
		if len(res.Findings) == 0 {
			return "lint: clean"
		}
		lines := make([]string, len(res.Findings))
		for i, f := range res.Findings {
			lines[i] = f.String()
		}
		return strings.Join(lines, "\n")
	case "prove":
		var b strings.Builder
		if res.Prove != nil && res.Prove.Proven {
			fmt.Fprintf(&b, "prove: equivalent (%d regions)", res.Prove.Regions)
		} else if res.Prove != nil {
			fmt.Fprintf(&b, "prove: NOT proven (%d regions)", res.Prove.Regions)
		}
		for _, f := range res.Findings {
			b.WriteString("\n" + f.String())
		}
		return b.String()
	case "fuse":
		f := res.Fuse
		var b strings.Builder
		state := "off"
		if f.Enabled {
			state = "on"
		}
		fmt.Fprintf(&b, "fusion %s: plans=%d builds=%d gen=%d fast_hits=%d", state, f.Plans, f.Builds, f.Generation, f.FastHits)
		for _, v := range f.VDevs {
			verdict := "interpreted"
			if v.Fused {
				verdict = "fused"
			}
			fmt.Fprintf(&b, "\n%s (pid %d): %s", v.Name, v.PID, verdict)
		}
		for _, fd := range f.Findings {
			fmt.Fprintf(&b, "\n%s", fd.String())
		}
		return b.String()
	case "ports":
		if len(res.Ports) == 0 {
			return "no ports attached"
		}
		lines := make([]string, len(res.Ports))
		for i, p := range res.Ports {
			lines[i] = fmt.Sprintf("port %d: %s rx=%d tx=%d rx_drops=%d tx_drops=%d",
				p.Port, p.Spec, p.RxFrames, p.TxFrames, p.RxDrops, p.TxDrops)
		}
		return strings.Join(lines, "\n")
	case "health":
		h := res.Health
		var b strings.Builder
		for i, v := range h.VDevs {
			if i > 0 {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%s: %s faults=%d trips=%d", v.VDev, v.State, v.Faults, v.Trips)
			if v.State == "probing" {
				fmt.Fprintf(&b, " probes_left=%d", v.ProbesLeft)
			}
			if v.Bypassed {
				b.WriteString(" bypassed")
			}
			if v.LastKind != "" {
				fmt.Fprintf(&b, " last=%s", v.LastKind)
			}
		}
		if h.Unattributed > 0 {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "unattributed faults: %d", h.Unattributed)
		}
		for _, p := range res.PortHealth {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			b.WriteString(formatPortHealth(p))
		}
		return b.String()
	case "port_health":
		if len(res.PortHealth) == 0 {
			return "no ports attached"
		}
		lines := make([]string, len(res.PortHealth))
		for i, p := range res.PortHealth {
			lines[i] = formatPortHealth(p)
		}
		return strings.Join(lines, "\n")
	case "dump":
		return res.Dump
	}
	return ""
}

// formatPortHealth renders one port breaker line.
func formatPortHealth(p pktio.PortHealth) string {
	var b strings.Builder
	fmt.Fprintf(&b, "port %d: %s %s errors=%d trips=%d", p.Port, p.Spec, p.State, p.WindowErrors, p.Trips)
	if p.Detached {
		b.WriteString(" detached")
	}
	if p.Reattaches > 0 {
		fmt.Fprintf(&b, " reattaches=%d", p.Reattaches)
	}
	if p.RetryIn > 0 {
		fmt.Fprintf(&b, " retry_in=%s", p.RetryIn.Round(time.Millisecond))
	}
	if p.LastError != "" {
		fmt.Fprintf(&b, " last=%q", p.LastError)
	}
	return b.String()
}
