package ctl

import (
	"errors"
	"strings"
	"testing"
)

// TestVerifyOpClean: on a healthy switch the verify op succeeds and says so.
func TestVerifyOpClean(t *testing.T) {
	c := configuredCtl(t, 0)
	res, err := c.Apply("op", &Op{Kind: OpVerify})
	if err != nil {
		t.Fatalf("verify on clean state: %v", err)
	}
	if !strings.HasPrefix(res.Msg, "verify:") {
		t.Fatalf("unexpected message %q", res.Msg)
	}
}

// TestVerifyOpGatesBatch is the dry-run admission flow: a batch that wires a
// virtual-network cycle and ends in `verify` must fail as a unit, rolling
// the links back — the switch never serves the bad topology.
func TestVerifyOpGatesBatch(t *testing.T) {
	c := newPersonaCtl(t)
	mustBatch(t, c, "op", []Op{
		{Kind: OpLoadVDev, VDev: "a", Function: "l2_switch"},
		{Kind: OpLoadVDev, VDev: "b", Function: "l2_switch"},
	})

	_, err := c.WriteBatch("op", []Op{
		{Kind: OpLink, VDev: "a", VPort: 10, ToVDev: "b", ToVPort: 1},
		{Kind: OpLink, VDev: "b", VPort: 10, ToVDev: "a", ToVPort: 1},
		{Kind: OpVerify},
	})
	if err == nil {
		t.Fatal("verify accepted a virtual-network cycle")
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Code != CodeAborted {
		t.Fatalf("want ABORTED, got %v", err)
	}
	if !strings.Contains(ce.Msg, "vnet-cycle") {
		t.Fatalf("error should carry the finding code: %q", ce.Msg)
	}

	// Rollback must have removed the links: a lint of the restored state is
	// clean, and a rebuilt acyclic topology passes the same gate.
	res, err := c.Read("op", &Query{Kind: "lint"})
	if err != nil {
		t.Fatalf("lint after rollback: %v", err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("links survived rollback: %v", res.Findings)
	}
	mustBatch(t, c, "op", []Op{
		{Kind: OpLink, VDev: "a", VPort: 10, ToVDev: "b", ToVPort: 1},
		{Kind: OpVerify},
	})
}

// TestVerifyOpScope: a scoped `verify <vdev>` only reports that device's
// findings (globals like topology cycles always count).
func TestVerifyOpScope(t *testing.T) {
	c := newPersonaCtl(t)
	mustBatch(t, c, "op", []Op{
		{Kind: OpLoadVDev, VDev: "fw", Function: "firewall"},
		{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"},
	})
	// Plant a shadowed entry on fw: catch-all at priority 1, then an
	// unreachable specific entry at priority 2.
	mustBatch(t, c, "op", []Op{
		{Kind: OpTableAdd, VDev: "fw", Table: "tcp_filter", Action: "_drop", Match: []string{"0&&&0", "0&&&0"}, Args: []string{"1"}},
		{Kind: OpTableAdd, VDev: "fw", Table: "tcp_filter", Action: "_drop", Match: []string{"0&&&0", "5201&&&0xffff"}, Args: []string{"2"}},
	})
	if _, err := c.Apply("op", &Op{Kind: OpVerify, VDev: "l2"}); err != nil {
		t.Fatalf("verify scoped to the clean device: %v", err)
	}
	if _, err := c.Apply("op", &Op{Kind: OpVerify, VDev: "fw"}); err == nil {
		t.Fatal("verify scoped to the defective device passed")
	}
	// Unscoped lint sees the finding without failing.
	res, err := c.Read("op", &Query{Kind: "lint"})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("lint missed the shadowed entry")
	}
}

// TestParseVerifyLint pins the dialect words down (beyond the fuzz seeds):
// verify is an op, lint is a query, both with optional device scope.
func TestParseVerifyLint(t *testing.T) {
	op, q, err := ParseLine("verify")
	if err != nil || op == nil || q != nil || op.Kind != OpVerify || op.VDev != "" {
		t.Fatalf("verify: %+v %+v %v", op, q, err)
	}
	op, q, err = ParseLine("verify l2")
	if err != nil || op == nil || op.Kind != OpVerify || op.VDev != "l2" {
		t.Fatalf("verify l2: %+v %+v %v", op, q, err)
	}
	op, q, err = ParseLine("lint")
	if err != nil || q == nil || op != nil || q.Kind != "lint" || q.VDev != "" {
		t.Fatalf("lint: %+v %+v %v", op, q, err)
	}
	op, q, err = ParseLine("lint l2")
	if err != nil || q == nil || q.Kind != "lint" || q.VDev != "l2" {
		t.Fatalf("lint l2: %+v %+v %v", op, q, err)
	}
	if _, _, err := ParseLine("verify a b"); err == nil {
		t.Fatal("verify with two args should be rejected")
	}
}
