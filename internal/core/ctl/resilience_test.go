package ctl

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func loadOps() []Op {
	return []Op{
		{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"},
		{Kind: OpAssign, VDev: "l2", PhysPort: 1, VIngress: 1},
	}
}

func TestWriteBatchIDDedup(t *testing.T) {
	c := newPersonaCtl(t)
	first, err := c.WriteBatchID("op", "rid-1", loadOps())
	if err != nil {
		t.Fatal(err)
	}
	// The retry replays the stored outcome: same results, and crucially the
	// ops are NOT re-applied (a real second load would be ALREADY_EXISTS).
	second, err := c.WriteBatchID("op", "rid-1", loadOps())
	if err != nil {
		t.Fatalf("replay errored: %v", err)
	}
	if len(second) != len(first) || second[0].PID != first[0].PID {
		t.Fatalf("replay diverged: %+v vs %+v", second, first)
	}
	if got := c.D.VDevs(); len(got) != 1 {
		t.Fatalf("vdevs after replay: %v", got)
	}

	// Error outcomes replay too — and stay errors.
	bad := []Op{{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"}}
	_, err1 := c.WriteBatchID("op", "rid-2", bad)
	_, err2 := c.WriteBatchID("op", "rid-2", bad)
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("error replay: %v vs %v", err1, err2)
	}
	if CodeOf(err2) != CodeAlreadyExists {
		t.Fatalf("replayed code = %v", CodeOf(err2))
	}

	// A fresh request ID applies fresh.
	if _, err := c.WriteBatchID("op", "rid-3", bad); CodeOf(err) != CodeAlreadyExists {
		t.Fatalf("fresh id should re-apply: %v", err)
	}

	// Empty ID never dedups: the same no-op batch succeeds repeatedly.
	for i := 0; i < 2; i++ {
		if _, err := c.WriteBatchID("op", "", []Op{{Kind: OpMeterTick}}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDedupRingEviction(t *testing.T) {
	c := newPersonaCtl(t)
	for i := 0; i < dedupWindow+10; i++ {
		if _, err := c.WriteBatchID("op", "rid-"+string(rune('a'+i%26))+"-"+string(rune('0'+i/26)), []Op{{Kind: OpMeterTick}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.dedup) > dedupWindow || len(c.dedupRing) > dedupWindow {
		t.Fatalf("ring grew unbounded: %d ids", len(c.dedup))
	}
}

// TestRetriedWriteAppliesOnce is the acceptance scenario: the server applies
// a write but the response is lost; the client's transport retry carries the
// same request ID and receives the original results without a double apply.
func TestRetriedWriteAppliesOnce(t *testing.T) {
	c := newPersonaCtl(t)
	mux := NewServeMux(c)
	var drops atomic.Int64
	drops.Store(1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && drops.Add(-1) >= 0 {
			// Process the write for real, then kill the connection before
			// any response bytes leave — the classic lost-ack failure.
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, r)
			panic(http.ErrAbortHandler)
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	client := &Client{Base: srv.URL, Owner: "op", Retries: 3, Backoff: time.Millisecond, Timeout: 5 * time.Second}
	results, err := client.Write(loadOps())
	if err != nil {
		t.Fatalf("retried write failed: %v", err)
	}
	if len(results) != 2 || results[0].PID != 1 {
		t.Fatalf("results: %+v", results)
	}
	if got := c.D.VDevs(); len(got) != 1 || got[0] != "l2" {
		t.Fatalf("vdevs after retried write: %v", got)
	}
}

func TestClientRetriesExhaust(t *testing.T) {
	// Nothing listens here; every attempt is a transport error.
	client := &Client{Base: "http://127.0.0.1:1", Owner: "op", Retries: 2, Backoff: time.Millisecond}
	start := time.Now()
	if _, err := client.Write([]Op{{Kind: OpMeterTick}}); err == nil {
		t.Fatal("write against dead server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retries took %v", elapsed)
	}
}

func TestHealthSurface(t *testing.T) {
	c, client := serveCtl(t)
	if _, err := c.WriteBatch("op", loadOps()); err != nil {
		t.Fatal(err)
	}

	// Remote health query.
	rr, err := client.Health("")
	if err != nil || rr.Health == nil {
		t.Fatalf("health: %+v, %v", rr, err)
	}
	if len(rr.Health.VDevs) != 1 || rr.Health.VDevs[0].State != "healthy" {
		t.Fatalf("health payload: %+v", rr.Health)
	}
	if _, err := client.Health("ghost"); CodeOf(err) != CodeNotFound {
		t.Fatalf("health of unknown vdev: %v", err)
	}

	// The REPL dialect shares the same surface.
	cli := NewCLI(c, "op")
	out, err := cli.Exec("health")
	if err != nil || !strings.Contains(out, "l2: healthy") {
		t.Fatalf("health line: %q, %v", out, err)
	}
	out, err = cli.Exec("reset l2")
	if err != nil || !strings.Contains(out, "health reset") {
		t.Fatalf("reset line: %q, %v", out, err)
	}
	if _, err := cli.Exec("reset ghost"); CodeOf(err) != CodeNotFound {
		t.Fatalf("reset unknown: %v", err)
	}

	// The dedicated endpoint serves monitors without the query grammar.
	resp, err := http.Get(client.Base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/health status %d", resp.StatusCode)
	}
}

func TestCtlCloseUnblocksEventPolls(t *testing.T) {
	c := newPersonaCtl(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// No context deadline: only Close can release this poll.
		c.Events(context.Background(), 0)
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the long poll")
	}
}
