package ctl

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// proveCtl loads one l2 device with a couple of entries and the identity
// proof window (physical ports 8..15 assigned one-to-one, virtual ports
// 1..15 mapped to their physical namesakes) so the prover's replay harness
// engages.
func proveCtl(t *testing.T) *Ctl {
	t.Helper()
	c := newPersonaCtl(t)
	ops := []Op{
		{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"},
		{Kind: OpTableAdd, VDev: "l2", Table: "smac", Action: "_nop", Match: []string{"00:00:00:00:00:01"}},
		{Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "forward", Match: []string{"00:00:00:00:00:02"}, Args: []string{"2"}},
	}
	for p := 8; p < 16; p++ {
		ops = append(ops, Op{Kind: OpAssign, VDev: "l2", PhysPort: p, VIngress: p})
	}
	for vp := 1; vp < 16; vp++ {
		ops = append(ops, Op{Kind: OpMapVPort, VDev: "l2", VPort: vp, PhysPort: vp})
	}
	mustBatch(t, c, "op", ops)
	return c
}

// TestProveQuery runs the equivalence prover as a read op: the configured
// device proves native = persona with zero findings, over a non-vacuous
// region count.
func TestProveQuery(t *testing.T) {
	c := proveCtl(t)
	res, err := c.Read("op", &Query{Kind: "prove", VDev: "l2"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prove == nil {
		t.Fatal("prove query returned no verdict")
	}
	if !res.Prove.Proven {
		t.Fatalf("equivalence not proven: %v", res.Findings)
	}
	if res.Prove.Regions == 0 {
		t.Fatal("no regions compared; the proof is vacuous")
	}
	if len(res.Findings) != 0 {
		t.Fatalf("unexpected findings: %v", res.Findings)
	}
}

// TestProveREPL drives the same proof through the textual interface and
// checks the rendered verdict.
func TestProveREPL(t *testing.T) {
	cli := NewCLI(proveCtl(t), "op")
	out, err := cli.Exec("prove l2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "prove: equivalent (") {
		t.Fatalf("unexpected REPL verdict %q", out)
	}

	// The op is per-device: no argument is a parse error, an unknown device
	// an execution error.
	if _, err := cli.Exec("prove"); err == nil {
		t.Fatal("prove without a vdev parsed")
	}
	if _, err := cli.Exec("prove ghost"); err == nil {
		t.Fatal("prove of an unknown vdev succeeded")
	}
}

// TestProveHTTP exercises the HTTP face: GET /v1/read?kind=prove round-trips
// the verdict and findings.
func TestProveHTTP(t *testing.T) {
	c := proveCtl(t)
	srv := httptest.NewServer(NewServeMux(c))
	t.Cleanup(srv.Close)
	client := &Client{Base: srv.URL, Owner: "op"}
	res, err := client.Read(&Query{Kind: "prove", VDev: "l2"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prove == nil || !res.Prove.Proven || res.Prove.Regions == 0 {
		t.Fatalf("remote prove verdict: %+v (findings %v)", res.Prove, res.Findings)
	}
}
