package ctl

import (
	"fmt"
	"strconv"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/functions"
	"hyper4/internal/sim"
	"hyper4/internal/sim/runtime"
)

// applyOp executes one op against the DPMU. Callers hold c.wmu.
func (c *Ctl) applyOp(owner string, op *Op) (Result, error) {
	d := c.D
	switch op.Kind {
	case OpLoadVDev:
		prog, err := functions.Load(op.Function)
		if err != nil {
			return Result{}, fmt.Errorf("%w: %w", err, dpmu.ErrNotFound)
		}
		comp, err := hp4c.Compile(prog, d.Config())
		if err != nil {
			return Result{}, err
		}
		v, err := d.Load(op.VDev, comp, owner, op.Quota)
		if err != nil {
			return Result{}, err
		}
		return Result{PID: v.PID, Msg: fmt.Sprintf("loaded %s as program %d", v.Name, v.PID)}, nil

	case OpUnload:
		return Result{}, d.Unload(owner, op.VDev)

	case OpAssign:
		return Result{}, d.AssignPort(owner, dpmu.Assignment{PhysPort: op.PhysPort, VDev: op.VDev, VIngress: op.VIngress})

	case OpClearAssignments:
		d.ClearAssignments()
		return Result{}, nil

	case OpMapVPort:
		return Result{}, d.MapVPort(owner, op.VDev, op.VPort, op.PhysPort)

	case OpLink:
		return Result{}, d.LinkVPorts(owner, op.VDev, op.VPort, op.ToVDev, op.ToVPort)

	case OpMcast:
		targets := make([]dpmu.VPortRef, len(op.Targets))
		for i, t := range op.Targets {
			targets[i] = dpmu.VPortRef{VDev: t.VDev, VIngress: t.VIngress}
		}
		return Result{}, d.MulticastGroup(owner, op.VDev, op.VPort, targets)

	case OpRateLimit:
		return Result{}, d.SetRateLimit(owner, op.VDev, op.YellowAt, op.RedAt)

	case OpMeterTick:
		return Result{}, d.TickMeters()

	case OpSnapshotSave:
		as := make([]dpmu.Assignment, len(op.Assignments))
		for i, a := range op.Assignments {
			as[i] = dpmu.Assignment{PhysPort: a.PhysPort, VDev: a.VDev, VIngress: a.VIngress}
		}
		return Result{}, d.SaveSnapshot(op.Name, as)

	case OpSnapshotActivate:
		return Result{}, d.ActivateSnapshot(op.Name)

	case OpTableAdd:
		spec, err := c.entrySpec(op)
		if err != nil {
			return Result{}, err
		}
		h, err := d.TableAdd(owner, op.VDev, spec)
		if err != nil {
			return Result{}, err
		}
		return Result{Handle: h, Msg: fmt.Sprintf("handle %d", h)}, nil

	case OpTableModify:
		spec, err := c.entrySpec(op)
		if err != nil {
			return Result{}, err
		}
		return Result{}, d.TableModify(owner, op.VDev, op.Handle, spec)

	case OpTableDelete:
		return Result{}, d.TableDelete(owner, op.VDev, op.Table, op.Handle)

	case OpHealthReset:
		if err := d.ResetHealth(owner, op.VDev); err != nil {
			return Result{}, err
		}
		return Result{Msg: fmt.Sprintf("health reset for %s", op.VDev)}, nil

	case OpVerify:
		return c.applyVerify(op)

	case OpPortAttach:
		if c.IO == nil {
			return Result{}, invalidf("this switch has no packet I/O runtime")
		}
		if err := c.IO.AttachSpec(op.PhysPort, op.Spec); err != nil {
			return Result{}, err
		}
		return Result{Msg: fmt.Sprintf("port %d attached (%s)", op.PhysPort, op.Spec)}, nil

	case OpPortDetach:
		if c.IO == nil {
			return Result{}, invalidf("this switch has no packet I/O runtime")
		}
		if err := c.IO.Detach(op.PhysPort); err != nil {
			return Result{}, err
		}
		return Result{Msg: fmt.Sprintf("port %d detached", op.PhysPort)}, nil

	case OpSetDefault:
		args := op.ArgVals
		if !op.Parsed {
			var err error
			if args, err = parseValueList(op.Args); err != nil {
				return Result{}, err
			}
		}
		return Result{}, d.SetDefault(owner, op.VDev, op.Table, op.Action, args)
	}
	return Result{}, invalidf("unknown op kind %q", op.Kind)
}

// entrySpec materializes a table_add/table_modify op as a dpmu.EntrySpec,
// parsing the textual match/argument tokens against the device's compiled
// program unless the caller pre-parsed them.
func (c *Ctl) entrySpec(op *Op) (dpmu.EntrySpec, error) {
	spec := dpmu.EntrySpec{Table: op.Table, Action: op.Action}
	if op.Parsed {
		spec.Params, spec.Args, spec.Priority = op.Params, op.ArgVals, op.Priority
		return spec, nil
	}
	v, err := c.D.VDev(op.VDev)
	if err != nil {
		return spec, err
	}
	tbl, ok := v.Comp.Prog.Tables[op.Table]
	if !ok {
		return spec, fmt.Errorf("program %s has no table %q: %w", v.Comp.Name, op.Table, dpmu.ErrNotFound)
	}
	act, ok := v.Comp.Actions[op.Action]
	if !ok {
		return spec, fmt.Errorf("program %s has no action %q: %w", v.Comp.Name, op.Action, dpmu.ErrNotFound)
	}
	if len(op.Match) != len(tbl.Reads) {
		return spec, invalidf("table %s wants %d match fields, got %d", op.Table, len(tbl.Reads), len(op.Match))
	}
	spec.Params = make([]sim.MatchParam, len(tbl.Reads))
	needsPriority := false
	for i, r := range tbl.Reads {
		rs := sim.ReadSpec{Kind: r.Match}
		if r.Field != nil {
			w, err := v.Comp.Prog.FieldWidth(*r.Field)
			if err != nil {
				return spec, err
			}
			rs.Width = w
		} else {
			rs.Width = 1
		}
		p, err := runtime.ParseMatchToken(op.Match[i], rs)
		if err != nil {
			return spec, fmt.Errorf("match %d: %w: %w", i, err, dpmu.ErrInvalid)
		}
		spec.Params[i] = p
		if r.Match == "ternary" || r.Match == "lpm" || r.Match == "range" {
			needsPriority = true
		}
	}
	argToks := op.Args
	if needsPriority && len(argToks) == len(act.Params)+1 {
		p, err := strconv.Atoi(argToks[len(argToks)-1])
		if err != nil {
			return spec, invalidf("bad priority %q", argToks[len(argToks)-1])
		}
		spec.Priority = p
		argToks = argToks[:len(argToks)-1]
	}
	if len(argToks) != len(act.Params) {
		return spec, invalidf("action %s wants %d args, got %d", op.Action, len(act.Params), len(argToks))
	}
	if spec.Args, err = parseValueList(argToks); err != nil {
		return spec, err
	}
	return spec, nil
}

func parseValueList(toks []string) ([]bitfield.Value, error) {
	out := make([]bitfield.Value, len(toks))
	for i, tok := range toks {
		v, err := runtime.ParseValueToken(tok, 0)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %w: %w", i, err, dpmu.ErrInvalid)
		}
		out[i] = v
	}
	return out, nil
}
