package ctl

import (
	"errors"
	"testing"
)

// FuzzParseLine hammers the shared script dialect: whatever the input, the
// parser must not panic, must never return an Op and a Query together, and
// every error must be classifiable — INVALID_ARGUMENT for malformed dialect
// lines or ErrUnknown for lines outside the dialect (the REPL's fall-through
// to raw switch commands depends on that contract).
func FuzzParseLine(f *testing.F) {
	// One seed per documented command form, plus edge shapes.
	seeds := []string{
		"",
		"# comment",
		"   ",
		"load l2 l2_switch",
		"load l2 l2_switch 100",
		"load l2",
		"unload l2",
		"assign 1 l2 1",
		"assign any l2 1",
		"assign x l2 1",
		"clear_assignments",
		"map l2 2 2",
		"link arp 10 fw 1",
		"mcast rep 5 a:1 b:2",
		"ratelimit l2 1000 2000",
		"meter_tick",
		"snapshot_save day 1:l2:1 any:fw:2",
		"snapshot_activate day",
		"reset l2",
		"verify",
		"verify l2",
		"lint",
		"lint l2",
		"vdevs",
		"snapshots",
		"stats l2",
		"health",
		"health l2",
		"l2 table_add dmac forward 00:00:00:00:00:02 => 2",
		"l2 table_add nat translate 10.0.0.0/24 => 192.168.0.1 10",
		"l2 table_delete dmac 3",
		"l2 table_modify dmac 3 forward 00:00:00:00:00:02 => 4",
		"l2 table_set_default dmac broadcast",
		"l2 table_set_default dmac forward 2",
		"port attach 1 udp:127.0.0.1:9000",
		"port attach 1 udp:0.0.0.0:9000/10.0.0.2:9001",
		"port attach x udp:0.0.0.0:9000",
		"port detach 1",
		"port list",
		"port",
		"port frobnicate 1",
		"l2 table_bogus x y",
		"register_read r 0",
		"mirroring_add 1 1",
		"=> => =>",
		"load \x00 \xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		op, q, err := ParseLine(line)
		if err != nil {
			if op != nil || q != nil {
				t.Fatalf("error with non-nil result: %v / %+v %+v", err, op, q)
			}
			if !errors.Is(err, ErrUnknown) && CodeOf(err) != CodeInvalidArgument {
				t.Fatalf("unclassified parse error for %q: %v (code %v)", line, err, CodeOf(err))
			}
			return
		}
		if op != nil && q != nil {
			t.Fatalf("line %q produced both an op and a query", line)
		}
		if op != nil {
			// A parsed op must be structurally valid or rejected with a
			// structured error — validateOp must not panic on parser output.
			if verr := validateOp(op); verr != nil && CodeOf(verr) != CodeInvalidArgument {
				t.Fatalf("validate of parsed op %q: %v", line, verr)
			}
		}
	})
}
