package ctl

import (
	"hyper4/internal/bitfield"
	"hyper4/internal/sim"
)

// OpKind discriminates the Op union.
type OpKind string

const (
	OpLoadVDev         OpKind = "load_vdev"
	OpUnload           OpKind = "unload"
	OpAssign           OpKind = "assign"
	OpClearAssignments OpKind = "clear_assignments"
	OpMapVPort         OpKind = "map_vport"
	OpLink             OpKind = "link"
	OpMcast            OpKind = "mcast"
	OpRateLimit        OpKind = "rate_limit"
	OpMeterTick        OpKind = "meter_tick"
	OpSnapshotSave     OpKind = "snapshot_save"
	OpSnapshotActivate OpKind = "snapshot_activate"
	OpTableAdd         OpKind = "table_add"
	OpTableModify      OpKind = "table_modify"
	OpTableDelete      OpKind = "table_delete"
	OpSetDefault       OpKind = "set_default"
	OpHealthReset      OpKind = "health_reset"
	// OpPortAttach / OpPortDetach manage the packet I/O runtime's physical
	// ports: attach binds a transport (built from a textual spec like
	// "udp:0.0.0.0:9000") to a port, detach drains and closes it. Unlike
	// table state, transports live outside the DPMU checkpoint; WriteBatch
	// compensates by detaching ports a failed batch attached.
	OpPortAttach OpKind = "port_attach"
	OpPortDetach OpKind = "port_detach"
	// OpVerify runs the static verifier over the current state; error
	// findings fail the op (and roll its batch back), making it a dry-run
	// admission gate when appended to a batch. VDev optionally scopes the
	// findings.
	OpVerify OpKind = "verify"
)

// Target is one virtual multicast destination.
type Target struct {
	VDev     string `json:"vdev"`
	VIngress int    `json:"vingress"`
}

// Assignment binds a physical ingress port (-1 = every port) to a virtual
// device and virtual ingress port, for snapshot_save payloads.
type Assignment struct {
	PhysPort int    `json:"phys_port"`
	VDev     string `json:"vdev"`
	VIngress int    `json:"vingress"`
}

// Op is one control-plane operation — the single union type every
// management path builds, whether it came from a REPL line, an hp4ctl
// script, or a raw HTTP request. Only the fields its Kind uses are set.
//
// Table-op match and argument tokens travel textually (Match/Args, in the
// emulated program's own bmv2-style dialect) and are parsed server-side
// against the device's compiled program, so remote clients need no program
// knowledge. In-process callers that already hold parsed values set
// Params/ArgVals (plus Parsed) and skip the text path.
type Op struct {
	Kind OpKind `json:"kind"`
	VDev string `json:"vdev,omitempty"`

	// load_vdev
	Function string `json:"function,omitempty"`
	Quota    int    `json:"quota,omitempty"`

	// assign / map_vport / link / mcast
	PhysPort int      `json:"phys_port,omitempty"`
	VPort    int      `json:"vport,omitempty"`
	VIngress int      `json:"vingress,omitempty"`
	ToVDev   string   `json:"to_vdev,omitempty"`
	ToVPort  int      `json:"to_vport,omitempty"`
	Targets  []Target `json:"targets,omitempty"`

	// snapshot_save / snapshot_activate
	Name        string       `json:"name,omitempty"`
	Assignments []Assignment `json:"assignments,omitempty"`

	// port_attach (PhysPort carries the port number for port ops)
	Spec string `json:"spec,omitempty"`

	// rate_limit
	YellowAt uint64 `json:"yellow_at,omitempty"`
	RedAt    uint64 `json:"red_at,omitempty"`

	// table ops
	Table  string   `json:"table,omitempty"`
	Action string   `json:"action,omitempty"`
	Handle int      `json:"handle,omitempty"`
	Match  []string `json:"match,omitempty"`
	// Args holds the action arguments and, for tables that take one, an
	// optional trailing priority token — exactly the tokens after "=>".
	Args []string `json:"args,omitempty"`

	// Pre-parsed in-process forms; never serialized.
	Parsed   bool             `json:"-"`
	Params   []sim.MatchParam `json:"-"`
	ArgVals  []bitfield.Value `json:"-"`
	Priority int              `json:"-"`
}

// Result is one op's success payload.
type Result struct {
	// Handle is the virtual entry handle minted by table_add.
	Handle int `json:"handle,omitempty"`
	// PID is the program ID minted by load_vdev.
	PID int `json:"pid,omitempty"`
	// Msg is the human-readable line the REPL prints ("loaded l2 as
	// program 1", "handle 3", ...); empty for silent ops.
	Msg string `json:"msg,omitempty"`
}

// Query is one read-only request — the read half of the API, kept separate
// from Op so WriteBatch stays all-mutating.
type Query struct {
	Kind string `json:"kind"` // "vdevs", "stats", "snapshots", "health", "lint", "prove", "fuse", "ports"
	VDev string `json:"vdev,omitempty"`
}
