package ctl

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// serveCtl spins up the management API over a fresh persona control plane.
func serveCtl(t *testing.T) (*Ctl, *Client) {
	t.Helper()
	c := newPersonaCtl(t)
	srv := httptest.NewServer(NewServeMux(c))
	t.Cleanup(srv.Close)
	return c, &Client{Base: srv.URL, Owner: "op"}
}

// TestServerWriteReadStats drives the full remote flow: a batched write
// configures a device, reads and stats report it, and the data plane
// forwards.
func TestServerWriteReadStats(t *testing.T) {
	c, client := serveCtl(t)
	results, err := client.Write([]Op{
		{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"},
		{Kind: OpTableAdd, VDev: "l2", Table: "smac", Action: "_nop", Match: []string{"00:00:00:00:00:01"}},
		{Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "forward", Match: []string{"00:00:00:00:00:02"}, Args: []string{"2"}},
		{Kind: OpAssign, VDev: "l2", PhysPort: 1, VIngress: 1},
		{Kind: OpMapVPort, VDev: "l2", VPort: 2, PhysPort: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results: %+v", results)
	}
	if results[0].PID != 1 || !strings.Contains(results[0].Msg, "loaded l2 as program 1") {
		t.Errorf("load result: %+v", results[0])
	}
	if results[1].Handle == 0 || results[2].Handle == 0 {
		t.Errorf("table_add handles: %+v", results[1:3])
	}

	outs, _, err := c.D.SW.Process(tcpFrame(80), 1)
	if err != nil || len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("remote-configured forwarding: %+v %v", outs, err)
	}

	rr, err := client.Read(&Query{Kind: "vdevs"})
	if err != nil || !reflect.DeepEqual(rr.VDevs, []string{"l2"}) {
		t.Errorf("vdevs = %+v, %v", rr, err)
	}
	rr, err = client.Read(&Query{Kind: "stats", VDev: "l2"})
	if err != nil || rr.Stats == nil || rr.Stats.VDev != "l2" {
		t.Fatalf("stats = %+v, %v", rr, err)
	}
	if rr.Stats.Packets == 0 {
		t.Errorf("stats saw no traffic: %+v", rr.Stats)
	}

	sr, err := client.Stats()
	if err != nil || len(sr.VDevs) != 1 || sr.VDevs[0].VDev != "l2" {
		t.Fatalf("global stats = %+v, %v", sr, err)
	}
	var hits int64
	for _, te := range sr.VDevs[0].Tables {
		hits += te.Hits
	}
	if hits == 0 {
		t.Errorf("global stats saw no table hits: %+v", sr.VDevs[0].Tables)
	}
}

// TestServerErrorCodes checks that structured errors survive the HTTP
// round-trip with their code and failing-op index intact, and that a failed
// remote batch rolled back.
func TestServerErrorCodes(t *testing.T) {
	c, client := serveCtl(t)
	if _, err := client.Write([]Op{{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"}}); err != nil {
		t.Fatal(err)
	}
	before := c.D.SW.Dump()

	_, err := client.Write([]Op{
		{Kind: OpTableAdd, VDev: "l2", Table: "smac", Action: "_nop", Match: []string{"00:00:00:00:00:01"}},
		{Kind: OpTableAdd, VDev: "l2", Table: "dmac", Action: "ghost", Match: []string{"00:00:00:00:00:02"}},
	})
	ce, ok := err.(*Error)
	if !ok {
		t.Fatalf("error = %v (%T), want *Error", err, err)
	}
	if ce.Code != CodeNotFound || ce.Op != 1 {
		t.Errorf("remote error = %+v, want NOT_FOUND at op 1", ce)
	}
	if !reflect.DeepEqual(before, c.D.SW.Dump()) {
		t.Error("failed remote batch did not roll back")
	}

	// Authorization failures keep their code remotely too.
	mallory := &Client{Base: client.Base, Owner: "mallory"}
	_, err = mallory.Write([]Op{{Kind: OpUnload, VDev: "l2"}})
	if ce, ok := err.(*Error); !ok || ce.Code != CodePermissionDenied {
		t.Errorf("foreign unload error = %v, want PERMISSION_DENIED", err)
	}
	_, err = mallory.Read(&Query{Kind: "stats", VDev: "l2"})
	if ce, ok := err.(*Error); !ok || ce.Code != CodePermissionDenied {
		t.Errorf("foreign stats error = %v, want PERMISSION_DENIED", err)
	}
}

// TestServerEvents long-polls the event stream around a load/unload cycle.
func TestServerEvents(t *testing.T) {
	_, client := serveCtl(t)

	// Nothing yet: a short poll times out empty with the cursor unchanged.
	events, next, err := client.Events(0, 1)
	if err != nil || len(events) != 0 || next != 0 {
		t.Fatalf("idle poll: %v %d %v", events, next, err)
	}

	done := make(chan struct{})
	var got []Event
	go func() {
		defer close(done)
		got, next, err = client.Events(0, 10)
	}()
	time.Sleep(50 * time.Millisecond) // poll is parked before the write lands
	if _, werr := client.Write([]Op{{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"}}); werr != nil {
		t.Fatal(werr)
	}
	<-done
	if err != nil || len(got) != 1 || got[0].Kind != "load" || got[0].VDev != "l2" || next != got[0].Seq {
		t.Fatalf("load event: %+v next=%d err=%v", got, next, err)
	}

	if _, err := client.Write([]Op{{Kind: OpUnload, VDev: "l2"}}); err != nil {
		t.Fatal(err)
	}
	events, next2, err := client.Events(next, 10)
	if err != nil || len(events) != 1 || events[0].Kind != "unload" || next2 <= next {
		t.Fatalf("unload event: %+v next=%d err=%v", events, next2, err)
	}
}

// TestServerEventsRestartRewindsCursor simulates a follower whose cursor
// outlives the switch: a fresh server instance (event seq restarted at 0)
// must detect the regression and rewind the cursor immediately, rather than
// parking the follower until the new seq outgrows the stale one.
func TestServerEventsRestartRewindsCursor(t *testing.T) {
	_, old := serveCtl(t)
	for _, op := range []Op{
		{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"},
		{Kind: OpUnload, VDev: "l2"},
		{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"},
	} {
		if _, err := old.Write([]Op{op}); err != nil {
			t.Fatal(err)
		}
	}
	_, stale, err := old.Events(0, 1)
	if err != nil || stale != 3 {
		t.Fatalf("priming cursor: %d %v", stale, err)
	}

	// "Restart": a brand-new control plane whose event seq starts over.
	_, fresh := serveCtl(t)
	if _, err := fresh.Write([]Op{{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"}}); err != nil {
		t.Fatal(err)
	}

	// The stale cursor is ahead of everything the new instance has ever
	// published: the poll must come back right away (not sit out the full
	// wait) with a rewound cursor.
	start := time.Now()
	events, next, err := fresh.Events(stale, 10)
	if err != nil || len(events) != 0 {
		t.Fatalf("stale poll: %+v %v", events, err)
	}
	if next != 0 {
		t.Fatalf("stale cursor not rewound: next=%d", next)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stale poll parked for %v", elapsed)
	}

	// Following the rewound cursor replays the new instance's buffer.
	events, next, err = fresh.Events(next, 1)
	if err != nil || len(events) != 1 || events[0].Kind != "load" || next != events[0].Seq {
		t.Fatalf("replay after rewind: %+v next=%d err=%v", events, next, err)
	}
}

// TestLocalRemoteParity runs the same script through the local CLI and
// through the HTTP client on two fresh switches; the resulting forwarding
// behavior and dumps must be byte-identical.
func TestLocalRemoteParity(t *testing.T) {
	script := []string{
		"load l2 l2_switch",
		"l2 table_add smac _nop 00:00:00:00:00:01 =>",
		"l2 table_add dmac forward 00:00:00:00:00:02 => 2",
		"assign 1 l2 1",
		"map l2 2 2",
	}

	local := newPersonaCtl(t)
	cli := NewCLI(local, "op")
	for _, line := range script {
		if _, err := cli.Exec(line); err != nil {
			t.Fatalf("local %q: %v", line, err)
		}
	}

	remote, client := serveCtl(t)
	for _, line := range script {
		op, _, err := ParseLine(line)
		if err != nil || op == nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if _, err := client.Write([]Op{*op}); err != nil {
			t.Fatalf("remote %q: %v", line, err)
		}
	}

	if !reflect.DeepEqual(local.D.SW.Dump(), remote.D.SW.Dump()) {
		t.Fatal("local and remote configuration dumps differ")
	}
	frame := tcpFrame(80)
	lOuts, _, lErr := local.D.SW.Process(append([]byte(nil), frame...), 1)
	rOuts, _, rErr := remote.D.SW.Process(append([]byte(nil), frame...), 1)
	if lErr != nil || rErr != nil || !reflect.DeepEqual(lOuts, rOuts) {
		t.Fatalf("forwarding differs: local %+v (%v) remote %+v (%v)", lOuts, lErr, rOuts, rErr)
	}
}
