package ctl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
)

// Client speaks the management API from another process — the remote half of
// the one-code-path story: hp4ctl parses script lines with the same
// ParseLine the REPL uses, ships the Ops here, and formats the identical
// Results.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:9191".
	Base string
	// Owner is stamped on every write.
	Owner string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// decodeError surfaces a response's structured error, preserving its code.
func decodeError(e *Error, status int) error {
	if e != nil {
		return e
	}
	return &Error{Code: CodeInternal, Op: -1, Msg: fmt.Sprintf("server returned HTTP %d without a structured error", status)}
}

// Write applies ops atomically as one batch.
func (c *Client) Write(ops []Op) ([]Result, error) {
	body, err := json.Marshal(WriteRequest{Owner: c.Owner, Ops: ops})
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Post(c.Base+"/v1/write", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wr WriteResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, fmt.Errorf("decoding write response: %w", err)
	}
	if resp.StatusCode != http.StatusOK || wr.Error != nil {
		return nil, decodeError(wr.Error, resp.StatusCode)
	}
	return wr.Results, nil
}

// Read answers one query.
func (c *Client) Read(q *Query) (*ReadResult, error) {
	vals := url.Values{"kind": {q.Kind}, "owner": {c.Owner}}
	if q.VDev != "" {
		vals.Set("vdev", q.VDev)
	}
	resp, err := c.client().Get(c.Base + "/v1/read?" + vals.Encode())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rr ReadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("decoding read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK || rr.Error != nil {
		return nil, decodeError(rr.Error, resp.StatusCode)
	}
	return rr.Result, nil
}

// Stats fetches the operator-level per-device statistics.
func (c *Client) Stats() (*StatsResponse, error) {
	resp, err := c.client().Get(c.Base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &Error{Code: CodeInternal, Op: -1, Msg: fmt.Sprintf("stats returned HTTP %d", resp.StatusCode)}
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding stats response: %w", err)
	}
	return &sr, nil
}

// Events long-polls for events after since, returning the events (possibly
// none, on timeout) and the next cursor. waitSecs bounds the server-side
// wait (0 = server default).
func (c *Client) Events(since int64, waitSecs int) ([]Event, int64, error) {
	vals := url.Values{"since": {fmt.Sprint(since)}}
	if waitSecs > 0 {
		vals.Set("wait", fmt.Sprint(waitSecs))
	}
	resp, err := c.client().Get(c.Base + "/v1/events?" + vals.Encode())
	if err != nil {
		return nil, since, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, since, &Error{Code: CodeInternal, Op: -1, Msg: fmt.Sprintf("events returned HTTP %d", resp.StatusCode)}
	}
	var er EventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return nil, since, fmt.Errorf("decoding events response: %w", err)
	}
	return er.Events, er.Next, nil
}
