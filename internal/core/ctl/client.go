package ctl

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"net/url"
	"time"
)

// Client speaks the management API from another process — the remote half of
// the one-code-path story: hp4ctl parses script lines with the same
// ParseLine the REPL uses, ships the Ops here, and formats the identical
// Results.
//
// Transport failures (connection refused, timeouts, truncated responses) are
// retried with exponential backoff and jitter. Every Write carries a random
// request ID, and the server remembers recent outcomes by ID, so a retry
// after a lost response replays the original result instead of applying the
// batch twice. Structured errors are never retried — they prove the server
// processed the request.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:9191".
	Base string
	// Owner is stamped on every write.
	Owner string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client

	// Timeout bounds each attempt (0 = no deadline). Events extends it by
	// the long-poll wait, so a poll is never cut short by its own design.
	Timeout time.Duration
	// Retries is how many extra attempts follow a transport failure
	// (0 = fail on the first).
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// with jitter (0 = 100ms).
	Backoff time.Duration
}

// client returns the transport with the per-attempt deadline applied.
// extraWait widens it (long polls must not be cut short by their own
// design). http.Client.Timeout covers the whole exchange, body read
// included, so decode can't hang either.
func (c *Client) client(extraWait time.Duration) *http.Client {
	base := c.HTTP
	if base == nil {
		base = http.DefaultClient
	}
	if c.Timeout <= 0 {
		return base
	}
	cl := *base
	cl.Timeout = c.Timeout + extraWait
	return &cl
}

// newRequestID mints a random write-idempotency token. Dedup tokens need
// uniqueness, not secrecy, so if crypto/rand fails the non-crypto generator
// fills in — an empty ID would silently disable dedup while transport
// retries stay on, reintroducing the duplicate apply the ID exists to
// prevent.
func newRequestID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:8], mrand.Uint64())
		binary.LittleEndian.PutUint64(b[8:], mrand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// backoffDelay returns the sleep before retry number attempt (0-based):
// exponential with full jitter below the cap, so concurrent clients
// recovering from the same outage don't stampede in lockstep.
func (c *Client) backoffDelay(attempt int) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << uint(attempt)
	if lim := 5 * time.Second; d > lim || d <= 0 {
		d = lim
	}
	return d/2 + time.Duration(mrand.Int64N(int64(d/2)+1))
}

// do runs one HTTP attempt with the per-attempt deadline. extraWait widens
// the deadline (long polls).
func (c *Client) do(method, u string, body []byte, extraWait time.Duration) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.client(extraWait).Do(req)
}

// roundTrip runs an attempt-with-retries loop: fn performs one attempt and
// reports whether its failure is retryable (transport errors and truncated
// responses are; structured server errors are not).
func (c *Client) roundTrip(fn func() (retryable bool, err error)) error {
	for attempt := 0; ; attempt++ {
		retryable, err := fn()
		if err == nil {
			return nil
		}
		if !retryable || attempt >= c.Retries {
			return err
		}
		time.Sleep(c.backoffDelay(attempt))
	}
}

// decodeError surfaces a response's structured error, preserving its code.
func decodeError(e *Error, status int) error {
	if e != nil {
		return e
	}
	return &Error{Code: CodeInternal, Op: -1, Msg: fmt.Sprintf("server returned HTTP %d without a structured error", status)}
}

// Write applies ops atomically as one batch. Transport-level retries reuse
// one request ID, so the batch applies exactly once even if a response is
// lost mid-retry.
func (c *Client) Write(ops []Op) ([]Result, error) {
	body, err := json.Marshal(WriteRequest{Owner: c.Owner, RequestID: newRequestID(), Ops: ops})
	if err != nil {
		return nil, err
	}
	var results []Result
	err = c.roundTrip(func() (bool, error) {
		resp, err := c.do(http.MethodPost, c.Base+"/v1/write", body, 0)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		var wr WriteResponse
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
			return true, fmt.Errorf("decoding write response: %w", err)
		}
		if resp.StatusCode != http.StatusOK || wr.Error != nil {
			return false, decodeError(wr.Error, resp.StatusCode)
		}
		results = wr.Results
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Read answers one query.
func (c *Client) Read(q *Query) (*ReadResult, error) {
	vals := url.Values{"kind": {q.Kind}, "owner": {c.Owner}}
	if q.VDev != "" {
		vals.Set("vdev", q.VDev)
	}
	var result *ReadResult
	err := c.roundTrip(func() (bool, error) {
		resp, err := c.do(http.MethodGet, c.Base+"/v1/read?"+vals.Encode(), nil, 0)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		var rr ReadResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return true, fmt.Errorf("decoding read response: %w", err)
		}
		if resp.StatusCode != http.StatusOK || rr.Error != nil {
			return false, decodeError(rr.Error, resp.StatusCode)
		}
		result = rr.Result
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// Health fetches the circuit-breaker health report ("" = every device).
func (c *Client) Health(vdev string) (*ReadResult, error) {
	return c.Read(&Query{Kind: "health", VDev: vdev})
}

// Stats fetches the operator-level per-device statistics.
func (c *Client) Stats() (*StatsResponse, error) {
	var sr StatsResponse
	err := c.roundTrip(func() (bool, error) {
		resp, err := c.do(http.MethodGet, c.Base+"/v1/stats", nil, 0)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false, &Error{Code: CodeInternal, Op: -1, Msg: fmt.Sprintf("stats returned HTTP %d", resp.StatusCode)}
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return true, fmt.Errorf("decoding stats response: %w", err)
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return &sr, nil
}

// Events long-polls for events after since, returning the events (possibly
// none, on timeout) and the next cursor. waitSecs bounds the server-side
// wait (0 = server default). If the switch restarted since the cursor was
// minted, the server detects the seq regression and returns a rewound
// cursor (0), so a follower that keeps passing back Next replays the new
// instance's buffer instead of waiting forever on a stale cursor. Events
// does not retry: followers own their reconnect policy, and a blind retry
// here would double the poll latency.
func (c *Client) Events(since int64, waitSecs int) ([]Event, int64, error) {
	vals := url.Values{"since": {fmt.Sprint(since)}}
	wait := maxWait
	if waitSecs > 0 {
		vals.Set("wait", fmt.Sprint(waitSecs))
		wait = time.Duration(waitSecs) * time.Second
	}
	resp, err := c.do(http.MethodGet, c.Base+"/v1/events?"+vals.Encode(), nil, wait)
	if err != nil {
		return nil, since, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, since, &Error{Code: CodeInternal, Op: -1, Msg: fmt.Sprintf("events returned HTTP %d", resp.StatusCode)}
	}
	var er EventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return nil, since, fmt.Errorf("decoding events response: %w", err)
	}
	return er.Events, er.Next, nil
}
