package ctl

import (
	"context"
	"sync"
)

// Event is one management-plane notification: devices coming and going,
// snapshots flipping, circuit breakers transitioning. Seq increases by one
// per event, so a long-polling client resumes from the last Seq it saw
// without gaps.
type Event struct {
	Seq  int64  `json:"seq"`
	Kind string `json:"kind"` // "load", "unload", "snapshot_activate", "health", "health_reset", "port_attach", "port_detach", "port_health"
	VDev string `json:"vdev,omitempty"`
	Name string `json:"name,omitempty"` // snapshot name; transport spec for port events
	Msg  string `json:"msg,omitempty"`  // for "health"/"port_health": the new breaker state
	Port int    `json:"port,omitempty"` // for port events: the physical port
}

// eventBuffer bounds the replay window; a client further behind than this
// misses the oldest events (it can re-list devices to resync).
const eventBuffer = 256

// hub is a broadcast ring of Events with long-poll semantics.
type hub struct {
	mu     sync.Mutex
	events []Event // last eventBuffer events, oldest first
	seq    int64   // seq of the newest published event
	wake   chan struct{}
	closed bool
}

func newHub() *hub {
	return &hub{wake: make(chan struct{})}
}

func (h *hub) publish(e Event) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.seq++
	e.Seq = h.seq
	h.events = append(h.events, e)
	if len(h.events) > eventBuffer {
		h.events = h.events[len(h.events)-eventBuffer:]
	}
	close(h.wake) // wake every waiter
	h.wake = make(chan struct{})
	h.mu.Unlock()
}

// close releases every blocked waiter (graceful shutdown): pending events
// still drain, then polls return empty immediately instead of hanging.
func (h *hub) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.wake)
	}
	h.mu.Unlock()
}

// waitSince returns every event with Seq > since plus the hub's head seq,
// blocking until an event exists, the context ends, or the hub closes (the
// latter two return the long-poll timeout shape: an empty slice). A since
// ahead of the head — a cursor minted by a previous incarnation of the
// server, whose seq restarted at 0 — returns immediately rather than parking
// the caller behind events that will never come.
func (h *hub) waitSince(ctx context.Context, since int64) ([]Event, int64) {
	for {
		h.mu.Lock()
		if h.seq > since {
			var out []Event
			for _, e := range h.events {
				if e.Seq > since {
					out = append(out, e)
				}
			}
			head := h.seq
			h.mu.Unlock()
			return out, head
		}
		if h.closed || h.seq < since {
			head := h.seq
			h.mu.Unlock()
			return nil, head
		}
		wake := h.wake
		h.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			h.mu.Lock()
			head := h.seq
			h.mu.Unlock()
			return nil, head
		}
	}
}

// publishOp emits the events an applied op warrants. Table-level churn is
// deliberately not evented — it is high-rate and observable via stats.
func (c *Ctl) publishOp(op *Op, res Result) {
	switch op.Kind {
	case OpLoadVDev:
		c.events.publish(Event{Kind: "load", VDev: op.VDev, Msg: res.Msg})
	case OpUnload:
		c.events.publish(Event{Kind: "unload", VDev: op.VDev})
	case OpSnapshotActivate:
		c.events.publish(Event{Kind: "snapshot_activate", Name: op.Name})
	case OpHealthReset:
		c.events.publish(Event{Kind: "health_reset", VDev: op.VDev})
	case OpPortAttach:
		c.events.publish(Event{Kind: "port_attach", Name: op.Spec, Msg: res.Msg, Port: op.PhysPort})
	case OpPortDetach:
		c.events.publish(Event{Kind: "port_detach", Msg: res.Msg, Port: op.PhysPort})
	}
}

// PublishPortHealth surfaces a port-breaker transition on the event stream.
// The I/O runtime has no reference to the Ctl, so the switch binary bridges
// them at wiring time: rt.SetHealthNotify(func(ph) {
// ctl.PublishPortHealth(ph.Port, ph.Spec, string(ph.State)) }).
func (c *Ctl) PublishPortHealth(port int, spec, state string) {
	c.events.publish(Event{Kind: "port_health", Port: port, Name: spec, Msg: state})
}

// Events returns every event with Seq > since and the current head seq,
// blocking until at least one event exists or ctx ends. Seq 0 starts from
// the beginning of the buffer. A head below since tells the caller its
// cursor predates this server instance.
func (c *Ctl) Events(ctx context.Context, since int64) ([]Event, int64) {
	return c.events.waitSince(ctx, since)
}
