package ctl

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	pktio "hyper4/internal/runtime"
)

// journalScript is the canonical journaled workload: a loaded device,
// populated tables, virtual wiring, and a traffic assignment — every op
// class the journal must reconstruct.
const journalScript = `
load l2 l2_switch
l2 table_add smac _nop 00:00:00:00:00:01 =>
l2 table_add dmac forward 00:00:00:00:00:01 => 1
l2 table_add dmac forward 00:00:00:00:00:02 => 2
map l2 1 1
map l2 2 2
assign 1 l2 1
`

// journaledCtl builds a persona control plane journaling into dir.
func journaledCtl(t *testing.T, dir string, every int) (*Ctl, RecoverySummary) {
	t.Helper()
	c := newPersonaCtl(t)
	j, err := OpenJournal(dir, every)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.AttachJournal(j)
	if err != nil {
		t.Fatal(err)
	}
	return c, sum
}

func mustDump(t *testing.T, c *Ctl) string {
	t.Helper()
	d, err := c.D.DumpControl()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestJournalFraming covers the record codec: round trip, torn header, torn
// payload, corrupted CRC, and a clean EOF at a frame boundary.
func TestJournalFraming(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(`{"seq":1}`), []byte(`{"seq":2,"ops":[]}`)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	whole := append([]byte(nil), buf.Bytes()...)

	r := bytes.NewReader(whole)
	for i, want := range payloads {
		got, err := readFrame(r)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %q, %v", i, got, err)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("clean boundary: %v, want io.EOF", err)
	}

	// Every mid-frame cut is torn, not EOF.
	for cut := 1; cut < len(whole); cut++ {
		if cut == 8+len(payloads[0]) {
			continue // that's the clean boundary between the two frames
		}
		r := bytes.NewReader(whole[:cut])
		var err error
		for err == nil {
			_, err = readFrame(r)
		}
		if err != errTorn {
			t.Fatalf("cut at %d: %v, want errTorn", cut, err)
		}
	}

	// A flipped payload bit breaks the CRC.
	corrupt := append([]byte(nil), whole...)
	corrupt[10] ^= 0x01
	if _, err := readFrame(bytes.NewReader(corrupt)); err != errTorn {
		t.Fatalf("corrupted CRC: %v, want errTorn", err)
	}
}

// TestJournalKillRecoverDifferential is the crash-consistency acceptance
// test: run a workload under live traffic, die mid-append (a torn record on
// the log tail), recover, and compare against a twin that never crashed —
// the control-state dumps must be byte-identical.
func TestJournalKillRecoverDifferential(t *testing.T) {
	dir := t.TempDir()
	victim, sum := journaledCtl(t, dir, 1000) // no rotation: pure log replay
	if sum.SnapshotSeq != 0 || sum.Replayed != 0 {
		t.Fatalf("fresh journal recovered state: %+v", sum)
	}
	if err := NewCLI(victim, "op").ExecAll(journalScript); err != nil {
		t.Fatal(err)
	}
	// Live traffic before the crash: recovery parity must not depend on hit
	// counters (DumpControl zeroes them).
	for i := 0; i < 7; i++ {
		if _, _, err := victim.D.SW.Process(tcpFrame(80), 1); err != nil {
			t.Fatal(err)
		}
	}

	// SIGKILL mid-append: the process dies with a partial frame on the log.
	// The victim Ctl is simply abandoned — nothing flushes, nothing closes.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, sum := journaledCtl(t, dir, 1000)
	if !sum.Truncated {
		t.Fatal("torn final record not truncated")
	}
	if sum.Replayed == 0 || len(sum.Warnings) != 0 {
		t.Fatalf("recovery: %+v", sum)
	}

	twin := newPersonaCtl(t)
	if err := NewCLI(twin, "op").ExecAll(journalScript); err != nil {
		t.Fatal(err)
	}
	if got, want := mustDump(t, recovered), mustDump(t, twin); got != want {
		t.Fatalf("recovered state diverges from the never-crashed twin:\n--- recovered ---\n%s\n--- twin ---\n%s", got, want)
	}

	// The recovered instance keeps journaling: a post-recovery write lands
	// after the truncated tail and survives a second recovery.
	if _, err := NewCLI(recovered, "op").Exec("load fw firewall"); err != nil {
		t.Fatal(err)
	}
	again, sum := journaledCtl(t, dir, 1000)
	if sum.Truncated {
		t.Fatalf("second recovery saw a torn record: %+v", sum)
	}
	if out, err := NewCLI(again, "op").Exec("vdevs"); err != nil || out != "fw l2" {
		t.Fatalf("vdevs after second recovery = %q, %v", out, err)
	}
}

// TestJournalRetryAfterCrashAppliesOnce: a client retrying an acked batch
// after the switch crashed must hit the journaled dedup outcome, not apply
// the ops again.
func TestJournalRetryAfterCrashAppliesOnce(t *testing.T) {
	dir := t.TempDir()
	victim, _ := journaledCtl(t, dir, 1000)
	ops := []Op{{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"}}
	if _, err := victim.WriteBatchID("op", "req-1", ops); err != nil {
		t.Fatal(err)
	}
	// Crash (abandon) and recover.
	recovered, sum := journaledCtl(t, dir, 1000)
	if sum.Replayed != 1 {
		t.Fatalf("replayed %d batches, want 1", sum.Replayed)
	}
	// The retry succeeds by replaying the remembered outcome — a real
	// re-apply would fail ALREADY_EXISTS because l2 is already loaded.
	results, err := recovered.WriteBatchID("op", "req-1", ops)
	if err != nil {
		t.Fatalf("retried batch after recovery: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("replayed outcome has %d results, want 1", len(results))
	}
	if out, _ := NewCLI(recovered, "op").Exec("vdevs"); out != "l2" {
		t.Fatalf("vdevs = %q, want exactly one l2", out)
	}
}

// TestJournalSnapshotRotation: with snapshotEvery=2 a 7-op workload rotates
// into a snapshot plus a short tail, and recovery = snapshot restore + tail
// replay, byte-identical to the twin.
func TestJournalSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	victim, _ := journaledCtl(t, dir, 2)
	if err := NewCLI(victim, "op").ExecAll(journalScript); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after rotation: %v", err)
	}

	recovered, sum := journaledCtl(t, dir, 2)
	if sum.SnapshotSeq != 6 {
		t.Fatalf("SnapshotSeq = %d, want 6 (7 ops, rotation every 2)", sum.SnapshotSeq)
	}
	if sum.Replayed != 1 {
		t.Fatalf("Replayed = %d, want 1 (the tail past the snapshot)", sum.Replayed)
	}
	twin := newPersonaCtl(t)
	if err := NewCLI(twin, "op").ExecAll(journalScript); err != nil {
		t.Fatal(err)
	}
	if got, want := mustDump(t, recovered), mustDump(t, twin); got != want {
		t.Fatalf("snapshot+tail recovery diverges:\n--- recovered ---\n%s\n--- twin ---\n%s", got, want)
	}
}

// TestJournalRotationRemembersInFlightRequestID: a rotation triggered by a
// batch runs inside writeBatchLocked, before WriteBatchID stores that
// batch's outcome in the dedup ring — but the rotation truncates the WAL
// record carrying the batch's request ID, so the snapshot itself must fold
// the in-flight outcome in. Otherwise a crash right after the rotation
// makes the client's retry re-apply an already-applied batch.
func TestJournalRotationRemembersInFlightRequestID(t *testing.T) {
	dir := t.TempDir()
	victim, _ := journaledCtl(t, dir, 1) // every batch rotates
	ops := []Op{{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"}}
	if _, err := victim.WriteBatchID("op", "req-1", ops); err != nil {
		t.Fatal(err)
	}
	// Crash (abandon) and recover: the snapshot covers the only batch, the
	// WAL holds nothing.
	recovered, sum := journaledCtl(t, dir, 1)
	if sum.SnapshotSeq != 1 {
		t.Fatalf("SnapshotSeq = %d, want 1 (rotation on the only batch)", sum.SnapshotSeq)
	}
	// The retry must replay the snapshotted outcome — a real re-apply would
	// fail ALREADY_EXISTS because l2 is already loaded.
	results, err := recovered.WriteBatchID("op", "req-1", ops)
	if err != nil {
		t.Fatalf("retry after crash re-applied the batch: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("replayed outcome has %d results, want 1", len(results))
	}
	if out, _ := NewCLI(recovered, "op").Exec("vdevs"); out != "l2" {
		t.Fatalf("vdevs = %q, want exactly one l2", out)
	}
}

// TestJournalAppendFailureLeavesCleanTail: a failed append must not leave
// its partial frame mid-WAL — later acked batches would land beyond it and
// recovery's truncate-at-first-tear would silently discard them. The undo
// path truncates the log back to the last complete frame.
func TestJournalAppendFailureLeavesCleanTail(t *testing.T) {
	dir := t.TempDir()
	c, _ := journaledCtl(t, dir, 1000)
	cli := NewCLI(c, "op")
	if _, err := cli.Exec("load l2 l2_switch"); err != nil {
		t.Fatal(err)
	}
	// Simulate what a mid-frame append failure (transient ENOSPC, say)
	// leaves on the log, then run the undo appendBatch runs on failure.
	j := c.journal
	if _, err := j.wal.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	j.undoAppend()
	if j.failed != nil {
		t.Fatalf("undo on a healthy file fail-stopped the journal: %v", j.failed)
	}
	// The next acked batch lands after a clean tail; recovery loses nothing
	// and sees no tear.
	if _, err := cli.Exec("load fw firewall"); err != nil {
		t.Fatal(err)
	}
	recovered, sum := journaledCtl(t, dir, 1000)
	if sum.Truncated {
		t.Fatal("recovery saw a torn record after a cleanly undone append")
	}
	if sum.Replayed != 2 {
		t.Fatalf("Replayed = %d, want 2 (both acked batches)", sum.Replayed)
	}
	if out, _ := NewCLI(recovered, "op").Exec("vdevs"); out != "fw l2" {
		t.Fatalf("vdevs = %q, want both acked loads", out)
	}
}

// TestJournalFailStopWhenUndoImpossible: if a failed append's torn bytes
// cannot be removed (the truncate fails too), the journal must refuse all
// further writes — acking batches it cannot durably order behind the tear
// would hand recovery a log it silently truncates.
func TestJournalFailStopWhenUndoImpossible(t *testing.T) {
	dir := t.TempDir()
	c, _ := journaledCtl(t, dir, 1000)
	cli := NewCLI(c, "op")
	if _, err := cli.Exec("load l2 l2_switch"); err != nil {
		t.Fatal(err)
	}
	// Yank the disk out from under the WAL handle: the append's write and
	// the undo's truncate both fail.
	c.journal.wal.Close()
	if _, err := cli.Exec("load fw firewall"); err == nil {
		t.Fatal("acked a batch the journal could not append")
	}
	if c.journal.failed == nil {
		t.Fatal("journal did not fail-stop after an unremovable partial append")
	}
	// The failed batch rolled back, and the journal stays failed.
	if out, _ := cli.Exec("vdevs"); out != "l2" {
		t.Fatalf("rolled-back batch visible: vdevs = %q", out)
	}
	if _, err := cli.Exec("load fw firewall"); err == nil {
		t.Fatal("fail-stopped journal acked a batch")
	}
}

// TestJournalSnapshotIncludesParkedPorts: a wire port parked by quarantine
// is absent from the active port list, but its attach was acked and an
// auto-reattach is pending. A rotation while it is parked truncates its
// attach record out of the WAL, so the snapshot must carry the parked spec
// — otherwise a crash loses the port forever.
func TestJournalSnapshotIncludesParkedPorts(t *testing.T) {
	dir := t.TempDir()
	bi, client := newBreakerInstance(t)
	j, err := OpenJournal(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bi.c.AttachJournal(j); err != nil {
		t.Fatal(err)
	}

	// Batch 1: attach the flaky wire, then let the breaker park it. The
	// fake clock is frozen, so no reattach attempt fires.
	if _, err := client.Write([]Op{{Kind: OpPortAttach, PhysPort: 7, Spec: "fake:wan"}}); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, func() bool {
		phs := bi.rt.PortHealth()
		return len(phs) == 1 && phs[0].State == pktio.PortQuarantined && phs[0].Detached
	}, "breaker to park the wire port")
	if n := len(bi.rt.Ports()); n != 0 {
		t.Fatalf("parked port still on the active list (%d ports)", n)
	}

	// Batch 2 triggers the rotation while the port is parked.
	if _, err := client.Write([]Op{{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after rotation: %v", err)
	}

	// Crash (abandon) and recover into a fresh instance: the parked port's
	// attach must come back from the snapshot.
	bi2, _ := newBreakerInstance(t)
	j2, err := OpenJournal(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := bi2.c.AttachJournal(j2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SnapshotSeq != 2 || len(sum.Warnings) != 0 {
		t.Fatalf("recovery: %+v", sum)
	}
	if sum.PortsAttached != 1 {
		t.Fatalf("PortsAttached = %d, want the parked port back", sum.PortsAttached)
	}
	ports := bi2.rt.Ports()
	if len(ports) != 1 || ports[0].Port != 7 || ports[0].Spec != "fake:wan" {
		t.Fatalf("recovered ports: %+v", ports)
	}
	if out, _ := NewCLI(bi2.c, "op").Exec("vdevs"); out != "l2" {
		t.Fatalf("vdevs = %q, want l2", out)
	}
}

// TestJournalRejectsParsedOps: in-process pre-parsed ops carry values that
// don't serialize; a journaled control plane must refuse them up front
// rather than journal a record that would replay wrongly.
func TestJournalRejectsParsedOps(t *testing.T) {
	dir := t.TempDir()
	c, _ := journaledCtl(t, dir, 1000)
	if _, err := NewCLI(c, "op").Exec("load l2 l2_switch"); err != nil {
		t.Fatal(err)
	}
	_, err := c.WriteBatch("op", []Op{{Kind: OpTableAdd, VDev: "l2", Table: "smac", Action: "_nop", Parsed: true}})
	if err == nil {
		t.Fatal("journaled ctl accepted a pre-parsed op")
	}
	if CodeOf(err) != CodeInvalidArgument || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("wrong rejection: %v", err)
	}
}
