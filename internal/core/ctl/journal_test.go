package ctl

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalScript is the canonical journaled workload: a loaded device,
// populated tables, virtual wiring, and a traffic assignment — every op
// class the journal must reconstruct.
const journalScript = `
load l2 l2_switch
l2 table_add smac _nop 00:00:00:00:00:01 =>
l2 table_add dmac forward 00:00:00:00:00:01 => 1
l2 table_add dmac forward 00:00:00:00:00:02 => 2
map l2 1 1
map l2 2 2
assign 1 l2 1
`

// journaledCtl builds a persona control plane journaling into dir.
func journaledCtl(t *testing.T, dir string, every int) (*Ctl, RecoverySummary) {
	t.Helper()
	c := newPersonaCtl(t)
	j, err := OpenJournal(dir, every)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.AttachJournal(j)
	if err != nil {
		t.Fatal(err)
	}
	return c, sum
}

func mustDump(t *testing.T, c *Ctl) string {
	t.Helper()
	d, err := c.D.DumpControl()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestJournalFraming covers the record codec: round trip, torn header, torn
// payload, corrupted CRC, and a clean EOF at a frame boundary.
func TestJournalFraming(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(`{"seq":1}`), []byte(`{"seq":2,"ops":[]}`)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	whole := append([]byte(nil), buf.Bytes()...)

	r := bytes.NewReader(whole)
	for i, want := range payloads {
		got, err := readFrame(r)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %q, %v", i, got, err)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("clean boundary: %v, want io.EOF", err)
	}

	// Every mid-frame cut is torn, not EOF.
	for cut := 1; cut < len(whole); cut++ {
		if cut == 8+len(payloads[0]) {
			continue // that's the clean boundary between the two frames
		}
		r := bytes.NewReader(whole[:cut])
		var err error
		for err == nil {
			_, err = readFrame(r)
		}
		if err != errTorn {
			t.Fatalf("cut at %d: %v, want errTorn", cut, err)
		}
	}

	// A flipped payload bit breaks the CRC.
	corrupt := append([]byte(nil), whole...)
	corrupt[10] ^= 0x01
	if _, err := readFrame(bytes.NewReader(corrupt)); err != errTorn {
		t.Fatalf("corrupted CRC: %v, want errTorn", err)
	}
}

// TestJournalKillRecoverDifferential is the crash-consistency acceptance
// test: run a workload under live traffic, die mid-append (a torn record on
// the log tail), recover, and compare against a twin that never crashed —
// the control-state dumps must be byte-identical.
func TestJournalKillRecoverDifferential(t *testing.T) {
	dir := t.TempDir()
	victim, sum := journaledCtl(t, dir, 1000) // no rotation: pure log replay
	if sum.SnapshotSeq != 0 || sum.Replayed != 0 {
		t.Fatalf("fresh journal recovered state: %+v", sum)
	}
	if err := NewCLI(victim, "op").ExecAll(journalScript); err != nil {
		t.Fatal(err)
	}
	// Live traffic before the crash: recovery parity must not depend on hit
	// counters (DumpControl zeroes them).
	for i := 0; i < 7; i++ {
		if _, _, err := victim.D.SW.Process(tcpFrame(80), 1); err != nil {
			t.Fatal(err)
		}
	}

	// SIGKILL mid-append: the process dies with a partial frame on the log.
	// The victim Ctl is simply abandoned — nothing flushes, nothing closes.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, sum := journaledCtl(t, dir, 1000)
	if !sum.Truncated {
		t.Fatal("torn final record not truncated")
	}
	if sum.Replayed == 0 || len(sum.Warnings) != 0 {
		t.Fatalf("recovery: %+v", sum)
	}

	twin := newPersonaCtl(t)
	if err := NewCLI(twin, "op").ExecAll(journalScript); err != nil {
		t.Fatal(err)
	}
	if got, want := mustDump(t, recovered), mustDump(t, twin); got != want {
		t.Fatalf("recovered state diverges from the never-crashed twin:\n--- recovered ---\n%s\n--- twin ---\n%s", got, want)
	}

	// The recovered instance keeps journaling: a post-recovery write lands
	// after the truncated tail and survives a second recovery.
	if _, err := NewCLI(recovered, "op").Exec("load fw firewall"); err != nil {
		t.Fatal(err)
	}
	again, sum := journaledCtl(t, dir, 1000)
	if sum.Truncated {
		t.Fatalf("second recovery saw a torn record: %+v", sum)
	}
	if out, err := NewCLI(again, "op").Exec("vdevs"); err != nil || out != "fw l2" {
		t.Fatalf("vdevs after second recovery = %q, %v", out, err)
	}
}

// TestJournalRetryAfterCrashAppliesOnce: a client retrying an acked batch
// after the switch crashed must hit the journaled dedup outcome, not apply
// the ops again.
func TestJournalRetryAfterCrashAppliesOnce(t *testing.T) {
	dir := t.TempDir()
	victim, _ := journaledCtl(t, dir, 1000)
	ops := []Op{{Kind: OpLoadVDev, VDev: "l2", Function: "l2_switch"}}
	if _, err := victim.WriteBatchID("op", "req-1", ops); err != nil {
		t.Fatal(err)
	}
	// Crash (abandon) and recover.
	recovered, sum := journaledCtl(t, dir, 1000)
	if sum.Replayed != 1 {
		t.Fatalf("replayed %d batches, want 1", sum.Replayed)
	}
	// The retry succeeds by replaying the remembered outcome — a real
	// re-apply would fail ALREADY_EXISTS because l2 is already loaded.
	results, err := recovered.WriteBatchID("op", "req-1", ops)
	if err != nil {
		t.Fatalf("retried batch after recovery: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("replayed outcome has %d results, want 1", len(results))
	}
	if out, _ := NewCLI(recovered, "op").Exec("vdevs"); out != "l2" {
		t.Fatalf("vdevs = %q, want exactly one l2", out)
	}
}

// TestJournalSnapshotRotation: with snapshotEvery=2 a 7-op workload rotates
// into a snapshot plus a short tail, and recovery = snapshot restore + tail
// replay, byte-identical to the twin.
func TestJournalSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	victim, _ := journaledCtl(t, dir, 2)
	if err := NewCLI(victim, "op").ExecAll(journalScript); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after rotation: %v", err)
	}

	recovered, sum := journaledCtl(t, dir, 2)
	if sum.SnapshotSeq != 6 {
		t.Fatalf("SnapshotSeq = %d, want 6 (7 ops, rotation every 2)", sum.SnapshotSeq)
	}
	if sum.Replayed != 1 {
		t.Fatalf("Replayed = %d, want 1 (the tail past the snapshot)", sum.Replayed)
	}
	twin := newPersonaCtl(t)
	if err := NewCLI(twin, "op").ExecAll(journalScript); err != nil {
		t.Fatal(err)
	}
	if got, want := mustDump(t, recovered), mustDump(t, twin); got != want {
		t.Fatalf("snapshot+tail recovery diverges:\n--- recovered ---\n%s\n--- twin ---\n%s", got, want)
	}
}

// TestJournalRejectsParsedOps: in-process pre-parsed ops carry values that
// don't serialize; a journaled control plane must refuse them up front
// rather than journal a record that would replay wrongly.
func TestJournalRejectsParsedOps(t *testing.T) {
	dir := t.TempDir()
	c, _ := journaledCtl(t, dir, 1000)
	if _, err := NewCLI(c, "op").Exec("load l2 l2_switch"); err != nil {
		t.Fatal(err)
	}
	_, err := c.WriteBatch("op", []Op{{Kind: OpTableAdd, VDev: "l2", Table: "smac", Action: "_nop", Parsed: true}})
	if err == nil {
		t.Fatal("journaled ctl accepted a pre-parsed op")
	}
	if CodeOf(err) != CodeInvalidArgument || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("wrong rejection: %v", err)
	}
}
