package ctl

// Crash-consistent control-plane journal: with `hp4switch -journal <dir>`
// every applied WriteBatch is appended to a write-ahead log and fsync'd
// before the client sees its ack, so the sequence
//
//	apply → journal append+fsync → ack
//
// guarantees that any acked batch survives a SIGKILL. A batch that applied
// but died before the fsync completed was never acked, so the client's
// retry (same request ID) re-applies it exactly once — the journaled
// request IDs seed the dedup ring at recovery, so replay inherits dedup.
//
// On-disk layout (all records CRC-framed: 4-byte little-endian payload
// length, 4-byte IEEE CRC32 of the payload, JSON payload):
//
//	<dir>/snap.bin   one framed snapshot: DPMU state (dpmu.EncodeState, the
//	                 Checkpoint/sim.Dump machinery), attached ports, dedup
//	                 ring, and the sequence number it covers. Replaced
//	                 atomically (tmp + rename).
//	<dir>/wal.log    framed batch records appended since the last snapshot.
//
// Rotation: every SnapshotEvery appended batches the journal snapshots and
// truncates the log. A crash between the snapshot rename and the log
// truncation is benign — recovery skips log records whose seq the snapshot
// already covers. A torn final log record (the SIGKILL landed mid-append)
// is detected by the framing, truncated away, and the switch starts; torn
// means unacked, so nothing acked is lost.
//
// Recovery ordering: restore snapshot state → re-attach snapshotted ports →
// seed dedup → replay log tail through the normal batch path (events and
// port attaches included) → open the log for appending. The journal is
// wired to the Ctl only after recovery, so replay itself is never
// re-journaled.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/functions"
)

// DefaultSnapshotEvery is the rotation period in applied batches.
const DefaultSnapshotEvery = 256

const (
	snapName = "snap.bin"
	walName  = "wal.log"
)

// Journal is the write-ahead log + snapshot pair for one switch. Methods
// are called with the Ctl's write mutex held (appendBatch from the write
// path, the rest from recovery), so the only internal locking is the file
// handles' own.
type Journal struct {
	dir           string
	wal           *os.File
	walSize       int64  // bytes of complete frames in the log
	seq           uint64 // last sequence appended (snapshot or record)
	snapSeq       uint64 // sequence the on-disk snapshot covers
	recsSinceSnap int
	snapshotEvery int
	// failed, once set, fail-stops the journal: a partial append could not
	// be removed from the log, so the "a torn frame is always the final
	// record" invariant recovery relies on cannot be guaranteed for further
	// appends. Every subsequent append (and hence every ack) is refused.
	failed error
}

// journalRecord is one applied batch.
type journalRecord struct {
	Seq       uint64 `json:"seq"`
	Owner     string `json:"owner"`
	RequestID string `json:"request_id,omitempty"`
	Ops       []Op   `json:"ops"`
}

// journalPort is one attached port remembered by a snapshot.
type journalPort struct {
	Port int    `json:"port"`
	Spec string `json:"spec"`
}

// journalDedup is one remembered write outcome, so a client retrying across
// the crash still gets exactly-once semantics.
type journalDedup struct {
	ID      string   `json:"id"`
	Results []Result `json:"results,omitempty"`
	Err     *Error   `json:"err,omitempty"`
}

// journalSnapshot is the snap.bin payload.
type journalSnapshot struct {
	Seq   uint64          `json:"seq"`
	State json.RawMessage `json:"state"`
	Ports []journalPort   `json:"ports,omitempty"`
	Dedup []journalDedup  `json:"dedup,omitempty"`
}

// OpenJournal prepares a journal rooted at dir (created if missing).
// snapshotEvery <= 0 takes the default. The journal is inert until
// Ctl.AttachJournal recovers from it and wires it to the write path.
func OpenJournal(dir string, snapshotEvery int) (*Journal, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir, snapshotEvery: snapshotEvery}, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Close flushes and closes the log file.
func (j *Journal) Close() error {
	if j.wal == nil {
		return nil
	}
	err := j.wal.Sync()
	if cerr := j.wal.Close(); err == nil {
		err = cerr
	}
	j.wal = nil
	return err
}

// --- framing ---

// writeFrame appends one CRC-framed payload to w.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// errTorn marks a frame cut short or corrupted — the tail a SIGKILL leaves.
var errTorn = errors.New("journal: torn record")

// readFrame reads one framed payload from r. Short reads and CRC mismatches
// return errTorn; a clean EOF at a frame boundary returns io.EOF.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n > 1<<30 {
		return nil, errTorn // length bytes are garbage
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, errTorn
	}
	return payload, nil
}

// --- append path ---

// appendBatch journals one applied batch and fsyncs before returning; the
// caller acks the client only on nil. A failed append is undone: the log is
// truncated back to the last complete frame, so a torn frame can only ever
// be the final record — later acked batches never land beyond torn bytes,
// which recovery's truncate-at-first-tear would silently discard. Called
// under c.wmu.
func (j *Journal) appendBatch(owner, requestID string, ops []Op) error {
	if j.failed != nil {
		return j.failed
	}
	if j.wal == nil {
		f, err := os.OpenFile(filepath.Join(j.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: open log: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("journal: stat log: %w", err)
		}
		j.wal = f
		j.walSize = st.Size()
	}
	j.seq++
	payload, err := json.Marshal(journalRecord{Seq: j.seq, Owner: owner, RequestID: requestID, Ops: ops})
	if err != nil {
		j.seq--
		return fmt.Errorf("journal: encode: %w", err)
	}
	if err := writeFrame(j.wal, payload); err != nil {
		j.seq--
		j.undoAppend()
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.wal.Sync(); err != nil {
		j.seq--
		j.undoAppend()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.walSize += int64(8 + len(payload))
	j.recsSinceSnap++
	return nil
}

// undoAppend removes whatever a failed append left on the log, truncating
// back to the last complete frame (j.walSize). If the truncate itself fails
// the torn bytes cannot be removed and the journal goes fail-stop — better
// to refuse all further writes than to ack batches recovery would discard.
func (j *Journal) undoAppend() {
	if err := j.wal.Truncate(j.walSize); err != nil {
		j.failed = fmt.Errorf("journal: fail-stop: partial append could not be removed from the log: %v", err)
		return
	}
	_ = j.wal.Sync()
}

// snapshot writes snap.bin atomically (tmp + rename + dir fsync) and
// truncates the log. Called under c.wmu.
func (j *Journal) snapshot(snap journalSnapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("journal: encode snapshot: %w", err)
	}
	tmp := filepath.Join(j.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := writeFrame(f, payload); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	syncDir(j.dir)
	// The snapshot covers everything; the log restarts empty. A crash
	// before the truncate is fine: recovery skips records ≤ snapSeq.
	if j.wal != nil {
		j.wal.Close()
		j.wal = nil
	}
	if err := os.Truncate(filepath.Join(j.dir, walName), 0); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: truncate log: %w", err)
	}
	j.walSize = 0
	j.snapSeq = snap.Seq
	j.recsSinceSnap = 0
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss; best-effort
// (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// --- recovery ---

// RecoverySummary reports what AttachJournal reconstructed.
type RecoverySummary struct {
	// SnapshotSeq is the sequence the restored snapshot covered (0 = no
	// snapshot on disk, fresh or log-only journal).
	SnapshotSeq uint64
	// Replayed counts log batches re-applied after the snapshot.
	Replayed int
	// PortsAttached counts transports re-attached from the snapshot.
	PortsAttached int
	// Truncated reports a torn final record was cut off the log.
	Truncated bool
	// Warnings collects non-fatal divergences (a port that failed to
	// re-bind, a replayed batch that failed where it once succeeded).
	Warnings []string
}

// compileFunction is the restore-time CompileFunc: the same
// functions.Load + hp4c.Compile path OpLoadVDev uses.
func (c *Ctl) compileFunction(name string) (*hp4c.Compiled, error) {
	prog, err := functions.Load(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, dpmu.ErrNotFound)
	}
	return hp4c.Compile(prog, c.D.Config())
}

// AttachJournal recovers the control plane from a journal and wires the
// journal into the write path: snapshot state is restored (including port
// re-attachment and the dedup ring), the log tail is replayed through the
// normal batch machinery, and a torn final record is truncated in place.
// Must run during wiring, before the Ctl serves traffic.
func (c *Ctl) AttachJournal(j *Journal) (RecoverySummary, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var sum RecoverySummary

	// 1. Snapshot. Written atomically, so presence means integrity — a
	// corrupt snapshot is a hard error (silently booting empty would lose
	// acked state), unlike the log tail where torn means unacked.
	snapPath := filepath.Join(j.dir, snapName)
	if f, err := os.Open(snapPath); err == nil {
		payload, err := readFrame(f)
		f.Close()
		if err != nil {
			return sum, fmt.Errorf("journal: snapshot %s corrupt: %v", snapPath, err)
		}
		var snap journalSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return sum, fmt.Errorf("journal: snapshot decode: %w", err)
		}
		if err := c.D.RestoreState(snap.State, c.compileFunction); err != nil {
			return sum, fmt.Errorf("journal: restore snapshot: %w", err)
		}
		for _, p := range snap.Ports {
			if c.IO == nil {
				sum.Warnings = append(sum.Warnings, fmt.Sprintf("port %d (%s): no I/O runtime to re-attach", p.Port, p.Spec))
				continue
			}
			if err := c.IO.AttachSpec(p.Port, p.Spec); err != nil {
				sum.Warnings = append(sum.Warnings, fmt.Sprintf("port %d (%s): re-attach: %v", p.Port, p.Spec, err))
				continue
			}
			sum.PortsAttached++
		}
		for _, d := range snap.Dedup {
			c.rememberOutcome(d.ID, &writeOutcome{results: d.Results, err: d.Err})
		}
		j.seq = snap.Seq
		j.snapSeq = snap.Seq
		sum.SnapshotSeq = snap.Seq
	} else if !os.IsNotExist(err) {
		return sum, fmt.Errorf("journal: snapshot: %w", err)
	}

	// 2. Log tail: replay acked batches past the snapshot through the
	// normal apply path, truncating a torn final record in place.
	walPath := filepath.Join(j.dir, walName)
	if f, err := os.Open(walPath); err == nil {
		offset := int64(0)
		for {
			payload, err := readFrame(f)
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				if terr := os.Truncate(walPath, offset); terr != nil {
					return sum, fmt.Errorf("journal: truncate torn log: %w", terr)
				}
				sum.Truncated = true
				f = nil
				break
			}
			offset += int64(8 + len(payload))
			var rec journalRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				f.Close()
				return sum, fmt.Errorf("journal: log record decode: %w", err)
			}
			if rec.Seq <= j.snapSeq {
				continue // the snapshot already covers it (crash mid-rotation)
			}
			results, aerr := c.writeBatchLocked(rec.Owner, rec.RequestID, rec.Ops)
			if rec.RequestID != "" {
				out := &writeOutcome{results: results}
				if aerr != nil {
					out.err = asError(aerr)
				}
				c.rememberOutcome(rec.RequestID, out)
			}
			if aerr != nil {
				// It applied before the crash; failing now means the
				// environment changed (e.g. an address another process now
				// holds). Keep booting — availability over strictness — but
				// say so.
				sum.Warnings = append(sum.Warnings, fmt.Sprintf("replay seq %d: %v", rec.Seq, aerr))
			} else {
				sum.Replayed++
			}
			if rec.Seq > j.seq {
				j.seq = rec.Seq
			}
			j.recsSinceSnap++
		}
		if f != nil {
			f.Close()
		}
	} else if !os.IsNotExist(err) {
		return sum, fmt.Errorf("journal: open log: %w", err)
	}

	c.journal = j
	return sum, nil
}

// rememberOutcome stores one request ID's outcome in the dedup ring.
// Caller holds c.wmu.
func (c *Ctl) rememberOutcome(id string, out *writeOutcome) {
	if id == "" {
		return
	}
	if _, ok := c.dedup[id]; !ok {
		if len(c.dedupRing) >= dedupWindow {
			delete(c.dedup, c.dedupRing[0])
			c.dedupRing = c.dedupRing[1:]
		}
		c.dedupRing = append(c.dedupRing, id)
	}
	c.dedup[id] = out
}

// journalAppliedLocked runs after a batch applied cleanly: append + fsync,
// then rotate if due. An append failure is returned to the caller (which
// rolls the batch back — the ack must never outrun the journal); a rotation
// failure only warns, since the appended record already preserves the
// batch. results is the in-flight batch's outcome: it is not in the dedup
// ring yet (WriteBatchID stores it only after the batch returns), so a
// rotation triggered by this very batch must fold it into the snapshot
// explicitly or the client's post-crash retry would re-apply the batch.
func (c *Ctl) journalAppliedLocked(owner, requestID string, ops []Op, results []Result) error {
	j := c.journal
	if err := j.appendBatch(owner, requestID, ops); err != nil {
		return err
	}
	if j.recsSinceSnap < j.snapshotEvery {
		return nil
	}
	state, err := c.D.EncodeState()
	if err != nil {
		return nil // keep the log growing; the state is still fully journaled
	}
	snap := journalSnapshot{Seq: j.seq, State: state}
	if c.IO != nil {
		seen := map[int]bool{}
		for _, p := range c.IO.Ports() {
			if p.Spec == "chan" {
				continue // programmatic transports cannot be rebuilt from a spec
			}
			seen[p.Port] = true
			snap.Ports = append(snap.Ports, journalPort{Port: p.Port, Spec: p.Spec})
		}
		// Quarantine-parked wire ports are detached — absent from the
		// active list — but their attach was acked and auto-reattach is
		// pending, so the snapshot must remember them too: rotation
		// truncates their attach record out of the WAL.
		for _, ph := range c.IO.PortHealth() {
			if ph.Wire && ph.Detached && !seen[ph.Port] {
				snap.Ports = append(snap.Ports, journalPort{Port: ph.Port, Spec: ph.Spec})
			}
		}
	}
	for _, id := range c.dedupRing {
		out := c.dedup[id]
		snap.Dedup = append(snap.Dedup, journalDedup{ID: id, Results: out.results, Err: out.err})
	}
	if requestID != "" {
		// The batch that triggered this rotation applied cleanly; remember
		// its outcome alongside the ring's.
		snap.Dedup = append(snap.Dedup, journalDedup{ID: requestID, Results: results})
	}
	_ = j.snapshot(snap) // failure tolerated: the log still has everything
	return nil
}
