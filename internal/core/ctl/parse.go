package ctl

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the script dialect: one line, one Op or Query. The grammar is
// shared verbatim by the hp4switch REPL / -commands scripts, hp4ctl, and any
// test driving the CLI — parsing happens once, here, and every path applies
// the same Ops.
//
// Management commands:
//
//	load <vdev> <builtin-function> [quota]
//	unload <vdev>
//	assign <port|any> <vdev> <vingress>
//	clear_assignments
//	map <vdev> <vport> <physport>
//	link <vdevA> <vportA> <vdevB> <vingressB>
//	mcast <vdev> <vport> <vdev:vingress>...
//	ratelimit <vdev> <yellowAt> <redAt>
//	meter_tick
//	snapshot_save <name> <port:vdev:vingress>...
//	snapshot_activate <name>
//	reset <vdev>
//	verify [vdev]
//	port attach <port> <transport-spec>
//	port detach <port>
//
// Virtual table operations (translated, §3.1):
//
//	<vdev> table_add <table> <action> <match>... => <arg>... [priority]
//	<vdev> table_delete <table> <handle>
//	<vdev> table_modify <table> <handle> <action> <match>... => <arg>... [priority]
//	<vdev> table_set_default <table> <action> [<arg>...]
//
// Queries:
//
//	vdevs
//	snapshots
//	stats <vdev>
//	health [vdev]
//	lint [vdev]
//	prove <vdev>
//	fuse
//	dump
//	port list
//	port health
//
// Match tokens use the emulated program's own field widths and kinds, in the
// same syntax as internal/sim/runtime; they are parsed against the program
// when the op is applied, not here.

// vdevOps are the second-token operations of the "<vdev> table_..." form.
var vdevOps = map[string]OpKind{
	"table_add":         OpTableAdd,
	"table_delete":      OpTableDelete,
	"table_modify":      OpTableModify,
	"table_set_default": OpSetDefault,
}

// ParseLine parses one script line into an Op (mutation) or a Query (read).
// Blank and comment lines return (nil, nil, nil). A line that is not part of
// the control-plane dialect at all returns an error wrapping ErrUnknown, so
// the REPL can fall through to raw switch-runtime commands.
func ParseLine(line string) (*Op, *Query, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil, nil, nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "load":
		if len(args) < 2 || len(args) > 3 {
			return nil, nil, invalidf("load wants <vdev> <function> [quota]")
		}
		op := &Op{Kind: OpLoadVDev, VDev: args[0], Function: args[1]}
		if len(args) == 3 {
			q, err := strconv.Atoi(args[2])
			if err != nil {
				return nil, nil, invalidf("bad quota %q", args[2])
			}
			op.Quota = q
		}
		return op, nil, nil

	case "unload":
		if len(args) != 1 {
			return nil, nil, invalidf("unload wants <vdev>")
		}
		return &Op{Kind: OpUnload, VDev: args[0]}, nil, nil

	case "assign":
		if len(args) != 3 {
			return nil, nil, invalidf("assign wants <port|any> <vdev> <vingress>")
		}
		port := -1
		if args[0] != "any" {
			p, err := strconv.Atoi(args[0])
			if err != nil {
				return nil, nil, invalidf("bad port %q", args[0])
			}
			port = p
		}
		ving, err := strconv.Atoi(args[2])
		if err != nil {
			return nil, nil, invalidf("bad vingress %q", args[2])
		}
		return &Op{Kind: OpAssign, VDev: args[1], PhysPort: port, VIngress: ving}, nil, nil

	case "clear_assignments":
		return &Op{Kind: OpClearAssignments}, nil, nil

	case "map":
		if len(args) != 3 {
			return nil, nil, invalidf("map wants <vdev> <vport> <physport>")
		}
		vport, err1 := strconv.Atoi(args[1])
		phys, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil {
			return nil, nil, invalidf("bad ports %v", args[1:])
		}
		return &Op{Kind: OpMapVPort, VDev: args[0], VPort: vport, PhysPort: phys}, nil, nil

	case "link":
		if len(args) != 4 {
			return nil, nil, invalidf("link wants <vdevA> <vportA> <vdevB> <vingressB>")
		}
		pa, err1 := strconv.Atoi(args[1])
		pb, err2 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil {
			return nil, nil, invalidf("bad ports")
		}
		return &Op{Kind: OpLink, VDev: args[0], VPort: pa, ToVDev: args[2], ToVPort: pb}, nil, nil

	case "mcast":
		if len(args) < 3 {
			return nil, nil, invalidf("mcast wants <vdev> <vport> <vdev:vingress>...")
		}
		vport, err := strconv.Atoi(args[1])
		if err != nil {
			return nil, nil, invalidf("bad vport %q", args[1])
		}
		op := &Op{Kind: OpMcast, VDev: args[0], VPort: vport}
		for _, spec := range args[2:] {
			dev, ving, ok := strings.Cut(spec, ":")
			if !ok {
				return nil, nil, invalidf("bad target %q (want vdev:vingress)", spec)
			}
			v, err := strconv.Atoi(ving)
			if err != nil {
				return nil, nil, invalidf("bad target %q", spec)
			}
			op.Targets = append(op.Targets, Target{VDev: dev, VIngress: v})
		}
		return op, nil, nil

	case "ratelimit":
		if len(args) != 3 {
			return nil, nil, invalidf("ratelimit wants <vdev> <yellowAt> <redAt>")
		}
		y, err1 := strconv.ParseUint(args[1], 0, 64)
		r, err2 := strconv.ParseUint(args[2], 0, 64)
		if err1 != nil || err2 != nil {
			return nil, nil, invalidf("bad thresholds")
		}
		return &Op{Kind: OpRateLimit, VDev: args[0], YellowAt: y, RedAt: r}, nil, nil

	case "meter_tick":
		return &Op{Kind: OpMeterTick}, nil, nil

	case "snapshot_save":
		if len(args) < 2 {
			return nil, nil, invalidf("snapshot_save wants <name> <port:vdev:vingress>...")
		}
		op := &Op{Kind: OpSnapshotSave, Name: args[0]}
		for _, spec := range args[1:] {
			parts := strings.Split(spec, ":")
			if len(parts) != 3 {
				return nil, nil, invalidf("bad assignment %q (want port:vdev:vingress)", spec)
			}
			port := -1
			if parts[0] != "any" {
				p, err := strconv.Atoi(parts[0])
				if err != nil {
					return nil, nil, invalidf("bad port in %q", spec)
				}
				port = p
			}
			ving, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, nil, invalidf("bad vingress in %q", spec)
			}
			op.Assignments = append(op.Assignments, Assignment{PhysPort: port, VDev: parts[1], VIngress: ving})
		}
		return op, nil, nil

	case "snapshot_activate":
		if len(args) != 1 {
			return nil, nil, invalidf("snapshot_activate wants <name>")
		}
		return &Op{Kind: OpSnapshotActivate, Name: args[0]}, nil, nil

	case "reset":
		if len(args) != 1 {
			return nil, nil, invalidf("reset wants <vdev>")
		}
		return &Op{Kind: OpHealthReset, VDev: args[0]}, nil, nil

	case "port":
		if len(args) == 0 {
			return nil, nil, invalidf("port wants attach|detach|list")
		}
		switch args[0] {
		case "attach":
			if len(args) != 3 {
				return nil, nil, invalidf("port attach wants <port> <transport-spec>")
			}
			p, err := strconv.Atoi(args[1])
			if err != nil {
				return nil, nil, invalidf("bad port %q", args[1])
			}
			return &Op{Kind: OpPortAttach, PhysPort: p, Spec: args[2]}, nil, nil
		case "detach":
			if len(args) != 2 {
				return nil, nil, invalidf("port detach wants <port>")
			}
			p, err := strconv.Atoi(args[1])
			if err != nil {
				return nil, nil, invalidf("bad port %q", args[1])
			}
			return &Op{Kind: OpPortDetach, PhysPort: p}, nil, nil
		case "list":
			if len(args) != 1 {
				return nil, nil, invalidf("port list takes no arguments")
			}
			return nil, &Query{Kind: "ports"}, nil
		case "health":
			if len(args) != 1 {
				return nil, nil, invalidf("port health takes no arguments")
			}
			return nil, &Query{Kind: "port_health"}, nil
		}
		return nil, nil, invalidf("port wants attach|detach|list|health, got %q", args[0])

	case "verify":
		if len(args) > 1 {
			return nil, nil, invalidf("verify wants at most one <vdev>")
		}
		op := &Op{Kind: OpVerify}
		if len(args) == 1 {
			op.VDev = args[0]
		}
		return op, nil, nil

	case "lint":
		if len(args) > 1 {
			return nil, nil, invalidf("lint wants at most one <vdev>")
		}
		q := &Query{Kind: "lint"}
		if len(args) == 1 {
			q.VDev = args[0]
		}
		return nil, q, nil

	case "prove":
		if len(args) != 1 {
			return nil, nil, invalidf("prove wants exactly one <vdev>")
		}
		return nil, &Query{Kind: "prove", VDev: args[0]}, nil

	case "dump":
		if len(args) != 0 {
			return nil, nil, invalidf("dump takes no arguments")
		}
		return nil, &Query{Kind: "dump"}, nil

	case "fuse":
		if len(args) != 0 {
			return nil, nil, invalidf("fuse takes no arguments")
		}
		return nil, &Query{Kind: "fuse"}, nil

	case "vdevs":
		return nil, &Query{Kind: "vdevs"}, nil

	case "snapshots":
		return nil, &Query{Kind: "snapshots"}, nil

	case "stats":
		if len(args) != 1 {
			return nil, nil, invalidf("stats wants <vdev>")
		}
		return nil, &Query{Kind: "stats", VDev: args[0]}, nil

	case "health":
		if len(args) > 1 {
			return nil, nil, invalidf("health wants at most one <vdev>")
		}
		q := &Query{Kind: "health"}
		if len(args) == 1 {
			q.VDev = args[0]
		}
		return nil, q, nil
	}

	// "<vdev> table_add ..." — any first token followed by a table op.
	if len(args) > 0 {
		if kind, ok := vdevOps[args[0]]; ok {
			return parseTableOp(kind, cmd, args[1:])
		}
		if strings.HasPrefix(args[0], "table_") {
			return nil, nil, invalidf("unknown virtual operation %q", args[0])
		}
	}
	return nil, nil, fmt.Errorf("unknown dpmu command %q: %w", cmd, ErrUnknown)
}

// parseTableOp splits a virtual table operation into its textual Op form.
// The match/argument tokens stay raw; apply parses them against the device's
// compiled program.
func parseTableOp(kind OpKind, vdev string, args []string) (*Op, *Query, error) {
	op := &Op{Kind: kind, VDev: vdev}
	switch kind {
	case OpTableAdd:
		if len(args) < 2 {
			return nil, nil, invalidf("table_add wants <table> <action> <match>... => <args>...")
		}
		op.Table, op.Action = args[0], args[1]
		op.Match, op.Args = splitEntry(args[2:])

	case OpTableDelete:
		if len(args) != 2 {
			return nil, nil, invalidf("table_delete wants <table> <handle>")
		}
		h, err := strconv.Atoi(args[1])
		if err != nil {
			return nil, nil, invalidf("bad handle %q", args[1])
		}
		op.Table, op.Handle = args[0], h

	case OpTableModify:
		if len(args) < 3 {
			return nil, nil, invalidf("table_modify wants <table> <handle> <action> <match>... => <args>...")
		}
		h, err := strconv.Atoi(args[1])
		if err != nil {
			return nil, nil, invalidf("bad handle %q", args[1])
		}
		op.Table, op.Handle, op.Action = args[0], h, args[2]
		op.Match, op.Args = splitEntry(args[3:])

	case OpSetDefault:
		if len(args) < 2 {
			return nil, nil, invalidf("table_set_default wants <table> <action> [args...]")
		}
		op.Table, op.Action = args[0], args[1]
		op.Args = args[2:]
	}
	return op, nil, nil
}

// splitEntry cuts "<match>... => <args>..." at the arrow. Without an arrow
// every token is a match token.
func splitEntry(rest []string) (match, args []string) {
	for i, a := range rest {
		if a == "=>" {
			return rest[:i], rest[i+1:]
		}
	}
	return rest, nil
}
