package ctl

import (
	"sort"
	"sync"

	"hyper4/internal/core/dpmu"
)

// Ctl is the control plane over one DPMU. All mutating paths — REPL lines,
// hp4ctl requests, in-process controllers — go through Apply or WriteBatch,
// so authorization, error classification, atomicity and event publication
// behave identically everywhere.
type Ctl struct {
	D *dpmu.DPMU

	// wmu serializes writes: a batch's checkpoint-apply-rollback span must
	// not interleave with another writer (readers are unaffected — the DPMU
	// and switch have their own locks, and rollback restores a consistent
	// snapshot).
	wmu sync.Mutex

	events *hub
}

// New builds a control plane over a DPMU.
func New(d *dpmu.DPMU) *Ctl {
	return &Ctl{D: d, events: newHub()}
}

// Apply validates and applies one op as owner. Single ops need no
// checkpoint: every DPMU operation already cleans up its own partial rows on
// failure, so the op is atomic by itself.
func (c *Ctl) Apply(owner string, op *Op) (Result, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	res, err := c.applyOp(owner, op)
	if err != nil {
		return Result{}, wrap(err, -1)
	}
	c.publishOp(op, res)
	return res, nil
}

// WriteBatch applies ops atomically as owner: each op is validated
// structurally up front, the DPMU is checkpointed, and the first failure
// rolls everything back so the switch and the DPMU's bookkeeping are
// bit-identical to the pre-batch state. The returned error carries the
// failing op's index and code; on success one Result per op is returned.
func (c *Ctl) WriteBatch(owner string, ops []Op) ([]Result, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for i := range ops {
		if err := validateOp(&ops[i]); err != nil {
			return nil, wrap(err, i)
		}
	}
	cp := c.D.Checkpoint()
	results := make([]Result, len(ops))
	for i := range ops {
		res, err := c.applyOp(owner, &ops[i])
		if err != nil {
			c.D.Rollback(cp)
			return nil, wrap(err, i)
		}
		results[i] = res
	}
	for i := range ops {
		c.publishOp(&ops[i], results[i])
	}
	return results, nil
}

// validateOp rejects structurally malformed ops before any state changes.
// Program-dependent validation (does the table exist, do the tokens parse
// against its reads) happens at apply time — a batch may load the device an
// op later in the same batch targets — and is covered by rollback.
func validateOp(op *Op) error {
	switch op.Kind {
	case OpLoadVDev:
		if op.VDev == "" || op.Function == "" {
			return invalidf("load_vdev wants a device name and a function")
		}
	case OpUnload, OpAssign, OpMapVPort, OpRateLimit:
		if op.VDev == "" {
			return invalidf("%s wants a device name", op.Kind)
		}
	case OpLink:
		if op.VDev == "" || op.ToVDev == "" {
			return invalidf("link wants two device names")
		}
	case OpMcast:
		if op.VDev == "" || len(op.Targets) == 0 {
			return invalidf("mcast wants a device and at least one target")
		}
	case OpSnapshotSave, OpSnapshotActivate:
		if op.Name == "" {
			return invalidf("%s wants a snapshot name", op.Kind)
		}
	case OpTableAdd, OpSetDefault:
		if op.VDev == "" || op.Table == "" || op.Action == "" {
			return invalidf("%s wants a device, table and action", op.Kind)
		}
	case OpTableModify:
		if op.VDev == "" || op.Table == "" || op.Action == "" || op.Handle <= 0 {
			return invalidf("table_modify wants a device, table, action and handle")
		}
	case OpTableDelete:
		if op.VDev == "" || op.Table == "" || op.Handle <= 0 {
			return invalidf("table_delete wants a device, table and handle")
		}
	case OpClearAssignments, OpMeterTick:
		// No payload.
	default:
		return invalidf("unknown op kind %q", op.Kind)
	}
	return nil
}

// ReadResult is the payload of a Query.
type ReadResult struct {
	VDevs     []string        `json:"vdevs,omitempty"`
	Snapshots []string        `json:"snapshots,omitempty"`
	Active    string          `json:"active,omitempty"`
	Stats     *dpmu.VDevStats `json:"stats,omitempty"`
}

// Read answers one read-only query as owner. Per-device stats apply the same
// authorization as writes; listings are public.
func (c *Ctl) Read(owner string, q *Query) (*ReadResult, error) {
	switch q.Kind {
	case "vdevs":
		return &ReadResult{VDevs: c.D.VDevs()}, nil
	case "snapshots":
		return &ReadResult{Snapshots: c.D.Snapshots(), Active: c.D.ActiveSnapshot()}, nil
	case "stats":
		st, err := c.D.StatsForVDev(owner, q.VDev)
		if err != nil {
			return nil, wrap(err, -1)
		}
		return &ReadResult{Stats: &st}, nil
	}
	return nil, wrap(invalidf("unknown query kind %q", q.Kind), -1)
}

// Stats returns the operator-level view: every device's statistics, sorted
// by device name (the same view the metrics exporter scrapes).
func (c *Ctl) Stats() []dpmu.VDevStats {
	st := c.D.AllStats()
	sort.Slice(st, func(i, j int) bool { return st[i].VDev < st[j].VDev })
	return st
}
