package ctl

import (
	"fmt"
	"sort"
	"sync"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/verify"
	"hyper4/internal/core/verify/prove"
	pktio "hyper4/internal/runtime"
)

// PortIO is the packet I/O runtime surface the control plane manages:
// attach a transport to a physical port, detach it, list what is attached.
// *runtime.Runtime satisfies it; a Ctl with a nil IO (tests, bench rigs that
// feed the switch directly) rejects port ops as invalid.
type PortIO interface {
	AttachSpec(port int, spec string) error
	Detach(port int) error
	Ports() []pktio.PortInfo
	// PortHealth reports the per-port breaker state (runtime/health.go);
	// querying it also advances time-based breaker transitions, mirroring
	// how the vdev health query drives the DPMU breakers.
	PortHealth() []pktio.PortHealth
}

// Ctl is the control plane over one DPMU. All mutating paths — REPL lines,
// hp4ctl requests, in-process controllers — go through Apply or WriteBatch,
// so authorization, error classification, atomicity and event publication
// behave identically everywhere.
type Ctl struct {
	D *dpmu.DPMU

	// IO is the packet I/O runtime port ops act on; nil when the switch has
	// no I/O runtime. Set once at wiring time, before the Ctl serves traffic.
	IO PortIO

	// wmu serializes writes: a batch's checkpoint-apply-rollback span must
	// not interleave with another writer (readers are unaffected — the DPMU
	// and switch have their own locks, and rollback restores a consistent
	// snapshot). It also guards the request-ID dedup ring below.
	wmu sync.Mutex

	// Request-ID dedup (idempotent retries): a retried WriteBatch carrying
	// the same request ID replays the stored outcome instead of applying the
	// ops twice. The ring keeps the last dedupWindow outcomes.
	dedup     map[string]*writeOutcome
	dedupRing []string

	// journal, when non-nil, makes every applied batch durable before its
	// ack (journal.go). Wired by AttachJournal during boot. Guarded by wmu.
	journal *Journal

	events *hub
}

// dedupWindow bounds the remembered write outcomes. A client retrying from
// further back than this re-applies (retries happen within seconds; the
// window is generous).
const dedupWindow = 128

// writeOutcome is one remembered WriteBatch result, replayed on retry.
type writeOutcome struct {
	results []Result
	err     *Error
}

// New builds a control plane over a DPMU. Breaker transitions surface on the
// event stream as "health" events.
func New(d *dpmu.DPMU) *Ctl {
	c := &Ctl{D: d, dedup: map[string]*writeOutcome{}, events: newHub()}
	d.SetHealthNotify(func(vdev string, state dpmu.HealthState) {
		c.events.publish(Event{Kind: "health", VDev: vdev, Msg: string(state)})
	})
	return c
}

// Close shuts the control plane's event stream down: blocked long-polls
// return immediately and future polls return no events. Writes and reads
// keep working (shutdown drains them separately).
func (c *Ctl) Close() { c.events.close() }

// Apply validates and applies one op as owner. Single ops need no
// checkpoint: every DPMU operation already cleans up its own partial rows on
// failure, so the op is atomic by itself. With a journal attached the op
// routes through the batch path instead, so it is journaled (and rolled
// back if the journal append fails) exactly like a one-op WriteBatch.
func (c *Ctl) Apply(owner string, op *Op) (Result, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.journal != nil {
		results, err := c.writeBatchLocked(owner, "", []Op{*op})
		if err != nil {
			return Result{}, err
		}
		return results[0], nil
	}
	res, err := c.applyOp(owner, op)
	if err != nil {
		return Result{}, wrap(err, -1)
	}
	c.publishOp(op, res)
	return res, nil
}

// WriteBatch applies ops atomically as owner: each op is validated
// structurally up front, the DPMU is checkpointed, and the first failure
// rolls everything back so the switch and the DPMU's bookkeeping are
// bit-identical to the pre-batch state. The returned error carries the
// failing op's index and code; on success one Result per op is returned.
func (c *Ctl) WriteBatch(owner string, ops []Op) ([]Result, error) {
	return c.WriteBatchID(owner, "", ops)
}

// WriteBatchID is WriteBatch with idempotency: a non-empty requestID that
// matches a recently applied batch replays that batch's outcome — results or
// error — without touching the DPMU, so a client retrying after a lost
// response applies its ops exactly once. An empty requestID never dedups.
func (c *Ctl) WriteBatchID(owner, requestID string, ops []Op) ([]Result, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if requestID != "" {
		if prev, ok := c.dedup[requestID]; ok {
			if prev.err != nil {
				return nil, prev.err
			}
			return prev.results, nil
		}
	}
	results, err := c.writeBatchLocked(owner, requestID, ops)
	if requestID != "" {
		out := &writeOutcome{results: results}
		if err != nil {
			out.err = asError(err)
		}
		if len(c.dedupRing) >= dedupWindow {
			delete(c.dedup, c.dedupRing[0])
			c.dedupRing = c.dedupRing[1:]
		}
		c.dedup[requestID] = out
		c.dedupRing = append(c.dedupRing, requestID)
	}
	return results, err
}

func (c *Ctl) writeBatchLocked(owner, requestID string, ops []Op) ([]Result, error) {
	for i := range ops {
		if err := validateOp(&ops[i]); err != nil {
			return nil, wrap(err, i)
		}
		if c.journal != nil && ops[i].Parsed {
			// A pre-parsed op's match/arg values don't serialize (they are
			// in-process forms); journaling one would replay wrongly.
			return nil, wrap(invalidf("pre-parsed ops cannot be journaled; send textual match/args"), i)
		}
	}
	cp := c.D.Checkpoint()
	// Transports live outside the DPMU checkpoint, so port attaches are
	// compensated rather than rolled back: a failing batch detaches the
	// ports it attached. A detach consumed by a failing batch is NOT
	// restored (the transport is gone); batches mixing detaches with
	// fallible ops should order the detach last.
	var attached []int
	results := make([]Result, len(ops))
	for i := range ops {
		res, err := c.applyOp(owner, &ops[i])
		if err != nil {
			c.D.Rollback(cp)
			for _, p := range attached {
				_ = c.IO.Detach(p)
			}
			return nil, wrap(err, i)
		}
		if ops[i].Kind == OpPortAttach {
			attached = append(attached, ops[i].PhysPort)
		}
		results[i] = res
	}
	// Durability before ack: the batch journals (append + fsync) after it
	// applied and before the caller sees success. A journal failure undoes
	// the batch — an ack must never outrun the log.
	if c.journal != nil {
		if jerr := c.journalAppliedLocked(owner, requestID, ops, results); jerr != nil {
			c.D.Rollback(cp)
			for _, p := range attached {
				_ = c.IO.Detach(p)
			}
			return nil, &Error{Code: CodeInternal, Op: -1, Msg: jerr.Error()}
		}
	}
	for i := range ops {
		c.publishOp(&ops[i], results[i])
	}
	return results, nil
}

// validateOp rejects structurally malformed ops before any state changes.
// Program-dependent validation (does the table exist, do the tokens parse
// against its reads) happens at apply time — a batch may load the device an
// op later in the same batch targets — and is covered by rollback.
func validateOp(op *Op) error {
	switch op.Kind {
	case OpLoadVDev:
		if op.VDev == "" || op.Function == "" {
			return invalidf("load_vdev wants a device name and a function")
		}
	case OpUnload, OpAssign, OpMapVPort, OpRateLimit:
		if op.VDev == "" {
			return invalidf("%s wants a device name", op.Kind)
		}
	case OpLink:
		if op.VDev == "" || op.ToVDev == "" {
			return invalidf("link wants two device names")
		}
	case OpMcast:
		if op.VDev == "" || len(op.Targets) == 0 {
			return invalidf("mcast wants a device and at least one target")
		}
	case OpSnapshotSave, OpSnapshotActivate:
		if op.Name == "" {
			return invalidf("%s wants a snapshot name", op.Kind)
		}
	case OpTableAdd, OpSetDefault:
		if op.VDev == "" || op.Table == "" || op.Action == "" {
			return invalidf("%s wants a device, table and action", op.Kind)
		}
	case OpTableModify:
		if op.VDev == "" || op.Table == "" || op.Action == "" || op.Handle <= 0 {
			return invalidf("table_modify wants a device, table, action and handle")
		}
	case OpTableDelete:
		if op.VDev == "" || op.Table == "" || op.Handle <= 0 {
			return invalidf("table_delete wants a device, table and handle")
		}
	case OpHealthReset:
		if op.VDev == "" {
			return invalidf("health_reset wants a device name")
		}
	case OpPortAttach:
		if op.PhysPort < 0 || op.Spec == "" {
			return invalidf("port_attach wants a port number and a transport spec")
		}
	case OpPortDetach:
		if op.PhysPort < 0 {
			return invalidf("port_detach wants a port number")
		}
	case OpClearAssignments, OpMeterTick, OpVerify:
		// No payload (verify's VDev scope is optional).
	default:
		return invalidf("unknown op kind %q", op.Kind)
	}
	return nil
}

// ReadResult is the payload of a Query.
type ReadResult struct {
	VDevs     []string             `json:"vdevs,omitempty"`
	Snapshots []string             `json:"snapshots,omitempty"`
	Active    string               `json:"active,omitempty"`
	Stats     *dpmu.VDevStats      `json:"stats,omitempty"`
	Health    *dpmu.HealthSnapshot `json:"health,omitempty"`
	Findings  []verify.Finding     `json:"findings,omitempty"`
	Fuse      *dpmu.FusionStatus   `json:"fuse,omitempty"`
	Ports     []pktio.PortInfo     `json:"ports,omitempty"`
	// PortHealth carries the per-port breaker snapshots for the
	// "port_health" query (and rides along on "health" when I/O is wired).
	PortHealth []pktio.PortHealth `json:"port_health,omitempty"`
	// Dump is the deterministic control-plane state dump (hits zeroed): the
	// crash-recovery parity artifact. Identical control histories produce
	// byte-identical dumps regardless of traffic carried.
	Dump string `json:"dump,omitempty"`
	// Linted marks a lint result so "clean" (no findings) renders
	// distinguishably from a non-lint result.
	Linted bool `json:"linted,omitempty"`
	// Prove carries the symbolic equivalence prover's verdict for the
	// "prove" query; Findings holds its counterexamples and warnings.
	Prove *ProveSummary `json:"prove,omitempty"`
}

// ProveSummary is the prover's verdict: whether native = persona held over
// every compared region, and how many regions the proof covered (zero means
// the proof was vacuous).
type ProveSummary struct {
	Proven  bool `json:"proven"`
	Regions int  `json:"regions"`
}

// Read answers one read-only query as owner. Per-device stats apply the same
// authorization as writes; listings are public.
func (c *Ctl) Read(owner string, q *Query) (*ReadResult, error) {
	switch q.Kind {
	case "vdevs":
		return &ReadResult{VDevs: c.D.VDevs()}, nil
	case "snapshots":
		return &ReadResult{Snapshots: c.D.Snapshots(), Active: c.D.ActiveSnapshot()}, nil
	case "stats":
		st, err := c.D.StatsForVDev(owner, q.VDev)
		if err != nil {
			return nil, wrap(err, -1)
		}
		return &ReadResult{Stats: &st}, nil
	case "health":
		// Querying advances the breaker state machine (SyncHealth runs
		// inside Health), so polling health is also what drives time-based
		// quarantine → probing → healthy transitions.
		snap := c.D.Health()
		if q.VDev != "" {
			for _, v := range snap.VDevs {
				if v.VDev == q.VDev {
					snap.VDevs = []dpmu.VDevHealth{v}
					return &ReadResult{Health: &snap}, nil
				}
			}
			return nil, wrap(fmt.Errorf("no health record for %q: %w", q.VDev, dpmu.ErrNotFound), -1)
		}
		out := &ReadResult{Health: &snap}
		if c.IO != nil {
			out.PortHealth = c.IO.PortHealth()
		}
		return out, nil
	case "port_health":
		if c.IO == nil {
			return &ReadResult{}, nil
		}
		return &ReadResult{PortHealth: c.IO.PortHealth()}, nil
	case "dump":
		d, err := c.D.DumpControl()
		if err != nil {
			return nil, wrap(err, -1)
		}
		return &ReadResult{Dump: d}, nil
	case "lint":
		// The read-only face of the verifier: the same findings the verify
		// op gates on, never failing, so operators can inspect a live
		// switch without risking a rollback. The fuse report rides along:
		// its informational findings explain which constructs keep a vdev
		// off the fused fast path.
		findings := filterFindings(verify.Check(c.D.VerifySource()), q.VDev)
		findings = append(findings, filterFindings(c.D.FuseReport(), q.VDev)...)
		return &ReadResult{Findings: findings, Linted: true}, nil
	case "prove":
		// The symbolic equivalence prover (DESIGN.md §16): partition the
		// modeled packet space into disjoint regions and compare the native
		// program's effect with the persona emulation region by region.
		// Divergence findings carry concrete counterexamples; when the
		// identity replay harness is wired, witnesses traverse the live
		// switch before a finding reaches error severity.
		res, err := c.D.Prove(owner, q.VDev, prove.Options{})
		if err != nil {
			return nil, wrap(err, -1)
		}
		return &ReadResult{
			Findings: res.Findings,
			Prove:    &ProveSummary{Proven: res.Proven, Regions: res.Regions},
		}, nil
	case "fuse":
		st := c.D.FusionStatus()
		return &ReadResult{Fuse: &st}, nil
	case "ports":
		if c.IO == nil {
			return &ReadResult{}, nil
		}
		return &ReadResult{Ports: c.IO.Ports()}, nil
	}
	return nil, wrap(invalidf("unknown query kind %q", q.Kind), -1)
}

// Stats returns the operator-level view: every device's statistics, sorted
// by device name (the same view the metrics exporter scrapes).
func (c *Ctl) Stats() []dpmu.VDevStats {
	st := c.D.AllStats()
	sort.Slice(st, func(i, j int) bool { return st[i].VDev < st[j].VDev })
	return st
}
