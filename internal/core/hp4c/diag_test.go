package hp4c

import (
	"errors"
	"strings"
	"testing"

	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
)

// compiledL2 compiles the l2 switch for in-memory mutation.
func compiledL2(t *testing.T) *Compiled {
	t.Helper()
	prog, err := functions.Load(functions.L2Switch)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestValidateCleanFunctions: everything the compiler emits for the
// shipped functions passes its own persona-declaration check — the gate at
// the end of Compile enforces this, so the test pins the gate's premise.
func TestValidateCleanFunctions(t *testing.T) {
	for _, name := range functions.Names() {
		prog, err := functions.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := Compile(prog, persona.Reference)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if diags := Validate(comp); len(diags) != 0 {
			t.Errorf("%s: want clean, got %v", name, diags)
		}
	}
}

// plantBogusOpcode rewrites one dispatched action's first primitive to an
// opcode no persona prep action maps to.
func plantBogusOpcode(t *testing.T, comp *Compiled) {
	t.Helper()
	for _, slot := range comp.SlotList {
		for name := range slot.Next {
			ca := comp.Actions[name]
			if ca == nil || len(ca.Prims) == 0 {
				continue
			}
			ca.Prims[0].Op = 9999
			return
		}
	}
	t.Fatal("no dispatched action with primitives to mutate")
}

// TestValidateUndeclaredAction: an artifact driving a persona action the
// configuration does not declare produces a structured diagnostic carrying
// program, entry and a stable finding code.
func TestValidateUndeclaredAction(t *testing.T) {
	comp := compiledL2(t)
	plantBogusOpcode(t, comp)
	diags := Validate(comp)
	if len(diags) == 0 {
		t.Fatal("mutated artifact validated clean")
	}
	d := diags[0]
	if d.Program != comp.Name || d.Code != "undeclared-action" || d.Entry == "" {
		t.Fatalf("diagnostic shape: %+v", d)
	}
	if !strings.Contains(d.String(), "9999") {
		t.Fatalf("diagnostic does not name the opcode: %s", d)
	}
}

// TestValidateSmallerPersona: re-reading an artifact against a persona too
// small for it (fewer stages than the compile used) reports the missing
// stage tables — the drift Validate exists to catch.
func TestValidateSmallerPersona(t *testing.T) {
	comp := compiledL2(t)
	small := persona.Reference
	small.Stages = 1
	comp.Cfg = small
	found := false
	for _, d := range Validate(comp) {
		if d.Code == "undeclared-table" {
			found = true
		}
	}
	if !found {
		t.Fatal("undersized persona validated clean")
	}
}

// TestDiagErrorIsError: the compile gate's error unwraps to the
// diagnostics so callers can branch on them.
func TestDiagErrorIsError(t *testing.T) {
	comp := compiledL2(t)
	plantBogusOpcode(t, comp)
	err := error(&DiagError{Program: comp.Name, Diags: Validate(comp)})
	var de *DiagError
	if !errors.As(err, &de) || len(de.Diags) == 0 {
		t.Fatalf("DiagError round-trip: %v", err)
	}
	if !strings.Contains(err.Error(), comp.Name) {
		t.Fatalf("error text omits program: %v", err)
	}
}
