package hp4c

import (
	"fmt"

	"hyper4/internal/p4/ast"
)

// checksum detects the IPv4 header-checksum pattern (§5.3: HyPer4 "cheats"
// by supporting well-known checksum requirements directly). A target that
// declares an update calculated_field whose input covers an IPv4-shaped
// header marks every parse path where that header is valid for the
// persona's egress checksum fix-up.
func (c *compiler) checksum() error {
	for _, cf := range c.out.Prog.AST.CalculatedFields {
		if cf.Update == "" {
			continue
		}
		inst := cf.Field.Instance
		hdr, ok := c.out.Prog.Instances[inst]
		if !ok || hdr.Decl.Metadata {
			return fmt.Errorf("calculated field on %q is not emulatable", inst)
		}
		if hdr.Width() != 160 {
			return fmt.Errorf("only the 20-byte IPv4 header checksum is supported; %q is %d bits", inst, hdr.Width())
		}
		off, ok := hdr.Type.FieldOffset(cf.Field.Field)
		if !ok || off != 80 || hdr.Type.Field(cf.Field.Field).Width != 16 {
			return fmt.Errorf("checksum field %s.%s is not at the IPv4 position", inst, cf.Field.Field)
		}
		if c.out.NeedsIPv4Csum && c.out.CsumHeader != inst {
			return fmt.Errorf("multiple checksum headers are not supported")
		}
		c.out.NeedsIPv4Csum = true
		c.out.CsumHeader = inst
		for _, p := range c.out.Paths {
			if p.Valid[inst] {
				p.Csum = true
			}
		}
		_ = ast.StateIngress
	}
	return nil
}
