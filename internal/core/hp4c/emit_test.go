package hp4c

import (
	"strings"
	"testing"

	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
)

func TestWriteIntermediate(t *testing.T) {
	prog, err := functions.Load(functions.Firewall)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := comp.WriteIntermediate(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"%PROGRAM%",              // the §5.2 symbolic token
		"table_add t_parse_ctrl", // parse-control rows
		"a_parse_more",           // resubmit rows
		"a_parse_done",           // terminal rows
		"header ethernet",        // layout comments
		"@ byte 14",              // ipv4 offset
		"table tcp_filter",       // stage slots
		"action _drop",           // compiled actions
		"&&&",                    // ternary value/mask tokens
	} {
		if !strings.Contains(out, want) {
			t.Errorf("intermediate output missing %q", want)
		}
	}
	// The intermediate form is mostly comments plus table_add lines; every
	// non-comment line must be a table_add.
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "table_add ") {
			t.Errorf("unexpected non-command line: %q", line)
		}
	}
}

func TestWriteIntermediateChecksumNote(t *testing.T) {
	prog, err := functions.Load(functions.Router)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := comp.WriteIntermediate(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "IPv4 checksum fix-up") {
		t.Error("router intermediate should note the checksum fix-up")
	}
}
