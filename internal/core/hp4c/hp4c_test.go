package hp4c

import (
	"strings"
	"testing"

	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
)

func compileSrc(t *testing.T, src string) (*Compiled, error) {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hlir.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	return Compile(h, persona.Reference)
}

func mustCompile(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := compileSrc(t, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileAllFunctions(t *testing.T) {
	for _, name := range functions.Names() {
		prog, err := functions.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(prog, persona.Reference); err != nil {
			t.Errorf("Compile(%s): %v", name, err)
		}
	}
}

func TestHeaderOffsets(t *testing.T) {
	prog, err := functions.Load(functions.Firewall)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"ethernet": 0, "ipv4": 14, "tcp": 34, "udp": 34}
	for inst, off := range want {
		if got := c.HeaderOffsets[inst]; got != off {
			t.Errorf("offset(%s) = %d, want %d", inst, got, off)
		}
	}
}

func TestParsePathsFirewall(t *testing.T) {
	prog, err := functions.Load(functions.Firewall)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Paths) != 4 {
		t.Fatalf("paths = %d, want 4 (tcp, udp, other-ip, non-ip)", len(c.Paths))
	}
	// TCP path: 14+20+20 = 54 → grid 60; two resubmits from the default 20.
	tcp := c.Paths[0]
	if tcp.RawBytes != 54 || tcp.Bytes != 60 {
		t.Errorf("tcp path bytes = %d/%d, want 54/60", tcp.RawBytes, tcp.Bytes)
	}
	if !tcp.Valid["tcp"] || tcp.Valid["udp"] {
		t.Errorf("tcp path valid = %v", tcp.Valid)
	}
	nonIP := c.Paths[3]
	if nonIP.RawBytes != 14 || nonIP.Bytes != 20 {
		t.Errorf("non-ip path bytes = %d/%d", nonIP.RawBytes, nonIP.Bytes)
	}
	if c.MaxBytes != 60 {
		t.Errorf("MaxBytes = %d", c.MaxBytes)
	}
}

func TestStageAssignmentFirewall(t *testing.T) {
	prog, err := functions.Load(functions.Firewall)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	// dmac appears at stage 1 (non-ip), stage 2 (other-ip), stage 3 (tcp, udp).
	stages := map[int]bool{}
	for _, s := range c.Slots["dmac"] {
		stages[s.Stage] = true
	}
	for _, want := range []int{1, 2, 3} {
		if !stages[want] {
			t.Errorf("dmac missing stage %d (stages: %v)", want, stages)
		}
	}
	// tcp_filter sits only at stage 2 on the tcp path.
	tf := c.Slots["tcp_filter"]
	if len(tf) != 1 || tf[0].Stage != 2 || !tf[0].Path.Valid["tcp"] {
		t.Errorf("tcp_filter slots: %+v", tf)
	}
	if tf[0].Kind != persona.NTEDTernary {
		t.Errorf("tcp_filter kind = %d", tf[0].Kind)
	}
	// Its successor for both actions is dmac's stage-3 exact table.
	for _, act := range []string{"_nop", "_drop"} {
		if got := tf[0].Next[act]; got.Kind != persona.NTEDExact {
			t.Errorf("tcp_filter next[%s] = %+v, want NTEDExact", act, got)
		}
	}
}

func TestStageAssignmentARP(t *testing.T) {
	prog, err := functions.Load(functions.ARPProxy)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	// arp_resp lives at stage 2. The flow walker cannot rule out a
	// mark_request entry with valid=0 on the ethernet-only path, so a second
	// (never-populated) slot exists there; the next_slot discriminator keeps
	// it inert.
	ar := c.Slots["arp_resp"]
	var arpSlot *Slot
	for _, s := range ar {
		if s.Path.Valid["arp"] {
			arpSlot = s
		}
	}
	if arpSlot == nil || arpSlot.Stage != 2 {
		t.Fatalf("arp_resp slots: %+v", ar)
	}
	// proxy_reply ends processing; _nop falls through to smac at stage 3.
	if got := arpSlot.Next["proxy_reply"]; got.Kind != persona.NTDone {
		t.Errorf("next[proxy_reply] = %+v, want done", got)
	}
	if got := arpSlot.Next["_nop"]; got.Kind != persona.NTEDExact {
		t.Errorf("next[_nop] = %+v, want NTEDExact (smac)", got)
	}
	// The nine-primitive reply action compiles to nine specs.
	if got := len(c.Actions["proxy_reply"].Prims); got != 9 {
		t.Errorf("proxy_reply prims = %d, want 9", got)
	}
}

func TestRouterChecksumDetected(t *testing.T) {
	prog, err := functions.Load(functions.Router)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	if !c.NeedsIPv4Csum || c.CsumHeader != "ipv4" {
		t.Errorf("checksum: needs=%v header=%q", c.NeedsIPv4Csum, c.CsumHeader)
	}
	var ipv4Path *ParsePath
	for _, p := range c.Paths {
		if p.Valid["ipv4"] {
			ipv4Path = p
		}
	}
	if ipv4Path == nil || !ipv4Path.Csum {
		t.Errorf("ipv4 path should carry the checksum flag: %+v", ipv4Path)
	}
}

func TestCompileMetadataLayout(t *testing.T) {
	c := mustCompile(t, `
header_type m1_t { fields { a : 8; b : 16; } }
header_type m2_t { fields { c : 32; } }
metadata m1_t m1;
metadata m2_t m2;
header_type h_t { fields { x : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t { reads { m1.b : exact; } actions { n; } }
control ingress { apply(t); }
`)
	if c.MetaOffsets["m1"] != 0 || c.MetaOffsets["m2"] != 24 {
		t.Errorf("meta offsets: %v", c.MetaOffsets)
	}
	slot := c.Slots["t"][0]
	if slot.Kind != persona.NTMetaExact {
		t.Errorf("kind = %d", slot.Kind)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"too many stages", `
header_type h_t { fields { x : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t1 { actions { n; } } table t2 { actions { n; } } table t3 { actions { n; } }
table t4 { actions { n; } } table t5 { actions { n; } }
control ingress { apply(t1); apply(t2); apply(t3); apply(t4); apply(t5); }
`, "stage"},
		{"too many primitives", `
header_type h_t { fields { a:8;b:8;c:8;d:8;e:8;f:8;g:8;i:8;j:8;k:8;l:8; } }
header h_t h;
parser start { extract(h); return ingress; }
action big() {
    modify_field(h.a, 1); modify_field(h.b, 1); modify_field(h.c, 1);
    modify_field(h.d, 1); modify_field(h.e, 1); modify_field(h.f, 1);
    modify_field(h.g, 1); modify_field(h.i, 1); modify_field(h.j, 1);
    modify_field(h.k, 1);
}
table t { actions { big; } }
control ingress { apply(t); }
`, "primitives"},
		{"too much metadata", `
header_type big_t { fields { a : 800; } }
metadata big_t m;
header_type h_t { fields { x : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t); }
`, "metadata"},
		{"parse too deep", `
header_type big_t { fields { x : 1600; } }
header big_t h;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t); }
`, "persona maximum"},
		{"header stack", `
header_type h_t { fields { x : 8; } }
header h_t h[4];
parser start { extract(h[next]); return ingress; }
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t); }
`, "stack"},
		{"range match", `
header_type h_t { fields { x : 16; } }
header h_t h;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t { reads { h.x : range; } actions { n; } }
control ingress { apply(t); }
`, "range"},
		{"unsupported primitive", `
header_type h_t { fields { x : 16; } }
header h_t h;
register r { width : 16; instance_count : 2; }
parser start { extract(h); return ingress; }
action n() { register_write(r, 0, 1); }
table t { actions { n; } }
control ingress { apply(t); }
`, "not emulatable"},
		{"runtime condition", `
header_type h_t { fields { x : 16; } }
header h_t h;
header_type m_t { fields { v : 8; } }
metadata m_t m;
parser start { extract(h); return ingress; }
action setv(val) { modify_field(m.v, val); }
action n() { no_op(); }
table t1 { actions { setv; } }
table t2 { actions { n; } }
control ingress {
    apply(t1);
    if (m.v == 1) { apply(t2); }
}
`, "runtime value"},
		{"mixed reads", `
header_type h_t { fields { x : 16; } }
header h_t h;
header_type m_t { fields { v : 8; } }
metadata m_t m;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t { reads { h.x : exact; m.v : exact; } actions { n; } }
control ingress { apply(t); }
`, "mixes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := compileSrc(t, tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSubtractBecomesTwosComplementAdd(t *testing.T) {
	c := mustCompile(t, `
header_type h_t { fields { ttl : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action dec() { subtract_from_field(h.ttl, 1); }
table t { actions { dec; } }
control ingress { apply(t); }
`)
	prims := c.Actions["dec"].Prims
	if len(prims) != 1 || prims[0].Op != persona.OpAddEDConst {
		t.Fatalf("prims: %+v", prims)
	}
	if prims[0].Const.Int64() != 255 {
		t.Errorf("const = %v, want 255 (= -1 mod 2^8)", prims[0].Const)
	}
}

func TestStdMetaTableKind(t *testing.T) {
	c := mustCompile(t, `
header_type h_t { fields { x : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t { reads { standard_metadata.ingress_port : exact; } actions { n; } }
control ingress { apply(t); }
`)
	if c.Slots["t"][0].Kind != persona.NTStdMeta {
		t.Errorf("kind = %d", c.Slots["t"][0].Kind)
	}
}

func TestMatchlessTableKind(t *testing.T) {
	c := mustCompile(t, `
header_type h_t { fields { x : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t); }
`)
	if c.Slots["t"][0].Kind != persona.NTMatchless {
		t.Errorf("kind = %d", c.Slots["t"][0].Kind)
	}
}

func TestNestedActionInlined(t *testing.T) {
	c := mustCompile(t, `
header_type h_t { fields { a : 8; b : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action inner() { modify_field(h.a, 5); }
action outer() { inner(); modify_field(h.b, 6); }
table t { actions { outer; } }
control ingress { apply(t); }
`)
	prims := c.Actions["outer"].Prims
	if len(prims) != 2 {
		t.Fatalf("prims: %+v", prims)
	}
	if prims[0].Const.Int64() != 5 || prims[1].Const.Int64() != 6 {
		t.Errorf("inline order wrong: %+v", prims)
	}
}

func TestValidConditionPerPath(t *testing.T) {
	// The same control applies different tables depending on header
	// validity; slots must land on the right paths.
	c := mustCompile(t, `
header_type a_t { fields { x : 8; } }
header a_t a;
header a_t b;
parser start {
    extract(a);
    return select(latest.x) {
        1 : parse_b;
        default : ingress;
    }
}
parser parse_b { extract(b); return ingress; }
action n() { no_op(); }
table with_b { actions { n; } }
table without_b { actions { n; } }
control ingress {
    if (valid(b)) { apply(with_b); } else { apply(without_b); }
}
`)
	if len(c.Slots["with_b"]) != 1 || !c.Slots["with_b"][0].Path.Valid["b"] {
		t.Errorf("with_b slots: %+v", c.Slots["with_b"])
	}
	if len(c.Slots["without_b"]) != 1 || c.Slots["without_b"][0].Path.Valid["b"] {
		t.Errorf("without_b slots: %+v", c.Slots["without_b"])
	}
}
