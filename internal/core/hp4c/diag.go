package hp4c

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hyper4/internal/core/persona"
)

// Compile-time persona-compatibility validation: every persona table and
// action a compiled artifact will drive at install time is checked against
// the tables and actions the configured persona actually generates, so a
// compiler/persona drift (a renamed prep action, a stage table the smaller
// persona doesn't have, a primitive arity change) fails the compile with a
// structured diagnostic instead of surfacing as an install-time rejection
// deep inside a management script.

// Diagnostic is one structured persona-compatibility finding: the program,
// the artifact entry it concerns (slot, action, parse entry), a stable code
// ("undeclared-table", "undeclared-action", "bad-arity"), and a message.
type Diagnostic struct {
	Program string `json:"program"`
	Entry   string `json:"entry"`
	Code    string `json:"code"`
	Msg     string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]: %s", d.Program, d.Entry, d.Code, d.Msg)
}

// DiagError is the compile failure carrying every diagnostic found.
type DiagError struct {
	Program string
	Diags   []Diagnostic
}

func (e *DiagError) Error() string {
	if len(e.Diags) == 1 {
		return fmt.Sprintf("hp4c %s: %s", e.Program, e.Diags[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hp4c %s: %d persona-compatibility diagnostics:", e.Program, len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n\t")
		b.WriteString(d.String())
	}
	return b.String()
}

// declIndex is the persona's declaration surface for one configuration: the
// tables it generates and each action's parameter count.
type declIndex struct {
	tables  map[string]bool
	actions map[string]int
}

// declCache memoizes declIndex per persona.Config — generating the persona
// source just to read its declarations is cheap but not free, and tests
// compile many programs against the same Reference config.
var declCache sync.Map // persona.Config -> *declIndex

func declsFor(cfg persona.Config) (*declIndex, error) {
	if v, ok := declCache.Load(cfg); ok {
		return v.(*declIndex), nil
	}
	p, err := persona.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("hp4c: generating persona for validation: %w", err)
	}
	idx := &declIndex{tables: map[string]bool{}, actions: map[string]int{}}
	for name := range p.Program.Tables {
		idx.tables[name] = true
	}
	for name, a := range p.Program.Actions {
		idx.actions[name] = len(a.Params)
	}
	declCache.Store(cfg, idx)
	return idx, nil
}

// prepShape is the a_prep_* action the DPMU drives for one opcode and the
// argument count it installs (mirroring dpmu's prepFor); Validate checks
// the persona declares exactly that shape, catching drift at compile time.
type prepShape struct {
	action string
	args   int
}

var prepShapes = map[int]prepShape{
	persona.OpNoOp:             {"a_prep_no_op", 0},
	persona.OpDrop:             {"a_prep_drop", 0},
	persona.OpModVPortVIngress: {"a_prep_mod_vport_vingress", 0},
	persona.OpModVPortConst:    {"a_prep_mod_vport_const", 1},
	persona.OpModEDConst:       {"a_prep_mod_ed_const", 3},
	persona.OpModMetaConst:     {"a_prep_mod_meta_const", 3},
	persona.OpModEDED:          {"a_prep_mod_ed_ed", 4},
	persona.OpModEDMeta:        {"a_prep_mod_ed_meta", 4},
	persona.OpModMetaED:        {"a_prep_mod_meta_ed", 4},
	persona.OpModMetaMeta:      {"a_prep_mod_meta_meta", 4},
	persona.OpAddEDConst:       {"a_prep_add_ed_const", 5},
	persona.OpAddMetaConst:     {"a_prep_add_meta_const", 5},
}

// Validate checks a compiled artifact against the persona declarations for
// its configuration and returns every mismatch. Compile runs it as its
// final step and refuses to emit a failing artifact; external callers
// (internal/core/verify, cmd/hp4lint) run it over artifacts of unknown
// provenance.
func Validate(comp *Compiled) []Diagnostic {
	idx, err := declsFor(comp.Cfg)
	if err != nil {
		return []Diagnostic{{Program: comp.Name, Entry: "persona", Code: "undeclared-table", Msg: err.Error()}}
	}
	var out []Diagnostic
	add := func(entry, code, format string, a ...any) {
		out = append(out, Diagnostic{Program: comp.Name, Entry: entry, Code: code, Msg: fmt.Sprintf(format, a...)})
	}
	wantTable := func(entry, table string) {
		if !idx.tables[table] {
			add(entry, "undeclared-table", "persona declares no table %q", table)
		}
	}
	wantAction := func(entry, action string, args int) {
		got, ok := idx.actions[action]
		if !ok {
			add(entry, "undeclared-action", "persona declares no action %q", action)
			return
		}
		if got != args {
			add(entry, "bad-arity", "persona action %s takes %d args, artifact installs %d", action, got, args)
		}
	}

	if len(comp.ParseEntries) > 0 {
		wantTable("parse", persona.TblParseCtrl)
	}
	for i, pe := range comp.ParseEntries {
		entry := fmt.Sprintf("parse entry %d", i)
		if pe.More {
			wantAction(entry, persona.ActParseMore, 2)
		} else {
			wantAction(entry, persona.ActParseDone, 3)
		}
	}
	if comp.NeedsIPv4Csum {
		wantTable("checksum", persona.TblCsum)
		wantAction("checksum", "a_ipv4_csum", 3)
	}
	for _, slot := range comp.SlotList {
		entry := fmt.Sprintf("%s slot %d", slot.Table, slot.ID)
		wantTable(entry, persona.StageTable(slot.Stage, persona.KindName(slot.Kind)))
		wantAction(entry, persona.ActSetMatch, 4)
		// Every action this slot dispatches on installs one prep row per
		// primitive at this stage.
		actions := make([]string, 0, len(slot.Next))
		for name := range slot.Next {
			actions = append(actions, name)
		}
		sort.Strings(actions)
		for _, name := range actions {
			ca := comp.Actions[name]
			if ca == nil {
				continue // reported by the verifier's artifact checks
			}
			for p, spec := range ca.Prims {
				shape, known := prepShapes[spec.Op]
				if !known {
					add(entry, "undeclared-action", "action %s primitive %d uses opcode %d, which maps to no persona prep action", name, p, spec.Op)
					continue
				}
				wantTable(entry, persona.PrimTable(slot.Stage, p+1, "prep"))
				wantAction(entry, shape.action, shape.args)
			}
		}
	}
	// One diagnostic per distinct (entry, code, msg): slots repeat per path.
	seen := map[Diagnostic]bool{}
	dedup := out[:0]
	for _, d := range out {
		if !seen[d] {
			seen[d] = true
			dedup = append(dedup, d)
		}
	}
	return dedup
}
