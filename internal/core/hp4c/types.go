// Package hp4c implements the HyPer4 compiler: it translates a target P4
// program (HLIR) into the artifacts needed to emulate it on the persona —
// the parse-control entries, the per-table stage slots with their control
// flow successors, and per-action primitive specifications with runtime
// parameter slots.
//
// The paper describes the compiler as work in progress (§5.2) and drives the
// persona with hand-written command files; this package is the natural
// completion of that design.
package hp4c

import (
	"math/big"

	"hyper4/internal/core/persona"
	"hyper4/internal/p4/hlir"
)

// Compiled is the compilation artifact for one target program. It is
// program-ID-independent: the DPMU instantiates it for a concrete virtual
// device at load time (mirroring the paper's load-time token substitution,
// §5.2).
type Compiled struct {
	Name string
	Cfg  persona.Config
	Prog *hlir.Program

	// HeaderOffsets maps each header instance to its byte offset in the
	// packet (and hence in the persona's extracted-data field). A header
	// must sit at the same offset on every parse path.
	HeaderOffsets map[string]int
	// MetaOffsets maps each metadata instance to its bit offset within the
	// persona's emulated-metadata field.
	MetaOffsets map[string]int

	// Paths are the parse paths (terminal walks of the parse graph).
	Paths []*ParsePath
	// ParseEntries drive the persona's t_parse_ctrl table.
	ParseEntries []ParseEntry

	// Slots maps each target table to its persona stage slots (one per
	// (stage, parse path) the table can execute on).
	Slots map[string][]*Slot
	// SlotList preserves creation order for deterministic output.
	SlotList []*Slot

	// Actions are the compiled actions of the target program.
	Actions map[string]*CompiledAction

	// MaxBytes is the largest (rounded) parse requirement of any path.
	MaxBytes int
	// NeedsIPv4Csum is set when the target declares an IPv4-checksum
	// calculated field the persona must reproduce at egress (§5.3 "cheat").
	NeedsIPv4Csum bool
	// CsumHeader is the IPv4 header instance whose checksum is updated.
	CsumHeader string
}

// Constraint is one ternary constraint over the extracted-data field.
type Constraint struct {
	BitOff int
	Width  int
	Value  *big.Int
	Mask   *big.Int // nil = exact over the width
}

// ParsePath is one terminal walk of the target's parse graph.
type ParsePath struct {
	ID          int
	Constraints []Constraint    // accumulated select constraints
	Valid       map[string]bool // header instances extracted on this path
	RawBytes    int             // exact bytes the path parses
	Bytes       int             // rounded to the persona's grid
	// First identifies the first table slot applied on this path
	// (Kind==persona.NTDone when the path applies no tables), carried by
	// the path's a_parse_done entry.
	First Succ
	// Csum is set when the checksum fix-up applies on this path.
	Csum bool
}

// ParseEntry is one row for the persona's t_parse_ctrl table.
type ParseEntry struct {
	State       int // hp4.parse_state match value
	Constraints []Constraint
	Priority    int

	// More-bytes rows resubmit; done rows prime stage 1.
	More      bool
	NumBytes  int // a_parse_more arg
	NextState int // a_parse_more arg

	Path *ParsePath // for done rows
}

// Succ identifies the next stage slot to execute: the stage-table kind the
// persona control flow dispatches on, plus the slot ID its entries match
// (hp4.next_slot). Kind == persona.NTDone ends stage emulation.
type Succ struct {
	Kind int
	ID   int
}

// Slot is one placement of a target table at a persona stage on one parse
// path. Runtime entries for the table are replicated across its slots, each
// carrying the slot's ID in its match (hp4.next_slot) and the slot's
// parse-path constraints folded into the wide mask. The slot ID is what
// keeps two emulated tables of the same match kind at the same stage (e.g.
// the ARP proxy's arp_resp and smac) from capturing each other's traffic.
type Slot struct {
	Table string
	Stage int
	ID    int // unique within the compiled program; matched as hp4.next_slot
	Path  *ParsePath
	Kind  int // persona.NT* code: which stage table the entries live in

	// Next maps action name → the successor primed when that action's
	// entry matches.
	Next map[string]Succ
	// Miss is the successor for the table's default action (driving the
	// per-slot catch-all entry).
	Miss Succ
	// MissAction is the default action run on a miss ("" = none).
	MissAction string

	missSet bool
}

// PrimSpec is one compiled primitive of an action: the opcode plus
// destination/source geometry. Constant operands are fixed here; operands
// bound to action parameters carry the parameter index for the DPMU to fill
// at entry-install time.
type PrimSpec struct {
	Op int

	DstOff, DstW int // bit geometry within extracted or emeta
	SrcOff, SrcW int

	Const    *big.Int // nil when the operand is a runtime argument
	ArgIndex int      // action parameter index; -1 when Const is set
	Negate   bool     // subtract_from_field: install 2^DstW - value
}

// CompiledAction is a target action lowered to persona primitive specs.
type CompiledAction struct {
	Name   string
	Params []string
	Prims  []PrimSpec
}
