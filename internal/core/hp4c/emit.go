package hp4c

import (
	"fmt"
	"io"
	"math/big"

	"hyper4/internal/core/persona"
)

// WriteIntermediate renders the compilation artifact as the paper's
// "intermediate commands file" (§5.2): human-readable, commented, and using
// symbolic tokens (%PROGRAM%, %SLOT:n%, %MATCHID%) for the values the DPMU
// substitutes at load time.
func (c *Compiled) WriteIntermediate(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	p("# HyPer4 intermediate commands for program %q\n", c.Name)
	p("# persona config: %d stages, %d primitives/action, parse %d/%d/%d bytes\n",
		c.Cfg.Stages, c.Cfg.Primitives, c.Cfg.ParseDefault, c.Cfg.ParseStep, c.Cfg.ParseMax)
	p("# tokens: %%PROGRAM%% = program id, %%MATCHID%% = fresh match id per entry\n\n")

	p("# --- header layout (byte offsets within extracted data) ---\n")
	for name, off := range c.HeaderOffsets {
		p("#   header %-12s @ byte %d\n", name, off)
	}
	for name, off := range c.MetaOffsets {
		p("#   metadata %-10s @ emeta bit %d\n", name, off)
	}
	p("\n# --- parse control (t_parse_ctrl) ---\n")
	for _, pe := range c.ParseEntries {
		mask := constraintsHex(pe.Constraints, c.Cfg.ExtractedWidth())
		if pe.More {
			p("table_add %s %s %%PROGRAM%% %d %s => %d %d %d\n",
				persona.TblParseCtrl, persona.ActParseMore, pe.State, mask, pe.NumBytes, pe.NextState, pe.Priority)
			continue
		}
		csum := 0
		if pe.Path.Csum {
			csum = 1
		}
		p("table_add %s %s %%PROGRAM%% %d %s => %d %d %d %d\n",
			persona.TblParseCtrl, persona.ActParseDone, pe.State, mask,
			pe.Path.First.Kind, pe.Path.First.ID, csum, pe.Priority)
	}

	p("\n# --- stage slots ---\n")
	for _, slot := range c.SlotList {
		p("# table %-14s stage %d slot %-3d kind %-12s path %d (%d bytes)\n",
			slot.Table, slot.Stage, slot.ID, persona.KindName(slot.Kind), slot.Path.ID, slot.Path.Bytes)
		for act, succ := range slot.Next {
			p("#   on %-14s -> kind %d slot %d\n", act, succ.Kind, succ.ID)
		}
		p("#   on miss (%s) -> kind %d slot %d\n", orNone(slot.MissAction), slot.Miss.Kind, slot.Miss.ID)
	}

	p("\n# --- compiled actions ---\n")
	for name, ca := range c.Actions {
		p("# action %s(%v): %d primitives\n", name, ca.Params, len(ca.Prims))
		for i, spec := range ca.Prims {
			src := "const"
			if spec.ArgIndex >= 0 {
				src = fmt.Sprintf("arg%d", spec.ArgIndex)
				if spec.Negate {
					src += " (negated)"
				}
			} else if spec.Const != nil {
				src = "0x" + spec.Const.Text(16)
			}
			p("#   [%d] op=%d dst=(%d,%d) src=(%d,%d) %s\n",
				i+1, spec.Op, spec.DstOff, spec.DstW, spec.SrcOff, spec.SrcW, src)
		}
	}
	if c.NeedsIPv4Csum {
		p("\n# IPv4 checksum fix-up on header %q\n", c.CsumHeader)
	}
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// constraintsHex renders constraints as a value&&&mask token over the wide
// extracted field.
func constraintsHex(cons []Constraint, width int) string {
	value := new(big.Int)
	mask := new(big.Int)
	for _, c := range cons {
		m := new(big.Int)
		if c.Mask != nil {
			m.Set(c.Mask)
		} else {
			m.Lsh(big.NewInt(1), uint(c.Width))
			m.Sub(m, big.NewInt(1))
		}
		v := new(big.Int).And(c.Value, m)
		shift := uint(width - c.BitOff - c.Width)
		value.Or(value, new(big.Int).Lsh(v, shift))
		mask.Or(mask, new(big.Int).Lsh(m, shift))
	}
	return fmt.Sprintf("0x%s&&&0x%s", value.Text(16), mask.Text(16))
}
