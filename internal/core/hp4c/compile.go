package hp4c

import (
	"fmt"
	"math/big"
	"sort"

	"hyper4/internal/core/persona"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// Compile translates a resolved target program into persona artifacts for
// the given persona configuration.
func Compile(prog *hlir.Program, cfg persona.Config) (*Compiled, error) {
	c := &compiler{
		out: &Compiled{
			Name:          prog.AST.Name,
			Cfg:           cfg,
			Prog:          prog,
			HeaderOffsets: map[string]int{},
			MetaOffsets:   map[string]int{},
			Slots:         map[string][]*Slot{},
			Actions:       map[string]*CompiledAction{},
		},
	}
	if err := c.layoutHeaders(); err != nil {
		return nil, fmt.Errorf("hp4c %s: %w", prog.AST.Name, err)
	}
	if cfg.FixedParser {
		if err := c.checkFixedFamily(); err != nil {
			return nil, fmt.Errorf("hp4c %s: %w", prog.AST.Name, err)
		}
	}
	if err := c.layoutMetadata(); err != nil {
		return nil, fmt.Errorf("hp4c %s: %w", prog.AST.Name, err)
	}
	if err := c.compileActions(); err != nil {
		return nil, fmt.Errorf("hp4c %s: %w", prog.AST.Name, err)
	}
	if err := c.buildParsePaths(); err != nil {
		return nil, fmt.Errorf("hp4c %s: %w", prog.AST.Name, err)
	}
	if err := c.buildFlow(); err != nil {
		return nil, fmt.Errorf("hp4c %s: %w", prog.AST.Name, err)
	}
	if err := c.buildParseEntries(); err != nil {
		return nil, fmt.Errorf("hp4c %s: %w", prog.AST.Name, err)
	}
	if err := c.checksum(); err != nil {
		return nil, fmt.Errorf("hp4c %s: %w", prog.AST.Name, err)
	}
	// Persona-compatibility gate: the artifact must only reference persona
	// tables/actions the configured persona declares, with matching
	// arities. Catching compiler/persona drift here turns an install-time
	// rejection deep inside a management script into a compile failure
	// with structured diagnostics.
	if diags := Validate(c.out); len(diags) > 0 {
		return nil, &DiagError{Program: prog.AST.Name, Diags: diags}
	}
	return c.out, nil
}

type compiler struct {
	out        *Compiled
	nextSlotID int
}

// layoutHeaders assigns each non-stack header instance a byte offset: the
// sum of header widths extracted before it, which must agree across every
// parse path.
func (c *compiler) layoutHeaders() error {
	prog := c.out.Prog
	type visit struct {
		state  string
		offset int
	}
	seenState := map[string]int{}
	queue := []visit{{"start", 0}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v.state == ast.StateIngress {
			continue
		}
		if prev, ok := seenState[v.state]; ok {
			if prev != v.offset {
				return fmt.Errorf("parser state %q reached at offsets %d and %d; HyPer4 needs stable offsets", v.state, prev, v.offset)
			}
			continue
		}
		seenState[v.state] = v.offset
		st, ok := prog.States[v.state]
		if !ok {
			return fmt.Errorf("unknown parser state %q", v.state)
		}
		off := v.offset
		for _, stmt := range st.Statements {
			if stmt.Extract == nil {
				continue
			}
			inst := prog.Instances[stmt.Extract.Instance]
			if inst.Decl.IsStack() {
				return fmt.Errorf("header stacks in emulated programs are not supported")
			}
			if prev, ok := c.out.HeaderOffsets[inst.Decl.Name]; ok {
				if prev != off {
					return fmt.Errorf("header %q extracted at offsets %d and %d; HyPer4 needs one offset per header", inst.Decl.Name, prev, off)
				}
			} else {
				c.out.HeaderOffsets[inst.Decl.Name] = off
			}
			off += inst.Width() / 8
		}
		switch st.Return.Kind {
		case ast.ReturnDirect:
			queue = append(queue, visit{st.Return.State, off})
		case ast.ReturnSelect:
			for _, cs := range st.Return.Cases {
				queue = append(queue, visit{cs.State, off})
			}
		}
	}
	return nil
}

// layoutMetadata packs the target's metadata instances into the persona's
// emulated-metadata field, in declaration order.
func (c *compiler) layoutMetadata() error {
	off := 0
	for _, inst := range c.out.Prog.AST.Instances {
		if !inst.Metadata {
			continue
		}
		ht := c.out.Prog.HeaderTypes[inst.TypeName]
		c.out.MetaOffsets[inst.Name] = off
		off += ht.Width()
	}
	if off > persona.MetaWidth {
		return fmt.Errorf("program needs %d bits of metadata; persona provides %d", off, persona.MetaWidth)
	}
	return nil
}

// fieldGeometry returns (isMeta, bit offset, width) of a field within the
// persona's wide fields, or an error for standard-metadata references
// (which the caller handles specially).
func (c *compiler) fieldGeometry(ref ast.FieldRef) (meta bool, off, width int, err error) {
	prog := c.out.Prog
	inst, ok := prog.Instances[ref.Instance]
	if !ok {
		return false, 0, 0, fmt.Errorf("unknown instance %q", ref.Instance)
	}
	fOff, ok2 := inst.Type.FieldOffset(ref.Field)
	if !ok2 {
		return false, 0, 0, fmt.Errorf("%s has no field %q", ref.Instance, ref.Field)
	}
	w := inst.Type.Field(ref.Field).Width
	if ref.Instance == hlir.StandardMetadata {
		return false, 0, 0, errStdMeta
	}
	if inst.Decl.Metadata {
		base, ok := c.out.MetaOffsets[ref.Instance]
		if !ok {
			return false, 0, 0, fmt.Errorf("metadata %q not laid out", ref.Instance)
		}
		return true, base + fOff, w, nil
	}
	base, ok := c.out.HeaderOffsets[ref.Instance]
	if !ok {
		return false, 0, 0, fmt.Errorf("header %q never extracted", ref.Instance)
	}
	return false, base*8 + fOff, w, nil
}

var errStdMeta = fmt.Errorf("standard metadata reference")

// checkFixedFamily verifies a program targeted at the partial-virtualization
// persona only places headers at the fixed family's offsets (Ethernet at 0,
// ARP/IPv4 at 14, L4 at 34), so its field positions line up with what the
// fixed parser assembles.
func (c *compiler) checkFixedFamily() error {
	allowed := map[int]bool{0: true, 14: true, 34: true}
	for name, off := range c.out.HeaderOffsets {
		if !allowed[off] {
			return fmt.Errorf("header %q at byte offset %d does not fit the fixed parser family (offsets 0/14/34)", name, off)
		}
	}
	return nil
}

// compileActions lowers every target action into primitive specs.
func (c *compiler) compileActions() error {
	names := make([]string, 0, len(c.out.Prog.Actions))
	for name := range c.out.Prog.Actions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		act := c.out.Prog.Actions[name]
		ca := &CompiledAction{Name: name, Params: act.Params}
		if err := c.lowerBody(act, act.Body, ca, map[string]int{}); err != nil {
			return fmt.Errorf("action %s: %w", name, err)
		}
		if len(ca.Prims) > c.out.Cfg.Primitives {
			return fmt.Errorf("action %s needs %d primitives; persona supports %d per action", name, len(ca.Prims), c.out.Cfg.Primitives)
		}
		c.out.Actions[name] = ca
	}
	return nil
}

// lowerBody lowers a primitive call list, inlining nested compound actions.
// paramMap maps inner parameter names to outer argument indexes.
func (c *compiler) lowerBody(outer *ast.Action, body []ast.PrimitiveCall, ca *CompiledAction, depthGuard map[string]int) error {
	for _, callp := range body {
		if !hlir.KnownPrimitive(callp.Name) {
			inner, ok := c.out.Prog.Actions[callp.Name]
			if !ok {
				return fmt.Errorf("unknown primitive or action %q", callp.Name)
			}
			if depthGuard[callp.Name] > 0 {
				return fmt.Errorf("recursive action %q", callp.Name)
			}
			// Inline: inner params must be bound to outer params or consts;
			// only zero-arg nesting is needed by the paper's functions and
			// supported here.
			if len(inner.Params) > 0 {
				return fmt.Errorf("nested action %q with parameters is not supported", callp.Name)
			}
			depthGuard[callp.Name]++
			if err := c.lowerBody(outer, inner.Body, ca, depthGuard); err != nil {
				return err
			}
			depthGuard[callp.Name]--
			continue
		}
		spec, err := c.lowerPrimitive(outer, callp)
		if err != nil {
			return err
		}
		ca.Prims = append(ca.Prims, spec)
	}
	return nil
}

// lowerPrimitive maps one target primitive call to a persona opcode.
func (c *compiler) lowerPrimitive(act *ast.Action, callp ast.PrimitiveCall) (PrimSpec, error) {
	paramIndex := func(name string) int {
		for i, p := range act.Params {
			if p == name {
				return i
			}
		}
		return -1
	}
	// operand classifies a data argument.
	type operand struct {
		kind  string // "const", "arg", "ed", "meta", "vingress", "vport"
		cval  *big.Int
		arg   int
		off   int
		width int
	}
	classify := func(e ast.Expr) (operand, error) {
		switch e.Kind {
		case ast.ExprConst:
			return operand{kind: "const", cval: e.Const}, nil
		case ast.ExprParam:
			idx := paramIndex(e.Param)
			if idx < 0 {
				return operand{}, fmt.Errorf("unbound parameter %q", e.Param)
			}
			return operand{kind: "arg", arg: idx}, nil
		case ast.ExprField:
			if e.Field.Instance == hlir.StandardMetadata {
				switch e.Field.Field {
				case hlir.FieldIngressPort:
					return operand{kind: "vingress"}, nil
				case hlir.FieldEgressSpec, hlir.FieldEgressPort:
					return operand{kind: "vport"}, nil
				default:
					return operand{}, fmt.Errorf("standard_metadata.%s is not emulatable", e.Field.Field)
				}
			}
			meta, off, w, err := c.fieldGeometry(e.Field)
			if err != nil {
				return operand{}, err
			}
			kind := "ed"
			if meta {
				kind = "meta"
			}
			return operand{kind: kind, off: off, width: w}, nil
		default:
			return operand{}, fmt.Errorf("unsupported operand kind %d", e.Kind)
		}
	}

	switch callp.Name {
	case "no_op":
		return PrimSpec{Op: persona.OpNoOp, ArgIndex: -1}, nil
	case "drop":
		return PrimSpec{Op: persona.OpDrop, ArgIndex: -1}, nil
	case "modify_field":
		if len(callp.Args) != 2 {
			return PrimSpec{}, fmt.Errorf("modify_field with mask is not supported")
		}
		dst, err := classify(callp.Args[0])
		if err != nil {
			return PrimSpec{}, err
		}
		src, err := classify(callp.Args[1])
		if err != nil {
			return PrimSpec{}, err
		}
		spec := PrimSpec{ArgIndex: -1}
		switch dst.kind {
		case "vport":
			switch src.kind {
			case "const":
				spec.Op, spec.Const = persona.OpModVPortConst, src.cval
			case "arg":
				spec.Op, spec.ArgIndex = persona.OpModVPortConst, src.arg
			case "vingress":
				spec.Op = persona.OpModVPortVIngress
			default:
				return PrimSpec{}, fmt.Errorf("egress_spec source %q not supported", src.kind)
			}
			return spec, nil
		case "ed", "meta":
			spec.DstOff, spec.DstW = dst.off, dst.width
			ed := dst.kind == "ed"
			switch src.kind {
			case "const":
				spec.Const = src.cval
				spec.Op = pick(ed, persona.OpModEDConst, persona.OpModMetaConst)
			case "arg":
				spec.ArgIndex = src.arg
				spec.Op = pick(ed, persona.OpModEDConst, persona.OpModMetaConst)
			case "ed":
				spec.SrcOff, spec.SrcW = src.off, src.width
				spec.Op = pick(ed, persona.OpModEDED, persona.OpModMetaED)
			case "meta":
				spec.SrcOff, spec.SrcW = src.off, src.width
				spec.Op = pick(ed, persona.OpModEDMeta, persona.OpModMetaMeta)
			case "vingress", "vport":
				return PrimSpec{}, fmt.Errorf("copying virtual ports into packet fields is not supported")
			}
			return spec, nil
		default:
			return PrimSpec{}, fmt.Errorf("modify_field destination %q not supported", dst.kind)
		}
	case "add_to_field", "subtract_from_field":
		dst, err := classify(callp.Args[0])
		if err != nil {
			return PrimSpec{}, err
		}
		src, err := classify(callp.Args[1])
		if err != nil {
			return PrimSpec{}, err
		}
		if dst.kind != "ed" && dst.kind != "meta" {
			return PrimSpec{}, fmt.Errorf("%s destination %q not supported", callp.Name, dst.kind)
		}
		spec := PrimSpec{
			Op:       pick(dst.kind == "ed", persona.OpAddEDConst, persona.OpAddMetaConst),
			DstOff:   dst.off,
			DstW:     dst.width,
			ArgIndex: -1,
		}
		neg := callp.Name == "subtract_from_field"
		switch src.kind {
		case "const":
			v := new(big.Int).Set(src.cval)
			if neg {
				mod := new(big.Int).Lsh(big.NewInt(1), uint(dst.width))
				v.Sub(mod, v)
				v.Mod(v, mod)
			}
			spec.Const = v
		case "arg":
			spec.ArgIndex = src.arg
			spec.Negate = neg
		default:
			return PrimSpec{}, fmt.Errorf("%s with a field amount is not supported", callp.Name)
		}
		return spec, nil
	}
	return PrimSpec{}, fmt.Errorf("primitive %q is not emulatable by this persona", callp.Name)
}

func pick(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}
