package hp4c

import (
	"fmt"
	"math/big"

	"hyper4/internal/core/persona"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// buildFlow symbolically executes the target's control flow once per parse
// path, assigning each applied table a persona stage and recording, per
// (slot, action), the next-stage code — the state the persona's a_set_match
// entries prime (§4.3).
//
// Conditions are resolved statically: valid(h) from the parse path, and
// metadata comparisons from constants assigned by actions already chosen on
// the path (e.g. the ARP proxy's is_request flag).
func (c *compiler) buildFlow() error {
	for _, path := range c.out.Paths {
		var frames [][]ast.Stmt
		if ing, ok := c.out.Prog.Controls[ast.ControlIngress]; ok {
			frames = append(frames, ing.Body)
		}
		if eg, ok := c.out.Prog.Controls[ast.ControlEgress]; ok {
			frames = append(frames, eg.Body)
		}
		env := map[string]*big.Int{}
		if err := c.step(frames, path, 1, env, flowEdge{}); err != nil {
			return fmt.Errorf("path %d: %w", path.ID, err)
		}
	}
	return nil
}

// flowEdge is the pending (slot, action) whose successor is being resolved.
// A zero edge marks the start of a path.
type flowEdge struct {
	slot   *Slot
	action string
	miss   bool
}

// unknownVal marks a metadata field whose value is not a compile-time
// constant.
var unknownVal = new(big.Int).SetInt64(-1)

func (c *compiler) step(frames [][]ast.Stmt, path *ParsePath, stage int, env map[string]*big.Int, pending flowEdge) error {
	// Pop to the next statement.
	for len(frames) > 0 && len(frames[0]) == 0 {
		frames = frames[1:]
	}
	if len(frames) == 0 {
		return c.setSuccessor(pending, path, Succ{Kind: persona.NTDone})
	}
	stmt := frames[0][0]
	rest := append([][]ast.Stmt{frames[0][1:]}, frames[1:]...)

	switch stmt.Kind {
	case ast.StmtCall:
		ctl := c.out.Prog.Controls[stmt.Control]
		return c.step(append([][]ast.Stmt{ctl.Body}, rest...), path, stage, env, pending)

	case ast.StmtIf:
		taken, err := c.evalCond(stmt.Cond, path, env)
		if err != nil {
			return err
		}
		branch := stmt.Then
		if !taken {
			branch = stmt.Else
		}
		return c.step(append([][]ast.Stmt{branch}, rest...), path, stage, env, pending)

	case ast.StmtApply:
		if stage > c.out.Cfg.Stages {
			return fmt.Errorf("table %s would need stage %d; persona has %d stages", stmt.Table, stage, c.out.Cfg.Stages)
		}
		tbl := c.out.Prog.Tables[stmt.Table]
		slot, err := c.slotFor(tbl, stage, path)
		if err != nil {
			return err
		}
		if err := c.setSuccessor(pending, path, Succ{Kind: slot.Kind, ID: slot.ID}); err != nil {
			return err
		}
		// Enumerate action choices: every allowed action (a runtime entry
		// could bind it) plus the miss case.
		for _, actName := range tbl.Actions {
			env2 := copyEnv(env)
			c.applyEnv(actName, env2)
			caseBody := applyCaseBody(stmt, actName, false)
			next := append([][]ast.Stmt{caseBody}, rest...)
			if err := c.step(next, path, stage+1, env2, flowEdge{slot: slot, action: actName}); err != nil {
				return err
			}
		}
		// Miss: the declared default action (or nothing).
		env2 := copyEnv(env)
		missAction := tbl.Default
		if missAction != "" {
			c.applyEnv(missAction, env2)
		}
		slot.MissAction = missAction
		caseBody := applyCaseBody(stmt, missAction, true)
		next := append([][]ast.Stmt{caseBody}, rest...)
		return c.step(next, path, stage+1, env2, flowEdge{slot: slot, action: missAction, miss: true})
	}
	return fmt.Errorf("bad statement kind %d", stmt.Kind)
}

// applyCaseBody selects the apply-case block run for an action choice. An
// action-select block (P4_14 "apply(t) { action_name { ... } }") runs on the
// named action whether it was bound by a hit entry or ran as the default on
// a miss.
func applyCaseBody(stmt ast.Stmt, action string, miss bool) []ast.Stmt {
	for _, cs := range stmt.ApplyCases {
		switch {
		case miss && cs.Miss:
			return cs.Body
		case !miss && cs.Hit:
			return cs.Body
		case action != "" && cs.Action == action:
			return cs.Body
		}
	}
	return nil
}

// slotFor finds or creates the slot for (table, stage, path).
func (c *compiler) slotFor(tbl *ast.Table, stage int, path *ParsePath) (*Slot, error) {
	for _, s := range c.out.Slots[tbl.Name] {
		if s.Stage == stage && s.Path == path {
			return s, nil
		}
	}
	kind, err := c.tableKind(tbl)
	if err != nil {
		return nil, err
	}
	c.nextSlotID++
	s := &Slot{
		Table: tbl.Name,
		Stage: stage,
		ID:    c.nextSlotID,
		Path:  path,
		Kind:  kind,
		Next:  map[string]Succ{},
	}
	c.out.Slots[tbl.Name] = append(c.out.Slots[tbl.Name], s)
	c.out.SlotList = append(c.out.SlotList, s)
	return s, nil
}

// setSuccessor records the next-stage code for a pending edge, detecting
// control flow the persona cannot express (one entry needing two different
// successors).
func (c *compiler) setSuccessor(e flowEdge, path *ParsePath, succ Succ) error {
	if e.slot == nil {
		// First table applied on the path; recorded for a_parse_done.
		// Kind==NTDone means the path applies no tables at all.
		path.First = succ
		return nil
	}
	if e.miss {
		if e.slot.missSet && e.slot.Miss != succ {
			return fmt.Errorf("table %s stage %d: miss path needs successors %v and %v", e.slot.Table, e.slot.Stage, e.slot.Miss, succ)
		}
		e.slot.Miss = succ
		e.slot.missSet = true
		return nil
	}
	if prev, ok := e.slot.Next[e.action]; ok && prev != succ {
		return fmt.Errorf("table %s stage %d action %s: ambiguous successors %v and %v", e.slot.Table, e.slot.Stage, e.action, prev, succ)
	}
	e.slot.Next[e.action] = succ
	return nil
}

// tableKind classifies a table into a persona stage-table kind.
func (c *compiler) tableKind(tbl *ast.Table) (int, error) {
	if len(tbl.Reads) == 0 {
		return persona.NTMatchless, nil
	}
	var ed, meta, std, ternaryLike bool
	for _, r := range tbl.Reads {
		if r.Match == ast.MatchValid {
			ed = true // validity compiles to ternary bits over extracted data
			continue
		}
		ref := *r.Field
		if ref.Instance == hlir.StandardMetadata {
			std = true
		} else if inst := c.out.Prog.Instances[ref.Instance]; inst.Decl.Metadata {
			meta = true
		} else {
			ed = true
		}
		switch r.Match {
		case ast.MatchTernary, ast.MatchLPM:
			ternaryLike = true
		case ast.MatchRange:
			return 0, fmt.Errorf("table %s: range matches are not emulatable", tbl.Name)
		}
	}
	switch {
	case std && !ed && !meta:
		return persona.NTStdMeta, nil
	case ed && !meta && !std:
		if ternaryLike {
			return persona.NTEDTernary, nil
		}
		return persona.NTEDExact, nil
	case meta && !ed && !std:
		if ternaryLike {
			return persona.NTMetaTernary, nil
		}
		return persona.NTMetaExact, nil
	}
	return 0, fmt.Errorf("table %s mixes packet, metadata, and standard-metadata reads; not emulatable", tbl.Name)
}

// evalCond statically evaluates an if condition for one parse path.
func (c *compiler) evalCond(b ast.BoolExpr, path *ParsePath, env map[string]*big.Int) (bool, error) {
	switch b.Kind {
	case ast.BoolValid:
		return path.Valid[b.Valid.Instance], nil
	case ast.BoolAnd:
		l, err := c.evalCond(*b.A, path, env)
		if err != nil || !l {
			return false, err
		}
		return c.evalCond(*b.B, path, env)
	case ast.BoolOr:
		l, err := c.evalCond(*b.A, path, env)
		if err != nil || l {
			return l, err
		}
		return c.evalCond(*b.B, path, env)
	case ast.BoolNot:
		v, err := c.evalCond(*b.A, path, env)
		return !v, err
	case ast.BoolCmp:
		l, err := c.evalOperand(*b.Left, env)
		if err != nil {
			return false, err
		}
		r, err := c.evalOperand(*b.Right, env)
		if err != nil {
			return false, err
		}
		cmp := l.Cmp(r)
		switch b.Op {
		case ast.OpEq:
			return cmp == 0, nil
		case ast.OpNe:
			return cmp != 0, nil
		case ast.OpLt:
			return cmp < 0, nil
		case ast.OpLe:
			return cmp <= 0, nil
		case ast.OpGt:
			return cmp > 0, nil
		case ast.OpGe:
			return cmp >= 0, nil
		}
	}
	return false, fmt.Errorf("unsupported condition")
}

func (c *compiler) evalOperand(e ast.Expr, env map[string]*big.Int) (*big.Int, error) {
	switch e.Kind {
	case ast.ExprConst:
		return e.Const, nil
	case ast.ExprField:
		inst, ok := c.out.Prog.Instances[e.Field.Instance]
		if !ok || !inst.Decl.Metadata || e.Field.Instance == hlir.StandardMetadata {
			return nil, fmt.Errorf("condition on %s.%s is not statically resolvable", e.Field.Instance, e.Field.Field)
		}
		key := e.Field.Instance + "." + e.Field.Field
		v, ok := env[key]
		if !ok {
			return big.NewInt(0), nil // P4 metadata zero-initializes
		}
		if v == unknownVal {
			return nil, fmt.Errorf("condition on %s depends on a runtime value", key)
		}
		return v, nil
	}
	return nil, fmt.Errorf("unsupported condition operand")
}

// applyEnv records the constant metadata effects of choosing an action.
func (c *compiler) applyEnv(actName string, env map[string]*big.Int) {
	ca, ok := c.out.Actions[actName]
	if !ok {
		return
	}
	act := c.out.Prog.Actions[actName]
	_ = act
	for _, spec := range ca.Prims {
		var key string
		switch spec.Op {
		case persona.OpModMetaConst, persona.OpAddMetaConst, persona.OpModMetaED, persona.OpModMetaMeta:
			key = c.metaKeyAt(spec.DstOff, spec.DstW)
		default:
			continue
		}
		if key == "" {
			continue
		}
		if spec.Op == persona.OpModMetaConst && spec.Const != nil {
			env[key] = spec.Const
		} else {
			env[key] = unknownVal
		}
	}
}

// metaKeyAt reverse-maps a bit range in emeta to "instance.field".
func (c *compiler) metaKeyAt(off, width int) string {
	for instName, base := range c.out.MetaOffsets {
		inst := c.out.Prog.Instances[instName]
		fOff := 0
		for _, f := range inst.Type.Fields {
			if base+fOff == off && f.Width == width {
				return instName + "." + f.Name
			}
			fOff += f.Width
		}
	}
	return ""
}

func copyEnv(env map[string]*big.Int) map[string]*big.Int {
	out := make(map[string]*big.Int, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}
