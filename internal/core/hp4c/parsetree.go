package hp4c

import (
	"fmt"

	"hyper4/internal/p4/ast"
)

// maxParseDepth bounds the parse-graph walk.
const maxParseDepth = 64

// buildParsePaths enumerates the target's parse paths: terminal walks of the
// parse graph with their select constraints, valid-header sets, and byte
// requirements.
func (c *compiler) buildParsePaths() error {
	return c.walkParse("start", 0, nil, map[string]bool{}, 0)
}

func (c *compiler) walkParse(state string, off int, cons []Constraint, valid map[string]bool, depth int) error {
	if depth > maxParseDepth {
		return fmt.Errorf("parse graph too deep (cycle?)")
	}
	if state == ast.StateIngress {
		raw := off
		rounded, ok := c.out.Cfg.RoundBytes(raw)
		if !ok {
			return fmt.Errorf("parse path needs %d bytes; persona maximum is %d", raw, c.out.Cfg.ParseMax)
		}
		p := &ParsePath{
			ID:          len(c.out.Paths) + 1,
			Constraints: append([]Constraint(nil), cons...),
			Valid:       copySet(valid),
			RawBytes:    raw,
			Bytes:       rounded,
		}
		c.out.Paths = append(c.out.Paths, p)
		if rounded > c.out.MaxBytes {
			c.out.MaxBytes = rounded
		}
		return nil
	}
	st, ok := c.out.Prog.States[state]
	if !ok {
		return fmt.Errorf("unknown parser state %q", state)
	}
	off2 := off
	valid2 := copySet(valid)
	var lastInst string
	for _, stmt := range st.Statements {
		if stmt.Extract == nil {
			continue
		}
		inst := c.out.Prog.Instances[stmt.Extract.Instance]
		valid2[inst.Decl.Name] = true
		lastInst = inst.Decl.Name
		off2 += inst.Width() / 8
	}
	switch st.Return.Kind {
	case ast.ReturnDirect:
		return c.walkParse(st.Return.State, off2, cons, valid2, depth+1)
	case ast.ReturnSelect:
		geoms, err := c.selectKeyGeometry(st.Return.SelectKeys, lastInst, off2)
		if err != nil {
			return fmt.Errorf("state %s: %w", state, err)
		}
		for _, cs := range st.Return.Cases {
			cons2 := cons
			if !cs.Default {
				for i, g := range geoms {
					cons2 = append(cons2, Constraint{
						BitOff: g.off, Width: g.width,
						Value: cs.Values[i], Mask: cs.Masks[i],
					})
				}
			}
			if err := c.walkParse(cs.State, off2, cons2, valid2, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("state %s: bad return", state)
}

type keyGeom struct {
	off   int // absolute bit offset within extracted data
	width int
}

// selectKeyGeometry locates each select key within the extracted data.
func (c *compiler) selectKeyGeometry(keys []ast.SelectKey, lastInst string, offBytes int) ([]keyGeom, error) {
	out := make([]keyGeom, len(keys))
	for i, k := range keys {
		switch {
		case k.IsCurrent:
			return nil, fmt.Errorf("select on current() is not supported by the compiler")
		case k.Latest != "":
			if lastInst == "" {
				return nil, fmt.Errorf("select(latest.%s) with no prior extract", k.Latest)
			}
			ref := ast.FieldRef{Instance: lastInst, Index: ast.IndexNone, Field: k.Latest}
			_, off, w, err := c.fieldGeometry(ref)
			if err != nil {
				return nil, err
			}
			out[i] = keyGeom{off: off, width: w}
		default:
			meta, off, w, err := c.fieldGeometry(*k.Field)
			if err != nil {
				return nil, err
			}
			if meta {
				return nil, fmt.Errorf("select on metadata is not supported by the compiler")
			}
			out[i] = keyGeom{off: off, width: w}
		}
	}
	return out, nil
}

// buildParseEntries re-walks the parse graph tracking the persona's
// progressive extraction: whenever a state needs more bytes than the current
// grid amount, a resubmit row is emitted and a fresh parse_state allocated
// (§4.2's Setup-a loop).
func (c *compiler) buildParseEntries() error {
	pathIdx := 0
	nextState := 1
	alloc := func() int {
		s := nextState
		nextState++
		return s
	}
	var walk func(state string, off, have, pstate int, consSince []Constraint, depth int) error
	walk = func(state string, off, have, pstate int, consSince []Constraint, depth int) error {
		if depth > maxParseDepth {
			return fmt.Errorf("parse graph too deep")
		}
		if state == ast.StateIngress {
			if pathIdx >= len(c.out.Paths) {
				return fmt.Errorf("parse path walk out of sync")
			}
			path := c.out.Paths[pathIdx]
			pathIdx++
			if path.Bytes > have {
				// The terminal needs more than currently extracted: one
				// final resubmit, then an unconditional done row.
				mid := alloc()
				c.out.ParseEntries = append(c.out.ParseEntries, ParseEntry{
					State: pstate, Constraints: consSince,
					Priority: prioFor(consSince),
					More:     true, NumBytes: path.Bytes, NextState: mid,
				})
				c.out.ParseEntries = append(c.out.ParseEntries, ParseEntry{
					State: mid, Priority: prioFor(nil), Path: path,
				})
				return nil
			}
			c.out.ParseEntries = append(c.out.ParseEntries, ParseEntry{
				State: pstate, Constraints: consSince,
				Priority: prioFor(consSince), Path: path,
			})
			return nil
		}
		st := c.out.Prog.States[state]
		need := off
		var lastInst string
		for _, stmt := range st.Statements {
			if stmt.Extract == nil {
				continue
			}
			inst := c.out.Prog.Instances[stmt.Extract.Instance]
			lastInst = inst.Decl.Name
			need += inst.Width() / 8
		}
		if need > have {
			have2, ok := c.out.Cfg.RoundBytes(need)
			if !ok {
				return fmt.Errorf("state %s needs %d bytes; persona maximum is %d", state, need, c.out.Cfg.ParseMax)
			}
			mid := alloc()
			c.out.ParseEntries = append(c.out.ParseEntries, ParseEntry{
				State: pstate, Constraints: consSince,
				Priority: prioFor(consSince),
				More:     true, NumBytes: have2, NextState: mid,
			})
			return walk(state, off, have2, mid, nil, depth+1)
		}
		off2 := need
		switch st.Return.Kind {
		case ast.ReturnDirect:
			return walk(st.Return.State, off2, have, pstate, consSince, depth+1)
		case ast.ReturnSelect:
			geoms, err := c.selectKeyGeometry(st.Return.SelectKeys, lastInst, off2)
			if err != nil {
				return err
			}
			for _, cs := range st.Return.Cases {
				cons2 := consSince
				if !cs.Default {
					cons2 = append(append([]Constraint(nil), consSince...), constraintsFor(geoms, cs)...)
				}
				if err := walk(cs.State, off2, have, pstate, cons2, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("state %s: bad return", state)
	}
	// Partial virtualization (§7.1): the fixed parser delivers the whole
	// supported header family in the first pass, so the walk starts with
	// every byte already available and never emits a resubmit row.
	initialHave := c.out.Cfg.ParseDefault
	if c.out.Cfg.FixedParser {
		initialHave = c.out.Cfg.ParseMax
	}
	if err := walk("start", 0, initialHave, 0, nil, 0); err != nil {
		return err
	}
	if pathIdx != len(c.out.Paths) {
		return fmt.Errorf("parse entry walk covered %d of %d paths", pathIdx, len(c.out.Paths))
	}
	return nil
}

func constraintsFor(geoms []keyGeom, cs ast.SelectCase) []Constraint {
	out := make([]Constraint, len(geoms))
	for i, g := range geoms {
		out[i] = Constraint{BitOff: g.off, Width: g.width, Value: cs.Values[i], Mask: cs.Masks[i]}
	}
	return out
}

// prioFor orders ternary rows so more-constrained rows win: each constraint
// lowers the priority number.
func prioFor(cons []Constraint) int {
	return 1000 - 10*len(cons)
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
