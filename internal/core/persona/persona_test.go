package persona

import (
	"strings"
	"testing"

	"hyper4/internal/sim"
	"hyper4/internal/sim/runtime"
)

func TestGenerateReference(t *testing.T) {
	p, err := Generate(Reference)
	if err != nil {
		t.Fatal(err)
	}
	if p.LoC < 3000 {
		t.Errorf("reference persona LoC = %d, expected thousands (paper: ~6400)", p.LoC)
	}
	if p.TableCount < 100 {
		t.Errorf("reference persona tables = %d, expected >100 (paper: 346)", p.TableCount)
	}
	t.Logf("reference persona: %d LoC, %d tables, %d actions", p.LoC, p.TableCount, p.ActionCount)
}

func TestPersonaLoadsAndAcceptsBaseCommands(t *testing.T) {
	p, err := Generate(Config{Stages: 2, Primitives: 3, ParseDefault: 20, ParseStep: 10, ParseMax: 40})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("persona", p.Program)
	if err != nil {
		t.Fatal(err)
	}
	rt := runtime.New(sw)
	if err := rt.ExecAll(p.BaseCommands); err != nil {
		t.Fatalf("base commands: %v", err)
	}
	// An unconfigured persona drops everything.
	out, tr, err := sw.Process(make([]byte, 64), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("unconfigured persona should drop: %+v", out)
	}
	if tr.Applies == 0 {
		t.Error("persona should apply setup tables even when unconfigured")
	}
}

func TestByteCounts(t *testing.T) {
	c := Reference
	counts := c.ByteCounts()
	want := []int{20, 30, 40, 50, 60, 70, 80, 90, 100}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v", counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestRoundBytes(t *testing.T) {
	c := Reference
	cases := []struct {
		in   int
		want int
		ok   bool
	}{
		{14, 20, true}, {20, 20, true}, {21, 30, true}, {34, 40, true},
		{54, 60, true}, {100, 100, true}, {101, 0, false},
	}
	for _, tc := range cases {
		got, ok := c.RoundBytes(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("RoundBytes(%d) = %d,%v want %d,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Stages: 0, Primitives: 1, ParseDefault: 20, ParseStep: 10, ParseMax: 100},
		{Stages: 1, Primitives: 0, ParseDefault: 20, ParseStep: 10, ParseMax: 100},
		{Stages: 1, Primitives: 1, ParseDefault: 0, ParseStep: 10, ParseMax: 100},
		{Stages: 1, Primitives: 1, ParseDefault: 20, ParseStep: 10, ParseMax: 10},
	}
	for _, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("config %+v should be rejected", c)
		}
	}
}

// TestFigure7Shape verifies the paper's Figure 7 claim: persona LoC grows
// linearly in both the number of stages and the primitives per stage.
func TestFigure7Shape(t *testing.T) {
	loc := func(stages, prims int) int {
		p, err := Generate(Config{Stages: stages, Primitives: prims, ParseDefault: 20, ParseStep: 20, ParseMax: 40})
		if err != nil {
			t.Fatal(err)
		}
		return p.LoC
	}
	l1 := loc(1, 1)
	l3 := loc(3, 1)
	l5 := loc(5, 1)
	if !(l1 < l3 && l3 < l5) {
		t.Errorf("LoC not increasing in stages: %d %d %d", l1, l3, l5)
	}
	// Linearity: increments should match.
	if d1, d2 := l3-l1, l5-l3; d1 != d2 {
		t.Errorf("LoC growth in stages not linear: +%d then +%d", d1, d2)
	}
	p1 := loc(2, 1)
	p5 := loc(2, 5)
	p9 := loc(2, 9)
	if !(p1 < p5 && p5 < p9) {
		t.Errorf("LoC not increasing in primitives: %d %d %d", p1, p5, p9)
	}
	if d1, d2 := p5-p1, p9-p5; d1 != d2 {
		t.Errorf("LoC growth in primitives not linear: +%d then +%d", d1, d2)
	}
}

// TestFigure8Shape verifies table-count growth (Figure 8).
func TestFigure8Shape(t *testing.T) {
	tables := func(stages, prims int) int {
		p, err := Generate(Config{Stages: stages, Primitives: prims, ParseDefault: 20, ParseStep: 20, ParseMax: 40})
		if err != nil {
			t.Fatal(err)
		}
		return p.TableCount
	}
	base := tables(1, 1)
	perStage := tables(2, 1) - base
	if perStage <= 0 {
		t.Fatalf("per-stage table increment = %d", perStage)
	}
	if got := tables(4, 1); got != base+3*perStage {
		t.Errorf("tables(4,1) = %d, want %d (linear)", got, base+3*perStage)
	}
	perPrim := tables(1, 2) - base
	if perPrim != 3 {
		t.Errorf("per-primitive tables = %d, want 3 (§4.3: prep/exec/done)", perPrim)
	}
}

func TestSourceMentionsKeyTables(t *testing.T) {
	p, err := Generate(Config{Stages: 1, Primitives: 1, ParseDefault: 20, ParseStep: 20, ParseMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"table t_norm", "table t_assign", "table t_parse_ctrl",
		"table t1_ed_exact", "table t1_p1_prep", "table t1_p1_exec", "table t1_p1_done",
		"table t_virtnet", "table te_resize", "table te_writeback",
		"resubmit(fl_resubmit)", "recirculate(fl_recirc)",
	} {
		if !strings.Contains(p.Source, want) {
			t.Errorf("persona source missing %q", want)
		}
	}
}
