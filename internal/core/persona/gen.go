package persona

import (
	"fmt"
	"math/big"

	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
	"hyper4/internal/p4/pretty"
)

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Persona is a generated HyPer4 persona: its P4 source, the resolved
// program, and the base entries that wire its fixed machinery.
type Persona struct {
	Config  Config
	Source  string
	Program *hlir.Program
	// BaseCommands is the runtime command script that installs the persona's
	// static entries (primitive dispatch, byte normalization, resize and
	// write-back rows). It must be executed once after loading the persona.
	BaseCommands string

	// Structural metadata for the paper's space analysis (Figures 7 and 8,
	// §6.2, §6.5).
	TableCount  int
	ActionCount int
	LoC         int
}

// Generate builds the persona for a configuration.
func Generate(c Config) (*Persona, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	b := &builder{c: c, prog: &ast.Program{Name: "hyper4_persona"}}
	b.headers()
	b.fieldLists()
	if c.FixedParser {
		b.fixedParserStates()
		b.fixedNormWriteback()
	} else {
		b.parserStates()
	}
	b.setupActionsAndTables()
	b.stageActionsAndTables()
	b.virtnetAndEgress()
	b.extensions()
	b.controls()

	src := pretty.Print(b.prog)
	parsed, err := parser.Parse("hyper4_persona", src)
	if err != nil {
		return nil, fmt.Errorf("persona: generated source does not parse: %w", err)
	}
	resolved, err := hlir.Resolve(parsed)
	if err != nil {
		return nil, fmt.Errorf("persona: generated source does not resolve: %w", err)
	}
	p := &Persona{
		Config:       c,
		Source:       src,
		Program:      resolved,
		BaseCommands: baseCommands(c),
		TableCount:   len(parsed.Tables),
		ActionCount:  len(parsed.Actions),
		LoC:          pretty.CountLoC(src),
	}
	return p, nil
}

func (c Config) validate() error {
	switch {
	case c.Stages < 1:
		return fmt.Errorf("persona: Stages must be >= 1, got %d", c.Stages)
	case c.Primitives < 1:
		return fmt.Errorf("persona: Primitives must be >= 1, got %d", c.Primitives)
	case c.ParseDefault < 1 || c.ParseStep < 1 || c.ParseMax < c.ParseDefault:
		return fmt.Errorf("persona: bad parse bytes config %d/%d/%d", c.ParseDefault, c.ParseStep, c.ParseMax)
	}
	return nil
}

type builder struct {
	c    Config
	prog *ast.Program
}

// --- small AST helpers ---

func fref(inst, field string) ast.FieldRef {
	return ast.FieldRef{Instance: inst, Index: ast.IndexNone, Field: field}
}

func frefIdx(inst string, idx int, field string) ast.FieldRef {
	return ast.FieldRef{Instance: inst, Index: idx, Field: field}
}

func fexpr(inst, field string) ast.Expr {
	return ast.Expr{Kind: ast.ExprField, Field: fref(inst, field)}
}

func fexprIdx(inst string, idx int, field string) ast.Expr {
	return ast.Expr{Kind: ast.ExprField, Field: frefIdx(inst, idx, field)}
}

func cexpr(v int64) ast.Expr { return ast.Expr{Kind: ast.ExprConst, Const: big.NewInt(v)} }

// bexpr builds a wide constant expression (e.g. the all-ones mask used to
// complement dmask in place).
func bexpr(v *big.Int) ast.Expr { return ast.Expr{Kind: ast.ExprConst, Const: v} }

// onesConst returns the all-ones constant of width bits.
func onesConst(width int) *big.Int {
	one := big.NewInt(1)
	x := new(big.Int).Lsh(one, uint(width))
	return x.Sub(x, one)
}

func pexpr(name string) ast.Expr { return ast.Expr{Kind: ast.ExprParam, Param: name} }

func nexpr(name string) ast.Expr { return ast.Expr{Kind: ast.ExprName, Name: name} }

func call(name string, args ...ast.Expr) ast.PrimitiveCall {
	return ast.PrimitiveCall{Name: name, Args: args}
}

func applyStmt(table string) ast.Stmt { return ast.Stmt{Kind: ast.StmtApply, Table: table} }

func ifEq(inst, field string, v int64, then ...ast.Stmt) ast.Stmt {
	l, r := fexpr(inst, field), cexpr(v)
	return ast.Stmt{Kind: ast.StmtIf, Cond: ast.BoolExpr{Kind: ast.BoolCmp, Left: &l, Op: ast.OpEq, Right: &r}, Then: then}
}

func ifNe(inst, field string, v int64, then ...ast.Stmt) ast.Stmt {
	l, r := fexpr(inst, field), cexpr(v)
	return ast.Stmt{Kind: ast.StmtIf, Cond: ast.BoolExpr{Kind: ast.BoolCmp, Left: &l, Op: ast.OpNe, Right: &r}, Then: then}
}

// --- program parts ---

func (b *builder) headers() {
	ew := b.c.ExtractedWidth()
	b.prog.HeaderTypes = append(b.prog.HeaderTypes,
		&ast.HeaderType{Name: "u_byte_t", Fields: []ast.FieldDecl{{Name: "b", Width: 8}}},
		&ast.HeaderType{Name: "hp4_meta_t", Fields: []ast.FieldDecl{
			{Name: "program", Width: ProgramWidth},
			{Name: "numbytes", Width: NumBytesWidth},
			{Name: "parsed", Width: NumBytesWidth},
			{Name: "parse_state", Width: StateWidth},
			{Name: "next_table", Width: NextTblWidth},
			{Name: "next_slot", Width: SlotWidth},
			{Name: "match_id", Width: MatchIDWidth},
			{Name: "prims_left", Width: PrimWidth},
			{Name: "prim_type", Width: PrimWidth},
			{Name: "vdev_port", Width: VPortWidth},
			{Name: "vdev_ingress", Width: VPortWidth},
			{Name: "wb_bytes", Width: NumBytesWidth},
			{Name: "recirc", Width: 8},
			{Name: "csum", Width: 8},
			{Name: "dropped", Width: 8},
			{Name: "mcast", Width: McastWidth},
			{Name: "color", Width: 8},
			{Name: "fpath", Width: 8},
		}},
		&ast.HeaderType{Name: "hp4_data_t", Fields: []ast.FieldDecl{
			{Name: "extracted", Width: ew},
			{Name: "emeta", Width: MetaWidth},
		}},
		// Scratch space for primitive execution — the "overhead" PHV bits of
		// §6.5. Masks other than dmask are derived with double shifts and an
		// in-place complement so the overhead stays within an RMT-sized PHV.
		&ast.HeaderType{Name: "hp4_scratch_t", Fields: []ast.FieldDecl{
			{Name: "tmp", Width: ew},
			{Name: "dmask", Width: ew},
			{Name: "dshift", Width: ShiftWidth},
			{Name: "slshift", Width: ShiftWidth},
			{Name: "srshift", Width: ShiftWidth},
			{Name: "cval", Width: ConstWidth},
			{Name: "acc", Width: 32},
		}},
	)
	b.prog.Instances = append(b.prog.Instances,
		&ast.Instance{Name: InstMeta, TypeName: "hp4_meta_t", Metadata: true},
		&ast.Instance{Name: InstData, TypeName: "hp4_data_t", Metadata: true},
		&ast.Instance{Name: InstScratch, TypeName: "hp4_scratch_t", Metadata: true},
	)
	if !b.c.FixedParser {
		b.prog.Instances = append(b.prog.Instances,
			&ast.Instance{Name: InstExt, TypeName: "u_byte_t", Count: b.c.ParseMax})
	} else {
		b.fixedHeadersDecl()
	}
}

func (b *builder) fieldLists() {
	mkFL := func(name string, fields ...string) *ast.FieldList {
		fl := &ast.FieldList{Name: name}
		for _, f := range fields {
			r := fref(InstMeta, f)
			fl.Entries = append(fl.Entries, ast.FieldListEntry{Field: &r})
		}
		return fl
	}
	// Resubmit keeps the parse loop's progress; recirculate starts the next
	// virtual device fresh, carrying only its identity (§4.6).
	b.prog.FieldLists = append(b.prog.FieldLists,
		mkFL(FLResubmit, "program", "numbytes", "parse_state", "vdev_ingress"),
		mkFL(FLRecirc, "program", "vdev_ingress"),
	)
}

// parserStates emits the runtime-reconfigurable parser of §4.2: a start
// state that branches on hp4.numbytes, and one state per supported byte
// count, each extracting that many one-byte headers.
func (b *builder) parserStates() {
	counts := b.c.ByteCounts()
	start := &ast.ParserState{Name: "start"}
	key := fref(InstMeta, "numbytes")
	start.Return = ast.ParserReturn{
		Kind:       ast.ReturnSelect,
		SelectKeys: []ast.SelectKey{{Field: &key}},
	}
	// numbytes == 0 (fresh packet) extracts the default.
	start.Return.Cases = append(start.Return.Cases, ast.SelectCase{
		Values: []*big.Int{big.NewInt(0)},
		Masks:  []*big.Int{nil},
		State:  ParseState(b.c.ParseDefault),
	})
	for _, n := range counts {
		start.Return.Cases = append(start.Return.Cases, ast.SelectCase{
			Values: []*big.Int{big.NewInt(int64(n))},
			Masks:  []*big.Int{nil},
			State:  ParseState(n),
		})
	}
	start.Return.Cases = append(start.Return.Cases, ast.SelectCase{
		Default: true,
		State:   ParseState(b.c.ParseDefault),
	})
	b.prog.ParserStates = append(b.prog.ParserStates, start)

	for _, n := range counts {
		st := &ast.ParserState{Name: ParseState(n)}
		for i := 0; i < n; i++ {
			st.Statements = append(st.Statements, ast.ParserStmt{
				Extract: &ast.HeaderRef{Instance: InstExt, Index: ast.IndexNext},
			})
		}
		st.Statements = append(st.Statements, ast.ParserStmt{
			SetField: fref(InstMeta, "parsed"),
			SetValue: cexpr(int64(n)),
		})
		st.Return = ast.ParserReturn{Kind: ast.ReturnDirect, State: ast.StateIngress}
		b.prog.ParserStates = append(b.prog.ParserStates, st)
	}
}

// setupActionsAndTables emits the normalization (byte assembly), program
// assignment, and parse-control machinery (Setup a/b in Figure 6).
func (b *builder) setupActionsAndTables() {
	ew := b.c.ExtractedWidth()
	if !b.c.FixedParser {
		// a_norm_N: concatenate ext[0..N-1] into hp4d.extracted, anchoring
		// byte 0 at the most significant end so field offsets are
		// independent of N.
		for _, n := range b.c.ByteCounts() {
			a := &ast.Action{Name: NormAction(n)}
			for i := 0; i < n; i++ {
				sh := int64(ew - 8*(i+1))
				a.Body = append(a.Body,
					call("modify_field", fexpr(InstScratch, "tmp"), fexprIdx(InstExt, i, "b")),
					call("shift_left", fexpr(InstScratch, "tmp"), fexpr(InstScratch, "tmp"), cexpr(sh)),
					call("bit_or", fexpr(InstData, "extracted"), fexpr(InstData, "extracted"), fexpr(InstScratch, "tmp")),
				)
			}
			b.prog.Actions = append(b.prog.Actions, a)
		}
		b.prog.Tables = append(b.prog.Tables, &ast.Table{
			Name: TblNorm,
			Reads: []ast.ReadEntry{
				{Field: ptr(fref(InstMeta, "parsed")), Match: ast.MatchExact},
			},
			Actions: b.normActionNames(),
			Size:    len(b.c.ByteCounts()) + 1,
		})
	}
	_ = ew

	// a_set_program: bind the packet to a virtual device by ingress port
	// (the operator-controllable criterion of §4.5).
	b.prog.Actions = append(b.prog.Actions, &ast.Action{
		Name:   ActSetProgram,
		Params: []string{"program", "vingress"},
		Body: []ast.PrimitiveCall{
			call("modify_field", fexpr(InstMeta, "program"), pexpr("program")),
			call("modify_field", fexpr(InstMeta, "vdev_ingress"), pexpr("vingress")),
		},
	})
	b.prog.Tables = append(b.prog.Tables, &ast.Table{
		Name: TblAssign,
		Reads: []ast.ReadEntry{
			{Field: ptr(fref(hlir.StandardMetadata, hlir.FieldIngressPort)), Match: ast.MatchTernary},
		},
		Actions: []string{ActSetProgram},
		Size:    64,
	})

	// Parse control (§4.2): each entry either requests more bytes and
	// resubmits, or declares parsing complete and primes the first stage.
	b.prog.Actions = append(b.prog.Actions,
		&ast.Action{
			Name:   ActParseMore,
			Params: []string{"numbytes", "pstate"},
			Body: []ast.PrimitiveCall{
				call("modify_field", fexpr(InstMeta, "numbytes"), pexpr("numbytes")),
				call("modify_field", fexpr(InstMeta, "parse_state"), pexpr("pstate")),
				call("resubmit", nexpr(FLResubmit)),
			},
		},
		&ast.Action{
			Name:   ActParseDone,
			Params: []string{"next_table", "next_slot", "csum"},
			Body: []ast.PrimitiveCall{
				call("modify_field", fexpr(InstMeta, "next_table"), pexpr("next_table")),
				call("modify_field", fexpr(InstMeta, "next_slot"), pexpr("next_slot")),
				call("modify_field", fexpr(InstMeta, "wb_bytes"), fexpr(InstMeta, "parsed")),
				call("modify_field", fexpr(InstMeta, "csum"), pexpr("csum")),
			},
		},
	)
	b.prog.Tables = append(b.prog.Tables, &ast.Table{
		Name: TblParseCtrl,
		Reads: []ast.ReadEntry{
			{Field: ptr(fref(InstMeta, "program")), Match: ast.MatchExact},
			{Field: ptr(fref(InstMeta, "parse_state")), Match: ast.MatchExact},
			{Field: ptr(fref(InstData, "extracted")), Match: ast.MatchTernary},
		},
		Actions: []string{ActParseMore, ActParseDone},
		Size:    256,
	})
}

func (b *builder) normActionNames() []string {
	var out []string
	for _, n := range b.c.ByteCounts() {
		out = append(out, NormAction(n))
	}
	return out
}

func ptr[T any](v T) *T { return &v }
