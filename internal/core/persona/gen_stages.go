package persona

import (
	"hyper4/internal/p4/ast"
)

// stageActionsAndTables emits the general-purpose match-action machinery of
// §4.3: per stage, one match table per (match type × data type) kind; per
// primitive slot, the three tables (prep, exec, done).
func (b *builder) stageActionsAndTables() {
	// a_set_match: a stage-table hit binds the packet to an installed
	// virtual entry and primes primitive execution and the next stage.
	b.prog.Actions = append(b.prog.Actions, &ast.Action{
		Name:   ActSetMatch,
		Params: []string{"match_id", "prims_left", "next_table", "next_slot"},
		Body: []ast.PrimitiveCall{
			call("modify_field", fexpr(InstMeta, "match_id"), pexpr("match_id")),
			call("modify_field", fexpr(InstMeta, "prims_left"), pexpr("prims_left")),
			call("modify_field", fexpr(InstMeta, "next_table"), pexpr("next_table")),
			call("modify_field", fexpr(InstMeta, "next_slot"), pexpr("next_slot")),
		},
	})
	b.prepActions()
	b.execActions()
	// a_prim_done: the per-slot state transition.
	b.prog.Actions = append(b.prog.Actions, &ast.Action{
		Name: ActPrimDone,
		Body: []ast.PrimitiveCall{
			call("subtract_from_field", fexpr(InstMeta, "prims_left"), cexpr(1)),
		},
	})

	for i := 1; i <= b.c.Stages; i++ {
		b.stageMatchTables(i)
		for p := 1; p <= b.c.Primitives; p++ {
			b.primTables(i, p)
		}
	}
}

// stageMatchTables declares the per-stage match tables. Every kind matches
// hp4.program first — the code-isolation mechanism of §4.5 — then the wide
// data field appropriate to the kind, always via ternary so runtime masks
// can isolate the emulated fields (§4.1 "Matching").
func (b *builder) stageMatchTables(i int) {
	programRead := ast.ReadEntry{Field: ptr(fref(InstMeta, "program")), Match: ast.MatchExact}
	// The slot read disambiguates emulated tables of the same kind at the
	// same stage (e.g. the ARP proxy's arp_resp vs smac).
	slotRead := ast.ReadEntry{Field: ptr(fref(InstMeta, "next_slot")), Match: ast.MatchExact}
	kinds := []struct {
		name  string
		reads []ast.ReadEntry
	}{
		{"ed_exact", []ast.ReadEntry{programRead, slotRead, {Field: ptr(fref(InstData, "extracted")), Match: ast.MatchTernary}}},
		{"ed_ternary", []ast.ReadEntry{programRead, slotRead, {Field: ptr(fref(InstData, "extracted")), Match: ast.MatchTernary}}},
		{"meta_exact", []ast.ReadEntry{programRead, slotRead, {Field: ptr(fref(InstData, "emeta")), Match: ast.MatchTernary}}},
		{"meta_ternary", []ast.ReadEntry{programRead, slotRead, {Field: ptr(fref(InstData, "emeta")), Match: ast.MatchTernary}}},
		{"stdmeta", []ast.ReadEntry{programRead, slotRead,
			{Field: ptr(fref(InstMeta, "vdev_ingress")), Match: ast.MatchTernary},
			{Field: ptr(fref(InstMeta, "vdev_port")), Match: ast.MatchTernary}}},
		{"matchless", []ast.ReadEntry{programRead, slotRead}},
	}
	for _, k := range kinds {
		b.prog.Tables = append(b.prog.Tables, &ast.Table{
			Name:    StageTable(i, k.name),
			Reads:   k.reads,
			Actions: []string{ActSetMatch},
			Size:    512,
		})
	}
}

// primTables declares the three tables of one primitive slot (§4.3: "one to
// set the stage for primitive execution, another to execute the primitive,
// and another to perform a state transition").
func (b *builder) primTables(i, p int) {
	prepActions := make([]string, 0, len(Opcodes))
	execActions := make([]string, 0, len(Opcodes))
	for _, op := range Opcodes {
		prepActions = append(prepActions, "a_prep_"+op.Name)
		execActions = append(execActions, "a_exec_"+op.Name)
	}
	b.prog.Tables = append(b.prog.Tables,
		&ast.Table{
			Name: PrimTable(i, p, "prep"),
			Reads: []ast.ReadEntry{
				{Field: ptr(fref(InstMeta, "program")), Match: ast.MatchExact},
				{Field: ptr(fref(InstMeta, "match_id")), Match: ast.MatchExact},
			},
			Actions: prepActions,
			Size:    512,
		},
		&ast.Table{
			Name: PrimTable(i, p, "exec"),
			Reads: []ast.ReadEntry{
				{Field: ptr(fref(InstMeta, "prim_type")), Match: ast.MatchExact},
			},
			Actions: execActions,
			Size:    32,
		},
		&ast.Table{
			Name:    PrimTable(i, p, "done"),
			Actions: []string{ActPrimDone},
			Default: ActPrimDone,
			Size:    1,
		},
	)
}

// prepActions emits one a_prep_<op> per opcode: each loads the primitive's
// runtime-bound parameters into scratch metadata and sets hp4.prim_type.
func (b *builder) prepActions() {
	setType := func(code int) ast.PrimitiveCall {
		return call("modify_field", fexpr(InstMeta, "prim_type"), cexpr(int64(code)))
	}
	mv := func(dst, param string) ast.PrimitiveCall {
		return call("modify_field", fexpr(InstScratch, dst), pexpr(param))
	}
	add := func(name string, params []string, body ...ast.PrimitiveCall) {
		b.prog.Actions = append(b.prog.Actions, &ast.Action{Name: name, Params: params, Body: body})
	}
	constParams := func(code int, name string) {
		add(name, []string{"dmask", "dshift", "cval"},
			setType(code), mv("dmask", "dmask"), mv("dshift", "dshift"), mv("cval", "cval"))
	}
	copyParams := func(code int, name string) {
		add(name, []string{"dmask", "dshift", "slshift", "srshift"},
			setType(code), mv("dmask", "dmask"), mv("dshift", "dshift"),
			mv("slshift", "slshift"), mv("srshift", "srshift"))
	}
	addParams := func(code int, name string) {
		add(name, []string{"dmask", "dshift", "slshift", "srshift", "cval"},
			setType(code), mv("dmask", "dmask"), mv("dshift", "dshift"),
			mv("slshift", "slshift"), mv("srshift", "srshift"), mv("cval", "cval"))
	}
	constParams(OpModEDConst, "a_prep_mod_ed_const")
	copyParams(OpModEDED, "a_prep_mod_ed_ed")
	copyParams(OpModEDMeta, "a_prep_mod_ed_meta")
	copyParams(OpModMetaED, "a_prep_mod_meta_ed")
	constParams(OpModMetaConst, "a_prep_mod_meta_const")
	copyParams(OpModMetaMeta, "a_prep_mod_meta_meta")
	add("a_prep_mod_vport_const", []string{"cval"},
		setType(OpModVPortConst), mv("cval", "cval"))
	add("a_prep_mod_vport_vingress", nil, setType(OpModVPortVIngress))
	addParams(OpAddEDConst, "a_prep_add_ed_const")
	addParams(OpAddMetaConst, "a_prep_add_meta_const")
	add("a_prep_drop", nil, setType(OpDrop))
	add("a_prep_no_op", nil, setType(OpNoOp))
}

// execActions emits one a_exec_<op> per opcode. Each operates on the wide
// fields using the scratch parameters loaded by the matching prep action.
// Source fields are isolated with a left/right double shift instead of a
// mask, and the destination-clearing mask is derived by complementing dmask
// in place, keeping the scratch (PHV overhead) small.
func (b *builder) execActions() {
	ew := b.c.ExtractedWidth()
	tmp := fexpr(InstScratch, "tmp")
	ext := fexpr(InstData, "extracted")
	emeta := fexpr(InstData, "emeta")
	dmask := fexpr(InstScratch, "dmask")
	dshift := fexpr(InstScratch, "dshift")
	slshift := fexpr(InstScratch, "slshift")
	srshift := fexpr(InstScratch, "srshift")
	cval := fexpr(InstScratch, "cval")
	ones := bexpr(onesConst(ew))

	add := func(name string, body ...ast.PrimitiveCall) {
		b.prog.Actions = append(b.prog.Actions, &ast.Action{Name: name, Body: body})
	}
	// readSrc leaves the source field's value low-aligned in tmp.
	readSrc := func(src ast.Expr) []ast.PrimitiveCall {
		return []ast.PrimitiveCall{
			call("modify_field", tmp, src),
			call("shift_left", tmp, tmp, slshift),
			call("shift_right", tmp, tmp, srshift),
		}
	}
	// writeDest inserts tmp's low-aligned value into the destination field.
	writeDest := func(dst ast.Expr) []ast.PrimitiveCall {
		return []ast.PrimitiveCall{
			call("shift_left", tmp, tmp, dshift),
			call("bit_and", tmp, tmp, dmask),
			call("bit_xor", dmask, dmask, ones), // dmask := ~dmask
			call("bit_and", dst, dst, dmask),
			call("bit_or", dst, dst, tmp),
		}
	}
	seq := func(parts ...[]ast.PrimitiveCall) []ast.PrimitiveCall {
		var out []ast.PrimitiveCall
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}

	add("a_exec_mod_ed_const", seq(
		[]ast.PrimitiveCall{call("modify_field", tmp, cval)},
		writeDest(ext))...)
	add("a_exec_mod_ed_ed", seq(readSrc(ext), writeDest(ext))...)
	add("a_exec_mod_ed_meta", seq(readSrc(emeta), writeDest(ext))...)
	add("a_exec_mod_meta_ed", seq(readSrc(ext), writeDest(emeta))...)
	add("a_exec_mod_meta_const", seq(
		[]ast.PrimitiveCall{call("modify_field", tmp, cval)},
		writeDest(emeta))...)
	add("a_exec_mod_meta_meta", seq(readSrc(emeta), writeDest(emeta))...)
	add("a_exec_mod_vport_const",
		call("modify_field", fexpr(InstMeta, "vdev_port"), cval))
	add("a_exec_mod_vport_vingress",
		call("modify_field", fexpr(InstMeta, "vdev_port"), fexpr(InstMeta, "vdev_ingress")))
	// field += const: isolate the destination field low-aligned, add, wrap
	// within the field width by shifting the carry out, and write back.
	addOp := func(name string, dst ast.Expr) {
		add(name, seq(
			readSrc(dst),
			[]ast.PrimitiveCall{
				call("add_to_field", tmp, cval),
				call("shift_left", tmp, tmp, srshift),
				call("shift_right", tmp, tmp, srshift),
			},
			writeDest(dst))...)
	}
	addOp("a_exec_add_ed_const", ext)
	addOp("a_exec_add_meta_const", emeta)
	// Drop is sticky, as on the native target: once an emulated action
	// drops, later virtual-port writes cannot resurrect the packet.
	add("a_exec_drop",
		call("modify_field", fexpr(InstMeta, "vdev_port"), cexpr(VPortDrop)),
		call("modify_field", fexpr(InstMeta, "dropped"), cexpr(1)))
	add("a_exec_no_op", call("no_op"))
}
