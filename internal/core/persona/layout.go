// Package persona generates the HyPer4 persona: the P4 program that, once
// loaded on a P4 target, can be configured through table entries to emulate
// other P4 programs (§4 of the paper).
//
// The generator plays the role of the paper's 900-line Python configuration
// script (§5.1): given a Config (number of emulated match-action stages,
// primitives per compound action, and parse-byte granularity) it emits real
// P4_14 source — parsed by our own front end and executed by internal/sim —
// plus the base table entries that wire the persona's fixed machinery
// (primitive dispatch, byte normalization, write-back).
package persona

// Config parameterizes persona generation, mirroring §5.1's configurable
// parameters.
type Config struct {
	// Stages is the maximum number of match-action stages the persona can
	// emulate (the paper's evaluation configuration uses 4).
	Stages int
	// Primitives is the maximum number of primitives per compound action
	// (the paper uses 9 — the ARP proxy's reply action needs all of them).
	Primitives int
	// ParseDefault, ParseStep, ParseMax set the bytes the persona can
	// extract: the first pass takes ParseDefault bytes, and the
	// parse-control table can request any multiple of ParseStep up to
	// ParseMax via resubmission (the paper uses 20/10/100).
	ParseDefault int
	ParseStep    int
	ParseMax     int
	// FixedParser selects partial virtualization (§7.1, Figure 9(c)): a
	// directly-implemented Ethernet/ARP/IPv4/TCP/UDP parser replaces the
	// programmable byte-stack parser, eliminating parse resubmissions at
	// the cost of fixing the supported header family.
	FixedParser bool
}

// Reference is the configuration evaluated throughout the paper: four
// stages, nine primitives per action, 20..100 parse bytes in steps of 10.
var Reference = Config{Stages: 4, Primitives: 9, ParseDefault: 20, ParseStep: 10, ParseMax: 100}

// Wide-field widths (§6.2): all extracted packet data is represented in one
// 800-bit metadata field and all emulated metadata in one 256-bit field.
const (
	MetaWidth = 256 // bits of emulated metadata (hp4d.emeta)

	ProgramWidth  = 16 // hp4.program — the virtual device ID (§4.5)
	MatchIDWidth  = 32 // hp4.match_id — allocated per installed virtual entry
	NumBytesWidth = 16
	StateWidth    = 16 // parse-control state
	NextTblWidth  = 8
	SlotWidth     = 16 // hp4.next_slot — per-program stage-slot discriminator
	PrimWidth     = 8
	VPortWidth    = 16 // virtual port space
	McastWidth    = 16 // multicast sequence ids
	ShiftWidth    = 16
	ConstWidth    = 64 // widest constant a primitive spec can carry
)

// ExtractedWidth returns the width in bits of the extracted-data field for
// this configuration (800 for the reference 100-byte maximum).
func (c Config) ExtractedWidth() int { return c.ParseMax * 8 }

// ByteCounts returns the parse byte counts the persona supports:
// ParseDefault, then every multiple of ParseStep up to ParseMax.
func (c Config) ByteCounts() []int {
	var out []int
	seen := map[int]bool{}
	add := func(n int) {
		if n > 0 && n <= c.ParseMax && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(c.ParseDefault)
	for n := c.ParseStep; n <= c.ParseMax; n += c.ParseStep {
		if n >= c.ParseDefault {
			add(n)
		}
	}
	return out
}

// RoundBytes rounds a byte requirement up to a supported count. It returns
// false if the requirement exceeds ParseMax.
func (c Config) RoundBytes(n int) (int, bool) {
	if n <= c.ParseDefault {
		return c.ParseDefault, true
	}
	r := ((n + c.ParseStep - 1) / c.ParseStep) * c.ParseStep
	if r < c.ParseDefault {
		r = c.ParseDefault
	}
	if r > c.ParseMax {
		return 0, false
	}
	return r, true
}

// Primitive opcodes (hp4.prim_type values). Each opcode is one supported
// (primitive × operand-class) combination; the paper's configuration covers
// five P4 primitives (modify_field, add_to_field, drop, no_op, and the
// standard-metadata forms), which decompose into these execution variants.
const (
	OpModEDConst       = 1  // extracted-data field ← constant / action arg
	OpModEDED          = 2  // extracted ← extracted
	OpModEDMeta        = 3  // extracted ← emulated metadata
	OpModMetaED        = 4  // emulated metadata ← extracted
	OpModMetaConst     = 5  // emulated metadata ← constant
	OpModVPortConst    = 6  // virtual egress port ← constant
	OpModVPortVIngress = 7  // virtual egress port ← virtual ingress port
	OpAddEDConst       = 8  // extracted field += constant (mod 2^width)
	OpAddMetaConst     = 9  // metadata field += constant
	OpDrop             = 10 // virtual drop
	OpNoOp             = 11
	OpModMetaMeta      = 12 // emulated metadata ← emulated metadata
)

// Opcodes lists every opcode with its exec action name.
var Opcodes = []struct {
	Code int
	Name string // suffix shared by a_prep_<Name> and a_exec_<Name>
}{
	{OpModEDConst, "mod_ed_const"},
	{OpModEDED, "mod_ed_ed"},
	{OpModEDMeta, "mod_ed_meta"},
	{OpModMetaED, "mod_meta_ed"},
	{OpModMetaConst, "mod_meta_const"},
	{OpModVPortConst, "mod_vport_const"},
	{OpModVPortVIngress, "mod_vport_vingress"},
	{OpAddEDConst, "add_ed_const"},
	{OpAddMetaConst, "add_meta_const"},
	{OpDrop, "drop"},
	{OpNoOp, "no_op"},
	{OpModMetaMeta, "mod_meta_meta"},
}

// Next-table codes (hp4.next_table values) selecting the match-table kind of
// the next emulated stage. Done ends stage emulation.
const (
	NTDone        = 0
	NTEDExact     = 1 // exact match on extracted data (via ternary, §4.3)
	NTEDTernary   = 2
	NTMetaExact   = 3
	NTMetaTernary = 4
	NTStdMeta     = 5 // match on virtual ingress/egress port
	NTMatchless   = 6 // unconditional action stage
)

// StageKinds lists the match-table kinds generated per stage, with the
// next-table code that dispatches to each and the table-name suffix.
var StageKinds = []struct {
	Code int
	Name string
}{
	{NTEDExact, "ed_exact"},
	{NTEDTernary, "ed_ternary"},
	{NTMetaExact, "meta_exact"},
	{NTMetaTernary, "meta_ternary"},
	{NTStdMeta, "stdmeta"},
	{NTMatchless, "matchless"},
}

// KindName returns the stage-table suffix for a next-table code, or "".
func KindName(code int) string {
	for _, k := range StageKinds {
		if k.Code == code {
			return k.Name
		}
	}
	return ""
}

// VPortDrop is the virtual port value that drops a packet, mirroring the
// target's 9-bit drop port.
const VPortDrop = 0x1ff

// Well-known table and instance names in the generated persona.
const (
	InstMeta    = "hp4"  // control metadata
	InstData    = "hp4d" // extracted + emulated metadata wide fields
	InstScratch = "hp4s" // primitive-execution scratch space
	InstExt     = "ext"  // the stack of one-byte headers

	TblNorm       = "t_norm"
	TblAssign     = "t_assign"
	TblParseCtrl  = "t_parse_ctrl"
	TblVirtnet    = "t_virtnet"
	TblDropped    = "t_dropped"
	TblCsum       = "te_csum"
	TblRecirc     = "te_recirc"
	TblResize     = "te_resize"
	TblWriteback  = "te_writeback"
	TblMcastOrig  = "te_mcast_orig"
	TblMcastClone = "te_mcast_clone"
	TblPolice     = "t_police"
	TblPoliceDrop = "t_police_drop"
	MeterIngress  = "hp4_ingress_meter"
	CounterVDev   = "hp4_vdev_counter"

	ActSetProgram = "a_set_program"
	ActParseMore  = "a_parse_more"
	ActParseDone  = "a_parse_done"
	ActSetMatch   = "a_set_match"
	ActPrimDone   = "a_prim_done"
	ActPhysFwd    = "a_phys_fwd"
	ActVirtFwd    = "a_virt_fwd"
	ActVDrop      = "a_vdrop"
	ActDoRecirc   = "a_do_recirc"
	ActMcastStart = "a_mcast_start"
	ActMcastClone = "a_mcast_clone"
	ActMcastStep  = "a_mcast_step_clone"
	ActMcastLast  = "a_mcast_step_last"
	ActPolice     = "a_police"

	FLResubmit = "fl_resubmit"
	FLRecirc   = "fl_recirc"

	// FieldProgram is the InstMeta field carrying the per-packet program ID
	// — the attribution value the DPMU's fault containment keys on.
	FieldProgram = "program"
)

// Stage table names.

// StageTable returns the name of stage i's match table of the given kind
// suffix (i is 1-based).
func StageTable(i int, kind string) string {
	return tblName("t%d_%s", i, kind)
}

// PrimTable returns the name of stage i, slot p's primitive table with the
// given role ("prep", "exec", or "done").
func PrimTable(i, p int, role string) string {
	return tblName("t%d_p%d_%s", i, p, role)
}

// NormAction returns the name of the assemble action for n bytes.
func NormAction(n int) string { return tblName("a_norm_%d", n) }

// ResizeAction returns the name of the resize action for n bytes.
func ResizeAction(n int) string { return tblName("a_resize_%d", n) }

// WritebackAction returns the name of the write-back action for n bytes.
func WritebackAction(n int) string { return tblName("a_wb_%d", n) }

// ParseState returns the parser state name that extracts n bytes.
func ParseState(n int) string { return tblName("p_bytes_%d", n) }

func tblName(format string, args ...any) string {
	return sprintf(format, args...)
}
