package persona

import (
	"fmt"
	"math/big"
	"strings"

	"hyper4/internal/p4/ast"
)

// Partial virtualization (§7.1, Figure 9(c)): "a single directly
// implemented parser can pass traffic to different virtual match-action
// pipelines. This 'fixes' the set of protocol headers supported, but
// permits different, dynamically modifiable behaviors."
//
// When Config.FixedParser is set, the persona's runtime-reconfigurable
// byte-stack parser (§4.2) is replaced by a concrete parser for the
// Ethernet / ARP / IPv4 / TCP / UDP family. Parsing decisions no longer
// require resubmission — the §4.7 throughput penalty of the programmable
// parser disappears — in exchange for restricting emulated programs to that
// header family.

// Fixed-parser path IDs (hp4.fpath values set by the parser terminals).
const (
	FPathEth = iota + 1
	FPathARP
	FPathIPv4
	FPathTCP
	FPathUDP
)

// fixedHeader describes one header of the fixed parser family.
type fixedHeader struct {
	inst   string
	typ    string
	offset int // byte offset within extracted data
	fields []ast.FieldDecl
}

// fixedFamily is the concrete header set, matching the byte layout the
// compiler assigns to the paper's functions (eth@0, arp/ipv4@14, l4@34).
var fixedFamily = []fixedHeader{
	{"f_eth", "f_eth_t", 0, []ast.FieldDecl{
		{Name: "dst", Width: 48}, {Name: "src", Width: 48}, {Name: "etype", Width: 16},
	}},
	{"f_arp", "f_arp_t", 14, []ast.FieldDecl{
		{Name: "htype", Width: 16}, {Name: "ptype", Width: 16},
		{Name: "hlen", Width: 8}, {Name: "plen", Width: 8}, {Name: "oper", Width: 16},
		{Name: "sha", Width: 48}, {Name: "spa", Width: 32},
		{Name: "tha", Width: 48}, {Name: "tpa", Width: 32},
	}},
	{"f_ipv4", "f_ipv4_t", 14, []ast.FieldDecl{
		{Name: "verihl", Width: 8}, {Name: "tos", Width: 8}, {Name: "len", Width: 16},
		{Name: "id", Width: 16}, {Name: "frag", Width: 16},
		{Name: "ttl", Width: 8}, {Name: "proto", Width: 8}, {Name: "csum", Width: 16},
		{Name: "src", Width: 32}, {Name: "dst", Width: 32},
	}},
	{"f_tcp", "f_tcp_t", 34, []ast.FieldDecl{
		{Name: "sport", Width: 16}, {Name: "dport", Width: 16},
		{Name: "seq", Width: 32}, {Name: "ack", Width: 32},
		{Name: "offres", Width: 8}, {Name: "flags", Width: 8},
		{Name: "win", Width: 16}, {Name: "csum", Width: 16}, {Name: "urg", Width: 16},
	}},
	{"f_udp", "f_udp_t", 34, []ast.FieldDecl{
		{Name: "sport", Width: 16}, {Name: "dport", Width: 16},
		{Name: "len", Width: 16}, {Name: "csum", Width: 16},
	}},
}

// fpathHeaders lists, per path ID, the headers valid on that path.
var fpathHeaders = map[int][]int{
	FPathEth:  {0},
	FPathARP:  {0, 1},
	FPathIPv4: {0, 2},
	FPathTCP:  {0, 2, 3},
	FPathUDP:  {0, 2, 4},
}

// fpathBytes returns the parsed byte count of a fixed path.
func fpathBytes(path int) int {
	n := 0
	for _, hi := range fpathHeaders[path] {
		h := fixedFamily[hi]
		n += widthOf(h) / 8
	}
	return n
}

func widthOf(h fixedHeader) int {
	w := 0
	for _, f := range h.fields {
		w += f.Width
	}
	return w
}

// fixedHeadersDecl emits the family's header types and instances.
func (b *builder) fixedHeadersDecl() {
	for _, h := range fixedFamily {
		b.prog.HeaderTypes = append(b.prog.HeaderTypes, &ast.HeaderType{
			Name: h.typ, Fields: h.fields,
		})
		b.prog.Instances = append(b.prog.Instances, &ast.Instance{
			Name: h.inst, TypeName: h.typ,
		})
	}
}

// fixedParserStates emits the concrete parse graph.
func (b *builder) fixedParserStates() {
	term := func(path int) []ast.ParserStmt {
		return []ast.ParserStmt{
			{SetField: fref(InstMeta, "fpath"), SetValue: cexpr(int64(path))},
			{SetField: fref(InstMeta, "parsed"), SetValue: cexpr(int64(fpathBytes(path)))},
		}
	}
	extract := func(inst string) ast.ParserStmt {
		return ast.ParserStmt{Extract: &ast.HeaderRef{Instance: inst, Index: ast.IndexNone}}
	}
	sel := func(field string, cases []ast.SelectCase) ast.ParserReturn {
		return ast.ParserReturn{
			Kind:       ast.ReturnSelect,
			SelectKeys: []ast.SelectKey{{Latest: field}},
			Cases:      cases,
		}
	}
	b.prog.ParserStates = append(b.prog.ParserStates,
		&ast.ParserState{
			Name:       "start",
			Statements: []ast.ParserStmt{extract("f_eth")},
			Return: sel("etype", []ast.SelectCase{
				{Values: bigs(0x0806), Masks: nils(1), State: "fp_arp"},
				{Values: bigs(0x0800), Masks: nils(1), State: "fp_ipv4"},
				{Default: true, State: "fp_eth_done"},
			}),
		},
		&ast.ParserState{
			Name:       "fp_eth_done",
			Statements: term(FPathEth),
			Return:     ast.ParserReturn{Kind: ast.ReturnDirect, State: ast.StateIngress},
		},
		&ast.ParserState{
			Name:       "fp_arp",
			Statements: append([]ast.ParserStmt{extract("f_arp")}, term(FPathARP)...),
			Return:     ast.ParserReturn{Kind: ast.ReturnDirect, State: ast.StateIngress},
		},
		&ast.ParserState{
			Name:       "fp_ipv4",
			Statements: []ast.ParserStmt{extract("f_ipv4")},
			Return: sel("proto", []ast.SelectCase{
				{Values: bigs(6), Masks: nils(1), State: "fp_tcp"},
				{Values: bigs(17), Masks: nils(1), State: "fp_udp"},
				{Default: true, State: "fp_ipv4_done"},
			}),
		},
		&ast.ParserState{
			Name:       "fp_ipv4_done",
			Statements: term(FPathIPv4),
			Return:     ast.ParserReturn{Kind: ast.ReturnDirect, State: ast.StateIngress},
		},
		&ast.ParserState{
			Name:       "fp_tcp",
			Statements: append([]ast.ParserStmt{extract("f_tcp")}, term(FPathTCP)...),
			Return:     ast.ParserReturn{Kind: ast.ReturnDirect, State: ast.StateIngress},
		},
		&ast.ParserState{
			Name:       "fp_udp",
			Statements: append([]ast.ParserStmt{extract("f_udp")}, term(FPathUDP)...),
			Return:     ast.ParserReturn{Kind: ast.ReturnDirect, State: ast.StateIngress},
		},
	)
}

// fixedNormWriteback emits the per-path assembly and write-back actions:
// assembly copies each parsed field into its position in the wide
// extracted-data proxy; write-back restores modified values before deparse.
func (b *builder) fixedNormWriteback() {
	ew := b.c.ExtractedWidth()
	var normActs, wbActs []string
	for path := FPathEth; path <= FPathUDP; path++ {
		norm := &ast.Action{Name: fmt.Sprintf("a_fnorm_%d", path)}
		wb := &ast.Action{Name: fmt.Sprintf("a_fwb_%d", path)}
		for _, hi := range fpathHeaders[path] {
			h := fixedFamily[hi]
			bitOff := h.offset * 8
			for _, f := range h.fields {
				sh := int64(ew - bitOff - f.Width)
				norm.Body = append(norm.Body,
					call("modify_field", fexpr(InstScratch, "tmp"), fexpr(h.inst, f.Name)),
					call("shift_left", fexpr(InstScratch, "tmp"), fexpr(InstScratch, "tmp"), cexpr(sh)),
					call("bit_or", fexpr(InstData, "extracted"), fexpr(InstData, "extracted"), fexpr(InstScratch, "tmp")),
				)
				wb.Body = append(wb.Body,
					call("shift_right", fexpr(InstScratch, "tmp"), fexpr(InstData, "extracted"), cexpr(sh)),
					call("modify_field", fexpr(h.inst, f.Name), fexpr(InstScratch, "tmp")),
				)
				bitOff += f.Width
			}
		}
		b.prog.Actions = append(b.prog.Actions, norm, wb)
		normActs = append(normActs, norm.Name)
		wbActs = append(wbActs, wb.Name)
	}
	b.prog.Tables = append(b.prog.Tables,
		&ast.Table{
			Name: TblNorm,
			Reads: []ast.ReadEntry{
				{Field: ptr(fref(InstMeta, "fpath")), Match: ast.MatchExact},
			},
			Actions: normActs,
			Size:    8,
		},
		&ast.Table{
			Name: TblWriteback,
			Reads: []ast.ReadEntry{
				{Field: ptr(fref(InstMeta, "fpath")), Match: ast.MatchExact},
			},
			Actions: wbActs,
			Size:    8,
		},
	)
}

// fixedBaseCommands installs the static rows of the fixed-parser machinery.
func fixedBaseCommands(c Config, sb *strings.Builder) {
	for path := FPathEth; path <= FPathUDP; path++ {
		fmt.Fprintf(sb, "table_add %s a_fnorm_%d %d =>\n", TblNorm, path, path)
		fmt.Fprintf(sb, "table_add %s a_fwb_%d %d =>\n", TblWriteback, path, path)
	}
}

func bigs(vals ...int64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = big.NewInt(v)
	}
	return out
}

func nils(n int) []*big.Int {
	return make([]*big.Int, n)
}
