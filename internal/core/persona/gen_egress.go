package persona

import (
	"fmt"
	"strings"

	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// virtnetAndEgress emits the virtual-networking table (§4.6) and the egress
// machinery: recirculation, parsed-representation resize, and write-back
// (§4.4).
func (b *builder) virtnetAndEgress() {
	// Virtual networking: map (program, virtual egress port) to a physical
	// port, a virtual link to another virtual device, or a drop.
	b.prog.Actions = append(b.prog.Actions,
		&ast.Action{
			Name:   ActPhysFwd,
			Params: []string{"port"},
			Body: []ast.PrimitiveCall{
				call("modify_field", fexpr(hlir.StandardMetadata, hlir.FieldEgressSpec), pexpr("port")),
			},
		},
		&ast.Action{
			Name:   ActVirtFwd,
			Params: []string{"next_program", "next_vingress", "port"},
			Body: []ast.PrimitiveCall{
				call("modify_field", fexpr(InstMeta, "program"), pexpr("next_program")),
				call("modify_field", fexpr(InstMeta, "vdev_ingress"), pexpr("next_vingress")),
				call("modify_field", fexpr(InstMeta, "recirc"), cexpr(1)),
				// The packet must traverse egress to reach the recirculation
				// point; send it to a harmless port.
				call("modify_field", fexpr(hlir.StandardMetadata, hlir.FieldEgressSpec), pexpr("port")),
			},
		},
		&ast.Action{
			Name: ActVDrop,
			Body: []ast.PrimitiveCall{call("drop")},
		},
	)
	b.prog.Tables = append(b.prog.Tables, &ast.Table{
		Name: TblVirtnet,
		Reads: []ast.ReadEntry{
			{Field: ptr(fref(InstMeta, "program")), Match: ast.MatchExact},
			{Field: ptr(fref(InstMeta, "vdev_port")), Match: ast.MatchExact},
		},
		Actions: []string{ActPhysFwd, ActVirtFwd, ActMcastStart, ActVDrop},
		Default: ActVDrop,
		Size:    256,
	})

	// Recirculation trigger (egress).
	b.prog.Actions = append(b.prog.Actions, &ast.Action{
		Name: ActDoRecirc,
		Body: []ast.PrimitiveCall{
			call("modify_field", fexpr(InstMeta, "recirc"), cexpr(0)),
			call("recirculate", nexpr(FLRecirc)),
		},
	})
	b.prog.Tables = append(b.prog.Tables, &ast.Table{
		Name:    TblRecirc,
		Actions: []string{ActDoRecirc},
		Default: ActDoRecirc,
		Size:    1,
	})

	// Sticky-drop enforcement: packets flagged by a_exec_drop bypass the
	// virtual network entirely.
	b.prog.Tables = append(b.prog.Tables, &ast.Table{
		Name:    TblDropped,
		Actions: []string{ActVDrop},
		Default: ActVDrop,
		Size:    1,
	})

	b.csumMachinery()

	if b.c.FixedParser {
		return
	}

	// Resize: force the parsed representation to wb_bytes one-byte headers
	// (the "80 actions that each resize the parsed representation" of §6.2).
	for _, n := range b.c.ByteCounts() {
		a := &ast.Action{Name: ResizeAction(n)}
		for i := 0; i < n; i++ {
			a.Body = append(a.Body, call("add_header", ast.Expr{Kind: ast.ExprHeader, Header: ast.HeaderRef{Instance: InstExt, Index: i}}))
		}
		for i := n; i < b.c.ParseMax; i++ {
			a.Body = append(a.Body, call("remove_header", ast.Expr{Kind: ast.ExprHeader, Header: ast.HeaderRef{Instance: InstExt, Index: i}}))
		}
		b.prog.Actions = append(b.prog.Actions, a)
	}
	var resizeActs, wbActs []string
	for _, n := range b.c.ByteCounts() {
		resizeActs = append(resizeActs, ResizeAction(n))
		wbActs = append(wbActs, WritebackAction(n))
	}
	b.prog.Tables = append(b.prog.Tables, &ast.Table{
		Name: TblResize,
		Reads: []ast.ReadEntry{
			{Field: ptr(fref(InstMeta, "wb_bytes")), Match: ast.MatchExact},
		},
		Actions: resizeActs,
		Size:    len(b.c.ByteCounts()) + 1,
	})

	// Write-back (§4.4): copy the proxy metadata field back into the stack
	// of one-byte headers before deparsing.
	ew := b.c.ExtractedWidth()
	for _, n := range b.c.ByteCounts() {
		a := &ast.Action{Name: WritebackAction(n)}
		for i := 0; i < n; i++ {
			sh := int64(ew - 8*(i+1))
			a.Body = append(a.Body,
				call("shift_right", fexpr(InstScratch, "tmp"), fexpr(InstData, "extracted"), cexpr(sh)),
				call("modify_field", fexprIdx(InstExt, i, "b"), fexpr(InstScratch, "tmp")),
			)
		}
		b.prog.Actions = append(b.prog.Actions, a)
	}
	b.prog.Tables = append(b.prog.Tables, &ast.Table{
		Name: TblWriteback,
		Reads: []ast.ReadEntry{
			{Field: ptr(fref(InstMeta, "wb_bytes")), Match: ast.MatchExact},
		},
		Actions: wbActs,
		Size:    len(b.c.ByteCounts()) + 1,
	})
}

// csumMachinery emits the IPv4 header-checksum fix-up of §5.3 ("we can
// 'cheat' by directly adding support for the checksum requirements of well
// known protocols. This is what we have done with the IPv4 checksum field."):
// an egress table whose per-program entries recompute a csum16 over ten
// 16-bit words of the extracted-data field.
func (b *builder) csumMachinery() {
	ext := fexpr(InstData, "extracted")
	tmp := fexpr(InstScratch, "tmp")
	acc := fexpr(InstScratch, "acc")
	slshift := fexpr(InstScratch, "slshift")

	a := &ast.Action{
		Name: "a_ipv4_csum",
		// ncmask zeroes the checksum field; shift0 right-aligns word 0 of
		// the header; cshift left-aligns the result into the checksum field.
		Params: []string{"ncmask", "shift0", "cshift"},
		Body: []ast.PrimitiveCall{
			call("bit_and", ext, ext, pexpr("ncmask")),
			call("modify_field", acc, cexpr(0)),
			call("modify_field", slshift, pexpr("shift0")),
		},
	}
	for i := 0; i < 10; i++ {
		a.Body = append(a.Body,
			call("shift_right", tmp, ext, slshift),
			call("bit_and", tmp, tmp, cexpr(0xffff)),
			call("add_to_field", acc, tmp),
			call("subtract_from_field", slshift, cexpr(16)),
		)
	}
	for i := 0; i < 3; i++ {
		a.Body = append(a.Body,
			call("shift_right", tmp, acc, cexpr(16)),
			call("bit_and", acc, acc, cexpr(0xffff)),
			call("add_to_field", acc, tmp),
		)
	}
	a.Body = append(a.Body,
		call("bit_xor", acc, acc, cexpr(0xffff)),
		call("modify_field", tmp, acc),
		call("shift_left", tmp, tmp, pexpr("cshift")),
		call("bit_or", ext, ext, tmp),
	)
	b.prog.Actions = append(b.prog.Actions, a)
	b.prog.Tables = append(b.prog.Tables, &ast.Table{
		Name: TblCsum,
		Reads: []ast.ReadEntry{
			{Field: ptr(fref(InstMeta, "program")), Match: ast.MatchExact},
		},
		Actions: []string{"a_ipv4_csum"},
		Size:    64,
	})
}

// controls assembles the ingress and egress control flow of Figure 6.
func (b *builder) controls() {
	var ing []ast.Stmt
	// Setup phase: assemble bytes, assign a virtual device, police the
	// device's buffer share (§4.5), walk the emulated parse tree.
	ing = append(ing, applyStmt(TblNorm))
	ing = append(ing, ifEq(InstMeta, "program", 0, applyStmt(TblAssign)))
	ing = append(ing, applyStmt(TblPolice))

	var guarded []ast.Stmt
	guarded = append(guarded, applyStmt(TblParseCtrl))
	// Match-action phase: K unrolled stages.
	for i := 1; i <= b.c.Stages; i++ {
		stage := b.stageDispatch(i)
		guarded = append(guarded, ifNe(InstMeta, "next_table", NTDone, stage...))
	}
	// Virtual networking phase (dropped packets bypass it).
	dropStmt := ifEq(InstMeta, "dropped", 1, applyStmt(TblDropped))
	dropStmt.Else = []ast.Stmt{applyStmt(TblVirtnet)}
	guarded = append(guarded, dropStmt)

	// Red packets are cut off before the parse loop so they cannot consume
	// further buffer passes through resubmission.
	police := ifNe(InstMeta, "color", 2, guarded...)
	police.Else = []ast.Stmt{applyStmt(TblPoliceDrop)}
	ing = append(ing, police)
	b.prog.Controls = append(b.prog.Controls, &ast.Control{Name: ast.ControlIngress, Body: ing})

	var eg []ast.Stmt
	eg = append(eg, ifEq(InstMeta, "csum", 1, applyStmt(TblCsum)))
	if !b.c.FixedParser {
		eg = append(eg, applyStmt(TblResize))
	}
	eg = append(eg, applyStmt(TblWriteback))
	// Virtual multicast (§4.6): the clone walks the sequence, the original
	// recirculates into the current target.
	cloneBranch := ifEq(hlir.StandardMetadata, hlir.FieldInstanceType, 2, applyStmt(TblMcastClone))
	cloneBranch.Else = []ast.Stmt{applyStmt(TblMcastOrig)}
	eg = append(eg, ifNe(InstMeta, "mcast", 0, cloneBranch))
	eg = append(eg, ifEq(InstMeta, "recirc", 1, applyStmt(TblRecirc)))
	b.prog.Controls = append(b.prog.Controls, &ast.Control{Name: ast.ControlEgress, Body: eg})
}

// stageDispatch emits one emulated stage: dispatch on next_table to the
// right match-table kind, then the primitive slots.
func (b *builder) stageDispatch(i int) []ast.Stmt {
	// Nested if/else chain over the match-table kinds.
	var dispatch ast.Stmt
	for k := len(StageKinds) - 1; k >= 0; k-- {
		kind := StageKinds[k]
		s := ifEq(InstMeta, "next_table", int64(kind.Code), applyStmt(StageTable(i, kind.Name)))
		if k < len(StageKinds)-1 {
			s.Else = []ast.Stmt{dispatch}
		}
		dispatch = s
	}
	out := []ast.Stmt{dispatch}
	for p := 1; p <= b.c.Primitives; p++ {
		out = append(out, ifNe(InstMeta, "prims_left", 0,
			applyStmt(PrimTable(i, p, "prep")),
			applyStmt(PrimTable(i, p, "exec")),
			applyStmt(PrimTable(i, p, "done")),
		))
	}
	return out
}

// baseCommands produces the persona's static entries: primitive-type
// dispatch rows, byte normalization rows, and resize/write-back rows. These
// are installed once, right after loading the persona, regardless of which
// programs it will emulate.
func baseCommands(c Config) string {
	var sb strings.Builder
	sb.WriteString("# HyPer4 persona base entries (generated)\n")
	if c.FixedParser {
		fixedBaseCommands(c, &sb)
	} else {
		for _, n := range c.ByteCounts() {
			fmt.Fprintf(&sb, "table_add %s %s %d =>\n", TblNorm, NormAction(n), n)
			fmt.Fprintf(&sb, "table_add %s %s %d =>\n", TblResize, ResizeAction(n), n)
			fmt.Fprintf(&sb, "table_add %s %s %d =>\n", TblWriteback, WritebackAction(n), n)
		}
	}
	for i := 1; i <= c.Stages; i++ {
		for p := 1; p <= c.Primitives; p++ {
			for _, op := range Opcodes {
				fmt.Fprintf(&sb, "table_add %s a_exec_%s %d =>\n", PrimTable(i, p, "exec"), op.Name, op.Code)
			}
			fmt.Fprintf(&sb, "table_set_default %s %s\n", PrimTable(i, p, "done"), ActPrimDone)
		}
	}
	fmt.Fprintf(&sb, "table_set_default %s %s\n", TblVirtnet, ActVDrop)
	fmt.Fprintf(&sb, "table_set_default %s %s\n", TblRecirc, ActDoRecirc)
	fmt.Fprintf(&sb, "table_set_default %s %s\n", TblDropped, ActVDrop)
	fmt.Fprintf(&sb, "table_set_default %s %s\n", TblPolice, ActPolice)
	fmt.Fprintf(&sb, "table_set_default %s %s\n", TblPoliceDrop, ActVDrop)
	return sb.String()
}
