package persona

import (
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// extensions emits the persona machinery for the paper's sketched-but-not-
// built features:
//
//   - Virtual multicast (§4.6): "a combination of P4's clone and
//     recirculate primitives … one of the packet clones is sent back to the
//     parser … the other packet clone is sent back to the start of the
//     egress pipeline, with the program ID serving as a loop counter".
//     Here the loop counter is the dedicated hp4.mcast sequence field: the
//     original copy of each egress pass recirculates into the current
//     target device while the egress-to-egress clone carries the sequence
//     to the next target; the last step stops cloning.
//
//   - Ingress policing (§4.5's proposed mitigation): "rely on a meter in
//     HyPer4 at the beginning of the ingress pipeline that drops traffic
//     above a threshold for a given virtual device". A per-program meter is
//     executed every pass (recirculated traffic consumes buffer too) and
//     red packets are dropped.
func (b *builder) extensions() {
	// --- virtual multicast ---
	b.prog.Actions = append(b.prog.Actions,
		&ast.Action{
			Name:   ActMcastStart,
			Params: []string{"next_program", "next_vingress", "mseq", "port"},
			Body: []ast.PrimitiveCall{
				call("modify_field", fexpr(InstMeta, "program"), pexpr("next_program")),
				call("modify_field", fexpr(InstMeta, "vdev_ingress"), pexpr("next_vingress")),
				call("modify_field", fexpr(InstMeta, "mcast"), pexpr("mseq")),
				call("modify_field", fexpr(InstMeta, "recirc"), cexpr(1)),
				call("modify_field", fexpr(hlir.StandardMetadata, hlir.FieldEgressSpec), pexpr("port")),
			},
		},
		&ast.Action{
			Name:   ActMcastClone,
			Params: []string{"session"},
			Body: []ast.PrimitiveCall{
				call("clone_egress_pkt_to_egress", pexpr("session"), nexpr(FLRecirc)),
			},
		},
		// The clone arrives with hp4.recirc already consumed by the previous
		// pass's a_do_recirc, so each step re-arms recirculation for itself.
		&ast.Action{
			Name:   ActMcastStep,
			Params: []string{"next_program", "next_vingress", "next_seq", "session"},
			Body: []ast.PrimitiveCall{
				call("modify_field", fexpr(InstMeta, "program"), pexpr("next_program")),
				call("modify_field", fexpr(InstMeta, "vdev_ingress"), pexpr("next_vingress")),
				call("modify_field", fexpr(InstMeta, "mcast"), pexpr("next_seq")),
				call("modify_field", fexpr(InstMeta, "recirc"), cexpr(1)),
				call("clone_egress_pkt_to_egress", pexpr("session"), nexpr(FLRecirc)),
			},
		},
		&ast.Action{
			Name:   ActMcastLast,
			Params: []string{"next_program", "next_vingress"},
			Body: []ast.PrimitiveCall{
				call("modify_field", fexpr(InstMeta, "program"), pexpr("next_program")),
				call("modify_field", fexpr(InstMeta, "vdev_ingress"), pexpr("next_vingress")),
				call("modify_field", fexpr(InstMeta, "mcast"), cexpr(0)),
				call("modify_field", fexpr(InstMeta, "recirc"), cexpr(1)),
			},
		},
	)
	b.prog.Tables = append(b.prog.Tables,
		&ast.Table{
			Name: TblMcastOrig,
			Reads: []ast.ReadEntry{
				{Field: ptr(fref(InstMeta, "mcast")), Match: ast.MatchExact},
			},
			Actions: []string{ActMcastClone},
			Size:    64,
		},
		&ast.Table{
			Name: TblMcastClone,
			Reads: []ast.ReadEntry{
				{Field: ptr(fref(InstMeta, "mcast")), Match: ast.MatchExact},
			},
			Actions: []string{ActMcastStep, ActMcastLast},
			Size:    64,
		},
	)

	// --- ingress policing and per-device traffic monitoring ---
	// The same always-applied stage also counts each pipeline pass per
	// virtual device — the "traffic monitoring" feature of §1's use cases.
	b.prog.Meters = append(b.prog.Meters, &ast.Meter{
		Name:          MeterIngress,
		Kind:          ast.MeterPackets,
		InstanceCount: 256,
	})
	b.prog.Counters = append(b.prog.Counters, &ast.Counter{
		Name:          CounterVDev,
		Kind:          ast.CounterPackets,
		InstanceCount: 256,
	})
	b.prog.Actions = append(b.prog.Actions, &ast.Action{
		Name: ActPolice,
		Body: []ast.PrimitiveCall{
			call("execute_meter", nexpr(MeterIngress), fexpr(InstMeta, "program"), fexpr(InstMeta, "color")),
			call("count", nexpr(CounterVDev), fexpr(InstMeta, "program")),
		},
	})
	b.prog.Tables = append(b.prog.Tables,
		&ast.Table{
			Name:    TblPolice,
			Actions: []string{ActPolice},
			Default: ActPolice,
			Size:    1,
		},
		&ast.Table{
			Name:    TblPoliceDrop,
			Actions: []string{ActVDrop},
			Default: ActVDrop,
			Size:    1,
		},
	)
}
