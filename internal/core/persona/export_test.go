package persona

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPersonaSourceInSync keeps the browsable generated persona under
// p4src/ identical to what Generate produces for the reference
// configuration. Regenerate with
//
//	HP4_UPDATE_P4=1 go test ./internal/core/persona -run TestPersonaSourceInSync
func TestPersonaSourceInSync(t *testing.T) {
	p, err := Generate(Reference)
	if err != nil {
		t.Fatal(err)
	}
	partial := Reference
	partial.FixedParser = true
	pp, err := Generate(partial)
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join("..", "..", "..", "p4src")
	files := map[string]string{
		"hyper4_persona.p4":         p.Source,
		"hyper4_base_commands.txt":  p.BaseCommands,
		"hyper4_persona_partial.p4": pp.Source,
	}
	update := os.Getenv("HP4_UPDATE_P4") != ""
	for name, want := range files {
		path := filepath.Join(root, name)
		if update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (set HP4_UPDATE_P4=1 to regenerate)", path, err)
		}
		if string(got) != want {
			t.Errorf("%s out of sync (set HP4_UPDATE_P4=1 to regenerate)", path)
		}
	}
}
