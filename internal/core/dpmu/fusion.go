package dpmu

// The DPMU owns the fused fast path's cache lifecycle (DESIGN.md §13):
// every control-plane mutation that can change what a compiled plan would
// do — table writes, loads/unloads, assignment changes, snapshot
// activation, checkpoint rollback, health-driven bypass rewiring — funnels
// through rebuildFusionLocked, which recompiles the engine against the
// switch's current write generation and atomically swaps it in. The engine
// itself also records the generation it was built from and declines any
// packet once the live value differs, so even a missed rebuild degrades to
// the interpreter, never to divergence.

import (
	"sort"

	"hyper4/internal/core/fuse"
	"hyper4/internal/core/verify"
)

// FusionVDev is one vdev's fusion state in a FusionStatus.
type FusionVDev struct {
	Name  string `json:"name"`
	PID   int    `json:"pid"`
	Fused bool   `json:"fused"`
}

// FusionStatus is the operator-visible state of the fused fast path,
// surfaced through the ctl `fuse` read.
type FusionStatus struct {
	Enabled    bool             `json:"enabled"`
	Plans      int              `json:"plans"`
	Builds     uint64           `json:"builds"`
	Generation uint64           `json:"generation"`
	FastHits   uint64           `json:"fast_hits"` // packets fused since the last rebuild
	VDevs      []FusionVDev     `json:"vdevs,omitempty"`
	Findings   []verify.Finding `json:"findings,omitempty"`
}

// SetFusion enables or disables the fused fast path. Enabling compiles
// plans for every loaded vdev immediately; disabling uninstalls the engine
// so every packet takes the interpreted pipeline again.
func (d *DPMU) SetFusion(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fusion = on
	if !on {
		d.SW.SetFastPath(nil)
		d.fusionEngine = nil
		d.fusionBuilt = false
		d.fuseFindings = nil
		return
	}
	d.fusionBuilt = false // force a rebuild even at an unchanged generation
	d.rebuildFusionLocked()
}

// FusionEnabled reports whether the fused fast path is on.
func (d *DPMU) FusionEnabled() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.fusion
}

// rebuildFusionLocked recompiles the fused engine if the switch's write
// generation moved since the last build. Callers hold d.mu; every DPMU
// mutator defers this right after taking the lock, so the check must stay
// cheap when nothing changed (one atomic load and a compare).
func (d *DPMU) rebuildFusionLocked() {
	if !d.fusion {
		return
	}
	gen := d.SW.Generation()
	if d.fusionBuilt && d.fusionGen == gen {
		return
	}
	eng, findings := fuse.Build(d.SW, d.cfg, d.fuseVDevsLocked())
	d.fusionEngine = eng
	d.fuseFindings = findings
	d.fusionGen = gen
	d.fusionBuilt = true
	d.fusionBuilds++
	if eng == nil {
		d.SW.SetFastPath(nil)
		return
	}
	d.SW.SetFastPath(eng)
}

func (d *DPMU) fuseVDevsLocked() []fuse.VDev {
	vds := make([]fuse.VDev, 0, len(d.vdevs))
	for _, name := range d.vdevNames() {
		vds = append(vds, fuse.VDev{Name: name, PID: d.vdevs[name].PID})
	}
	return vds
}

// FusionStatus reports the fast path's current state.
func (d *DPMU) FusionStatus() FusionStatus {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st := FusionStatus{
		Enabled:    d.fusion,
		Builds:     d.fusionBuilds,
		Generation: d.fusionGen,
		Findings:   append([]verify.Finding(nil), d.fuseFindings...),
	}
	if d.fusionEngine != nil {
		st.FastHits = d.fusionEngine.Hits()
	}
	for _, name := range d.vdevNames() {
		v := d.vdevs[name]
		fused := d.fusionEngine != nil && d.fusionEngine.Fused(v.PID)
		if fused {
			st.Plans++
		}
		st.VDevs = append(st.VDevs, FusionVDev{Name: name, PID: v.PID, Fused: fused})
	}
	return st
}

// FuseReport runs the fuser's analysis without installing anything,
// returning the informational findings that explain which constructs keep
// each vdev (or parts of it) off the fast path. It works whether or not
// fusion is enabled, so lint surfaces can always answer "why is this
// tenant slow".
func (d *DPMU) FuseReport() []verify.Finding {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, findings := fuse.Build(d.SW, d.cfg, d.fuseVDevsLocked())
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].VDev != findings[j].VDev {
			return findings[i].VDev < findings[j].VDev
		}
		return findings[i].Table < findings[j].Table
	})
	return findings
}
