package dpmu

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/persona"
	"hyper4/internal/sim"
)

// VPortRef names a virtual ingress point: a device and the virtual port the
// packet appears to arrive on.
type VPortRef struct {
	VDev     string
	VIngress int
}

// nextMcastSeq and nextSession counters live on the DPMU.

// MulticastGroup makes traffic a device sends to one of its virtual egress
// ports fan out to several virtual devices — the §4.6 virtual multicast.
// Each delivery consumes one recirculation; the sequence is walked by
// egress-to-egress clones carrying the hp4.mcast loop counter.
func (d *DPMU) MulticastGroup(owner, vdev string, vport int, targets []VPortRef) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	from, err := d.auth(owner, vdev)
	if err != nil {
		return err
	}
	if len(targets) == 0 {
		return fmt.Errorf("dpmu: multicast group needs at least one target: %w", ErrInvalid)
	}
	pids := make([]int, len(targets))
	for i, t := range targets {
		tv, ok := d.vdevs[t.VDev]
		if !ok {
			return fmt.Errorf("dpmu: no virtual device %q: %w", t.VDev, ErrNotFound)
		}
		pids[i] = tv.PID
	}
	if len(targets) == 1 {
		// Degenerate group: a plain virtual link.
		return d.linkVPorts(owner, vdev, vport, targets[0].VDev, targets[0].VIngress)
	}

	// One sequence ID per step and one clone session shared by the group.
	seqs := make([]uint64, len(targets))
	for i := range seqs {
		d.nextMcast++
		seqs[i] = uint64(d.nextMcast)
	}
	d.nextSession++
	session := d.nextSession
	d.SW.SetMirror(session, 0)

	var rows []pentry
	fail := func(err error) error {
		d.removeRows(rows)
		return err
	}
	// Entry point: virtnet routes (pid, vport) to the first target and arms
	// sequence step 1.
	params := []sim.MatchParam{
		sim.ExactUint(persona.ProgramWidth, uint64(from.PID)),
		sim.ExactUint(persona.VPortWidth, uint64(vport)),
	}
	args := []bitfield.Value{
		bitfield.FromUint(persona.ProgramWidth, uint64(pids[0])),
		bitfield.FromUint(persona.VPortWidth, uint64(targets[0].VIngress)),
		bitfield.FromUint(persona.McastWidth, seqs[0]),
		bitfield.FromUint(9, 0),
	}
	if err := d.addRow(&rows, persona.TblVirtnet, persona.ActMcastStart, params, args, 0); err != nil {
		return fail(err)
	}
	// The original of the first egress pass just spawns the clone.
	if err := d.addRow(&rows, persona.TblMcastOrig, persona.ActMcastClone,
		[]sim.MatchParam{sim.ExactUint(persona.McastWidth, seqs[0])},
		[]bitfield.Value{bitfield.FromUint(32, uint64(session))}, 0); err != nil {
		return fail(err)
	}
	// Each clone pass steps the sequence to the next target; the final step
	// stops cloning.
	for i := 1; i < len(targets); i++ {
		key := []sim.MatchParam{sim.ExactUint(persona.McastWidth, seqs[i-1])}
		if i < len(targets)-1 {
			args := []bitfield.Value{
				bitfield.FromUint(persona.ProgramWidth, uint64(pids[i])),
				bitfield.FromUint(persona.VPortWidth, uint64(targets[i].VIngress)),
				bitfield.FromUint(persona.McastWidth, seqs[i]),
				bitfield.FromUint(32, uint64(session)),
			}
			if err := d.addRow(&rows, persona.TblMcastClone, persona.ActMcastStep, key, args, 0); err != nil {
				return fail(err)
			}
		} else {
			args := []bitfield.Value{
				bitfield.FromUint(persona.ProgramWidth, uint64(pids[i])),
				bitfield.FromUint(persona.VPortWidth, uint64(targets[i].VIngress)),
			}
			if err := d.addRow(&rows, persona.TblMcastClone, persona.ActMcastLast, key, args, 0); err != nil {
				return fail(err)
			}
		}
	}
	from.links = append(from.links, rows...)
	return nil
}

// SetRateLimit configures the §4.5 ingress meter for a virtual device:
// above yellowAt packets per window the device's traffic is marked yellow,
// above redAt it is dropped before it can consume further pipeline passes.
// Windows advance with TickMeters.
func (d *DPMU) SetRateLimit(owner, vdev string, yellowAt, redAt uint64) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return err
	}
	return d.SW.MeterSetRates(persona.MeterIngress, v.PID, yellowAt, redAt)
}

// TickMeters starts a new metering window for every virtual device.
func (d *DPMU) TickMeters() error {
	return d.SW.MeterTick(persona.MeterIngress)
}

// TrafficStats reports the pipeline passes and bytes a virtual device has
// consumed (each resubmission and recirculation counts — the quantity that
// matters for fair sharing of the ingress buffer, §4.5).
func (d *DPMU) TrafficStats(owner, vdev string) (packets, bytes uint64, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return 0, 0, err
	}
	return d.SW.CounterRead(persona.CounterVDev, v.PID)
}

// ResetTrafficStats zeroes a device's traffic counters.
func (d *DPMU) ResetTrafficStats(owner, vdev string) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return err
	}
	return d.SW.CounterReset(persona.CounterVDev, v.PID)
}
