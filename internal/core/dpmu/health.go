package dpmu

// Per-vdev fault containment: the DPMU subscribes to the persona switch's
// packet faults (sim.SetFaultHook), attributes each fault to the virtual
// device whose program ID the packet carried, and runs a circuit breaker per
// device. Too many faults inside a sliding window trip the breaker: the
// device is quarantined — its passes dropped lock-free by the sim layer, or
// its position in a composed chain bypassed, per policy — until a half-open
// probe phase lets a bounded number of packets through; if they complete
// cleanly the device is restored automatically.
//
// Locking: onFault runs on the packet path while the switch's control-plane
// read lock is held, so it must never acquire d.mu (management ops hold d.mu
// while waiting for the switch write lock — a writer waiting on an RWMutex
// blocks new readers, so hook → d.mu would deadlock). The tracker therefore
// has its own leaf mutex; everything the hook touches (the pid map, fault
// windows, the sim quarantine table — the latter lock-free atomics) is
// reachable under that mutex alone. Time-based transitions (quarantined →
// probing → healthy) and bypass rewiring need d.mu and happen in SyncHealth,
// called from every health query and management surface. Lock order: d.mu
// before health.mu, never the reverse — and, for the same reason the hook
// cannot take d.mu, the switch write lock must never be requested while
// health.mu is held: a faulting packet holds the switch read lock and blocks
// on health.mu in onFault, while a pending switch writer blocks waiting for
// that reader to drain. Bypass rewiring therefore collects its decisions
// under health.mu, releases it, and performs the table writes under d.mu
// alone (see syncHealthLocked / ResetHealth).

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hyper4/internal/sim"
)

// HealthState is a virtual device's breaker state.
type HealthState string

const (
	// Healthy: no faults inside the current window.
	Healthy HealthState = "healthy"
	// Degraded: faulting, but below the trip threshold.
	Degraded HealthState = "degraded"
	// Quarantined: breaker tripped; the device's passes are contained.
	Quarantined HealthState = "quarantined"
	// Probing: half-open; a bounded number of probe passes are let through.
	Probing HealthState = "probing"
)

// QuarantinePolicy selects what containment does to a quarantined device's
// traffic.
type QuarantinePolicy string

const (
	// PolicyDrop drops every pass attributed to the quarantined device.
	PolicyDrop QuarantinePolicy = "drop"
	// PolicyBypass additionally rewires virtual links around the device
	// (single-successor chains only), so a composed chain keeps forwarding
	// while the faulty middle hop is out. Traffic entering the device from
	// physical port assignments still drops.
	PolicyBypass QuarantinePolicy = "bypass"
)

// HealthConfig tunes the per-vdev circuit breaker.
type HealthConfig struct {
	Window       time.Duration    // sliding fault-rate window
	TripFaults   int              // faults within Window that trip the breaker
	OpenFor      time.Duration    // quarantine time before half-open probing
	ProbePackets int              // clean probe passes required to close
	Policy       QuarantinePolicy // what quarantine does to traffic
}

// DefaultHealthConfig returns the breaker defaults.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		Window:       10 * time.Second,
		TripFaults:   5,
		OpenFor:      5 * time.Second,
		ProbePackets: 10,
		Policy:       PolicyDrop,
	}
}

// ParseQuarantinePolicy validates an operator-supplied policy string.
// Anything but the exact "drop"/"bypass" spellings is an error, so a typo
// can't silently run the switch under the wrong containment policy.
func ParseQuarantinePolicy(s string) (QuarantinePolicy, error) {
	switch p := QuarantinePolicy(s); p {
	case PolicyDrop, PolicyBypass:
		return p, nil
	}
	return "", fmt.Errorf("dpmu: unknown quarantine policy %q (want %q or %q)", s, PolicyDrop, PolicyBypass)
}

// sanitize fills zero fields with defaults so a partially specified config
// can't divide by zero or trip instantly. Only the empty policy is coerced
// (to the default, drop) — operator-facing strings are validated up front by
// ParseQuarantinePolicy; an unknown value that slips in programmatically
// behaves as drop at runtime (only PolicyBypass enables rewiring).
func (c HealthConfig) sanitize() HealthConfig {
	def := DefaultHealthConfig()
	if c.Window <= 0 {
		c.Window = def.Window
	}
	if c.TripFaults <= 0 {
		c.TripFaults = def.TripFaults
	}
	if c.OpenFor <= 0 {
		c.OpenFor = def.OpenFor
	}
	if c.ProbePackets <= 0 {
		c.ProbePackets = def.ProbePackets
	}
	if c.Policy == "" {
		c.Policy = def.Policy
	}
	return c
}

// VDevHealth is one device's health, as exposed on /v1/health and the
// hyper4_vdev_health gauge.
type VDevHealth struct {
	VDev         string      `json:"vdev"`
	PID          int         `json:"pid"`
	State        HealthState `json:"state"`
	Faults       int64       `json:"faults"`       // lifetime attributed faults
	Trips        int64       `json:"trips"`        // lifetime breaker trips
	WindowFaults int         `json:"windowFaults"` // faults inside the current window
	LastKind     string      `json:"lastFaultKind,omitempty"`
	LastFault    string      `json:"lastFault,omitempty"`
	LastFaultAt  time.Time   `json:"lastFaultAt,omitempty"`
	ProbesLeft   int64       `json:"probesLeft,omitempty"` // remaining half-open budget
	Bypassed     bool        `json:"bypassed,omitempty"`   // links rewired around the device
}

// HealthSnapshot is the full health report.
type HealthSnapshot struct {
	VDevs        []VDevHealth `json:"vdevs"`
	Unattributed int64        `json:"unattributed"` // faults with no owning vdev
}

// vdevHealth is the tracker's mutable per-device record.
type vdevHealth struct {
	name string
	pid  uint64

	state  HealthState
	window []time.Time // attributed fault times inside the sliding window

	faults   int64
	trips    int64
	lastKind sim.FaultKind
	lastMsg  string
	lastAt   time.Time

	trippedAt   time.Time
	probeStart  time.Time
	probeBudget int64
	probeFresh  bool // probe budget not yet pushed into the sim quarantine table
	bypassed    bool
}

func (v *vdevHealth) pruneWindow(now time.Time, window time.Duration) {
	cut := now.Add(-window)
	i := 0
	for i < len(v.window) && !v.window[i].After(cut) {
		i++
	}
	if i > 0 {
		v.window = append(v.window[:0], v.window[i:]...)
	}
}

func (v *vdevHealth) trip(now time.Time) {
	v.state = Quarantined
	v.trips++
	v.trippedAt = now
	v.window = v.window[:0]
}

// healthTracker is the DPMU's breaker state, guarded by its own leaf mutex
// (see the package comment above for why it cannot share d.mu).
type healthTracker struct {
	mu     sync.Mutex
	cfg    HealthConfig
	now    func() time.Time
	byName map[string]*vdevHealth
	byPID  map[uint64]*vdevHealth

	unattributed int64
	notify       func(vdev string, state HealthState)
}

func (h *healthTracker) init() {
	h.cfg = DefaultHealthConfig()
	h.now = time.Now
	h.byName = map[string]*vdevHealth{}
	h.byPID = map[uint64]*vdevHealth{}
}

// sortedLocked returns the records in stable name order.
func (h *healthTracker) sortedLocked() []*vdevHealth {
	out := make([]*vdevHealth, 0, len(h.byName))
	for _, v := range h.byName {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// rebuildQuarantineLocked pushes the breaker states into the sim layer's
// lock-free quarantine table. Probing devices keep their partially consumed
// budgets unless the budget was just (re)issued.
func (h *healthTracker) rebuildQuarantineLocked(sw *sim.Switch) {
	budgets := map[uint64]int64{}
	for _, v := range h.byName {
		switch v.state {
		case Quarantined:
			budgets[v.pid] = 0
		case Probing:
			b := v.probeBudget
			if !v.probeFresh {
				if rem, ok := sw.QuarantineRemaining(v.pid); ok {
					b = max(rem, 0)
				}
			}
			budgets[v.pid] = b
			v.probeFresh = false
		}
	}
	sw.SetQuarantine(budgets)
}

// SetHealthConfig replaces the breaker configuration (zero fields take
// defaults). Existing breaker state is kept.
func (d *DPMU) SetHealthConfig(cfg HealthConfig) {
	d.health.mu.Lock()
	d.health.cfg = cfg.sanitize()
	d.health.mu.Unlock()
}

// HealthConfigured returns the active breaker configuration.
func (d *DPMU) HealthConfigured() HealthConfig {
	d.health.mu.Lock()
	defer d.health.mu.Unlock()
	return d.health.cfg
}

// SetHealthClock overrides the tracker's time source (tests).
func (d *DPMU) SetHealthClock(now func() time.Time) {
	d.health.mu.Lock()
	d.health.now = now
	d.health.mu.Unlock()
}

// SetHealthNotify installs a callback fired on every breaker transition
// (degraded/quarantined/probing/healthy). It may be invoked from the packet
// path and must not call back into the DPMU or the switch control plane.
func (d *DPMU) SetHealthNotify(fn func(vdev string, state HealthState)) {
	d.health.mu.Lock()
	d.health.notify = fn
	d.health.mu.Unlock()
}

// registerHealth / unregisterHealth track vdev lifecycle (called with d.mu
// held from Load/Unload/rollback).
func (d *DPMU) registerHealth(name string, pid int) {
	h := &d.health
	h.mu.Lock()
	v := &vdevHealth{name: name, pid: uint64(pid), state: Healthy}
	h.byName[name] = v
	h.byPID[v.pid] = v
	h.mu.Unlock()
}

func (d *DPMU) unregisterHealth(name string) {
	h := &d.health
	h.mu.Lock()
	if v, ok := h.byName[name]; ok {
		delete(h.byName, name)
		delete(h.byPID, v.pid)
		h.rebuildQuarantineLocked(d.SW)
	}
	h.mu.Unlock()
}

// resyncHealth reconciles the tracker with the live vdev set after a
// rollback: records for vanished devices are dropped, new devices start
// healthy, surviving devices keep their breaker state. Bypass flags reset so
// the next SyncHealth re-enforces rewiring against the restored rows.
func (d *DPMU) resyncHealth() {
	h := &d.health
	h.mu.Lock()
	fresh := make(map[string]*vdevHealth, len(d.vdevs))
	freshPID := make(map[uint64]*vdevHealth, len(d.vdevs))
	for name, dev := range d.vdevs {
		pid := uint64(dev.PID)
		v := h.byName[name]
		if v == nil || v.pid != pid {
			v = &vdevHealth{name: name, pid: pid, state: Healthy}
		}
		v.bypassed = false
		fresh[name] = v
		freshPID[pid] = v
	}
	h.byName = fresh
	h.byPID = freshPID
	h.rebuildQuarantineLocked(d.SW)
	h.mu.Unlock()
}

// onFault is the sim fault hook. It runs on the packet path under the
// switch's read lock: leaf mutex only, no d.mu (see package comment).
func (d *DPMU) onFault(f *sim.PacketFault) {
	h := &d.health
	h.mu.Lock()
	v := h.byPID[f.Attr]
	if v == nil {
		h.unattributed++
		h.mu.Unlock()
		return
	}
	now := h.now()
	v.faults++
	v.lastKind, v.lastMsg, v.lastAt = f.Kind, f.Msg, now
	var transition HealthState
	switch v.state {
	case Quarantined:
		// Already contained; nothing more to do.
	case Probing:
		// A fault during half-open probing re-trips immediately.
		v.trip(now)
		h.rebuildQuarantineLocked(d.SW)
		transition = Quarantined
	default:
		v.pruneWindow(now, h.cfg.Window)
		v.window = append(v.window, now)
		if len(v.window) >= h.cfg.TripFaults {
			v.trip(now)
			h.rebuildQuarantineLocked(d.SW)
			transition = Quarantined
		} else if v.state != Degraded {
			v.state = Degraded
			transition = Degraded
		}
	}
	notify := h.notify
	name := v.name
	h.mu.Unlock()
	if transition != "" && notify != nil {
		notify(name, transition)
	}
}

// SyncHealth advances time-based breaker transitions: degraded devices whose
// windows emptied become healthy, quarantined devices past OpenFor enter
// half-open probing, probing devices that consumed their whole budget
// cleanly are restored. Bypass rewiring is enforced/undone here (it needs
// d.mu). Every health query calls this, so the state machine advances
// whenever anyone looks.
func (d *DPMU) SyncHealth() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncHealthLocked()
}

func (d *DPMU) syncHealthLocked() {
	h := &d.health
	h.mu.Lock()
	now := h.now()
	type event struct {
		name  string
		state HealthState
	}
	var events []event
	// Bypass rewiring writes switch tables, which blocks on the switch write
	// lock; a faulting packet holds the switch read lock while blocked on
	// health.mu in onFault. Collect the decisions here and rewire only after
	// health.mu is released (d.mu, which we hold, serializes the rewiring
	// and pins every breaker state transition meanwhile).
	var enforce, undo []string
	rebuild := false
	for _, v := range h.sortedLocked() {
		switch v.state {
		case Degraded:
			v.pruneWindow(now, h.cfg.Window)
			if len(v.window) == 0 {
				v.state = Healthy
				events = append(events, event{v.name, Healthy})
			}
		case Quarantined:
			if now.Sub(v.trippedAt) >= h.cfg.OpenFor {
				v.state = Probing
				v.probeStart = now
				v.probeBudget = int64(h.cfg.ProbePackets)
				v.probeFresh = true
				if v.bypassed {
					// Probes must reach the device: restore its links for
					// the half-open phase.
					undo = append(undo, v.name)
					v.bypassed = false
				}
				rebuild = true
				events = append(events, event{v.name, Probing})
			} else if h.cfg.Policy == PolicyBypass && !v.bypassed {
				enforce = append(enforce, v.name)
			}
		case Probing:
			// A fault during probing re-trips in onFault; here we only
			// check for a cleanly consumed budget.
			rem, ok := d.SW.QuarantineRemaining(v.pid)
			if ok && rem <= 0 && v.lastAt.Before(v.probeStart) {
				v.state = Healthy
				v.window = v.window[:0]
				rebuild = true
				events = append(events, event{v.name, Healthy})
			}
		}
	}
	if rebuild {
		h.rebuildQuarantineLocked(d.SW)
	}
	notify := h.notify
	h.mu.Unlock()

	for _, name := range undo {
		d.undoBypassLocked(name)
	}
	if len(enforce) > 0 {
		bypassed := enforce[:0]
		for _, name := range enforce {
			if d.enforceBypassLocked(name) {
				bypassed = append(bypassed, name)
			}
		}
		if len(bypassed) > 0 {
			h.mu.Lock()
			for _, name := range bypassed {
				// d.mu held throughout keeps the state Quarantined (onFault
				// never leaves Quarantined; every other transition needs
				// d.mu), so the record is still the one we decided on.
				if v := h.byName[name]; v != nil && v.state == Quarantined {
					v.bypassed = true
				}
			}
			h.mu.Unlock()
		}
	}

	if notify != nil {
		for _, e := range events {
			notify(e.name, e.state)
		}
	}
	// Bypass rewiring rewrote virtnet rows; recompile the fused plans so a
	// bypassed vdev's stale plan can't keep serving its old links. A no-op
	// when no rewiring happened (the switch generation is unchanged).
	d.rebuildFusionLocked()
}

// Health advances the breaker state machine and returns the health report.
func (d *DPMU) Health() HealthSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncHealthLocked()
	h := &d.health
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HealthSnapshot{Unattributed: h.unattributed}
	for _, v := range h.sortedLocked() {
		vh := VDevHealth{
			VDev:         v.name,
			PID:          int(v.pid),
			State:        v.state,
			Faults:       v.faults,
			Trips:        v.trips,
			WindowFaults: len(v.window),
			LastKind:     string(v.lastKind),
			LastFault:    v.lastMsg,
			LastFaultAt:  v.lastAt,
			Bypassed:     v.bypassed,
		}
		if v.state == Probing {
			if rem, ok := d.SW.QuarantineRemaining(v.pid); ok {
				vh.ProbesLeft = max(rem, 0)
			} else {
				vh.ProbesLeft = v.probeBudget
			}
		}
		snap.VDevs = append(snap.VDevs, vh)
	}
	return snap
}

// ResetHealth is the explicit admin reset: the owner (or the operator of an
// unowned device) forces the device back to healthy, undoing quarantine and
// bypass. Trip and fault totals are kept — reset clears containment, not
// history.
func (d *DPMU) ResetHealth(owner, vdev string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	if _, err := d.auth(owner, vdev); err != nil {
		return err
	}
	h := &d.health
	h.mu.Lock()
	v, ok := h.byName[vdev]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("dpmu: no health record for %q: %w", vdev, ErrNotFound)
	}
	wasBypassed := v.bypassed
	v.bypassed = false
	v.state = Healthy
	v.window = v.window[:0]
	v.probeFresh = false
	h.rebuildQuarantineLocked(d.SW)
	notify := h.notify
	h.mu.Unlock()
	// Same rule as syncHealthLocked: the link rewiring blocks on the switch
	// write lock and must not run with health.mu held.
	if wasBypassed {
		d.undoBypassLocked(vdev)
	}
	if notify != nil {
		notify(vdev, Healthy)
	}
	return nil
}
