package dpmu

// Checkpoint/Rollback give the control-plane layer (internal/core/ctl) its
// batch atomicity: WriteBatch checkpoints the DPMU, applies its ops, and on
// any failure rolls back so the switch and the DPMU's shadow state are
// bit-identical to the pre-batch state. The checkpoint deep-copies the DPMU's
// bookkeeping (virtual devices, their persona-row sets, ID counters,
// snapshots, assignments) and embeds a sim.SwitchDump of the persona's
// control-plane state. Compiled programs (VDev.Comp) are immutable after
// hp4c and are shared, not copied.

import "hyper4/internal/sim"

// Checkpoint is an opaque restore point produced by DPMU.Checkpoint.
type Checkpoint struct {
	vdevs       map[string]*VDev
	nextPID     int
	nextMatchID int
	nextMcast   int
	nextSession int
	snapshots   map[string][]Assignment
	active      string
	assignPEs   []pentry
	assigns     []Assignment
	linkSpecs   []linkSpec
	sw          *sim.SwitchDump
}

func copyPentries(rows []pentry) []pentry {
	if rows == nil {
		return nil
	}
	return append([]pentry(nil), rows...)
}

func copyVDev(v *VDev) *VDev {
	c := &VDev{
		Name:       v.Name,
		PID:        v.PID,
		Owner:      v.Owner,
		Comp:       v.Comp,
		Quota:      v.Quota,
		entries:    make(map[int]*ventry, len(v.entries)),
		nextHandle: v.nextHandle,
		static:     copyPentries(v.static),
		defaults:   make(map[string][]pentry, len(v.defaults)),
		defSpecs:   make(map[string]EntrySpec, len(v.defSpecs)),
		links:      copyPentries(v.links),
		vnet:       make(map[int]pentry, len(v.vnet)),
	}
	for h, e := range v.entries {
		// spec's slices are immutable after install, so a shallow copy is a
		// faithful checkpoint.
		c.entries[h] = &ventry{table: e.table, rows: copyPentries(e.rows), spec: e.spec}
	}
	for t, rows := range v.defaults {
		c.defaults[t] = copyPentries(rows)
	}
	for t, spec := range v.defSpecs {
		c.defSpecs[t] = spec
	}
	for p, row := range v.vnet {
		c.vnet[p] = row
	}
	return c
}

// Checkpoint captures the DPMU's full control-plane state (its own
// bookkeeping plus the persona switch's table state) for a later Rollback.
func (d *DPMU) Checkpoint() *Checkpoint {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := &Checkpoint{
		vdevs:       make(map[string]*VDev, len(d.vdevs)),
		nextPID:     d.nextPID,
		nextMatchID: d.nextMatchID,
		nextMcast:   d.nextMcast,
		nextSession: d.nextSession,
		snapshots:   make(map[string][]Assignment, len(d.snapshots)),
		active:      d.active,
		assignPEs:   copyPentries(d.assignPEs),
		assigns:     append([]Assignment(nil), d.assigns...),
		linkSpecs:   append([]linkSpec(nil), d.linkSpecs...),
		sw:          d.SW.Dump(),
	}
	for name, v := range d.vdevs {
		cp.vdevs[name] = copyVDev(v)
	}
	for name, as := range d.snapshots {
		cp.snapshots[name] = append([]Assignment(nil), as...)
	}
	return cp
}

// Rollback rewinds the DPMU and its persona switch to a Checkpoint. The
// checkpoint's copies become live state, so a checkpoint may only be rolled
// back once; take a fresh one for each batch.
func (d *DPMU) Rollback(cp *Checkpoint) {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	d.vdevs = cp.vdevs
	d.nextPID = cp.nextPID
	d.nextMatchID = cp.nextMatchID
	d.nextMcast = cp.nextMcast
	d.nextSession = cp.nextSession
	d.snapshots = cp.snapshots
	d.active = cp.active
	d.assignPEs = cp.assignPEs
	d.assigns = cp.assigns
	d.linkSpecs = cp.linkSpecs
	d.SW.RestoreDump(cp.sw)
	// The vdev set (and its PIDs) may have changed since the checkpoint;
	// reconcile the circuit-breaker records with the restored state.
	d.resyncHealth()
}
