package dpmu

import (
	"bytes"
	"testing"

	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

var (
	mac1 = pkt.MustMAC("00:00:00:00:00:01")
	mac2 = pkt.MustMAC("00:00:00:00:00:02")
	ip1  = pkt.MustIP4("10.0.0.1")
	ip2  = pkt.MustIP4("10.0.0.2")
)

// newPersonaDPMU builds a reference persona switch with a DPMU.
func newPersonaDPMU(t *testing.T) *DPMU {
	t.Helper()
	p, err := persona.Generate(persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("hp4", p.Program)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(sw, p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compileFn(t *testing.T, name string) *hp4c.Compiled {
	t.Helper()
	prog, err := functions.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := hp4c.Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// loadL2 loads an emulated L2 switch with hosts on virtual ports 1 and 2
// mapped to the same-numbered physical ports.
func loadL2(t *testing.T, d *DPMU, name, owner string) {
	t.Helper()
	comp := compileFn(t, functions.L2Switch)
	if _, err := d.Load(name, comp, owner, 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewL2ControllerFunc(d.Installer(owner, name))
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{1, 2} {
		if err := d.AssignPort(owner, Assignment{PhysPort: port, VDev: name, VIngress: port}); err != nil {
			t.Fatal(err)
		}
		if err := d.MapVPort(owner, name, port, port); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEmulatedL2SwitchForwards(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "l2", "alice")
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}, pkt.Payload("hello!")))
	out, tr, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("outputs: %+v (trace tables: %v)", out, tr.Tables)
	}
	if !bytes.Equal(out[0].Data, frame) {
		t.Errorf("emulated L2 must not modify the frame:\n got %x\nwant %x", out[0].Data, frame)
	}
	// The paper's Table 1: emulated L2 switch ≈ 13 matches, no resubmits.
	if tr.Resubmits != 0 {
		t.Errorf("L2 emulation should not resubmit (frame fits the default extraction): %d", tr.Resubmits)
	}
	t.Logf("emulated l2 applies=%d (paper: 13)", tr.Applies)
	if tr.Applies < 8 || tr.Applies > 20 {
		t.Errorf("emulated applies = %d, expected near 13", tr.Applies)
	}
}

func TestEmulatedL2UnknownDstDrops(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "l2", "alice")
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: pkt.MustMAC("00:00:00:00:00:99"), Src: mac1, EtherType: 0x0800}))
	out, _, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("unknown destination should drop: %+v", out)
	}
}
