package dpmu

import (
	"sort"

	"hyper4/internal/core/verify"
)

// VerifySource exports the DPMU's control-plane state as a verification
// snapshot for internal/core/verify: every loaded device with its virtual
// entries (from the retained EntrySpecs) and the full set of persona rows
// its bookkeeping tracks, the logical virtual-link topology, and a raw
// switch dump for the tenant-isolation cross-check. The snapshot is
// self-contained — slices are fresh, payloads immutable — so the verifier
// runs without any DPMU lock held.
func (d *DPMU) VerifySource() *verify.Source {
	d.mu.RLock()
	defer d.mu.RUnlock()
	src := &verify.Source{Cfg: d.cfg, Dump: d.SW.Dump()}
	for _, name := range d.vdevNames() {
		v := d.vdevs[name]
		dev := verify.Device{Name: v.Name, PID: v.PID, Comp: v.Comp}
		addRows := func(rows []pentry) {
			for _, r := range rows {
				dev.Rows = append(dev.Rows, verify.Row{Table: r.table, Handle: r.handle})
			}
		}
		handles := make([]int, 0, len(v.entries))
		for h := range v.entries {
			handles = append(handles, h)
		}
		sort.Ints(handles)
		for _, h := range handles {
			e := v.entries[h]
			dev.Entries = append(dev.Entries, verify.Entry{
				Handle:   h,
				Table:    e.spec.Table,
				Action:   e.spec.Action,
				Params:   e.spec.Params,
				Args:     e.spec.Args,
				Priority: e.spec.Priority,
			})
			addRows(e.rows)
		}
		addRows(v.static)
		tables := make([]string, 0, len(v.defaults))
		for t := range v.defaults {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			addRows(v.defaults[t])
		}
		addRows(v.links)
		// vnet rows replace entries in v.links over time; the row set is a
		// set, so re-adding the live ones is harmless and covers rows that
		// were replaced in place.
		ports := make([]int, 0, len(v.vnet))
		for p := range v.vnet {
			ports = append(ports, p)
		}
		sort.Ints(ports)
		for _, p := range ports {
			row := v.vnet[p]
			dev.Rows = append(dev.Rows, verify.Row{Table: row.table, Handle: row.handle})
		}
		src.Devices = append(src.Devices, dev)
	}
	for _, l := range d.linkSpecs {
		src.Links = append(src.Links, verify.Link{FromDev: l.fromDev, FromPort: l.fromPort, ToDev: l.toDev, ToPort: l.toPort})
	}
	return src
}
