package dpmu

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// TestDifferential is the core fidelity check: for each of the paper's four
// functions, a corpus of randomized packets is pushed through the native
// switch and the emulated (persona) switch with identical table state, and
// the emitted packets must be byte-identical on the same ports.
func TestDifferential(t *testing.T) {
	for _, fn := range functions.Names() {
		t.Run(fn, func(t *testing.T) {
			native, ed := differentialPair(t, fn)
			rng := rand.New(rand.NewSource(4242))
			for i := 0; i < 200; i++ {
				frame := randomFrame(rng)
				port := 1 + rng.Intn(2)
				nOut, _, err := native.Process(frame, port)
				if err != nil {
					t.Fatalf("packet %d native: %v", i, err)
				}
				eOut, _, err := ed.SW.Process(frame, port)
				if err != nil {
					t.Fatalf("packet %d emulated: %v", i, err)
				}
				if !sameOutputs(nOut, eOut) {
					t.Fatalf("packet %d (%s, port %d) diverged:\nnative:   %s\nemulated: %s\nframe: %x",
						i, pkt.Summary(frame), port, renderOutputs(nOut), renderOutputs(eOut), frame)
				}
			}
		})
	}
}

// differentialPair builds a native switch and an emulated DPMU for one
// function with the same table population.
func differentialPair(t *testing.T, fn string) (*sim.Switch, *DPMU) {
	t.Helper()
	native, err := functions.NewSwitch("native", fn)
	if err != nil {
		t.Fatal(err)
	}
	d := newPersonaDPMU(t)
	comp := compileFn(t, fn)
	if _, err := d.Load("dev", comp, "diff", 0); err != nil {
		t.Fatal(err)
	}
	install := d.Installer("diff", "dev")
	switch fn {
	case functions.L2Switch:
		nc := functions.NewL2Controller(native)
		ec := functions.NewL2ControllerFunc(install)
		for _, c := range []*functions.L2Controller{nc, ec} {
			if err := c.AddHost(mac1, 1); err != nil {
				t.Fatal(err)
			}
			if err := c.AddHost(mac2, 2); err != nil {
				t.Fatal(err)
			}
		}
	case functions.Firewall:
		nc := functions.NewFirewallController(native)
		ec := functions.NewFirewallControllerFunc(install)
		for _, c := range []*functions.FirewallController{nc, ec} {
			if err := c.AddHost(mac1, 1); err != nil {
				t.Fatal(err)
			}
			if err := c.AddHost(mac2, 2); err != nil {
				t.Fatal(err)
			}
			if err := c.BlockTCPDstPort(5201); err != nil {
				t.Fatal(err)
			}
			if err := c.BlockUDPDstPort(53); err != nil {
				t.Fatal(err)
			}
			if err := c.BlockIPPair(pkt.MustIP4("10.0.0.66"), ip2); err != nil {
				t.Fatal(err)
			}
		}
	case functions.Router:
		nc, err := functions.NewRouterController(native)
		if err != nil {
			t.Fatal(err)
		}
		ec := functions.NewRouterControllerFunc(install)
		if err := ec.Init(); err != nil {
			t.Fatal(err)
		}
		for _, c := range []*functions.RouterController{nc, ec} {
			if err := c.AddRoute(pkt.MustIP4("10.0.0.0"), 24, ip2, 2); err != nil {
				t.Fatal(err)
			}
			if err := c.AddRoute(pkt.MustIP4("10.0.0.128"), 25, pkt.MustIP4("10.0.0.130"), 1); err != nil {
				t.Fatal(err)
			}
			if err := c.AddNextHop(ip2, mac2); err != nil {
				t.Fatal(err)
			}
			if err := c.AddNextHop(pkt.MustIP4("10.0.0.130"), mac1); err != nil {
				t.Fatal(err)
			}
			if err := c.AddPortMAC(1, pkt.MustMAC("aa:aa:aa:aa:aa:01")); err != nil {
				t.Fatal(err)
			}
			if err := c.AddPortMAC(2, pkt.MustMAC("aa:aa:aa:aa:aa:02")); err != nil {
				t.Fatal(err)
			}
		}
	case functions.ARPProxy:
		nc, err := functions.NewARPController(native)
		if err != nil {
			t.Fatal(err)
		}
		ec := functions.NewARPControllerFunc(install)
		if err := ec.Init(); err != nil {
			t.Fatal(err)
		}
		for _, c := range []*functions.ARPController{nc, ec} {
			if err := c.AddProxiedHost(ip2, mac2); err != nil {
				t.Fatal(err)
			}
			if err := c.AddHost(mac1, 1); err != nil {
				t.Fatal(err)
			}
			if err := c.AddHost(mac2, 2); err != nil {
				t.Fatal(err)
			}
		}
	default:
		t.Fatalf("no differential population for %q", fn)
	}
	if err := d.AssignPort("diff", Assignment{PhysPort: -1, VDev: "dev", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{1, 2} {
		if err := d.MapVPort("diff", "dev", port, port); err != nil {
			t.Fatal(err)
		}
	}
	return native, d
}

// randomFrame builds a random-but-plausible Ethernet frame: addresses drawn
// from known and unknown sets, all ethertype/protocol branches represented,
// boundary TTLs and filtered ports included.
func randomFrame(rng *rand.Rand) []byte {
	pick := func(options ...pkt.MAC) pkt.MAC { return options[rng.Intn(len(options))] }
	unknownMAC := pkt.MustMAC(fmt.Sprintf("02:%02x:%02x:%02x:%02x:%02x",
		rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256)))
	dst := pick(mac1, mac2, unknownMAC, pkt.Broadcast)
	src := pick(mac1, mac2, unknownMAC)

	ipOpts := []pkt.IP4{ip1, ip2, pkt.MustIP4("10.0.0.66"),
		pkt.MustIP4("10.0.0.200"), pkt.MustIP4("192.168.9.9")}
	ipPick := func() pkt.IP4 { return ipOpts[rng.Intn(len(ipOpts))] }
	ttls := []uint8{0, 1, 2, 64, 255}
	ports := []uint16{53, 80, 5201, 9999, uint16(rng.Intn(65536))}

	payload := make([]byte, rng.Intn(40))
	rng.Read(payload)

	switch rng.Intn(6) {
	case 0: // non-IP, non-ARP
		return pkt.Pad(pkt.Serialize(
			&pkt.Ethernet{Dst: dst, Src: src, EtherType: uint16(rng.Intn(0x10000))},
			pkt.Payload(payload)))
	case 1: // ARP request or reply
		op := uint16(pkt.ARPRequest)
		if rng.Intn(3) == 0 {
			op = pkt.ARPReply
		}
		return pkt.Pad(pkt.Serialize(
			&pkt.Ethernet{Dst: dst, Src: src, EtherType: pkt.EtherTypeARP},
			&pkt.ARP{Op: op, SenderHW: src, SenderIP: ipPick(), TargetHW: pkt.MAC{}, TargetIP: ipPick()}))
	case 2: // ICMP
		return pkt.Pad(pkt.Serialize(
			&pkt.Ethernet{Dst: dst, Src: src, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: ttls[rng.Intn(len(ttls))], Protocol: pkt.IPProtoICMP, Src: ipPick(), Dst: ipPick()},
			&pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: uint16(rng.Intn(1000)), Seq: uint16(rng.Intn(1000))},
			pkt.Payload(payload)))
	case 3: // TCP
		return pkt.Pad(pkt.Serialize(
			&pkt.Ethernet{Dst: dst, Src: src, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: ttls[rng.Intn(len(ttls))], Protocol: pkt.IPProtoTCP, Src: ipPick(), Dst: ipPick()},
			&pkt.TCP{SrcPort: ports[rng.Intn(len(ports))], DstPort: ports[rng.Intn(len(ports))]},
			pkt.Payload(payload)))
	case 4: // UDP
		return pkt.Pad(pkt.Serialize(
			&pkt.Ethernet{Dst: dst, Src: src, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: ttls[rng.Intn(len(ttls))], Protocol: pkt.IPProtoUDP, Src: ipPick(), Dst: ipPick()},
			&pkt.UDP{SrcPort: ports[rng.Intn(len(ports))], DstPort: ports[rng.Intn(len(ports))]},
			pkt.Payload(payload)))
	default: // IP with an unhandled protocol
		return pkt.Pad(pkt.Serialize(
			&pkt.Ethernet{Dst: dst, Src: src, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: ttls[rng.Intn(len(ttls))], Protocol: uint8(rng.Intn(256)), Src: ipPick(), Dst: ipPick()},
			pkt.Payload(payload)))
	}
}

func sameOutputs(a, b []sim.Output) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedOutputs(a), sortedOutputs(b)
	for i := range as {
		if as[i].Port != bs[i].Port || !bytes.Equal(as[i].Data, bs[i].Data) {
			return false
		}
	}
	return true
}

func sortedOutputs(outs []sim.Output) []sim.Output {
	s := append([]sim.Output(nil), outs...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Port != s[j].Port {
			return s[i].Port < s[j].Port
		}
		return bytes.Compare(s[i].Data, s[j].Data) < 0
	})
	return s
}

func renderOutputs(outs []sim.Output) string {
	if len(outs) == 0 {
		return "(dropped)"
	}
	var b bytes.Buffer
	for _, o := range sortedOutputs(outs) {
		fmt.Fprintf(&b, "[port %d: %x] ", o.Port, o.Data)
	}
	return b.String()
}

// TestPriorityOrderPreserved installs overlapping ternary rules whose
// relative priority decides the verdict, and checks the DPMU's translated
// priorities preserve the order: a specific allow (priority 1) must beat a
// general drop (priority 2), natively and emulated.
func TestPriorityOrderPreserved(t *testing.T) {
	native, err := functions.NewSwitch("native", functions.Firewall)
	if err != nil {
		t.Fatal(err)
	}
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.Firewall)
	if _, err := d.Load("fw", comp, "p", 0); err != nil {
		t.Fatal(err)
	}
	add := func(c *functions.FirewallController) {
		t.Helper()
		if err := c.AddHost(mac1, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.AddHost(mac2, 2); err != nil {
			t.Fatal(err)
		}
	}
	nc := functions.NewFirewallController(native)
	ec := functions.NewFirewallControllerFunc(d.Installer("p", "fw"))
	add(nc)
	add(ec)
	// Overlapping rules, order decided purely by priority.
	allow := []sim.MatchParam{sim.TernaryUint(16, 0, 0), sim.TernaryUint(16, 5201, 0xffff)}
	dropAll := []sim.MatchParam{sim.TernaryUint(16, 0, 0), sim.TernaryUint(16, 0, 0)}
	if _, err := native.TableAdd("tcp_filter", "_nop", allow, nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := native.TableAdd("tcp_filter", "_drop", dropAll, nil, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TableAdd("p", "fw", EntrySpec{Table: "tcp_filter", Action: "_nop", Params: allow, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TableAdd("p", "fw", EntrySpec{Table: "tcp_filter", Action: "_drop", Params: dropAll, Priority: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("p", Assignment{PhysPort: -1, VDev: "fw", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{1, 2} {
		if err := d.MapVPort("p", "fw", port, port); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		port uint16
		pass bool
	}{{5201, true}, {80, false}, {9999, false}} {
		frame := tcpFrame(tc.port)
		nOut, _, err := native.Process(frame, 1)
		if err != nil {
			t.Fatal(err)
		}
		eOut, _, err := d.SW.Process(frame, 1)
		if err != nil {
			t.Fatal(err)
		}
		if (len(nOut) == 1) != tc.pass {
			t.Errorf("native port %d: pass=%v want %v", tc.port, len(nOut) == 1, tc.pass)
		}
		if !sameOutputs(nOut, eOut) {
			t.Errorf("port %d diverged: native %s vs emulated %s", tc.port, renderOutputs(nOut), renderOutputs(eOut))
		}
	}
}
