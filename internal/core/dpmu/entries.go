package dpmu

import (
	"fmt"
	"math/big"
	"sort"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/sim"
)

// Priority scheme: rows from more-constrained parse paths must beat rows
// from less-constrained ones, so a TCP packet prefers the tcp-path replica
// of an entry over the generic-IP replica. Within a path band, user ternary
// priorities and LPM prefix lengths order rows, and the per-slot catch-all
// sits at the bottom of the band.
const (
	pathBand     = 100000
	maxPathDepth = 32
	catchAllOff  = pathBand - 10
)

func pathBase(p *hp4c.ParsePath) int {
	depth := len(p.Constraints)
	if depth > maxPathDepth {
		depth = maxPathDepth
	}
	return (maxPathDepth - depth) * pathBand
}

// wideFromConstraints folds ternary constraints into an existing value/mask
// pair over a wide field.
func wideFromConstraints(value, mask bitfield.Value, cons []hp4c.Constraint) (bitfield.Value, bitfield.Value) {
	for _, c := range cons {
		v := bitfield.FromBig(c.Width, c.Value)
		m := bitfield.Ones(c.Width)
		if c.Mask != nil {
			m = bitfield.FromBig(c.Width, c.Mask)
		}
		// Only masked bits participate.
		value.Insert(c.BitOff, v.And(m))
		cur := mask.Slice(c.BitOff, c.Width)
		mask.Insert(c.BitOff, cur.Or(m))
	}
	return value, mask
}

// installStatic installs a device's parse-control rows, virtual-network drop
// rows, and checksum row.
func (d *DPMU) installStatic(v *VDev) error {
	ew := d.cfg.ExtractedWidth()
	pid := bitfield.FromUint(persona.ProgramWidth, uint64(v.PID))
	for _, pe := range v.Comp.ParseEntries {
		value, mask := wideFromConstraints(bitfield.New(ew), bitfield.New(ew), pe.Constraints)
		params := []sim.MatchParam{
			sim.Exact(pid),
			sim.ExactUint(persona.StateWidth, uint64(pe.State)),
			sim.Ternary(value, mask),
		}
		if pe.More {
			args := []bitfield.Value{
				bitfield.FromUint(persona.NumBytesWidth, uint64(pe.NumBytes)),
				bitfield.FromUint(persona.StateWidth, uint64(pe.NextState)),
			}
			if err := d.addRow(&v.static, persona.TblParseCtrl, persona.ActParseMore, params, args, pe.Priority); err != nil {
				return err
			}
			continue
		}
		csum := uint64(0)
		if pe.Path.Csum {
			csum = 1
		}
		args := []bitfield.Value{
			bitfield.FromUint(persona.NextTblWidth, uint64(pe.Path.First.Kind)),
			bitfield.FromUint(persona.SlotWidth, uint64(pe.Path.First.ID)),
			bitfield.FromUint(8, csum),
		}
		if err := d.addRow(&v.static, persona.TblParseCtrl, persona.ActParseDone, params, args, pe.Priority); err != nil {
			return err
		}
	}
	// Virtual drops: an unset virtual egress port (0) and an explicit
	// virtual drop (VPortDrop) both drop.
	for _, vp := range []uint64{0, persona.VPortDrop} {
		params := []sim.MatchParam{sim.Exact(pid), sim.ExactUint(persona.VPortWidth, vp)}
		if err := d.addRow(&v.static, persona.TblVirtnet, persona.ActVDrop, params, nil, 0); err != nil {
			return err
		}
	}
	// Every slot gets a catch-all miss row: it runs the table's declared
	// default action (zero-argument defaults only; others need SetDefault)
	// or nothing, and — critically — primes next_table/next_slot so a miss
	// falls through to the correct successor stage. Tables are visited in
	// sorted order so match IDs are minted deterministically: two switches
	// loaded and populated by the same op sequence dump bit-identically,
	// which the local/remote parity and bench tests rely on.
	tables := make([]string, 0, len(v.Comp.Slots))
	for table := range v.Comp.Slots {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		slots := v.Comp.Slots[table]
		if len(slots) == 0 {
			continue
		}
		ca := &hp4c.CompiledAction{Name: "(fall-through)"}
		if ma := slots[0].MissAction; ma != "" {
			if compiled := v.Comp.Actions[ma]; compiled != nil && len(compiled.Params) == 0 {
				ca = compiled
			}
		}
		var rows []pentry
		for _, slot := range slots {
			prio := pathBase(slot.Path) + catchAllOff
			if err := d.installSlotRow(v, slot, ca, nil, prio, slot.Miss, &rows); err != nil {
				d.removeRows(rows)
				return err
			}
		}
		v.defaults[table] = rows
	}
	if v.Comp.NeedsIPv4Csum {
		hoff := v.Comp.HeaderOffsets[v.Comp.CsumHeader]
		csumBit := hoff*8 + 80
		ncmask := bitfield.MaskRange(ew, csumBit, 16).Not()
		args := []bitfield.Value{
			ncmask,
			bitfield.FromUint(persona.ShiftWidth, uint64(ew-hoff*8-16)),
			bitfield.FromUint(persona.ShiftWidth, uint64(ew-csumBit-16)),
		}
		if err := d.addRow(&v.static, persona.TblCsum, "a_ipv4_csum", []sim.MatchParam{sim.Exact(pid)}, args, 0); err != nil {
			return err
		}
	}
	return nil
}

// EntrySpec is one virtual table entry, as both TableAdd and TableModify
// accept it: the table and action names in the emulated program's dialect,
// the match parameters lining up with the table's reads, the action
// arguments lining up with the action's parameters, and a bmv2-style
// priority (lower wins) for ternary/LPM tables.
type EntrySpec struct {
	Table    string
	Action   string
	Params   []sim.MatchParam
	Args     []bitfield.Value
	Priority int
}

// resolveSpec validates an EntrySpec against a device's compiled program and
// returns the table declaration and compiled action it names.
func resolveSpec(v *VDev, spec EntrySpec) (*ast.Table, *hp4c.CompiledAction, error) {
	slots, ok := v.Comp.Slots[spec.Table]
	if !ok || len(slots) == 0 {
		return nil, nil, fmt.Errorf("dpmu: program %s has no (reachable) table %q: %w", v.Comp.Name, spec.Table, ErrNotFound)
	}
	tbl := v.Comp.Prog.Tables[spec.Table]
	if len(spec.Params) != len(tbl.Reads) {
		return nil, nil, fmt.Errorf("dpmu: table %s wants %d match params, got %d: %w", spec.Table, len(tbl.Reads), len(spec.Params), ErrInvalid)
	}
	ca, ok := v.Comp.Actions[spec.Action]
	if !ok {
		return nil, nil, fmt.Errorf("dpmu: program %s has no action %q: %w", v.Comp.Name, spec.Action, ErrNotFound)
	}
	if len(spec.Args) != len(ca.Params) {
		return nil, nil, fmt.Errorf("dpmu: action %s wants %d args, got %d: %w", spec.Action, len(ca.Params), len(spec.Args), ErrInvalid)
	}
	return tbl, ca, nil
}

// installSpec installs the stage-replica rows realizing one EntrySpec.
func (d *DPMU) installSpec(v *VDev, tbl *ast.Table, ca *hp4c.CompiledAction, spec EntrySpec, rows *[]pentry) error {
	for _, slot := range v.Comp.Slots[spec.Table] {
		if !slotAcceptsEntry(v.Comp, tbl, slot, spec.Params) {
			continue
		}
		if err := d.installReplica(v, slot, tbl, ca, spec.Params, spec.Args, spec.Priority, rows); err != nil {
			d.removeRows(*rows)
			return err
		}
	}
	if len(*rows) == 0 {
		return fmt.Errorf("dpmu: entry matches no parse path of table %q: %w", spec.Table, ErrInvalid)
	}
	return nil
}

// TableAdd installs one virtual entry: the match is replicated into every
// stage slot of the target table (with the slot's parse-path constraints
// folded in), and each replica gets a fresh match ID plus the primitive-spec
// rows realizing the bound action.
func (d *DPMU) TableAdd(owner, vdev string, spec EntrySpec) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return 0, err
	}
	if v.Quota > 0 && len(v.entries) >= v.Quota {
		return 0, fmt.Errorf("dpmu: virtual device %q exceeds its quota of %d entries: %w", vdev, v.Quota, ErrExhausted)
	}
	tbl, ca, err := resolveSpec(v, spec)
	if err != nil {
		return 0, err
	}
	e := &ventry{table: spec.Table, spec: spec}
	if err := d.installSpec(v, tbl, ca, spec, &e.rows); err != nil {
		return 0, err
	}
	v.nextHandle++
	v.entries[v.nextHandle] = e
	return v.nextHandle, nil
}

// TableDelete removes a virtual entry.
func (d *DPMU) TableDelete(owner, vdev, table string, handle int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return err
	}
	e, ok := v.entries[handle]
	if !ok || e.table != table {
		return fmt.Errorf("dpmu: device %s table %s has no entry %d: %w", vdev, table, handle, ErrNotFound)
	}
	d.removeRows(e.rows)
	delete(v.entries, handle)
	return nil
}

// TableModify rebinds an existing virtual entry to a new action (or new
// action arguments), preserving the virtual handle. The persona rows are
// replaced atomically from the caller's perspective: the new rows are
// installed under fresh match IDs before the old rows are removed, so live
// traffic never sees a gap.
func (d *DPMU) TableModify(owner, vdev string, handle int, spec EntrySpec) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return err
	}
	e, ok := v.entries[handle]
	if !ok || e.table != spec.Table {
		return fmt.Errorf("dpmu: device %s table %s has no entry %d: %w", vdev, spec.Table, handle, ErrNotFound)
	}
	tbl, ca, err := resolveSpec(v, spec)
	if err != nil {
		return err
	}
	var fresh []pentry
	if err := d.installSpec(v, tbl, ca, spec, &fresh); err != nil {
		return err
	}
	d.removeRows(e.rows)
	e.rows = fresh
	e.spec = spec
	return nil
}

// SetDefault binds a table's miss behavior: one catch-all row per slot,
// below every real entry of that slot's path band.
func (d *DPMU) SetDefault(owner, vdev, table, action string, args []bitfield.Value) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return err
	}
	slots, ok := v.Comp.Slots[table]
	if !ok {
		return fmt.Errorf("dpmu: program %s has no table %q: %w", v.Comp.Name, table, ErrNotFound)
	}
	ca, ok := v.Comp.Actions[action]
	if !ok {
		return fmt.Errorf("dpmu: program %s has no action %q: %w", v.Comp.Name, action, ErrNotFound)
	}
	if len(args) != len(ca.Params) {
		return fmt.Errorf("dpmu: action %s wants %d args, got %d: %w", action, len(ca.Params), len(args), ErrInvalid)
	}
	if old, ok := v.defaults[table]; ok {
		d.removeRows(old)
		delete(v.defaults, table)
		delete(v.defSpecs, table)
	}
	var rows []pentry
	for _, slot := range slots {
		if slot.MissAction != "" && slot.MissAction != action {
			d.removeRows(rows)
			return fmt.Errorf("dpmu: table %s compiled with default %q; cannot set %q (successor stages differ): %w", table, slot.MissAction, action, ErrInvalid)
		}
		prio := pathBase(slot.Path) + catchAllOff
		if err := d.installSlotRow(v, slot, ca, args, prio, slot.Miss, &rows); err != nil {
			d.removeRows(rows)
			return err
		}
	}
	v.defaults[table] = rows
	v.defSpecs[table] = EntrySpec{Table: table, Action: action, Args: args}
	return nil
}

// slotAcceptsEntry reports whether a valid()-matching entry belongs on a
// slot's parse path (a valid=1 entry cannot live on a path where the header
// was never extracted, and vice versa).
func slotAcceptsEntry(comp *hp4c.Compiled, tbl *ast.Table, slot *hp4c.Slot, params []sim.MatchParam) bool {
	for i, r := range tbl.Reads {
		if r.Match != ast.MatchValid {
			continue
		}
		isValid := slot.Path.Valid[r.Header.Instance]
		if params[i].ValidWant != isValid {
			return false
		}
	}
	return true
}

// installReplica installs the match row + primitive rows for one slot.
func (d *DPMU) installReplica(v *VDev, slot *hp4c.Slot, tbl *ast.Table, ca *hp4c.CompiledAction, params []sim.MatchParam, args []bitfield.Value, priority int, rows *[]pentry) error {
	next, ok := slot.Next[ca.Name]
	if !ok {
		return fmt.Errorf("dpmu: table %s stage %d has no successor for action %s", slot.Table, slot.Stage, ca.Name)
	}
	matchParams, extraPrio, err := d.matchFor(v, slot, tbl, params)
	if err != nil {
		return err
	}
	prio := pathBase(slot.Path) + priority + extraPrio
	return d.installRow(v, slot, ca, matchParams, args, prio, next, rows)
}

// installSlotRow installs a catch-all (miss) row for a slot.
func (d *DPMU) installSlotRow(v *VDev, slot *hp4c.Slot, ca *hp4c.CompiledAction, args []bitfield.Value, prio int, next hp4c.Succ, rows *[]pentry) error {
	pid := bitfield.FromUint(persona.ProgramWidth, uint64(v.PID))
	slotID := bitfield.FromUint(persona.SlotWidth, uint64(slot.ID))
	ew := d.cfg.ExtractedWidth()
	var matchParams []sim.MatchParam
	switch slot.Kind {
	case persona.NTEDExact, persona.NTEDTernary:
		value, mask := wideFromConstraints(bitfield.New(ew), bitfield.New(ew), slot.Path.Constraints)
		matchParams = []sim.MatchParam{sim.Exact(pid), sim.Exact(slotID), sim.Ternary(value, mask)}
	case persona.NTMetaExact, persona.NTMetaTernary:
		matchParams = []sim.MatchParam{sim.Exact(pid), sim.Exact(slotID), sim.Ternary(bitfield.New(persona.MetaWidth), bitfield.New(persona.MetaWidth))}
	case persona.NTStdMeta:
		z := bitfield.New(persona.VPortWidth)
		matchParams = []sim.MatchParam{sim.Exact(pid), sim.Exact(slotID), sim.Ternary(z, z.Clone()), sim.Ternary(z.Clone(), z.Clone())}
	case persona.NTMatchless:
		matchParams = []sim.MatchParam{sim.Exact(pid), sim.Exact(slotID)}
	default:
		return fmt.Errorf("dpmu: bad slot kind %d", slot.Kind)
	}
	return d.installRow(v, slot, ca, matchParams, args, prio, next, rows)
}

// installRow adds the a_set_match row and the per-primitive prep rows.
func (d *DPMU) installRow(v *VDev, slot *hp4c.Slot, ca *hp4c.CompiledAction, matchParams []sim.MatchParam, args []bitfield.Value, prio int, next hp4c.Succ, rows *[]pentry) error {
	d.nextMatchID++
	mid := d.nextMatchID
	stageTable := persona.StageTable(slot.Stage, persona.KindName(slot.Kind))
	setArgs := []bitfield.Value{
		bitfield.FromUint(persona.MatchIDWidth, uint64(mid)),
		bitfield.FromUint(persona.PrimWidth, uint64(len(ca.Prims))),
		bitfield.FromUint(persona.NextTblWidth, uint64(next.Kind)),
		bitfield.FromUint(persona.SlotWidth, uint64(next.ID)),
	}
	if err := d.addRow(rows, stageTable, persona.ActSetMatch, matchParams, setArgs, prio); err != nil {
		return err
	}
	(*rows)[len(*rows)-1].match = true
	pid := bitfield.FromUint(persona.ProgramWidth, uint64(v.PID))
	midVal := bitfield.FromUint(persona.MatchIDWidth, uint64(mid))
	for p, spec := range ca.Prims {
		prepTable := persona.PrimTable(slot.Stage, p+1, "prep")
		prepAction, prepArgs, err := d.prepFor(spec, args)
		if err != nil {
			return err
		}
		prepParams := []sim.MatchParam{sim.Exact(pid), sim.Exact(midVal)}
		if err := d.addRow(rows, prepTable, prepAction, prepParams, prepArgs, 0); err != nil {
			return err
		}
	}
	return nil
}

// matchFor translates the virtual match params into the slot's persona
// match params, folding in parse-path constraints. The extra priority
// reflects LPM prefix lengths (§5.3's second option: "use ternary matching,
// but have the DPMU identify and manage the priorities of match entries").
func (d *DPMU) matchFor(v *VDev, slot *hp4c.Slot, tbl *ast.Table, params []sim.MatchParam) ([]sim.MatchParam, int, error) {
	pid := bitfield.FromUint(persona.ProgramWidth, uint64(v.PID))
	ew := d.cfg.ExtractedWidth()
	extraPrio := 0
	switch slot.Kind {
	case persona.NTEDExact, persona.NTEDTernary, persona.NTMetaExact, persona.NTMetaTernary:
		width := ew
		isMeta := slot.Kind == persona.NTMetaExact || slot.Kind == persona.NTMetaTernary
		if isMeta {
			width = persona.MetaWidth
		}
		value, mask := bitfield.New(width), bitfield.New(width)
		if !isMeta {
			value, mask = wideFromConstraints(value, mask, slot.Path.Constraints)
		}
		for i, r := range tbl.Reads {
			if r.Match == ast.MatchValid {
				continue // folded into the path constraints
			}
			off, w, err := d.readGeometry(v, *r.Field, isMeta)
			if err != nil {
				return nil, 0, err
			}
			p := params[i]
			switch p.Kind {
			case ast.MatchExact:
				value.Insert(off, p.Value.Resize(w))
				mask.Insert(off, bitfield.Ones(w))
			case ast.MatchTernary:
				value.Insert(off, p.Value.And(p.Mask).Resize(w))
				mask.Insert(off, p.Mask.Resize(w))
			case ast.MatchLPM:
				m := bitfield.New(w)
				if p.PrefixLen > 0 {
					m = bitfield.MaskRange(w, 0, p.PrefixLen)
				}
				value.Insert(off, p.Value.And(m).Resize(w))
				mask.Insert(off, m)
				if !d.skewLPM {
					extraPrio += w - p.PrefixLen
				}
			default:
				return nil, 0, fmt.Errorf("dpmu: match kind %s not translatable: %w", p.Kind, ErrInvalid)
			}
		}
		return []sim.MatchParam{sim.Exact(pid), sim.Exact(bitfield.FromUint(persona.SlotWidth, uint64(slot.ID))), sim.Ternary(value, mask)}, extraPrio, nil

	case persona.NTStdMeta:
		ving := sim.Ternary(bitfield.New(persona.VPortWidth), bitfield.New(persona.VPortWidth))
		vport := sim.Ternary(bitfield.New(persona.VPortWidth), bitfield.New(persona.VPortWidth))
		for i, r := range tbl.Reads {
			if r.Field == nil || r.Field.Instance != hlir.StandardMetadata {
				return nil, 0, fmt.Errorf("dpmu: stdmeta slot with non-stdmeta read")
			}
			p := params[i]
			val, m := p.Value, p.Mask
			if p.Kind == ast.MatchExact {
				m = bitfield.Ones(val.Width())
			}
			tp := sim.Ternary(val.Resize(persona.VPortWidth), m.Resize(persona.VPortWidth))
			switch r.Field.Field {
			case hlir.FieldIngressPort:
				ving = tp
			case hlir.FieldEgressPort, hlir.FieldEgressSpec:
				vport = tp
			default:
				return nil, 0, fmt.Errorf("dpmu: standard_metadata.%s not emulatable", r.Field.Field)
			}
		}
		return []sim.MatchParam{sim.Exact(pid), sim.Exact(bitfield.FromUint(persona.SlotWidth, uint64(slot.ID))), ving, vport}, 0, nil

	case persona.NTMatchless:
		return nil, 0, fmt.Errorf("dpmu: table %s takes no entries; use SetDefault: %w", tbl.Name, ErrInvalid)
	}
	return nil, 0, fmt.Errorf("dpmu: bad slot kind %d", slot.Kind)
}

// readGeometry locates a read field within the extracted or emeta field.
func (d *DPMU) readGeometry(v *VDev, ref ast.FieldRef, wantMeta bool) (int, int, error) {
	prog := v.Comp.Prog
	inst := prog.Instances[ref.Instance]
	fOff, _ := inst.Type.FieldOffset(ref.Field)
	w := inst.Type.Field(ref.Field).Width
	if inst.Decl.Metadata {
		if !wantMeta {
			return 0, 0, fmt.Errorf("dpmu: metadata read %s.%s in packet-data slot", ref.Instance, ref.Field)
		}
		base, ok := v.Comp.MetaOffsets[ref.Instance]
		if !ok {
			return 0, 0, fmt.Errorf("dpmu: metadata %q not laid out", ref.Instance)
		}
		return base + fOff, w, nil
	}
	if wantMeta {
		return 0, 0, fmt.Errorf("dpmu: packet read %s.%s in metadata slot", ref.Instance, ref.Field)
	}
	base, ok := v.Comp.HeaderOffsets[ref.Instance]
	if !ok {
		return 0, 0, fmt.Errorf("dpmu: header %q never extracted", ref.Instance)
	}
	return base*8 + fOff, w, nil
}

// prepFor materializes the a_prep_* action name and arguments for one
// primitive spec, binding runtime action args. Shift parameters follow the
// persona's double-shift isolation scheme: a source field at bit offset O,
// width W inside a field of total width T embedded at the low end of the
// EW-bit scratch is isolated by tmp = (tmp << (EW-T+O)) >> (EW-W).
func (d *DPMU) prepFor(spec hp4c.PrimSpec, args []bitfield.Value) (string, []bitfield.Value, error) {
	ew := d.cfg.ExtractedWidth()
	dstTotal := ew
	srcTotal := ew
	switch spec.Op {
	case persona.OpModMetaConst, persona.OpModMetaED, persona.OpModMetaMeta, persona.OpAddMetaConst:
		dstTotal = persona.MetaWidth
	}
	switch spec.Op {
	case persona.OpModEDMeta, persona.OpModMetaMeta:
		srcTotal = persona.MetaWidth
	}
	cval := func() (bitfield.Value, error) {
		if spec.Const != nil {
			return bitfield.FromBig(persona.ConstWidth, spec.Const), nil
		}
		if spec.ArgIndex < 0 || spec.ArgIndex >= len(args) {
			return bitfield.Value{}, fmt.Errorf("dpmu: primitive needs action argument %d", spec.ArgIndex)
		}
		v := args[spec.ArgIndex].Resize(persona.ConstWidth)
		if spec.Negate {
			mod := new(big.Int).Lsh(big.NewInt(1), uint(spec.DstW))
			x := new(big.Int).Sub(mod, v.Big())
			x.Mod(x, mod)
			v = bitfield.FromBig(persona.ConstWidth, x)
		}
		return v, nil
	}
	sh := func(n int) bitfield.Value { return bitfield.FromUint(persona.ShiftWidth, uint64(n)) }
	dmask := func() bitfield.Value {
		return bitfield.MaskRange(dstTotal, spec.DstOff, spec.DstW).Resize(ew)
	}
	dshift := func() bitfield.Value { return sh(dstTotal - spec.DstOff - spec.DstW) }

	switch spec.Op {
	case persona.OpNoOp:
		return "a_prep_no_op", nil, nil
	case persona.OpDrop:
		return "a_prep_drop", nil, nil
	case persona.OpModVPortVIngress:
		return "a_prep_mod_vport_vingress", nil, nil
	case persona.OpModVPortConst:
		c, err := cval()
		if err != nil {
			return "", nil, err
		}
		return "a_prep_mod_vport_const", []bitfield.Value{c}, nil
	case persona.OpModEDConst, persona.OpModMetaConst:
		c, err := cval()
		if err != nil {
			return "", nil, err
		}
		name := "a_prep_mod_ed_const"
		if spec.Op == persona.OpModMetaConst {
			name = "a_prep_mod_meta_const"
		}
		return name, []bitfield.Value{dmask(), dshift(), c}, nil
	case persona.OpModEDED, persona.OpModEDMeta, persona.OpModMetaED, persona.OpModMetaMeta:
		name := map[int]string{
			persona.OpModEDED:     "a_prep_mod_ed_ed",
			persona.OpModEDMeta:   "a_prep_mod_ed_meta",
			persona.OpModMetaED:   "a_prep_mod_meta_ed",
			persona.OpModMetaMeta: "a_prep_mod_meta_meta",
		}[spec.Op]
		slshift := sh(ew - srcTotal + spec.SrcOff)
		srshift := sh(ew - spec.SrcW)
		return name, []bitfield.Value{dmask(), dshift(), slshift, srshift}, nil
	case persona.OpAddEDConst, persona.OpAddMetaConst:
		c, err := cval()
		if err != nil {
			return "", nil, err
		}
		name := "a_prep_add_ed_const"
		if spec.Op == persona.OpAddMetaConst {
			name = "a_prep_add_meta_const"
		}
		// The add reads its own destination: shift params target (DstOff,
		// DstW) within the destination's total width.
		slshift := sh(ew - dstTotal + spec.DstOff)
		srshift := sh(ew - spec.DstW)
		return name, []bitfield.Value{dmask(), dshift(), slshift, srshift, c}, nil
	}
	return "", nil, fmt.Errorf("dpmu: opcode %d not installable", spec.Op)
}
