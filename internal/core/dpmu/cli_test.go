package dpmu

import (
	"strings"
	"testing"

	"hyper4/internal/pkt"
)

// TestCLIFullScenario drives the whole Figure 2(c) flow through text
// commands: load two devices, populate them in their native dialect, wire
// the virtual network, snapshot, and verify traffic at each step.
func TestCLIFullScenario(t *testing.T) {
	d := newPersonaDPMU(t)
	cli := NewCLI(d, "op")

	script := `
# two virtual devices
load l2 l2_switch
load fw firewall

# native-dialect population, prefixed by the device name
l2 table_add smac _nop 00:00:00:00:00:01 =>
l2 table_add dmac forward 00:00:00:00:00:01 => 1
l2 table_add smac _nop 00:00:00:00:00:02 =>
l2 table_add dmac forward 00:00:00:00:00:02 => 2
fw table_add dmac forward 00:00:00:00:00:02 => 2
fw table_add tcp_filter _drop 0&&&0 5201&&&0xffff => 1

# wiring
map l2 1 1
map l2 2 2
map fw 2 2
snapshot_save A 1:l2:1 2:l2:2
snapshot_save B 1:fw:1 2:fw:2
snapshot_activate A
`
	if err := cli.ExecAll(script); err != nil {
		t.Fatal(err)
	}
	out, err := cli.Exec("vdevs")
	if err != nil || out != "fw l2" {
		t.Errorf("vdevs = %q, %v", out, err)
	}

	blocked := tcpFrame(5201)
	outs, _, err := d.SW.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("under A (l2) the frame passes: %+v", outs)
	}
	if _, err := cli.Exec("snapshot_activate B"); err != nil {
		t.Fatal(err)
	}
	outs, _, err = d.SW.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("under B (fw) the frame drops: %+v", outs)
	}

	// Traffic stats via CLI.
	statsOut, err := cli.Exec("stats fw")
	if err != nil || !strings.HasPrefix(statsOut, "passes=") {
		t.Errorf("stats = %q, %v", statsOut, err)
	}

	// Virtual delete via handle.
	h, err := cli.Exec("l2 table_add dmac forward 00:00:00:00:00:09 => 1")
	if err != nil || !strings.HasPrefix(h, "handle ") {
		t.Fatalf("add = %q, %v", h, err)
	}
	if _, err := cli.Exec("l2 table_delete dmac " + strings.TrimPrefix(h, "handle ")); err != nil {
		t.Fatal(err)
	}

	// Modify through the CLI.
	h2cmd, err := cli.Exec("l2 table_add dmac forward 00:00:00:00:00:0a => 1")
	if err != nil {
		t.Fatal(err)
	}
	handle := strings.TrimPrefix(h2cmd, "handle ")
	if _, err := cli.Exec("l2 table_modify dmac " + handle + " _drop 00:00:00:00:00:0a"); err != nil {
		t.Fatal(err)
	}

	// Unload through the CLI.
	if _, err := cli.Exec("unload fw"); err != nil {
		t.Fatal(err)
	}
	if out, _ := cli.Exec("vdevs"); out != "l2" {
		t.Errorf("after unload: %q", out)
	}
}

func TestCLILinkAndMcast(t *testing.T) {
	d := newPersonaDPMU(t)
	cli := NewCLI(d, "op")
	script := `
load src l2_switch
load a l2_switch
load b l2_switch
src table_add dmac forward 00:00:00:00:00:02 => 10
a table_add dmac forward 00:00:00:00:00:02 => 5
b table_add dmac forward 00:00:00:00:00:02 => 6
assign 1 src 1
map a 5 5
map b 6 6
mcast src 10 a:1 b:1
`
	if err := cli.ExecAll(script); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	outs, _, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("multicast copies: %+v", outs)
	}
}

func TestCLIErrors(t *testing.T) {
	d := newPersonaDPMU(t)
	cli := NewCLI(d, "op")
	if _, err := cli.Exec("load l2 l2_switch"); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"bogus",
		"load x",
		"load x nosuchfn",
		"assign one l2 1",
		"map l2 x 1",
		"link l2 x l2 1",
		"mcast l2 10 junk",
		"ratelimit l2 x y",
		"stats ghost",
		"snapshot_save",
		"snapshot_save A port-vdev",
		"snapshot_activate ghost",
		"l2 table_add ghost _nop =>",
		"l2 table_add dmac ghost 1 =>",
		"l2 table_add dmac forward =>",
		"l2 table_delete dmac x",
		"l2 bogus_op",
	}
	for _, cmd := range bad {
		if _, err := cli.Exec(cmd); err == nil {
			t.Errorf("command %q should fail", cmd)
		}
	}
	// Ownership enforcement through the CLI.
	mallory := NewCLI(d, "mallory")
	if _, err := mallory.Exec("unload l2"); err == nil {
		t.Error("foreign unload should fail")
	}
	if _, err := mallory.Exec("l2 table_add dmac forward 00:00:00:00:00:02 => 1"); err == nil {
		t.Error("foreign table_add should fail")
	}
}
