package dpmu

import (
	"fmt"
	"strconv"
	"strings"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/functions"
	"hyper4/internal/sim"
	"hyper4/internal/sim/runtime"
)

// CLI is the DPMU's textual management interface — the command path of
// Figure 2(c): a controller keeps speaking its program's native bmv2-style
// dialect, prefixed with the virtual device name, and the DPMU translates
// each virtual operation into persona operations.
//
// Management commands:
//
//	load <vdev> <builtin-function> [quota]
//	unload <vdev>
//	assign <port|any> <vdev> <vingress>
//	clear_assignments
//	map <vdev> <vport> <physport>
//	link <vdevA> <vportA> <vdevB> <vingressB>
//	mcast <vdev> <vport> <vdev:vingress>...
//	ratelimit <vdev> <yellowAt> <redAt>
//	meter_tick
//	stats <vdev>
//	snapshot_save <name> <port:vdev:vingress>...
//	snapshot_activate <name>
//	vdevs
//
// Virtual table operations (translated, §3.1):
//
//	<vdev> table_add <table> <action> <match>... => <arg>... [priority]
//	<vdev> table_delete <table> <handle>
//	<vdev> table_modify <table> <handle> <action> <match>... => <arg>... [priority]
//	<vdev> table_set_default <table> <action> [<arg>...]
//
// Match tokens use the emulated program's own field widths and kinds, in
// the same syntax as internal/sim/runtime.
type CLI struct {
	D *DPMU
	// Owner is stamped on every operation; the DPMU's authorization checks
	// apply (§4.5).
	Owner string
}

// NewCLI builds a command interface acting as owner.
func NewCLI(d *DPMU, owner string) *CLI { return &CLI{D: d, Owner: owner} }

// Exec runs one command line and returns its textual result.
func (c *CLI) Exec(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "load":
		if len(args) < 2 || len(args) > 3 {
			return "", fmt.Errorf("load wants <vdev> <function> [quota]")
		}
		quota := 0
		if len(args) == 3 {
			q, err := strconv.Atoi(args[2])
			if err != nil {
				return "", fmt.Errorf("bad quota %q", args[2])
			}
			quota = q
		}
		prog, err := functions.Load(args[1])
		if err != nil {
			return "", err
		}
		comp, err := hp4c.Compile(prog, c.D.Config())
		if err != nil {
			return "", err
		}
		v, err := c.D.Load(args[0], comp, c.Owner, quota)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("loaded %s as program %d", v.Name, v.PID), nil

	case "unload":
		if len(args) != 1 {
			return "", fmt.Errorf("unload wants <vdev>")
		}
		return "", c.D.Unload(c.Owner, args[0])

	case "assign":
		if len(args) != 3 {
			return "", fmt.Errorf("assign wants <port|any> <vdev> <vingress>")
		}
		port := -1
		if args[0] != "any" {
			p, err := strconv.Atoi(args[0])
			if err != nil {
				return "", fmt.Errorf("bad port %q", args[0])
			}
			port = p
		}
		ving, err := strconv.Atoi(args[2])
		if err != nil {
			return "", fmt.Errorf("bad vingress %q", args[2])
		}
		return "", c.D.AssignPort(c.Owner, Assignment{PhysPort: port, VDev: args[1], VIngress: ving})

	case "clear_assignments":
		c.D.ClearAssignments()
		return "", nil

	case "map":
		if len(args) != 3 {
			return "", fmt.Errorf("map wants <vdev> <vport> <physport>")
		}
		vport, err1 := strconv.Atoi(args[1])
		phys, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("bad ports %v", args[1:])
		}
		return "", c.D.MapVPort(c.Owner, args[0], vport, phys)

	case "link":
		if len(args) != 4 {
			return "", fmt.Errorf("link wants <vdevA> <vportA> <vdevB> <vingressB>")
		}
		pa, err1 := strconv.Atoi(args[1])
		pb, err2 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("bad ports")
		}
		return "", c.D.LinkVPorts(c.Owner, args[0], pa, args[2], pb)

	case "mcast":
		if len(args) < 3 {
			return "", fmt.Errorf("mcast wants <vdev> <vport> <vdev:vingress>...")
		}
		vport, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad vport %q", args[1])
		}
		var targets []VPortRef
		for _, spec := range args[2:] {
			dev, ving, ok := strings.Cut(spec, ":")
			if !ok {
				return "", fmt.Errorf("bad target %q (want vdev:vingress)", spec)
			}
			v, err := strconv.Atoi(ving)
			if err != nil {
				return "", fmt.Errorf("bad target %q", spec)
			}
			targets = append(targets, VPortRef{VDev: dev, VIngress: v})
		}
		return "", c.D.MulticastGroup(c.Owner, args[0], vport, targets)

	case "ratelimit":
		if len(args) != 3 {
			return "", fmt.Errorf("ratelimit wants <vdev> <yellowAt> <redAt>")
		}
		y, err1 := strconv.ParseUint(args[1], 0, 64)
		r, err2 := strconv.ParseUint(args[2], 0, 64)
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("bad thresholds")
		}
		return "", c.D.SetRateLimit(c.Owner, args[0], y, r)

	case "meter_tick":
		return "", c.D.TickMeters()

	case "stats":
		if len(args) != 1 {
			return "", fmt.Errorf("stats wants <vdev>")
		}
		st, err := c.D.StatsForVDev(c.Owner, args[0])
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "passes=%d bytes=%d", st.Packets, st.Bytes)
		for _, ts := range st.Tables {
			fmt.Fprintf(&b, "\ntable %s: hits=%d misses=%d entries=%d", ts.Table, ts.Hits, ts.Misses, ts.Entries)
		}
		return b.String(), nil

	case "snapshot_save":
		if len(args) < 2 {
			return "", fmt.Errorf("snapshot_save wants <name> <port:vdev:vingress>...")
		}
		var as []Assignment
		for _, spec := range args[1:] {
			parts := strings.Split(spec, ":")
			if len(parts) != 3 {
				return "", fmt.Errorf("bad assignment %q (want port:vdev:vingress)", spec)
			}
			port := -1
			if parts[0] != "any" {
				p, err := strconv.Atoi(parts[0])
				if err != nil {
					return "", fmt.Errorf("bad port in %q", spec)
				}
				port = p
			}
			ving, err := strconv.Atoi(parts[2])
			if err != nil {
				return "", fmt.Errorf("bad vingress in %q", spec)
			}
			as = append(as, Assignment{PhysPort: port, VDev: parts[1], VIngress: ving})
		}
		return "", c.D.SaveSnapshot(args[0], as)

	case "snapshot_activate":
		if len(args) != 1 {
			return "", fmt.Errorf("snapshot_activate wants <name>")
		}
		return "", c.D.ActivateSnapshot(args[0])

	case "vdevs":
		return strings.Join(c.D.VDevs(), " "), nil
	}

	// Virtual table operations: "<vdev> table_add ...".
	if _, err := c.D.VDev(cmd); err == nil && len(args) > 0 {
		return c.vdevOp(cmd, args[0], args[1:])
	}
	return "", fmt.Errorf("unknown dpmu command %q", cmd)
}

// ExecAll runs a script of commands, reporting the first failing line.
func (c *CLI) ExecAll(script string) error {
	for i, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := c.Exec(line); err != nil {
			return fmt.Errorf("line %d (%q): %w", i+1, line, err)
		}
	}
	return nil
}

// vdevOp translates one virtual table operation.
func (c *CLI) vdevOp(vdev, op string, args []string) (string, error) {
	v, err := c.D.VDev(vdev)
	if err != nil {
		return "", err
	}
	switch op {
	case "table_add":
		if len(args) < 2 {
			return "", fmt.Errorf("table_add wants <table> <action> <match>... => <args>...")
		}
		table, action := args[0], args[1]
		params, actionArgs, prio, err := c.parseEntry(v, table, action, args[2:])
		if err != nil {
			return "", err
		}
		h, err := c.D.TableAdd(c.Owner, vdev, table, action, params, actionArgs, prio)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("handle %d", h), nil
	case "table_delete":
		if len(args) != 2 {
			return "", fmt.Errorf("table_delete wants <table> <handle>")
		}
		h, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad handle %q", args[1])
		}
		return "", c.D.TableDelete(c.Owner, vdev, args[0], h)
	case "table_modify":
		if len(args) < 3 {
			return "", fmt.Errorf("table_modify wants <table> <handle> <action> <match>... => <args>...")
		}
		table := args[0]
		h, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad handle %q", args[1])
		}
		action := args[2]
		params, actionArgs, prio, err := c.parseEntry(v, table, action, args[3:])
		if err != nil {
			return "", err
		}
		return "", c.D.TableModify(c.Owner, vdev, table, h, action, params, actionArgs, prio)
	case "table_set_default":
		if len(args) < 2 {
			return "", fmt.Errorf("table_set_default wants <table> <action> [args...]")
		}
		actionArgs, err := parseValueList(args[2:])
		if err != nil {
			return "", err
		}
		return "", c.D.SetDefault(c.Owner, vdev, args[0], args[1], actionArgs)
	}
	return "", fmt.Errorf("unknown virtual operation %q", op)
}

// parseEntry parses "<match>... => <args>... [priority]" against the
// emulated table's reads.
func (c *CLI) parseEntry(v *VDev, table, action string, rest []string) ([]sim.MatchParam, []bitfield.Value, int, error) {
	tbl, ok := v.Comp.Prog.Tables[table]
	if !ok {
		return nil, nil, 0, fmt.Errorf("program %s has no table %q", v.Comp.Name, table)
	}
	act, ok := v.Comp.Actions[action]
	if !ok {
		return nil, nil, 0, fmt.Errorf("program %s has no action %q", v.Comp.Name, action)
	}
	sep := -1
	for i, a := range rest {
		if a == "=>" {
			sep = i
			break
		}
	}
	var matchToks, argToks []string
	if sep < 0 {
		matchToks = rest
	} else {
		matchToks = rest[:sep]
		argToks = rest[sep+1:]
	}
	if len(matchToks) != len(tbl.Reads) {
		return nil, nil, 0, fmt.Errorf("table %s wants %d match fields, got %d", table, len(tbl.Reads), len(matchToks))
	}
	params := make([]sim.MatchParam, len(tbl.Reads))
	needsPriority := false
	for i, r := range tbl.Reads {
		spec := sim.ReadSpec{Kind: r.Match}
		if r.Field != nil {
			w, err := v.Comp.Prog.FieldWidth(*r.Field)
			if err != nil {
				return nil, nil, 0, err
			}
			spec.Width = w
		} else {
			spec.Width = 1
		}
		p, err := runtime.ParseMatchToken(matchToks[i], spec)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("match %d: %w", i, err)
		}
		params[i] = p
		if r.Match == "ternary" || r.Match == "lpm" || r.Match == "range" {
			needsPriority = true
		}
	}
	priority := 0
	if needsPriority && len(argToks) == len(act.Params)+1 {
		p, err := strconv.Atoi(argToks[len(argToks)-1])
		if err != nil {
			return nil, nil, 0, fmt.Errorf("bad priority %q", argToks[len(argToks)-1])
		}
		priority = p
		argToks = argToks[:len(argToks)-1]
	}
	if len(argToks) != len(act.Params) {
		return nil, nil, 0, fmt.Errorf("action %s wants %d args, got %d", action, len(act.Params), len(argToks))
	}
	actionArgs, err := parseValueList(argToks)
	if err != nil {
		return nil, nil, 0, err
	}
	return params, actionArgs, priority, nil
}

func parseValueList(toks []string) ([]bitfield.Value, error) {
	out := make([]bitfield.Value, len(toks))
	for i, tok := range toks {
		v, err := runtime.ParseValueToken(tok, 0)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
