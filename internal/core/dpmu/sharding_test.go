package dpmu

import "testing"

// TestPIDForPort pins the shard-key resolution the packet I/O runtime uses:
// it must mirror t_assign's priority order (port-specific beats wildcard,
// newest wins within a tier) and track assignment churn, checkpoints, and
// snapshot switches.
func TestPIDForPort(t *testing.T) {
	d := newPersonaDPMU(t)
	const owner = "op"
	l2, err := d.Load("l2", compileFn(t, "l2_switch"), owner, 0)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := d.Load("fw", compileFn(t, "firewall"), owner, 0)
	if err != nil {
		t.Fatal(err)
	}

	if got := d.PIDForPort(1); got != -1 {
		t.Fatalf("unassigned port resolves to %d, want -1", got)
	}

	if err := d.AssignPort(owner, Assignment{PhysPort: -1, VDev: "l2", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort(owner, Assignment{PhysPort: 2, VDev: "fw", VIngress: 2}); err != nil {
		t.Fatal(err)
	}
	if got := d.PIDForPort(1); got != l2.PID {
		t.Fatalf("wildcard port: pid %d, want %d", got, l2.PID)
	}
	if got := d.PIDForPort(2); got != fw.PID {
		t.Fatalf("specific beats wildcard: pid %d, want %d", got, fw.PID)
	}

	// Rollback restores the assignment shadow along with the rows.
	cp := d.Checkpoint()
	d.ClearAssignments()
	if got := d.PIDForPort(2); got != -1 {
		t.Fatalf("after clear: pid %d, want -1", got)
	}
	d.Rollback(cp)
	if got := d.PIDForPort(2); got != fw.PID {
		t.Fatalf("after rollback: pid %d, want %d", got, fw.PID)
	}

	// Snapshot activation replaces the assignment set wholesale.
	if err := d.SaveSnapshot("fwAll", []Assignment{{PhysPort: -1, VDev: "fw", VIngress: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := d.ActivateSnapshot("fwAll"); err != nil {
		t.Fatal(err)
	}
	if got := d.PIDForPort(1); got != fw.PID {
		t.Fatalf("after snapshot: pid %d, want %d", got, fw.PID)
	}
}
