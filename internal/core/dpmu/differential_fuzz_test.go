package dpmu

import (
	"fmt"
	"math/rand"
	"testing"

	"hyper4/internal/functions"
	"hyper4/internal/pkt"
)

// TestDifferentialRandomPopulation is the property-style version of the
// differential check: each trial installs a RANDOM firewall rule set (and
// random L2 stations) identically on the native switch and the persona,
// then compares outputs over a random packet burst. Exercises the DPMU's
// entry translation (masks, priorities, path replication) across many
// shapes, not just the fixed fixtures.
func TestDifferentialRandomPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			native, err := functions.NewSwitch("native", functions.Firewall)
			if err != nil {
				t.Fatal(err)
			}
			d := newPersonaDPMU(t)
			comp := compileFn(t, functions.Firewall)
			if _, err := d.Load("fw", comp, "fuzz", 0); err != nil {
				t.Fatal(err)
			}
			nc := functions.NewFirewallController(native)
			ec := functions.NewFirewallControllerFunc(d.Installer("fuzz", "fw"))

			// Random stations.
			stations := []pkt.MAC{mac1, mac2}
			for i := 0; i < rng.Intn(4); i++ {
				m := pkt.MustMAC(fmt.Sprintf("02:00:00:00:%02x:%02x", trial, i))
				stations = append(stations, m)
			}
			for i, m := range stations {
				port := 1 + i%4
				for _, c := range []*functions.FirewallController{nc, ec} {
					if err := c.AddHost(m, port); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Random rules.
			for i := 0; i < 1+rng.Intn(5); i++ {
				port := uint16(rng.Intn(10000))
				for _, c := range []*functions.FirewallController{nc, ec} {
					var err error
					switch rng.Intn(3) {
					case 0:
						err = c.BlockTCPDstPort(port)
					case 1:
						err = c.BlockUDPDstPort(port)
					default:
						src := pkt.IP4FromUint32(rng.Uint32())
						dst := pkt.IP4FromUint32(rng.Uint32())
						err = c.BlockIPPair(src, dst)
					}
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := d.AssignPort("fuzz", Assignment{PhysPort: -1, VDev: "fw", VIngress: 1}); err != nil {
				t.Fatal(err)
			}
			for _, port := range []int{1, 2, 3, 4} {
				if err := d.MapVPort("fuzz", "fw", port, port); err != nil {
					t.Fatal(err)
				}
			}

			for i := 0; i < 60; i++ {
				frame := randomFrame(rng)
				port := 1 + rng.Intn(4)
				nOut, _, err := native.Process(frame, port)
				if err != nil {
					t.Fatal(err)
				}
				eOut, _, err := d.SW.Process(frame, port)
				if err != nil {
					t.Fatal(err)
				}
				if !sameOutputs(nOut, eOut) {
					t.Fatalf("packet %d (%s) diverged:\nnative:   %s\nemulated: %s",
						i, pkt.Summary(frame), renderOutputs(nOut), renderOutputs(eOut))
				}
			}
		})
	}
}
