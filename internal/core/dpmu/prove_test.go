package dpmu

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/fuse"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/verify"
	"hyper4/internal/core/verify/prove"
	"hyper4/internal/functions"
	"hyper4/internal/sim"
)

// proveHarness loads one builtin into a fresh persona DPMU, installs a
// synthesized entry program (skipping rows the DPMU rejects), and wires the
// identity proof window: physical ports 8..15 assigned one-to-one, virtual
// ports 1..15 mapped to their physical namesakes.
func proveHarness(t *testing.T, fn string, seed int64, skew bool) (*DPMU, *hp4c.Compiled, []prove.Row) {
	t.Helper()
	d := newPersonaDPMU(t)
	comp := compileFn(t, fn)
	if _, err := d.Load("dev", comp, "prover", 0); err != nil {
		t.Fatal(err)
	}
	d.SetTranslationSkew(skew)
	var accepted []prove.Row
	for _, r := range prove.Synthesize(comp.Prog, seed) {
		_, err := d.TableAdd("prover", "dev", EntrySpec{
			Table: r.Table, Action: r.Action, Params: r.Params, Args: r.Args, Priority: r.Priority,
		})
		if err == nil {
			accepted = append(accepted, r)
		}
	}
	d.SetTranslationSkew(false)
	for p := 8; p < 16; p++ {
		if err := d.AssignPort("prover", Assignment{PhysPort: p, VDev: "dev", VIngress: p}); err != nil {
			t.Fatal(err)
		}
	}
	for vp := 1; vp < 16; vp++ {
		if err := d.MapVPort("prover", "dev", vp, vp); err != nil {
			t.Fatal(err)
		}
	}
	return d, comp, accepted
}

// TestProveBuiltins is the headline equivalence claim: for every builtin
// function under a synthesized entry program, the prover shows native ≡
// persona over the whole modeled packet space, with zero findings.
func TestProveBuiltins(t *testing.T) {
	for _, fn := range functions.Names() {
		t.Run(fn, func(t *testing.T) {
			d, _, _ := proveHarness(t, fn, 7, false)
			res, err := d.Prove("prover", "dev", prove.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range res.Findings {
				t.Errorf("finding: %s", f)
			}
			if !res.Proven {
				t.Fatalf("equivalence not proven (%d regions compared)", res.Regions)
			}
			if res.Regions == 0 {
				t.Fatal("no regions compared; the proof is vacuous")
			}
		})
	}
}

// TestProveSkewConfirmsDivergence plants a compiler-class translation bug —
// the DPMU drops the LPM priority offset, so overlapping prefixes win in
// installation order instead of longest-first — and requires the prover to
// find it AND confirm it with a concrete replayed packet.
func TestProveSkewConfirmsDivergence(t *testing.T) {
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.Router)
	if _, err := d.Load("dev", comp, "prover", 0); err != nil {
		t.Fatal(err)
	}
	d.SetTranslationSkew(true)
	// Overlapping prefixes, same caller priority: native resolves by longest
	// prefix, the skewed translation by installation order.
	wide := EntrySpec{
		Table:  "ipv4_lpm",
		Action: "set_nhop",
		Params: []sim.MatchParam{sim.LPM(bitfield.FromUint(32, 0x0a000000), 8)},
		Args: []bitfield.Value{
			bitfield.FromUint(32, 0x0a000001), bitfield.FromUint(9, 1),
		},
		Priority: 1,
	}
	narrow := EntrySpec{
		Table:  "ipv4_lpm",
		Action: "set_nhop",
		Params: []sim.MatchParam{sim.LPM(bitfield.FromUint(32, 0x0a010101), 32)},
		Args: []bitfield.Value{
			bitfield.FromUint(32, 0x0a010102), bitfield.FromUint(9, 2),
		},
		Priority: 1,
	}
	for _, s := range []EntrySpec{wide, narrow} {
		if _, err := d.TableAdd("prover", "dev", s); err != nil {
			t.Fatal(err)
		}
	}
	d.SetTranslationSkew(false)
	for p := 8; p < 16; p++ {
		if err := d.AssignPort("prover", Assignment{PhysPort: p, VDev: "dev", VIngress: p}); err != nil {
			t.Fatal(err)
		}
	}
	for vp := 1; vp < 16; vp++ {
		if err := d.MapVPort("prover", "dev", vp, vp); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Prove("prover", "dev", prove.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Fatal("planted translation skew went unnoticed")
	}
	confirmed := false
	for _, f := range res.Findings {
		if f.Code == verify.CodeProveDiverge && f.Severity == verify.SevError &&
			strings.Contains(f.Detail, "confirmed by replay") {
			confirmed = true
		}
	}
	if !confirmed {
		t.Fatalf("no replay-confirmed divergence among %d findings: %v", len(res.Findings), res.Findings)
	}
}

// TestProveFuzz cross-checks the prover against concrete execution over a
// bounded corpus: when a synthesized program proves equivalent, random
// packets must agree byte-for-byte between an independent native replica and
// the persona; when it does not, every error-grade finding already carries a
// replay-confirmed counterexample (compare.go enforces that), so none may be
// present without a divergence the concrete machines reproduce.
func TestProveFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, fn := range functions.Names() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", fn, seed), func(t *testing.T) {
				d, comp, accepted := proveHarness(t, fn, seed, false)
				res, err := d.Prove("prover", "dev", prove.Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range res.Findings {
					if f.Severity == verify.SevError {
						t.Errorf("synthesized program diverged: %s", f)
					}
				}
				if !res.Proven {
					t.Fatalf("synthesized program not proven: %v", res.Findings)
				}
				native, err := functions.NewSwitch("native", fn)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range accepted {
					if _, err := native.TableAdd(r.Table, r.Action, cloneParams(r.Params), r.Args, r.Priority); err != nil {
						t.Fatalf("native replica rejects %s/%s: %v", r.Table, r.Action, err)
					}
				}
				L := prove.ModelBytes(d.Config(), comp.MaxBytes)
				for i := 0; i < 40; i++ {
					frame := make([]byte, L)
					rng.Read(frame)
					port := 8 + rng.Intn(8)
					nOut, _, err := native.Process(frame, port)
					if err != nil {
						t.Fatal(err)
					}
					pOut, _, err := d.SW.Process(frame, port)
					if err != nil {
						t.Fatal(err)
					}
					if !sameOutputs(nOut, pOut) {
						t.Fatalf("proven equivalent, but packet %d (port %d) diverges:\nnative:  %s\npersona: %s\nframe: %x",
							i, port, renderOutputs(nOut), renderOutputs(pOut), frame)
					}
				}
			})
		}
	}
}

// TestFusePlanProof enables the fuser's prove mode and requires, for every
// builtin, that the fused plan's retained rows prove equivalent to the live
// persona tables (no dropped or misdecoded rows), with the plan actually
// built (a vacuous pass would hide a fusion refusal).
func TestFusePlanProof(t *testing.T) {
	fuse.SetProveMode(true)
	defer fuse.SetProveMode(false)
	for _, fn := range functions.Names() {
		t.Run(fn, func(t *testing.T) {
			d, _, _ := proveHarness(t, fn, 7, false)
			d.SetFusion(true)
			st := d.FusionStatus()
			if st.Plans == 0 {
				t.Fatal("vdev did not fuse; plan proof is vacuous")
			}
			for _, f := range st.Findings {
				if f.Code == verify.CodeProveDiverge || f.Code == verify.CodeProveInconclusive {
					t.Errorf("plan proof finding: %s", f)
				}
			}
		})
	}
}
