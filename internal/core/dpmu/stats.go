package dpmu

import (
	"sort"

	"hyper4/internal/core/persona"
)

// This file translates persona-level counters back into per-virtual-device,
// per-virtual-table terms — the inverse of the table-op translation in
// entries.go. A virtual entry is realized as one a_set_match stage row per
// matching parse path, and a packet follows exactly one parse path, so the
// packets that matched the virtual entry are exactly the packets that hit one
// of its stage rows. Likewise the per-table catch-all rows (v.defaults) are
// hit exactly when the virtual table missed. Summing the switch's per-row hit
// counters over a device's own rows therefore reconstructs what the emulated
// program's operator would see from bmv2 — and cannot leak another device's
// counts, because every row carries this device's program ID.

// VTableStats is one virtual table's match statistics, in the emulated
// program's terms.
type VTableStats struct {
	Table   string
	Hits    int64 // packets that matched an installed virtual entry
	Misses  int64 // packets that fell through to the default / catch-all
	Entries int   // installed virtual entries
}

// VDevStats aggregates one virtual device's traffic and table statistics.
type VDevStats struct {
	VDev    string
	Owner   string
	Packets uint64 // pipeline passes attributed to this device
	Bytes   uint64
	Tables  []VTableStats // sorted by table name
}

// matchRowHits sums the persona per-entry hit counters of the a_set_match
// rows in a row set. Rows that vanished (mid-unload) count zero.
func (d *DPMU) matchRowHits(rows []pentry) int64 {
	var n int64
	for _, r := range rows {
		if !r.match {
			continue
		}
		if hits, err := d.SW.EntryHits(r.table, r.handle); err == nil {
			n += hits
		}
	}
	return n
}

// statsFor builds the per-virtual-table view for one device.
func (d *DPMU) statsFor(v *VDev) VDevStats {
	st := VDevStats{VDev: v.Name, Owner: v.Owner}
	st.Packets, st.Bytes, _ = d.SW.CounterRead(persona.CounterVDev, v.PID)

	// Every compiled table appears, even with zero entries and zero traffic.
	byTable := map[string]*VTableStats{}
	for table := range v.Comp.Slots {
		byTable[table] = &VTableStats{Table: table}
	}
	for _, e := range v.entries {
		ts, ok := byTable[e.table]
		if !ok { // defensive: entry for a table no longer in Slots
			ts = &VTableStats{Table: e.table}
			byTable[e.table] = ts
		}
		ts.Entries++
		ts.Hits += d.matchRowHits(e.rows)
	}
	for table, rows := range v.defaults {
		ts, ok := byTable[table]
		if !ok {
			ts = &VTableStats{Table: table}
			byTable[table] = ts
		}
		ts.Misses += d.matchRowHits(rows)
	}
	for _, ts := range byTable {
		st.Tables = append(st.Tables, *ts)
	}
	sort.Slice(st.Tables, func(i, j int) bool { return st.Tables[i].Table < st.Tables[j].Table })
	return st
}

// StatsForVDev returns one device's virtual-table statistics. The owner must
// be authorized for the device — the same isolation rule as every other
// DPMU operation, so a tenant can never read another tenant's counters.
func (d *DPMU) StatsForVDev(owner, vdev string) (VDevStats, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return VDevStats{}, err
	}
	return d.statsFor(v), nil
}

// AllStats returns every device's statistics, sorted by device name. This is
// the operator-level view the metrics exporter scrapes; tenant-facing paths
// go through StatsForVDev.
func (d *DPMU) AllStats() []VDevStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]VDevStats, 0, len(d.vdevs))
	for _, name := range d.vdevNames() {
		out = append(out, d.statsFor(d.vdevs[name]))
	}
	return out
}
