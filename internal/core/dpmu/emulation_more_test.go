package dpmu

import (
	"bytes"
	"testing"

	"hyper4/internal/functions"
	"hyper4/internal/pkt"
)

// loadFirewall loads an emulated firewall blocking TCP destination port 5201
// (the rule from §3.2), hosts on ports 1 and 2.
func loadFirewall(t *testing.T, d *DPMU, name, owner string) {
	t.Helper()
	comp := compileFn(t, functions.Firewall)
	if _, err := d.Load(name, comp, owner, 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewFirewallControllerFunc(d.Installer(owner, name))
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.BlockTCPDstPort(5201); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{1, 2} {
		if err := d.AssignPort(owner, Assignment{PhysPort: port, VDev: name, VIngress: port}); err != nil {
			t.Fatal(err)
		}
		if err := d.MapVPort(owner, name, port, port); err != nil {
			t.Fatal(err)
		}
	}
}

func tcpFrame(dstPort uint16) []byte {
	return pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ip1, Dst: ip2},
		&pkt.TCP{SrcPort: 44444, DstPort: dstPort},
		pkt.Payload("data"),
	))
}

func icmpFrame() []byte {
	return pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoICMP, Src: ip1, Dst: ip2},
		&pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 7, Seq: 1},
	))
}

func TestEmulatedFirewall(t *testing.T) {
	d := newPersonaDPMU(t)
	loadFirewall(t, d, "fw", "alice")

	// Blocked TCP port drops; §6.4: each TCP packet costs two resubmits.
	out, tr, err := d.SW.Process(tcpFrame(5201), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("blocked TCP should drop: %+v (tables %v)", out, tr.Tables)
	}
	if tr.Resubmits != 2 {
		t.Errorf("TCP resubmits = %d, want 2 (paper §6.4)", tr.Resubmits)
	}

	// Allowed TCP port passes unmodified.
	frame := tcpFrame(80)
	out, tr, err = d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("allowed TCP should pass: %+v (tables %v)", out, tr.Tables)
	}
	if !bytes.Equal(out[0].Data, frame) {
		t.Errorf("firewall must not modify frames:\n got %x\nwant %x", out[0].Data, frame)
	}
	t.Logf("emulated firewall TCP applies=%d (paper: 22), resubmits=%d", tr.Applies, tr.Resubmits)

	// ICMP passes with exactly one resubmit (§6.4: one per ping).
	ping := icmpFrame()
	out, tr, err = d.SW.Process(ping, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 || !bytes.Equal(out[0].Data, ping) {
		t.Fatalf("ICMP should pass unmodified: %+v", out)
	}
	if tr.Resubmits != 1 {
		t.Errorf("ICMP resubmits = %d, want 1 (paper §6.4)", tr.Resubmits)
	}

	// Non-IP traffic switches straight through.
	odd := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x88cc}, pkt.Payload("lldp-ish")))
	out, tr, err = d.SW.Process(odd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 || !bytes.Equal(out[0].Data, odd) {
		t.Fatalf("non-IP should pass: %+v", out)
	}
	if tr.Resubmits != 0 {
		t.Errorf("non-IP resubmits = %d, want 0", tr.Resubmits)
	}
}

func TestEmulatedARPProxy(t *testing.T) {
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.ARPProxy)
	if _, err := d.Load("arp", comp, "alice", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewARPControllerFunc(d.Installer("alice", "arp"))
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddProxiedHost(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{1, 2} {
		if err := d.AssignPort("alice", Assignment{PhysPort: port, VDev: "arp", VIngress: port}); err != nil {
			t.Fatal(err)
		}
		if err := d.MapVPort("alice", "arp", port, port); err != nil {
			t.Fatal(err)
		}
	}

	// An ARP request for the proxied host is answered in place.
	req := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: mac1, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: mac1, SenderIP: ip1, TargetIP: ip2},
	))
	out, tr, err := d.SW.Process(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("reply should exit the ingress port: %+v (tables %v)", out, tr.Tables)
	}
	eth, rest, err := pkt.DecodeEthernet(out[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Dst != mac1 || eth.Src != mac2 {
		t.Errorf("reply MACs: %v -> %v", eth.Src, eth.Dst)
	}
	reply, err := pkt.DecodeARP(rest)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != pkt.ARPReply || reply.SenderHW != mac2 || reply.SenderIP != ip2 ||
		reply.TargetHW != mac1 || reply.TargetIP != ip1 {
		t.Errorf("reply: %+v", reply)
	}
	t.Logf("emulated arp_proxy applies=%d (paper: 48), resubmits=%d", tr.Applies, tr.Resubmits)
	if tr.Applies < 30 {
		t.Errorf("applies = %d; the nine-primitive reply should cost ~40+", tr.Applies)
	}

	// Compare against the native proxy on the same request.
	native, err := functions.NewSwitch("native", functions.ARPProxy)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := functions.NewARPController(native)
	if err != nil {
		t.Fatal(err)
	}
	if err := nc.AddProxiedHost(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	nOut, _, err := native.Process(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nOut) != 1 || !bytes.Equal(nOut[0].Data, out[0].Data) {
		t.Errorf("native and emulated replies differ:\nnative   %x\nemulated %x", nOut[0].Data, out[0].Data)
	}

	// Non-ARP traffic is switched.
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}, pkt.Payload("xyz")))
	out, _, err = d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 || !bytes.Equal(out[0].Data, frame) {
		t.Fatalf("non-ARP should switch: %+v", out)
	}

	// An ARP request for an unproxied IP falls through to L2 switching.
	req2 := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: mac1, SenderIP: ip1, TargetIP: pkt.MustIP4("10.0.0.77")},
	))
	out, _, err = d.SW.Process(req2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 || !bytes.Equal(out[0].Data, req2) {
		t.Fatalf("unproxied request should be switched: %+v", out)
	}
}

func TestEmulatedRouter(t *testing.T) {
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.Router)
	if _, err := d.Load("r1", comp, "alice", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewRouterControllerFunc(d.Installer("alice", "r1"))
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	nhop := pkt.MustIP4("192.168.1.1")
	rMAC := pkt.MustMAC("aa:aa:aa:aa:aa:03")
	if err := c.AddRoute(pkt.MustIP4("20.0.0.0"), 8, nhop, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRoute(pkt.MustIP4("20.1.0.0"), 16, pkt.MustIP4("192.168.2.1"), 4); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNextHop(nhop, mac2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNextHop(pkt.MustIP4("192.168.2.1"), pkt.MustMAC("00:00:00:00:00:04")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPortMAC(3, rMAC); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPortMAC(4, pkt.MustMAC("aa:aa:aa:aa:aa:04")); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("alice", Assignment{PhysPort: -1, VDev: "r1", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{3, 4} {
		if err := d.MapVPort("alice", "r1", port, port); err != nil {
			t.Fatal(err)
		}
	}

	frame := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MustMAC("aa:aa:aa:aa:aa:00"), Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: pkt.MustIP4("20.9.9.9")},
		&pkt.UDP{SrcPort: 1000, DstPort: 2000},
		pkt.Payload("payload"),
	))
	out, tr, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 3 {
		t.Fatalf("outputs: %+v (tables %v)", out, tr.Tables)
	}
	eth, rest, err := pkt.DecodeEthernet(out[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Dst != mac2 || eth.Src != rMAC {
		t.Errorf("MAC rewrite: %v -> %v", eth.Src, eth.Dst)
	}
	ip, _, err := pkt.DecodeIPv4(rest)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d, want 63", ip.TTL)
	}
	if pkt.Checksum(rest[:20]) != 0 {
		t.Errorf("emulated router should recompute the IPv4 checksum (§5.3)")
	}
	if tr.Resubmits != 1 {
		t.Errorf("router resubmits = %d, want 1 (needs 34 bytes)", tr.Resubmits)
	}
	t.Logf("emulated router applies=%d (paper: 28)", tr.Applies)

	// LPM precedence: the /16 route must beat the /8.
	frame2 := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MustMAC("aa:aa:aa:aa:aa:00"), Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: pkt.MustIP4("20.1.2.3")},
		&pkt.UDP{SrcPort: 1, DstPort: 2},
	))
	out, _, err = d.SW.Process(frame2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 4 {
		t.Fatalf("/16 route should win: %+v", out)
	}

	// Expired TTL drops (validate_ttl entry via the DPMU).
	frame3 := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MustMAC("aa:aa:aa:aa:aa:00"), Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 1, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: pkt.MustIP4("20.9.9.9")},
		&pkt.UDP{SrcPort: 1, DstPort: 2},
	))
	out, _, err = d.SW.Process(frame3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("ttl=1 should drop: %+v", out)
	}
}
