package dpmu

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/sim"
)

// TestRandomProgramDifferential is the strongest fidelity check in the
// repository: it GENERATES random P4 programs (random headers, linear
// parsers, random modify-field actions, random tables and control flow),
// compiles each for the persona, installs random entries identically on the
// native switch and the emulated one, and requires byte-identical outputs
// over random traffic.
func TestRandomProgramDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			prog := randomEmulatableProgram(rng)
			h, err := hlir.Resolve(prog)
			if err != nil {
				t.Fatalf("random program does not resolve: %v", err)
			}
			comp, err := hp4c.Compile(h, persona.Reference)
			if err != nil {
				t.Fatalf("random program does not compile: %v", err)
			}
			native, err := sim.New("native", h)
			if err != nil {
				t.Fatal(err)
			}
			d := newPersonaDPMU(t)
			if _, err := d.Load("dev", comp, "rp", 0); err != nil {
				t.Fatal(err)
			}

			// Install identical random entries on both.
			for _, tbl := range prog.Tables {
				nEntries := 1 + rng.Intn(4)
				for e := 0; e < nEntries; e++ {
					params := randomMatchParams(rng, h, tbl)
					action := tbl.Actions[rng.Intn(len(tbl.Actions))]
					args := randomArgs(rng, h, action)
					prio := 1 + rng.Intn(8)
					if _, err := native.TableAdd(tbl.Name, action, params, args, prio); err != nil {
						t.Fatal(err)
					}
					if _, err := d.TableAdd("rp", "dev", EntrySpec{Table: tbl.Name, Action: action, Params: cloneParams(params), Args: args, Priority: prio}); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := d.AssignPort("rp", Assignment{PhysPort: -1, VDev: "dev", VIngress: 1}); err != nil {
				t.Fatal(err)
			}
			for port := 1; port <= 4; port++ {
				if err := d.MapVPort("rp", "dev", port, port); err != nil {
					t.Fatal(err)
				}
			}

			for i := 0; i < 40; i++ {
				frame := make([]byte, 60+rng.Intn(40))
				rng.Read(frame)
				port := 1 + rng.Intn(2)
				nOut, _, err := native.Process(frame, port)
				if err != nil {
					t.Fatal(err)
				}
				eOut, _, err := d.SW.Process(frame, port)
				if err != nil {
					t.Fatal(err)
				}
				if !sameOutputs(nOut, eOut) {
					t.Fatalf("packet %d diverged:\nnative:   %s\nemulated: %s\nframe: %x",
						i, renderOutputs(nOut), renderOutputs(eOut), frame)
				}
			}
		})
	}
}

// randomEmulatableProgram builds a random program within the persona's
// emulation envelope: ≤4 applied tables, single-field reads, actions from
// {modify header/meta field with const or arg, set egress port, drop, noop}.
func randomEmulatableProgram(rng *rand.Rand) *ast.Program {
	p := &ast.Program{Name: "random"}
	// Header types: byte-aligned, total parse ≤ 60 bytes.
	nTypes := 1 + rng.Intn(3)
	for i := 0; i < nTypes; i++ {
		ht := &ast.HeaderType{Name: fmt.Sprintf("t%d", i)}
		for j := 0; j < 1+rng.Intn(3); j++ {
			ht.Fields = append(ht.Fields, ast.FieldDecl{
				Name:  fmt.Sprintf("f%d", j),
				Width: 8 * (1 + rng.Intn(4)),
			})
		}
		p.HeaderTypes = append(p.HeaderTypes, ht)
	}
	// Metadata type.
	p.HeaderTypes = append(p.HeaderTypes, &ast.HeaderType{
		Name:   "m_t",
		Fields: []ast.FieldDecl{{Name: "x", Width: 16}, {Name: "y", Width: 8}},
	})
	p.Instances = append(p.Instances, &ast.Instance{Name: "m", TypeName: "m_t", Metadata: true})
	total := 0
	nHdrs := 1 + rng.Intn(3)
	for i := 0; i < nHdrs; i++ {
		ht := p.HeaderTypes[rng.Intn(nTypes)]
		if total+ht.Width()/8 > 60 {
			break
		}
		total += ht.Width() / 8
		p.Instances = append(p.Instances, &ast.Instance{
			Name: fmt.Sprintf("h%d", i), TypeName: ht.Name,
		})
	}
	// Linear parser over the headers.
	var stmts []ast.ParserStmt
	for _, inst := range p.Instances {
		if !inst.Metadata {
			stmts = append(stmts, ast.ParserStmt{
				Extract: &ast.HeaderRef{Instance: inst.Name, Index: ast.IndexNone},
			})
		}
	}
	p.ParserStates = append(p.ParserStates, &ast.ParserState{
		Name:       "start",
		Statements: stmts,
		Return:     ast.ParserReturn{Kind: ast.ReturnDirect, State: ast.StateIngress},
	})

	fieldOf := func(inst *ast.Instance) (ast.FieldRef, int) {
		var ht *ast.HeaderType
		for _, t := range p.HeaderTypes {
			if t.Name == inst.TypeName {
				ht = t
			}
		}
		f := ht.Fields[rng.Intn(len(ht.Fields))]
		return ast.FieldRef{Instance: inst.Name, Index: ast.IndexNone, Field: f.Name}, f.Width
	}
	randFieldRef := func() (ast.FieldRef, int) {
		return fieldOf(p.Instances[rng.Intn(len(p.Instances))])
	}

	// Actions: a forwarding action, a dropper, and random modifiers.
	p.Actions = append(p.Actions,
		&ast.Action{Name: "fwd", Params: []string{"port"}, Body: []ast.PrimitiveCall{
			{Name: "modify_field", Args: []ast.Expr{
				{Kind: ast.ExprField, Field: ast.FieldRef{Instance: hlir.StandardMetadata, Index: ast.IndexNone, Field: hlir.FieldEgressSpec}},
				{Kind: ast.ExprParam, Param: "port"},
			}},
		}},
		&ast.Action{Name: "die", Body: []ast.PrimitiveCall{{Name: "drop"}}},
		&ast.Action{Name: "idle", Body: []ast.PrimitiveCall{{Name: "no_op"}}},
	)
	for i := 0; i < 1+rng.Intn(3); i++ {
		a := &ast.Action{Name: fmt.Sprintf("mod%d", i)}
		for j := 0; j < 1+rng.Intn(3); j++ {
			dst, w := randFieldRef()
			var src ast.Expr
			if rng.Intn(2) == 0 {
				src = ast.Expr{Kind: ast.ExprConst, Const: big.NewInt(int64(rng.Intn(1 << 16)))}
			} else {
				ref, _ := randFieldRef()
				src = ast.Expr{Kind: ast.ExprField, Field: ref}
			}
			_ = w
			a.Body = append(a.Body, ast.PrimitiveCall{
				Name: "modify_field",
				Args: []ast.Expr{{Kind: ast.ExprField, Field: dst}, src},
			})
		}
		// End with a forwarding decision half the time so traffic flows.
		if rng.Intn(2) == 0 {
			a.Body = append(a.Body, ast.PrimitiveCall{
				Name: "modify_field",
				Args: []ast.Expr{
					{Kind: ast.ExprField, Field: ast.FieldRef{Instance: hlir.StandardMetadata, Index: ast.IndexNone, Field: hlir.FieldEgressSpec}},
					{Kind: ast.ExprConst, Const: big.NewInt(int64(1 + rng.Intn(4)))},
				},
			})
		}
		p.Actions = append(p.Actions, a)
	}

	// Tables: single-field reads; each table's action set samples the pool.
	kinds := []ast.MatchKind{ast.MatchExact, ast.MatchTernary, ast.MatchLPM}
	nTbls := 1 + rng.Intn(3)
	for i := 0; i < nTbls; i++ {
		ref, _ := randFieldRef()
		acts := map[string]bool{}
		for len(acts) < 1+rng.Intn(3) {
			acts[p.Actions[rng.Intn(len(p.Actions))].Name] = true
		}
		var actList []string
		for name := range acts {
			actList = append(actList, name)
		}
		// Deterministic order for reproducibility.
		for a := 0; a < len(actList); a++ {
			for b := a + 1; b < len(actList); b++ {
				if actList[b] < actList[a] {
					actList[a], actList[b] = actList[b], actList[a]
				}
			}
		}
		// A compile-time default must be a zero-argument action (a declared
		// default has no argument source).
		var zeroArg []string
		for _, name := range actList {
			for _, a := range p.Actions {
				if a.Name == name && len(a.Params) == 0 {
					zeroArg = append(zeroArg, name)
				}
			}
		}
		def := ""
		if len(zeroArg) > 0 && rng.Intn(2) == 0 {
			def = zeroArg[rng.Intn(len(zeroArg))]
		}
		t := &ast.Table{
			Name:    fmt.Sprintf("tbl%d", i),
			Reads:   []ast.ReadEntry{{Field: &ref, Match: kinds[rng.Intn(len(kinds))]}},
			Actions: actList,
			Default: def,
		}
		p.Tables = append(p.Tables, t)
	}
	var body []ast.Stmt
	for _, t := range p.Tables {
		body = append(body, ast.Stmt{Kind: ast.StmtApply, Table: t.Name})
	}
	p.Controls = append(p.Controls, &ast.Control{Name: ast.ControlIngress, Body: body})
	return p
}

// randomMatchParams builds random match params for a table's reads.
func randomMatchParams(rng *rand.Rand, h *hlir.Program, tbl *ast.Table) []sim.MatchParam {
	out := make([]sim.MatchParam, len(tbl.Reads))
	for i, r := range tbl.Reads {
		w, _ := h.FieldWidth(*r.Field)
		v := randomValue(rng, w)
		switch r.Match {
		case ast.MatchExact:
			out[i] = sim.Exact(v)
		case ast.MatchTernary:
			out[i] = sim.Ternary(v, randomValue(rng, w))
		case ast.MatchLPM:
			out[i] = sim.LPM(v, rng.Intn(w+1))
		}
	}
	return out
}

func randomArgs(rng *rand.Rand, h *hlir.Program, action string) []bitfield.Value {
	act := h.Actions[action]
	out := make([]bitfield.Value, len(act.Params))
	for i := range out {
		// Ports must be deliverable: keep them in the mapped 1..4 range.
		out[i] = bitfield.FromUint(9, uint64(1+rng.Intn(4)))
	}
	return out
}

func cloneParams(in []sim.MatchParam) []sim.MatchParam {
	return append([]sim.MatchParam(nil), in...)
}

func randomValue(rng *rand.Rand, width int) bitfield.Value {
	b := make([]byte, (width+7)/8)
	rng.Read(b)
	return bitfield.FromBytes(width, b)
}
