package dpmu

import (
	"bytes"
	"testing"

	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// Partial is the partial-virtualization configuration (§7.1, Figure 9(c)):
// the reference persona with the directly-implemented parser.
var partialCfg = persona.Config{
	Stages: 4, Primitives: 9,
	ParseDefault: 20, ParseStep: 10, ParseMax: 100,
	FixedParser: true,
}

func newPartialDPMU(t *testing.T) *DPMU {
	t.Helper()
	p, err := persona.Generate(partialCfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("hp4p", p.Program)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(sw, p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compilePartial(t *testing.T, fn string) *hp4c.Compiled {
	t.Helper()
	prog, err := functions.Load(fn)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := hp4c.Compile(prog, partialCfg)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// TestPartialVirtualizationFirewall verifies §7.1's performance claim in
// kind: with the fixed parser, the emulated firewall needs ZERO resubmits
// (the full persona needs two per TCP packet) while behaving identically.
func TestPartialVirtualizationFirewall(t *testing.T) {
	d := newPartialDPMU(t)
	comp := compilePartial(t, functions.Firewall)
	// No parse-control row may be a resubmit row.
	for _, pe := range comp.ParseEntries {
		if pe.More {
			t.Fatalf("fixed parser must not emit resubmit rows: %+v", pe)
		}
	}
	if _, err := d.Load("fw", comp, "op", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewFirewallControllerFunc(d.Installer("op", "fw"))
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.BlockTCPDstPort(5201); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("op", Assignment{PhysPort: -1, VDev: "fw", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{1, 2} {
		if err := d.MapVPort("op", "fw", port, port); err != nil {
			t.Fatal(err)
		}
	}

	// Blocked TCP drops, with zero resubmits.
	out, tr, err := d.SW.Process(tcpFrame(5201), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("blocked TCP should drop: %+v (tables %v)", out, tr.Tables)
	}
	if tr.Resubmits != 0 {
		t.Errorf("partial virtualization resubmits = %d, want 0 (full persona: 2)", tr.Resubmits)
	}
	// Allowed TCP passes unmodified.
	frame := tcpFrame(80)
	out, tr, err = d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("allowed TCP: %+v", out)
	}
	if !bytes.Equal(out[0].Data, frame) {
		t.Errorf("frame modified:\n got %x\nwant %x", out[0].Data, frame)
	}
	if tr.Resubmits != 0 || tr.Passes != 1 {
		t.Errorf("passes=%d resubmits=%d, want a single pass", tr.Passes, tr.Resubmits)
	}
	t.Logf("partial firewall: %d applies, %d passes (full persona: %d applies, 3 passes)",
		tr.Applies, tr.Passes, 27)
}

// TestPartialVirtualizationARP checks a field-rewriting program (the ARP
// proxy's nine-primitive reply) through the fixed parser's write-back path.
func TestPartialVirtualizationARP(t *testing.T) {
	d := newPartialDPMU(t)
	comp := compilePartial(t, functions.ARPProxy)
	if _, err := d.Load("arp", comp, "op", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewARPControllerFunc(d.Installer("op", "arp"))
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddProxiedHost(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("op", Assignment{PhysPort: -1, VDev: "arp", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.MapVPort("op", "arp", 1, 1); err != nil {
		t.Fatal(err)
	}
	req := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: mac1, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: mac1, SenderIP: ip1, TargetIP: ip2},
	))
	out, tr, err := d.SW.Process(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("reply: %+v (tables %v)", out, tr.Tables)
	}
	_, rest, _ := pkt.DecodeEthernet(out[0].Data)
	reply, err := pkt.DecodeARP(rest)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != pkt.ARPReply || reply.SenderHW != mac2 || reply.TargetHW != mac1 {
		t.Errorf("reply: %+v", reply)
	}
	if tr.Resubmits != 0 {
		t.Errorf("resubmits = %d, want 0", tr.Resubmits)
	}
}

// TestPartialVirtualizationRouterChecksum exercises the checksum fix-up
// through the fixed write-back.
func TestPartialVirtualizationRouterChecksum(t *testing.T) {
	d := newPartialDPMU(t)
	comp := compilePartial(t, functions.Router)
	if _, err := d.Load("r", comp, "op", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewRouterControllerFunc(d.Installer("op", "r"))
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRoute(ip2, 32, ip2, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNextHop(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPortMAC(2, pkt.MustMAC("aa:aa:aa:aa:aa:02")); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("op", Assignment{PhysPort: -1, VDev: "r", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.MapVPort("op", "r", 2, 2); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MustMAC("aa:aa:aa:aa:aa:00"), Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: ip2},
		&pkt.UDP{SrcPort: 9, DstPort: 9},
	))
	out, tr, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("route: %+v (tables %v)", out, tr.Tables)
	}
	_, rest, _ := pkt.DecodeEthernet(out[0].Data)
	ip, _, err := pkt.DecodeIPv4(rest)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d", ip.TTL)
	}
	if pkt.Checksum(rest[:20]) != 0 {
		t.Error("checksum invalid through partial virtualization")
	}
	if tr.Resubmits != 0 {
		t.Errorf("resubmits = %d, want 0 (full persona: 1)", tr.Resubmits)
	}
}

// TestPartialDifferential compares the full and partial personas on the
// same firewall population over random traffic in the fixed header family.
func TestPartialDifferential(t *testing.T) {
	full := newPersonaDPMU(t)
	part := newPartialDPMU(t)
	for _, tc := range []struct {
		d    *DPMU
		comp *hp4c.Compiled
	}{
		{full, compileFn(t, functions.Firewall)},
		{part, compilePartial(t, functions.Firewall)},
	} {
		if _, err := tc.d.Load("fw", tc.comp, "op", 0); err != nil {
			t.Fatal(err)
		}
		c := functions.NewFirewallControllerFunc(tc.d.Installer("op", "fw"))
		if err := c.AddHost(mac1, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.AddHost(mac2, 2); err != nil {
			t.Fatal(err)
		}
		if err := c.BlockTCPDstPort(5201); err != nil {
			t.Fatal(err)
		}
		if err := c.BlockUDPDstPort(53); err != nil {
			t.Fatal(err)
		}
		if err := tc.d.AssignPort("op", Assignment{PhysPort: -1, VDev: "fw", VIngress: 1}); err != nil {
			t.Fatal(err)
		}
		for _, port := range []int{1, 2} {
			if err := tc.d.MapVPort("op", "fw", port, port); err != nil {
				t.Fatal(err)
			}
		}
	}
	probes := [][]byte{
		tcpFrame(5201), tcpFrame(80), icmpFrame(),
		pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x88cc})),
		pkt.Pad(pkt.Serialize(
			&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: ip2},
			&pkt.UDP{SrcPort: 1, DstPort: 53})),
	}
	for i, p := range probes {
		fOut, _, err := full.SW.Process(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		pOut, _, err := part.SW.Process(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutputs(fOut, pOut) {
			t.Errorf("probe %d diverged:\nfull:    %s\npartial: %s", i, renderOutputs(fOut), renderOutputs(pOut))
		}
	}
}
