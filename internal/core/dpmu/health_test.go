package dpmu

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hyper4/internal/chaos"
	"hyper4/internal/pkt"
)

// fakeClock drives the health tracker's time deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testHealthConfig is a tight breaker for unit tests.
func testHealthConfig(policy QuarantinePolicy) HealthConfig {
	return HealthConfig{
		Window:       time.Second,
		TripFaults:   3,
		OpenFor:      100 * time.Millisecond,
		ProbePackets: 2,
		Policy:       policy,
	}
}

func l2Frame() []byte {
	return pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}, pkt.Payload("hello!")))
}

// stateOf fetches one device's health from a snapshot.
func stateOf(t *testing.T, snap HealthSnapshot, vdev string) VDevHealth {
	t.Helper()
	for _, v := range snap.VDevs {
		if v.VDev == vdev {
			return v
		}
	}
	t.Fatalf("no health record for %q in %+v", vdev, snap)
	return VDevHealth{}
}

func TestBreakerTripQuarantineAndRecover(t *testing.T) {
	d := newPersonaDPMU(t)
	clock := newFakeClock()
	d.SetHealthClock(clock.now)
	d.SetHealthConfig(testHealthConfig(PolicyDrop))
	loadL2(t, d, "l2", "alice")

	if got := stateOf(t, d.Health(), "l2"); got.State != Healthy || got.PID != 1 {
		t.Fatalf("initial health = %+v", got)
	}

	// Inject a panic into every action attributed to the device (PID 1).
	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 1, PanicEvery: 1}))
	frame := l2Frame()
	for i := 0; i < 2; i++ {
		if _, _, err := d.SW.Process(frame, 1); err == nil {
			t.Fatalf("packet %d should fault", i)
		}
	}
	if got := stateOf(t, d.Health(), "l2"); got.State != Degraded || got.WindowFaults != 2 {
		t.Fatalf("after 2 faults: %+v", got)
	}
	if _, _, err := d.SW.Process(frame, 1); err == nil {
		t.Fatal("third packet should fault")
	}
	got := stateOf(t, d.Health(), "l2")
	if got.State != Quarantined || got.Trips != 1 || got.Faults != 3 {
		t.Fatalf("after trip: %+v", got)
	}
	if got.LastKind != "panic" {
		t.Fatalf("last fault kind = %q", got.LastKind)
	}

	// Quarantined: packets are dropped silently — and never reach the
	// injector, so no further faults accrue.
	out, _, err := d.SW.Process(frame, 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("quarantined: out=%v err=%v", out, err)
	}
	if got := d.SW.Metrics().Faults.QuarantineDrops; got == 0 {
		t.Fatal("no quarantine drops counted")
	}

	// The defect "clears" (injector removed); after OpenFor the breaker goes
	// half-open and two clean probes restore the device.
	d.SW.SetInjector(nil)
	clock.advance(150 * time.Millisecond)
	if got := stateOf(t, d.Health(), "l2"); got.State != Probing || got.ProbesLeft != 2 {
		t.Fatalf("after open interval: %+v", got)
	}
	for i := 0; i < 2; i++ {
		out, _, err := d.SW.Process(frame, 1)
		if err != nil || len(out) != 1 || out[0].Port != 2 {
			t.Fatalf("probe %d: out=%v err=%v", i, out, err)
		}
	}
	if got := stateOf(t, d.Health(), "l2"); got.State != Healthy {
		t.Fatalf("after clean probes: %+v", got)
	}
	// Fully restored: traffic forwards, byte-identical.
	out, _, err = d.SW.Process(frame, 1)
	if err != nil || len(out) != 1 || !bytes.Equal(out[0].Data, frame) {
		t.Fatalf("restored: out=%v err=%v", out, err)
	}
}

func TestFaultDuringProbingRetrips(t *testing.T) {
	d := newPersonaDPMU(t)
	clock := newFakeClock()
	d.SetHealthClock(clock.now)
	d.SetHealthConfig(testHealthConfig(PolicyDrop))
	loadL2(t, d, "l2", "alice")

	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 1, PanicEvery: 1}))
	frame := l2Frame()
	for i := 0; i < 3; i++ {
		_, _, _ = d.SW.Process(frame, 1)
	}
	if got := stateOf(t, d.Health(), "l2"); got.State != Quarantined {
		t.Fatalf("not tripped: %+v", got)
	}
	clock.advance(150 * time.Millisecond)
	if got := stateOf(t, d.Health(), "l2"); got.State != Probing {
		t.Fatalf("not probing: %+v", got)
	}
	// The defect persists: the first probe faults and re-trips immediately.
	if _, _, err := d.SW.Process(frame, 1); err == nil {
		t.Fatal("probe should fault")
	}
	if got := stateOf(t, d.Health(), "l2"); got.State != Quarantined || got.Trips != 2 {
		t.Fatalf("after faulty probe: %+v", got)
	}
}

func TestDegradedDecaysToHealthy(t *testing.T) {
	d := newPersonaDPMU(t)
	clock := newFakeClock()
	d.SetHealthClock(clock.now)
	d.SetHealthConfig(testHealthConfig(PolicyDrop))
	loadL2(t, d, "l2", "alice")

	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 1, PanicEvery: 1, PanicFirst: 1}))
	if _, _, err := d.SW.Process(l2Frame(), 1); err == nil {
		t.Fatal("packet should fault")
	}
	if got := stateOf(t, d.Health(), "l2"); got.State != Degraded {
		t.Fatalf("after 1 fault: %+v", got)
	}
	clock.advance(2 * time.Second) // window empties
	if got := stateOf(t, d.Health(), "l2"); got.State != Healthy || got.Faults != 1 {
		t.Fatalf("after window decay: %+v", got)
	}
}

// tcp5201 is traffic the composition's firewall blocks.
func tcp5201() []byte {
	return pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ip1, Dst: ip2},
		&pkt.TCP{SrcPort: 40000, DstPort: 5201},
	))
}

func ping() []byte {
	return pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoICMP, Src: ip1, Dst: ip2},
		&pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 1, Seq: 1},
	))
}

func TestBypassPolicyRewiresChain(t *testing.T) {
	d := newPersonaDPMU(t)
	clock := newFakeClock()
	d.SetHealthClock(clock.now)
	d.SetHealthConfig(testHealthConfig(PolicyBypass))
	loadComposition(t, d) // arp(1) → fw(2) → r(3)

	// Sanity: the firewall blocks TCP 5201, pings route.
	if out, _, err := d.SW.Process(tcp5201(), 1); err != nil || len(out) != 0 {
		t.Fatalf("blocked flow pre-fault: out=%v err=%v", out, err)
	}
	if out, _, err := d.SW.Process(ping(), 1); err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("ping pre-fault: out=%v err=%v", out, err)
	}

	// Trip the firewall.
	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 2, PanicEvery: 1, PanicFirst: 3}))
	for i := 0; i < 3; i++ {
		if _, _, err := d.SW.Process(ping(), 1); err == nil {
			t.Fatalf("packet %d should fault in fw", i)
		}
	}
	got := stateOf(t, d.Health(), "fw")
	if got.State != Quarantined || !got.Bypassed {
		t.Fatalf("fw after trip: %+v", got)
	}

	// The chain keeps forwarding around the dead firewall: pings still
	// route, and — the price of bypass — blocked traffic passes too.
	out, _, err := d.SW.Process(ping(), 1)
	if err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("ping under bypass: out=%v err=%v", out, err)
	}
	out, _, err = d.SW.Process(tcp5201(), 1)
	if err != nil || len(out) != 1 {
		t.Fatalf("bypassed flow: out=%v err=%v", out, err)
	}

	// Half-open: the links are restored so probes traverse the firewall
	// again; the injector is exhausted (PanicFirst), so probes run clean.
	clock.advance(150 * time.Millisecond)
	if got := stateOf(t, d.Health(), "fw"); got.State != Probing || got.Bypassed {
		t.Fatalf("fw probing: %+v", got)
	}
	// Each composed ping traverses the firewall in more than one pipeline
	// pass, so a single ping may use up the whole probe budget; sync health
	// between packets so a drained budget promotes before the next probe.
	for i := 0; i < 5 && stateOf(t, d.Health(), "fw").State == Probing; i++ {
		if out, _, err := d.SW.Process(ping(), 1); err != nil || len(out) != 1 {
			t.Fatalf("probe ping %d: out=%v err=%v", i, out, err)
		}
	}
	if got := stateOf(t, d.Health(), "fw"); got.State != Healthy {
		t.Fatalf("fw after probes: %+v", got)
	}
	// Enforcement is back.
	if out, _, err := d.SW.Process(tcp5201(), 1); err != nil || len(out) != 0 {
		t.Fatalf("blocked flow post-recovery: out=%v err=%v", out, err)
	}
}

// launchDelayedFaultingPacket arms an injector that makes every packet dawdle
// inside the switch read lock before faulting in arp's pass (attr 1) — and
// hence calling the fault hook, which takes health.mu — then sends one ping
// on a background goroutine and gives it time to enter its delay. It returns
// a channel carrying the packet's error. The caller then performs a bypass
// rewire: the table write blocks on the switch write lock until the packet
// drains, and the packet's fault hook needs health.mu — so any code that
// rewires while holding health.mu deadlocks here deterministically.
func launchDelayedFaultingPacket(t *testing.T, d *DPMU) <-chan error {
	t.Helper()
	d.SW.SetInjector(chaos.New(chaos.Spec{
		Seed: 1, Attr: 1, PanicEvery: 1,
		DelayEvery: 1, Delay: 200 * time.Millisecond,
	}))
	done := make(chan error, 1)
	go func() {
		_, _, err := d.SW.Process(ping(), 1)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // packet is now parked inside its delay
	return done
}

// TestHealthSyncBypassConcurrentFaultNoDeadlock pins a faulting packet inside
// the switch read lock while a health sync enforces bypass for a quarantined
// device. Enforcing under health.mu deadlocked: the rewire's table write
// waits for the packet to drain, the packet's fault hook waits for health.mu.
func TestHealthSyncBypassConcurrentFaultNoDeadlock(t *testing.T) {
	d := newPersonaDPMU(t)
	d.SetHealthConfig(HealthConfig{
		Window:       time.Second,
		TripFaults:   2,
		OpenFor:      time.Hour, // stay quarantined: no probing transition
		ProbePackets: 1,
		Policy:       PolicyBypass,
	})
	loadComposition(t, d) // arp(1) → fw(2) → r(3)

	// Trip the firewall WITHOUT a health query in between, so the first
	// bypass enforcement happens in the sync below, under contention.
	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 2, PanicEvery: 1}))
	for i := 0; i < 2; i++ {
		if _, _, err := d.SW.Process(ping(), 1); err == nil {
			t.Fatalf("packet %d should fault in fw", i)
		}
	}

	packet := launchDelayedFaultingPacket(t, d)
	health := make(chan HealthSnapshot, 1)
	go func() { health <- d.Health() }()
	select {
	case snap := <-health:
		if got := stateOf(t, snap, "fw"); got.State != Quarantined || !got.Bypassed {
			t.Fatalf("fw after sync: %+v", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: health sync enforcing bypass never returned")
	}
	if err := <-packet; err == nil {
		t.Fatal("in-flight packet should have faulted")
	}
}

// TestResetHealthConcurrentFaultNoDeadlock is the undo-side twin: ResetHealth
// restores a bypassed device's links while a faulting packet is in flight.
func TestResetHealthConcurrentFaultNoDeadlock(t *testing.T) {
	d := newPersonaDPMU(t)
	d.SetHealthConfig(HealthConfig{
		Window:       time.Second,
		TripFaults:   2,
		OpenFor:      time.Hour,
		ProbePackets: 1,
		Policy:       PolicyBypass,
	})
	loadComposition(t, d)

	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 2, PanicEvery: 1}))
	for i := 0; i < 2; i++ {
		if _, _, err := d.SW.Process(ping(), 1); err == nil {
			t.Fatalf("packet %d should fault in fw", i)
		}
	}
	if got := stateOf(t, d.Health(), "fw"); got.State != Quarantined || !got.Bypassed {
		t.Fatalf("fw not bypassed: %+v", got)
	}

	packet := launchDelayedFaultingPacket(t, d)
	reset := make(chan error, 1)
	go func() { reset <- d.ResetHealth("op", "fw") }()
	select {
	case err := <-reset:
		if err != nil {
			t.Fatalf("reset: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: ResetHealth undoing bypass never returned")
	}
	if err := <-packet; err == nil {
		t.Fatal("in-flight packet should have faulted")
	}
	if got := stateOf(t, d.Health(), "fw"); got.State != Healthy || got.Bypassed {
		t.Fatalf("fw after reset: %+v", got)
	}
}

func TestParseQuarantinePolicy(t *testing.T) {
	for _, s := range []string{"drop", "bypass"} {
		p, err := ParseQuarantinePolicy(s)
		if err != nil || string(p) != s {
			t.Errorf("ParseQuarantinePolicy(%q) = %q, %v", s, p, err)
		}
	}
	for _, s := range []string{"", "Bypass", "DROP", "none"} {
		if p, err := ParseQuarantinePolicy(s); err == nil {
			t.Errorf("ParseQuarantinePolicy(%q) = %q, want error", s, p)
		}
	}
}

func TestResetHealthAuthAndEffect(t *testing.T) {
	d := newPersonaDPMU(t)
	clock := newFakeClock()
	d.SetHealthClock(clock.now)
	d.SetHealthConfig(testHealthConfig(PolicyDrop))
	loadL2(t, d, "l2", "alice")

	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 1, PanicEvery: 1, PanicFirst: 3}))
	frame := l2Frame()
	for i := 0; i < 3; i++ {
		_, _, _ = d.SW.Process(frame, 1)
	}
	if got := stateOf(t, d.Health(), "l2"); got.State != Quarantined {
		t.Fatalf("not tripped: %+v", got)
	}

	if err := d.ResetHealth("mallory", "l2"); !errors.Is(err, ErrPermission) {
		t.Fatalf("foreign reset: %v", err)
	}
	if err := d.ResetHealth("alice", "l2"); err != nil {
		t.Fatal(err)
	}
	got := stateOf(t, d.Health(), "l2")
	if got.State != Healthy || got.Trips != 1 {
		t.Fatalf("after reset: %+v", got)
	}
	if out, _, err := d.SW.Process(frame, 1); err != nil || len(out) != 1 {
		t.Fatalf("traffic after reset: out=%v err=%v", out, err)
	}

	if err := d.ResetHealth("alice", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reset of unknown vdev: %v", err)
	}
}

func TestRollbackResyncsHealth(t *testing.T) {
	d := newPersonaDPMU(t)
	clock := newFakeClock()
	d.SetHealthClock(clock.now)
	d.SetHealthConfig(testHealthConfig(PolicyDrop))
	loadL2(t, d, "l2", "alice")

	cp := d.Checkpoint()
	if err := d.Unload("alice", "l2"); err != nil {
		t.Fatal(err)
	}
	if len(d.Health().VDevs) != 0 {
		t.Fatal("health record should vanish with the vdev")
	}
	d.Rollback(cp)
	got := stateOf(t, d.Health(), "l2")
	if got.State != Healthy || got.PID != 1 {
		t.Fatalf("after rollback: %+v", got)
	}
	if out, _, err := d.SW.Process(l2Frame(), 1); err != nil || len(out) != 1 {
		t.Fatalf("traffic after rollback: out=%v err=%v", out, err)
	}
}
