package dpmu

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hyper4/internal/bitfield"
	"hyper4/internal/chaos"
	"hyper4/internal/core/persona"
	"hyper4/internal/core/verify"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// TestFusedDifferential is the fused fast path's fidelity harness: two
// identically populated emulated switches — one interpreted, one fused —
// process the same randomized corpus, and must agree on every output byte,
// every pass count, every per-entry hit counter, and the per-vdev traffic
// counters. The fused twin must also demonstrably take the fast path
// (FastHits > 0), so a handler that silently declines everything can't
// pass vacuously.
func TestFusedDifferential(t *testing.T) {
	for _, fn := range functions.Names() {
		t.Run(fn, func(t *testing.T) {
			_, dI := differentialPair(t, fn)
			_, dF := differentialPair(t, fn)
			dF.SetFusion(true)

			rng := rand.New(rand.NewSource(777))
			for i := 0; i < 300; i++ {
				frame := randomFrame(rng)
				if rng.Intn(8) == 0 && len(frame) > 1 {
					// Truncated frames exercise short-extract zero fill.
					frame = frame[:1+rng.Intn(len(frame)-1)]
				}
				port := 1 + rng.Intn(3) // port 3 has no egress mapping
				iOut, iTr, err := dI.SW.Process(frame, port)
				if err != nil {
					t.Fatalf("packet %d interpreted: %v", i, err)
				}
				fOut, fTr, err := dF.SW.Process(frame, port)
				if err != nil {
					t.Fatalf("packet %d fused: %v", i, err)
				}
				if !sameOutputs(iOut, fOut) {
					t.Fatalf("packet %d (port %d) diverged:\ninterpreted: %s\nfused:       %s\nframe: %x",
						i, port, renderOutputs(iOut), renderOutputs(fOut), frame)
				}
				if iTr.Passes != fTr.Passes || iTr.Resubmits != fTr.Resubmits {
					t.Fatalf("packet %d pass accounting diverged: interpreted passes=%d resubmits=%d, fused passes=%d resubmits=%d",
						i, iTr.Passes, iTr.Resubmits, fTr.Passes, fTr.Resubmits)
				}
			}

			if hits := dF.FusionStatus().FastHits; hits == 0 {
				t.Fatal("fused switch never took the fast path; differential was vacuous")
			} else {
				t.Logf("fast path handled %d packets", hits)
			}

			// Hit conservation: both switches ran the same operation
			// sequence, so handles correspond; every installed entry must
			// have identical hit counts.
			compareEntryHits(t, dI.SW, dF.SW)

			// Stats and per-vdev counters conserve too.
			si, sf := dI.SW.Stats(), dF.SW.Stats()
			if si.PacketsIn != sf.PacketsIn || si.PacketsOut != sf.PacketsOut ||
				si.PacketsDropped != sf.PacketsDropped || si.Resubmits != sf.Resubmits {
				t.Errorf("stats diverged: interpreted %+v, fused %+v", si, sf)
			}
			ip, ib, err := dI.SW.CounterRead(persona.CounterVDev, 1)
			if err != nil {
				t.Fatal(err)
			}
			fp, fb, err := dF.SW.CounterRead(persona.CounterVDev, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ip != fp || ib != fb {
				t.Errorf("vdev counter diverged: interpreted (%d pkts, %d bytes), fused (%d pkts, %d bytes)", ip, ib, fp, fb)
			}
		})
	}
}

// compareEntryHits walks every table of both switches and requires each
// entry's hit counter to match, handle by handle.
func compareEntryHits(t *testing.T, a, b *sim.Switch) {
	t.Helper()
	for _, name := range a.TableNames() {
		ae, err := a.TableEntriesOrdered(name)
		if err != nil {
			t.Fatal(err)
		}
		be, err := b.TableEntriesOrdered(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(ae) != len(be) {
			t.Fatalf("table %s: %d vs %d entries", name, len(ae), len(be))
		}
		hits := map[int]int64{}
		for _, e := range ae {
			hits[e.Handle] = e.Hits()
		}
		for _, e := range be {
			if want, ok := hits[e.Handle]; !ok || want != e.Hits() {
				t.Errorf("table %s handle %d: interpreted %d hits, fused %d hits", name, e.Handle, want, e.Hits())
			}
		}
	}
}

// TestFusedComposedDifferential runs the chained arp→fw→router composition
// through twin switches, one interpreted and one fused. Cross-plan chaining
// means the fused twin must walk the whole virtual chain in one fast-path
// call: every output byte, every pass-type count (resubmits AND
// recirculations), every entry hit, and every per-vdev counter must match
// the interpreter, and the fast path must demonstrably fire.
func TestFusedComposedDifferential(t *testing.T) {
	dI := newPersonaDPMU(t)
	loadComposition(t, dI)
	dF := newPersonaDPMU(t)
	loadComposition(t, dF)
	dF.SetFusion(true)

	frames := [][]byte{ping(), tcp5201(), l2Frame()}
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 200; i++ {
		frames = append(frames, randomFrame(rng))
	}
	for i, frame := range frames {
		port := 1 + i%2
		iOut, iTr, err := dI.SW.Process(frame, port)
		if err != nil {
			t.Fatalf("frame %d interpreted: %v", i, err)
		}
		fOut, fTr, err := dF.SW.Process(frame, port)
		if err != nil {
			t.Fatalf("frame %d fused: %v", i, err)
		}
		if !sameOutputs(iOut, fOut) {
			t.Fatalf("frame %d (port %d) diverged:\ninterpreted: %s\nfused:       %s\nframe: %x",
				i, port, renderOutputs(iOut), renderOutputs(fOut), frame)
		}
		if iTr.Passes != fTr.Passes || iTr.Resubmits != fTr.Resubmits ||
			iTr.Recirculates != fTr.Recirculates || iTr.ClonesE2E != fTr.ClonesE2E {
			t.Fatalf("frame %d pass accounting diverged:\ninterpreted passes=%d resubmits=%d recircs=%d clones=%d\nfused       passes=%d resubmits=%d recircs=%d clones=%d",
				i, iTr.Passes, iTr.Resubmits, iTr.Recirculates, iTr.ClonesE2E,
				fTr.Passes, fTr.Resubmits, fTr.Recirculates, fTr.ClonesE2E)
		}
	}

	if hits := dF.FusionStatus().FastHits; hits == 0 {
		t.Fatal("composed chain never took the fast path; differential was vacuous")
	} else {
		t.Logf("fast path handled %d composed packets", hits)
	}
	compareEntryHits(t, dI.SW, dF.SW)

	si, sf := dI.SW.Stats(), dF.SW.Stats()
	if si.PacketsIn != sf.PacketsIn || si.PacketsOut != sf.PacketsOut ||
		si.PacketsDropped != sf.PacketsDropped || si.Resubmits != sf.Resubmits ||
		si.Recirculates != sf.Recirculates {
		t.Errorf("stats diverged: interpreted %+v, fused %+v", si, sf)
	}
	for pid := 1; pid <= 3; pid++ {
		ip, ib, err := dI.SW.CounterRead(persona.CounterVDev, pid)
		if err != nil {
			t.Fatal(err)
		}
		fp, fb, err := dF.SW.CounterRead(persona.CounterVDev, pid)
		if err != nil {
			t.Fatal(err)
		}
		if ip != fp || ib != fb {
			t.Errorf("vdev %d counter diverged: interpreted (%d pkts, %d bytes), fused (%d pkts, %d bytes)",
				pid, ip, ib, fp, fb)
		}
	}

	// Virtual links are no longer a fallback: the fuse report must not
	// blame them, and every vdev in the chain must hold a plan.
	for _, f := range dF.FuseReport() {
		if f.Code == verify.CodeUnfusable {
			t.Errorf("composed chain still reports %s: %+v", verify.CodeUnfusable, f)
		}
	}
	if st := dF.FusionStatus(); st.Plans != 3 {
		t.Errorf("plans = %d, want 3 (%+v)", st.Plans, st)
	}
}

// loadMulticastPair wires an L2 source whose virtual port 10 fans out to
// two target L2 switches delivering on physical ports 5 and 6 — the §4.6
// multicast scenario.
func loadMulticastPair(t *testing.T, d *DPMU) {
	t.Helper()
	const owner = "op"
	comp := compileFn(t, functions.L2Switch)
	for _, name := range []string{"src", "tgt_a", "tgt_b"} {
		if _, err := d.Load(name, comp, owner, 0); err != nil {
			t.Fatal(err)
		}
	}
	src := functions.NewL2ControllerFunc(d.Installer(owner, "src"))
	if err := src.AddHost(mac2, 10); err != nil {
		t.Fatal(err)
	}
	ca := functions.NewL2ControllerFunc(d.Installer(owner, "tgt_a"))
	if err := ca.AddHost(mac2, 5); err != nil {
		t.Fatal(err)
	}
	cb := functions.NewL2ControllerFunc(d.Installer(owner, "tgt_b"))
	if err := cb.AddHost(mac2, 6); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort(owner, Assignment{PhysPort: 1, VDev: "src", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	for _, tgt := range []string{"tgt_a", "tgt_b"} {
		for _, port := range []int{5, 6} {
			if err := d.MapVPort(owner, tgt, port, port); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.MulticastGroup(owner, "src", 10, []VPortRef{
		{VDev: "tgt_a", VIngress: 1},
		{VDev: "tgt_b", VIngress: 1},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFusedMulticastDifferential checks the fused multicast fan-out against
// the interpreter: one packet in, one copy per target out, with clone and
// recirculation accounting, entry hits, and per-vdev counters conserved.
func TestFusedMulticastDifferential(t *testing.T) {
	dI := newPersonaDPMU(t)
	loadMulticastPair(t, dI)
	dF := newPersonaDPMU(t)
	loadMulticastPair(t, dF)
	dF.SetFusion(true)

	frames := [][]byte{
		pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}, pkt.Payload("mc"))),
		l2Frame(),
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		frames = append(frames, randomFrame(rng))
	}
	for i, frame := range frames {
		iOut, iTr, err := dI.SW.Process(frame, 1)
		if err != nil {
			t.Fatalf("frame %d interpreted: %v", i, err)
		}
		fOut, fTr, err := dF.SW.Process(frame, 1)
		if err != nil {
			t.Fatalf("frame %d fused: %v", i, err)
		}
		if !sameOutputs(iOut, fOut) {
			t.Fatalf("frame %d diverged:\ninterpreted: %s\nfused:       %s",
				i, renderOutputs(iOut), renderOutputs(fOut))
		}
		if iTr.Passes != fTr.Passes || iTr.Recirculates != fTr.Recirculates || iTr.ClonesE2E != fTr.ClonesE2E {
			t.Fatalf("frame %d pass accounting diverged: interpreted passes=%d recircs=%d clones=%d, fused passes=%d recircs=%d clones=%d",
				i, iTr.Passes, iTr.Recirculates, iTr.ClonesE2E, fTr.Passes, fTr.Recirculates, fTr.ClonesE2E)
		}
	}

	// The known-good fan-out frame must take the fast path and deliver to
	// both targets.
	hits := dF.FusionStatus().FastHits
	if hits == 0 {
		t.Fatal("multicast never took the fast path; differential was vacuous")
	}
	if _, _, err := dI.SW.Process(frames[0], 1); err != nil {
		t.Fatal(err)
	}
	out, tr, err := dF.SW.Process(frames[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	ports := map[int]bool{}
	for _, o := range out {
		ports[o.Port] = true
	}
	if len(out) != 2 || !ports[5] || !ports[6] {
		t.Fatalf("fused fan-out: %s, want ports 5 and 6", renderOutputs(out))
	}
	if tr.ClonesE2E != 1 || tr.Recirculates != 2 {
		t.Errorf("fused fan-out: clones=%d recircs=%d, want 1 and 2", tr.ClonesE2E, tr.Recirculates)
	}
	if got := dF.FusionStatus().FastHits; got <= hits {
		t.Error("fan-out frame fell off the fast path")
	}
	compareEntryHits(t, dI.SW, dF.SW)

	si, sf := dI.SW.Stats(), dF.SW.Stats()
	if si.PacketsOut != sf.PacketsOut || si.Clones != sf.Clones || si.Recirculates != sf.Recirculates {
		t.Errorf("stats diverged: interpreted %+v, fused %+v", si, sf)
	}
}

// TestFusedPolicingDifferential checks the red-meter truncation path in the
// fused commit phase: with a vdev rate-limited, the fused and interpreted
// twins must agree packet by packet on delivery, drops, and meter-driven
// hit suppression — the red verdict lands mid-commit, after the journal is
// built.
func TestFusedPolicingDifferential(t *testing.T) {
	dI := newPersonaDPMU(t)
	loadL2(t, dI, "l2", "op")
	dF := newPersonaDPMU(t)
	loadL2(t, dF, "l2", "op")
	dF.SetFusion(true)
	for _, d := range []*DPMU{dI, dF} {
		if err := d.SetRateLimit("op", "l2", 3, 3); err != nil {
			t.Fatal(err)
		}
	}

	frame := l2Frame()
	for i := 0; i < 10; i++ {
		iOut, _, err := dI.SW.Process(frame, 1)
		if err != nil {
			t.Fatalf("packet %d interpreted: %v", i, err)
		}
		fOut, _, err := dF.SW.Process(frame, 1)
		if err != nil {
			t.Fatalf("packet %d fused: %v", i, err)
		}
		if !sameOutputs(iOut, fOut) {
			t.Fatalf("packet %d diverged under policing: interpreted %s, fused %s",
				i, renderOutputs(iOut), renderOutputs(fOut))
		}
		want := 1
		if i >= 3 {
			want = 0 // over budget: the meter goes red and the pass is cut short
		}
		if len(fOut) != want {
			t.Fatalf("packet %d: %d outputs, want %d", i, len(fOut), want)
		}
	}
	if dF.FusionStatus().FastHits == 0 {
		t.Fatal("policed vdev never took the fast path")
	}
	compareEntryHits(t, dI.SW, dF.SW)
}

// TestFusedNormMissDeclines pins the t_norm fallback semantics: the
// persona parser lands in a requested parse state only when its t_norm row
// exists — a supported byte count whose row was deleted MISSES t_norm in
// the interpreter. A plan built against that state must decline such
// packets rather than silently normalize at the default width.
func TestFusedNormMissDeclines(t *testing.T) {
	_, dI := differentialPair(t, functions.Firewall)
	_, dF := differentialPair(t, functions.Firewall)
	dF.SetFusion(true)

	frame := tcpFrame(80) // multi-pass parse: ether → ipv4 → tcp
	if _, _, err := dF.SW.Process(frame, 1); err != nil {
		t.Fatal(err)
	}
	if dF.FusionStatus().FastHits == 0 {
		t.Fatal("firewall not on fast path before the t_norm surgery")
	}
	if _, _, err := dI.SW.Process(frame, 1); err != nil {
		t.Fatal(err)
	}

	// Delete every t_norm row except the default byte count's, on both
	// switches, then rebuild the fused plans against the mutilated table.
	for _, sw := range []*sim.Switch{dI.SW, dF.SW} {
		rows, err := sw.TableEntriesOrdered(persona.TblNorm)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range rows {
			if len(e.Params) == 1 && int(e.Params[0].Value.Uint64()) != persona.Reference.ParseDefault {
				if err := sw.TableDelete(persona.TblNorm, e.Handle); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	dF.SetFusion(false)
	dF.SetFusion(true)

	hits := dF.FusionStatus().FastHits
	rng := rand.New(rand.NewSource(31))
	frames := [][]byte{frame}
	for i := 0; i < 50; i++ {
		frames = append(frames, randomFrame(rng))
	}
	for i, f := range frames {
		iOut, iTr, err := dI.SW.Process(f, 1)
		if err != nil {
			t.Fatalf("frame %d interpreted: %v", i, err)
		}
		fOut, fTr, err := dF.SW.Process(f, 1)
		if err != nil {
			t.Fatalf("frame %d fused: %v", i, err)
		}
		if !sameOutputs(iOut, fOut) {
			t.Fatalf("frame %d diverged after t_norm deletion:\ninterpreted: %s\nfused:       %s\nframe: %x",
				i, renderOutputs(iOut), renderOutputs(fOut), f)
		}
		if iTr.Passes != fTr.Passes {
			t.Fatalf("frame %d passes diverged: interpreted %d, fused %d", i, iTr.Passes, fTr.Passes)
		}
	}
	compareEntryHits(t, dI.SW, dF.SW)
	// The deep-parse frame must have declined (its requested byte count
	// has no t_norm row), so the fast path only served the shallow frames.
	if got := dF.FusionStatus().FastHits; got == hits {
		t.Log("no frame took the fast path after t_norm surgery (all parsed deep)")
	}
}

// TestFusedChainDepthRefusal builds a two-device virtual-link cycle. The
// interpreter bounds such loops with the pass limit and faults the packet;
// the fused engine must refuse the plans at build time (a fused walk cannot
// fault mid-flight) and report why, while the interpreted fault semantics
// stay exactly as without fusion.
func TestFusedChainDepthRefusal(t *testing.T) {
	build := func(t *testing.T, d *DPMU) {
		const owner = "op"
		comp := compileFn(t, functions.L2Switch)
		for _, name := range []string{"a", "b"} {
			if _, err := d.Load(name, comp, owner, 0); err != nil {
				t.Fatal(err)
			}
			c := functions.NewL2ControllerFunc(d.Installer(owner, name))
			if err := c.AddHost(mac2, 10); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.AssignPort(owner, Assignment{PhysPort: 1, VDev: "a", VIngress: 1}); err != nil {
			t.Fatal(err)
		}
		if err := d.LinkVPorts(owner, "a", 10, "b", 1); err != nil {
			t.Fatal(err)
		}
		if err := d.LinkVPorts(owner, "b", 10, "a", 1); err != nil {
			t.Fatal(err)
		}
	}
	dI := newPersonaDPMU(t)
	build(t, dI)
	dF := newPersonaDPMU(t)
	build(t, dF)
	dF.SetFusion(true)

	// Both plans sit on the cycle, so both are refused.
	if st := dF.FusionStatus(); st.Plans != 0 {
		t.Fatalf("cyclic chain still fused: %d plans (%+v)", st.Plans, st)
	}
	var sawDepth bool
	for _, f := range dF.FuseReport() {
		if f.Code == verify.CodeFuseChainDepth {
			sawDepth = true
			if f.Severity != verify.SevInfo {
				t.Errorf("%s severity = %v, want info", f.Code, f.Severity)
			}
		}
	}
	if !sawDepth {
		t.Fatalf("cyclic chain produced no %s finding: %+v", verify.CodeFuseChainDepth, dF.FuseReport())
	}

	// The looping packet faults identically on both switches: fusion must
	// not change the containment story.
	frame := l2Frame()
	_, _, errI := dI.SW.Process(frame, 1)
	_, _, errF := dF.SW.Process(frame, 1)
	if errI == nil || errF == nil {
		t.Fatalf("looping packet should fault on both: interpreted=%v fused=%v", errI, errF)
	}
	if dF.FusionStatus().FastHits != 0 {
		t.Error("fast path served a packet on a refused chain")
	}
}

// TestFusedChainMemberUnload checks the invalidation edge where a plan in
// the middle of a fused chain disappears: the survivors must rebuild, and
// packets that would cross the dangling link must fall back to the
// interpreter instead of being served by a stale target.
func TestFusedChainMemberUnload(t *testing.T) {
	d := newPersonaDPMU(t)
	loadComposition(t, d) // arp(1) → fw(2) → r(3)
	d.SetFusion(true)

	if out, _, err := d.SW.Process(ping(), 1); err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("pre-unload ping: out=%v err=%v", out, err)
	}
	if d.FusionStatus().FastHits == 0 {
		t.Fatal("composed chain not on fast path before unload")
	}
	genBefore := d.FusionStatus().Generation

	if err := d.Unload("op", "fw"); err != nil {
		t.Fatal(err)
	}
	st := d.FusionStatus()
	if st.Generation <= genBefore {
		t.Fatalf("unloading a chain member did not invalidate: generation %d -> %d", genBefore, st.Generation)
	}
	if st.Plans != 2 {
		t.Fatalf("plans after unload = %d, want 2 (%+v)", st.Plans, st)
	}

	// The arp→fw link now dangles (fw's tables are gone). The packet must
	// not fault and must not be forwarded by a stale firewall plan.
	hits := st.FastHits
	out, _, err := d.SW.Process(ping(), 1)
	if err != nil {
		t.Fatalf("post-unload ping: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("packet crossed an unloaded chain member: %s", renderOutputs(out))
	}
	if got := d.FusionStatus().FastHits; got != hits {
		t.Errorf("fast path served a walk across an unloaded plan: hits %d -> %d", hits, got)
	}
}

// TestFusedMidChainMutation checks that a table write in the middle of a
// fused chain invalidates the whole linked plan: the next packet must see
// the new firewall rule, through the fast path.
func TestFusedMidChainMutation(t *testing.T) {
	d := newPersonaDPMU(t)
	loadComposition(t, d)
	d.SetFusion(true)

	if out, _, err := d.SW.Process(tcpFrame(9999), 1); err != nil || len(out) != 1 {
		t.Fatalf("pre-mutation tcp/9999: out=%v err=%v", out, err)
	}
	genBefore := d.FusionStatus().Generation

	fc := functions.NewFirewallControllerFunc(d.Installer("op", "fw"))
	if err := fc.BlockTCPDstPort(9999); err != nil {
		t.Fatal(err)
	}
	if gen := d.FusionStatus().Generation; gen <= genBefore {
		t.Fatalf("mid-chain table write did not invalidate: generation %d -> %d", genBefore, gen)
	}

	hits := d.FusionStatus().FastHits
	if out, _, err := d.SW.Process(tcpFrame(9999), 1); err != nil || len(out) != 0 {
		t.Fatalf("post-mutation tcp/9999 should drop: out=%v err=%v", out, err)
	}
	if out, _, err := d.SW.Process(ping(), 1); err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("post-mutation ping: out=%v err=%v", out, err)
	}
	if got := d.FusionStatus().FastHits; got <= hits {
		t.Error("rebuilt chain not on fast path after mid-chain mutation")
	}
}

// TestFusedRollbackRestoresPlan checks the checkpoint/rollback invalidation
// edge: a batch that mutates tables recompiles the plan, and rolling the
// batch back recompiles it again against the restored state — the fast path
// must serve pre-batch behavior afterwards, not the rolled-back entries.
func TestFusedRollbackRestoresPlan(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "l2", "alice")
	d.SetFusion(true)

	frame := l2Frame() // mac1 → mac2, forwards out port 2
	mustForward := func(step string, wantPort int) {
		t.Helper()
		out, _, err := d.SW.Process(frame, 1)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if len(out) != 1 || out[0].Port != wantPort {
			t.Fatalf("%s: outputs %s, want port %d", step, renderOutputs(out), wantPort)
		}
	}
	mustForward("pre-checkpoint", 2)
	genBefore := d.FusionStatus().Generation

	cp := d.Checkpoint()
	// The batch: repoint mac2 to port 1 with a second dmac entry. The l2
	// program's dmac table is exact-match, so the new row must replace the
	// old one; find and delete the original through the virtual handles.
	v, err := d.VDev("l2")
	if err != nil {
		t.Fatal(err)
	}
	var dmacHandle int
	var dmacParams []sim.MatchParam
	for h, e := range v.entries {
		if e.table == "dmac" && e.spec.Action == "forward" && e.spec.Args[0].Uint64() == 2 {
			dmacHandle, dmacParams = h, e.spec.Params
		}
	}
	if dmacParams == nil {
		t.Fatal("no dmac forward-to-2 entry found")
	}
	if err := d.TableDelete("alice", "l2", "dmac", dmacHandle); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TableAdd("alice", "l2", EntrySpec{
		Table:  "dmac",
		Action: "forward",
		Params: dmacParams,
		Args:   sim.Args(9, 1),
	}); err != nil {
		t.Fatal(err)
	}
	mustForward("mid-batch (fused plan must track the write)", 1)

	d.Rollback(cp)
	mustForward("post-rollback (fused plan must serve restored state)", 2)

	st := d.FusionStatus()
	if st.Generation <= genBefore {
		t.Errorf("generation did not advance across batch+rollback: %d -> %d", genBefore, st.Generation)
	}
	if st.FastHits == 0 {
		t.Error("fast path idle after rollback; plan was not rebuilt")
	}
}

// TestFusedUnloadFreesPlan checks that unloading a vdev removes its plan
// and port bindings while other vdevs keep their fast path.
func TestFusedUnloadFreesPlan(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "l2", "alice")

	// A second L2 vdev on ports 3/4.
	if _, err := d.Load("l2b", compileFn(t, functions.L2Switch), "bob", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewL2ControllerFunc(d.Installer("bob", "l2b"))
	if err := c.AddHost(mac1, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 4); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{3, 4} {
		if err := d.AssignPort("bob", Assignment{PhysPort: port, VDev: "l2b", VIngress: port}); err != nil {
			t.Fatal(err)
		}
		if err := d.MapVPort("bob", "l2b", port, port); err != nil {
			t.Fatal(err)
		}
	}
	d.SetFusion(true)
	if st := d.FusionStatus(); st.Plans != 2 {
		t.Fatalf("plans = %d, want 2 (%+v)", st.Plans, st)
	}

	frame := l2Frame()
	out, _, err := d.SW.Process(frame, 3)
	if err != nil || len(out) != 1 || out[0].Port != 4 {
		t.Fatalf("l2b pre-unload: out=%s err=%v", renderOutputs(out), err)
	}

	if err := d.Unload("bob", "l2b"); err != nil {
		t.Fatal(err)
	}
	st := d.FusionStatus()
	if st.Plans != 1 {
		t.Fatalf("plans after unload = %d, want 1 (%+v)", st.Plans, st)
	}
	hitsBefore := st.FastHits

	// Port 3 traffic now has no assignment: the packet must not be served
	// by a stale plan.
	out, _, err = d.SW.Process(frame, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("unloaded vdev still forwarding: %s", renderOutputs(out))
	}
	// The surviving vdev keeps its fast path.
	out, _, err = d.SW.Process(frame, 1)
	if err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("l2 post-unload: out=%s err=%v", renderOutputs(out), err)
	}
	if got := d.FusionStatus().FastHits; got <= hitsBefore {
		t.Errorf("surviving vdev not on fast path: hits %d -> %d", hitsBefore, got)
	}
}

// TestFusedQuarantineHandoff checks the containment interaction: a
// quarantined vdev's packets must leave the fast path (the interpreter
// owns quarantine accounting), and recovery puts them back on it.
func TestFusedQuarantineHandoff(t *testing.T) {
	d := newPersonaDPMU(t)
	clock := newFakeClock()
	d.SetHealthClock(clock.now)
	d.SetHealthConfig(testHealthConfig(PolicyDrop))
	loadL2(t, d, "l2", "alice")
	d.SetFusion(true)

	frame := l2Frame()
	if out, _, err := d.SW.Process(frame, 1); err != nil || len(out) != 1 {
		t.Fatalf("pre-fault: out=%v err=%v", out, err)
	}
	if d.FusionStatus().FastHits == 0 {
		t.Fatal("healthy vdev not on fast path")
	}

	// Trip the breaker. While an injector is armed the switch bypasses the
	// fast path entirely, so the faults land in the interpreter.
	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 1, PanicEvery: 1, PanicFirst: 3}))
	for i := 0; i < 3; i++ {
		if _, _, err := d.SW.Process(frame, 1); err == nil {
			t.Fatalf("packet %d should fault", i)
		}
	}
	d.SW.SetInjector(nil)
	if got := stateOf(t, d.Health(), "l2"); got.State != Quarantined {
		t.Fatalf("after trip: %+v", got)
	}

	// Quarantined: dropped by containment, not served by the plan.
	hits := d.FusionStatus().FastHits
	if out, _, err := d.SW.Process(frame, 1); err != nil || len(out) != 0 {
		t.Fatalf("quarantined packet: out=%v err=%v", out, err)
	}
	if got := d.FusionStatus().FastHits; got != hits {
		t.Fatalf("fast path served a quarantined vdev: hits %d -> %d", hits, got)
	}

	// Recover: probes run interpreted; once healthy the fast path resumes.
	clock.advance(150 * time.Millisecond)
	for i := 0; i < 5 && stateOf(t, d.Health(), "l2").State == Probing; i++ {
		if out, _, err := d.SW.Process(frame, 1); err != nil || len(out) != 1 {
			t.Fatalf("probe %d: out=%v err=%v", i, out, err)
		}
	}
	if got := stateOf(t, d.Health(), "l2"); got.State != Healthy {
		t.Fatalf("after probes: %+v", got)
	}
	hits = d.FusionStatus().FastHits
	if out, _, err := d.SW.Process(frame, 1); err != nil || len(out) != 1 {
		t.Fatalf("post-recovery: out=%v err=%v", out, err)
	}
	if got := d.FusionStatus().FastHits; got <= hits {
		t.Errorf("fast path did not resume after recovery: hits %d -> %d", hits, got)
	}
}

// TestFusedBypassRewireInvalidates replays the health-driven bypass rewire
// scenario with fusion on: the rewire rewrites virtnet rows, so every plan
// built before it must be invalidated, and forwarding must match the
// interpreted semantics at each stage.
func TestFusedBypassRewireInvalidates(t *testing.T) {
	d := newPersonaDPMU(t)
	clock := newFakeClock()
	d.SetHealthClock(clock.now)
	d.SetHealthConfig(testHealthConfig(PolicyBypass))
	loadComposition(t, d) // arp(1) → fw(2) → r(3)
	d.SetFusion(true)

	if out, _, err := d.SW.Process(tcp5201(), 1); err != nil || len(out) != 0 {
		t.Fatalf("blocked flow pre-fault: out=%v err=%v", out, err)
	}
	if out, _, err := d.SW.Process(ping(), 1); err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("ping pre-fault: out=%v err=%v", out, err)
	}
	genBefore := d.FusionStatus().Generation

	// Trip the firewall; the bypass policy rewires the chain around it.
	d.SW.SetInjector(chaos.New(chaos.Spec{Seed: 1, Attr: 2, PanicEvery: 1, PanicFirst: 3}))
	for i := 0; i < 3; i++ {
		if _, _, err := d.SW.Process(ping(), 1); err == nil {
			t.Fatalf("packet %d should fault in fw", i)
		}
	}
	d.SW.SetInjector(nil)
	if got := stateOf(t, d.Health(), "fw"); got.State != Quarantined || !got.Bypassed {
		t.Fatalf("fw after trip: %+v", got)
	}
	if gen := d.FusionStatus().Generation; gen <= genBefore {
		t.Fatalf("bypass rewire did not invalidate plans: generation %d -> %d", genBefore, gen)
	}

	// Chain forwards around the dead firewall, enforcement suspended.
	if out, _, err := d.SW.Process(ping(), 1); err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("ping under bypass: out=%v err=%v", out, err)
	}
	if out, _, err := d.SW.Process(tcp5201(), 1); err != nil || len(out) != 1 {
		t.Fatalf("bypassed flow: out=%v err=%v", out, err)
	}

	// Recovery restores the chain and enforcement.
	clock.advance(150 * time.Millisecond)
	for i := 0; i < 5 && stateOf(t, d.Health(), "fw").State == Probing; i++ {
		if out, _, err := d.SW.Process(ping(), 1); err != nil || len(out) != 1 {
			t.Fatalf("probe ping %d: out=%v err=%v", i, out, err)
		}
	}
	if got := stateOf(t, d.Health(), "fw"); got.State != Healthy {
		t.Fatalf("fw after probes: %+v", got)
	}
	if out, _, err := d.SW.Process(tcp5201(), 1); err != nil || len(out) != 0 {
		t.Fatalf("blocked flow post-recovery: out=%v err=%v", out, err)
	}
}

// TestFusedInvalidationUnderTraffic hammers the switch with packets while
// the control plane mutates tables, checkpoints, rolls back, and toggles
// fusion. Run under -race (the fuse-diff make target), this is the
// plan-lifetime safety net: no packet may fault, and the final state must
// still forward correctly on the fast path.
func TestFusedInvalidationUnderTraffic(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "l2", "alice")
	d.SetFusion(true)

	stop := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				frame := randomFrame(rng)
				if _, _, err := d.SW.Process(frame, 1+rng.Intn(2)); err != nil {
					errs <- fmt.Errorf("traffic goroutine %d: %w", g, err)
					return
				}
			}
		}(g)
	}

	churnMAC := pkt.MustMAC("02:00:00:00:00:99")
	spec := EntrySpec{
		Table:  "dmac",
		Action: "forward",
		Params: []sim.MatchParam{sim.Exact(bitfield.FromBytes(48, churnMAC[:]))},
		Args:   sim.Args(9, 2),
	}
	for i := 0; i < 40; i++ {
		cp := d.Checkpoint()
		h, err := d.TableAdd("alice", "l2", spec)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := d.TableDelete("alice", "l2", "dmac", h); err != nil {
				t.Fatal(err)
			}
		} else {
			d.Rollback(cp)
		}
		if i%10 == 5 {
			d.SetFusion(false)
			d.SetFusion(true)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	hits := d.FusionStatus().FastHits
	if out, _, err := d.SW.Process(l2Frame(), 1); err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("post-churn forward: out=%v err=%v", out, err)
	}
	if got := d.FusionStatus().FastHits; got <= hits {
		t.Error("fast path dead after churn")
	}
}
