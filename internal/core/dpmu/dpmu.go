// Package dpmu implements HyPer4's Data Plane Management Unit (§3.1, §4.5).
// Like the MMU it is named after, the DPMU translates virtual operations —
// table adds and deletes addressed to an emulated program — into physical
// persona table operations, and enforces isolation: it allocates program
// IDs, stamps them into every translated entry (code isolation), checks that
// the requester owns the virtual device it addresses (authorization), and
// enforces per-device entry quotas (memory isolation).
package dpmu

import (
	"fmt"
	"sort"
	"sync"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/fuse"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/core/verify"
	"hyper4/internal/p4/ast"
	"hyper4/internal/sim"
	"hyper4/internal/sim/runtime"
)

// DPMU manages one persona switch.
type DPMU struct {
	SW  *sim.Switch
	cfg persona.Config

	// mu guards the DPMU's own bookkeeping (vdevs, their row sets,
	// snapshots, ID counters) so the metrics exporter can read stats while a
	// management session mutates devices. The persona switch has its own
	// lock; this one only serializes the control plane's shadow state.
	mu sync.RWMutex

	vdevs       map[string]*VDev
	nextPID     int
	nextMatchID int
	nextMcast   int
	nextSession int
	snapshots   map[string][]Assignment
	active      string
	assignPEs   []pentry     // installed t_assign entries
	assigns     []Assignment // the assignments behind assignPEs, same order
	linkSpecs   []linkSpec   // logical virtual-link topology (bypass.go)

	// skewLPM, when set, drops the LPM prefix-length priority offset during
	// entry translation. It exists only to plant a realistic compiler-class
	// divergence for the equivalence prover's self-tests (prove-smoke):
	// overlapping prefixes then win in installation order, not longest-first.
	skewLPM bool

	// health is the per-vdev circuit-breaker state (health.go). It carries
	// its own leaf mutex because the fault hook feeding it runs on the
	// packet path, where taking d.mu would deadlock.
	health healthTracker

	// Fused fast-path cache lifecycle (fusion.go). Guarded by mu.
	fusion       bool
	fusionEngine *fuse.Engine
	fusionGen    uint64 // switch generation the engine was built against
	fusionBuilt  bool
	fusionBuilds uint64
	fuseFindings []verify.Finding
}

// VDev is one loaded virtual device: a compiled program bound to a program
// ID on the persona.
type VDev struct {
	Name  string
	PID   int
	Owner string
	Comp  *hp4c.Compiled
	// Quota bounds installed virtual entries (0 = unlimited), the memory
	// isolation mechanism of §4.5.
	Quota int

	entries    map[int]*ventry
	nextHandle int
	static     []pentry            // parse/virtnet/csum rows
	defaults   map[string][]pentry // per-table catch-all rows
	// defSpecs retains each default as the caller set it (action + args),
	// control-plane memory like ventry.spec: the equivalence prover rebuilds
	// a native twin of the device from specs alone.
	defSpecs map[string]EntrySpec
	links    []pentry       // virtual network rows
	vnet     map[int]pentry // t_virtnet routing row per virtual egress port
}

// EntryCount returns the number of installed virtual entries.
func (v *VDev) EntryCount() int { return len(v.entries) }

// ventry is one virtual entry and the persona rows realizing it. spec
// retains the entry as the caller installed it — control-plane memory only —
// so the static verifier (internal/core/verify) can re-analyze a device's
// entry set at the virtual level (shadowing, reachability) without
// reverse-translating persona rows.
type ventry struct {
	table string
	rows  []pentry
	spec  EntrySpec
}

// pentry identifies one persona row. match marks the a_set_match stage-table
// row (as opposed to prep rows): its per-entry hit counter is what per-vdev
// stats attribution sums over, since a packet that matches a virtual entry
// hits exactly one of its stage rows (the one on its parse path).
type pentry struct {
	table  string
	handle int
	match  bool
}

// Assignment binds a physical ingress port (-1 = every port) to a virtual
// device and virtual ingress port.
type Assignment struct {
	PhysPort int
	VDev     string
	VIngress int
}

// New creates a DPMU over a freshly loaded persona switch. It installs the
// persona's base entries.
func New(sw *sim.Switch, p *persona.Persona) (*DPMU, error) {
	if err := runtime.New(sw).ExecAll(p.BaseCommands); err != nil {
		return nil, fmt.Errorf("dpmu: persona base entries: %w", err)
	}
	d := &DPMU{
		SW:          sw,
		cfg:         p.Config,
		vdevs:       map[string]*VDev{},
		nextPID:     0,
		nextMatchID: 0,
		snapshots:   map[string][]Assignment{},
	}
	// Fault containment: attribute packet faults to vdevs via the persona's
	// per-packet program ID and feed them into the circuit breakers.
	d.health.init()
	if err := sw.SetAttributionField(ast.FieldRef{
		Instance: persona.InstMeta, Field: persona.FieldProgram, Index: ast.IndexNone,
	}); err != nil {
		return nil, fmt.Errorf("dpmu: fault attribution: %w", err)
	}
	sw.SetFaultHook(d.onFault)
	return d, nil
}

// Config returns the persona configuration the DPMU manages.
func (d *DPMU) Config() persona.Config { return d.cfg }

// VDevs returns the loaded virtual device names, sorted.
func (d *DPMU) VDevs() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vdevNames()
}

func (d *DPMU) vdevNames() []string {
	out := make([]string, 0, len(d.vdevs))
	for name := range d.vdevs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// VDev returns a loaded virtual device.
func (d *DPMU) VDev(name string) (*VDev, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.vdevs[name]
	if !ok {
		return nil, fmt.Errorf("dpmu: no virtual device %q: %w", name, ErrNotFound)
	}
	return v, nil
}

// Load instantiates a compiled program as a new virtual device owned by
// owner. quota bounds its virtual entries (0 = unlimited).
func (d *DPMU) Load(name string, comp *hp4c.Compiled, owner string, quota int) (*VDev, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	if _, dup := d.vdevs[name]; dup {
		return nil, fmt.Errorf("dpmu: virtual device %q already loaded: %w", name, ErrExists)
	}
	if comp.Cfg != d.cfg {
		return nil, fmt.Errorf("dpmu: program compiled for persona config %+v, switch runs %+v: %w", comp.Cfg, d.cfg, ErrInvalid)
	}
	// Load-time verification: hp4c.Compile refuses to emit inconsistent
	// artifacts, but a Compiled can also arrive deserialized or hand-built;
	// admit only artifacts the static verifier clears.
	if fs := verify.Program(comp); verify.HasErrors(fs) {
		return nil, fmt.Errorf("dpmu: program %s fails verification (%d findings), first: %s: %w", comp.Name, len(fs), fs[0], ErrInvalid)
	}
	d.nextPID++
	v := &VDev{
		Name:     name,
		PID:      d.nextPID,
		Owner:    owner,
		Comp:     comp,
		Quota:    quota,
		entries:  map[int]*ventry{},
		defaults: map[string][]pentry{},
		defSpecs: map[string]EntrySpec{},
		vnet:     map[int]pentry{},
	}
	if err := d.installStatic(v); err != nil {
		d.removeRows(v.static)
		for _, rows := range v.defaults {
			d.removeRows(rows)
		}
		return nil, err
	}
	d.vdevs[name] = v
	d.registerHealth(name, v.PID)
	return v, nil
}

// Unload removes a virtual device and every persona row it owns. Live
// traffic of other devices is unaffected — this is the paper's
// modify-the-program-set-at-runtime property.
func (d *DPMU) Unload(owner, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	v, err := d.auth(owner, name)
	if err != nil {
		return err
	}
	for _, e := range v.entries {
		d.removeRows(e.rows)
	}
	for _, rows := range v.defaults {
		d.removeRows(rows)
	}
	d.removeRows(v.links)
	d.removeRows(v.static)
	delete(d.vdevs, name)
	d.dropLinkSpecsFrom(name)
	d.unregisterHealth(name)
	return nil
}

// auth checks that owner may manage the named device (§4.5: "The DPMU
// monitors requests ... and ensures the program IDs in the entries are
// authorized for the requester").
func (d *DPMU) auth(owner, name string) (*VDev, error) {
	v, ok := d.vdevs[name]
	if !ok {
		return nil, fmt.Errorf("dpmu: no virtual device %q: %w", name, ErrNotFound)
	}
	if v.Owner != "" && owner != v.Owner {
		return nil, fmt.Errorf("dpmu: %q is not authorized for virtual device %q: %w", owner, name, ErrPermission)
	}
	return v, nil
}

func (d *DPMU) removeRows(rows []pentry) {
	for _, r := range rows {
		// Best effort: rows may already be gone during unload cleanup.
		_ = d.SW.TableDelete(r.table, r.handle)
	}
}

func (d *DPMU) addRow(dst *[]pentry, table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error {
	h, err := d.SW.TableAdd(table, action, params, args, prio)
	if err != nil {
		return fmt.Errorf("dpmu: %s: %w", table, err)
	}
	*dst = append(*dst, pentry{table: table, handle: h})
	return nil
}
