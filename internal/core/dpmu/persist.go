package dpmu

// Serializable control-plane state, for the crash-consistent journal
// (internal/core/ctl/journal.go). EncodeState flattens exactly what
// Checkpoint captures — the DPMU's bookkeeping plus a sim.SwitchDump of the
// persona's table state — into JSON-able mirror structs (bitfield values
// carry width + raw bytes), and RestoreState rebuilds a Checkpoint from the
// bytes and rewinds through the existing Rollback machinery, so snapshot
// restore and batch rollback share one code path. Compiled programs are not
// serialized: a vdev records its function name and the restorer recompiles
// through the caller's CompileFunc (the boot environment must offer the
// same functions and persona config — hp4switch does, deterministically).

import (
	"encoding/json"
	"fmt"
	"sort"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/p4/ast"
	"hyper4/internal/sim"
)

// CompileFunc resolves a function name to its compiled program at restore
// time.
type CompileFunc func(function string) (*hp4c.Compiled, error)

// --- JSON mirrors (unexported fields elsewhere force explicit forms) ---

type valueJSON struct {
	W int    `json:"w"`
	B []byte `json:"b,omitempty"`
}

func toValueJSON(v bitfield.Value) valueJSON {
	return valueJSON{W: v.Width(), B: v.Bytes()}
}

func (j valueJSON) value() bitfield.Value { return bitfield.FromBytes(j.W, j.B) }

func toValuesJSON(vs []bitfield.Value) []valueJSON {
	if vs == nil {
		return nil
	}
	out := make([]valueJSON, len(vs))
	for i, v := range vs {
		out[i] = toValueJSON(v)
	}
	return out
}

func fromValuesJSON(js []valueJSON) []bitfield.Value {
	if js == nil {
		return nil
	}
	out := make([]bitfield.Value, len(js))
	for i, j := range js {
		out[i] = j.value()
	}
	return out
}

type matchParamJSON struct {
	Kind      string    `json:"kind"`
	Value     valueJSON `json:"value"`
	Mask      valueJSON `json:"mask"`
	PrefixLen int       `json:"prefix_len,omitempty"`
	Hi        valueJSON `json:"hi"`
	ValidWant bool      `json:"valid_want,omitempty"`
}

func toParamsJSON(ps []sim.MatchParam) []matchParamJSON {
	if ps == nil {
		return nil
	}
	out := make([]matchParamJSON, len(ps))
	for i, p := range ps {
		out[i] = matchParamJSON{
			Kind:      string(p.Kind),
			Value:     toValueJSON(p.Value),
			Mask:      toValueJSON(p.Mask),
			PrefixLen: p.PrefixLen,
			Hi:        toValueJSON(p.Hi),
			ValidWant: p.ValidWant,
		}
	}
	return out
}

func fromParamsJSON(js []matchParamJSON) []sim.MatchParam {
	if js == nil {
		return nil
	}
	out := make([]sim.MatchParam, len(js))
	for i, j := range js {
		out[i] = sim.MatchParam{
			Kind:      ast.MatchKind(j.Kind),
			Value:     j.Value.value(),
			Mask:      j.Mask.value(),
			PrefixLen: j.PrefixLen,
			Hi:        j.Hi.value(),
			ValidWant: j.ValidWant,
		}
	}
	return out
}

type entryDumpJSON struct {
	Handle   int              `json:"handle"`
	Params   []matchParamJSON `json:"params,omitempty"`
	Action   string           `json:"action"`
	Args     []valueJSON      `json:"args,omitempty"`
	Priority int              `json:"priority,omitempty"`
	Hits     int64            `json:"hits,omitempty"`
}

type tableDumpJSON struct {
	Entries       []entryDumpJSON `json:"entries,omitempty"`
	NextHandle    int             `json:"next_handle"`
	DefaultAction string          `json:"default_action,omitempty"`
	DefaultArgs   []valueJSON     `json:"default_args,omitempty"`
}

type switchDumpJSON struct {
	Tables  map[string]tableDumpJSON    `json:"tables"`
	Mirrors map[int]int                 `json:"mirrors,omitempty"`
	Meters  map[string][]sim.MeterRates `json:"meters,omitempty"`
}

func toSwitchJSON(d *sim.SwitchDump) switchDumpJSON {
	out := switchDumpJSON{
		Tables:  make(map[string]tableDumpJSON, len(d.Tables)),
		Mirrors: d.Mirrors,
		Meters:  d.Meters,
	}
	for name, td := range d.Tables {
		tj := tableDumpJSON{
			NextHandle:    td.NextHandle,
			DefaultAction: td.DefaultAction,
			DefaultArgs:   toValuesJSON(td.DefaultArgs),
		}
		for _, e := range td.Entries {
			tj.Entries = append(tj.Entries, entryDumpJSON{
				Handle:   e.Handle,
				Params:   toParamsJSON(e.Params),
				Action:   e.Action,
				Args:     toValuesJSON(e.Args),
				Priority: e.Priority,
				Hits:     e.Hits,
			})
		}
		out.Tables[name] = tj
	}
	return out
}

func fromSwitchJSON(j switchDumpJSON) *sim.SwitchDump {
	d := &sim.SwitchDump{
		Tables:  make(map[string]sim.TableDump, len(j.Tables)),
		Mirrors: j.Mirrors,
		Meters:  j.Meters,
	}
	if d.Mirrors == nil {
		d.Mirrors = map[int]int{}
	}
	if d.Meters == nil {
		d.Meters = map[string][]sim.MeterRates{}
	}
	for name, tj := range j.Tables {
		td := sim.TableDump{
			NextHandle:    tj.NextHandle,
			DefaultAction: tj.DefaultAction,
			DefaultArgs:   fromValuesJSON(tj.DefaultArgs),
		}
		for _, ej := range tj.Entries {
			td.Entries = append(td.Entries, sim.EntryDump{
				Handle:   ej.Handle,
				Params:   fromParamsJSON(ej.Params),
				Action:   ej.Action,
				Args:     fromValuesJSON(ej.Args),
				Priority: ej.Priority,
				Hits:     ej.Hits,
			})
		}
		d.Tables[name] = td
	}
	return d
}

type pentryJSON struct {
	Table  string `json:"table"`
	Handle int    `json:"handle"`
	Match  bool   `json:"match,omitempty"`
}

func toPentriesJSON(rows []pentry) []pentryJSON {
	if rows == nil {
		return nil
	}
	out := make([]pentryJSON, len(rows))
	for i, r := range rows {
		out[i] = pentryJSON{Table: r.table, Handle: r.handle, Match: r.match}
	}
	return out
}

func fromPentriesJSON(js []pentryJSON) []pentry {
	if js == nil {
		return nil
	}
	out := make([]pentry, len(js))
	for i, j := range js {
		out[i] = pentry{table: j.Table, handle: j.Handle, match: j.Match}
	}
	return out
}

type entrySpecJSON struct {
	Table    string           `json:"table"`
	Action   string           `json:"action"`
	Params   []matchParamJSON `json:"params,omitempty"`
	Args     []valueJSON      `json:"args,omitempty"`
	Priority int              `json:"priority,omitempty"`
}

type ventryJSON struct {
	Handle int           `json:"handle"`
	Table  string        `json:"table"`
	Rows   []pentryJSON  `json:"rows,omitempty"`
	Spec   entrySpecJSON `json:"spec"`
}

type vdevJSON struct {
	Name       string                   `json:"name"`
	PID        int                      `json:"pid"`
	Owner      string                   `json:"owner,omitempty"`
	Function   string                   `json:"function"`
	Quota      int                      `json:"quota,omitempty"`
	NextHandle int                      `json:"next_handle"`
	Entries    []ventryJSON             `json:"entries,omitempty"`
	Static     []pentryJSON             `json:"static,omitempty"`
	Defaults   map[string][]pentryJSON  `json:"defaults,omitempty"`
	DefSpecs   map[string]entrySpecJSON `json:"def_specs,omitempty"`
	Links      []pentryJSON             `json:"links,omitempty"`
	VNet       map[int]pentryJSON       `json:"vnet,omitempty"`
}

type linkSpecJSON struct {
	FromDev  string `json:"from_dev"`
	FromPort int    `json:"from_port"`
	ToDev    string `json:"to_dev"`
	ToPort   int    `json:"to_port"`
}

// stateJSON is the whole serialized checkpoint.
type stateJSON struct {
	NextPID     int                     `json:"next_pid"`
	NextMatchID int                     `json:"next_match_id"`
	NextMcast   int                     `json:"next_mcast"`
	NextSession int                     `json:"next_session"`
	Active      string                  `json:"active,omitempty"`
	VDevs       []vdevJSON              `json:"vdevs,omitempty"`
	Snapshots   map[string][]Assignment `json:"snapshots,omitempty"`
	Assigns     []Assignment            `json:"assigns,omitempty"`
	AssignPEs   []pentryJSON            `json:"assign_pes,omitempty"`
	LinkSpecs   []linkSpecJSON          `json:"link_specs,omitempty"`
	Switch      switchDumpJSON          `json:"switch"`
}

// EncodeState serializes the DPMU's full control-plane state — everything
// Checkpoint captures — for the control-plane journal's snapshots.
func (d *DPMU) EncodeState() ([]byte, error) {
	return json.Marshal(d.buildState())
}

// DumpControl renders the control-plane state as deterministic, indented
// JSON with per-entry hit counters zeroed — the traffic-independent parity
// artifact crash-recovery differentials diff: a recovered switch and a
// never-crashed twin that applied the same acked batches must render
// byte-identical dumps even though only one of them carried live traffic.
func (d *DPMU) DumpControl() (string, error) {
	st := d.buildState()
	for name, tj := range st.Switch.Tables {
		for i := range tj.Entries {
			tj.Entries[i].Hits = 0
		}
		st.Switch.Tables[name] = tj
	}
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

func (d *DPMU) buildState() stateJSON {
	cp := d.Checkpoint()
	st := stateJSON{
		NextPID:     cp.nextPID,
		NextMatchID: cp.nextMatchID,
		NextMcast:   cp.nextMcast,
		NextSession: cp.nextSession,
		Active:      cp.active,
		Snapshots:   cp.snapshots,
		Assigns:     cp.assigns,
		AssignPEs:   toPentriesJSON(cp.assignPEs),
		Switch:      toSwitchJSON(cp.sw),
	}
	for _, ls := range cp.linkSpecs {
		st.LinkSpecs = append(st.LinkSpecs, linkSpecJSON{
			FromDev: ls.fromDev, FromPort: ls.fromPort, ToDev: ls.toDev, ToPort: ls.toPort,
		})
	}
	names := make([]string, 0, len(cp.vdevs))
	for name := range cp.vdevs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := cp.vdevs[name]
		vj := vdevJSON{
			Name:       v.Name,
			PID:        v.PID,
			Owner:      v.Owner,
			Function:   v.Comp.Name,
			Quota:      v.Quota,
			NextHandle: v.nextHandle,
			Static:     toPentriesJSON(v.static),
			Links:      toPentriesJSON(v.links),
		}
		if len(v.defaults) > 0 {
			vj.Defaults = make(map[string][]pentryJSON, len(v.defaults))
			for t, rows := range v.defaults {
				vj.Defaults[t] = toPentriesJSON(rows)
			}
		}
		if len(v.defSpecs) > 0 {
			vj.DefSpecs = make(map[string]entrySpecJSON, len(v.defSpecs))
			for t, spec := range v.defSpecs {
				vj.DefSpecs[t] = entrySpecJSON{
					Table:  spec.Table,
					Action: spec.Action,
					Args:   toValuesJSON(spec.Args),
				}
			}
		}
		if len(v.vnet) > 0 {
			vj.VNet = make(map[int]pentryJSON, len(v.vnet))
			for p, row := range v.vnet {
				vj.VNet[p] = pentryJSON{Table: row.table, Handle: row.handle, Match: row.match}
			}
		}
		handles := make([]int, 0, len(v.entries))
		for h := range v.entries {
			handles = append(handles, h)
		}
		sort.Ints(handles)
		for _, h := range handles {
			e := v.entries[h]
			vj.Entries = append(vj.Entries, ventryJSON{
				Handle: h,
				Table:  e.table,
				Rows:   toPentriesJSON(e.rows),
				Spec: entrySpecJSON{
					Table:    e.spec.Table,
					Action:   e.spec.Action,
					Params:   toParamsJSON(e.spec.Params),
					Args:     toValuesJSON(e.spec.Args),
					Priority: e.spec.Priority,
				},
			})
		}
		st.VDevs = append(st.VDevs, vj)
	}
	return st
}

// RestoreState rewinds the DPMU to a state EncodeState captured, through the
// same Rollback machinery batch atomicity uses: DPMU bookkeeping, persona
// table state (entries with their handles, precedence and hit counters),
// mirrors and meter thresholds all return to their snapshotted values.
// Compiled programs are re-resolved by function name through compile; the
// persona program must already be loaded into the switch (the normal boot
// sequence) and the persona config must match the one the snapshot was
// taken under.
func (d *DPMU) RestoreState(data []byte, compile CompileFunc) error {
	var st stateJSON
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("dpmu: decode state: %w", err)
	}
	cp := &Checkpoint{
		vdevs:       make(map[string]*VDev, len(st.VDevs)),
		nextPID:     st.NextPID,
		nextMatchID: st.NextMatchID,
		nextMcast:   st.NextMcast,
		nextSession: st.NextSession,
		snapshots:   st.Snapshots,
		active:      st.Active,
		assignPEs:   fromPentriesJSON(st.AssignPEs),
		assigns:     st.Assigns,
		sw:          fromSwitchJSON(st.Switch),
	}
	if cp.snapshots == nil {
		cp.snapshots = map[string][]Assignment{}
	}
	for _, ls := range st.LinkSpecs {
		cp.linkSpecs = append(cp.linkSpecs, linkSpec{
			fromDev: ls.FromDev, fromPort: ls.FromPort, toDev: ls.ToDev, toPort: ls.ToPort,
		})
	}
	for _, vj := range st.VDevs {
		comp, err := compile(vj.Function)
		if err != nil {
			return fmt.Errorf("dpmu: restore %q: recompile %q: %w", vj.Name, vj.Function, err)
		}
		v := &VDev{
			Name:       vj.Name,
			PID:        vj.PID,
			Owner:      vj.Owner,
			Comp:       comp,
			Quota:      vj.Quota,
			entries:    make(map[int]*ventry, len(vj.Entries)),
			nextHandle: vj.NextHandle,
			static:     fromPentriesJSON(vj.Static),
			defaults:   make(map[string][]pentry, len(vj.Defaults)),
			defSpecs:   make(map[string]EntrySpec, len(vj.DefSpecs)),
			links:      fromPentriesJSON(vj.Links),
			vnet:       make(map[int]pentry, len(vj.VNet)),
		}
		for t, rows := range vj.Defaults {
			v.defaults[t] = fromPentriesJSON(rows)
		}
		for t, sj := range vj.DefSpecs {
			v.defSpecs[t] = EntrySpec{Table: sj.Table, Action: sj.Action, Args: fromValuesJSON(sj.Args)}
		}
		for p, row := range vj.VNet {
			v.vnet[p] = pentry{table: row.Table, handle: row.Handle, match: row.Match}
		}
		for _, ej := range vj.Entries {
			v.entries[ej.Handle] = &ventry{
				table: ej.Table,
				rows:  fromPentriesJSON(ej.Rows),
				spec: EntrySpec{
					Table:    ej.Spec.Table,
					Action:   ej.Spec.Action,
					Params:   fromParamsJSON(ej.Spec.Params),
					Args:     fromValuesJSON(ej.Spec.Args),
					Priority: ej.Spec.Priority,
				},
			}
		}
		cp.vdevs[vj.Name] = v
	}
	d.Rollback(cp)
	return nil
}
